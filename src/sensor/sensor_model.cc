#include "sensor/sensor_model.h"

#include <cmath>

#include "obs/metrics.h"
#include "obs/span.h"
#include "sensor/occlusion.h"

namespace head::sensor {

bool IsVisible(const VehicleState& ego, const sim::VehicleSnapshot& target,
               const std::vector<sim::VehicleSnapshot>& others,
               const SensorConfig& sensor, const RoadConfig& road) {
  const double dx = DLon(target.state, ego);
  const double dy = DLat(target.state, ego, road.lane_width_m);
  if (dx * dx + dy * dy > sensor.range_m * sensor.range_m) return false;
  if (!sensor.model_occlusion) return true;
  for (const sim::VehicleSnapshot& blocker : others) {
    if (blocker.id == target.id || blocker.id == kEgoVehicleId) continue;
    // Blockers further away than the target along the sight line cannot
    // occlude it; Occludes() handles that through the segment test.
    if (Occludes(ego, target.state, blocker.state, road.lane_width_m)) {
      return false;
    }
  }
  return true;
}

std::vector<sim::VehicleSnapshot> Observe(
    const std::vector<sim::VehicleSnapshot>& global_snapshot,
    const VehicleState& ego, const SensorConfig& sensor,
    const RoadConfig& road) {
  HEAD_SPAN("sensor.observe");
  static obs::Counter& observations = obs::GetCounter("sensor.observations");
  observations.Add();
  std::vector<sim::VehicleSnapshot> out;
  for (const sim::VehicleSnapshot& v : global_snapshot) {
    if (v.id == kEgoVehicleId) continue;
    if (IsVisible(ego, v, global_snapshot, sensor, road)) out.push_back(v);
  }
  return out;
}

}  // namespace head::sensor
