// Line-of-sight occlusion geometry. Vehicles are axis-aligned rectangles in
// a plane whose x-axis is the longitudinal position and whose y-axis is the
// lateral lane offset; a target is occluded when the sight segment from the
// ego center to the target center crosses another vehicle's rectangle
// (paper Sec. III-A "Opportunities (1)" and Fig. 4).
#ifndef HEAD_SENSOR_OCCLUSION_H_
#define HEAD_SENSOR_OCCLUSION_H_

#include "common/types.h"

namespace head::sensor {

/// Lateral center (m) of a lane, with lane 1 centered at 0.5·wid_l.
inline double LaneCenterY(int lane, double lane_width_m) {
  return (static_cast<double>(lane) - 0.5) * lane_width_m;
}

/// True iff segment (x0,y0)→(x1,y1) intersects the axis-aligned rectangle
/// centered at (cx,cy) with half-extents (hx,hy).
bool SegmentIntersectsRect(double x0, double y0, double x1, double y1,
                           double cx, double cy, double hx, double hy);

/// True iff `blocker` hides `target` from `observer`. The blocker rectangle
/// is slightly shrunk so grazing sight lines do not count as occlusion.
bool Occludes(const VehicleState& observer, const VehicleState& target,
              const VehicleState& blocker, double lane_width_m);

}  // namespace head::sensor

#endif  // HEAD_SENSOR_OCCLUSION_H_
