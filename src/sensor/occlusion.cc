#include "sensor/occlusion.h"

#include <algorithm>
#include <cmath>

namespace head::sensor {

bool SegmentIntersectsRect(double x0, double y0, double x1, double y1,
                           double cx, double cy, double hx, double hy) {
  // Slab (Liang–Barsky) clipping of the parametric segment against the box.
  const double dx = x1 - x0;
  const double dy = y1 - y0;
  double t0 = 0.0;
  double t1 = 1.0;
  const double lo_x = cx - hx;
  const double hi_x = cx + hx;
  const double lo_y = cy - hy;
  const double hi_y = cy + hy;

  auto clip = [&](double p, double q) {
    // Segment satisfies p·t <= q.
    if (std::fabs(p) < 1e-12) return q >= 0.0;
    const double r = q / p;
    if (p < 0.0) {
      if (r > t1) return false;
      t0 = std::max(t0, r);
    } else {
      if (r < t0) return false;
      t1 = std::min(t1, r);
    }
    return t0 <= t1;
  };

  return clip(-dx, x0 - lo_x) && clip(dx, hi_x - x0) &&
         clip(-dy, y0 - lo_y) && clip(dy, hi_y - y0);
}

bool Occludes(const VehicleState& observer, const VehicleState& target,
              const VehicleState& blocker, double lane_width_m) {
  const double x0 = observer.lon_m;
  const double y0 = LaneCenterY(observer.lane, lane_width_m);
  const double x1 = target.lon_m;
  const double y1 = LaneCenterY(target.lane, lane_width_m);
  // Shrink slightly: a grazing ray along the blocker's edge still sees the
  // target, and a blocker overlapping the target/observer should not count.
  const double shrink = 0.95;
  const double hx = 0.5 * kVehicleLengthM * shrink;
  const double hy = 0.5 * kVehicleWidthM * shrink;
  const double cx = blocker.lon_m;
  const double cy = LaneCenterY(blocker.lane, lane_width_m);
  return SegmentIntersectsRect(x0, y0, x1, y1, cx, cy, hx, hy);
}

}  // namespace head::sensor
