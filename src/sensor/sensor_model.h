// Onboard-sensor simulation: filters the ground-truth snapshot down to what
// the ego can actually perceive — limited detection radius R plus geometric
// occlusion. The paper simulates the same limitations on top of SUMO's
// global state ("we use the geometry [66]", Sec. V-A).
#ifndef HEAD_SENSOR_SENSOR_MODEL_H_
#define HEAD_SENSOR_SENSOR_MODEL_H_

#include <vector>

#include "common/types.h"
#include "sim/road.h"

namespace head::sensor {

struct SensorConfig {
  double range_m = 100.0;      ///< detection radius R (paper Sec. V-A)
  bool model_occlusion = true; ///< line-of-sight shadowing by other vehicles
};

/// Conventional vehicles visible to the ego at this instant. The ego itself
/// (id 0) is never part of the output.
std::vector<sim::VehicleSnapshot> Observe(
    const std::vector<sim::VehicleSnapshot>& global_snapshot,
    const VehicleState& ego, const SensorConfig& sensor,
    const RoadConfig& road);

/// True iff `target` is within range and unobstructed for an ego at `ego`.
/// `others` are potential blockers (entries equal to target/ego are skipped).
bool IsVisible(const VehicleState& ego, const sim::VehicleSnapshot& target,
               const std::vector<sim::VehicleSnapshot>& others,
               const SensorConfig& sensor, const RoadConfig& road);

}  // namespace head::sensor

#endif  // HEAD_SENSOR_SENSOR_MODEL_H_
