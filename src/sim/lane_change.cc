#include "sim/lane_change.h"

#include <limits>

#include "sim/idm.h"

namespace head::sim {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

double AccelWithLeader(const DriverParams& p, const VehicleState& s,
                       const VehicleSnapshot* leader) {
  if (leader == nullptr) {
    return IdmAccel(p, s.v_mps, 1e9, 0.0);
  }
  const double gap = Gap(leader->state.lon_m, s.lon_m);
  const double dv = s.v_mps - leader->state.v_mps;
  return IdmAccel(p, s.v_mps, gap, dv);
}

bool LaneChangeSafe(const RoadView& view, const Vehicle& veh,
                    int target_lane) {
  const VehicleSnapshot* new_leader =
      view.Leader(target_lane, veh.state.lon_m, veh.id);
  const VehicleSnapshot* new_follower =
      view.Follower(target_lane, veh.state.lon_m, veh.id);
  if (new_leader != nullptr &&
      Gap(new_leader->state.lon_m, veh.state.lon_m) < 0.5) {
    return false;
  }
  if (new_follower != nullptr) {
    const double gap = Gap(veh.state.lon_m, new_follower->state.lon_m);
    if (gap < 0.5) return false;
    // Deceleration imposed on the new follower must stay above −b_safe.
    // Use generic average driver params for the unknown follower.
    DriverParams follower_params;  // defaults ≈ population average
    const double dv = new_follower->state.v_mps - veh.state.v_mps;
    const double a_after =
        IdmAccel(follower_params, new_follower->state.v_mps, gap, dv);
    if (a_after < -veh.params.safe_decel_mps2) return false;
  }
  return true;
}

double LaneChangeIncentive(const RoadView& view, const Vehicle& veh,
                           int target_lane, const RoadConfig& road) {
  if (!road.IsValidLane(target_lane)) return kNegInf;
  if (!LaneChangeSafe(view, veh, target_lane)) return kNegInf;

  const VehicleState& s = veh.state;
  DriverParams generic;  // stand-in params for other drivers

  // Own gain.
  const VehicleSnapshot* cur_leader = view.Leader(s.lane, s.lon_m, veh.id);
  const VehicleSnapshot* new_leader = view.Leader(target_lane, s.lon_m, veh.id);
  const double a_self_before = AccelWithLeader(veh.params, s, cur_leader);
  const double a_self_after = AccelWithLeader(veh.params, s, new_leader);

  // New follower's loss: it gains `veh` as leader.
  double follower_delta = 0.0;
  const VehicleSnapshot* new_follower =
      view.Follower(target_lane, s.lon_m, veh.id);
  if (new_follower != nullptr) {
    const VehicleSnapshot* nf_leader =
        view.Leader(target_lane, new_follower->state.lon_m, veh.id);
    const double before =
        AccelWithLeader(generic, new_follower->state, nf_leader);
    VehicleSnapshot me{veh.id, s};
    me.state.lane = target_lane;
    const double after = AccelWithLeader(generic, new_follower->state, &me);
    follower_delta += after - before;
  }

  // Old follower's gain: it loses `veh` as leader.
  const VehicleSnapshot* old_follower = view.Follower(s.lane, s.lon_m, veh.id);
  if (old_follower != nullptr) {
    VehicleSnapshot me{veh.id, s};
    const double before =
        AccelWithLeader(generic, old_follower->state, &me);
    const double after =
        AccelWithLeader(generic, old_follower->state, cur_leader);
    follower_delta += after - before;
  }

  return (a_self_after - a_self_before) + veh.params.politeness * follower_delta;
}

std::optional<LaneChange> MobilDecide(const RoadView& view, const Vehicle& veh,
                                      const RoadConfig& road) {
  if (veh.lane_change_cooldown > 0) return std::nullopt;
  const double left =
      LaneChangeIncentive(view, veh, veh.state.lane - 1, road);
  const double right =
      LaneChangeIncentive(view, veh, veh.state.lane + 1, road);
  const double best = std::max(left, right);
  if (best <= veh.params.lc_threshold_mps2) return std::nullopt;
  return best == left ? LaneChange::kLeft : LaneChange::kRight;
}

}  // namespace head::sim
