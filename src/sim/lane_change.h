// MOBIL-style lane-change decision (Kesting/Treiber flavor of the LC models
// the paper cites as "LC" [8]): a candidate change must be safe for the new
// follower and must yield a net acceleration advantage weighted by a
// politeness factor.
#ifndef HEAD_SIM_LANE_CHANGE_H_
#define HEAD_SIM_LANE_CHANGE_H_

#include <optional>

#include "sim/road.h"
#include "sim/vehicle.h"

namespace head::sim {

/// Hypothetical IDM acceleration of a vehicle with params `p` and state `s`
/// if its leader were `leader` (nullptr = free road).
double AccelWithLeader(const DriverParams& p, const VehicleState& s,
                       const VehicleSnapshot* leader);

/// Whether moving `veh` into `target_lane` is safe: positive gaps to the new
/// leader/follower and the new follower not forced below −b_safe.
bool LaneChangeSafe(const RoadView& view, const Vehicle& veh, int target_lane);

/// MOBIL incentive of moving into `target_lane` (the paper's conventional
/// vehicles are "SUMO-controlled"; this reproduces their gap-seeking
/// behavior). Larger is better; only changes with incentive > threshold are
/// taken. Returns -inf when unsafe or lane invalid.
double LaneChangeIncentive(const RoadView& view, const Vehicle& veh,
                           int target_lane, const RoadConfig& road);

/// Full decision: best of {left, right} if its incentive clears the driver's
/// threshold, otherwise nullopt.
std::optional<LaneChange> MobilDecide(const RoadView& view, const Vehicle& veh,
                                      const RoadConfig& road);

}  // namespace head::sim

#endif  // HEAD_SIM_LANE_CHANGE_H_
