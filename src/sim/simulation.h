// The microscopic traffic simulation engine — the project's SUMO substitute.
// One ego (externally controlled through Step(maneuver), mirroring TraCI) and
// a fleet of conventional vehicles driven by IDM/ACC/Krauss + MOBIL lane
// changes. Advances in Δt ticks; detects ego collisions (vehicle crash or
// road-boundary hit) and arrival at the destination.
#ifndef HEAD_SIM_SIMULATION_H_
#define HEAD_SIM_SIMULATION_H_

#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "obs/recorder.h"
#include "sim/road.h"
#include "sim/spawner.h"
#include "sim/vehicle.h"

namespace head::sim {

struct SimConfig {
  RoadConfig road;
  SpawnConfig spawn;
  /// Whether conventional vehicles may change lanes (MOBIL).
  bool conventional_lane_changes = true;
  /// Lane-change cooldown for conventional drivers, in steps.
  int lane_change_cooldown_steps = 4;
  /// Ego initial speed; lane is drawn uniformly at Reset.
  double ego_init_speed_mps = 15.0;
  /// Hard episode cap (steps) as a divergence guard.
  int max_steps = 4000;
  /// Static obstacles added to every episode (lane closures, stalled
  /// vehicles — see sim/scenario.h). Ids are reassigned on Reset.
  std::vector<Vehicle> static_obstacles;
};

enum class EpisodeStatus {
  kRunning,
  kReachedDestination,
  kCollision,
  kTimeout,
};

const char* ToString(EpisodeStatus s);

/// Maps the sim status onto the flight recorder's layer-neutral outcome.
obs::EpisodeEnd ToEpisodeEnd(EpisodeStatus s);

class Simulation {
 public:
  /// Builds and immediately resets to a fresh episode derived from `seed`.
  Simulation(const SimConfig& config, uint64_t seed);

  /// Starts a new episode: fresh fleet, ego at the origin on a random lane.
  void Reset(uint64_t seed);

  const SimConfig& config() const { return config_; }
  EpisodeStatus status() const { return status_; }
  int step_count() const { return step_count_; }
  double time_s() const { return step_count_ * config_.road.dt_s; }

  const VehicleState& ego_state() const { return ego_.state; }
  const std::vector<Vehicle>& conventional_vehicles() const { return fleet_; }

  /// Ground-truth snapshot of every vehicle (ego id 0 included) — what an
  /// oracle would see; the sensor model filters this.
  std::vector<VehicleSnapshot> GlobalSnapshot() const;

  /// Indexed view over GlobalSnapshot().
  RoadView View() const;

  /// Advances one Δt with the given ego maneuver. No-op once terminal.
  EpisodeStatus Step(const Maneuver& ego_maneuver);

  /// Acceleration each conventional vehicle applied during the last Step
  /// (parallel to conventional_vehicles()); empty before the first step.
  const std::vector<double>& last_conventional_accels() const {
    return last_accels_;
  }

 private:
  double ConventionalAccel(const Vehicle& v, const RoadView& view);
  void ApplyLaneChanges(const Maneuver& ego_maneuver);
  bool EgoCollided(double ego_prev_lon,
                   const std::vector<double>& prev_lons) const;

  SimConfig config_;
  Rng rng_;
  Vehicle ego_;  // id 0; params unused (externally controlled)
  std::vector<Vehicle> fleet_;
  std::vector<double> last_accels_;
  EpisodeStatus status_ = EpisodeStatus::kRunning;
  int step_count_ = 0;
};

}  // namespace head::sim

#endif  // HEAD_SIM_SIMULATION_H_
