// Krauss stochastic safe-speed car-following model (Krauß, Wagner & Gawron
// 1997 — paper ref [71]); the default longitudinal model of SUMO.
#ifndef HEAD_SIM_KRAUSS_H_
#define HEAD_SIM_KRAUSS_H_

#include "common/rng.h"
#include "sim/vehicle.h"

namespace head::sim {

/// Safe speed w.r.t. a leader: v_safe = v_l + (gap − v_l·τ) / (v̄/b + τ)
/// with v̄ the mean of own and leader speed and τ the driver reaction time
/// (we use the simulation step).
double KraussSafeSpeed(const DriverParams& p, double v, double v_leader,
                       double gap_m, double tau_s);

/// One Krauss update: returns the *acceleration* realizing
/// v' = max(0, min(v+aΔt, v_safe, v0) − ε·a·σ) so callers can integrate it
/// like the other models. `rng` supplies the dawdling draw ε ∈ [0,1).
double KraussAccel(const DriverParams& p, double v, double v_leader,
                   double gap_m, double dt_s, Rng& rng);

}  // namespace head::sim

#endif  // HEAD_SIM_KRAUSS_H_
