#include "sim/acc.h"

#include <algorithm>

namespace head::sim {

double AccAccel(const DriverParams& p, const AccGains& gains, double v,
                double gap_m, double dv) {
  const double desired_gap = p.min_gap_m + p.time_headway_s * v;
  // Free-flow when the leader is far beyond the controlled-gap regime.
  if (gap_m > 2.5 * desired_gap + 50.0) {
    return std::clamp(gains.k_free * (p.desired_speed_mps - v),
                      -p.comfort_decel_mps2, p.max_accel_mps2);
  }
  const double a = gains.k_gap * (gap_m - desired_gap) + gains.k_speed * (-dv);
  // Never exceed the free-flow speed tracking command.
  const double a_speed = gains.k_free * (p.desired_speed_mps - v);
  return std::clamp(std::min(a, a_speed), -2.0 * p.comfort_decel_mps2,
                    p.max_accel_mps2);
}

}  // namespace head::sim
