// Named traffic scenarios — the congestion situations the paper's
// introduction motivates (bottlenecks from lane closures, stop-and-go
// shockwaves, dense commuter traffic). Each preset yields a SimConfig the
// examples and extension studies can run any decision policy through.
#ifndef HEAD_SIM_SCENARIO_H_
#define HEAD_SIM_SCENARIO_H_

#include <string>
#include <vector>

#include "sim/simulation.h"

namespace head::sim {

/// The paper's evaluation geometry: straight six-lane road, 180 veh/km.
SimConfig PaperHighwayScenario(double length_m = 3000.0);

/// Dense commuter traffic: higher density and slower, more varied drivers.
SimConfig DenseTrafficScenario(double length_m = 800.0,
                               double density_veh_per_km = 240.0);

/// Lane-closure bottleneck: the rightmost `closed_lanes` lanes are blocked
/// by stalled vehicles over [start_m, start_m + closure_length_m], forcing
/// merges — the classic congestion trigger of the introduction.
SimConfig BottleneckScenario(double length_m = 800.0, int closed_lanes = 2,
                             double start_m = 400.0,
                             double closure_length_m = 120.0);

/// Stop-and-go: a platoon of very slow vehicles mid-road seeds a shockwave
/// that propagates backwards through dense traffic.
SimConfig StopAndGoScenario(double length_m = 800.0);

/// All presets, by name (for command-line tools).
std::vector<std::string> ScenarioNames();
SimConfig ScenarioByName(const std::string& name);

}  // namespace head::sim

#endif  // HEAD_SIM_SCENARIO_H_
