#include "sim/simulation.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "sim/acc.h"
#include "sim/idm.h"
#include "sim/krauss.h"
#include "sim/lane_change.h"

namespace head::sim {

const char* ToString(EpisodeStatus s) {
  switch (s) {
    case EpisodeStatus::kRunning:
      return "running";
    case EpisodeStatus::kReachedDestination:
      return "reached_destination";
    case EpisodeStatus::kCollision:
      return "collision";
    case EpisodeStatus::kTimeout:
      return "timeout";
  }
  return "?";
}

obs::EpisodeEnd ToEpisodeEnd(EpisodeStatus s) {
  switch (s) {
    case EpisodeStatus::kRunning:
      return obs::EpisodeEnd::kRunning;
    case EpisodeStatus::kReachedDestination:
      return obs::EpisodeEnd::kArrived;
    case EpisodeStatus::kCollision:
      return obs::EpisodeEnd::kCollision;
    case EpisodeStatus::kTimeout:
      return obs::EpisodeEnd::kTimeout;
  }
  return obs::EpisodeEnd::kRunning;
}

Simulation::Simulation(const SimConfig& config, uint64_t seed)
    : config_(config), rng_(seed) {
  HEAD_CHECK_GT(config_.road.num_lanes, 0);
  HEAD_CHECK_GT(config_.road.length_m, 0.0);
  Reset(seed);
}

void Simulation::Reset(uint64_t seed) {
  rng_ = Rng(seed);
  status_ = EpisodeStatus::kRunning;
  step_count_ = 0;
  last_accels_.clear();

  ego_.id = kEgoVehicleId;
  ego_.state.lane = rng_.UniformInt(1, config_.road.num_lanes);
  ego_.state.lon_m = 0.0;
  ego_.state.v_mps = std::clamp(config_.ego_init_speed_mps,
                                config_.road.v_min_mps,
                                config_.road.v_max_mps);
  fleet_ = SpawnInitialTraffic(config_.road, config_.spawn, ego_.state.lane,
                               ego_.state.lon_m, rng_);
  // Static obstacles: clear any spawned vehicle overlapping them, then
  // append with fresh ids.
  VehicleId next_id = 1;
  for (const Vehicle& v : fleet_) next_id = std::max(next_id, v.id + 1);
  for (Vehicle obstacle : config_.static_obstacles) {
    obstacle.id = next_id++;
    obstacle.stationary = true;
    std::erase_if(fleet_, [&](const Vehicle& v) {
      return v.state.lane == obstacle.state.lane &&
             std::fabs(v.state.lon_m - obstacle.state.lon_m) <
                 3.0 * kVehicleLengthM;
    });
    fleet_.push_back(std::move(obstacle));
  }
}

std::vector<VehicleSnapshot> Simulation::GlobalSnapshot() const {
  std::vector<VehicleSnapshot> out;
  out.reserve(fleet_.size() + 1);
  out.push_back({ego_.id, ego_.state});
  for (const Vehicle& v : fleet_) out.push_back({v.id, v.state});
  return out;
}

RoadView Simulation::View() const { return RoadView(GlobalSnapshot()); }

double Simulation::ConventionalAccel(const Vehicle& v, const RoadView& view) {
  const VehicleSnapshot* leader =
      view.Leader(v.state.lane, v.state.lon_m, v.id);
  const double gap =
      leader != nullptr ? Gap(leader->state.lon_m, v.state.lon_m) : 1e9;
  const double leader_v =
      leader != nullptr ? leader->state.v_mps : v.state.v_mps;
  const double dv = v.state.v_mps - leader_v;
  double a = 0.0;
  switch (v.model) {
    case CarFollowModel::kIdm:
      a = IdmAccel(v.params, v.state.v_mps, gap, dv);
      break;
    case CarFollowModel::kAcc: {
      AccGains gains;
      a = AccAccel(v.params, gains, v.state.v_mps, gap, dv);
      break;
    }
    case CarFollowModel::kKrauss:
      a = KraussAccel(v.params, v.state.v_mps, leader_v, gap,
                      config_.road.dt_s, rng_);
      break;
  }
  return std::clamp(a, -config_.road.a_max_mps2, config_.road.a_max_mps2);
}

void Simulation::ApplyLaneChanges(const Maneuver& ego_maneuver) {
  // Ego first: its lane change is part of the externally decided maneuver.
  ego_.state.lane += LaneDelta(ego_maneuver.lane_change);

  if (!config_.conventional_lane_changes) return;

  // All conventional changes are decided against one post-ego-change
  // snapshot (simultaneous decisions, as in SUMO's sub-steps), then
  // proposals that would merge into the same gap are conflict-resolved by
  // keeping only the front-most vehicle.
  const RoadView view = View();
  struct Proposal {
    size_t index;
    int target_lane;
    double lon;
  };
  std::vector<Proposal> proposals;
  for (size_t i = 0; i < fleet_.size(); ++i) {
    Vehicle& v = fleet_[i];
    if (v.stationary) continue;
    if (v.lane_change_cooldown > 0) {
      --v.lane_change_cooldown;
      continue;
    }
    // Beyond the destination nothing interacts with the ego anymore.
    if (v.state.lon_m > config_.road.length_m + 50.0) continue;
    const std::optional<LaneChange> change = MobilDecide(view, v, config_.road);
    if (change.has_value()) {
      proposals.push_back(
          {i, v.state.lane + LaneDelta(*change), v.state.lon_m});
    }
  }
  std::sort(proposals.begin(), proposals.end(),
            [](const Proposal& a, const Proposal& b) {
              if (a.target_lane != b.target_lane) {
                return a.target_lane < b.target_lane;
              }
              return a.lon > b.lon;  // front-most first
            });
  constexpr double kConflictGapM = 2.0 * kVehicleLengthM;
  double last_lon = 1e18;
  int last_lane = -1;
  for (const Proposal& p : proposals) {
    if (p.target_lane == last_lane && last_lon - p.lon < kConflictGapM) {
      continue;  // would merge into the slot just taken
    }
    Vehicle& v = fleet_[p.index];
    v.state.lane = p.target_lane;
    v.lane_change_cooldown = config_.lane_change_cooldown_steps;
    last_lane = p.target_lane;
    last_lon = p.lon;
  }
}

bool Simulation::EgoCollided(double ego_prev_lon,
                             const std::vector<double>& prev_lons) const {
  if (!config_.road.IsValidLane(ego_.state.lane)) return true;  // boundary hit
  for (size_t i = 0; i < fleet_.size(); ++i) {
    const Vehicle& v = fleet_[i];
    if (v.state.lane != ego_.state.lane) continue;
    const double d_now = v.state.lon_m - ego_.state.lon_m;
    if (std::fabs(d_now) < kVehicleLengthM) return true;
    // Tunneling guard: relative position sign flipped within the step.
    const double d_prev = prev_lons[i] - ego_prev_lon;
    if (d_prev * d_now < 0.0) return true;
  }
  return false;
}

EpisodeStatus Simulation::Step(const Maneuver& ego_maneuver) {
  if (status_ != EpisodeStatus::kRunning) return status_;
  HEAD_SPAN("sim.step");
  static obs::Counter& steps_counter = obs::GetCounter("sim.steps");
  static obs::Histogram& step_latency = obs::LatencyHistogram("sim.step");
  obs::ScopedTimer step_timer(step_latency);
  steps_counter.Add();

  if (std::fabs(ego_maneuver.accel_mps2) > config_.road.a_max_mps2) {
    HEAD_LOG_EVERY_N(Warning, 200)
        << "ego accel " << ego_maneuver.accel_mps2
        << " m/s^2 exceeds road a_max " << config_.road.a_max_mps2
        << "; kinematics will clamp it";
  }

  const double ego_prev_lon = ego_.state.lon_m;
  std::vector<double> prev_lons(fleet_.size());
  for (size_t i = 0; i < fleet_.size(); ++i) {
    prev_lons[i] = fleet_[i].state.lon_m;
  }

  // Phase 1: lateral moves (ego maneuver + MOBIL for conventional fleet).
  ApplyLaneChanges(ego_maneuver);

  // Phase 2: longitudinal accelerations against the post-change layout.
  const RoadView view = View();
  last_accels_.resize(fleet_.size());
  for (size_t i = 0; i < fleet_.size(); ++i) {
    last_accels_[i] =
        fleet_[i].stationary ? 0.0 : ConventionalAccel(fleet_[i], view);
  }

  // Phase 3: integrate.
  const Maneuver keep_lane_only{LaneChange::kKeep, ego_maneuver.accel_mps2};
  ego_.state = StepKinematics(ego_.state, keep_lane_only, config_.road);
  for (size_t i = 0; i < fleet_.size(); ++i) {
    if (fleet_[i].stationary) continue;
    fleet_[i].state = StepKinematics(
        fleet_[i].state, Maneuver{LaneChange::kKeep, last_accels_[i]},
        config_.road);
  }

  ++step_count_;

  // Phase 4: episode termination.
  if (EgoCollided(ego_prev_lon, prev_lons)) {
    status_ = EpisodeStatus::kCollision;
  } else if (ego_.state.lon_m >= config_.road.length_m) {
    status_ = EpisodeStatus::kReachedDestination;
  } else if (step_count_ >= config_.max_steps) {
    status_ = EpisodeStatus::kTimeout;
  }

  if (obs::RecordingEnabled()) {
    // The flight recorder's view of the applied maneuver and its immediate
    // outcome; perception/decision layers fill their slices upstream and the
    // step loop commits downstream.
    obs::StepRecord& rec = obs::ScratchRecord();
    rec.step = step_count_;
    rec.time_s = time_s();
    rec.ego_lane = ego_.state.lane;
    rec.ego_lon_m = ego_.state.lon_m;
    rec.ego_v_mps = ego_.state.v_mps;
    rec.lane_change = static_cast<int8_t>(LaneDelta(ego_maneuver.lane_change));
    rec.accel_mps2 = ego_maneuver.accel_mps2;
    rec.end = ToEpisodeEnd(status_);
  }
  return status_;
}

}  // namespace head::sim
