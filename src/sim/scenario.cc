#include "sim/scenario.h"

#include "common/check.h"

namespace head::sim {

namespace {

Vehicle StalledVehicle(int lane, double lon_m) {
  Vehicle v;
  v.state = VehicleState{lane, lon_m, 0.0};
  v.stationary = true;
  return v;
}

}  // namespace

SimConfig PaperHighwayScenario(double length_m) {
  SimConfig config;
  config.road.length_m = length_m;
  config.spawn.density_veh_per_km = 180.0;
  return config;
}

SimConfig DenseTrafficScenario(double length_m, double density_veh_per_km) {
  SimConfig config;
  config.road.length_m = length_m;
  config.spawn.density_veh_per_km = density_veh_per_km;
  config.spawn.back_margin_m = 250.0;
  config.spawn.front_margin_m = 250.0;
  config.ego_init_speed_mps = 12.0;
  return config;
}

SimConfig BottleneckScenario(double length_m, int closed_lanes,
                             double start_m, double closure_length_m) {
  SimConfig config;
  config.road.length_m = length_m;
  config.spawn.density_veh_per_km = 150.0;
  config.spawn.back_margin_m = 250.0;
  config.spawn.front_margin_m = 250.0;
  HEAD_CHECK_GT(closed_lanes, 0);
  HEAD_CHECK_LT(closed_lanes, config.road.num_lanes);
  // A wall of stalled vehicles every 2 vehicle lengths per closed lane.
  for (int k = 0; k < closed_lanes; ++k) {
    const int lane = config.road.num_lanes - k;
    for (double lon = start_m; lon <= start_m + closure_length_m;
         lon += 2.0 * kVehicleLengthM) {
      config.static_obstacles.push_back(StalledVehicle(lane, lon));
    }
  }
  return config;
}

SimConfig StopAndGoScenario(double length_m) {
  SimConfig config;
  config.road.length_m = length_m;
  config.spawn.density_veh_per_km = 200.0;
  config.spawn.back_margin_m = 250.0;
  config.spawn.front_margin_m = 250.0;
  // A short stalled platoon in the two middle lanes seeds the shockwave.
  const int mid = config.road.num_lanes / 2;
  for (int lane = mid; lane <= mid + 1; ++lane) {
    for (double lon = 380.0; lon <= 420.0; lon += 2.0 * kVehicleLengthM) {
      config.static_obstacles.push_back(StalledVehicle(lane, lon));
    }
  }
  return config;
}

std::vector<std::string> ScenarioNames() {
  return {"paper", "dense", "bottleneck", "stop_and_go"};
}

SimConfig ScenarioByName(const std::string& name) {
  if (name == "paper") return PaperHighwayScenario();
  if (name == "dense") return DenseTrafficScenario();
  if (name == "bottleneck") return BottleneckScenario();
  if (name == "stop_and_go") return StopAndGoScenario();
  HEAD_CHECK_MSG(false, "unknown scenario: " << name);
}

}  // namespace head::sim
