// Spatial queries over one time-step snapshot of the road: nearest leader /
// follower per lane. Used by the car-following and lane-change models, the
// sensor, and the decision baselines.
#ifndef HEAD_SIM_ROAD_H_
#define HEAD_SIM_ROAD_H_

#include <optional>
#include <vector>

#include "common/types.h"

namespace head::sim {

/// One vehicle's identity + kinematic state within a snapshot.
struct VehicleSnapshot {
  VehicleId id = kInvalidVehicleId;
  VehicleState state;
};

/// Immutable index over a snapshot, sorted by (lane, lon) for O(log n)
/// leader/follower queries.
class RoadView {
 public:
  explicit RoadView(std::vector<VehicleSnapshot> vehicles);

  /// Nearest vehicle strictly ahead of `lon_m` in `lane` (excluding
  /// `exclude_id`), or nullptr.
  const VehicleSnapshot* Leader(int lane, double lon_m,
                                VehicleId exclude_id = kInvalidVehicleId) const;

  /// Nearest vehicle at or behind `lon_m` in `lane` (excluding `exclude_id`),
  /// or nullptr. A vehicle exactly at `lon_m` counts as follower, matching
  /// the convention that the querying vehicle itself is excluded by id.
  const VehicleSnapshot* Follower(
      int lane, double lon_m, VehicleId exclude_id = kInvalidVehicleId) const;

  /// All vehicles, sorted by (lane, lon).
  const std::vector<VehicleSnapshot>& vehicles() const { return sorted_; }

  /// Finds a vehicle by id (linear scan), or nullptr.
  const VehicleSnapshot* Find(VehicleId id) const;

 private:
  std::vector<VehicleSnapshot> sorted_;
  // Index of the first vehicle of each lane in sorted_ (lane -> range).
  std::vector<std::pair<int, std::pair<int, int>>> lane_ranges_;

  std::pair<int, int> LaneRange(int lane) const;
};

/// Bumper-to-bumper gap between a follower at `rear_lon` and a leader at
/// `front_lon`, assuming both have length kVehicleLengthM (negative = overlap).
inline double Gap(double front_lon, double rear_lon) {
  return front_lon - rear_lon - kVehicleLengthM;
}

}  // namespace head::sim

#endif  // HEAD_SIM_ROAD_H_
