#include "sim/spawner.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace head::sim {

std::vector<Vehicle> SpawnInitialTraffic(const RoadConfig& road,
                                         const SpawnConfig& spawn,
                                         int ego_lane, double ego_lon,
                                         Rng& rng) {
  HEAD_CHECK(road.IsValidLane(ego_lane));
  HEAD_CHECK_GT(spawn.density_veh_per_km, 0.0);
  const double begin = -spawn.back_margin_m;
  const double end = road.length_m + spawn.front_margin_m;
  const double per_lane_density_per_m =
      spawn.density_veh_per_km / 1000.0 / road.num_lanes;
  const double mean_spacing = 1.0 / per_lane_density_per_m;  // center-to-center

  std::vector<Vehicle> fleet;
  VehicleId next_id = 1;  // 0 is reserved for the ego
  for (int lane = 1; lane <= road.num_lanes; ++lane) {
    // Walk front-to-back so each vehicle can match speed to its leader.
    double lon = end - rng.Uniform(0.0, mean_spacing);
    double leader_v = -1.0;
    while (lon >= begin) {
      const bool in_ego_zone =
          lane == ego_lane && std::fabs(lon - ego_lon) < spawn.ego_clear_zone_m;
      if (!in_ego_zone) {
        Vehicle v;
        v.id = next_id++;
        v.params = DriverParams::Sample(rng);
        v.model = spawn.model;
        v.state.lane = lane;
        v.state.lon_m = lon;
        double speed = std::min(v.params.desired_speed_mps,
                                rng.Normal(19.0, 2.0));
        if (leader_v >= 0.0) speed = std::min(speed, leader_v + 2.0);
        v.state.v_mps = std::clamp(speed, road.v_min_mps, road.v_max_mps);
        leader_v = v.state.v_mps;
        fleet.push_back(v);
      }
      // Headway: minimum safe spacing plus an exponential free component so
      // the expected center-to-center spacing matches the target density.
      const double min_spacing = kVehicleLengthM + 3.0;
      const double free_mean = std::max(mean_spacing - min_spacing, 1.0);
      const double u = std::max(rng.Uniform(0.0, 1.0), 1e-9);
      const double spacing = min_spacing - free_mean * std::log(u);
      lon -= spacing;
    }
  }
  return fleet;
}

}  // namespace head::sim
