// Initial traffic placement: fills the road (plus margins behind the origin
// and beyond the destination) with heterogeneous conventional vehicles at a
// target density, leaving a clear slot for the ego vehicle.
#ifndef HEAD_SIM_SPAWNER_H_
#define HEAD_SIM_SPAWNER_H_

#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/vehicle.h"

namespace head::sim {

struct SpawnConfig {
  double density_veh_per_km = 180.0;  ///< total across all lanes (paper V-A)
  double back_margin_m = 300.0;       ///< spawn extent behind the origin
  double front_margin_m = 300.0;      ///< spawn extent beyond the road end
  CarFollowModel model = CarFollowModel::kIdm;
  /// Clear zone radius (m) kept empty around the ego start position.
  double ego_clear_zone_m = 20.0;
};

/// Generates the initial conventional fleet. Ids start at 1 (0 is the ego).
/// `ego_lane` and `ego_lon` describe the ego start slot to keep clear.
std::vector<Vehicle> SpawnInitialTraffic(const RoadConfig& road,
                                         const SpawnConfig& spawn,
                                         int ego_lane, double ego_lon,
                                         Rng& rng);

}  // namespace head::sim

#endif  // HEAD_SIM_SPAWNER_H_
