#include "sim/krauss.h"

#include <algorithm>

namespace head::sim {

double KraussSafeSpeed(const DriverParams& p, double v, double v_leader,
                       double gap_m, double tau_s) {
  const double v_bar = std::max(0.5 * (v + v_leader), 0.0);
  const double denom = v_bar / p.comfort_decel_mps2 + tau_s;
  return std::max(0.0, v_leader + (gap_m - v_leader * tau_s) /
                                      std::max(denom, 1e-6));
}

double KraussAccel(const DriverParams& p, double v, double v_leader,
                   double gap_m, double dt_s, Rng& rng) {
  const double v_safe = KraussSafeSpeed(p, v, v_leader, gap_m, dt_s);
  const double v_des = std::min({v + p.max_accel_mps2 * dt_s, v_safe,
                                 p.desired_speed_mps});
  const double dawdle = rng.Uniform(0.0, 1.0) * p.sigma * p.max_accel_mps2 *
                        dt_s;
  const double v_new = std::max(0.0, v_des - dawdle);
  return (v_new - v) / dt_s;
}

}  // namespace head::sim
