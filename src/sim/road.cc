#include "sim/road.h"

#include <algorithm>

#include "common/check.h"

namespace head::sim {

RoadView::RoadView(std::vector<VehicleSnapshot> vehicles)
    : sorted_(std::move(vehicles)) {
  std::sort(sorted_.begin(), sorted_.end(),
            [](const VehicleSnapshot& a, const VehicleSnapshot& b) {
              if (a.state.lane != b.state.lane) {
                return a.state.lane < b.state.lane;
              }
              return a.state.lon_m < b.state.lon_m;
            });
  int begin = 0;
  for (int i = 1; i <= static_cast<int>(sorted_.size()); ++i) {
    if (i == static_cast<int>(sorted_.size()) ||
        sorted_[i].state.lane != sorted_[begin].state.lane) {
      lane_ranges_.push_back({sorted_[begin].state.lane, {begin, i}});
      begin = i;
    }
  }
}

std::pair<int, int> RoadView::LaneRange(int lane) const {
  for (const auto& [l, range] : lane_ranges_) {
    if (l == lane) return range;
  }
  return {0, 0};
}

const VehicleSnapshot* RoadView::Leader(int lane, double lon_m,
                                        VehicleId exclude_id) const {
  const auto [begin, end] = LaneRange(lane);
  // First vehicle with lon > lon_m.
  int lo = begin;
  int hi = end;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (sorted_[mid].state.lon_m > lon_m) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  for (int i = lo; i < end; ++i) {
    if (sorted_[i].id != exclude_id) return &sorted_[i];
  }
  return nullptr;
}

const VehicleSnapshot* RoadView::Follower(int lane, double lon_m,
                                          VehicleId exclude_id) const {
  const auto [begin, end] = LaneRange(lane);
  int lo = begin;
  int hi = end;
  while (lo < hi) {
    const int mid = (lo + hi) / 2;
    if (sorted_[mid].state.lon_m > lon_m) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  for (int i = lo - 1; i >= begin; --i) {
    if (sorted_[i].id != exclude_id) return &sorted_[i];
  }
  return nullptr;
}

const VehicleSnapshot* RoadView::Find(VehicleId id) const {
  for (const VehicleSnapshot& v : sorted_) {
    if (v.id == id) return &v;
  }
  return nullptr;
}

}  // namespace head::sim
