// Intelligent Driver Model (Treiber, Hennecke & Helbing, Phys. Rev. E 62,
// 2000 — paper ref [69]). Longitudinal acceleration from own speed, leader
// approach rate and bumper gap.
#ifndef HEAD_SIM_IDM_H_
#define HEAD_SIM_IDM_H_

#include "sim/vehicle.h"

namespace head::sim {

/// IDM acceleration.
///  v        — own speed (m/s)
///  gap_m    — bumper-to-bumper gap to leader; pass a large value (e.g. 1e9)
///             when there is no leader
///  dv       — approach rate v − v_leader (positive when closing)
double IdmAccel(const DriverParams& p, double v, double gap_m, double dv);

/// Desired (equilibrium-seeking) dynamic gap s*(v, Δv) of the IDM.
double IdmDesiredGap(const DriverParams& p, double v, double dv);

}  // namespace head::sim

#endif  // HEAD_SIM_IDM_H_
