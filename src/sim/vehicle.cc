#include "sim/vehicle.h"

#include <algorithm>

namespace head::sim {

DriverParams DriverParams::Sample(Rng& rng) {
  DriverParams p;
  p.desired_speed_mps = std::clamp(rng.Normal(20.0, 2.0), 15.0, 24.0);
  p.time_headway_s = std::clamp(rng.Normal(1.5, 0.3), 1.0, 2.5);
  p.min_gap_m = std::clamp(rng.Normal(2.0, 0.4), 1.0, 3.5);
  p.max_accel_mps2 = std::clamp(rng.Normal(2.0, 0.3), 1.2, 3.0);
  p.comfort_decel_mps2 = std::clamp(rng.Normal(2.5, 0.3), 1.5, 3.0);
  p.politeness = std::clamp(rng.Normal(0.3, 0.15), 0.0, 1.0);
  p.lc_threshold_mps2 = std::clamp(rng.Normal(0.15, 0.05), 0.05, 0.4);
  p.safe_decel_mps2 = 3.5;
  p.sigma = std::clamp(rng.Normal(0.3, 0.1), 0.0, 0.6);
  return p;
}

}  // namespace head::sim
