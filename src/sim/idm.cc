#include "sim/idm.h"

#include <algorithm>
#include <cmath>

namespace head::sim {

double IdmDesiredGap(const DriverParams& p, double v, double dv) {
  const double dynamic = v * p.time_headway_s +
                         v * dv / (2.0 * std::sqrt(p.max_accel_mps2 *
                                                   p.comfort_decel_mps2));
  return p.min_gap_m + std::max(0.0, dynamic);
}

double IdmAccel(const DriverParams& p, double v, double gap_m, double dv) {
  const double gap = std::max(gap_m, 0.1);  // avoid the singularity at 0
  const double v0 = std::max(p.desired_speed_mps, 0.1);
  const double free_term = std::pow(v / v0, 4.0);
  const double s_star = IdmDesiredGap(p, v, dv);
  const double interaction = (s_star / gap) * (s_star / gap);
  return p.max_accel_mps2 * (1.0 - free_term - interaction);
}

}  // namespace head::sim
