// Conventional-vehicle description: kinematic state plus heterogeneous
// driver parameters for the car-following and lane-change models.
#ifndef HEAD_SIM_VEHICLE_H_
#define HEAD_SIM_VEHICLE_H_

#include "common/rng.h"
#include "common/types.h"

namespace head::sim {

/// Which longitudinal model a conventional vehicle drives with.
enum class CarFollowModel {
  kIdm,     // Intelligent Driver Model (Treiber et al. [69])
  kAcc,     // linear Adaptive Cruise Control (Milanés & Shladover [6])
  kKrauss,  // Krauss stochastic safe-speed model [71]
};

/// Per-driver parameters; sampled per vehicle to create heterogeneous
/// traffic. Field meanings follow the published models.
struct DriverParams {
  double desired_speed_mps = 20.0;  ///< v0
  double time_headway_s = 1.5;      ///< T (IDM) / t_hw (ACC)
  double min_gap_m = 2.0;           ///< s0
  double max_accel_mps2 = 2.0;      ///< a
  double comfort_decel_mps2 = 2.5;  ///< b
  // MOBIL lane-change parameters.
  double politeness = 0.3;            ///< p
  double lc_threshold_mps2 = 0.15;    ///< Δa_th incentive threshold
  double safe_decel_mps2 = 3.5;       ///< b_safe imposed on new follower
  // Krauss imperfection.
  double sigma = 0.3;  ///< random deceleration share

  /// Samples realistic heterogeneous parameters.
  static DriverParams Sample(Rng& rng);
};

/// A conventional vehicle owned by the simulation.
struct Vehicle {
  VehicleId id = kInvalidVehicleId;
  VehicleState state;
  DriverParams params;
  CarFollowModel model = CarFollowModel::kIdm;
  /// Steps remaining before this driver may change lanes again (cooldown
  /// prevents oscillatory ping-pong changes).
  int lane_change_cooldown = 0;
  /// Static obstacle (e.g., a lane closure): never moves, never decides.
  bool stationary = false;
};

}  // namespace head::sim

#endif  // HEAD_SIM_VEHICLE_H_
