// Linear Adaptive Cruise Control model (Milanés & Shladover, 2014 — paper
// ref [6]): constant-time-gap feedback controller, falling back to speed
// regulation when no leader is in range.
#ifndef HEAD_SIM_ACC_H_
#define HEAD_SIM_ACC_H_

#include "sim/vehicle.h"

namespace head::sim {

/// Standard gains from the CACC/ACC literature.
struct AccGains {
  double k_gap = 0.23;    ///< gap-error gain (1/s²)
  double k_speed = 0.6;   ///< speed-error gain (1/s)
  double k_free = 0.4;    ///< free-flow speed-tracking gain (1/s)
};

/// ACC acceleration. `gap_m` is bumper-to-bumper; pass a large value when no
/// leader exists and the controller regulates toward the desired speed.
/// `dv` is v − v_leader.
double AccAccel(const DriverParams& p, const AccGains& gains, double v,
                double gap_m, double dv);

}  // namespace head::sim

#endif  // HEAD_SIM_ACC_H_
