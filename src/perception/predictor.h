// Common interface of all one-step state predictors (LST-GAT and the
// Table III/IV baselines). Every predictor consumes the same completed
// spatial-temporal graph and emits, for each of the six targets, its
// predicted state at t+1 relative to the ego at t (paper Eq. 13).
//
// Internally all predictors regress the scaled *residual* from the target's
// current relative state — a parameterization choice that leaves the paper's
// task unchanged while conditioning the optimization well.
#ifndef HEAD_PERCEPTION_PREDICTOR_H_
#define HEAD_PERCEPTION_PREDICTOR_H_

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "nn/layers.h"
#include "nn/plan.h"
#include "perception/st_graph.h"

namespace head::perception {

/// Predicted state of one target at t+1, relative to the ego at t:
/// [d̂_lat (m), d̂_lon (m), v̂_rel (m/s)] — the expansion of Eq. (13).
struct PredictedState {
  double d_lat_m = 0.0;
  double d_lon_m = 0.0;
  double v_rel_mps = 0.0;
};

using Prediction = std::array<PredictedState, kNumAreas>;

/// Ground-truth targets for one training sample.
struct PredictionTruth {
  /// Raw [d_lat, d_lon, v_rel] of each C_i at t+1 relative to the ego at t.
  std::array<std::array<double, 3>, kNumAreas> value{};
  /// False ⇒ the loss is masked (phantom target, or the vehicle left the
  /// scene at t+1 so no ground truth exists) — paper's loss masking (Eq. 14).
  std::array<bool, kNumAreas> valid{};
};

struct PredictionSample {
  StGraph graph;
  PredictionTruth truth;
};

/// A predictor with trainable parameters.
class StatePredictor : public nn::Module {
 public:
  explicit StatePredictor(FeatureScale scale) : scale_(scale) {}

  virtual std::string name() const = 0;

  /// Differentiable forward pass: (6×3) Var of *scaled residuals* from each
  /// target's current relative state. Used by the trainer.
  virtual nn::Var ForwardScaled(const StGraph& graph) const = 0;

  /// Differentiable minibatch forward pass: (B·6×3) Var, sample-major (the
  /// 6 rows of graphs[0], then graphs[1], …). The default stacks per-sample
  /// ForwardScaled results; models override it with a genuinely vectorized
  /// pass (one autograd graph over the whole minibatch).
  virtual nn::Var ForwardScaledBatch(
      const std::vector<const StGraph*>& graphs) const;

  /// True when ForwardScaled/ForwardScaledBatch build a fixed-shape graph
  /// for a given history depth z whose data enters only through
  /// nn::PlanInput, so Predict and the trainer may compile the pass into a
  /// static nn::ExecPlan. The per-sample stacking default is not.
  virtual bool PlanCapturable() const { return false; }
  /// Replay feeders: push the input tensors in the exact order a captured
  /// ForwardScaled(graph) / ForwardScaledBatch(graphs) consumed them. Only
  /// valid when PlanCapturable().
  virtual void AppendPlanInputs(const StGraph& graph,
                                std::vector<nn::Tensor>* inputs) const;
  virtual void AppendPlanInputsBatch(const std::vector<const StGraph*>& graphs,
                                     std::vector<nn::Tensor>* inputs) const;
  /// Trace-span name a replayed forward pass is attributed to — the same
  /// span the model's eager ForwardScaled opens, so traces look identical
  /// whether a step ran eagerly or as a plan replay.
  virtual const char* ForwardSpanName() const { return "perception.forward"; }

  /// Inference: decodes ForwardScaled into absolute relative states.
  /// When PlanCapturable(), the forward pass is compiled into one ExecPlan
  /// per history depth z on first use and replayed afterwards — safe to call
  /// concurrently from EnvPool workers (replay state is per-thread).
  Prediction Predict(const StGraph& graph) const;

  /// Disables plan compilation for this predictor (e.g. when the caller
  /// mutates parameters structurally between predictions). Plans also
  /// respect the global HEAD_PLANS=0 switch.
  void set_static_plans(bool on) { static_plans_ = on; }
  bool static_plans() const { return static_plans_; }

  const FeatureScale& scale() const { return scale_; }

 protected:
  FeatureScale scale_;

 private:
  bool static_plans_ = true;
  /// Predict's compiled plans, keyed by history depth z (shapes depend only
  /// on z for a capturable predictor). Guarded: Predict may race with
  /// itself across EnvPool workers.
  mutable std::mutex plan_mu_;
  mutable std::unordered_map<int, std::shared_ptr<const nn::ExecPlan>>
      predict_plans_;
};

/// Scaled residual truth used for the regression loss: per target,
/// (truth − current) * scale per component.
nn::Tensor ScaledResidualTruth(const StGraph& graph,
                               const PredictionTruth& truth,
                               const FeatureScale& scale);

/// (6×3) mask tensor: 1 where the loss applies, 0 where masked.
nn::Tensor TruthMask(const PredictionTruth& truth);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_PREDICTOR_H_
