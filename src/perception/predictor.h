// Common interface of all one-step state predictors (LST-GAT and the
// Table III/IV baselines). Every predictor consumes the same completed
// spatial-temporal graph and emits, for each of the six targets, its
// predicted state at t+1 relative to the ego at t (paper Eq. 13).
//
// Internally all predictors regress the scaled *residual* from the target's
// current relative state — a parameterization choice that leaves the paper's
// task unchanged while conditioning the optimization well.
#ifndef HEAD_PERCEPTION_PREDICTOR_H_
#define HEAD_PERCEPTION_PREDICTOR_H_

#include <array>
#include <string>
#include <vector>

#include "nn/layers.h"
#include "perception/st_graph.h"

namespace head::perception {

/// Predicted state of one target at t+1, relative to the ego at t:
/// [d̂_lat (m), d̂_lon (m), v̂_rel (m/s)] — the expansion of Eq. (13).
struct PredictedState {
  double d_lat_m = 0.0;
  double d_lon_m = 0.0;
  double v_rel_mps = 0.0;
};

using Prediction = std::array<PredictedState, kNumAreas>;

/// Ground-truth targets for one training sample.
struct PredictionTruth {
  /// Raw [d_lat, d_lon, v_rel] of each C_i at t+1 relative to the ego at t.
  std::array<std::array<double, 3>, kNumAreas> value{};
  /// False ⇒ the loss is masked (phantom target, or the vehicle left the
  /// scene at t+1 so no ground truth exists) — paper's loss masking (Eq. 14).
  std::array<bool, kNumAreas> valid{};
};

struct PredictionSample {
  StGraph graph;
  PredictionTruth truth;
};

/// A predictor with trainable parameters.
class StatePredictor : public nn::Module {
 public:
  explicit StatePredictor(FeatureScale scale) : scale_(scale) {}

  virtual std::string name() const = 0;

  /// Differentiable forward pass: (6×3) Var of *scaled residuals* from each
  /// target's current relative state. Used by the trainer.
  virtual nn::Var ForwardScaled(const StGraph& graph) const = 0;

  /// Differentiable minibatch forward pass: (B·6×3) Var, sample-major (the
  /// 6 rows of graphs[0], then graphs[1], …). The default stacks per-sample
  /// ForwardScaled results; models override it with a genuinely vectorized
  /// pass (one autograd graph over the whole minibatch).
  virtual nn::Var ForwardScaledBatch(
      const std::vector<const StGraph*>& graphs) const;

  /// Inference: decodes ForwardScaled into absolute relative states.
  Prediction Predict(const StGraph& graph) const;

  const FeatureScale& scale() const { return scale_; }

 protected:
  FeatureScale scale_;
};

/// Scaled residual truth used for the regression loss: per target,
/// (truth − current) * scale per component.
nn::Tensor ScaledResidualTruth(const StGraph& graph,
                               const PredictionTruth& truth,
                               const FeatureScale& scale);

/// (6×3) mask tensor: 1 where the loss applies, 0 where masked.
nn::Tensor TruthMask(const PredictionTruth& truth);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_PREDICTOR_H_
