#include "perception/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/logging.h"
#include "nn/autograd.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace head::perception {

namespace {

/// Masked scaled MSE of one sample as a differentiable Var.
nn::Var SampleLoss(const StatePredictor& model, const PredictionSample& s) {
  const nn::Var pred = model.ForwardScaled(s.graph);
  const nn::Var truth =
      nn::Var::Constant(ScaledResidualTruth(s.graph, s.truth, model.scale()));
  const nn::Var mask = nn::Var::Constant(TruthMask(s.truth));
  int valid = 0;
  for (bool v : s.truth.valid) valid += v ? 1 : 0;
  if (valid == 0) {
    return nn::Var::Constant(nn::Tensor::Zeros(1, 1));
  }
  const nn::Var err = nn::Mul(nn::Sub(pred, truth), mask);
  return nn::Scale(nn::Sum(nn::Square(err)), 1.0 / (3.0 * valid));
}

/// Mean masked scaled MSE of a whole minibatch as ONE differentiable Var:
/// truth and per-element weights (mask / (3·valid_s), zero rows for all-
/// masked samples) are stacked sample-major to match ForwardScaledBatch.
nn::Var BatchLoss(const StatePredictor& model,
                  const std::vector<const PredictionSample*>& batch) {
  const int b = static_cast<int>(batch.size());
  std::vector<const StGraph*> graphs;
  graphs.reserve(b);
  nn::Tensor truth(b * kNumAreas, 3);
  nn::Tensor weight(b * kNumAreas, 3);
  for (int s = 0; s < b; ++s) {
    const PredictionSample& sample = *batch[s];
    graphs.push_back(&sample.graph);
    const nn::Tensor t =
        ScaledResidualTruth(sample.graph, sample.truth, model.scale());
    int valid = 0;
    for (bool v : sample.truth.valid) valid += v ? 1 : 0;
    const double w = valid > 0 ? 1.0 / (3.0 * valid) : 0.0;
    for (int i = 0; i < kNumAreas; ++i) {
      for (int c = 0; c < 3; ++c) {
        truth.At(s * kNumAreas + i, c) = t.At(i, c);
        weight.At(s * kNumAreas + i, c) =
            sample.truth.valid[i] ? w : 0.0;
      }
    }
  }
  const nn::Var pred = model.ForwardScaledBatch(graphs);
  const nn::Var err = nn::Sub(pred, nn::Var::Constant(std::move(truth)));
  const nn::Var weighted =
      nn::Mul(nn::Square(err), nn::Var::Constant(std::move(weight)));
  return nn::Scale(nn::Sum(weighted), 1.0 / b);
}

}  // namespace

double PredictionLoss(const StatePredictor& model,
                      const std::vector<PredictionSample>& samples) {
  HEAD_CHECK(!samples.empty());
  const nn::NoGradGuard no_grad;  // evaluation — values only
  double total = 0.0;
  for (const PredictionSample& s : samples) {
    nn::ResetTape();  // one recycled tape per sample
    total += SampleLoss(model, s).value()[0];
  }
  return total / samples.size();
}

PredictionTrainResult TrainPredictor(
    StatePredictor& model, const std::vector<PredictionSample>& train,
    const PredictionTrainConfig& config) {
  HEAD_CHECK(!train.empty());
  nn::Adam opt(model.Params(), config.learning_rate);
  Rng rng(config.shuffle_seed);
  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  static obs::Counter& epochs_counter =
      obs::GetCounter("perception.train.epochs");
  static obs::Gauge& loss_gauge =
      obs::GetGauge("perception.train.epoch_loss");
  static obs::Gauge& rmse_gauge =
      obs::GetGauge("perception.train.epoch_rmse");
  static obs::Histogram& epoch_latency =
      obs::LatencyHistogram("perception.train.epoch");

  PredictionTrainResult result;
  const auto start = std::chrono::steady_clock::now();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    HEAD_SPAN("perception.train.epoch");
    obs::ScopedTimer epoch_timer(epoch_latency);
    std::shuffle(order.begin(), order.end(), rng.engine());
    double epoch_loss = 0.0;
    for (size_t b = 0; b < order.size(); b += config.batch_size) {
      HEAD_PROF_SCOPE("perception.train.step");  // profiler root per batch
      const size_t end = std::min(order.size(), b + config.batch_size);
      nn::ResetTape();  // steady state: the whole batch reuses recycled nodes
      opt.ZeroGrad();
      nn::Var batch_loss;
      if (config.batched) {
        std::vector<const PredictionSample*> batch;
        batch.reserve(end - b);
        for (size_t k = b; k < end; ++k) batch.push_back(&train[order[k]]);
        batch_loss = BatchLoss(model, batch);
      } else {
        std::vector<nn::Var> losses;
        losses.reserve(end - b);
        for (size_t k = b; k < end; ++k) {
          losses.push_back(SampleLoss(model, train[order[k]]));
        }
        batch_loss = losses[0];
        for (size_t k = 1; k < losses.size(); ++k) {
          batch_loss = nn::Add(batch_loss, losses[k]);
        }
        batch_loss = nn::Scale(batch_loss, 1.0 / losses.size());
      }
      epoch_loss += batch_loss.value()[0] * (end - b);
      nn::Backward(batch_loss);
      opt.ClipGradNorm(5.0);
      opt.Step();
    }
    epoch_loss /= train.size();
    epochs_counter.Add();
    loss_gauge.Set(epoch_loss);
    rmse_gauge.Set(std::sqrt(std::max(epoch_loss, 0.0)));
    result.epoch_losses.push_back(epoch_loss);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.epoch_elapsed_seconds.push_back(elapsed);
    if (config.timeseries != nullptr) {
      config.timeseries->Append(
          elapsed, {{"epoch", static_cast<double>(epoch)},
                    {"loss", epoch_loss},
                    {"rmse", std::sqrt(std::max(epoch_loss, 0.0))}});
    }
    if (config.verbose) {
      HEAD_LOG(Info) << model.name() << " epoch " << epoch + 1 << "/"
                     << config.epochs << " loss=" << epoch_loss;
    }
  }
  result.total_seconds = result.epoch_elapsed_seconds.back();

  const double best =
      *std::min_element(result.epoch_losses.begin(), result.epoch_losses.end());
  for (size_t e = 0; e < result.epoch_losses.size(); ++e) {
    if (result.epoch_losses[e] <= best * 1.05) {
      result.convergence_seconds = result.epoch_elapsed_seconds[e];
      break;
    }
  }
  return result;
}

PredictionMetrics EvaluatePredictor(
    const StatePredictor& model, const std::vector<PredictionSample>& test) {
  HEAD_CHECK(!test.empty());
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  long count = 0;
  for (const PredictionSample& s : test) {
    const Prediction pred = model.Predict(s.graph);
    for (int i = 0; i < kNumAreas; ++i) {
      if (!s.truth.valid[i]) continue;
      const double errs[3] = {pred[i].d_lat_m - s.truth.value[i][0],
                              pred[i].d_lon_m - s.truth.value[i][1],
                              pred[i].v_rel_mps - s.truth.value[i][2]};
      for (double e : errs) {
        abs_sum += std::fabs(e);
        sq_sum += e * e;
        ++count;
      }
    }
  }
  HEAD_CHECK_GT(count, 0);
  PredictionMetrics m;
  m.mae = abs_sum / count;
  m.mse = sq_sum / count;
  m.rmse = std::sqrt(m.mse);
  return m;
}

PerComponentMetrics EvaluatePredictorPerComponent(
    const StatePredictor& model, const std::vector<PredictionSample>& test) {
  HEAD_CHECK(!test.empty());
  double abs_sum[3] = {0, 0, 0};
  double sq_sum[3] = {0, 0, 0};
  long count = 0;
  for (const PredictionSample& s : test) {
    const Prediction pred = model.Predict(s.graph);
    for (int i = 0; i < kNumAreas; ++i) {
      if (!s.truth.valid[i]) continue;
      const double errs[3] = {pred[i].d_lat_m - s.truth.value[i][0],
                              pred[i].d_lon_m - s.truth.value[i][1],
                              pred[i].v_rel_mps - s.truth.value[i][2]};
      for (int c = 0; c < 3; ++c) {
        abs_sum[c] += std::fabs(errs[c]);
        sq_sum[c] += errs[c] * errs[c];
      }
      ++count;
    }
  }
  HEAD_CHECK_GT(count, 0);
  auto make = [&](int c) {
    PredictionMetrics m;
    m.mae = abs_sum[c] / count;
    m.mse = sq_sum[c] / count;
    m.rmse = std::sqrt(m.mse);
    return m;
  };
  return PerComponentMetrics{make(0), make(1), make(2)};
}

}  // namespace head::perception
