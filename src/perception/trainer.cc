#include "perception/trainer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <numeric>
#include <optional>
#include <unordered_map>

#include "common/check.h"
#include "common/logging.h"
#include "nn/autograd.h"
#include "nn/optimizer.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace head::perception {

namespace {

/// Masked scaled MSE of one sample as a differentiable Var.
nn::Var SampleLoss(const StatePredictor& model, const PredictionSample& s) {
  const nn::Var pred = model.ForwardScaled(s.graph);
  const nn::Var truth =
      nn::Var::Constant(ScaledResidualTruth(s.graph, s.truth, model.scale()));
  const nn::Var mask = nn::Var::Constant(TruthMask(s.truth));
  int valid = 0;
  for (bool v : s.truth.valid) valid += v ? 1 : 0;
  if (valid == 0) {
    return nn::Var::Constant(nn::Tensor::Zeros(1, 1));
  }
  const nn::Var err = nn::Mul(nn::Sub(pred, truth), mask);
  return nn::Scale(nn::Sum(nn::Square(err)), 1.0 / (3.0 * valid));
}

/// Stacked regression targets of one minibatch: truth residuals and
/// per-element weights (mask / (3·valid_s), zero rows for all-masked
/// samples), sample-major to match ForwardScaledBatch.
struct BatchTargets {
  nn::Tensor truth;
  nn::Tensor weight;
};

BatchTargets BuildBatchTargets(const StatePredictor& model,
                               const std::vector<const PredictionSample*>& batch) {
  const int b = static_cast<int>(batch.size());
  BatchTargets out{nn::Tensor(b * kNumAreas, 3), nn::Tensor(b * kNumAreas, 3)};
  for (int s = 0; s < b; ++s) {
    const PredictionSample& sample = *batch[s];
    const nn::Tensor t =
        ScaledResidualTruth(sample.graph, sample.truth, model.scale());
    int valid = 0;
    for (bool v : sample.truth.valid) valid += v ? 1 : 0;
    const double w = valid > 0 ? 1.0 / (3.0 * valid) : 0.0;
    for (int i = 0; i < kNumAreas; ++i) {
      for (int c = 0; c < 3; ++c) {
        out.truth.At(s * kNumAreas + i, c) = t.At(i, c);
        out.weight.At(s * kNumAreas + i, c) = sample.truth.valid[i] ? w : 0.0;
      }
    }
  }
  return out;
}

/// Mean masked scaled MSE of a whole minibatch as ONE differentiable Var.
/// Input order under plan capture: the model's own state tensors (inside
/// ForwardScaledBatch), then truth, then weight — the order the trainer's
/// replay feeder reproduces.
nn::Var BatchLoss(const StatePredictor& model,
                  const std::vector<const PredictionSample*>& batch) {
  const int b = static_cast<int>(batch.size());
  std::vector<const StGraph*> graphs;
  graphs.reserve(b);
  for (const PredictionSample* s : batch) graphs.push_back(&s->graph);
  BatchTargets targets = BuildBatchTargets(model, batch);
  const nn::Var pred = model.ForwardScaledBatch(graphs);
  const nn::Var err = nn::Sub(pred, nn::PlanInput(std::move(targets.truth)));
  const nn::Var weighted =
      nn::Mul(nn::Square(err), nn::PlanInput(std::move(targets.weight)));
  return nn::Scale(nn::Sum(weighted), 1.0 / b);
}

/// True when every graph in the batch has the same history depth z — the
/// precondition for the model's vectorized pass (and thus a plan) to apply.
bool UniformDepth(const std::vector<const PredictionSample*>& batch) {
  const int z = batch[0]->graph.z();
  for (const PredictionSample* s : batch) {
    if (s->graph.z() != z) return false;
  }
  return true;
}

}  // namespace

double PredictionLoss(const StatePredictor& model,
                      const std::vector<PredictionSample>& samples) {
  HEAD_CHECK(!samples.empty());
  const nn::NoGradGuard no_grad;  // evaluation — values only
  double total = 0.0;
  for (const PredictionSample& s : samples) {
    nn::ResetTape();  // one recycled tape per sample
    total += SampleLoss(model, s).value()[0];
  }
  return total / samples.size();
}

PredictionTrainResult TrainPredictor(
    StatePredictor& model, const std::vector<PredictionSample>& train,
    const PredictionTrainConfig& config) {
  HEAD_CHECK(!train.empty());
  nn::Adam opt(model.Params(), config.learning_rate);
  Rng rng(config.shuffle_seed);
  std::vector<int> order(train.size());
  std::iota(order.begin(), order.end(), 0);

  static obs::Counter& epochs_counter =
      obs::GetCounter("perception.train.epochs");
  static obs::Gauge& loss_gauge =
      obs::GetGauge("perception.train.epoch_loss");
  static obs::Gauge& rmse_gauge =
      obs::GetGauge("perception.train.epoch_rmse");
  static obs::Histogram& epoch_latency =
      obs::LatencyHistogram("perception.train.epoch");

  // Step plans, keyed by (batch size, history depth): each distinct shape
  // the shuffle produces (full batches plus one remainder) compiles once on
  // first use; replay then runs the identical step with zero graph
  // construction. Extra shapes beyond the cap just run eagerly.
  const bool plans_allowed = config.static_plans && config.batched &&
                             nn::PlansEnabled() && model.PlanCapturable();
  constexpr size_t kMaxTrainPlans = 8;
  PredictorPlanCache local_cache;
  auto& plans = (config.plan_cache != nullptr ? *config.plan_cache
                                              : local_cache)
                    .plans;

  PredictionTrainResult result;
  const auto start = std::chrono::steady_clock::now();
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    HEAD_SPAN("perception.train.epoch");
    obs::ScopedTimer epoch_timer(epoch_latency);
    std::shuffle(order.begin(), order.end(), rng.engine());
    double epoch_loss = 0.0;
    for (size_t b = 0; b < order.size(); b += config.batch_size) {
      HEAD_PROF_SCOPE("perception.train.step");  // profiler root per batch
      const size_t end = std::min(order.size(), b + config.batch_size);
      nn::ResetTape();  // steady state: the whole batch reuses recycled nodes
      opt.ZeroGrad();
      double step_loss;
      std::vector<const PredictionSample*> batch;
      if (config.batched) {
        batch.reserve(end - b);
        for (size_t k = b; k < end; ++k) batch.push_back(&train[order[k]]);
      }
      std::shared_ptr<const nn::ExecPlan> plan;
      bool may_capture = false;
      int64_t key = 0;
      if (plans_allowed && UniformDepth(batch)) {
        key = (static_cast<int64_t>(batch.size()) << 32) |
              batch[0]->graph.z();
        const auto it = plans.find(key);
        if (it != plans.end()) {
          plan = it->second;
        } else {
          may_capture = plans.size() < kMaxTrainPlans;
        }
      }
      if (plan != nullptr) {
        // Replay slots mirror BatchLoss: the model's per-step state stacks,
        // then the stacked truth and weight targets. The recorded backward
        // leaves the minibatch gradient in the Param grads.
        std::vector<const StGraph*> graphs;
        graphs.reserve(batch.size());
        for (const PredictionSample* s : batch) graphs.push_back(&s->graph);
        std::vector<nn::Tensor> in;
        model.AppendPlanInputsBatch(graphs, &in);
        BatchTargets targets = BuildBatchTargets(model, batch);
        in.push_back(std::move(targets.truth));
        in.push_back(std::move(targets.weight));
        step_loss = (*plan->Replay(std::move(in))[0])[0];
      } else if (config.batched) {
        // Capture runs the step eagerly as it records, so this branch IS
        // the eager step — with a plan compiled when cacheable.
        std::optional<nn::PlanCapture> capture;
        if (may_capture) capture.emplace();
        const nn::Var batch_loss = BatchLoss(model, batch);
        step_loss = batch_loss.value()[0];
        nn::Backward(batch_loss);
        if (may_capture) plans.emplace(key, capture->Finish({batch_loss}));
      } else {
        std::vector<nn::Var> losses;
        losses.reserve(end - b);
        for (size_t k = b; k < end; ++k) {
          losses.push_back(SampleLoss(model, train[order[k]]));
        }
        nn::Var batch_loss = losses[0];
        for (size_t k = 1; k < losses.size(); ++k) {
          batch_loss = nn::Add(batch_loss, losses[k]);
        }
        batch_loss = nn::Scale(batch_loss, 1.0 / losses.size());
        step_loss = batch_loss.value()[0];
        nn::Backward(batch_loss);
      }
      epoch_loss += step_loss * (end - b);
      opt.ClipGradNorm(5.0);
      opt.Step();
    }
    epoch_loss /= train.size();
    epochs_counter.Add();
    loss_gauge.Set(epoch_loss);
    rmse_gauge.Set(std::sqrt(std::max(epoch_loss, 0.0)));
    result.epoch_losses.push_back(epoch_loss);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    result.epoch_elapsed_seconds.push_back(elapsed);
    if (config.timeseries != nullptr) {
      config.timeseries->Append(
          elapsed, {{"epoch", static_cast<double>(epoch)},
                    {"loss", epoch_loss},
                    {"rmse", std::sqrt(std::max(epoch_loss, 0.0))}});
    }
    if (config.verbose) {
      HEAD_LOG(Info) << model.name() << " epoch " << epoch + 1 << "/"
                     << config.epochs << " loss=" << epoch_loss;
    }
  }
  result.total_seconds = result.epoch_elapsed_seconds.back();

  const double best =
      *std::min_element(result.epoch_losses.begin(), result.epoch_losses.end());
  for (size_t e = 0; e < result.epoch_losses.size(); ++e) {
    if (result.epoch_losses[e] <= best * 1.05) {
      result.convergence_seconds = result.epoch_elapsed_seconds[e];
      break;
    }
  }
  return result;
}

PredictionMetrics EvaluatePredictor(
    const StatePredictor& model, const std::vector<PredictionSample>& test) {
  HEAD_CHECK(!test.empty());
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  long count = 0;
  for (const PredictionSample& s : test) {
    const Prediction pred = model.Predict(s.graph);
    for (int i = 0; i < kNumAreas; ++i) {
      if (!s.truth.valid[i]) continue;
      const double errs[3] = {pred[i].d_lat_m - s.truth.value[i][0],
                              pred[i].d_lon_m - s.truth.value[i][1],
                              pred[i].v_rel_mps - s.truth.value[i][2]};
      for (double e : errs) {
        abs_sum += std::fabs(e);
        sq_sum += e * e;
        ++count;
      }
    }
  }
  HEAD_CHECK_GT(count, 0);
  PredictionMetrics m;
  m.mae = abs_sum / count;
  m.mse = sq_sum / count;
  m.rmse = std::sqrt(m.mse);
  return m;
}

PerComponentMetrics EvaluatePredictorPerComponent(
    const StatePredictor& model, const std::vector<PredictionSample>& test) {
  HEAD_CHECK(!test.empty());
  double abs_sum[3] = {0, 0, 0};
  double sq_sum[3] = {0, 0, 0};
  long count = 0;
  for (const PredictionSample& s : test) {
    const Prediction pred = model.Predict(s.graph);
    for (int i = 0; i < kNumAreas; ++i) {
      if (!s.truth.valid[i]) continue;
      const double errs[3] = {pred[i].d_lat_m - s.truth.value[i][0],
                              pred[i].d_lon_m - s.truth.value[i][1],
                              pred[i].v_rel_mps - s.truth.value[i][2]};
      for (int c = 0; c < 3; ++c) {
        abs_sum[c] += std::fabs(errs[c]);
        sq_sum[c] += errs[c] * errs[c];
      }
      ++count;
    }
  }
  HEAD_CHECK_GT(count, 0);
  auto make = [&](int c) {
    PredictionMetrics m;
    m.mae = abs_sum[c] / count;
    m.mse = sq_sum[c] / count;
    m.rmse = std::sqrt(m.mse);
    return m;
  };
  return PerComponentMetrics{make(0), make(1), make(2)};
}

}  // namespace head::perception
