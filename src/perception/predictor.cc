#include "perception/predictor.h"

#include "common/check.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/span.h"

namespace head::perception {

nn::Var StatePredictor::ForwardScaledBatch(
    const std::vector<const StGraph*>& graphs) const {
  HEAD_CHECK(!graphs.empty());
  std::vector<nn::Var> rows;
  rows.reserve(graphs.size());
  for (const StGraph* g : graphs) rows.push_back(ForwardScaled(*g));
  return rows.size() == 1 ? rows[0] : nn::ConcatRows(rows);
}

Prediction StatePredictor::Predict(const StGraph& graph) const {
  HEAD_SPAN("perception.predict");
  HEAD_PROF_SCOPE("perception.predict");
  static obs::Histogram& latency = obs::LatencyHistogram("perception.predict");
  obs::ScopedTimer timer(latency);
  // Inference only — don't record an autograd graph for this forward pass,
  // and recycle the previous prediction's tape nodes first.
  nn::ResetTape();
  const nn::NoGradGuard no_grad;
  const nn::Var out = ForwardScaled(graph);
  HEAD_CHECK_EQ(out.value().rows(), kNumAreas);
  HEAD_CHECK_EQ(out.value().cols(), 3);
  Prediction pred;
  for (int i = 0; i < kNumAreas; ++i) {
    pred[i].d_lat_m =
        graph.target_rel_current[i][0] + out.value().At(i, 0) / scale_.lat;
    pred[i].d_lon_m =
        graph.target_rel_current[i][1] + out.value().At(i, 1) / scale_.lon;
    pred[i].v_rel_mps =
        graph.target_rel_current[i][2] + out.value().At(i, 2) / scale_.v;
  }

  if (obs::RecordingEnabled()) {
    static_assert(obs::kRecordNeighbors == kNumAreas);
    obs::StepRecord& rec = obs::ScratchRecord();
    for (int i = 0; i < kNumAreas; ++i) {
      rec.prediction[i].d_lat_m = pred[i].d_lat_m;
      rec.prediction[i].d_lon_m = pred[i].d_lon_m;
      rec.prediction[i].v_rel_mps = pred[i].v_rel_mps;
    }
    rec.has_prediction = 1;
  }
  return pred;
}

nn::Tensor ScaledResidualTruth(const StGraph& graph,
                               const PredictionTruth& truth,
                               const FeatureScale& scale) {
  nn::Tensor t(kNumAreas, 3);
  for (int i = 0; i < kNumAreas; ++i) {
    t.At(i, 0) =
        (truth.value[i][0] - graph.target_rel_current[i][0]) * scale.lat;
    t.At(i, 1) =
        (truth.value[i][1] - graph.target_rel_current[i][1]) * scale.lon;
    t.At(i, 2) =
        (truth.value[i][2] - graph.target_rel_current[i][2]) * scale.v;
  }
  return t;
}

nn::Tensor TruthMask(const PredictionTruth& truth) {
  nn::Tensor m(kNumAreas, 3);
  for (int i = 0; i < kNumAreas; ++i) {
    const double v = truth.valid[i] ? 1.0 : 0.0;
    for (int c = 0; c < 3; ++c) m.At(i, c) = v;
  }
  return m;
}

}  // namespace head::perception
