#include "perception/predictor.h"

#include "common/check.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/span.h"

namespace head::perception {

namespace {

/// Plans are keyed by history depth z; predictors see a single z in any
/// given deployment, so the cap only bounds pathological callers — extra
/// depths just run eagerly.
constexpr size_t kMaxPredictPlans = 8;

}  // namespace

nn::Var StatePredictor::ForwardScaledBatch(
    const std::vector<const StGraph*>& graphs) const {
  HEAD_CHECK(!graphs.empty());
  std::vector<nn::Var> rows;
  rows.reserve(graphs.size());
  for (const StGraph* g : graphs) rows.push_back(ForwardScaled(*g));
  return rows.size() == 1 ? rows[0] : nn::ConcatRows(rows);
}

// Feeders are only reachable through PlanCapturable() == true overrides.
void StatePredictor::AppendPlanInputs(const StGraph&,
                                      std::vector<nn::Tensor>*) const {
  HEAD_CHECK(false);
}
void StatePredictor::AppendPlanInputsBatch(const std::vector<const StGraph*>&,
                                           std::vector<nn::Tensor>*) const {
  HEAD_CHECK(false);
}

Prediction StatePredictor::Predict(const StGraph& graph) const {
  HEAD_SPAN("perception.predict");
  HEAD_PROF_SCOPE("perception.predict");
  static obs::Histogram& latency = obs::LatencyHistogram("perception.predict");
  obs::ScopedTimer timer(latency);
  // Inference only — don't record an autograd graph for this forward pass,
  // and recycle the previous prediction's tape nodes first.
  nn::ResetTape();
  const nn::NoGradGuard no_grad;

  nn::Tensor value;  // (6×3) scaled residuals
  bool have_value = false;
  std::shared_ptr<const nn::ExecPlan> plan;
  if (static_plans_ && nn::PlansEnabled() && PlanCapturable()) {
    std::lock_guard<std::mutex> lock(plan_mu_);
    const auto it = predict_plans_.find(graph.z());
    if (it != predict_plans_.end()) {
      plan = it->second;
    } else if (predict_plans_.size() < kMaxPredictPlans) {
      // Capture runs the forward eagerly as it records — its output IS this
      // prediction; replay starts at the next call.
      nn::PlanCapture capture;
      const nn::Var out = ForwardScaled(graph);
      value = out.value();
      have_value = true;
      predict_plans_.emplace(graph.z(), capture.Finish({out}));
    }
  }
  if (plan != nullptr) {
    const obs::ScopedSpan span(ForwardSpanName());
    std::vector<nn::Tensor> in;
    AppendPlanInputs(graph, &in);
    value = *plan->Replay(std::move(in))[0];
  } else if (!have_value) {
    value = ForwardScaled(graph).value();
  }
  HEAD_CHECK_EQ(value.rows(), kNumAreas);
  HEAD_CHECK_EQ(value.cols(), 3);
  Prediction pred;
  for (int i = 0; i < kNumAreas; ++i) {
    pred[i].d_lat_m =
        graph.target_rel_current[i][0] + value.At(i, 0) / scale_.lat;
    pred[i].d_lon_m =
        graph.target_rel_current[i][1] + value.At(i, 1) / scale_.lon;
    pred[i].v_rel_mps =
        graph.target_rel_current[i][2] + value.At(i, 2) / scale_.v;
  }

  if (obs::RecordingEnabled()) {
    static_assert(obs::kRecordNeighbors == kNumAreas);
    obs::StepRecord& rec = obs::ScratchRecord();
    for (int i = 0; i < kNumAreas; ++i) {
      rec.prediction[i].d_lat_m = pred[i].d_lat_m;
      rec.prediction[i].d_lon_m = pred[i].d_lon_m;
      rec.prediction[i].v_rel_mps = pred[i].v_rel_mps;
    }
    rec.has_prediction = 1;
  }
  return pred;
}

nn::Tensor ScaledResidualTruth(const StGraph& graph,
                               const PredictionTruth& truth,
                               const FeatureScale& scale) {
  nn::Tensor t(kNumAreas, 3);
  for (int i = 0; i < kNumAreas; ++i) {
    t.At(i, 0) =
        (truth.value[i][0] - graph.target_rel_current[i][0]) * scale.lat;
    t.At(i, 1) =
        (truth.value[i][1] - graph.target_rel_current[i][1]) * scale.lon;
    t.At(i, 2) =
        (truth.value[i][2] - graph.target_rel_current[i][2]) * scale.v;
  }
  return t;
}

nn::Tensor TruthMask(const PredictionTruth& truth) {
  nn::Tensor m(kNumAreas, 3);
  for (int i = 0; i < kNumAreas; ++i) {
    const double v = truth.valid[i] ? 1.0 : 0.0;
    for (int c = 0; c < 3; ++c) m.At(i, c) = v;
  }
  return m;
}

}  // namespace head::perception
