#include "perception/lst_gat.h"

#include <cstdint>

#include "common/check.h"
#include "obs/span.h"
#include "parallel/thread_pool.h"

namespace head::perception {

nn::Tensor PackStepTensor(const StepNodes& nodes) {
  nn::Tensor m(kNumAreas * kNodesPerTarget, kFeatureDim);
  for (int i = 0; i < kNumAreas; ++i) {
    for (int n = 0; n < kNodesPerTarget; ++n) {
      for (int f = 0; f < kFeatureDim; ++f) {
        m.At(i * kNodesPerTarget + n, f) = nodes.feat[i][n][f];
      }
    }
  }
  return m;
}

nn::Var PackStepNodes(const StepNodes& nodes) {
  return nn::PlanInput(PackStepTensor(nodes));
}

namespace {

/// Stacks every sample's step-k nodes into one (B·42×4) tensor — the data
/// matrix ForwardScaledBatch consumes per step, and what the batch replay
/// feeder re-feeds. Each sample packs into a disjoint block, so the loop
/// fans out across the pool (grain keeps small batches on one worker).
nn::Tensor StackStepBatch(const std::vector<const StGraph*>& graphs, int k) {
  const int batch = static_cast<int>(graphs.size());
  const int rows_per_sample = kNumAreas * kNodesPerTarget;
  nn::Tensor m(batch * rows_per_sample, kFeatureDim);
  double* base = m.data().data();
  parallel::ThreadPool& pool = parallel::ThreadPool::Global();
  const int64_t block = int64_t{rows_per_sample} * kFeatureDim;
  pool.ParallelFor(0, batch, /*grain=*/16, [&](int64_t b0, int64_t b1) {
    for (int64_t b = b0; b < b1; ++b) {
      double* dst = base + b * block;
      const StepNodes& nodes = graphs[b]->steps[k];
      for (int i = 0; i < kNumAreas; ++i) {
        for (int n = 0; n < kNodesPerTarget; ++n) {
          for (int f = 0; f < kFeatureDim; ++f) {
            *dst++ = nodes.feat[i][n][f];
          }
        }
      }
    }
  });
  return m;
}

}  // namespace

LstGat::LstGat(const LstGatConfig& config, Rng& rng, FeatureScale scale)
    : StatePredictor(scale),
      config_(config),
      phi1_(nn::Var::Param(
          nn::Tensor::XavierUniform(kFeatureDim, config.d_phi1, rng))),
      phi2_(nn::Var::Param(
          nn::Tensor::XavierUniform(2 * config.d_phi1, 1, rng))),
      phi3_(nn::Var::Param(
          nn::Tensor::XavierUniform(kFeatureDim, config.d_phi3, rng))),
      lstm_(config.d_phi3, config.d_lstm, rng),
      head_(config.d_lstm, 3, rng) {}

std::vector<nn::Var> LstGat::Params() const {
  std::vector<nn::Var> params = {phi1_, phi2_, phi3_};
  for (const nn::Var& p : lstm_.Params()) params.push_back(p);
  for (const nn::Var& p : head_.Params()) params.push_back(p);
  return params;
}

nn::Var LstGat::GatStep(const StepNodes& nodes) const {
  const nn::Var m = PackStepNodes(nodes);           // (42×4)
  const nn::Var h_embed = nn::MatMul(m, phi1_);     // (42×Dφ1), φ1·h
  const nn::Var values = nn::MatMul(m, phi3_);      // (42×Dφ3), φ3·h
  const nn::Var ones =
      nn::Var::Constant(nn::Tensor::Full(kNodesPerTarget, 1, 1.0));

  std::vector<nn::Var> updated;  // h'_{C_i}, one (1×Dφ3) row per target
  updated.reserve(kNumAreas);
  for (int i = 0; i < kNumAreas; ++i) {
    const int r0 = i * kNodesPerTarget;
    const nn::Var group = nn::SliceRows(h_embed, r0, r0 + kNodesPerTarget);
    const nn::Var target_row = nn::SliceRows(h_embed, r0, r0 + 1);
    // [φ1·h_i ‖ φ1·h_x] for every node x in the group (Eq. 10).
    const nn::Var broadcast_target = nn::MatMul(ones, target_row);
    const nn::Var concat = nn::ConcatCols({broadcast_target, group});
    nn::Var alpha;
    if (config_.use_attention) {
      const nn::Var scores =
          nn::LeakyRelu(nn::MatMul(concat, phi2_), config_.leaky_slope);
      alpha = nn::SoftmaxRows(nn::Reshape(scores, 1, kNodesPerTarget));
    } else {
      alpha = nn::Var::Constant(
          nn::Tensor::Full(1, kNodesPerTarget, 1.0 / kNodesPerTarget));
    }
    // Weighted aggregation of value embeddings (Eq. 11): α·(φ3·h), written
    // as scale-rows + row sum — the identical multiply-then-add sequence
    // GatStepStacked runs, so the two paths agree bitwise on any kernel
    // backend (a 1×7 matmul may fold with FMA under fast_math).
    const nn::Var group_values =
        nn::SliceRows(values, r0, r0 + kNodesPerTarget);
    const nn::Var alpha_col = nn::Reshape(alpha, kNodesPerTarget, 1);
    updated.push_back(nn::SumRowGroups(nn::ScaleRows(group_values, alpha_col),
                                       kNodesPerTarget));
  }
  return nn::ConcatRows(updated);  // (6×Dφ3)
}

nn::Var LstGat::GatStepStacked(const nn::Var& m, int groups) const {
  HEAD_CHECK_EQ(m.value().rows(), groups * kNodesPerTarget);
  const nn::Var h_embed = nn::MatMul(m, phi1_);  // (G·7×Dφ1)
  const nn::Var values = nn::MatMul(m, phi3_);   // (G·7×Dφ3)
  nn::Var alpha_col;                             // (G·7×1) attention weights
  if (config_.use_attention) {
    // Pair every node with its group's target (node 0) — Eq. (10) for all
    // groups at once, without slicing per target.
    std::vector<int> tgt_idx(groups * kNodesPerTarget);
    for (int g = 0; g < groups; ++g) {
      for (int n = 0; n < kNodesPerTarget; ++n) {
        tgt_idx[g * kNodesPerTarget + n] = g * kNodesPerTarget;
      }
    }
    const nn::Var tgt = nn::GatherRows(h_embed, std::move(tgt_idx));
    const nn::Var concat = nn::ConcatCols({tgt, h_embed});
    const nn::Var scores =
        nn::LeakyRelu(nn::MatMul(concat, phi2_), config_.leaky_slope);
    const nn::Var alpha =
        nn::SoftmaxRows(nn::Reshape(scores, groups, kNodesPerTarget));
    alpha_col = nn::Reshape(alpha, groups * kNodesPerTarget, 1);
  } else {
    alpha_col = nn::Var::Constant(nn::Tensor::Full(
        groups * kNodesPerTarget, 1, 1.0 / kNodesPerTarget));
  }
  // Weighted aggregation (Eq. 11) as scale-rows + within-group row sums —
  // the same multiply-then-accumulate order as the per-target MatMul, so
  // values match the loop path bitwise.
  return nn::SumRowGroups(nn::ScaleRows(values, alpha_col), kNodesPerTarget);
}

nn::Var LstGat::ForwardScaledBatch(
    const std::vector<const StGraph*>& graphs) const {
  HEAD_SPAN("perception.lstgat.forward_batch");
  HEAD_CHECK(!graphs.empty());
  const int z = graphs[0]->z();
  HEAD_CHECK_GT(z, 0);
  for (const StGraph* g : graphs) {
    if (g->z() != z) return StatePredictor::ForwardScaledBatch(graphs);
  }
  const int batch = static_cast<int>(graphs.size());
  nn::LstmState state = lstm_.InitialState(batch * kNumAreas);
  for (int k = 0; k < z; ++k) {
    const nn::Var h_updated = GatStepStacked(
        nn::PlanInput(StackStepBatch(graphs, k)), batch * kNumAreas);
    state = lstm_.Forward(h_updated, state);  // Eq. (12), batched over B·6
  }
  return head_.Forward(state.h);  // (B·6×3), Eq. (13)
}

void LstGat::AppendPlanInputs(const StGraph& graph,
                              std::vector<nn::Tensor>* inputs) const {
  // One PlanInput per historical step, in ForwardScaled's loop order.
  for (int k = 0; k < graph.z(); ++k) {
    inputs->push_back(PackStepTensor(graph.steps[k]));
  }
}

void LstGat::AppendPlanInputsBatch(const std::vector<const StGraph*>& graphs,
                                   std::vector<nn::Tensor>* inputs) const {
  HEAD_CHECK(!graphs.empty());
  for (int k = 0; k < graphs[0]->z(); ++k) {
    inputs->push_back(StackStepBatch(graphs, k));
  }
}

nn::Var LstGat::ForwardScaled(const StGraph& graph) const {
  HEAD_SPAN("perception.lstgat.forward");
  HEAD_CHECK_GT(graph.z(), 0);
  nn::LstmState state = lstm_.InitialState(kNumAreas);
  for (int k = 0; k < graph.z(); ++k) {
    const nn::Var h_updated = GatStep(graph.steps[k]);
    state = lstm_.Forward(h_updated, state);  // Eq. (12), batched over targets
  }
  return head_.Forward(state.h);  // Eq. (13)
}

std::vector<double> LstGat::AttentionWeights(const StGraph& graph,
                                             int i) const {
  HEAD_CHECK(i >= 0 && i < kNumAreas);
  // Introspection only — values, no recorded graph. Tape-neutral (no reset):
  // callers may hold live Vars; these nodes recycle at the next region entry.
  const nn::NoGradGuard no_grad;
  const StepNodes& nodes = graph.steps.back();
  const nn::Var m = PackStepNodes(nodes);
  const nn::Var h_embed = nn::MatMul(m, phi1_);
  const int r0 = i * kNodesPerTarget;
  const nn::Var group = nn::SliceRows(h_embed, r0, r0 + kNodesPerTarget);
  const nn::Var target_row = nn::SliceRows(h_embed, r0, r0 + 1);
  const nn::Var ones =
      nn::Var::Constant(nn::Tensor::Full(kNodesPerTarget, 1, 1.0));
  const nn::Var concat = nn::ConcatCols({nn::MatMul(ones, target_row), group});
  const nn::Var scores =
      nn::LeakyRelu(nn::MatMul(concat, phi2_), config_.leaky_slope);
  const nn::Var alpha =
      nn::SoftmaxRows(nn::Reshape(scores, 1, kNodesPerTarget));
  return alpha.value().data();
}

}  // namespace head::perception
