// Supervised training/evaluation harness for the state predictors
// (Eq. 14's masked MSE objective, Adam, minibatches) plus the accuracy and
// convergence-time metrics of Tables III/IV.
#ifndef HEAD_PERCEPTION_TRAINER_H_
#define HEAD_PERCEPTION_TRAINER_H_

#include <vector>

#include "obs/timeseries.h"
#include "perception/predictor.h"

namespace head::perception {

struct PredictionTrainConfig {
  int epochs = 15;          // paper Sec. V-A
  double learning_rate = 0.001;
  int batch_size = 64;
  uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Vectorized minibatch updates: one ForwardScaledBatch graph per
  /// minibatch instead of one graph per sample. Same objective (gradient-
  /// parity tested); the per-sample path is kept as a reference.
  bool batched = true;
  /// Optional training-curve sink (not owned; must outlive the call). When
  /// set, every epoch appends one row: epoch index, mean masked scaled MSE,
  /// and its RMSE.
  obs::TimeSeries* timeseries = nullptr;
};

struct PredictionTrainResult {
  std::vector<double> epoch_losses;          // mean masked scaled MSE
  std::vector<double> epoch_elapsed_seconds; // cumulative wall-clock
  /// Wall-clock until the first epoch whose loss is within 5% of the best —
  /// the "training convergence time" (TCT) of Table IV.
  double convergence_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Accuracy metrics of Table III, computed on raw (unscaled) errors over all
/// valid (unmasked) target components.
struct PredictionMetrics {
  double mae = 0.0;
  double mse = 0.0;
  double rmse = 0.0;
};

/// Mean masked scaled-residual MSE of the model on `samples` (no training).
double PredictionLoss(const StatePredictor& model,
                      const std::vector<PredictionSample>& samples);

PredictionTrainResult TrainPredictor(
    StatePredictor& model, const std::vector<PredictionSample>& train,
    const PredictionTrainConfig& config);

PredictionMetrics EvaluatePredictor(
    const StatePredictor& model, const std::vector<PredictionSample>& test);

/// Per-component error breakdown (lateral distance, longitudinal distance,
/// relative velocity) — useful to see *where* a predictor's error lives;
/// the aggregate of Table III averages over all three.
struct PerComponentMetrics {
  PredictionMetrics d_lat;
  PredictionMetrics d_lon;
  PredictionMetrics v_rel;
};

PerComponentMetrics EvaluatePredictorPerComponent(
    const StatePredictor& model, const std::vector<PredictionSample>& test);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_TRAINER_H_
