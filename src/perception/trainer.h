// Supervised training/evaluation harness for the state predictors
// (Eq. 14's masked MSE objective, Adam, minibatches) plus the accuracy and
// convergence-time metrics of Tables III/IV.
#ifndef HEAD_PERCEPTION_TRAINER_H_
#define HEAD_PERCEPTION_TRAINER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "obs/timeseries.h"
#include "perception/predictor.h"

namespace head::perception {

/// Compiled step plans keyed by (batch size << 32 | history depth). Owned by
/// the caller when handed to TrainPredictor via PredictionTrainConfig, so
/// plans compiled by one call are replayed by the next — repeated short
/// training runs (resumed training, benchmarks) skip recapture and run
/// steady-state replays throughout.
struct PredictorPlanCache {
  std::unordered_map<int64_t, std::shared_ptr<const nn::ExecPlan>> plans;
};

struct PredictionTrainConfig {
  int epochs = 15;          // paper Sec. V-A
  double learning_rate = 0.001;
  int batch_size = 64;
  uint64_t shuffle_seed = 7;
  bool verbose = false;
  /// Vectorized minibatch updates: one ForwardScaledBatch graph per
  /// minibatch instead of one graph per sample. Same objective (gradient-
  /// parity tested); the per-sample path is kept as a reference.
  bool batched = true;
  /// Compile the batched forward+backward step into a static nn::ExecPlan
  /// per (batch size, history depth) on first use and replay it afterwards.
  /// Bitwise identical to eager execution; requires `batched`, a
  /// PlanCapturable() model, and batches with a uniform history depth z
  /// (others fall back to eager). Also gated globally by HEAD_PLANS=0.
  bool static_plans = true;
  /// Optional shared plan cache (not owned; must outlive the call). When
  /// null, each TrainPredictor call compiles into a private cache that dies
  /// with it.
  PredictorPlanCache* plan_cache = nullptr;
  /// Optional training-curve sink (not owned; must outlive the call). When
  /// set, every epoch appends one row: epoch index, mean masked scaled MSE,
  /// and its RMSE.
  obs::TimeSeries* timeseries = nullptr;
};

struct PredictionTrainResult {
  std::vector<double> epoch_losses;          // mean masked scaled MSE
  std::vector<double> epoch_elapsed_seconds; // cumulative wall-clock
  /// Wall-clock until the first epoch whose loss is within 5% of the best —
  /// the "training convergence time" (TCT) of Table IV.
  double convergence_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Accuracy metrics of Table III, computed on raw (unscaled) errors over all
/// valid (unmasked) target components.
struct PredictionMetrics {
  double mae = 0.0;
  double mse = 0.0;
  double rmse = 0.0;
};

/// Mean masked scaled-residual MSE of the model on `samples` (no training).
double PredictionLoss(const StatePredictor& model,
                      const std::vector<PredictionSample>& samples);

PredictionTrainResult TrainPredictor(
    StatePredictor& model, const std::vector<PredictionSample>& train,
    const PredictionTrainConfig& config);

PredictionMetrics EvaluatePredictor(
    const StatePredictor& model, const std::vector<PredictionSample>& test);

/// Per-component error breakdown (lateral distance, longitudinal distance,
/// relative velocity) — useful to see *where* a predictor's error lives;
/// the aggregate of Table III averages over all three.
struct PerComponentMetrics {
  PredictionMetrics d_lat;
  PredictionMetrics d_lon;
  PredictionMetrics v_rel;
};

PerComponentMetrics EvaluatePredictorPerComponent(
    const StatePredictor& model, const std::vector<PredictionSample>& test);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_TRAINER_H_
