#include "perception/phantom.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"

namespace head::perception {

namespace {

/// Per-kind phantom-construction telemetry (`perception.phantom.*`): how
/// often perception has to conjure vehicles vs observe them — the dial that
/// explains sudden decision changes in flight-recorder post-mortems.
void CountPhantomKind(MissingKind k) {
  switch (k) {
    case MissingKind::kRange: {
      static obs::Counter& c = obs::GetCounter("perception.phantom.range");
      c.Add();
      break;
    }
    case MissingKind::kInherent: {
      static obs::Counter& c = obs::GetCounter("perception.phantom.inherent");
      c.Add();
      break;
    }
    case MissingKind::kOcclusion: {
      static obs::Counter& c = obs::GetCounter("perception.phantom.occlusion");
      c.Add();
      break;
    }
    case MissingKind::kZeroPad: {
      static obs::Counter& c = obs::GetCounter("perception.phantom.zero_pad");
      c.Add();
      break;
    }
    case MissingKind::kNone:
    case MissingKind::kEgo:
      break;
  }
}

}  // namespace

const char* ToString(MissingKind k) {
  switch (k) {
    case MissingKind::kNone:
      return "none";
    case MissingKind::kRange:
      return "range";
    case MissingKind::kInherent:
      return "inherent";
    case MissingKind::kOcclusion:
      return "occlusion";
    case MissingKind::kZeroPad:
      return "zero-pad";
    case MissingKind::kEgo:
      return "ego";
  }
  return "?";
}

HistoryBuffer::HistoryBuffer(int z) : z_(z) { HEAD_CHECK_GT(z, 0); }

void HistoryBuffer::Push(ObservationFrame frame) {
  frames_.push_back(std::move(frame));
  while (static_cast<int>(frames_.size()) > z_) frames_.pop_front();
}

void HistoryBuffer::Clear() { frames_.clear(); }

const ObservationFrame& HistoryBuffer::frame(int k) const {
  HEAD_CHECK(!frames_.empty());
  HEAD_CHECK(k >= 0 && k < z_);
  // Logical index k=0 is "z-1 steps ago"; clamp into the warm-up window.
  const int missing = z_ - static_cast<int>(frames_.size());
  const int idx = std::max(0, k - missing);
  return frames_[static_cast<size_t>(idx)];
}

const ObservationFrame& HistoryBuffer::latest() const {
  HEAD_CHECK(!frames_.empty());
  return frames_.back();
}

std::vector<VehicleState> FillHistory(const HistoryBuffer& buffer,
                                      VehicleId id, double dt_s) {
  const int z = buffer.capacity();
  std::vector<VehicleState> states(z);
  std::vector<bool> seen(z, false);
  for (int k = 0; k < z; ++k) {
    for (const sim::VehicleSnapshot& v : buffer.frame(k).observed) {
      if (v.id == id) {
        states[k] = v.state;
        seen[k] = true;
        break;
      }
    }
  }
  HEAD_CHECK_MSG(seen[z - 1], "vehicle " << id << " not in newest frame");

  // Interior gaps: linear interpolation between the bracketing observations.
  int prev = -1;
  for (int k = 0; k < z; ++k) {
    if (!seen[k]) continue;
    if (prev >= 0 && k - prev > 1) {
      for (int m = prev + 1; m < k; ++m) {
        const double w = static_cast<double>(m - prev) / (k - prev);
        states[m].lane = w < 0.5 ? states[prev].lane : states[k].lane;
        states[m].lon_m =
            (1.0 - w) * states[prev].lon_m + w * states[k].lon_m;
        states[m].v_mps = (1.0 - w) * states[prev].v_mps + w * states[k].v_mps;
        seen[m] = true;
      }
    }
    prev = k;
  }

  // Leading gap: extrapolate backwards at constant velocity.
  int first = 0;
  while (!seen[first]) ++first;
  for (int k = first - 1; k >= 0; --k) {
    states[k] = states[first];
    states[k].lon_m -= states[first].v_mps * dt_s * (first - k);
  }
  return states;
}

namespace {

/// Eq. (4): range-missing phantom around `center` history, offset by area.
VehicleHistory RangePhantom(const std::vector<VehicleState>& center,
                            int area, double range_m) {
  VehicleHistory out;
  out.kind = MissingKind::kRange;
  out.states.reserve(center.size());
  const double lon_off = AreaIsFront(area) ? range_m : -range_m;
  for (const VehicleState& c : center) {
    out.states.push_back(VehicleState{c.lane + AreaLaneOffset(area),
                                      c.lon_m + lon_off, c.v_mps});
  }
  return out;
}

/// Eq. (5): inherent-missing phantom — a moving road boundary outside lane
/// 1 or κ, co-moving with `center`.
VehicleHistory InherentPhantom(const std::vector<VehicleState>& center,
                               int area, const RoadConfig& road) {
  VehicleHistory out;
  out.kind = MissingKind::kInherent;
  out.states.reserve(center.size());
  const int lane = AreaLaneOffset(area) < 0 ? 0 : road.num_lanes + 1;
  for (const VehicleState& c : center) {
    out.states.push_back(VehicleState{lane, c.lon_m, c.v_mps});
  }
  return out;
}

/// Eq. (6): occlusion-missing phantom mirrored beyond target C_i, using the
/// ego history for the relative distance d_lon(C_i, A).
VehicleHistory OcclusionPhantom(const std::vector<VehicleState>& target,
                                const std::vector<VehicleState>& ego,
                                int area) {
  VehicleHistory out;
  out.kind = MissingKind::kOcclusion;
  out.states.reserve(target.size());
  for (size_t k = 0; k < target.size(); ++k) {
    const double d_lon = DLon(target[k], ego[k]);
    out.states.push_back(VehicleState{target[k].lane + AreaLaneOffset(area),
                                      target[k].lon_m + d_lon,
                                      target[k].v_mps});
  }
  return out;
}

VehicleHistory ZeroPadHistory() {
  VehicleHistory out;
  out.kind = MissingKind::kZeroPad;
  return out;
}

}  // namespace

CompletedScene ConstructPhantoms(const HistoryBuffer& buffer,
                                 const RoadConfig& road, double range_m,
                                 bool use_phantoms) {
  HEAD_CHECK_GT(buffer.size(), 0);
  const int z = buffer.capacity();
  CompletedScene scene;
  scene.ego.reserve(z);
  for (int k = 0; k < z; ++k) scene.ego.push_back(buffer.frame(k).ego);

  const ObservationFrame& now = buffer.latest();

  // ---- Step 1: select targets around the ego from the newest frame. ----
  const NeighborSet targets =
      SelectNeighbors(now.observed, now.ego, kEgoVehicleId);

  for (int i = 0; i < kNumAreas; ++i) {
    if (targets[i].has_value()) {
      VehicleHistory h;
      h.id = targets[i]->id;
      h.kind = MissingKind::kNone;
      h.states = FillHistory(buffer, targets[i]->id, road.dt_s);
      scene.targets[i] = std::move(h);
    } else if (!use_phantoms) {
      scene.targets[i] = ZeroPadHistory();
    } else {
      // ---- Step 2a: missing target — inherent vs range (Eqs. 5/4). ----
      const int lane = now.ego.lane + AreaLaneOffset(i);
      if (!road.IsValidLane(lane)) {
        scene.targets[i] = InherentPhantom(scene.ego, i, road);
      } else {
        scene.targets[i] = RangePhantom(scene.ego, i, range_m);
      }
    }
  }

  // ---- Step 2b/3: surroundings of each target. ----
  for (int i = 0; i < kNumAreas; ++i) {
    const VehicleHistory& target = scene.targets[i];
    const int mirror = MirrorArea(i);
    if (target.is_phantom()) {
      // Surroundings of an uncertain vehicle are zero-padded — except the
      // ego slot, whose state is known with certainty (Eq. 8, row 1).
      for (int j = 0; j < kNumAreas; ++j) {
        scene.surroundings[i][j] = ZeroPadHistory();
      }
      VehicleHistory ego_slot;
      ego_slot.id = kEgoVehicleId;
      ego_slot.kind = MissingKind::kEgo;
      ego_slot.states = scene.ego;
      scene.surroundings[i][mirror] = std::move(ego_slot);
      continue;
    }

    const NeighborSet sur = SelectNeighbors(
        now.observed, target.states.back(), target.id, kEgoVehicleId);
    for (int j = 0; j < kNumAreas; ++j) {
      if (j == mirror) {
        // Footnote 1: each target is surrounded by the ego itself.
        VehicleHistory ego_slot;
        ego_slot.id = kEgoVehicleId;
        ego_slot.kind = MissingKind::kEgo;
        ego_slot.states = scene.ego;
        scene.surroundings[i][j] = std::move(ego_slot);
        continue;
      }
      if (sur[j].has_value()) {
        VehicleHistory h;
        h.id = sur[j]->id;
        h.kind = MissingKind::kNone;
        h.states = FillHistory(buffer, sur[j]->id, road.dt_s);
        scene.surroundings[i][j] = std::move(h);
        continue;
      }
      if (!use_phantoms) {
        scene.surroundings[i][j] = ZeroPadHistory();
        continue;
      }
      // Missing surrounding: occlusion has priority (Sec. III-B step 2);
      // it applies to the slot directly beyond the target as seen from the
      // ego (the diagonal pairs of Eq. 6 / Fig. 4).
      const int slot_lane = target.states.back().lane + AreaLaneOffset(j);
      if (j == i && road.IsValidLane(slot_lane)) {
        scene.surroundings[i][j] =
            OcclusionPhantom(target.states, scene.ego, j);
      } else if (!road.IsValidLane(slot_lane)) {
        scene.surroundings[i][j] = InherentPhantom(target.states, j, road);
      } else {
        scene.surroundings[i][j] = RangePhantom(target.states, j, range_m);
      }
    }
  }

  for (int i = 0; i < kNumAreas; ++i) {
    CountPhantomKind(scene.targets[i].kind);
    for (int j = 0; j < kNumAreas; ++j) {
      CountPhantomKind(scene.surroundings[i][j].kind);
    }
  }
  return scene;
}

}  // namespace head::perception
