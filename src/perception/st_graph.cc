#include "perception/st_graph.h"

#include "common/check.h"
#include "obs/recorder.h"

namespace head::perception {

std::array<double, kFeatureDim> RelativeFeature(const VehicleState& vehicle,
                                                const VehicleState& ego,
                                                bool is_phantom,
                                                const RoadConfig& road,
                                                const FeatureScale& scale) {
  return {DLat(vehicle, ego, road.lane_width_m) * scale.lat,
          DLon(vehicle, ego) * scale.lon, RelV(vehicle, ego) * scale.v,
          is_phantom ? 1.0 : 0.0};
}

std::array<double, kFeatureDim> EgoFeature(const VehicleState& ego,
                                           const RoadConfig& road) {
  return {static_cast<double>(ego.lane) / road.num_lanes,
          ego.lon_m / road.length_m, ego.v_mps / road.v_max_mps, 0.0};
}

StGraph BuildStGraph(const CompletedScene& scene, const RoadConfig& road,
                     const FeatureScale& scale) {
  const int z = static_cast<int>(scene.ego.size());
  HEAD_CHECK_GT(z, 0);
  StGraph graph;
  graph.steps.resize(z);
  graph.ego_current = scene.ego.back();

  for (int i = 0; i < kNumAreas; ++i) {
    const VehicleHistory& target = scene.targets[i];
    if (target.kind == MissingKind::kZeroPad) {
      // HEAD-w/o-PVC ablation: the slot stays all-zero and anchors at the
      // ego position (relative state 0).
      graph.target_is_phantom[i] = true;
      graph.target_ids[i] = kInvalidVehicleId;
      graph.target_current[i] = graph.ego_current;
      graph.target_rel_current[i] = {0.0, 0.0, 0.0};
      continue;  // features stay zero-initialized
    }
    HEAD_CHECK_EQ(static_cast<int>(target.states.size()), z);
    graph.target_is_phantom[i] = target.is_phantom();
    graph.target_ids[i] = target.id;
    graph.target_current[i] = target.states.back();
    graph.target_rel_current[i] = {
        DLat(target.states.back(), graph.ego_current, road.lane_width_m),
        DLon(target.states.back(), graph.ego_current),
        RelV(target.states.back(), graph.ego_current)};

    for (int k = 0; k < z; ++k) {
      graph.steps[k].feat[i][0] = RelativeFeature(
          target.states[k], scene.ego[k], target.is_phantom(), road, scale);
      for (int j = 0; j < kNumAreas; ++j) {
        const VehicleHistory& sur = scene.surroundings[i][j];
        auto& slot = graph.steps[k].feat[i][1 + j];
        switch (sur.kind) {
          case MissingKind::kZeroPad:
            slot = {0.0, 0.0, 0.0, 0.0};
            break;
          case MissingKind::kEgo:
            slot = EgoFeature(scene.ego[k], road);
            break;
          default:
            HEAD_DCHECK(static_cast<int>(sur.states.size()) == z);
            slot = RelativeFeature(sur.states[k], scene.ego[k],
                                   sur.is_phantom(), road, scale);
            break;
        }
      }
    }
  }

  if (obs::RecordingEnabled()) {
    // Flight recorder: the six completed target slots, ego-relative, as the
    // decision module will see them this step.
    static_assert(obs::kRecordNeighbors == kNumAreas);
    obs::StepRecord& rec = obs::ScratchRecord();
    for (int i = 0; i < kNumAreas; ++i) {
      obs::NeighborRecord& n = rec.neighbors[i];
      n.id = graph.target_ids[i];
      n.is_phantom = graph.target_is_phantom[i] ? 1 : 0;
      n.d_lat_m = graph.target_rel_current[i][0];
      n.d_lon_m = graph.target_rel_current[i][1];
      n.v_rel_mps = graph.target_rel_current[i][2];
    }
    rec.has_neighbors = 1;
  }
  return graph;
}

}  // namespace head::perception
