// Spatial-temporal graph construction (paper Sec. III-B step 3, Eqs. 7–9).
// Each of the z historical steps yields a spatial graph of 42 nodes (6
// targets + 6×6 surroundings); per target the network attends over its 6
// surroundings plus itself. Node features are the ego-relative state vectors
// of Eqs. (7)/(8), scaled to comparable magnitudes for training stability.
#ifndef HEAD_PERCEPTION_ST_GRAPH_H_
#define HEAD_PERCEPTION_ST_GRAPH_H_

#include <array>
#include <vector>

#include "perception/phantom.h"

namespace head::perception {

inline constexpr int kFeatureDim = 4;          // [d_lat, d_lon, v_rel, IF]
inline constexpr int kNodesPerTarget = 1 + kNumAreas;  // self + 6 surroundings

/// Fixed feature scaling. Raw meters/velocities span two orders of
/// magnitude; these constants bring every feature into roughly [−2, 2].
struct FeatureScale {
  double lat = 0.1;    // d_lat ≤ ~13 m
  double lon = 0.025;  // d_lon ≤ ~200 m; keeps 5–20 m safety gaps resolvable
  double v = 0.1;      // relative speed ≤ ~25 m/s
};

/// One spatial graph g(τ): per target, node 0 is the target itself and
/// nodes 1..6 its surroundings by area index.
struct StepNodes {
  std::array<std::array<std::array<double, kFeatureDim>, kNodesPerTarget>,
             kNumAreas>
      feat{};
};

/// The full spatial-temporal graph G(t) (Eq. 9) plus the bookkeeping the
/// decision module needs.
struct StGraph {
  std::vector<StepNodes> steps;  // length z, oldest first
  std::array<bool, kNumAreas> target_is_phantom{};
  std::array<VehicleId, kNumAreas> target_ids{};
  /// Absolute current state of each target (phantom preset when phantom).
  std::array<VehicleState, kNumAreas> target_current{};
  VehicleState ego_current{};
  /// Raw ego-relative [d_lat, d_lon, v_rel] of each target at time t —
  /// the residual-decoding anchor shared by every predictor.
  std::array<std::array<double, 3>, kNumAreas> target_rel_current{};

  int z() const { return static_cast<int>(steps.size()); }
};

/// Scaled feature row of Eq. (7)/(8) for a conventional vehicle state
/// relative to the ego at the same step.
std::array<double, kFeatureDim> RelativeFeature(const VehicleState& vehicle,
                                                const VehicleState& ego,
                                                bool is_phantom,
                                                const RoadConfig& road,
                                                const FeatureScale& scale);

/// Scaled raw-state feature of the ego node (Eq. 8, row 1).
std::array<double, kFeatureDim> EgoFeature(const VehicleState& ego,
                                           const RoadConfig& road);

/// Formats a completed scene into the network-ready graph.
StGraph BuildStGraph(const CompletedScene& scene, const RoadConfig& road,
                     const FeatureScale& scale = FeatureScale());

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_ST_GRAPH_H_
