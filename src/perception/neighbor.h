// Six-area neighbor selection (paper Fig. 2): the vehicles with the most
// effect on a center vehicle are the nearest ones in its front-left, front,
// front-right, rear-left, rear and rear-right areas.
#ifndef HEAD_PERCEPTION_NEIGHBOR_H_
#define HEAD_PERCEPTION_NEIGHBOR_H_

#include <array>
#include <optional>
#include <vector>

#include "common/types.h"
#include "sim/road.h"

namespace head::perception {

/// Paper area indices i = 1..6 mapped to array slots 0..5.
enum Area : int {
  kFrontLeft = 0,
  kFront = 1,
  kFrontRight = 2,
  kRearLeft = 3,
  kRear = 4,
  kRearRight = 5,
};

inline constexpr int kNumAreas = 6;

const char* ToString(Area a);

/// Lane offset of an area relative to the center (−1 left, 0 same, +1 right).
inline int AreaLaneOffset(int area) {
  switch (area) {
    case kFrontLeft:
    case kRearLeft:
      return -1;
    case kFront:
    case kRear:
      return 0;
    default:
      return 1;
  }
}

/// Whether the area lies ahead of the center vehicle.
inline bool AreaIsFront(int area) { return area <= kFrontRight; }

/// The area of the *surrounding* vehicle slot that the ego occupies around
/// target i (paper footnote 1: A = C_{1.6}, C_{2.5}, C_{3.4}, C_{4.3},
/// C_{5.2}, C_{6.1}); i.e. the mirror of area i.
inline int MirrorArea(int area) { return kNumAreas - 1 - area; }

using NeighborSet =
    std::array<std::optional<sim::VehicleSnapshot>, kNumAreas>;

/// Picks, for each of the six areas around `center`, the nearest candidate
/// (by |Δlon|) among `candidates`, excluding ids `exclude_a`/`exclude_b`.
/// Front areas require Δlon > 0; rear areas Δlon ≤ 0 (ties to the rear, so a
/// laterally adjacent vehicle at equal lon counts as rear-left/right).
NeighborSet SelectNeighbors(const std::vector<sim::VehicleSnapshot>& candidates,
                            const VehicleState& center,
                            VehicleId exclude_a = kInvalidVehicleId,
                            VehicleId exclude_b = kInvalidVehicleId);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_NEIGHBOR_H_
