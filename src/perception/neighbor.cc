#include "perception/neighbor.h"

#include <cmath>

namespace head::perception {

const char* ToString(Area a) {
  switch (a) {
    case kFrontLeft:
      return "front-left";
    case kFront:
      return "front";
    case kFrontRight:
      return "front-right";
    case kRearLeft:
      return "rear-left";
    case kRear:
      return "rear";
    case kRearRight:
      return "rear-right";
  }
  return "?";
}

NeighborSet SelectNeighbors(const std::vector<sim::VehicleSnapshot>& candidates,
                            const VehicleState& center, VehicleId exclude_a,
                            VehicleId exclude_b) {
  NeighborSet out;
  std::array<double, kNumAreas> best_dist;
  best_dist.fill(1e18);
  for (const sim::VehicleSnapshot& cand : candidates) {
    if (cand.id == exclude_a || cand.id == exclude_b) continue;
    const int lane_off = cand.state.lane - center.lane;
    if (lane_off < -1 || lane_off > 1) continue;
    const double d_lon = DLon(cand.state, center);
    if (lane_off == 0 && d_lon == 0.0) continue;  // co-located: ignore
    int area = -1;
    for (int a = 0; a < kNumAreas; ++a) {
      if (AreaLaneOffset(a) != lane_off) continue;
      const bool is_front = d_lon > 0.0;
      if (AreaIsFront(a) == is_front) {
        area = a;
        break;
      }
    }
    if (area < 0) continue;
    const double dist = std::fabs(d_lon);
    if (dist < best_dist[area]) {
      best_dist[area] = dist;
      out[area] = cand;
    }
  }
  return out;
}

}  // namespace head::perception
