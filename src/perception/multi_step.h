// Multi-step trajectory prediction built on top of any one-step state
// predictor — the extension the paper argues *against* in Sec. III-A
// ("the accuracy of the predicted future trajectories decreases over time,
// and only the first or first few predicted states are reliable").
//
// The recursive roll-out feeds each predicted step back as a pseudo
// observation: targets move to their predicted states, the ego is
// extrapolated at constant velocity, and the spatial-temporal graph is
// rebuilt. bench/ablation_prediction_horizon uses this to regenerate the
// accuracy-vs-horizon decay curve that motivates HEAD's one-step design.
#ifndef HEAD_PERCEPTION_MULTI_STEP_H_
#define HEAD_PERCEPTION_MULTI_STEP_H_

#include <vector>

#include "perception/predictor.h"

namespace head::perception {

/// Predicted relative states for horizons 1..H (index 0 = one step ahead).
/// All entries are relative to the ego at the roll-out's base time t.
using Trajectory = std::vector<Prediction>;

class MultiStepPredictor {
 public:
  /// `base` must outlive this wrapper.
  MultiStepPredictor(const StatePredictor& base, const RoadConfig& road);

  /// Rolls the one-step predictor out `horizon` steps from `graph`.
  Trajectory Rollout(const StGraph& graph, int horizon) const;

  /// Advances a graph by one step using a prediction: every target jumps to
  /// its predicted state, phantoms and surroundings are propagated at
  /// constant velocity, the ego extrapolates at constant velocity, and the
  /// oldest history step is dropped. Exposed for tests.
  StGraph AdvanceGraph(const StGraph& graph, const Prediction& step) const;

 private:
  const StatePredictor& base_;
  RoadConfig road_;
};

/// Per-horizon accuracy of a multi-step roll-out against ground truth:
/// element h is the metric over all samples' (h+1)-step predictions.
struct HorizonMetrics {
  std::vector<double> mae;
  std::vector<double> rmse;
};

/// A multi-step evaluation sample: base graph plus the true relative states
/// of each target for horizons 1..H (relative to the ego at base time).
struct MultiStepSample {
  StGraph graph;
  /// truth[h][i] = {d_lat, d_lon, v_rel} of target i at t+h+1; valid flags
  /// parallel it.
  std::vector<std::array<std::array<double, 3>, kNumAreas>> truth;
  std::vector<std::array<bool, kNumAreas>> valid;
};

HorizonMetrics EvaluateHorizons(const MultiStepPredictor& predictor,
                                const std::vector<MultiStepSample>& samples,
                                int horizon);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_MULTI_STEP_H_
