// Phantom vehicle construction (paper Sec. III-B, Fig. 3, Eqs. 4–6).
//
// Input: the last z sensor frames (ego state + observed conventional
// vehicles). Output: a *complete* scene — 6 target vehicles and 6
// surrounding vehicles each — where every vehicle missing due to limited
// range, occlusion, or the road boundary has been replaced by a phantom with
// a preset history:
//   * range missing     → placed at the edge of the detection radius (Eq. 4)
//   * inherent missing  → a "moving road boundary" outside lane 1/κ (Eq. 5)
//   * occlusion missing → mirrored behind the blocking target (Eq. 6, Fig. 4)
// Surroundings of a phantom target are zero-padded instead of constructed.
#ifndef HEAD_PERCEPTION_PHANTOM_H_
#define HEAD_PERCEPTION_PHANTOM_H_

#include <array>
#include <deque>
#include <vector>

#include "common/types.h"
#include "perception/neighbor.h"
#include "sim/road.h"

namespace head::perception {

/// One sensor frame: ego ground-truth state plus what the sensor reported.
struct ObservationFrame {
  VehicleState ego;
  std::vector<sim::VehicleSnapshot> observed;
};

/// Rolling window of the last z frames (oldest first).
class HistoryBuffer {
 public:
  explicit HistoryBuffer(int z);

  void Push(ObservationFrame frame);
  void Clear();

  int capacity() const { return z_; }
  int size() const { return static_cast<int>(frames_.size()); }
  bool full() const { return size() == z_; }

  /// k-th frame with k=0 the oldest of the *logical* window of z frames;
  /// while warming up, the oldest available frame is repeated.
  const ObservationFrame& frame(int k) const;

  /// Newest frame (the current time step t).
  const ObservationFrame& latest() const;

 private:
  int z_;
  std::deque<ObservationFrame> frames_;
};

/// Why a slot had no observed vehicle.
enum class MissingKind : int8_t {
  kNone = 0,       // real observed vehicle
  kRange = 1,      // beyond the detection radius (Eq. 4)
  kInherent = 2,   // beyond the leftmost/rightmost lane (Eq. 5)
  kOcclusion = 3,  // hidden behind the target vehicle (Eq. 6)
  kZeroPad = 4,    // surrounding of a phantom target (zero states)
  kEgo = 5,        // the slot is the autonomous vehicle itself
};

const char* ToString(MissingKind k);

/// A vehicle (real or phantom) with its z-step history, oldest first.
struct VehicleHistory {
  VehicleId id = kInvalidVehicleId;  // kInvalidVehicleId for phantoms
  MissingKind kind = MissingKind::kNone;
  std::vector<VehicleState> states;  // length z (empty for kZeroPad)

  bool is_phantom() const {
    return kind != MissingKind::kNone && kind != MissingKind::kEgo;
  }
};

/// The fully completed local scene at the buffer's newest step.
struct CompletedScene {
  std::vector<VehicleState> ego;  // ego history, length z, oldest first
  std::array<VehicleHistory, kNumAreas> targets;
  std::array<std::array<VehicleHistory, kNumAreas>, kNumAreas> surroundings;
};

/// Reconstructs a real vehicle's z-step history from the buffer: uses
/// per-frame observations where available, linearly interpolates interior
/// gaps, and extrapolates leading gaps backwards at constant velocity.
/// The vehicle must be observed in the newest frame.
std::vector<VehicleState> FillHistory(const HistoryBuffer& buffer,
                                      VehicleId id, double dt_s);

/// Runs the three construction steps of Sec. III-B on the current buffer.
/// `range_m` is the sensor detection radius R used by Eq. (4).
/// With `use_phantoms` false (the HEAD-w/o-PVC ablation) every missing slot
/// is zero-padded instead of constructed.
CompletedScene ConstructPhantoms(const HistoryBuffer& buffer,
                                 const RoadConfig& road, double range_m,
                                 bool use_phantoms = true);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_PHANTOM_H_
