// LST-GAT (Local Spatial-Temporal Graph ATtention) — the paper's state
// prediction model (Sec. III-B, Fig. 5, Eqs. 10–13). Per historical step a
// shared graph-attention layer updates each target by attending over its six
// surroundings plus itself; an LSTM then consumes the z updated states of
// all six targets *in one batch* and a linear head emits the one-step
// predictions in parallel.
#ifndef HEAD_PERCEPTION_LST_GAT_H_
#define HEAD_PERCEPTION_LST_GAT_H_

#include <string>
#include <vector>

#include "nn/lstm.h"
#include "perception/predictor.h"

namespace head::perception {

struct LstGatConfig {
  int d_phi1 = 64;        ///< D_φ1: attention embedding width
  int d_phi3 = 64;        ///< D_φ3: value embedding width (LSTM input)
  int d_lstm = 64;        ///< D_l: LSTM hidden width
  double leaky_slope = 0.2;  ///< LeakyReLU slope of Eq. (10)
  /// Ablation switch: false replaces the learned attention of Eq. (10) with
  /// uniform mean aggregation over the 7 nodes (bench/ablation_attention).
  bool use_attention = true;
};

class LstGat : public StatePredictor {
 public:
  LstGat(const LstGatConfig& config, Rng& rng,
         FeatureScale scale = FeatureScale());

  std::string name() const override { return "LST-GAT"; }

  nn::Var ForwardScaled(const StGraph& graph) const override;

  /// Vectorized minibatch pass: stacks every sample's 42 step-k nodes into
  /// one (B·42×4) matrix, runs the GAT as block-diagonal gather/softmax/
  /// scatter ops (no per-target slicing loop), and drives the LSTM with a
  /// batch of B·6 target rows. Falls back to the stacked per-sample default
  /// when the graphs disagree on history depth z.
  nn::Var ForwardScaledBatch(
      const std::vector<const StGraph*>& graphs) const override;

  /// Both forward passes build a fixed graph for a given z whose data
  /// enters only through nn::PlanInput — compilable into an ExecPlan.
  bool PlanCapturable() const override { return true; }
  void AppendPlanInputs(const StGraph& graph,
                        std::vector<nn::Tensor>* inputs) const override;
  void AppendPlanInputsBatch(const std::vector<const StGraph*>& graphs,
                             std::vector<nn::Tensor>* inputs) const override;
  const char* ForwardSpanName() const override {
    return "perception.lstgat.forward";
  }

  std::vector<nn::Var> Params() const override;

  const LstGatConfig& config() const { return config_; }

  /// Attention weights over [self, surroundings 1..6] of target `i` at the
  /// newest step — exposed for tests and analysis.
  std::vector<double> AttentionWeights(const StGraph& graph, int i) const;

 private:
  /// Per-step GAT: returns the (6 × d_phi3) updated target states h' (Eq. 11).
  nn::Var GatStep(const StepNodes& nodes) const;

  /// Per-step GAT over `groups` stacked 7-node groups at once: `m` is
  /// (groups·7 × 4); returns the (groups × d_phi3) updated states.
  nn::Var GatStepStacked(const nn::Var& m, int groups) const;

  LstGatConfig config_;
  nn::Var phi1_;  // (4 × D_φ1)
  nn::Var phi2_;  // (2·D_φ1 × 1) attention vector
  nn::Var phi3_;  // (4 × D_φ3)
  nn::LstmCell lstm_;
  nn::Linear head_;  // φ4 (+ b4): D_l → 3
};

/// Packs one step's 42 node features into a (42×4) tensor, grouped as
/// 7 consecutive rows per target (self first).
nn::Tensor PackStepTensor(const StepNodes& nodes);

/// PackStepTensor as a Var — an nn::PlanInput, so a capturing caller gets a
/// replay slot; outside capture it is a plain constant.
nn::Var PackStepNodes(const StepNodes& nodes);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_LST_GAT_H_
