#include "perception/multi_step.h"

#include <cmath>

#include "common/check.h"

namespace head::perception {

MultiStepPredictor::MultiStepPredictor(const StatePredictor& base,
                                       const RoadConfig& road)
    : base_(base), road_(road) {}

StGraph MultiStepPredictor::AdvanceGraph(const StGraph& graph,
                                         const Prediction& step) const {
  StGraph next = graph;
  const double dt = road_.dt_s;
  const double ego_adv = graph.ego_current.v_mps * dt;

  // Shift the temporal window: drop the oldest step.
  for (int k = 0; k + 1 < next.z(); ++k) {
    next.steps[k] = next.steps[k + 1];
  }

  // Ego extrapolates at constant velocity in its lane.
  next.ego_current.lon_m += ego_adv;

  StepNodes& newest = next.steps[next.z() - 1];
  const FeatureScale scale;  // graph features use the default scale
  for (int i = 0; i < kNumAreas; ++i) {
    // Target moves to its predicted state; re-expressed relative to the
    // *new* ego position.
    const double d_lat = step[i].d_lat_m;
    const double d_lon = step[i].d_lon_m - ego_adv;
    const double v_rel = step[i].v_rel_mps;
    next.target_rel_current[i] = {d_lat, d_lon, v_rel};
    next.target_current[i].lane =
        next.ego_current.lane +
        static_cast<int>(std::lround(d_lat / road_.lane_width_m));
    next.target_current[i].lon_m = next.ego_current.lon_m + d_lon;
    next.target_current[i].v_mps = next.ego_current.v_mps + v_rel;

    newest.feat[i][0] = {d_lat * scale.lat, d_lon * scale.lon,
                         v_rel * scale.v,
                         graph.target_is_phantom[i] ? 1.0 : 0.0};
    // Surroundings: no prediction available — propagate at constant
    // relative state (their d_lon drifts by their relative velocity).
    for (int j = 0; j < kNodesPerTarget - 1; ++j) {
      auto slot = graph.steps[graph.z() - 1].feat[i][1 + j];
      const bool is_ego_node = slot == EgoFeature(graph.ego_current, road_);
      if (is_ego_node) {
        newest.feat[i][1 + j] = EgoFeature(next.ego_current, road_);
        continue;
      }
      const double sur_v_rel = slot[2] / scale.v;
      slot[1] += sur_v_rel * dt * scale.lon;
      newest.feat[i][1 + j] = slot;
    }
  }
  return next;
}

Trajectory MultiStepPredictor::Rollout(const StGraph& graph,
                                       int horizon) const {
  HEAD_CHECK_GT(horizon, 0);
  Trajectory out;
  out.reserve(horizon);
  StGraph current = graph;
  double ego_drift = 0.0;  // ego lon advance relative to the base time
  for (int h = 0; h < horizon; ++h) {
    const Prediction step = base_.Predict(current);
    // Re-express relative to the ego at the base time t.
    Prediction base_rel = step;
    for (int i = 0; i < kNumAreas; ++i) {
      base_rel[i].d_lon_m += ego_drift;
    }
    out.push_back(base_rel);
    ego_drift += current.ego_current.v_mps * road_.dt_s;
    current = AdvanceGraph(current, step);
  }
  return out;
}

HorizonMetrics EvaluateHorizons(const MultiStepPredictor& predictor,
                                const std::vector<MultiStepSample>& samples,
                                int horizon) {
  HEAD_CHECK_GT(horizon, 0);
  HorizonMetrics metrics;
  metrics.mae.assign(horizon, 0.0);
  metrics.rmse.assign(horizon, 0.0);
  std::vector<long> counts(horizon, 0);
  std::vector<double> sq(horizon, 0.0);
  for (const MultiStepSample& s : samples) {
    const int h_max =
        std::min<int>(horizon, static_cast<int>(s.truth.size()));
    const Trajectory traj = predictor.Rollout(s.graph, h_max);
    for (int h = 0; h < h_max; ++h) {
      for (int i = 0; i < kNumAreas; ++i) {
        if (!s.valid[h][i]) continue;
        const double errs[3] = {traj[h][i].d_lat_m - s.truth[h][i][0],
                                traj[h][i].d_lon_m - s.truth[h][i][1],
                                traj[h][i].v_rel_mps - s.truth[h][i][2]};
        for (double e : errs) {
          metrics.mae[h] += std::fabs(e);
          sq[h] += e * e;
          ++counts[h];
        }
      }
    }
  }
  for (int h = 0; h < horizon; ++h) {
    if (counts[h] > 0) {
      metrics.mae[h] /= counts[h];
      metrics.rmse[h] = std::sqrt(sq[h] / counts[h]);
    }
  }
  return metrics;
}

}  // namespace head::perception
