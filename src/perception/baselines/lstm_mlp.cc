#include "perception/baselines/lstm_mlp.h"

namespace head::perception {

nn::Var NodeFeatureRow(const StGraph& graph, int k, int i, int n) {
  nn::Tensor row(1, kFeatureDim);
  for (int f = 0; f < kFeatureDim; ++f) {
    row.At(0, f) = graph.steps[k].feat[i][n][f];
  }
  return nn::Var::Constant(std::move(row));
}

LstmMlp::LstmMlp(int hidden, Rng& rng, FeatureScale scale)
    : StatePredictor(scale),
      lstm_(kFeatureDim, hidden, rng),
      head_({hidden, hidden, 3}, nn::Mlp::Activation::kRelu, rng) {}

nn::Var LstmMlp::ForwardScaled(const StGraph& graph) const {
  std::vector<nn::Var> rows;
  rows.reserve(kNumAreas);
  for (int i = 0; i < kNumAreas; ++i) {
    nn::LstmState state = lstm_.InitialState(1);
    for (int k = 0; k < graph.z(); ++k) {
      state = lstm_.Forward(NodeFeatureRow(graph, k, i, 0), state);
    }
    rows.push_back(head_.Forward(state.h));
  }
  return nn::ConcatRows(rows);
}

std::vector<nn::Var> LstmMlp::Params() const {
  std::vector<nn::Var> params = lstm_.Params();
  for (const nn::Var& p : head_.Params()) params.push_back(p);
  return params;
}

}  // namespace head::perception
