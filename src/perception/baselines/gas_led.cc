#include "perception/baselines/gas_led.h"

#include <cmath>

#include "perception/baselines/lstm_mlp.h"

namespace head::perception {

GasLed::GasLed(int hidden, Rng& rng, FeatureScale scale)
    : StatePredictor(scale),
      hidden_(hidden),
      encoder_(kFeatureDim, hidden, rng),
      query_(hidden, hidden, rng),
      decoder_(2 * hidden, hidden, rng),
      head_(hidden, 3, rng) {}

nn::Var GasLed::ForwardScaled(const StGraph& graph) const {
  std::vector<nn::Var> rows;
  rows.reserve(kNumAreas);
  const double inv_sqrt_d = 1.0 / std::sqrt(static_cast<double>(hidden_));
  for (int i = 0; i < kNumAreas; ++i) {
    // Encode every node of the target's local group with the shared encoder.
    std::vector<nn::Var> encodings;  // (1×hidden) each
    encodings.reserve(kNodesPerTarget);
    for (int n = 0; n < kNodesPerTarget; ++n) {
      nn::LstmState enc = encoder_.InitialState(1);
      for (int k = 0; k < graph.z(); ++k) {
        enc = encoder_.Forward(NodeFeatureRow(graph, k, i, n), enc);
      }
      encodings.push_back(enc.h);
    }
    // Global attention: query from the target encoding, keys/values are the
    // surrounding encodings.
    const nn::Var q = query_.Forward(encodings[0]);  // (1×hidden)
    const nn::Var keys = nn::ConcatRows(
        std::vector<nn::Var>(encodings.begin() + 1, encodings.end()));
    // scores (1×6) = q · keysᵀ — computed via (keys · qᵀ) reshaped.
    std::vector<nn::Var> score_parts;
    score_parts.reserve(kNumAreas);
    for (int n = 1; n < kNodesPerTarget; ++n) {
      score_parts.push_back(
          nn::Sum(nn::Mul(q, encodings[n])));  // (1×1) dot product
    }
    const nn::Var scores =
        nn::Scale(nn::ConcatCols(score_parts), inv_sqrt_d);  // (1×6)
    const nn::Var alpha = nn::SoftmaxRows(scores);
    const nn::Var context = nn::MatMul(alpha, keys);  // (1×hidden)

    nn::LstmState dec = decoder_.InitialState(1);
    dec = decoder_.Forward(nn::ConcatCols({encodings[0], context}), dec);
    rows.push_back(head_.Forward(dec.h));
  }
  return nn::ConcatRows(rows);
}

std::vector<nn::Var> GasLed::Params() const {
  std::vector<nn::Var> params = encoder_.Params();
  for (const nn::Var& p : query_.Params()) params.push_back(p);
  for (const nn::Var& p : decoder_.Params()) params.push_back(p);
  for (const nn::Var& p : head_.Params()) params.push_back(p);
  return params;
}

}  // namespace head::perception
