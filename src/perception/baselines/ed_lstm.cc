#include "perception/baselines/ed_lstm.h"

#include "perception/baselines/lstm_mlp.h"

namespace head::perception {

EdLstm::EdLstm(int hidden, Rng& rng, FeatureScale scale)
    : StatePredictor(scale),
      encoder_(kFeatureDim, hidden, rng),
      decoder_(hidden, hidden, rng),
      head_(hidden, 3, rng) {}

nn::Var EdLstm::ForwardScaled(const StGraph& graph) const {
  std::vector<nn::Var> rows;
  rows.reserve(kNumAreas);
  for (int i = 0; i < kNumAreas; ++i) {
    nn::LstmState enc = encoder_.InitialState(1);
    for (int k = 0; k < graph.z(); ++k) {
      enc = encoder_.Forward(NodeFeatureRow(graph, k, i, 0), enc);
    }
    // One decoding step seeded with the encoder state (sequence-to-sequence
    // reduced to a single future step).
    nn::LstmState dec = decoder_.Forward(enc.h, enc);
    rows.push_back(head_.Forward(dec.h));
  }
  return nn::ConcatRows(rows);
}

std::vector<nn::Var> EdLstm::Params() const {
  std::vector<nn::Var> params = encoder_.Params();
  for (const nn::Var& p : decoder_.Params()) params.push_back(p);
  for (const nn::Var& p : head_.Params()) params.push_back(p);
  return params;
}

}  // namespace head::perception
