// LSTM-MLP baseline (Altché & de La Fortelle [26], adapted to one-step state
// prediction): a vanilla LSTM over each target's own history followed by an
// MLP head. No interaction modeling; each target is predicted separately
// (the sequential regime the paper criticizes in Sec. III-A).
#ifndef HEAD_PERCEPTION_BASELINES_LSTM_MLP_H_
#define HEAD_PERCEPTION_BASELINES_LSTM_MLP_H_

#include <string>
#include <vector>

#include "nn/lstm.h"
#include "perception/predictor.h"

namespace head::perception {

class LstmMlp : public StatePredictor {
 public:
  LstmMlp(int hidden, Rng& rng, FeatureScale scale = FeatureScale());

  std::string name() const override { return "LSTM-MLP"; }
  nn::Var ForwardScaled(const StGraph& graph) const override;
  std::vector<nn::Var> Params() const override;

 private:
  nn::LstmCell lstm_;
  nn::Mlp head_;
};

/// (1×4) constant Var of node `n` of target `i` at step `k`.
nn::Var NodeFeatureRow(const StGraph& graph, int k, int i, int n);

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_BASELINES_LSTM_MLP_H_
