// ED-LSTM baseline (Park et al. [37]): LSTM encoder over each target's own
// history, LSTM decoder initialized with the encoder state producing the
// (single) future step, linear output head. Still per-target sequential.
#ifndef HEAD_PERCEPTION_BASELINES_ED_LSTM_H_
#define HEAD_PERCEPTION_BASELINES_ED_LSTM_H_

#include <string>
#include <vector>

#include "nn/lstm.h"
#include "perception/predictor.h"

namespace head::perception {

class EdLstm : public StatePredictor {
 public:
  EdLstm(int hidden, Rng& rng, FeatureScale scale = FeatureScale());

  std::string name() const override { return "ED-LSTM"; }
  nn::Var ForwardScaled(const StGraph& graph) const override;
  std::vector<nn::Var> Params() const override;

 private:
  nn::LstmCell encoder_;
  nn::LstmCell decoder_;  // input = encoder hidden
  nn::Linear head_;
};

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_BASELINES_ED_LSTM_H_
