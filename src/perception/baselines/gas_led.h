// GAS-LED baseline (Liu et al., KDD'21 [14]): Global Attention + State
// sharing LSTM Encoder-Decoder. A weight-shared encoder LSTM encodes the
// target and each of its surroundings; dot-product global attention over the
// surrounding encodings forms a context vector; a decoder LSTM step over
// [target ‖ context] feeds the output head. Per-target sequential and the
// heaviest baseline — the accuracy/efficiency trade-off of Tables III/IV.
#ifndef HEAD_PERCEPTION_BASELINES_GAS_LED_H_
#define HEAD_PERCEPTION_BASELINES_GAS_LED_H_

#include <string>
#include <vector>

#include "nn/lstm.h"
#include "perception/predictor.h"

namespace head::perception {

class GasLed : public StatePredictor {
 public:
  GasLed(int hidden, Rng& rng, FeatureScale scale = FeatureScale());

  std::string name() const override { return "GAS-LED"; }
  nn::Var ForwardScaled(const StGraph& graph) const override;
  std::vector<nn::Var> Params() const override;

 private:
  int hidden_;
  nn::LstmCell encoder_;   // shared across all nodes (state sharing)
  nn::Linear query_;       // target hidden → attention query
  nn::LstmCell decoder_;   // input = [target hidden ‖ context]
  nn::Linear head_;
};

}  // namespace head::perception

#endif  // HEAD_PERCEPTION_BASELINES_GAS_LED_H_
