#include "decision/acc_lc.h"

#include <algorithm>

namespace head::decision {

Maneuver AccLcPolicy::Decide(const EgoView& view) {
  const LaneChange lc = DecideLaneChange(view, config_, cooldown_);
  const int lane_after = view.ego.lane + LaneDelta(lc);

  std::vector<sim::VehicleSnapshot> all = view.observed;
  all.push_back({kEgoVehicleId, view.ego});
  const sim::RoadView road_view(std::move(all));
  const sim::VehicleSnapshot* leader =
      road_view.Leader(lane_after, view.ego.lon_m, kEgoVehicleId);
  const double gap =
      leader != nullptr ? sim::Gap(leader->state.lon_m, view.ego.lon_m) : 1e9;
  const double dv =
      leader != nullptr ? view.ego.v_mps - leader->state.v_mps : 0.0;
  const double a =
      sim::AccAccel(config_.params, gains_, view.ego.v_mps, gap, dv);
  return Maneuver{
      lc, std::clamp(a, -config_.road.a_max_mps2, config_.road.a_max_mps2)};
}

}  // namespace head::decision
