#include "decision/idm_lc.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sim/idm.h"
#include "sim/lane_change.h"

namespace head::decision {

RuleBasedConfig RuleBasedConfig::ForRoad(const RoadConfig& road) {
  RuleBasedConfig c;
  c.road = road;
  c.params.desired_speed_mps = road.v_max_mps;
  c.params.time_headway_s = 1.0;  // human-like tailgating baseline
  c.params.min_gap_m = 1.5;
  c.params.max_accel_mps2 = road.a_max_mps2;
  c.params.comfort_decel_mps2 = 2.5;
  c.params.politeness = 0.1;
  c.params.lc_threshold_mps2 = 0.1;
  return c;
}

LaneChange DecideLaneChange(const EgoView& view, const RuleBasedConfig& config,
                            int& cooldown) {
  if (cooldown > 0) {
    --cooldown;
    return LaneChange::kKeep;
  }
  std::vector<sim::VehicleSnapshot> all = view.observed;
  all.push_back({kEgoVehicleId, view.ego});
  const sim::RoadView road_view(std::move(all));
  sim::Vehicle ego;
  ego.id = kEgoVehicleId;
  ego.state = view.ego;
  ego.params = config.params;
  const std::optional<LaneChange> change =
      sim::MobilDecide(road_view, ego, config.road);
  if (!change.has_value()) return LaneChange::kKeep;
  cooldown = config.lane_change_cooldown_steps;
  static obs::Counter& lane_changes =
      obs::GetCounter("decision.rule_based.lane_changes");
  lane_changes.Add();
  return *change;
}

Maneuver IdmLcPolicy::Decide(const EgoView& view) {
  const LaneChange lc = DecideLaneChange(view, config_, cooldown_);
  const int lane_after = view.ego.lane + LaneDelta(lc);

  std::vector<sim::VehicleSnapshot> all = view.observed;
  all.push_back({kEgoVehicleId, view.ego});
  const sim::RoadView road_view(std::move(all));
  const sim::VehicleSnapshot* leader =
      road_view.Leader(lane_after, view.ego.lon_m, kEgoVehicleId);
  const double gap =
      leader != nullptr ? sim::Gap(leader->state.lon_m, view.ego.lon_m) : 1e9;
  const double dv =
      leader != nullptr ? view.ego.v_mps - leader->state.v_mps : 0.0;
  const double a = sim::IdmAccel(config_.params, view.ego.v_mps, gap, dv);
  return Maneuver{
      lc, std::clamp(a, -config_.road.a_max_mps2, config_.road.a_max_mps2)};
}

}  // namespace head::decision
