#include "decision/tp_bts.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace head::decision {

namespace {
constexpr double kPruned = -std::numeric_limits<double>::infinity();
constexpr std::array<LaneChange, 3> kLaneChanges = {
    LaneChange::kLeft, LaneChange::kKeep, LaneChange::kRight};
}  // namespace

std::vector<std::vector<sim::VehicleSnapshot>> TpBtsPolicy::PredictTrajectories(
    const EgoView& view) const {
  std::vector<std::vector<sim::VehicleSnapshot>> pred(config_.search_depth);
  const double dt = config_.road.dt_s;
  for (const sim::VehicleSnapshot& v : view.observed) {
    // Acceleration estimate from the previous observation of this vehicle.
    double accel = 0.0;
    const auto it = last_velocities_.find(v.id);
    if (it != last_velocities_.end()) {
      accel = std::clamp((v.state.v_mps - it->second) / dt,
                         -config_.road.a_max_mps2, config_.road.a_max_mps2);
    }
    VehicleState s = v.state;
    for (int d = 0; d < config_.search_depth; ++d) {
      const double v_new = std::clamp(s.v_mps + accel * dt,
                                      config_.road.v_min_mps,
                                      config_.road.v_max_mps);
      s.lon_m += 0.5 * (s.v_mps + v_new) * dt;
      s.v_mps = v_new;
      pred[d].push_back({v.id, s});
    }
  }
  return pred;
}

double TpBtsPolicy::StepScore(const VehicleState& ego, double accel,
                              double prev_accel,
                              const std::vector<sim::VehicleSnapshot>& others,
                              bool changed_lane) const {
  if (!config_.road.IsValidLane(ego.lane)) return kPruned;

  double min_front_gap = 1e9;
  double rear_gap = 1e9;
  double rear_v = 0.0;
  for (const sim::VehicleSnapshot& o : others) {
    if (o.state.lane != ego.lane) continue;
    const double d = o.state.lon_m - ego.lon_m;
    if (std::fabs(d) < kVehicleLengthM + config_.collision_gap_m) {
      return kPruned;  // collision branch
    }
    if (changed_lane && d < 0.0 &&
        -d < kVehicleLengthM + 0.5 * o.state.v_mps) {
      return kPruned;  // cutting in without a safe rear gap
    }
    if (d > 0.0) {
      min_front_gap = std::min(min_front_gap, d - kVehicleLengthM);
    } else if (-d - kVehicleLengthM < rear_gap) {
      rear_gap = -d - kVehicleLengthM;
      rear_v = o.state.v_mps;
    }
  }

  double score = config_.w_efficiency * ego.v_mps / config_.road.v_max_mps;
  // Safety: exponential penalty as the front gap shrinks below ~2 s headway.
  const double desired = std::max(2.0 * ego.v_mps, 10.0);
  if (min_front_gap < desired) {
    score -= config_.w_safety * std::exp(-min_front_gap / 10.0);
  }
  // Comfort: jerk proxy.
  score -= config_.w_comfort * std::fabs(accel - prev_accel) /
           (2.0 * config_.road.a_max_mps2);
  // Impact: cutting in close in front of a faster follower forces it to brake.
  if (changed_lane && rear_gap < std::max(1.5 * rear_v, 8.0)) {
    score -= config_.w_impact *
             std::exp(-rear_gap / std::max(rear_v, 1.0));
  }
  return score;
}

double TpBtsPolicy::Search(
    const VehicleState& ego, double prev_accel, int depth,
    const std::vector<std::vector<sim::VehicleSnapshot>>& pred) const {
  if (depth >= config_.search_depth) return 0.0;
  double best = kPruned;
  for (const LaneChange lc : kLaneChanges) {
    for (const double a : config_.accel_levels_mps2) {
      const VehicleState next =
          StepKinematics(ego, Maneuver{lc, a}, config_.road);
      const double step = StepScore(next, a, prev_accel, pred[depth],
                                    lc != LaneChange::kKeep);
      if (step == kPruned) continue;
      const double future =
          Search(next, a, depth + 1, pred);
      if (future == kPruned) continue;
      best = std::max(best, step + config_.discount * future);
    }
  }
  return best;
}

Maneuver TpBtsPolicy::Decide(const EgoView& view) {
  const auto pred = PredictTrajectories(view);

  Maneuver best_maneuver{LaneChange::kKeep, -config_.road.a_max_mps2};
  double best = kPruned;
  for (const LaneChange lc : kLaneChanges) {
    for (const double a : config_.accel_levels_mps2) {
      const VehicleState next =
          StepKinematics(view.ego, Maneuver{lc, a}, config_.road);
      const double step = StepScore(next, a, view.prev_accel_mps2, pred[0],
                                    lc != LaneChange::kKeep);
      if (step == kPruned) continue;
      const double future = Search(next, a, 1, pred);
      if (future == kPruned) continue;
      const double total = step + config_.discount * future;
      if (total > best) {
        best = total;
        best_maneuver = Maneuver{lc, a};
      }
    }
  }

  // Update the acceleration-estimation memory for the next call.
  last_velocities_.clear();
  for (const sim::VehicleSnapshot& v : view.observed) {
    last_velocities_[v.id] = v.state.v_mps;
  }
  return best_maneuver;
}

}  // namespace head::decision
