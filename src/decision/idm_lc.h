// IDM-LC baseline (paper refs [8], [69]): the Intelligent Driver Model for
// the longitudinal acceleration plus a MOBIL-style lane-change model —
// the classical rule-based decision stack of Table I.
#ifndef HEAD_DECISION_IDM_LC_H_
#define HEAD_DECISION_IDM_LC_H_

#include "decision/policy.h"
#include "sim/vehicle.h"

namespace head::decision {

struct RuleBasedConfig {
  RoadConfig road;
  /// Ego driver parameters; desired speed defaults to the road's v_max so
  /// the baseline drives as efficiently as its rules allow.
  sim::DriverParams params;
  int lane_change_cooldown_steps = 4;

  static RuleBasedConfig ForRoad(const RoadConfig& road);
};

class IdmLcPolicy : public Policy {
 public:
  explicit IdmLcPolicy(const RuleBasedConfig& config) : config_(config) {}

  std::string name() const override { return "IDM-LC"; }
  void OnEpisodeStart() override { cooldown_ = 0; }
  Maneuver Decide(const EgoView& view) override;

 private:
  RuleBasedConfig config_;
  int cooldown_ = 0;
};

/// Shared by IDM-LC / ACC-LC: MOBIL decision for the ego over its view.
/// Decrements/respects `cooldown` in place.
LaneChange DecideLaneChange(const EgoView& view, const RuleBasedConfig& config,
                            int& cooldown);

}  // namespace head::decision

#endif  // HEAD_DECISION_IDM_LC_H_
