// TP-BTS baseline (Liu et al., KDD'21 [14]): Trajectory Prediction +
// Behavior Tree Search. Predicts surrounding vehicles forward with a
// constant-acceleration motion model (acceleration estimated from
// consecutive observations), then exhaustively searches a tree of
// *discretized* maneuvers, scoring safety, efficiency, comfort and impact.
// Its discreteness in the velocity dimension is exactly the limitation the
// paper's continuous-action HEAD removes.
#ifndef HEAD_DECISION_TP_BTS_H_
#define HEAD_DECISION_TP_BTS_H_

#include <unordered_map>
#include <vector>

#include "decision/policy.h"

namespace head::decision {

struct TpBtsConfig {
  RoadConfig road;
  int search_depth = 3;
  std::vector<double> accel_levels_mps2 = {-3.0, 0.0, 3.0};
  double discount = 0.9;
  double w_safety = 2.0;
  double w_efficiency = 1.0;
  double w_comfort = 0.15;
  double w_impact = 0.4;
  /// Gaps below this (bumper-to-bumper) prune the branch as colliding.
  double collision_gap_m = 3.0;
};

class TpBtsPolicy : public Policy {
 public:
  explicit TpBtsPolicy(const TpBtsConfig& config) : config_(config) {}

  std::string name() const override { return "TP-BTS"; }
  void OnEpisodeStart() override { last_velocities_.clear(); }
  Maneuver Decide(const EgoView& view) override;

 private:
  /// Predicted absolute states of the observed vehicles at each future step
  /// 1..depth (constant-acceleration, lane-keeping).
  std::vector<std::vector<sim::VehicleSnapshot>> PredictTrajectories(
      const EgoView& view) const;

  /// Recursive tree search; returns the best discounted score reachable
  /// from `ego` at `depth` (0-based), where prev_accel drives comfort.
  double Search(const VehicleState& ego, double prev_accel, int depth,
                const std::vector<std::vector<sim::VehicleSnapshot>>& pred)
      const;

  /// One-step score of arriving at `ego` among `others` (< 0 on collision).
  double StepScore(const VehicleState& ego, double accel, double prev_accel,
                   const std::vector<sim::VehicleSnapshot>& others,
                   bool changed_lane) const;

  TpBtsConfig config_;
  std::unordered_map<VehicleId, double> last_velocities_;
};

}  // namespace head::decision

#endif  // HEAD_DECISION_TP_BTS_H_
