// The common decision-making interface of Table I: every method — the
// traditional baselines, TP-BTS, and HEAD itself — maps the ego's sensor
// view to a maneuver once per Δt.
#ifndef HEAD_DECISION_POLICY_H_
#define HEAD_DECISION_POLICY_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "sim/road.h"

namespace head::decision {

/// What the ego knows at a time step: its own state plus the sensor-filtered
/// snapshots of surrounding conventional vehicles.
struct EgoView {
  VehicleState ego;
  std::vector<sim::VehicleSnapshot> observed;
  double prev_accel_mps2 = 0.0;
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  /// Called when a new episode begins (clears internal history).
  virtual void OnEpisodeStart() {}

  virtual Maneuver Decide(const EgoView& view) = 0;
};

}  // namespace head::decision

#endif  // HEAD_DECISION_POLICY_H_
