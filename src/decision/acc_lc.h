// ACC-LC baseline (paper refs [6]–[8]): linear Adaptive Cruise Control for
// the longitudinal acceleration plus the same MOBIL lane-change logic.
#ifndef HEAD_DECISION_ACC_LC_H_
#define HEAD_DECISION_ACC_LC_H_

#include "decision/idm_lc.h"
#include "sim/acc.h"

namespace head::decision {

class AccLcPolicy : public Policy {
 public:
  explicit AccLcPolicy(const RuleBasedConfig& config) : config_(config) {}

  std::string name() const override { return "ACC-LC"; }
  void OnEpisodeStart() override { cooldown_ = 0; }
  Maneuver Decide(const EgoView& view) override;

 private:
  RuleBasedConfig config_;
  sim::AccGains gains_;
  int cooldown_ = 0;
};

}  // namespace head::decision

#endif  // HEAD_DECISION_ACC_LC_H_
