#include "parallel/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"

namespace head::parallel {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// True on threads that are currently inside a pool worker (or inside an
/// inline ParallelFor chunk). Nested parallel constructs run inline instead
/// of re-submitting to the pool, so a full pool can never deadlock on its
/// own tasks.
thread_local bool tls_in_worker = false;

ThreadPool* g_override = nullptr;  // see GlobalPoolOverride

}  // namespace

void WaitToken::Release() {
  // The decrement, the notify, and Wait's predicate reads all happen under
  // the lock. That closes two lifetime/lost-wakeup holes at once: a waiter
  // cannot miss the notify between its predicate check and its block, and a
  // waiter that returns from Wait() is ordered strictly after the final
  // releaser has left the mutex — so the caller may destroy the token
  // immediately after Wait() (DecisionService does exactly that at
  // shutdown). A lock-free fast path that observes pending_ == 0 outside
  // the lock would let Wait return while a releaser is still inside
  // notify_all on the about-to-be-destroyed condvar.
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    cv_.notify_all();
  }
}

void WaitToken::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock,
           [this] { return pending_.load(std::memory_order_acquire) == 0; });
}

int HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

int ConfiguredThreadCount() {
  static const int count = [] {
    const char* env = std::getenv("HEAD_THREADS");
    if (env != nullptr) {
      const int parsed = std::atoi(env);
      if (parsed >= 1) return parsed;
    }
    return HardwareThreads();
  }();
  return count;
}

ThreadPool::ThreadPool(int threads)
    : threads_(threads), start_seconds_(NowSeconds()) {
  HEAD_CHECK_GE(threads, 1);
  if (threads_ == 1) return;  // inline mode: no workers, no queue traffic
  workers_.reserve(threads_);
  for (int i = 0; i < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  auto task = std::make_shared<std::packaged_task<void()>>(std::move(fn));
  std::future<void> future = task->get_future();
  Task t;
  t.fn = [task] { (*task)(); };
  t.enqueue_seconds = NowSeconds();
  if (threads_ == 1) {
    RunTask(std::move(t));  // inline: ready before Submit returns
    return future;
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    HEAD_CHECK(!stop_);
    queue_.push_back(std::move(t));
    depth = queue_.size();
  }
  static obs::Gauge& queue_depth = obs::GetGauge("parallel.pool.queue_depth");
  queue_depth.Set(static_cast<double>(depth));
  cv_.notify_one();
  return future;
}

std::future<void> ThreadPool::SubmitWithToken(WaitToken* token,
                                              std::function<void()> fn) {
  HEAD_CHECK(token != nullptr);
  token->Acquire();
  return Submit([token, fn = std::move(fn)] {
    struct Releaser {
      WaitToken* t;
      ~Releaser() { t->Release(); }
    } releaser{token};
    fn();
  });
}

bool ThreadPool::PopTask(Task* task) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stop_ with a drained queue
  *task = std::move(queue_.front());
  queue_.pop_front();
  const size_t depth = queue_.size();
  lock.unlock();
  static obs::Gauge& queue_depth = obs::GetGauge("parallel.pool.queue_depth");
  queue_depth.Set(static_cast<double>(depth));
  return true;
}

void ThreadPool::RunTask(Task task) {
  static obs::Counter& tasks = obs::GetCounter("parallel.pool.tasks");
  static obs::Histogram& queue_wait =
      obs::LatencyHistogram("parallel.task.queue_wait");
  static obs::Histogram& run_latency =
      obs::LatencyHistogram("parallel.task.run");
  const double start = NowSeconds();
  queue_wait.Observe(start - task.enqueue_seconds);
  task.fn();
  const double elapsed = NowSeconds() - start;
  run_latency.Observe(elapsed);
  tasks.Add();
  busy_ns_.fetch_add(static_cast<int64_t>(elapsed * 1e9),
                     std::memory_order_relaxed);
  // Utilization = busy time across workers / (wall time × pool size). Only
  // meaningful for multi-thread pools; updated per task, which is cheap
  // because tasks are coarse (episodes, ParallelFor chunk batches).
  const double wall = NowSeconds() - start_seconds_;
  if (wall > 0 && threads_ > 1) {
    static obs::Gauge& utilization =
        obs::GetGauge("parallel.pool.utilization");
    utilization.Set(busy_ns_.load(std::memory_order_relaxed) * 1e-9 /
                    (wall * threads_));
  }
}

void ThreadPool::WorkerLoop() {
  tls_in_worker = true;
  Task task;
  while (PopTask(&task)) {
    RunTask(std::move(task));
    task = Task{};
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  const int64_t n = end - begin;
  if (n <= 0) return;
  grain = std::max<int64_t>(1, grain);
  if (threads_ == 1 || tls_in_worker || n <= grain) {
    fn(begin, end);
    return;
  }

  // Fixed chunk boundaries: a pure function of (n, grain, thread_count), so
  // per-chunk accumulation order never depends on scheduling. Cap the chunk
  // count at 4 per thread — enough slack to balance uneven chunks without
  // paying dispatch overhead per tiny slice.
  const int64_t max_chunks = static_cast<int64_t>(threads_) * 4;
  const int64_t num_chunks =
      std::min((n + grain - 1) / grain, std::max<int64_t>(2, max_chunks));
  const int64_t chunk = (n + num_chunks - 1) / num_chunks;

  struct Ctrl {
    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::mutex mu;
    std::condition_variable cv;
  };
  auto ctrl = std::make_shared<Ctrl>();
  auto run_chunks = [ctrl, begin, end, chunk, num_chunks, &fn] {
    int64_t i;
    int64_t ran = 0;
    while ((i = ctrl->next.fetch_add(1, std::memory_order_relaxed)) <
           num_chunks) {
      const int64_t lo = begin + i * chunk;
      const int64_t hi = std::min(end, lo + chunk);
      fn(lo, hi);
      ++ran;
    }
    if (ran > 0 &&
        ctrl->done.fetch_add(ran, std::memory_order_acq_rel) + ran ==
            num_chunks) {
      std::lock_guard<std::mutex> lock(ctrl->mu);
      ctrl->cv.notify_all();
    }
  };

  // The caller claims chunks too, so at most threads_ - 1 helpers are ever
  // useful. Helpers that wake up after the cursor is exhausted return
  // without touching fn — fn is only dereferenced while the caller is
  // blocked here, so the by-reference capture is safe.
  const int64_t helpers =
      std::min<int64_t>(threads_ - 1, num_chunks - 1);
  static obs::Counter& dispatches =
      obs::GetCounter("parallel.pfor.dispatches");
  dispatches.Add();
  {
    std::lock_guard<std::mutex> lock(mu_);
    HEAD_CHECK(!stop_);
    const double now = NowSeconds();
    for (int64_t h = 0; h < helpers; ++h) {
      Task t;
      t.fn = run_chunks;
      t.enqueue_seconds = now;
      queue_.push_back(std::move(t));
    }
  }
  cv_.notify_all();

  // Participate, then wait for stragglers. The tls flag makes any nested
  // ParallelFor inside fn run inline.
  const bool was_in_worker = tls_in_worker;
  tls_in_worker = true;
  run_chunks();
  tls_in_worker = was_in_worker;
  std::unique_lock<std::mutex> lock(ctrl->mu);
  ctrl->cv.wait(lock, [&] {
    return ctrl->done.load(std::memory_order_acquire) == num_chunks;
  });
}

ThreadPool& ThreadPool::Global() {
  if (g_override != nullptr) return *g_override;
  static ThreadPool* pool = new ThreadPool(ConfiguredThreadCount());
  return *pool;
}

GlobalPoolOverride::GlobalPoolOverride(ThreadPool* pool)
    : previous_(g_override) {
  g_override = pool;
}

GlobalPoolOverride::~GlobalPoolOverride() { g_override = previous_; }

}  // namespace head::parallel
