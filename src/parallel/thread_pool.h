// Fixed-size, work-stealing-free thread pool: one shared FIFO task queue
// under a mutex, N persistent workers, and a chunked ParallelFor on top.
//
// Design points, all driven by the reproducibility contract of the parallel
// layer (DESIGN.md "Parallel execution"):
//   * A pool with thread_count() == 1 spawns no threads at all — Submit and
//     ParallelFor run inline on the caller, which restores the exact serial
//     behavior (same instruction stream, same FP associativity).
//   * ParallelFor partitions [begin, end) into fixed contiguous chunks that
//     workers claim from a shared atomic cursor. Which thread runs a chunk
//     is scheduling-dependent, but the chunk boundaries — and therefore the
//     per-chunk accumulation order — depend only on (range, grain,
//     thread_count), so numeric results are bitwise identical run-to-run.
//   * Nested ParallelFor calls from inside a worker run inline (no task
//     re-submission), which makes the pool deadlock-free by construction.
//
// The pool size comes from HEAD_THREADS (default: hardware_concurrency) for
// the process-global pool; tests and benches construct private pools and
// swap them in scope-locally with GlobalPoolOverride.
//
// Everything is instrumented through src/obs: queue depth, tasks executed,
// queue-wait and run latency histograms, and a busy-time-derived worker
// utilization gauge.
#ifndef HEAD_PARALLEL_THREAD_POOL_H_
#define HEAD_PARALLEL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace head::parallel {

/// std::thread::hardware_concurrency with a floor of 1.
int HardwareThreads();

/// Pool size for ThreadPool::Global(): $HEAD_THREADS when set to a positive
/// integer, otherwise HardwareThreads(). Read once per process.
int ConfiguredThreadCount();

/// In-flight work counter for scoped draining: a task group (e.g. every
/// batch dispatched against one model snapshot) shares a token, and
/// WaitToken::Wait blocks until only that group's submissions have finished —
/// no full-pool barrier, no interference with unrelated work. Acquire/Release
/// pair automatically through ThreadPool::SubmitWithToken; manual pairs are
/// allowed for work that runs outside the pool. The token must outlive every
/// submission made under it.
class WaitToken {
 public:
  WaitToken() = default;
  WaitToken(const WaitToken&) = delete;
  WaitToken& operator=(const WaitToken&) = delete;

  void Acquire() { pending_.fetch_add(1, std::memory_order_relaxed); }
  void Release();
  /// Blocks until every Acquire has been matched by a Release. A token with
  /// no in-flight work returns immediately.
  void Wait();
  int64_t pending() const { return pending_.load(std::memory_order_acquire); }

 private:
  std::atomic<int64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

class ThreadPool {
 public:
  /// `threads` >= 1. A 1-thread pool runs everything inline on the caller.
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int thread_count() const { return threads_; }

  /// Enqueues `fn` and returns a future that becomes ready when it has run
  /// (exceptions propagate through the future). On a 1-thread pool the task
  /// runs inline before Submit returns.
  std::future<void> Submit(std::function<void()> fn);

  /// Submit under a drain token: `token` is acquired before the task is
  /// enqueued and released when it finishes (even if it throws), so
  /// token->Wait() blocks until exactly this group's submissions have
  /// drained — a retiring model snapshot waits for its own in-flight batches
  /// instead of a whole-pool barrier.
  std::future<void> SubmitWithToken(WaitToken* token, std::function<void()> fn);

  /// Runs fn(lo, hi) over a partition of [begin, end) in chunks of at least
  /// `grain` iterations, using the pool's workers plus the calling thread.
  /// Blocks until every chunk has finished. fn must be safe to invoke
  /// concurrently on disjoint ranges. Chunk boundaries are a pure function
  /// of (range, grain, thread_count) — never of thread timing — so any
  /// per-chunk accumulation is bitwise reproducible.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// The process-wide pool, created on first use with
  /// ConfiguredThreadCount() threads (unless overridden — see below).
  static ThreadPool& Global();

 private:
  struct Task {
    std::function<void()> fn;
    double enqueue_seconds = 0.0;  ///< steady-clock time at Submit
  };

  void WorkerLoop();
  void RunTask(Task task);
  /// Pops until the queue is empty or the pool stops; returns on stop.
  bool PopTask(Task* task);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stop_ = false;

  // Utilization bookkeeping: busy nanoseconds across all workers vs. wall
  // time since construction × thread count.
  std::atomic<int64_t> busy_ns_{0};
  double start_seconds_ = 0.0;
};

/// RAII override of ThreadPool::Global() — lets tests and benches pin the
/// global pool (and with it the threaded tensor kernels) to an explicit
/// thread count. Restores the previous pool on destruction. Not itself
/// thread-safe: install overrides from a single controlling thread.
class GlobalPoolOverride {
 public:
  explicit GlobalPoolOverride(ThreadPool* pool);
  ~GlobalPoolOverride();

  GlobalPoolOverride(const GlobalPoolOverride&) = delete;
  GlobalPoolOverride& operator=(const GlobalPoolOverride&) = delete;

 private:
  ThreadPool* previous_;
};

}  // namespace head::parallel

#endif  // HEAD_PARALLEL_THREAD_POOL_H_
