// EnvPool: K independent DrivingEnv instances that run whole episodes
// concurrently on the thread pool, against a frozen policy, with per-episode
// SplitMix-derived RNG streams.
//
// Reproducibility contract: an episode's outcome is a pure function of
// (policy parameters, env config, episode index, seed_base) — the reset
// seed is SplitMix(seed_base, 2·index) and the action-noise stream is
// SplitMix(seed_base, 2·index + 1). Which env instance or worker thread
// runs the episode is irrelevant, so a rollout's per-episode results are
// identical for any thread count, and greedy evaluation is identical for
// any pool size K as well. Training rounds freeze the learner between
// collections (see rl::TrainAgent's EnvPool overload), so training is
// reproducible for a fixed K.
//
// Transitions stream into a mutex-striped buffer (one stripe per env, so
// concurrent pushes rarely contend) and are drained in episode order, which
// keeps the learner's replay contents deterministic.
//
// Header-only on purpose: the parallel layer sits below head_rl in the link
// order (head_rl links head_parallel), so the env-facing code here is
// inline and its symbols live in whichever target uses it.
#ifndef HEAD_PARALLEL_ENV_POOL_H_
#define HEAD_PARALLEL_ENV_POOL_H_

#include <algorithm>
#include <chrono>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/rng.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "parallel/thread_pool.h"
#include "rl/env.h"
#include "rl/replay_buffer.h"

namespace head::parallel {

/// Mutex-striped transition store for concurrent rollout collection.
/// Push(episode_index, t) locks only stripe episode_index % stripes;
/// DrainOrdered() returns everything grouped by episode in ascending
/// episode-index order (step order preserved within an episode), which is
/// the deterministic replay order the learner consumes.
class StripedTransitionBuffer {
 public:
  explicit StripedTransitionBuffer(int stripes)
      : stripes_(std::max(1, stripes)),
        shards_(static_cast<size_t>(stripes_)) {}

  void Push(int episode_index, rl::Transition t) {
    Shard& shard = shards_[static_cast<size_t>(episode_index) %
                           static_cast<size_t>(stripes_)];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.episodes[episode_index].push_back(std::move(t));
  }

  /// Moves out all stored transitions as (episode_index, steps) groups in
  /// ascending episode order. Not safe concurrently with Push.
  std::vector<std::pair<int, std::vector<rl::Transition>>> DrainOrdered() {
    std::vector<std::pair<int, std::vector<rl::Transition>>> out;
    for (Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (auto& [index, steps] : shard.episodes) {
        out.emplace_back(index, std::move(steps));
      }
      shard.episodes.clear();
    }
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  size_t size() const {
    size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      for (const auto& [index, steps] : shard.episodes) n += steps.size();
    }
    return n;
  }

  int stripes() const { return stripes_; }

 private:
  struct Shard {
    mutable std::mutex mu;
    std::map<int, std::vector<rl::Transition>> episodes;
  };

  int stripes_;
  std::vector<Shard> shards_;  // never resized: Shard is not movable
};

class EnvPool {
 public:
  /// Builds env `index` (0-based). Every env must be configured
  /// identically for the reproducibility contract to hold; the index is
  /// provided for instrumentation only.
  using EnvFactory = std::function<std::unique_ptr<rl::DrivingEnv>(int)>;

  /// Per-episode summary, independent of which env/worker ran it.
  struct EpisodeResult {
    int index = 0;              ///< global episode index
    int steps = 0;
    double reward_sum = 0.0;    ///< Σ per-step total reward, in step order
    rl::RewardTerms terms;      ///< per-term sums (Eq. 28 decomposition)
    double min_step_reward = std::numeric_limits<double>::infinity();
    double max_step_reward = -std::numeric_limits<double>::infinity();
    bool collision = false;     ///< episode ended in a collision
  };

  struct RolloutOptions {
    uint64_t seed_base = 1;
    int max_steps_per_episode = 100000;
    /// Exploration rate per episode (indexed by episode offset within the
    /// run); empty means greedy (ε = 0) everywhere.
    std::vector<double> epsilons;
    /// When set, every transition is pushed here as (global episode index,
    /// transition) for ordered draining by the learner.
    StripedTransitionBuffer* transitions = nullptr;
    /// Scenario name stamped into flight-recorder episode contexts. Only
    /// used while obs::RecordingEnabled().
    std::string scenario_name;
  };

  /// `pool` defaults to ThreadPool::Global().
  EnvPool(int num_envs, const EnvFactory& factory, ThreadPool* pool = nullptr)
      : pool_(pool != nullptr ? pool : &ThreadPool::Global()) {
    HEAD_CHECK_GE(num_envs, 1);
    envs_.reserve(num_envs);
    for (int i = 0; i < num_envs; ++i) envs_.push_back(factory(i));
  }

  int size() const { return static_cast<int>(envs_.size()); }
  rl::DrivingEnv& env(int i) { return *envs_[i]; }
  ThreadPool& pool() { return *pool_; }

  /// Runs `count` episodes with global indices [first_index, first_index +
  /// count) against `agent` (whose parameters must stay frozen for the
  /// duration), fanning out across the pool. Episode offset j runs on env
  /// j % K; each env processes its episodes in ascending order. Returns
  /// per-episode results indexed by offset j. Forward passes run under
  /// NoGradGuard — rollouts never build autograd graphs.
  std::vector<EpisodeResult> RunEpisodes(rl::PamdpAgent& agent,
                                         int first_index, int count,
                                         const RolloutOptions& opts) {
    HEAD_CHECK_GE(count, 0);
    std::vector<EpisodeResult> results(count);
    if (count == 0) return results;
    static obs::Counter& episodes_counter =
        obs::GetCounter("parallel.envpool.episodes");
    static obs::Histogram& episode_latency =
        obs::LatencyHistogram("parallel.envpool.episode");
    const int k = size();
    // One task per env: env e serially runs episode offsets e, e+K, e+2K, …
    // Exclusive env ownership per task means no env-level locking, and the
    // per-episode seed streams make the assignment irrelevant to results.
    pool_->ParallelFor(0, std::min(k, count), 1, [&](int64_t e0, int64_t e1) {
      for (int64_t e = e0; e < e1; ++e) {
        rl::DrivingEnv& env = *envs_[e];
        for (int j = static_cast<int>(e); j < count; j += k) {
          const auto t0 = std::chrono::steady_clock::now();
          results[j] = RunOneEpisode(agent, env, first_index + j,
                                     j < static_cast<int>(opts.epsilons.size())
                                         ? opts.epsilons[j]
                                         : 0.0,
                                     opts);
          episode_latency.Observe(std::chrono::duration<double>(
                                      std::chrono::steady_clock::now() - t0)
                                      .count());
          episodes_counter.Add();
        }
      }
    });
    return results;
  }

 private:
  static EpisodeResult RunOneEpisode(rl::PamdpAgent& agent,
                                     rl::DrivingEnv& env, int global_index,
                                     double epsilon,
                                     const RolloutOptions& opts) {
    // Rollouts are pure inference; the guard also covers worker threads,
    // whose thread-local grad mode starts enabled.
    const nn::NoGradGuard no_grad;
    EpisodeResult result;
    result.index = global_index;
    const uint64_t gi = static_cast<uint64_t>(global_index);
    // Flight recorder: rings are thread-local, so concurrent episodes never
    // share a scratch; the manifest records the episode's own reset seed.
    if (obs::RecordingEnabled()) {
      obs::EpisodeContext ctx;
      ctx.scenario = opts.scenario_name;
      ctx.policy = agent.name();
      ctx.seed = SplitMix(opts.seed_base, 2 * gi);
      ctx.episode_index = global_index;
      obs::BeginEpisode(ctx);
    }
    sim::EpisodeStatus status = sim::EpisodeStatus::kRunning;
    rl::AugmentedState state =
        env.Reset(SplitMix(opts.seed_base, 2 * gi));
    Rng rng(SplitMix(opts.seed_base, 2 * gi + 1));
    while (result.steps < opts.max_steps_per_episode) {
      const rl::AgentAction action = agent.Act(state, epsilon, rng);
      if (obs::RecordingEnabled()) {
        obs::ScratchRecord().rng_cursor = rng.draws();
      }
      const rl::DrivingEnv::StepOutcome outcome = env.Step(action.maneuver);
      const double r = outcome.reward.total;
      result.reward_sum += r;
      result.terms.safety += outcome.reward.safety;
      result.terms.efficiency += outcome.reward.efficiency;
      result.terms.comfort += outcome.reward.comfort;
      result.terms.impact += outcome.reward.impact;
      result.min_step_reward = std::min(result.min_step_reward, r);
      result.max_step_reward = std::max(result.max_step_reward, r);
      ++result.steps;
      if (opts.transitions != nullptr) {
        rl::Transition t;
        t.state = state;
        t.behavior = action.behavior;
        t.params = action.params;
        t.reward = r;
        t.next_state = outcome.next_state;
        t.terminal = outcome.done;
        opts.transitions->Push(global_index, std::move(t));
      }
      state = outcome.next_state;
      status = outcome.status;
      if (outcome.done) {
        result.collision = outcome.status == sim::EpisodeStatus::kCollision;
        break;
      }
    }
    if (obs::RecordingEnabled()) obs::EndEpisode(sim::ToEpisodeEnd(status));
    return result;
  }

  ThreadPool* pool_;
  std::vector<std::unique_ptr<rl::DrivingEnv>> envs_;
};

}  // namespace head::parallel

#endif  // HEAD_PARALLEL_ENV_POOL_H_
