#include "eval/trace.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/span.h"

namespace head::eval {

EpisodeTrace RecordEpisode(decision::Policy& policy,
                           const TraceConfig& config, uint64_t seed) {
  sim::Simulation sim(config.sim, seed);
  rl::RewardFunction reward_fn(config.reward, config.sim.road);
  policy.OnEpisodeStart();

  EpisodeTrace trace;
  trace.policy_name = policy.name();
  trace.seed = seed;
  double prev_accel = 0.0;

  while (sim.status() == sim::EpisodeStatus::kRunning) {
    HEAD_SPAN("episode.step");
    const VehicleState ego_before = sim.ego_state();
    decision::EgoView view;
    view.ego = ego_before;
    view.observed = sensor::Observe(sim.GlobalSnapshot(), ego_before,
                                    config.sensor, config.sim.road);
    view.prev_accel_mps2 = prev_accel;
    const Maneuver maneuver = policy.Decide(view);

    // Rear vehicle before the step (for the impact term).
    const sim::RoadView before = sim.View();
    const sim::VehicleSnapshot* rear =
        before.Follower(ego_before.lane, ego_before.lon_m, kEgoVehicleId);
    const VehicleId rear_id = rear != nullptr ? rear->id : kInvalidVehicleId;
    const double rear_v = rear != nullptr ? rear->state.v_mps : 0.0;

    const sim::EpisodeStatus status = sim.Step(maneuver);

    TraceStep step;
    step.time_s = sim.time_s();
    step.ego = sim.ego_state();
    step.maneuver = maneuver;
    step.observed_vehicles = static_cast<int>(view.observed.size());

    rl::RewardObservation obs;
    obs.collision = status == sim::EpisodeStatus::kCollision;
    obs.ego_next = sim.ego_state();
    obs.accel_now_mps2 = maneuver.accel_mps2;
    obs.accel_prev_mps2 = prev_accel;
    if (config.sim.road.IsValidLane(sim.ego_state().lane)) {
      const sim::RoadView after = sim.View();
      const sim::VehicleSnapshot* front = after.Leader(
          sim.ego_state().lane, sim.ego_state().lon_m, kEgoVehicleId);
      if (front != nullptr) obs.front_next = front->state;
    }
    if (rear_id != kInvalidVehicleId) {
      obs.rear_v_now_mps = rear_v;
      for (const sim::Vehicle& v : sim.conventional_vehicles()) {
        if (v.id == rear_id) {
          obs.rear_v_next_mps = v.state.v_mps;
          break;
        }
      }
    }
    step.reward = reward_fn.Compute(obs);

    for (const sim::VehicleSnapshot& v : sim.GlobalSnapshot()) {
      if (std::fabs(DLon(v.state, step.ego)) <= config.nearby_window_m) {
        step.nearby.push_back(v);
      }
    }
    trace.steps.push_back(std::move(step));
    trace.final_status = status;
    prev_accel = maneuver.accel_mps2;
  }
  return trace;
}

void WriteTraceCsv(const EpisodeTrace& trace, std::ostream& os) {
  os << "time_s,lane,lon_m,v_mps,lane_change,accel_mps2,"
        "r_safety,r_efficiency,r_comfort,r_impact,r_total,observed\n";
  for (const TraceStep& s : trace.steps) {
    os << s.time_s << "," << s.ego.lane << "," << s.ego.lon_m << ","
       << s.ego.v_mps << "," << ToString(s.maneuver.lane_change) << ","
       << s.maneuver.accel_mps2 << "," << s.reward.safety << ","
       << s.reward.efficiency << "," << s.reward.comfort << ","
       << s.reward.impact << "," << s.reward.total << ","
       << s.observed_vehicles << "\n";
  }
}

std::string RenderStep(const TraceStep& step, const RoadConfig& road,
                       double window_m) {
  HEAD_CHECK_GT(window_m, 0.0);
  const int width = 61;  // odd so the ego sits on the center column
  const double meters_per_col = 2.0 * window_m / (width - 1);
  std::vector<std::string> rows(road.num_lanes, std::string(width, '.'));

  auto put = [&](const VehicleState& v, char symbol) {
    if (!road.IsValidLane(v.lane)) return;
    const double d = DLon(v, step.ego);
    if (std::fabs(d) > window_m) return;
    const int col = static_cast<int>(
        std::lround((d + window_m) / meters_per_col));
    rows[v.lane - 1][std::clamp(col, 0, width - 1)] = symbol;
  };
  for (const sim::VehicleSnapshot& v : step.nearby) {
    if (v.id != kEgoVehicleId) put(v.state, 'o');
  }
  put(step.ego, 'E');

  std::ostringstream os;
  os << "t=" << step.time_s << "s  v=" << step.ego.v_mps << "m/s  a="
     << step.maneuver.accel_mps2 << "  " << ToString(step.maneuver.lane_change)
     << "  r=" << step.reward.total << "\n";
  for (int lane = 0; lane < road.num_lanes; ++lane) {
    os << "lane " << lane + 1 << " |" << rows[lane] << "|\n";
  }
  return os.str();
}

}  // namespace head::eval
