// Episode tracing: records every step of a policy-driven episode (ego
// state, maneuver, reward terms, neighborhood) for offline analysis —
// CSV export and a terminal renderer for quick visual inspection.
#ifndef HEAD_EVAL_TRACE_H_
#define HEAD_EVAL_TRACE_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "decision/policy.h"
#include "rl/reward.h"
#include "sensor/sensor_model.h"
#include "sim/simulation.h"

namespace head::eval {

/// One recorded simulation step.
struct TraceStep {
  double time_s = 0.0;
  VehicleState ego;
  Maneuver maneuver;
  rl::RewardTerms reward;
  int observed_vehicles = 0;
  /// Snapshot of every vehicle within ±120 m of the ego (for rendering).
  std::vector<sim::VehicleSnapshot> nearby;
};

struct EpisodeTrace {
  std::string policy_name;
  uint64_t seed = 0;
  sim::EpisodeStatus final_status = sim::EpisodeStatus::kRunning;
  std::vector<TraceStep> steps;
};

struct TraceConfig {
  sim::SimConfig sim;
  sensor::SensorConfig sensor;
  rl::RewardConfig reward;
  double nearby_window_m = 120.0;
};

/// Runs one episode under `policy`, recording every step.
EpisodeTrace RecordEpisode(decision::Policy& policy,
                           const TraceConfig& config, uint64_t seed);

/// Writes the trace as CSV (one row per step; nearby vehicles omitted).
void WriteTraceCsv(const EpisodeTrace& trace, std::ostream& os);

/// Renders one step as an ASCII top-down road strip centered on the ego
/// (`E`; conventional vehicles `o`), one text line per lane.
std::string RenderStep(const TraceStep& step, const RoadConfig& road,
                       double window_m = 60.0);

}  // namespace head::eval

#endif  // HEAD_EVAL_TRACE_H_
