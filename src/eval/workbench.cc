#include "eval/workbench.h"

#include <cstdlib>
#include <filesystem>

#include "common/logging.h"
#include "nn/kernels/simd.h"
#include "nn/serialize.h"
#include "obs/metrics.h"
#include "obs/profiler.h"

namespace head::eval {

namespace {

/// XNet+QNet of a PdqnAgent viewed as one module for checkpointing.
class AgentParams : public nn::Module {
 public:
  explicit AgentParams(rl::PdqnAgent& agent) : agent_(agent) {}
  std::vector<nn::Var> Params() const override {
    std::vector<nn::Var> p = agent_.x_net().Params();
    for (const nn::Var& v : agent_.q_net().Params()) p.push_back(v);
    return p;
  }

 private:
  rl::PdqnAgent& agent_;
};

std::string CachePath(const BenchProfile& profile, const std::string& key) {
  std::filesystem::create_directories(profile.cache_dir);
  return profile.cache_dir + "/" + key + "_" + profile.name + ".bin";
}

/// Dumps (and resets) the global metrics next to a just-trained cached
/// model, so a bench run's BENCH_*.json can be joined with the internal
/// latency/telemetry of the training that produced its weights.
void DumpTrainingMetrics(const BenchProfile& profile, const std::string& key) {
  const std::string path =
      profile.cache_dir + "/metrics_" + key + "_" + profile.name + ".json";
  if (obs::WriteMetricsJsonFile(path, /*reset=*/true)) {
    HEAD_LOG(Info) << "metrics snapshot written to " << path;
  } else {
    HEAD_LOG(Warning) << "failed to write metrics snapshot to " << path;
  }
}

/// Profiles one TrainOrLoad* training region when HEAD_PROFILE_OUT names a
/// directory: the op profiler runs across the wrapped training and the
/// per-(op, shape) JSON lands next to the cached weights' metrics snapshot
/// as <dir>/profile_<key>_<profile>.json. Unset env ⇒ zero effect.
class ScopedTrainingProfile {
 public:
  ScopedTrainingProfile(const BenchProfile& profile, const std::string& key) {
    const char* dir = std::getenv("HEAD_PROFILE_OUT");
    if (dir == nullptr || dir[0] == '\0') return;
    path_ = std::string(dir) + "/profile_" + key + "_" + profile.name +
            ".json";
    std::filesystem::create_directories(dir);
    nn::kernels::CalibrateProfilerRoofline();
    obs::StartProfiling();
  }
  ~ScopedTrainingProfile() {
    if (path_.empty()) return;
    obs::StopProfiling();
    if (obs::WriteProfileJsonFile(path_)) {
      HEAD_LOG(Info) << "op profile written to " << path_;
    } else {
      HEAD_LOG(Warning) << "failed to write op profile to " << path_;
    }
  }
  ScopedTrainingProfile(const ScopedTrainingProfile&) = delete;
  ScopedTrainingProfile& operator=(const ScopedTrainingProfile&) = delete;

 private:
  std::string path_;
};

}  // namespace

BenchProfile BenchProfile::Fast() {
  BenchProfile p;
  p.name = "fast";
  p.real.episodes = 3;
  p.real.max_steps_per_episode = 220;
  p.pred_train.epochs = 10;
  p.pred_train.batch_size = 64;

  p.rl_sim.road.length_m = 800.0;
  p.rl_sim.spawn.back_margin_m = 250.0;
  p.rl_sim.spawn.front_margin_m = 250.0;
  p.rl_sim.max_steps = 1200;

  p.rl_train.episodes = 600;
  p.rl_train.epsilon_end = 0.02;
  p.rl_train.epsilon_decay_fraction = 0.5;
  p.rl_train.verbose = false;

  p.pdqn.batch_size = 32;
  p.pdqn.update_every = 2;
  p.pdqn.warmup_transitions = 300;

  p.test_episodes = 20;
  return p;
}

BenchProfile BenchProfile::Paper() {
  BenchProfile p;
  p.name = "paper";
  p.real.episodes = 20;
  p.real.max_steps_per_episode = 400;
  p.pred_train.epochs = 15;

  p.rl_sim.road.length_m = 3000.0;
  p.rl_train.episodes = 4000;

  p.pdqn.batch_size = 64;
  p.pdqn.update_every = 1;
  p.pdqn.warmup_transitions = 1000;

  p.test_episodes = 500;
  return p;
}

BenchProfile BenchProfile::FromEnv() {
  const char* env = std::getenv("HEAD_BENCH_PROFILE");
  if (env != nullptr && std::string(env) == "paper") return Paper();
  return Fast();
}

core::HeadConfig MakeHeadConfig(const BenchProfile& profile,
                                const core::HeadVariant& variant) {
  core::HeadConfig config;
  config.road = profile.rl_sim.road;
  config.pdqn = profile.pdqn;
  config.pdqn.a_max = config.road.a_max_mps2;
  config.variant = variant;
  return config;
}

data::RealDataset BuildRealDataset(const BenchProfile& profile) {
  return data::GenerateRealDataset(profile.real);
}

parallel::EnvPool MakeEnvPool(
    const BenchProfile& profile, const core::HeadVariant& variant,
    const std::shared_ptr<perception::LstGat>& predictor, int num_envs) {
  const core::HeadConfig head = MakeHeadConfig(profile, variant);
  const rl::EnvConfig env_config = head.MakeEnvConfig(profile.rl_sim);
  perception::LstGat* pred =
      variant.use_lst_gat ? predictor.get() : nullptr;
  const int k = num_envs > 0 ? num_envs : profile.rollout_envs;
  return parallel::EnvPool(k, [&](int) {
    return std::make_unique<rl::DrivingEnv>(env_config, pred, profile.seed);
  });
}

std::shared_ptr<perception::LstGat> TrainOrLoadLstGat(
    const BenchProfile& profile, bool use_cache) {
  Rng rng(profile.seed);
  auto model =
      std::make_shared<perception::LstGat>(perception::LstGatConfig(), rng);
  const std::string path = CachePath(profile, "lstgat");
  if (use_cache && nn::LoadParamsFromFile(*model, path)) {
    HEAD_LOG(Info) << "LST-GAT: loaded cached weights from " << path;
    return model;
  }
  HEAD_LOG(Info) << "LST-GAT: training on the REAL surrogate ("
                 << profile.name << " profile)";
  ScopedTrainingProfile prof(profile, "lstgat");
  const data::RealDataset dataset = BuildRealDataset(profile);
  perception::TrainPredictor(*model, dataset.train, profile.pred_train);
  nn::SaveParamsToFile(*model, path);
  DumpTrainingMetrics(profile, "lstgat");
  return model;
}

std::shared_ptr<rl::PdqnAgent> TrainOrLoadHeadPolicy(
    const BenchProfile& profile, const core::HeadVariant& variant,
    std::shared_ptr<perception::LstGat> predictor,
    rl::RlTrainResult* train_result, bool use_cache) {
  const core::HeadConfig head = MakeHeadConfig(profile, variant);
  Rng rng(profile.seed + 17);
  std::shared_ptr<rl::PdqnAgent> agent =
      variant.use_bp_dqn ? rl::MakeBpDqnAgent(head.pdqn, rng)
                         : rl::MakePDqnAgent(head.pdqn, rng);

  std::string key = std::string("policy_") + variant.Name();
  for (char& c : key) {
    if (c == '/' || c == '-') c = '_';
  }
  const std::string path = CachePath(profile, key);
  AgentParams params(*agent);
  if (train_result == nullptr && use_cache &&
      nn::LoadParamsFromFile(params, path)) {
    agent->SyncTargets();
    HEAD_LOG(Info) << variant.Name() << ": loaded cached weights from "
                   << path;
    return agent;
  }

  HEAD_LOG(Info) << variant.Name() << ": training ("
                 << profile.rl_train.episodes << " episodes, "
                 << profile.name << " profile, K=" << profile.rollout_envs
                 << " rollout envs)";
  ScopedTrainingProfile prof(profile, key);
  rl::RlTrainConfig train = profile.rl_train;
  train.seed = profile.seed + 29;
  rl::RlTrainResult result;
  if (profile.rollout_envs > 1) {
    parallel::EnvPool envs = MakeEnvPool(profile, variant, predictor);
    result = rl::TrainAgent(*agent, envs, train);
  } else {
    rl::DrivingEnv env(head.MakeEnvConfig(profile.rl_sim),
                       variant.use_lst_gat ? predictor.get() : nullptr,
                       profile.seed);
    result = rl::TrainAgent(*agent, env, train);
  }
  if (train_result != nullptr) *train_result = result;
  nn::SaveParamsToFile(params, path);
  DumpTrainingMetrics(profile, key);
  return agent;
}

std::shared_ptr<rl::DrlScAgent> TrainOrLoadDrlSc(
    const BenchProfile& profile, std::shared_ptr<perception::LstGat> predictor,
    bool use_cache) {
  (void)predictor;  // DRL-SC perceives without future-state augmentation
  rl::DrlScConfig config;
  config.road = profile.rl_sim.road;
  config.batch_size = profile.pdqn.batch_size;
  config.update_every = profile.pdqn.update_every;
  config.warmup_transitions = profile.pdqn.warmup_transitions;
  Rng rng(profile.seed + 23);
  auto agent = std::make_shared<rl::DrlScAgent>(config, rng);

  const std::string path = CachePath(profile, "policy_DRL_SC");
  if (use_cache && nn::LoadParamsFromFile(agent->q_mlp(), path)) {
    agent->SyncTargets();
    HEAD_LOG(Info) << "DRL-SC: loaded cached weights from " << path;
    return agent;
  }
  HEAD_LOG(Info) << "DRL-SC: training (" << profile.rl_train.episodes
                 << " episodes, " << profile.name << " profile, K="
                 << profile.rollout_envs << " rollout envs)";
  ScopedTrainingProfile prof(profile, "policy_DRL_SC");
  core::HeadVariant variant = core::HeadVariant::WithoutLstGat();
  rl::RlTrainConfig train = profile.rl_train;
  train.seed = profile.seed + 31;
  if (profile.rollout_envs > 1) {
    parallel::EnvPool envs = MakeEnvPool(profile, variant, nullptr);
    rl::TrainAgent(*agent, envs, train);
  } else {
    rl::EnvConfig env_config =
        MakeHeadConfig(profile, variant).MakeEnvConfig(profile.rl_sim);
    rl::DrivingEnv env(env_config, nullptr, profile.seed);
    rl::TrainAgent(*agent, env, train);
  }
  nn::SaveParamsToFile(agent->q_mlp(), path);
  DumpTrainingMetrics(profile, "policy_DRL_SC");
  return agent;
}

std::unique_ptr<core::HeadAgent> MakePolicy(
    const BenchProfile& profile, const core::HeadVariant& variant,
    std::shared_ptr<perception::LstGat> predictor,
    std::shared_ptr<rl::PamdpAgent> agent) {
  const core::HeadConfig config = MakeHeadConfig(profile, variant);
  return std::make_unique<core::HeadAgent>(config, std::move(predictor),
                                           std::move(agent));
}

}  // namespace head::eval
