// Macroscopic and microscopic evaluation metrics of Sec. V-B:
//   AvgDT-A  — mean ego end-to-end driving time
//   AvgDT-C  — mean driving time of conventional vehicles that traveled
//              within 100 m behind the ego (normalized to the road length)
//   Avg#-CA  — mean count of rear-vehicle decelerations > 0.5 m/s per step
//   MinTTC-A — mean over episodes of the minimum ego time-to-collision
//   AvgV-A   — mean ego velocity
//   AvgJ-A   — mean |Δa| between consecutive steps (jerk proxy)
//   AvgD-CA  — mean per-step deceleration of the rear conventional vehicle
#ifndef HEAD_EVAL_METRICS_H_
#define HEAD_EVAL_METRICS_H_

#include <vector>

#include "common/types.h"

namespace head::eval {

/// Raw per-episode measurements gathered by the episode runner.
struct EpisodeRecord {
  bool completed = false;  ///< reached the destination
  bool collided = false;
  double driving_time_s = 0.0;
  double mean_v_mps = 0.0;
  double mean_jerk_mps2 = 0.0;   ///< mean |a_t − a_{t−1}|
  double min_ttc_s = 0.0;        ///< minimum valid TTC; <0 if never valid
  long rear_decel_events = 0;    ///< #-CA
  double mean_rear_decel_mps = 0.0;  ///< D-CA (mean over decelerating steps)
  double mean_follower_dt_s = 0.0;   ///< DT-C (mean over qualified followers)
  int followers = 0;
};

/// The seven columns of Tables I/II.
struct AggregateMetrics {
  double avg_dt_a_s = 0.0;
  double avg_dt_c_s = 0.0;
  double avg_num_ca = 0.0;
  double min_ttc_a_s = 0.0;
  double avg_v_a_mps = 0.0;
  double avg_j_a_mps2 = 0.0;
  double avg_d_ca_mps = 0.0;
  int episodes = 0;
  int completed = 0;
  int collisions = 0;

  static AggregateMetrics FromRecords(const std::vector<EpisodeRecord>& r);
};

}  // namespace head::eval

#endif  // HEAD_EVAL_METRICS_H_
