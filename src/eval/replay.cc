#include "eval/replay.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <vector>

#include "decision/acc_lc.h"
#include "decision/idm_lc.h"
#include "decision/tp_bts.h"
#include "eval/episode_runner.h"
#include "eval/workbench.h"
#include "sim/scenario.h"

namespace head::eval {

namespace {

/// Deterministic worst-case driver: full throttle, never changes lane. Rams
/// whatever leads its lane, so a collision dump is guaranteed within a few
/// hundred steps on any populated scenario.
class CrashPolicy : public decision::Policy {
 public:
  explicit CrashPolicy(const RoadConfig& road) : road_(road) {}
  std::string name() const override { return "crash"; }
  Maneuver Decide(const decision::EgoView&) override {
    return Maneuver{LaneChange::kKeep, road_.a_max_mps2};
  }

 private:
  RoadConfig road_;
};

bool BitsEqual(double a, double b) {
  uint64_t ua = 0;
  uint64_t ub = 0;
  std::memcpy(&ua, &a, sizeof(ua));
  std::memcpy(&ub, &b, sizeof(ub));
  return ua == ub;
}

std::string Describe(const char* field, double recorded, double replayed) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s: recorded %.17g, replayed %.17g", field,
                recorded, replayed);
  return buf;
}

/// Compares the replay-parity contract fields of two records bitwise.
/// Returns true on match; otherwise fills `*detail`.
bool RecordsMatch(const obs::StepRecord& rec, const obs::StepRecord& rep,
                  std::string* detail) {
  if (rec.ego_lane != rep.ego_lane) {
    *detail = Describe("ego_lane", rec.ego_lane, rep.ego_lane);
    return false;
  }
  if (!BitsEqual(rec.ego_lon_m, rep.ego_lon_m)) {
    *detail = Describe("ego_lon_m", rec.ego_lon_m, rep.ego_lon_m);
    return false;
  }
  if (!BitsEqual(rec.ego_v_mps, rep.ego_v_mps)) {
    *detail = Describe("ego_v_mps", rec.ego_v_mps, rep.ego_v_mps);
    return false;
  }
  if (!BitsEqual(rec.time_s, rep.time_s)) {
    *detail = Describe("time_s", rec.time_s, rep.time_s);
    return false;
  }
  if (rec.lane_change != rep.lane_change) {
    *detail = Describe("lane_change", rec.lane_change, rep.lane_change);
    return false;
  }
  if (!BitsEqual(rec.accel_mps2, rep.accel_mps2)) {
    *detail = Describe("accel_mps2", rec.accel_mps2, rep.accel_mps2);
    return false;
  }
  if (rec.behavior != rep.behavior) {
    *detail = Describe("behavior", rec.behavior, rep.behavior);
    return false;
  }
  if (rec.rng_cursor != rep.rng_cursor) {
    *detail = Describe("rng_cursor", static_cast<double>(rec.rng_cursor),
                       static_cast<double>(rep.rng_cursor));
    return false;
  }
  if (rec.has_reward && rep.has_reward &&
      !BitsEqual(rec.r_total, rep.r_total)) {
    *detail = Describe("r_total", rec.r_total, rep.r_total);
    return false;
  }
  if (rec.end != rep.end) {
    *detail = Describe("end", static_cast<double>(rec.end),
                       static_cast<double>(rep.end));
    return false;
  }
  return true;
}

/// Saves the global recorder switch + config and restores them on scope
/// exit, so a replay never perturbs a caller's recording session.
class RecorderStateGuard {
 public:
  RecorderStateGuard()
      : was_enabled_(obs::RecordingEnabled()),
        config_(obs::GetRecorderConfig()) {}
  ~RecorderStateGuard() {
    obs::ConfigureRecorder(config_);
    obs::SetRecordingEnabled(was_enabled_);
  }

 private:
  bool was_enabled_;
  obs::RecorderConfig config_;
};

}  // namespace

std::unique_ptr<decision::Policy> MakeNamedPolicy(const std::string& name,
                                                  const RoadConfig& road) {
  // Dumps record Policy::name() (the display name); accept those as
  // aliases so a manifest replays without manual translation.
  if (name == "idm" || name == "IDM-LC") {
    return std::make_unique<decision::IdmLcPolicy>(
        decision::RuleBasedConfig::ForRoad(road));
  }
  if (name == "acc" || name == "ACC-LC") {
    return std::make_unique<decision::AccLcPolicy>(
        decision::RuleBasedConfig::ForRoad(road));
  }
  if (name == "tpbts" || name == "TP-BTS") {
    decision::TpBtsConfig config;
    config.road = road;
    return std::make_unique<decision::TpBtsPolicy>(config);
  }
  if (name == "crash") {
    return std::make_unique<CrashPolicy>(road);
  }
  if (name == "head" || name == "HEAD") {
    BenchProfile profile = BenchProfile::FromEnv();
    profile.rl_sim.road = road;
    auto predictor = TrainOrLoadLstGat(profile);
    auto agent = TrainOrLoadHeadPolicy(profile, core::HeadVariant::Full(),
                                       predictor);
    return MakePolicy(profile, core::HeadVariant::Full(), predictor, agent);
  }
  return nullptr;
}

ReplayResult ReplayAndVerify(const obs::FlightDump& dump) {
  ReplayResult result;
  if (dump.records.empty()) {
    result.error = "dump contains no records";
    return result;
  }

  const std::vector<std::string> names = sim::ScenarioNames();
  if (std::find(names.begin(), names.end(), dump.ctx.scenario) ==
      names.end()) {
    result.error = "unknown scenario \"" + dump.ctx.scenario +
                   "\" (custom configs are not replayable by name)";
    return result;
  }
  const sim::SimConfig scenario = sim::ScenarioByName(dump.ctx.scenario);

  std::unique_ptr<decision::Policy> policy =
      MakeNamedPolicy(dump.ctx.policy, scenario.road);
  if (policy == nullptr) {
    result.error = "unknown policy \"" + dump.ctx.policy + "\"";
    return result;
  }

  // Re-record the whole episode into memory. The ring must hold every step
  // up to the last recorded one — the dump may only be the tail of a long
  // episode, and alignment is by step index.
  int32_t max_step = 0;
  for (const obs::StepRecord& r : dump.records) {
    max_step = std::max(max_step, r.step);
  }
  RecorderStateGuard guard;
  obs::RecorderConfig replay_cfg;
  replay_cfg.capacity = max_step + 8;
  replay_cfg.dump_dir.clear();  // in-memory only; never writes files
  replay_cfg.dump_on_collision = false;
  replay_cfg.dump_on_timeout = false;
  obs::ConfigureRecorder(replay_cfg);
  obs::SetRecordingEnabled(true);

  RunnerConfig runner;
  runner.sim = scenario;
  runner.scenario_name = dump.ctx.scenario;
  RunEpisode(*policy, runner, dump.ctx.seed, dump.ctx.episode_index);

  const std::vector<obs::StepRecord> replayed = obs::SnapshotRecords();
  result.steps_replayed = static_cast<int>(replayed.size());
  if (!replayed.empty()) result.replay_end = replayed.back().end;

  std::unordered_map<int32_t, const obs::StepRecord*> by_step;
  by_step.reserve(replayed.size());
  for (const obs::StepRecord& r : replayed) by_step[r.step] = &r;

  for (const obs::StepRecord& rec : dump.records) {
    auto it = by_step.find(rec.step);
    if (it == by_step.end()) {
      result.first_mismatch_step = rec.step;
      result.error = "replay ended before recorded step " +
                     std::to_string(rec.step) + " (replayed " +
                     std::to_string(result.steps_replayed) + " steps)";
      return result;
    }
    std::string detail;
    if (!RecordsMatch(rec, *it->second, &detail)) {
      result.first_mismatch_step = rec.step;
      result.error = "step " + std::to_string(rec.step) + " " + detail;
      return result;
    }
    ++result.records_compared;
  }

  result.ok = true;
  return result;
}

ReplayResult ReplayFile(const std::string& manifest_path) {
  obs::FlightDump dump;
  std::string error;
  if (!obs::LoadFlightDump(manifest_path, &dump, &error)) {
    ReplayResult result;
    result.error = error;
    return result;
  }
  return ReplayAndVerify(dump);
}

}  // namespace head::eval
