// Fixed-width text tables for the benchmark output — each bench prints the
// same rows its paper table reports.
#ifndef HEAD_EVAL_TABLE_H_
#define HEAD_EVAL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace head::eval {

/// Formats `v` with `precision` decimal places.
std::string FormatDouble(double v, int precision = 2);

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os, const std::string& title = "") const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace head::eval

#endif  // HEAD_EVAL_TABLE_H_
