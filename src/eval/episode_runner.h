// Runs a decision::Policy through test episodes in the simulator, feeding it
// only sensor observations, and gathers the Table I/II metrics from the
// simulator's ground truth.
#ifndef HEAD_EVAL_EPISODE_RUNNER_H_
#define HEAD_EVAL_EPISODE_RUNNER_H_

#include "decision/policy.h"
#include "eval/metrics.h"
#include "sensor/sensor_model.h"
#include "sim/simulation.h"

namespace head::eval {

struct RunnerConfig {
  sim::SimConfig sim;
  sensor::SensorConfig sensor;
  int episodes = 20;
  uint64_t seed_base = 1000;
  /// A conventional vehicle qualifies as "follower" for AvgDT-C once it is
  /// within this many meters behind the ego.
  double follower_window_m = 100.0;
  /// Followers need at least this many on-road steps for a stable DT-C.
  int min_follower_steps = 20;
  /// Scenario name stamped into flight-recorder episode contexts so a dump
  /// can be replayed (sim::ScenarioByName key; "" = custom config, not
  /// replayable by name). Only used while obs::RecordingEnabled().
  std::string scenario_name;
};

/// Runs one episode from `seed` and returns its record. `episode_index` is
/// recorded in flight-recorder dumps (display only; replay uses the seed).
EpisodeRecord RunEpisode(decision::Policy& policy, const RunnerConfig& config,
                         uint64_t seed, int episode_index = 0);

/// Runs config.episodes episodes (seed_base + k) and aggregates.
AggregateMetrics RunPolicy(decision::Policy& policy,
                           const RunnerConfig& config);

}  // namespace head::eval

#endif  // HEAD_EVAL_EPISODE_RUNNER_H_
