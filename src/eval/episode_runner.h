// Runs a decision::Policy through test episodes in the simulator, feeding it
// only sensor observations, and gathers the Table I/II metrics from the
// simulator's ground truth.
#ifndef HEAD_EVAL_EPISODE_RUNNER_H_
#define HEAD_EVAL_EPISODE_RUNNER_H_

#include "decision/policy.h"
#include "eval/metrics.h"
#include "sensor/sensor_model.h"
#include "sim/simulation.h"

namespace head::eval {

struct RunnerConfig {
  sim::SimConfig sim;
  sensor::SensorConfig sensor;
  int episodes = 20;
  uint64_t seed_base = 1000;
  /// A conventional vehicle qualifies as "follower" for AvgDT-C once it is
  /// within this many meters behind the ego.
  double follower_window_m = 100.0;
  /// Followers need at least this many on-road steps for a stable DT-C.
  int min_follower_steps = 20;
};

/// Runs one episode from `seed` and returns its record.
EpisodeRecord RunEpisode(decision::Policy& policy, const RunnerConfig& config,
                         uint64_t seed);

/// Runs config.episodes episodes (seed_base + k) and aggregates.
AggregateMetrics RunPolicy(decision::Policy& policy,
                           const RunnerConfig& config);

}  // namespace head::eval

#endif  // HEAD_EVAL_EPISODE_RUNNER_H_
