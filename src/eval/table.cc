#include "eval/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "common/check.h"

namespace head::eval {

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  HEAD_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os, const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  size_t total = 1;
  for (size_t w : widths) total += w + 3;
  const std::string rule(total, '-');

  if (!title.empty()) os << title << "\n";
  os << rule << "\n|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << " " << headers_[c]
       << std::string(widths[c] - headers_[c].size(), ' ') << " |";
  }
  os << "\n" << rule << "\n";
  for (const auto& row : rows_) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(widths[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  }
  os << rule << "\n";
}

}  // namespace head::eval
