#include "eval/metrics.h"

namespace head::eval {

AggregateMetrics AggregateMetrics::FromRecords(
    const std::vector<EpisodeRecord>& records) {
  AggregateMetrics agg;
  agg.episodes = static_cast<int>(records.size());
  double dt_a = 0.0;
  double dt_c = 0.0;
  int dt_c_count = 0;
  double num_ca = 0.0;
  double ttc = 0.0;
  int ttc_count = 0;
  double v = 0.0;
  double jerk = 0.0;
  double d_ca = 0.0;
  int d_ca_count = 0;
  for (const EpisodeRecord& r : records) {
    if (r.completed) {
      ++agg.completed;
      dt_a += r.driving_time_s;
    }
    if (r.collided) ++agg.collisions;
    if (r.followers > 0) {
      dt_c += r.mean_follower_dt_s;
      ++dt_c_count;
    }
    num_ca += static_cast<double>(r.rear_decel_events);
    if (r.min_ttc_s >= 0.0) {
      ttc += r.min_ttc_s;
      ++ttc_count;
    }
    v += r.mean_v_mps;
    jerk += r.mean_jerk_mps2;
    if (r.mean_rear_decel_mps >= 0.0) {
      d_ca += r.mean_rear_decel_mps;
      ++d_ca_count;
    }
  }
  const int n = agg.episodes > 0 ? agg.episodes : 1;
  agg.avg_dt_a_s = agg.completed > 0 ? dt_a / agg.completed : 0.0;
  agg.avg_dt_c_s = dt_c_count > 0 ? dt_c / dt_c_count : 0.0;
  agg.avg_num_ca = num_ca / n;
  agg.min_ttc_a_s = ttc_count > 0 ? ttc / ttc_count : 0.0;
  agg.avg_v_a_mps = v / n;
  agg.avg_j_a_mps2 = jerk / n;
  agg.avg_d_ca_mps = d_ca_count > 0 ? d_ca / d_ca_count : 0.0;
  return agg;
}

}  // namespace head::eval
