#include "eval/episode_runner.h"

#include <cmath>
#include <limits>
#include <optional>
#include <unordered_map>

#include "obs/recorder.h"
#include "obs/span.h"
#include "rl/reward.h"

namespace head::eval {

namespace {

struct FollowerStat {
  double sum_v = 0.0;
  long steps = 0;
  bool qualified = false;
};

}  // namespace

EpisodeRecord RunEpisode(decision::Policy& policy, const RunnerConfig& config,
                         uint64_t seed, int episode_index) {
  // Flight recorder: install the episode context and (only while recording)
  // a reward function so dumped records carry the Eq. 28 decomposition the
  // training env would have seen. Baseline policies don't compute rewards
  // themselves, so this is the eval path's only reward source.
  std::optional<rl::RewardFunction> reward_fn;
  if (obs::RecordingEnabled()) {
    obs::EpisodeContext ctx;
    ctx.scenario = config.scenario_name;
    ctx.policy = policy.name();
    ctx.seed = seed;
    ctx.episode_index = episode_index;
    obs::BeginEpisode(ctx);
    reward_fn.emplace(rl::RewardConfig{}, config.sim.road);
  }

  sim::Simulation sim(config.sim, seed);
  policy.OnEpisodeStart();

  EpisodeRecord rec;
  double prev_accel = 0.0;
  double sum_v = 0.0;
  double sum_jerk = 0.0;
  long steps = 0;
  double min_ttc = std::numeric_limits<double>::infinity();
  double rear_decel_sum = 0.0;
  long rear_decel_steps = 0;
  std::unordered_map<VehicleId, FollowerStat> followers;

  while (sim.status() == sim::EpisodeStatus::kRunning) {
    HEAD_SPAN("episode.step");
    const sim::RoadView before = sim.View();
    const VehicleState ego_before = sim.ego_state();

    // Rear conventional vehicle (for #-CA / D-CA) before the step.
    const sim::VehicleSnapshot* rear =
        before.Follower(ego_before.lane, ego_before.lon_m, kEgoVehicleId);
    const VehicleId rear_id = rear != nullptr ? rear->id : kInvalidVehicleId;
    const double rear_v = rear != nullptr ? rear->state.v_mps : 0.0;

    // The policy only sees the sensor output.
    decision::EgoView view;
    view.ego = ego_before;
    view.observed = sensor::Observe(sim.GlobalSnapshot(), ego_before,
                                    config.sensor, config.sim.road);
    view.prev_accel_mps2 = prev_accel;
    const Maneuver maneuver = policy.Decide(view);

    const sim::EpisodeStatus status = sim.Step(maneuver);
    ++steps;

    const VehicleState ego_after = sim.ego_state();

    if (reward_fn.has_value()) {
      // The scratch already holds perception + decision fills from
      // policy.Decide and the ego outcome from sim.Step; Compute adds the
      // reward decomposition, then the record is sealed.
      rl::RewardObservation robs;
      robs.collision = status == sim::EpisodeStatus::kCollision;
      robs.ego_next = ego_after;
      robs.accel_now_mps2 = maneuver.accel_mps2;
      robs.accel_prev_mps2 = prev_accel;
      if (config.sim.road.IsValidLane(ego_after.lane)) {
        // The view must outlive the Leader() pointer into it.
        const sim::RoadView after = sim.View();
        const sim::VehicleSnapshot* front =
            after.Leader(ego_after.lane, ego_after.lon_m, kEgoVehicleId);
        if (front != nullptr) robs.front_next = front->state;
      }
      if (rear_id != kInvalidVehicleId) {
        robs.rear_v_now_mps = rear_v;
        for (const sim::Vehicle& v : sim.conventional_vehicles()) {
          if (v.id == rear_id) {
            robs.rear_v_next_mps = v.state.v_mps;
            break;
          }
        }
      }
      reward_fn->Compute(robs);
      obs::CommitStepRecord();
    }

    sum_v += ego_after.v_mps;
    sum_jerk += std::fabs(maneuver.accel_mps2 - prev_accel);
    prev_accel = maneuver.accel_mps2;

    // TTC with the front vehicle after the step.
    if (config.sim.road.IsValidLane(ego_after.lane)) {
      const sim::RoadView after = sim.View();
      const sim::VehicleSnapshot* front =
          after.Leader(ego_after.lane, ego_after.lon_m, kEgoVehicleId);
      if (front != nullptr) {
        const std::optional<double> ttc =
            rl::TimeToCollision(front->state, ego_after);
        if (ttc.has_value()) min_ttc = std::min(min_ttc, *ttc);
      }
    }

    // Rear-vehicle impact.
    if (rear_id != kInvalidVehicleId) {
      for (const sim::Vehicle& v : sim.conventional_vehicles()) {
        if (v.id != rear_id) continue;
        const double drop = rear_v - v.state.v_mps;
        if (drop > 0.5) ++rec.rear_decel_events;
        if (drop > 0.0) {
          rear_decel_sum += drop;
          ++rear_decel_steps;
        }
        break;
      }
    }

    // Follower statistics for AvgDT-C.
    for (const sim::Vehicle& v : sim.conventional_vehicles()) {
      const double lon = v.state.lon_m;
      if (lon < 0.0 || lon > config.sim.road.length_m) continue;
      FollowerStat& stat = followers[v.id];
      stat.sum_v += v.state.v_mps;
      ++stat.steps;
      const double d = lon - ego_after.lon_m;
      if (d < 0.0 && d > -config.follower_window_m) stat.qualified = true;
    }
  }

  if (obs::RecordingEnabled()) {
    obs::EndEpisode(sim::ToEpisodeEnd(sim.status()));
  }

  rec.completed = sim.status() == sim::EpisodeStatus::kReachedDestination;
  rec.collided = sim.status() == sim::EpisodeStatus::kCollision;
  rec.driving_time_s = sim.time_s();
  rec.mean_v_mps = steps > 0 ? sum_v / steps : 0.0;
  rec.mean_jerk_mps2 = steps > 0 ? sum_jerk / steps : 0.0;
  rec.min_ttc_s = std::isfinite(min_ttc) ? min_ttc : -1.0;
  rec.mean_rear_decel_mps =
      rear_decel_steps > 0 ? rear_decel_sum / rear_decel_steps : -1.0;

  double dt_c_sum = 0.0;
  for (const auto& [id, stat] : followers) {
    if (!stat.qualified || stat.steps < config.min_follower_steps) continue;
    const double mean_v = stat.sum_v / stat.steps;
    if (mean_v < 0.5) continue;
    dt_c_sum += config.sim.road.length_m / mean_v;
    ++rec.followers;
  }
  rec.mean_follower_dt_s = rec.followers > 0 ? dt_c_sum / rec.followers : 0.0;
  return rec;
}

AggregateMetrics RunPolicy(decision::Policy& policy,
                           const RunnerConfig& config) {
  std::vector<EpisodeRecord> records;
  records.reserve(config.episodes);
  for (int ep = 0; ep < config.episodes; ++ep) {
    records.push_back(RunEpisode(policy, config, config.seed_base + ep, ep));
  }
  return AggregateMetrics::FromRecords(records);
}

}  // namespace head::eval
