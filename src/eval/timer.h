// Wall-clock helpers for the efficiency metrics (TCT, AvgIT).
#ifndef HEAD_EVAL_TIMER_H_
#define HEAD_EVAL_TIMER_H_

#include <chrono>
#include <functional>

namespace head::eval {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}

  void Restart() { start_ = std::chrono::steady_clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double Millis() const { return Seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Mean wall-clock milliseconds of `fn` over `iterations` calls (after
/// `warmup` unmeasured calls).
double MeasureAvgMillis(const std::function<void()>& fn, int iterations,
                        int warmup = 3);

}  // namespace head::eval

#endif  // HEAD_EVAL_TIMER_H_
