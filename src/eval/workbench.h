// Shared experiment pipeline used by the bench binaries: benchmark profiles
// (fast laptop-scale defaults vs. HEAD_BENCH_PROFILE=paper for paper-scale
// runs), component training, and on-disk weight caching so the seven bench
// binaries can share trained models instead of retraining per table.
#ifndef HEAD_EVAL_WORKBENCH_H_
#define HEAD_EVAL_WORKBENCH_H_

#include <memory>
#include <string>

#include "core/head_agent.h"
#include "data/real_dataset.h"
#include "parallel/env_pool.h"
#include "perception/lst_gat.h"
#include "perception/trainer.h"
#include "rl/drl_sc.h"
#include "rl/trainer.h"

namespace head::eval {

struct BenchProfile {
  std::string name = "fast";
  data::RealDatasetConfig real = data::RealDatasetConfig::Default();
  sim::SimConfig rl_sim;  ///< env for Tables I/II/V/VI/VII
  perception::PredictionTrainConfig pred_train;
  rl::RlTrainConfig rl_train;
  rl::PdqnConfig pdqn;
  int test_episodes = 20;
  /// Environments per EnvPool (collection-round size K). Fixed per profile —
  /// not derived from the thread count — so trained policies and evaluation
  /// statistics are reproducible on any machine; threads only change speed.
  int rollout_envs = 4;
  uint64_t seed = 42;
  std::string cache_dir = ".head_cache";

  static BenchProfile Fast();
  static BenchProfile Paper();
  /// Selects by $HEAD_BENCH_PROFILE ("paper" or "fast"; default fast).
  static BenchProfile FromEnv();
};

/// HEAD configuration consistent with a profile and variant.
core::HeadConfig MakeHeadConfig(const BenchProfile& profile,
                                const core::HeadVariant& variant);

/// Generates (or regenerates) the REAL-surrogate dataset for the profile.
data::RealDataset BuildRealDataset(const BenchProfile& profile);

/// Trains LST-GAT on the REAL surrogate, or loads cached weights.
std::shared_ptr<perception::LstGat> TrainOrLoadLstGat(
    const BenchProfile& profile, bool use_cache = true);

/// Trains (or loads) the maneuver-decision agent for a HEAD variant against
/// the profile's environment. When `train_result` is non-null the agent is
/// always trained (TCT measurement) and the result is stored there.
std::shared_ptr<rl::PdqnAgent> TrainOrLoadHeadPolicy(
    const BenchProfile& profile, const core::HeadVariant& variant,
    std::shared_ptr<perception::LstGat> predictor,
    rl::RlTrainResult* train_result = nullptr, bool use_cache = true);

/// Trains (or loads) the DRL-SC baseline (no prediction in its state).
std::shared_ptr<rl::DrlScAgent> TrainOrLoadDrlSc(
    const BenchProfile& profile, std::shared_ptr<perception::LstGat> predictor,
    bool use_cache = true);

/// K identical environments (K = `num_envs`, or profile.rollout_envs when 0)
/// for pooled rollouts and evaluation on the global thread pool. All envs
/// share `predictor` (read-only during no-grad inference), so the pool must
/// not outlive it.
parallel::EnvPool MakeEnvPool(const BenchProfile& profile,
                              const core::HeadVariant& variant,
                              const std::shared_ptr<perception::LstGat>&
                                  predictor,
                              int num_envs = 0);

/// Wraps a trained agent as an evaluation policy.
std::unique_ptr<core::HeadAgent> MakePolicy(
    const BenchProfile& profile, const core::HeadVariant& variant,
    std::shared_ptr<perception::LstGat> predictor,
    std::shared_ptr<rl::PamdpAgent> agent);

}  // namespace head::eval

#endif  // HEAD_EVAL_WORKBENCH_H_
