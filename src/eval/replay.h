// Deterministic replay of flight-recorder dumps: re-runs the recorded
// episode from its manifest (scenario + policy + seed) through
// eval::RunEpisode and verifies bitwise agreement with the recorded ego
// trajectory and actions. Episodes are pure functions of (policy, scenario
// config, seed) — greedy decisions draw no randomness and doubles
// round-trip through the dump's %.17g serialization — so any divergence is
// a real behavior change, which makes every dump double as a regression
// test case (`head_cli replay <manifest>`).
#ifndef HEAD_EVAL_REPLAY_H_
#define HEAD_EVAL_REPLAY_H_

#include <memory>
#include <string>

#include "decision/policy.h"
#include "obs/recorder.h"

namespace head::eval {

/// Builds a named decision policy:
///   idm | acc | tpbts  — the rule-based baselines
///   crash              — deterministic full-throttle lane-keeper; rams the
///                        leading vehicle, guaranteeing a collision dump
///                        (recorder smoke tests / forced post-mortems)
///   head               — the full HEAD agent; trains or loads cached
///                        weights via the eval workbench (slow on a cold
///                        cache)
/// Returns nullptr for unknown names.
std::unique_ptr<decision::Policy> MakeNamedPolicy(const std::string& name,
                                                  const RoadConfig& road);

struct ReplayResult {
  bool ok = false;             ///< replay matched the dump bitwise
  int steps_replayed = 0;      ///< steps of the re-run episode
  int records_compared = 0;    ///< dump records checked against the re-run
  int first_mismatch_step = -1;
  obs::EpisodeEnd replay_end = obs::EpisodeEnd::kRunning;
  std::string error;           ///< human-readable mismatch / failure detail
};

/// Re-runs `dump`'s episode and compares, record by record (aligned on step
/// index — the dump may hold only the tail of a long episode), the ego
/// trajectory (lane, position, velocity), the applied maneuver (lane change,
/// acceleration), the reward decomposition, and the RNG cursor. All double
/// comparisons are bitwise. The global recorder state (enabled flag +
/// config) is saved and restored around the re-run; the replay records into
/// memory only (no dump files are produced).
ReplayResult ReplayAndVerify(const obs::FlightDump& dump);

/// LoadFlightDump + ReplayAndVerify.
ReplayResult ReplayFile(const std::string& manifest_path);

}  // namespace head::eval

#endif  // HEAD_EVAL_REPLAY_H_
