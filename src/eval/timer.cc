#include "eval/timer.h"

#include "common/check.h"

namespace head::eval {

double MeasureAvgMillis(const std::function<void()>& fn, int iterations,
                        int warmup) {
  HEAD_CHECK_GT(iterations, 0);
  for (int i = 0; i < warmup; ++i) fn();
  WallTimer timer;
  for (int i = 0; i < iterations; ++i) fn();
  return timer.Millis() / iterations;
}

}  // namespace head::eval
