// The Parameterized-Action MDP of Sec. IV-A: augmented states (current
// states h^t + predicted future states f̂^{t+1}, Eqs. 15–16), parameterized
// actions (discrete lane-change behavior with a continuous acceleration
// parameter, Eq. 17), and the common agent interface every RL method
// (BP-DQN, P-DQN, P-DDPG, P-QP, DRL-SC) implements.
#ifndef HEAD_RL_PAMDP_H_
#define HEAD_RL_PAMDP_H_

#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "nn/tensor.h"
#include "perception/predictor.h"

namespace head::rl {

/// Discrete behavior indices, matching the paper's {ll, lr, lk} ordering of
/// the network output heads.
inline constexpr int kNumBehaviors = 3;
inline constexpr int kBehaviorLeft = 0;
inline constexpr int kBehaviorRight = 1;
inline constexpr int kBehaviorKeep = 2;

LaneChange BehaviorToLaneChange(int b);
int LaneChangeToBehavior(LaneChange lc);

/// s⁺ = [h^t, f̂^{t+1}]: `h` is (7×4) — ego raw feature + six target
/// relative features (Eq. 15); `f` is (6×4) — predicted relative target
/// states + phantom flags (Eq. 16). Features carry the same scaling as the
/// perception graph.
struct AugmentedState {
  nn::Tensor h;
  nn::Tensor f;
};

inline constexpr int kStateHRows = 7;
inline constexpr int kStateFRows = 6;
inline constexpr int kStateCols = perception::kFeatureDim;
/// Flattened width of [h ‖ f] = 52, used by single-branch baselines.
inline constexpr int kFlatStateDim =
    (kStateHRows + kStateFRows) * kStateCols;

/// Builds s⁺ from the perception outputs. When `use_prediction` is false the
/// "future" block carries the current states instead (the HEAD-w/o-LST-GAT
/// ablation).
AugmentedState BuildAugmentedState(const perception::StGraph& graph,
                                   const perception::Prediction& prediction,
                                   const RoadConfig& road,
                                   const perception::FeatureScale& scale,
                                   bool use_prediction = true);

/// Flattens s⁺ into a (1×52) row for single-branch networks.
nn::Tensor FlattenState(const AugmentedState& s);

/// Flattens a minibatch of states into a (B×52) matrix, one row per state —
/// the input shape of the vectorized single-branch forward passes.
nn::Tensor FlattenStates(const std::vector<const AugmentedState*>& batch);

/// The action an agent chose, with the internals needed for replay.
struct AgentAction {
  Maneuver maneuver;
  int behavior = kBehaviorKeep;  ///< chosen discrete index
  /// Full action-parameter vector the agent emitted (layout agent-specific;
  /// P-DQN-family: the 3 accelerations; DRL-SC: unused).
  nn::Tensor params;
};

/// Common interface of all maneuver-decision learners.
class PamdpAgent {
 public:
  virtual ~PamdpAgent() = default;

  virtual std::string name() const = 0;

  /// Chooses an action; `epsilon` drives the agent-specific exploration
  /// (ε-greedy over behaviors + parameter noise). Pass 0 for greedy.
  virtual AgentAction Act(const AugmentedState& state, double epsilon,
                          Rng& rng) = 0;

  /// Stores a transition in the agent's replay memory.
  virtual void Remember(const AugmentedState& state, const AgentAction& action,
                        double reward, const AugmentedState& next_state,
                        bool terminal) = 0;

  /// One learning step (no-op until the replay memory warms up).
  virtual void Update(Rng& rng) = 0;

  /// Multiplies the current optimizer learning rates by `factor` (the
  /// paper trains with a *scheduled* learning rate). Default: no-op.
  virtual void ScaleLearningRate(double factor) { (void)factor; }
};

}  // namespace head::rl

#endif  // HEAD_RL_PAMDP_H_
