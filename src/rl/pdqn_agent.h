// Generic P-DQN-style learner (Xiong et al. [54]): a deterministic
// action-parameter network x(s;θx) plus an action-value network Q(s,x;θQ),
// trained with the losses of Eqs. (22)/(23), target networks with soft
// updates, and ε-greedy + Gaussian parameter-noise exploration.
//
// The same optimization drives three of the paper's methods — they differ
// only in network structure and update schedule:
//   * BP-DQN — branched networks (MakeBpDqnAgent)
//   * P-DQN  — single-branch networks (MakePDqnAgent)
//   * P-QP   — alternating optimization of θQ and θx without sharing
//              information within a phase (MakePQpAgent)
#ifndef HEAD_RL_PDQN_AGENT_H_
#define HEAD_RL_PDQN_AGENT_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "nn/optimizer.h"
#include "nn/plan.h"
#include "rl/nets.h"
#include "rl/replay_buffer.h"

namespace head::rl {

struct PdqnConfig {
  int hidden = 64;                 ///< D_φ* (paper Sec. V-A)
  double gamma = 0.9;              ///< discount
  double learning_rate = 0.001;    ///< Adam lr for Q
  double actor_lr_scale = 0.1;     ///< x-net lr = lr · scale
  int batch_size = 64;
  size_t buffer_capacity = 20000;
  double tau = 0.01;               ///< soft target-update rate
  int warmup_transitions = 500;    ///< replay size before learning starts
  int update_every = 1;            ///< env steps per gradient step
  double a_max = 3.0;              ///< a′ acceleration bound
  double noise_std = 1.0;          ///< parameter-noise std at ε = 1
  /// Probability mass on lane-keep when exploring the discrete behavior
  /// (uniform random lane changes at Δt=0.5 s crash almost immediately).
  double explore_keep_bias = 0.6;
  /// Minimum acceleration-noise std while ε > 0: keeps the critic supplied
  /// with off-policy action parameters late in training, when ε·noise_std
  /// alone would collapse the visited action distribution to a point.
  double param_noise_floor = 0.3;
  /// Terminal (collision/arrival) transitions are pushed into the replay
  /// buffer this many times — cheap prioritization of the rare events that
  /// carry the collision penalty.
  int terminal_replay_boost = 4;
  /// P-QP: update calls per alternation phase (0 ⇒ joint optimization).
  int alternate_period = 0;
  /// Vectorized minibatch updates: one autograd graph per minibatch instead
  /// of one per transition. Identical math (gradient-parity tested); the
  /// per-sample path is kept for that parity test and as a reference.
  bool batched_updates = true;
  /// Compile Act/Update steps into static nn::ExecPlans on first use and
  /// replay them afterwards (zero per-step graph construction). Bitwise
  /// identical to eager execution; also gated globally by HEAD_PLANS=0.
  bool static_plans = true;
};

class PdqnAgent : public PamdpAgent {
 public:
  using XFactory = std::function<std::unique_ptr<XNet>(Rng&)>;
  using QFactory = std::function<std::unique_ptr<QNet>(Rng&)>;

  PdqnAgent(std::string name, const PdqnConfig& config, const XFactory& make_x,
            const QFactory& make_q, Rng& init_rng);

  std::string name() const override { return name_; }
  AgentAction Act(const AugmentedState& state, double epsilon,
                  Rng& rng) override;
  void Remember(const AugmentedState& state, const AgentAction& action,
                double reward, const AugmentedState& next_state,
                bool terminal) override;
  void Update(Rng& rng) override;
  void ScaleLearningRate(double factor) override;

  /// Greedy action parameters x(s) — exposed for tests.
  nn::Tensor ActionParams(const AugmentedState& s) const;
  /// Q(s, x) — exposed for tests.
  nn::Tensor QValues(const AugmentedState& s, const nn::Tensor& x) const;

  const ReplayBuffer& buffer() const { return buffer_; }
  const PdqnConfig& config() const { return config_; }
  XNet& x_net() { return *x_; }
  QNet& q_net() { return *q_; }
  /// Re-copies the online networks into the targets (after loading weights).
  void SyncTargets();

 private:
  void UpdateCritic(const std::vector<const Transition*>& batch);
  void UpdateActor(const std::vector<const Transition*>& batch);
  void UpdateCriticBatched(const std::vector<const Transition*>& batch);
  void UpdateActorBatched(const std::vector<const Transition*>& batch);
  /// True when this agent compiles and replays static execution plans:
  /// config + HEAD_PLANS env + all four nets build plan-capturable graphs.
  bool PlansOn() const;

  std::string name_;
  PdqnConfig config_;
  std::unique_ptr<XNet> x_;
  std::unique_ptr<XNet> x_target_;
  std::unique_ptr<QNet> q_;
  std::unique_ptr<QNet> q_target_;
  nn::Adam q_opt_;
  nn::Adam x_opt_;
  ReplayBuffer buffer_;
  long update_calls_ = 0;

  /// Compiled step plans, captured lazily on first use. Act's plans are
  /// forward-only and replayed concurrently from EnvPool workers (replay
  /// state is per-thread); the update plans carry a recorded backward pass
  /// and run on the single learner thread. Update plans are keyed by batch
  /// size — unseen sizes beyond the cache cap fall back to eager execution.
  mutable std::mutex plan_mu_;
  std::shared_ptr<const nn::ExecPlan> act_x_plan_;
  std::shared_ptr<const nn::ExecPlan> act_q_plan_;
  std::unordered_map<int, std::shared_ptr<const nn::ExecPlan>>
      critic_target_plans_;
  std::unordered_map<int, std::shared_ptr<const nn::ExecPlan>>
      critic_main_plans_;
  std::unordered_map<int, std::shared_ptr<const nn::ExecPlan>> actor_plans_;
};

/// BP-DQN: the paper's branched parameterized deep Q-network.
std::unique_ptr<PdqnAgent> MakeBpDqnAgent(const PdqnConfig& config, Rng& rng);
/// Vanilla P-DQN [54].
std::unique_ptr<PdqnAgent> MakePDqnAgent(const PdqnConfig& config, Rng& rng);
/// P-QP [57]: alternating optimization (discrete policy vs parameters).
std::unique_ptr<PdqnAgent> MakePQpAgent(PdqnConfig config, Rng& rng);

}  // namespace head::rl

#endif  // HEAD_RL_PDQN_AGENT_H_
