// Episode-based RL training/evaluation loop (the paper trains 4,000
// episodes with a scheduled learning rate, soft target updates, and an
// ε-greedy exploration schedule). Produces the reward statistics of Table V
// and the convergence/inference times of Table VI.
#ifndef HEAD_RL_TRAINER_H_
#define HEAD_RL_TRAINER_H_

#include <vector>

#include "rl/env.h"
#include "rl/pamdp.h"

namespace head::rl {

struct RlTrainConfig {
  int episodes = 150;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  /// Fraction of episodes over which ε decays linearly.
  double epsilon_decay_fraction = 0.6;
  /// Learning-rate schedule: at each episode fraction, multiply all agent
  /// learning rates by `lr_decay_factor` (the paper's "scheduled" LR).
  std::vector<double> lr_decay_at_fractions = {0.5, 0.8};
  double lr_decay_factor = 0.3;
  uint64_t seed = 1;
  bool verbose = false;
  /// Stop an episode after this many steps even if the sim allows more.
  int max_steps_per_episode = 100000;
};

struct RlTrainResult {
  std::vector<double> episode_rewards;  ///< mean per-step reward per episode
  std::vector<double> episode_elapsed_seconds;
  /// Wall-clock until the 20-episode trailing mean first reaches 95% of its
  /// best value — the TCT of Table VI.
  double convergence_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Per-step reward statistics over greedy evaluation episodes (Table V).
struct RewardStats {
  double min_reward = 0.0;
  double max_reward = 0.0;
  double avg_reward = 0.0;
  long steps = 0;
  int collisions = 0;
};

RlTrainResult TrainAgent(PamdpAgent& agent, DrivingEnv& env,
                         const RlTrainConfig& config);

/// Runs `episodes` greedy episodes and aggregates per-step rewards. Episodes
/// are truncated at `max_steps_per_episode` so a policy that never reaches a
/// terminal state cannot hang evaluation or the benches.
RewardStats EvaluateAgent(PamdpAgent& agent, DrivingEnv& env, int episodes,
                          uint64_t seed_base,
                          int max_steps_per_episode = 100000);

}  // namespace head::rl

#endif  // HEAD_RL_TRAINER_H_
