// Episode-based RL training/evaluation loop (the paper trains 4,000
// episodes with a scheduled learning rate, soft target updates, and an
// ε-greedy exploration schedule). Produces the reward statistics of Table V
// and the convergence/inference times of Table VI.
#ifndef HEAD_RL_TRAINER_H_
#define HEAD_RL_TRAINER_H_

#include <vector>

#include "obs/timeseries.h"
#include "parallel/env_pool.h"
#include "rl/env.h"
#include "rl/pamdp.h"

namespace head::rl {

struct RlTrainConfig {
  int episodes = 150;
  double epsilon_start = 1.0;
  double epsilon_end = 0.05;
  /// Fraction of episodes over which ε decays linearly.
  double epsilon_decay_fraction = 0.6;
  /// Learning-rate schedule: at each episode fraction, multiply all agent
  /// learning rates by `lr_decay_factor` (the paper's "scheduled" LR).
  std::vector<double> lr_decay_at_fractions = {0.5, 0.8};
  double lr_decay_factor = 0.3;
  uint64_t seed = 1;
  bool verbose = false;
  /// Stop an episode after this many steps even if the sim allows more.
  int max_steps_per_episode = 100000;
  /// Optional training-curve sink (not owned; must outlive the call). When
  /// set, every episode appends one row: mean step reward, epsilon, the
  /// Eq. 28 reward-term means, and the critic-loss mean over the episode's
  /// updates — export with TimeSeries::WriteCsvFile / WriteJsonFile.
  obs::TimeSeries* timeseries = nullptr;
  /// Scenario name stamped into flight-recorder episode contexts ("" =
  /// unnamed env). Only used while obs::RecordingEnabled().
  std::string scenario_name;
};

struct RlTrainResult {
  std::vector<double> episode_rewards;  ///< mean per-step reward per episode
  std::vector<double> episode_elapsed_seconds;
  /// Wall-clock until the 20-episode trailing mean first reaches 95% of its
  /// best value — the TCT of Table VI.
  double convergence_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Per-step reward statistics over greedy evaluation episodes (Table V).
struct RewardStats {
  double min_reward = 0.0;
  double max_reward = 0.0;
  double avg_reward = 0.0;
  long steps = 0;
  int collisions = 0;
};

RlTrainResult TrainAgent(PamdpAgent& agent, DrivingEnv& env,
                         const RlTrainConfig& config);

/// Parallel collection-round training over K = envs.size() environments:
/// each round freezes the learner's parameters, collects K episodes
/// concurrently across the pool (per-episode SplitMix seed streams), then
/// drains the transitions in episode order and replays them through
/// Remember/Update — one learning step per transition, exactly like the
/// serial loop. Results depend on K (parameters advance once per round
/// instead of once per episode) but NOT on the thread count: for a fixed K
/// and seed, the episode-reward vector is bitwise identical whether the
/// pool runs 1 thread or 16. `agent.Act` must be safe to call concurrently
/// (pure forward pass — true of all agents in this repo).
RlTrainResult TrainAgent(PamdpAgent& agent, parallel::EnvPool& envs,
                         const RlTrainConfig& config);

/// Runs `episodes` greedy episodes and aggregates per-step rewards. Episodes
/// are truncated at `max_steps_per_episode` so a policy that never reaches a
/// terminal state cannot hang evaluation or the benches. Episode e resets
/// its env with SplitMix(seed_base, 2e) and draws action noise from
/// SplitMix(seed_base, 2e+1), so its outcome does not depend on which
/// worker or env instance runs it.
RewardStats EvaluateAgent(PamdpAgent& agent, DrivingEnv& env, int episodes,
                          uint64_t seed_base,
                          int max_steps_per_episode = 100000);

/// Same statistics as the serial overload — bitwise identical for any pool
/// size and thread count — with episodes fanned out across the env pool.
RewardStats EvaluateAgent(PamdpAgent& agent, parallel::EnvPool& envs,
                          int episodes, uint64_t seed_base,
                          int max_steps_per_episode = 100000);

}  // namespace head::rl

#endif  // HEAD_RL_TRAINER_H_
