// The hybrid reward function of Sec. IV-C (Eqs. 28–30): a weighted sum of
// safety (TTC-based), efficiency (normalized speed), comfort (jerk) and
// impact (forced deceleration of the rear conventional vehicle).
#ifndef HEAD_RL_REWARD_H_
#define HEAD_RL_REWARD_H_

#include <optional>

#include "common/types.h"

namespace head::rl {

struct RewardWeights {
  double safety = 0.9;      ///< w1 (best of the Table VII grid search)
  double efficiency = 0.8;  ///< w2
  double comfort = 0.6;     ///< w3
  double impact = 0.2;      ///< w4
};

struct RewardConfig {
  RewardWeights weights;
  double ttc_scale_s = 4.0;        ///< scaling threshold 𝒢 (paper Sec. V-A)
  double impact_v_thr_mps = 0.5;   ///< v_thr for the impact term
  bool use_impact = true;          ///< false = HEAD-w/o-IMP ablation
};

/// Everything the reward needs about the transition (ground truth from the
/// simulator after the action was applied).
struct RewardObservation {
  bool collision = false;          ///< vehicle crash or boundary hit
  VehicleState ego_next;           ///< A^{t+1}
  /// Front conventional vehicle C_2 at t+1 (nullopt ⇒ no real front vehicle;
  /// phantom TTC is masked, Eq. 29).
  std::optional<VehicleState> front_next;
  /// Rear conventional vehicle C_5 velocities at t and t+1 (same vehicle);
  /// nullopt ⇒ no real rear vehicle (impact masked, Eq. 30).
  std::optional<double> rear_v_now_mps;
  std::optional<double> rear_v_next_mps;
  double accel_now_mps2 = 0.0;   ///< A^t.a
  double accel_prev_mps2 = 0.0;  ///< A^{t−1}.a
};

struct RewardTerms {
  double safety = 0.0;      ///< r1 ∈ [−3, 0]
  double efficiency = 0.0;  ///< r2 ∈ [0, 1]
  double comfort = 0.0;     ///< r3 ∈ [−1, 0]
  double impact = 0.0;      ///< r4 ∈ [−1, 0]
  double total = 0.0;       ///< Eq. (28)
};

/// Time-to-collision with the front vehicle (Eq. 29's precondition):
/// d_lon / closing speed, or nullopt when not closing.
std::optional<double> TimeToCollision(const VehicleState& front,
                                      const VehicleState& ego);

class RewardFunction {
 public:
  explicit RewardFunction(const RewardConfig& config, const RoadConfig& road)
      : config_(config), road_(road) {}

  RewardTerms Compute(const RewardObservation& obs) const;

  const RewardConfig& config() const { return config_; }

 private:
  RewardConfig config_;
  RoadConfig road_;
};

}  // namespace head::rl

#endif  // HEAD_RL_REWARD_H_
