#include "rl/replay_buffer.h"

#include "common/check.h"

namespace head::rl {

ReplayBuffer::ReplayBuffer(size_t capacity) : capacity_(capacity) {
  HEAD_CHECK_GT(capacity, 0u);
  storage_.reserve(capacity);
}

void ReplayBuffer::Push(Transition t) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
  } else {
    storage_[next_] = std::move(t);
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<const Transition*> ReplayBuffer::Sample(size_t n, Rng& rng) const {
  HEAD_CHECK_GT(storage_.size(), 0u);
  std::vector<const Transition*> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        &storage_[rng.UniformInt(0, static_cast<int>(storage_.size()) - 1)]);
  }
  return out;
}

}  // namespace head::rl
