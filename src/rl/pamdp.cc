#include "rl/pamdp.h"

#include "common/check.h"
#include "perception/st_graph.h"

namespace head::rl {

LaneChange BehaviorToLaneChange(int b) {
  switch (b) {
    case kBehaviorLeft:
      return LaneChange::kLeft;
    case kBehaviorRight:
      return LaneChange::kRight;
    case kBehaviorKeep:
      return LaneChange::kKeep;
  }
  HEAD_CHECK_MSG(false, "invalid behavior index " << b);
}

int LaneChangeToBehavior(LaneChange lc) {
  switch (lc) {
    case LaneChange::kLeft:
      return kBehaviorLeft;
    case LaneChange::kRight:
      return kBehaviorRight;
    case LaneChange::kKeep:
      return kBehaviorKeep;
  }
  HEAD_CHECK_MSG(false, "invalid lane change");
}

AugmentedState BuildAugmentedState(const perception::StGraph& graph,
                                   const perception::Prediction& prediction,
                                   const RoadConfig& road,
                                   const perception::FeatureScale& scale,
                                   bool use_prediction) {
  AugmentedState s;
  s.h = nn::Tensor(kStateHRows, kStateCols);
  const auto ego_feat = perception::EgoFeature(graph.ego_current, road);
  for (int c = 0; c < kStateCols; ++c) s.h.At(0, c) = ego_feat[c];
  for (int i = 0; i < perception::kNumAreas; ++i) {
    const auto feat = perception::RelativeFeature(
        graph.target_current[i], graph.ego_current,
        graph.target_is_phantom[i], road, scale);
    for (int c = 0; c < kStateCols; ++c) s.h.At(1 + i, c) = feat[c];
  }

  s.f = nn::Tensor(kStateFRows, kStateCols);
  for (int i = 0; i < perception::kNumAreas; ++i) {
    const double lat = use_prediction ? prediction[i].d_lat_m
                                      : graph.target_rel_current[i][0];
    const double lon = use_prediction ? prediction[i].d_lon_m
                                      : graph.target_rel_current[i][1];
    const double v = use_prediction ? prediction[i].v_rel_mps
                                    : graph.target_rel_current[i][2];
    s.f.At(i, 0) = lat * scale.lat;
    s.f.At(i, 1) = lon * scale.lon;
    s.f.At(i, 2) = v * scale.v;
    s.f.At(i, 3) = graph.target_is_phantom[i] ? 1.0 : 0.0;
  }
  return s;
}

nn::Tensor FlattenState(const AugmentedState& s) {
  HEAD_CHECK_EQ(s.h.size() + s.f.size(), kFlatStateDim);
  nn::Tensor flat(1, kFlatStateDim);
  int k = 0;
  for (int i = 0; i < s.h.size(); ++i) flat[k++] = s.h[i];
  for (int i = 0; i < s.f.size(); ++i) flat[k++] = s.f[i];
  return flat;
}

nn::Tensor FlattenStates(const std::vector<const AugmentedState*>& batch) {
  HEAD_CHECK(!batch.empty());
  nn::Tensor flat(static_cast<int>(batch.size()), kFlatStateDim);
  double* dst = flat.data().data();
  for (const AugmentedState* s : batch) {
    HEAD_CHECK_EQ(s->h.size() + s->f.size(), kFlatStateDim);
    for (int i = 0; i < s->h.size(); ++i) *dst++ = s->h[i];
    for (int i = 0; i < s->f.size(); ++i) *dst++ = s->f[i];
  }
  return flat;
}

}  // namespace head::rl
