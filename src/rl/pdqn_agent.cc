#include "rl/pdqn_agent.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace head::rl {

namespace {

int ArgMax(const nn::Tensor& row) {
  HEAD_DCHECK(row.rows() == 1 && row.cols() > 0);
  int best = 0;
  for (int c = 1; c < row.cols(); ++c) {
    if (row.At(0, c) > row.At(0, best)) best = c;
  }
  return best;
}

double MaxVal(const nn::Tensor& row) {
  double m = row.At(0, 0);
  for (int c = 1; c < row.cols(); ++c) m = std::max(m, row.At(0, c));
  return m;
}

/// Per-site plan-cache cap: update plans are keyed by batch size, which is
/// nearly always a single value (config batch_size); the cap bounds memory
/// if a caller cycles through many sizes — extras just run eagerly.
constexpr size_t kMaxPlansPerSite = 8;

}  // namespace

PdqnAgent::PdqnAgent(std::string name, const PdqnConfig& config,
                     const XFactory& make_x, const QFactory& make_q,
                     Rng& init_rng)
    : name_(std::move(name)),
      config_(config),
      x_(make_x(init_rng)),
      x_target_(make_x(init_rng)),
      q_(make_q(init_rng)),
      q_target_(make_q(init_rng)),
      q_opt_(q_->Params(), config.learning_rate),
      x_opt_(x_->Params(), config.learning_rate * config.actor_lr_scale),
      buffer_(config.buffer_capacity) {
  x_target_->CopyParamsFrom(*x_);
  q_target_->CopyParamsFrom(*q_);
}

bool PdqnAgent::PlansOn() const {
  return config_.static_plans && nn::PlansEnabled() && x_->PlanCapturable() &&
         q_->PlanCapturable() && x_target_->PlanCapturable() &&
         q_target_->PlanCapturable();
}

AgentAction PdqnAgent::Act(const AugmentedState& state, double epsilon,
                           Rng& rng) {
  HEAD_PROF_SCOPE("rl.act");  // profiler root for action selection
  nn::ResetTape();  // recycle the previous action's graph nodes
  const nn::NoGradGuard no_grad;  // action selection never backprops
  const bool use_plans = PlansOn();

  nn::Tensor x;  // (1×3)
  if (use_plans) {
    std::shared_ptr<const nn::ExecPlan> plan;
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      if (act_x_plan_ == nullptr) {
        nn::PlanCapture capture;
        act_x_plan_ = capture.Finish({x_->Forward(state)});
      }
      plan = act_x_plan_;
    }
    std::vector<nn::Tensor> in;
    x_->AppendPlanInputs(state, &in);
    x = *plan->Replay(std::move(in))[0];
  } else {
    x = x_->Forward(state).value();
  }

  // Critic evaluation, shared by the greedy branch and the audit trail.
  // Replay slot order: the caller-fed x first (BpQNet/FlatQNet consume the
  // x Var before their state inputs), then the net's own state tensors.
  const auto critic_q = [&](const nn::Tensor& xin) -> nn::Tensor {
    if (use_plans) {
      std::shared_ptr<const nn::ExecPlan> plan;
      {
        std::lock_guard<std::mutex> lock(plan_mu_);
        if (act_q_plan_ == nullptr) {
          nn::PlanCapture capture;
          act_q_plan_ =
              capture.Finish({q_->Forward(state, nn::PlanInput(xin))});
        }
        plan = act_q_plan_;
      }
      std::vector<nn::Tensor> in;
      in.push_back(xin);
      q_->AppendPlanInputs(state, &in);
      return *plan->Replay(std::move(in))[0];
    }
    return q_->Forward(state, nn::Var::Constant(xin)).value();
  };

  int b;
  bool explored = false;
  if (epsilon > 0.0 && rng.Uniform(0.0, 1.0) < epsilon) {
    explored = true;
    if (rng.Uniform(0.0, 1.0) < config_.explore_keep_bias) {
      b = kBehaviorKeep;
    } else {
      b = rng.Bernoulli(0.5) ? kBehaviorLeft : kBehaviorRight;
    }
  } else {
    const nn::Tensor q = critic_q(x);
    b = ArgMax(q);
    if (obs::RecordingEnabled()) {
      obs::StepRecord& rec = obs::ScratchRecord();
      for (int c = 0; c < obs::kRecordBehaviors && c < q.cols(); ++c) {
        rec.q[c] = q.At(0, c);
      }
      rec.has_q = 1;
    }
  }
  if (obs::RecordingEnabled() && explored) {
    // Exploration skipped the critic; run it for the audit trail only. A
    // pure forward pass draws no randomness, so the recorded run and its
    // replay stay in RNG lockstep whether or not recording was on.
    const nn::Tensor q = critic_q(x);
    obs::StepRecord& rec = obs::ScratchRecord();
    for (int c = 0; c < obs::kRecordBehaviors && c < q.cols(); ++c) {
      rec.q[c] = q.At(0, c);
    }
    rec.has_q = 1;
  }
  double accel = x.At(0, b);
  if (epsilon > 0.0) {
    const double noise_std = std::max(epsilon * config_.noise_std,
                                      config_.param_noise_floor);
    accel += noise_std * rng.Normal(0.0, 1.0);
  }
  accel = std::clamp(accel, -config_.a_max, config_.a_max);
  x.At(0, b) = accel;  // store the parameters as actually applied
  AgentAction action;
  action.behavior = b;
  action.maneuver = Maneuver{BehaviorToLaneChange(b), accel};
  action.params = std::move(x);
  if (obs::RecordingEnabled()) {
    obs::StepRecord& rec = obs::ScratchRecord();
    for (int c = 0; c < obs::kRecordBehaviors && c < action.params.cols();
         ++c) {
      rec.params[c] = action.params.At(0, c);
    }
    rec.has_params = 1;
    rec.behavior = b;
    rec.epsilon = epsilon;
  }
  return action;
}

void PdqnAgent::Remember(const AugmentedState& state,
                         const AgentAction& action, double reward,
                         const AugmentedState& next_state, bool terminal) {
  Transition t;
  t.state = state;
  t.behavior = action.behavior;
  t.params = action.params;
  t.reward = reward;
  t.next_state = next_state;
  t.terminal = terminal;
  const int copies = terminal ? std::max(1, config_.terminal_replay_boost) : 1;
  for (int i = 0; i < copies; ++i) buffer_.Push(t);
}

void PdqnAgent::UpdateCritic(const std::vector<const Transition*>& batch) {
  HEAD_PROF_SCOPE("rl.update_critic");
  nn::ResetTape();  // steady state: the whole update reuses recycled nodes
  if (config_.batched_updates) {
    UpdateCriticBatched(batch);
    return;
  }
  q_opt_.ZeroGrad();
  std::vector<nn::Var> losses;
  losses.reserve(batch.size());
  for (const Transition* t : batch) {
    double y = t->reward;
    if (!t->terminal) {
      const nn::Var x_next = x_target_->Forward(t->next_state);
      const nn::Tensor q_next =
          q_target_->Forward(t->next_state, x_next).value();
      y += config_.gamma * MaxVal(q_next);
    }
    const nn::Var q_all =
        q_->Forward(t->state, nn::Var::Constant(t->params));
    const nn::Var q_b = nn::SliceCols(q_all, t->behavior, t->behavior + 1);
    losses.push_back(nn::Scale(nn::Square(nn::AddScalar(q_b, -y)), 0.5));
  }
  nn::Var loss = losses[0];
  for (size_t i = 1; i < losses.size(); ++i) loss = nn::Add(loss, losses[i]);
  loss = nn::Scale(loss, 1.0 / losses.size());
  nn::Backward(loss);
  const double grad_norm = q_opt_.ClipGradNorm(10.0);
  q_opt_.Step();

  static obs::Histogram& loss_hist = obs::GetHistogram(
      "rl.critic_loss", obs::CachedExponentialBounds(1e-4, 2.0, 28));
  static obs::Histogram& norm_hist = obs::GetHistogram(
      "rl.grad_norm.critic", obs::CachedExponentialBounds(1e-4, 2.0, 28));
  loss_hist.Observe(loss.value()[0]);
  norm_hist.Observe(grad_norm);
}

void PdqnAgent::UpdateActor(const std::vector<const Transition*>& batch) {
  HEAD_PROF_SCOPE("rl.update_actor");
  nn::ResetTape();  // the critic pass's tape is spent at this point
  if (config_.batched_updates) {
    UpdateActorBatched(batch);
    return;
  }
  x_opt_.ZeroGrad();
  q_->ZeroGrad();  // critic grads from this pass are discarded
  std::vector<nn::Var> losses;
  losses.reserve(batch.size());
  for (const Transition* t : batch) {
    const nn::Var x = x_->Forward(t->state);
    const nn::Var q_all = q_->Forward(t->state, x);
    losses.push_back(nn::Scale(nn::Sum(q_all), -1.0));  // Eq. (23)
  }
  nn::Var loss = losses[0];
  for (size_t i = 1; i < losses.size(); ++i) loss = nn::Add(loss, losses[i]);
  loss = nn::Scale(loss, 1.0 / losses.size());
  nn::Backward(loss);
  const double grad_norm = x_opt_.ClipGradNorm(10.0);
  x_opt_.Step();

  static obs::Histogram& norm_hist = obs::GetHistogram(
      "rl.grad_norm.actor", obs::CachedExponentialBounds(1e-4, 2.0, 28));
  norm_hist.Observe(grad_norm);
}

void PdqnAgent::UpdateCriticBatched(
    const std::vector<const Transition*>& batch) {
  const int b = static_cast<int>(batch.size());
  std::vector<const AugmentedState*> states(b);
  std::vector<const AugmentedState*> next_states(b);
  std::vector<int> behaviors(b);
  nn::Tensor params(b, kNumBehaviors);
  for (int i = 0; i < b; ++i) {
    const Transition* t = batch[i];
    states[i] = &t->state;
    next_states[i] = &t->next_state;
    behaviors[i] = t->behavior;
    HEAD_CHECK_EQ(t->params.size(), kNumBehaviors);
    for (int c = 0; c < kNumBehaviors; ++c) {
      params.At(i, c) = t->params[c];
    }
  }

  const bool use_plans = PlansOn();

  // TD targets y = r + γ·max_b Q'(s', x'(s'))·(1 − done), all under no-grad:
  // the target networks never receive gradients, so no closures are built.
  nn::Tensor y(b, 1);
  {
    const nn::NoGradGuard no_grad;
    std::shared_ptr<const nn::ExecPlan> plan;
    if (use_plans) {
      std::lock_guard<std::mutex> lock(plan_mu_);
      const auto it = critic_target_plans_.find(b);
      if (it != critic_target_plans_.end()) {
        plan = it->second;
      } else if (critic_target_plans_.size() < kMaxPlansPerSite) {
        nn::PlanCapture capture;
        const nn::Var x_next = x_target_->ForwardBatch(next_states);
        plan =
            capture.Finish({q_target_->ForwardBatch(next_states, x_next)});
        critic_target_plans_.emplace(b, plan);
      }
    }
    nn::Tensor q_next;  // (B×3)
    if (plan != nullptr) {
      std::vector<nn::Tensor> in;
      x_target_->AppendPlanInputsBatch(next_states, &in);
      q_target_->AppendPlanInputsBatch(next_states, &in);
      q_next = *plan->Replay(std::move(in))[0];
    } else {
      const nn::Var x_next = x_target_->ForwardBatch(next_states);
      q_next = q_target_->ForwardBatch(next_states, x_next).value();
    }
    // Raw rowwise-max kernel — no autograd node; this whole block is
    // no-grad and the argmax is never needed.
    const nn::Tensor q_max = nn::RowwiseMax(q_next);
    for (int i = 0; i < b; ++i) {
      y[i] = batch[i]->reward +
             (batch[i]->terminal ? 0.0 : config_.gamma * q_max[i]);
    }
  }

  // One graph for the whole minibatch: Q(s,x) as (B×3), the chosen
  // behavior's value picked per row, ½·mean((Q_b − y)²) as in Eq. (22).
  // The plan for this step carries the recorded backward pass: a replay
  // leaves the minibatch gradient in the Param grads exactly as nn::Backward
  // would, and the optimizer consumes it identically.
  q_opt_.ZeroGrad();
  std::shared_ptr<const nn::ExecPlan> plan;
  bool may_capture = false;
  if (use_plans) {
    std::lock_guard<std::mutex> lock(plan_mu_);
    const auto it = critic_main_plans_.find(b);
    if (it != critic_main_plans_.end()) {
      plan = it->second;
    } else {
      may_capture = critic_main_plans_.size() < kMaxPlansPerSite;
    }
  }
  double loss_val;
  if (plan != nullptr) {
    // Replay slots: the action-parameter matrix (fed to ForwardBatch before
    // the state stacks), the critic's state inputs, the targets y; the
    // selected behaviors travel through the plan's index slot.
    std::vector<nn::Tensor> in;
    in.push_back(std::move(params));
    q_->AppendPlanInputsBatch(states, &in);
    in.push_back(std::move(y));
    loss_val = (*plan->Replay(std::move(in), {&behaviors})[0])[0];
  } else {
    // Capture runs the step eagerly as it records, so this branch IS the
    // eager step — with a plan compiled as a side effect when cacheable.
    std::optional<nn::PlanCapture> capture;
    if (may_capture) capture.emplace();
    const nn::Var q_all =
        q_->ForwardBatch(states, nn::PlanInput(std::move(params)));
    const nn::Var q_b = nn::SelectColumnPerRow(q_all, std::move(behaviors));
    const nn::Var loss = nn::Scale(
        nn::Sum(nn::Square(nn::Sub(q_b, nn::PlanInput(std::move(y))))),
        0.5 / b);
    nn::Backward(loss);
    loss_val = loss.value()[0];
    if (may_capture) {
      std::lock_guard<std::mutex> lock(plan_mu_);
      critic_main_plans_.emplace(b, capture->Finish({loss}));
    }
  }
  const double grad_norm = q_opt_.ClipGradNorm(10.0);
  q_opt_.Step();

  static obs::Histogram& loss_hist = obs::GetHistogram(
      "rl.critic_loss", obs::CachedExponentialBounds(1e-4, 2.0, 28));
  static obs::Histogram& norm_hist = obs::GetHistogram(
      "rl.grad_norm.critic", obs::CachedExponentialBounds(1e-4, 2.0, 28));
  loss_hist.Observe(loss_val);
  norm_hist.Observe(grad_norm);
}

void PdqnAgent::UpdateActorBatched(
    const std::vector<const Transition*>& batch) {
  const int b = static_cast<int>(batch.size());
  std::vector<const AugmentedState*> states(b);
  for (int i = 0; i < b; ++i) states[i] = &batch[i]->state;

  x_opt_.ZeroGrad();
  q_->ZeroGrad();  // critic grads from this pass are discarded
  std::shared_ptr<const nn::ExecPlan> plan;
  bool may_capture = false;
  if (PlansOn()) {
    std::lock_guard<std::mutex> lock(plan_mu_);
    const auto it = actor_plans_.find(b);
    if (it != actor_plans_.end()) {
      plan = it->second;
    } else {
      may_capture = actor_plans_.size() < kMaxPlansPerSite;
    }
  }
  if (plan != nullptr) {
    // Replay slots: the actor's state inputs, then the critic's (the x Var
    // flows between them as a captured graph edge). The recorded backward
    // leaves Eq. (23)'s gradient in the x-net Param grads.
    std::vector<nn::Tensor> in;
    x_->AppendPlanInputsBatch(states, &in);
    q_->AppendPlanInputsBatch(states, &in);
    plan->Replay(std::move(in));
  } else {
    std::optional<nn::PlanCapture> capture;
    if (may_capture) capture.emplace();
    const nn::Var x = x_->ForwardBatch(states);
    const nn::Var q_all = q_->ForwardBatch(states, x);
    const nn::Var loss = nn::Scale(nn::Sum(q_all), -1.0 / b);  // Eq. (23)
    nn::Backward(loss);
    if (may_capture) {
      std::lock_guard<std::mutex> lock(plan_mu_);
      actor_plans_.emplace(b, capture->Finish({loss}));
    }
  }
  const double grad_norm = x_opt_.ClipGradNorm(10.0);
  x_opt_.Step();

  static obs::Histogram& norm_hist = obs::GetHistogram(
      "rl.grad_norm.actor", obs::CachedExponentialBounds(1e-4, 2.0, 28));
  norm_hist.Observe(grad_norm);
}

void PdqnAgent::Update(Rng& rng) {
  if (buffer_.size() < static_cast<size_t>(config_.warmup_transitions)) {
    return;
  }
  ++update_calls_;
  if (config_.update_every > 1 &&
      update_calls_ % config_.update_every != 0) {
    return;
  }
  bool train_q = true;
  bool train_x = true;
  if (config_.alternate_period > 0) {
    const long phase =
        (update_calls_ / config_.alternate_period) % 2;
    train_q = phase == 0;
    train_x = phase == 1;
  }
  HEAD_SPAN("rl.update");
  HEAD_PROF_SCOPE("rl.update");  // profiler root: coverage vs nested ops
  static obs::Counter& updates = obs::GetCounter("rl.updates");
  static obs::Gauge& replay_fill = obs::GetGauge("rl.replay_fill");
  updates.Add();
  replay_fill.Set(static_cast<double>(buffer_.size()) /
                  static_cast<double>(config_.buffer_capacity));

  const std::vector<const Transition*> batch = [&] {
    HEAD_PROF_SCOPE("rl.replay_sample");
    return buffer_.Sample(config_.batch_size, rng);
  }();
  if (train_q) UpdateCritic(batch);
  if (train_x) UpdateActor(batch);
  x_target_->SoftUpdateFrom(*x_, config_.tau);
  q_target_->SoftUpdateFrom(*q_, config_.tau);
}

void PdqnAgent::ScaleLearningRate(double factor) {
  q_opt_.set_learning_rate(q_opt_.learning_rate() * factor);
  x_opt_.set_learning_rate(x_opt_.learning_rate() * factor);
}

void PdqnAgent::SyncTargets() {
  x_target_->CopyParamsFrom(*x_);
  q_target_->CopyParamsFrom(*q_);
}

// Diagnostic accessors stay tape-neutral: callers may hold live Vars from an
// open region (e.g. parity tests comparing against a batched forward), so no
// ResetTape here — these nodes recycle at the next region entry.
nn::Tensor PdqnAgent::ActionParams(const AugmentedState& s) const {
  const nn::NoGradGuard no_grad;
  return x_->Forward(s).value();
}

nn::Tensor PdqnAgent::QValues(const AugmentedState& s,
                              const nn::Tensor& x) const {
  const nn::NoGradGuard no_grad;
  return q_->Forward(s, nn::Var::Constant(x)).value();
}

std::unique_ptr<PdqnAgent> MakeBpDqnAgent(const PdqnConfig& config, Rng& rng) {
  return std::make_unique<PdqnAgent>(
      "BP-DQN", config,
      [&config](Rng& r) {
        return std::make_unique<BpXNet>(config.hidden, config.a_max, r);
      },
      [&config](Rng& r) { return std::make_unique<BpQNet>(config.hidden, r); },
      rng);
}

std::unique_ptr<PdqnAgent> MakePDqnAgent(const PdqnConfig& config, Rng& rng) {
  return std::make_unique<PdqnAgent>(
      "P-DQN", config,
      [&config](Rng& r) {
        return std::make_unique<FlatXNet>(config.hidden, config.a_max, r);
      },
      [&config](Rng& r) {
        return std::make_unique<FlatQNet>(config.hidden, r);
      },
      rng);
}

std::unique_ptr<PdqnAgent> MakePQpAgent(PdqnConfig config, Rng& rng) {
  if (config.alternate_period <= 0) config.alternate_period = 50;
  auto agent = std::make_unique<PdqnAgent>(
      "P-QP", config,
      [config](Rng& r) {
        return std::make_unique<FlatXNet>(config.hidden, config.a_max, r);
      },
      [config](Rng& r) {
        return std::make_unique<FlatQNet>(config.hidden, r);
      },
      rng);
  return agent;
}

}  // namespace head::rl
