#include "rl/p_ddpg.h"

#include <algorithm>

#include "common/check.h"

namespace head::rl {

namespace {
constexpr int kActionDim = 2 * kNumBehaviors;  // logits + parameters
}  // namespace

PddpgAgent::PddpgAgent(const PddpgConfig& config, Rng& init_rng)
    : config_(config),
      actor_({kFlatStateDim, 2 * config.hidden, config.hidden, kActionDim},
             nn::Mlp::Activation::kRelu, init_rng),
      actor_target_(
          {kFlatStateDim, 2 * config.hidden, config.hidden, kActionDim},
          nn::Mlp::Activation::kRelu, init_rng),
      critic_({kFlatStateDim + kActionDim, 2 * config.hidden, config.hidden,
               1},
              nn::Mlp::Activation::kRelu, init_rng),
      critic_target_({kFlatStateDim + kActionDim, 2 * config.hidden,
                      config.hidden, 1},
                     nn::Mlp::Activation::kRelu, init_rng),
      critic_opt_(critic_.Params(), config.learning_rate),
      actor_opt_(actor_.Params(),
                 config.learning_rate * config.actor_lr_scale),
      buffer_(config.buffer_capacity) {
  std::vector<nn::Var> params = actor_.Params();
  nn::Tensor& w = params[params.size() - 2].mutable_value();
  for (int i = 0; i < w.size(); ++i) w[i] *= 0.1;
  actor_target_.CopyParamsFrom(actor_);
  critic_target_.CopyParamsFrom(critic_);
}

nn::Var PddpgAgent::Actor(const nn::Mlp& net, const AugmentedState& s) const {
  const nn::Var raw =
      nn::Tanh(net.Forward(nn::Var::Constant(FlattenState(s))));
  const nn::Var logits = nn::SliceCols(raw, 0, kNumBehaviors);
  const nn::Var params = nn::Scale(
      nn::SliceCols(raw, kNumBehaviors, kActionDim), config_.a_max);
  return nn::ConcatCols({logits, params});
}

nn::Var PddpgAgent::Critic(const nn::Mlp& net, const AugmentedState& s,
                           const nn::Var& u) const {
  return net.Forward(
      nn::ConcatCols({nn::Var::Constant(FlattenState(s)), u}));
}

AgentAction PddpgAgent::Act(const AugmentedState& state, double epsilon,
                            Rng& rng) {
  nn::ResetTape();  // recycle the previous action's graph nodes
  const nn::NoGradGuard no_grad;  // action selection never backprops
  nn::Tensor u = Actor(actor_, state).value();  // (1×6)
  int b = 0;
  for (int c = 1; c < kNumBehaviors; ++c) {
    if (u.At(0, c) > u.At(0, b)) b = c;
  }
  if (epsilon > 0.0 && rng.Uniform(0.0, 1.0) < epsilon) {
    if (rng.Uniform(0.0, 1.0) < config_.explore_keep_bias) {
      b = kBehaviorKeep;
    } else {
      b = rng.Bernoulli(0.5) ? kBehaviorLeft : kBehaviorRight;
    }
    // Reflect the explored choice in the stored action vector.
    u.At(0, b) = 1.0;
  }
  double accel = u.At(0, kNumBehaviors + b);
  if (epsilon > 0.0) {
    accel += epsilon * config_.noise_std * rng.Normal(0.0, 1.0);
    accel = std::clamp(accel, -config_.a_max, config_.a_max);
    u.At(0, kNumBehaviors + b) = accel;
  }
  AgentAction action;
  action.behavior = b;
  action.maneuver = Maneuver{BehaviorToLaneChange(b), accel};
  action.params = std::move(u);
  return action;
}

void PddpgAgent::Remember(const AugmentedState& state,
                          const AgentAction& action, double reward,
                          const AugmentedState& next_state, bool terminal) {
  Transition t;
  t.state = state;
  t.behavior = action.behavior;
  t.params = action.params;
  t.reward = reward;
  t.next_state = next_state;
  t.terminal = terminal;
  buffer_.Push(std::move(t));
}

void PddpgAgent::Update(Rng& rng) {
  if (buffer_.size() < static_cast<size_t>(config_.warmup_transitions)) {
    return;
  }
  ++update_calls_;
  if (config_.update_every > 1 &&
      update_calls_ % config_.update_every != 0) {
    return;
  }
  const auto batch = buffer_.Sample(config_.batch_size, rng);

  // Critic.
  nn::ResetTape();
  critic_opt_.ZeroGrad();
  std::vector<nn::Var> c_losses;
  c_losses.reserve(batch.size());
  for (const Transition* t : batch) {
    double y = t->reward;
    if (!t->terminal) {
      const nn::Var u_next = Actor(actor_target_, t->next_state);
      y += config_.gamma *
           Critic(critic_target_, t->next_state, u_next).value()[0];
    }
    const nn::Var q =
        Critic(critic_, t->state, nn::Var::Constant(t->params));
    c_losses.push_back(nn::Scale(nn::Square(nn::AddScalar(q, -y)), 0.5));
  }
  nn::Var c_loss = c_losses[0];
  for (size_t i = 1; i < c_losses.size(); ++i) {
    c_loss = nn::Add(c_loss, c_losses[i]);
  }
  c_loss = nn::Scale(c_loss, 1.0 / c_losses.size());
  nn::Backward(c_loss);
  critic_opt_.ClipGradNorm(10.0);
  critic_opt_.Step();

  // Actor.
  nn::ResetTape();  // the critic pass's tape is spent at this point
  actor_opt_.ZeroGrad();
  critic_.ZeroGrad();
  std::vector<nn::Var> a_losses;
  a_losses.reserve(batch.size());
  for (const Transition* t : batch) {
    const nn::Var u = Actor(actor_, t->state);
    a_losses.push_back(nn::Scale(Critic(critic_, t->state, u), -1.0));
  }
  nn::Var a_loss = a_losses[0];
  for (size_t i = 1; i < a_losses.size(); ++i) {
    a_loss = nn::Add(a_loss, a_losses[i]);
  }
  a_loss = nn::Scale(a_loss, 1.0 / a_losses.size());
  nn::Backward(a_loss);
  actor_opt_.ClipGradNorm(10.0);
  actor_opt_.Step();

  actor_target_.SoftUpdateFrom(actor_, config_.tau);
  critic_target_.SoftUpdateFrom(critic_, config_.tau);
}

void PddpgAgent::ScaleLearningRate(double factor) {
  critic_opt_.set_learning_rate(critic_opt_.learning_rate() * factor);
  actor_opt_.set_learning_rate(actor_opt_.learning_rate() * factor);
}

}  // namespace head::rl
