#include "rl/drl_sc.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "perception/neighbor.h"

namespace head::rl {

namespace {

/// Decoded relative state of target area `i` (0-based) from s.h row 1+i.
struct RelState {
  double d_lat_m;
  double d_lon_m;
  double v_rel_mps;
  bool is_phantom;
};

RelState DecodeTarget(const AugmentedState& s,
                      const perception::FeatureScale& scale, int i) {
  return RelState{s.h.At(1 + i, 0) / scale.lat, s.h.At(1 + i, 1) / scale.lon,
                  s.h.At(1 + i, 2) / scale.v, s.h.At(1 + i, 3) > 0.5};
}

}  // namespace

DrlScAgent::DrlScAgent(const DrlScConfig& config, Rng& init_rng)
    : config_(config),
      q_({kFlatStateDim, 2 * config.hidden, config.hidden, kNumActions},
         nn::Mlp::Activation::kRelu, init_rng),
      q_target_(
          {kFlatStateDim, 2 * config.hidden, config.hidden, kNumActions},
          nn::Mlp::Activation::kRelu, init_rng),
      opt_(q_.Params(), config.learning_rate),
      buffer_(config.buffer_capacity) {
  q_target_.CopyParamsFrom(q_);
}

Maneuver DrlScAgent::DecodeAction(int action_index) const {
  HEAD_DCHECK(action_index >= 0 && action_index < kNumActions);
  const int b = action_index / kAccelLevels;
  const int level = action_index % kAccelLevels;
  const double accel = -config_.road.a_max_mps2 +
                       level * (2.0 * config_.road.a_max_mps2) /
                           (kAccelLevels - 1);
  return Maneuver{BehaviorToLaneChange(b), accel};
}

bool DrlScAgent::IsSafe(const AugmentedState& s, const Maneuver& m) const {
  using perception::kFrontLeft;
  using perception::kFront;
  using perception::kFrontRight;
  using perception::kRearLeft;
  using perception::kRearRight;

  const int ego_lane = static_cast<int>(
      std::lround(s.h.At(0, 0) * config_.road.num_lanes));
  const double ego_v = s.h.At(0, 2) * config_.road.v_max_mps;

  // Lane-change safety: target lane must exist and the adjacent front/rear
  // vehicles must leave enough gap.
  if (m.lane_change != LaneChange::kKeep) {
    const int target_lane = ego_lane + LaneDelta(m.lane_change);
    if (!config_.road.IsValidLane(target_lane)) return false;
    const int front_area =
        m.lane_change == LaneChange::kLeft ? kFrontLeft : kFrontRight;
    const int rear_area =
        m.lane_change == LaneChange::kLeft ? kRearLeft : kRearRight;
    const RelState front = DecodeTarget(s, config_.scale, front_area);
    const RelState rear = DecodeTarget(s, config_.scale, rear_area);
    if (!front.is_phantom &&
        std::fabs(front.d_lon_m) < config_.min_lane_change_gap_m) {
      return false;
    }
    if (!rear.is_phantom &&
        std::fabs(rear.d_lon_m) < config_.min_lane_change_gap_m) {
      return false;
    }
  }

  // Longitudinal safety: TTC with the (possibly new) front vehicle after
  // applying the acceleration for one step.
  const int look_area = m.lane_change == LaneChange::kLeft  ? kFrontLeft
                        : m.lane_change == LaneChange::kRight ? kFrontRight
                                                              : kFront;
  const RelState front = DecodeTarget(s, config_.scale, look_area);
  if (!front.is_phantom) {
    const double v_new = std::clamp(ego_v + m.accel_mps2 * config_.road.dt_s,
                                    config_.road.v_min_mps,
                                    config_.road.v_max_mps);
    const double front_v = ego_v + front.v_rel_mps;
    const double closing = v_new - front_v;
    const double gap = front.d_lon_m - kVehicleLengthM;
    if (gap < 1.0) return false;
    if (closing > 0.0 && gap / closing < config_.min_ttc_s) return false;
    // Kinematic feasibility: even braking at a′ the gap must not close.
    if (closing > 0.0 &&
        gap < closing * closing / (2.0 * config_.road.a_max_mps2) + 2.0) {
      return false;
    }
  }
  return true;
}

AgentAction DrlScAgent::Act(const AugmentedState& state, double epsilon,
                            Rng& rng) {
  nn::ResetTape();  // recycle the previous action's graph nodes
  const nn::NoGradGuard no_grad;  // action selection never backprops
  const nn::Tensor q =
      q_.Forward(nn::Var::Constant(FlattenState(state))).value();
  // Rank actions: explored actions draw a random preference, greedy uses Q.
  std::vector<int> order(kNumActions);
  for (int i = 0; i < kNumActions; ++i) order[i] = i;
  if (epsilon > 0.0 && rng.Uniform(0.0, 1.0) < epsilon) {
    std::shuffle(order.begin(), order.end(), rng.engine());
  } else {
    std::sort(order.begin(), order.end(),
              [&q](int a, int b) { return q.At(0, a) > q.At(0, b); });
  }
  // Safety check: take the best-ranked safe action.
  int chosen = -1;
  for (int idx : order) {
    if (IsSafe(state, DecodeAction(idx))) {
      chosen = idx;
      break;
    }
  }
  AgentAction action;
  if (chosen < 0) {
    // Nothing passes: emergency brake in lane.
    action.behavior = kBehaviorKeep * kAccelLevels;  // (lk, −a′)
    action.maneuver = Maneuver{LaneChange::kKeep, -config_.road.a_max_mps2};
  } else {
    action.behavior = chosen;
    action.maneuver = DecodeAction(chosen);
  }
  action.params = nn::Tensor();  // unused for the discrete agent
  return action;
}

void DrlScAgent::Remember(const AugmentedState& state,
                          const AgentAction& action, double reward,
                          const AugmentedState& next_state, bool terminal) {
  Transition t;
  t.state = state;
  t.behavior = action.behavior;
  t.reward = reward;
  t.next_state = next_state;
  t.terminal = terminal;
  buffer_.Push(std::move(t));
}

void DrlScAgent::Update(Rng& rng) {
  if (buffer_.size() < static_cast<size_t>(config_.warmup_transitions)) {
    return;
  }
  ++update_calls_;
  if (config_.update_every > 1 &&
      update_calls_ % config_.update_every != 0) {
    return;
  }
  const auto batch = buffer_.Sample(config_.batch_size, rng);
  nn::ResetTape();
  opt_.ZeroGrad();
  std::vector<nn::Var> losses;
  losses.reserve(batch.size());
  for (const Transition* t : batch) {
    double y = t->reward;
    if (!t->terminal) {
      const nn::Tensor q_next =
          q_target_.Forward(nn::Var::Constant(FlattenState(t->next_state)))
              .value();
      double best = q_next.At(0, 0);
      for (int c = 1; c < kNumActions; ++c) {
        best = std::max(best, q_next.At(0, c));
      }
      y += config_.gamma * best;
    }
    const nn::Var q_all =
        q_.Forward(nn::Var::Constant(FlattenState(t->state)));
    const nn::Var q_b = nn::SliceCols(q_all, t->behavior, t->behavior + 1);
    losses.push_back(nn::Scale(nn::Square(nn::AddScalar(q_b, -y)), 0.5));
  }
  nn::Var loss = losses[0];
  for (size_t i = 1; i < losses.size(); ++i) loss = nn::Add(loss, losses[i]);
  loss = nn::Scale(loss, 1.0 / losses.size());
  nn::Backward(loss);
  opt_.ClipGradNorm(10.0);
  opt_.Step();
  q_target_.SoftUpdateFrom(q_, config_.tau);
}

}  // namespace head::rl
