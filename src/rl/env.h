// The reinforcement-learning environment: wires the traffic simulation, the
// sensor model, the enhanced perception module and the hybrid reward into
// the PAMDP loop of Sec. IV. Ablation switches reproduce the HEAD variants
// of Table II.
#ifndef HEAD_RL_ENV_H_
#define HEAD_RL_ENV_H_

#include <optional>

#include "perception/predictor.h"
#include "rl/pamdp.h"
#include "rl/reward.h"
#include "sensor/sensor_model.h"
#include "sim/simulation.h"

namespace head::rl {

struct EnvConfig {
  sim::SimConfig sim;
  sensor::SensorConfig sensor;
  perception::FeatureScale scale;
  RewardConfig reward;
  int history_z = 5;           ///< z historical steps (paper Sec. V-A)
  bool use_pvc = true;         ///< phantom construction (off = w/o-PVC)
  bool use_prediction = true;  ///< feed f̂^{t+1} (off = w/o-LST-GAT)
};

class DrivingEnv {
 public:
  /// `predictor` supplies f̂^{t+1}; may be null when use_prediction is false.
  DrivingEnv(const EnvConfig& config,
             const perception::StatePredictor* predictor, uint64_t seed);

  /// Starts a fresh episode and returns s⁺ at t=0.
  AugmentedState Reset(uint64_t seed);

  struct StepOutcome {
    AugmentedState next_state;
    RewardTerms reward;
    bool done = false;
    sim::EpisodeStatus status = sim::EpisodeStatus::kRunning;
  };

  /// Applies the ego maneuver, advances Δt and computes the hybrid reward.
  StepOutcome Step(const Maneuver& maneuver);

  const sim::Simulation& simulation() const { return sim_; }
  const perception::StGraph& last_graph() const { return graph_; }
  const EnvConfig& config() const { return config_; }
  double prev_accel() const { return prev_accel_; }

 private:
  /// Observes through the sensor, updates history, rebuilds graph/state.
  AugmentedState Perceive();
  /// Nearest real conventional vehicle directly behind/ahead of the ego.
  std::optional<sim::VehicleSnapshot> RealNeighbor(bool front) const;

  EnvConfig config_;
  const perception::StatePredictor* predictor_;
  sim::Simulation sim_;
  perception::HistoryBuffer history_;
  perception::StGraph graph_;
  RewardFunction reward_fn_;
  double prev_accel_ = 0.0;
};

}  // namespace head::rl

#endif  // HEAD_RL_ENV_H_
