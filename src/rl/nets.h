// Actor (x) and critic (Q) networks for the P-DQN family.
//
// BP-DQN (paper Sec. IV-B, Fig. 6, Eqs. 24–27) processes h^t, f̂^{t+1} and
// x^t_out in *separate branches* before merging — avoiding the erroneous
// weight sharing between differently scaled inputs that vanilla P-DQN
// suffers from. P-DQN uses single-branch MLPs over the flattened state.
#ifndef HEAD_RL_NETS_H_
#define HEAD_RL_NETS_H_

#include <memory>
#include <vector>

#include "nn/layers.h"
#include "rl/pamdp.h"

namespace head::rl {

/// Deterministic action-parameter network x(s; θx): emits the three
/// accelerations (one per lane-change behavior), bounded to ±a' by tanh.
class XNet : public nn::Module {
 public:
  ~XNet() override = default;
  virtual nn::Var Forward(const AugmentedState& s) const = 0;
  /// Minibatch forward: one autograd graph over all B states, (B×3) output.
  /// The default stacks per-sample Forward results; the concrete nets
  /// override it with a genuinely vectorized pass.
  virtual nn::Var ForwardBatch(
      const std::vector<const AugmentedState*>& batch) const;
  /// True when Forward/ForwardBatch build a fixed-shape graph whose data
  /// enters only through nn::PlanInput, so PdqnAgent may compile the step
  /// into an nn::ExecPlan. The per-sample stacking default is not.
  virtual bool PlanCapturable() const { return false; }
  /// Replay feeders: push the per-step input tensors in the exact order a
  /// captured Forward(s) / ForwardBatch(batch) consumed them. Only valid
  /// when PlanCapturable().
  virtual void AppendPlanInputs(const AugmentedState& s,
                                std::vector<nn::Tensor>* inputs) const;
  virtual void AppendPlanInputsBatch(
      const std::vector<const AugmentedState*>& batch,
      std::vector<nn::Tensor>* inputs) const;
};

/// Action-value network Q(s, x; θQ): three Q values, one per behavior.
/// `x` is passed as a Var so actor gradients can flow through the critic.
class QNet : public nn::Module {
 public:
  ~QNet() override = default;
  virtual nn::Var Forward(const AugmentedState& s, const nn::Var& x) const = 0;
  /// Minibatch forward; `x` is (B×3) and gradients still flow through it.
  virtual nn::Var ForwardBatch(const std::vector<const AugmentedState*>& batch,
                               const nn::Var& x) const;
  /// Plan support (see XNet). The feeders cover the *state* inputs only —
  /// `x` is a graph node the caller feeds separately.
  virtual bool PlanCapturable() const { return false; }
  virtual void AppendPlanInputs(const AugmentedState& s,
                                std::vector<nn::Tensor>* inputs) const;
  virtual void AppendPlanInputsBatch(
      const std::vector<const AugmentedState*>& batch,
      std::vector<nn::Tensor>* inputs) const;
};

/// Per-vehicle branch of Eq. (24)/(26): ReLU(φ_b·ReLU(φ_a·X + b_a) + b_b)
/// applied row-wise to a (rows×4) block, yielding one scalar per vehicle,
/// returned as a (1×rows) row.
class BranchEncoder : public nn::Module {
 public:
  BranchEncoder(int rows, int hidden, Rng& rng);
  nn::Var Forward(const nn::Tensor& block) const;
  /// Vectorized over a minibatch: `blocks` is B per-state blocks stacked
  /// row-wise ((B·rows)×4); returns (B×rows), one reduced row per state.
  nn::Var ForwardStacked(const nn::Tensor& blocks, int batch) const;
  std::vector<nn::Var> Params() const override;
  int rows() const { return rows_; }

 private:
  int rows_;
  nn::Linear l1_;
  nn::Linear l2_;
};

// ---- BP-DQN branched networks ----

class BpXNet : public XNet {
 public:
  BpXNet(int hidden, double a_max, Rng& rng);
  nn::Var Forward(const AugmentedState& s) const override;  // Eq. (25)
  nn::Var ForwardBatch(
      const std::vector<const AugmentedState*>& batch) const override;
  bool PlanCapturable() const override { return true; }
  void AppendPlanInputs(const AugmentedState& s,
                        std::vector<nn::Tensor>* inputs) const override;
  void AppendPlanInputsBatch(const std::vector<const AugmentedState*>& batch,
                             std::vector<nn::Tensor>* inputs) const override;
  std::vector<nn::Var> Params() const override;

 private:
  double a_max_;
  BranchEncoder h_branch_;  // φ5/φ6
  BranchEncoder f_branch_;  // φ7/φ8
  nn::Linear out_;          // φ9: 13 → 3
};

class BpQNet : public QNet {
 public:
  BpQNet(int hidden, Rng& rng);
  nn::Var Forward(const AugmentedState& s, const nn::Var& x) const override;
  nn::Var ForwardBatch(const std::vector<const AugmentedState*>& batch,
                       const nn::Var& x) const override;
  bool PlanCapturable() const override { return true; }
  void AppendPlanInputs(const AugmentedState& s,
                        std::vector<nn::Tensor>* inputs) const override;
  void AppendPlanInputsBatch(const std::vector<const AugmentedState*>& batch,
                             std::vector<nn::Tensor>* inputs) const override;
  std::vector<nn::Var> Params() const override;

 private:
  BranchEncoder h_branch_;  // φ10/φ11
  BranchEncoder f_branch_;  // φ12/φ13
  nn::Linear x1_;           // φ14: 3 → hidden
  nn::Linear x2_;           // φ15: hidden → 3
  // Fusion head. The paper's Eq. (27) merges [h' ‖ f' ‖ x'] with a single
  // linear map, which makes Q(s,x) = A(s) + B(x) additively separable — the
  // optimal acceleration would be the same in every state. One hidden layer
  // restores the state-action interaction while keeping the branched
  // encoders that are BP-DQN's contribution.
  nn::Linear fuse_;  // 16 → hidden
  nn::Linear out_;   // hidden → 3
};

// ---- Vanilla P-DQN single-branch networks (Xiong et al. [54]) ----

class FlatXNet : public XNet {
 public:
  FlatXNet(int hidden, double a_max, Rng& rng);
  nn::Var Forward(const AugmentedState& s) const override;
  nn::Var ForwardBatch(
      const std::vector<const AugmentedState*>& batch) const override;
  bool PlanCapturable() const override { return true; }
  void AppendPlanInputs(const AugmentedState& s,
                        std::vector<nn::Tensor>* inputs) const override;
  void AppendPlanInputsBatch(const std::vector<const AugmentedState*>& batch,
                             std::vector<nn::Tensor>* inputs) const override;
  std::vector<nn::Var> Params() const override;

 private:
  double a_max_;
  nn::Mlp mlp_;  // 52 → hidden → hidden → 3
};

class FlatQNet : public QNet {
 public:
  FlatQNet(int hidden, Rng& rng);
  nn::Var Forward(const AugmentedState& s, const nn::Var& x) const override;
  nn::Var ForwardBatch(const std::vector<const AugmentedState*>& batch,
                       const nn::Var& x) const override;
  bool PlanCapturable() const override { return true; }
  void AppendPlanInputs(const AugmentedState& s,
                        std::vector<nn::Tensor>* inputs) const override;
  void AppendPlanInputsBatch(const std::vector<const AugmentedState*>& batch,
                             std::vector<nn::Tensor>* inputs) const override;
  std::vector<nn::Var> Params() const override;

 private:
  nn::Linear in_;   // 55 → hidden (state and action share one layer)
  nn::Linear mid_;  // hidden → hidden
  nn::Linear out_;  // hidden → 3
};

}  // namespace head::rl

#endif  // HEAD_RL_NETS_H_
