// MP-DQN extension (Bester, James & Konidaris [55], cited by the paper as
// the multi-pass improvement over P-DQN): the critic is evaluated once per
// discrete action with only that action's parameter visible, so Q_b cannot
// pick up false gradients from the other actions' parameters. Implemented
// as a QNet the shared PdqnAgent machinery can drive, making it a drop-in
// fifth comparator for the Table V/VI setting.
#ifndef HEAD_RL_MP_DQN_H_
#define HEAD_RL_MP_DQN_H_

#include <memory>

#include "rl/pdqn_agent.h"

namespace head::rl {

/// Multi-pass critic: Q(s, x)[b] = f(s, x ⊙ e_b)[b], one forward pass per
/// behavior with the other parameters masked to zero.
class MultiPassQNet : public QNet {
 public:
  MultiPassQNet(int hidden, Rng& rng);
  nn::Var Forward(const AugmentedState& s, const nn::Var& x) const override;
  std::vector<nn::Var> Params() const override;

 private:
  nn::Linear in_;   // (52 + 3) → 2·hidden
  nn::Linear mid_;  // 2·hidden → hidden
  nn::Linear out_;  // hidden → 3
};

/// MP-DQN: P-DQN's actor with the multi-pass critic.
std::unique_ptr<PdqnAgent> MakeMpDqnAgent(const PdqnConfig& config, Rng& rng);

}  // namespace head::rl

#endif  // HEAD_RL_MP_DQN_H_
