// DRL-SC baseline (Nageshrao et al. [10]): a DQN over a *discretized*
// maneuver set (3 lane-change behaviors × 5 acceleration levels) with a
// rule-based safety check that vetoes unsafe choices and falls back to the
// best safe action. Represents the pre-PAMDP state of the art of Table I.
#ifndef HEAD_RL_DRL_SC_H_
#define HEAD_RL_DRL_SC_H_

#include <string>
#include <vector>

#include "nn/optimizer.h"
#include "perception/st_graph.h"
#include "rl/replay_buffer.h"

namespace head::rl {

struct DrlScConfig {
  int hidden = 64;
  double gamma = 0.9;
  double learning_rate = 0.001;
  int batch_size = 64;
  size_t buffer_capacity = 20000;
  double tau = 0.01;
  int warmup_transitions = 500;
  int update_every = 1;
  RoadConfig road;
  perception::FeatureScale scale;  ///< to decode distances from the state
  /// Safety-check thresholds.
  double min_lane_change_gap_m = 10.0;
  double min_ttc_s = 2.0;
};

class DrlScAgent : public PamdpAgent {
 public:
  static constexpr int kAccelLevels = 5;
  static constexpr int kNumActions = kNumBehaviors * kAccelLevels;

  DrlScAgent(const DrlScConfig& config, Rng& init_rng);

  std::string name() const override { return "DRL-SC"; }
  AgentAction Act(const AugmentedState& state, double epsilon,
                  Rng& rng) override;
  void Remember(const AugmentedState& state, const AgentAction& action,
                double reward, const AugmentedState& next_state,
                bool terminal) override;
  void Update(Rng& rng) override;
  void ScaleLearningRate(double factor) override {
    opt_.set_learning_rate(opt_.learning_rate() * factor);
  }

  /// Maneuver encoded by a discrete action index.
  Maneuver DecodeAction(int action_index) const;
  /// Rule-based veto: false if the maneuver is predicted to be unsafe given
  /// the (decoded) relative states in `s`.
  bool IsSafe(const AugmentedState& s, const Maneuver& m) const;

  nn::Mlp& q_mlp() { return q_; }
  /// Re-copies the online network into the target (after loading weights).
  void SyncTargets() { q_target_.CopyParamsFrom(q_); }

 private:
  DrlScConfig config_;
  nn::Mlp q_;
  nn::Mlp q_target_;
  nn::Adam opt_;
  ReplayBuffer buffer_;
  long update_calls_ = 0;
};

}  // namespace head::rl

#endif  // HEAD_RL_DRL_SC_H_
