#include "rl/reward.h"

#include <algorithm>
#include <cmath>

#include "obs/recorder.h"

namespace head::rl {

std::optional<double> TimeToCollision(const VehicleState& front,
                                      const VehicleState& ego) {
  const double closing = ego.v_mps - front.v_mps;  // −v(C2, A)
  if (closing <= 0.0) return std::nullopt;         // not approaching
  const double d = DLon(front, ego);
  if (d < 0.0) return std::nullopt;
  return d / closing;
}

RewardTerms RewardFunction::Compute(const RewardObservation& obs) const {
  RewardTerms r;

  // Safety (Eq. 29).
  if (obs.collision) {
    r.safety = -3.0;
  } else if (obs.front_next.has_value()) {
    const std::optional<double> ttc =
        TimeToCollision(*obs.front_next, obs.ego_next);
    if (ttc.has_value() && *ttc < config_.ttc_scale_s) {
      r.safety = std::max(
          -3.0, std::log(std::max(*ttc, 1e-9) / config_.ttc_scale_s));
    }
  }

  // Efficiency.
  r.efficiency = (obs.ego_next.v_mps - road_.v_min_mps) /
                 (road_.v_max_mps - road_.v_min_mps);
  r.efficiency = std::clamp(r.efficiency, 0.0, 1.0);

  // Comfort (jerk proxy |a^t − a^{t−1}| / 2a').
  r.comfort = -std::fabs(obs.accel_now_mps2 - obs.accel_prev_mps2) /
              (2.0 * road_.a_max_mps2);

  // Impact (Eq. 30) — only when the rear conventional vehicle decelerated
  // by more than v_thr across the step.
  if (config_.use_impact && obs.rear_v_now_mps.has_value() &&
      obs.rear_v_next_mps.has_value()) {
    const double drop = *obs.rear_v_now_mps - *obs.rear_v_next_mps;
    if (drop > config_.impact_v_thr_mps) {
      r.impact = std::max(-1.0, -drop / (2.0 * road_.a_max_mps2 * road_.dt_s));
    }
  }

  const RewardWeights& w = config_.weights;
  r.total = w.safety * r.safety + w.efficiency * r.efficiency +
            w.comfort * r.comfort +
            (config_.use_impact ? w.impact * r.impact : 0.0);

  if (obs::RecordingEnabled()) {
    // Flight recorder: the reward decomposition + the TTC the safety term
    // saw (the impact-risk trigger watches this field).
    obs::StepRecord& rec = obs::ScratchRecord();
    rec.r_safety = r.safety;
    rec.r_efficiency = r.efficiency;
    rec.r_comfort = r.comfort;
    rec.r_impact = r.impact;
    rec.r_total = r.total;
    rec.has_reward = 1;
    if (!obs.collision && obs.front_next.has_value()) {
      const std::optional<double> ttc =
          TimeToCollision(*obs.front_next, obs.ego_next);
      rec.ttc_s = ttc.has_value() ? *ttc : -1.0;
    }
  }
  return r;
}

}  // namespace head::rl
