// P-DDPG baseline (Hausknecht & Stone [58]): collapses the parameterized
// action space into one continuous vector u = [behavior logits ‖ behavior
// parameters] and runs vanilla DDPG on it. As the paper notes, the critic
// cannot tell which parameter belongs to which discrete action.
#ifndef HEAD_RL_P_DDPG_H_
#define HEAD_RL_P_DDPG_H_

#include <memory>
#include <string>

#include "nn/optimizer.h"
#include "rl/nets.h"
#include "rl/replay_buffer.h"

namespace head::rl {

struct PddpgConfig {
  int hidden = 64;
  double gamma = 0.9;
  double learning_rate = 0.001;
  double actor_lr_scale = 0.1;
  int batch_size = 64;
  size_t buffer_capacity = 20000;
  double tau = 0.01;
  int warmup_transitions = 500;
  int update_every = 1;
  double a_max = 3.0;
  double noise_std = 1.0;
  double explore_keep_bias = 0.6;
};

class PddpgAgent : public PamdpAgent {
 public:
  PddpgAgent(const PddpgConfig& config, Rng& init_rng);

  std::string name() const override { return "P-DDPG"; }
  AgentAction Act(const AugmentedState& state, double epsilon,
                  Rng& rng) override;
  void Remember(const AugmentedState& state, const AgentAction& action,
                double reward, const AugmentedState& next_state,
                bool terminal) override;
  void Update(Rng& rng) override;
  void ScaleLearningRate(double factor) override;

 private:
  /// Actor: (1×6) = [3 behavior logits in (−1,1) ‖ 3 accelerations in ±a′].
  nn::Var Actor(const nn::Mlp& net, const AugmentedState& s) const;
  /// Critic: scalar Q(s, u).
  nn::Var Critic(const nn::Mlp& net, const AugmentedState& s,
                 const nn::Var& u) const;

  PddpgConfig config_;
  nn::Mlp actor_;
  nn::Mlp actor_target_;
  nn::Mlp critic_;
  nn::Mlp critic_target_;
  nn::Adam critic_opt_;
  nn::Adam actor_opt_;
  ReplayBuffer buffer_;
  long update_calls_ = 0;
};

}  // namespace head::rl

#endif  // HEAD_RL_P_DDPG_H_
