// Fixed-capacity experience replay (ring buffer) with uniform sampling —
// the buffer ℬ of Eq. (22).
#ifndef HEAD_RL_REPLAY_BUFFER_H_
#define HEAD_RL_REPLAY_BUFFER_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "rl/pamdp.h"

namespace head::rl {

struct Transition {
  AugmentedState state;
  int behavior = 0;        ///< chosen discrete action
  nn::Tensor params;       ///< full action-parameter vector as applied
  double reward = 0.0;
  AugmentedState next_state;
  bool terminal = false;
};

class ReplayBuffer {
 public:
  explicit ReplayBuffer(size_t capacity);

  void Push(Transition t);
  size_t size() const { return storage_.size(); }
  size_t capacity() const { return capacity_; }

  /// Uniformly samples `n` transitions (with replacement). Requires size>0.
  std::vector<const Transition*> Sample(size_t n, Rng& rng) const;

 private:
  size_t capacity_;
  size_t next_ = 0;
  std::vector<Transition> storage_;
};

}  // namespace head::rl

#endif  // HEAD_RL_REPLAY_BUFFER_H_
