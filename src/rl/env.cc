#include "rl/env.h"

#include "common/check.h"
#include "obs/recorder.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace head::rl {

DrivingEnv::DrivingEnv(const EnvConfig& config,
                       const perception::StatePredictor* predictor,
                       uint64_t seed)
    : config_(config),
      predictor_(predictor),
      sim_(config.sim, seed),
      history_(config.history_z),
      reward_fn_(config.reward, config.sim.road) {
  if (config_.use_prediction) {
    HEAD_CHECK_MSG(predictor_ != nullptr,
                   "use_prediction requires a state predictor");
  }
}

AugmentedState DrivingEnv::Perceive() {
  HEAD_SPAN("env.perceive");
  HEAD_PROF_SCOPE("env.perceive");
  perception::ObservationFrame frame;
  frame.ego = sim_.ego_state();
  frame.observed = sensor::Observe(sim_.GlobalSnapshot(), sim_.ego_state(),
                                   config_.sensor, config_.sim.road);
  history_.Push(std::move(frame));
  const perception::CompletedScene scene = perception::ConstructPhantoms(
      history_, config_.sim.road, config_.sensor.range_m, config_.use_pvc);
  graph_ = perception::BuildStGraph(scene, config_.sim.road, config_.scale);

  perception::Prediction prediction{};
  if (config_.use_prediction) {
    prediction = predictor_->Predict(graph_);
  }
  return BuildAugmentedState(graph_, prediction, config_.sim.road,
                             config_.scale, config_.use_prediction);
}

AugmentedState DrivingEnv::Reset(uint64_t seed) {
  sim_.Reset(seed);
  history_.Clear();
  prev_accel_ = 0.0;
  return Perceive();
}

std::optional<sim::VehicleSnapshot> DrivingEnv::RealNeighbor(
    bool front) const {
  const sim::RoadView view = sim_.View();
  const VehicleState& ego = sim_.ego_state();
  const sim::VehicleSnapshot* v =
      front ? view.Leader(ego.lane, ego.lon_m, kEgoVehicleId)
            : view.Follower(ego.lane, ego.lon_m, kEgoVehicleId);
  if (v == nullptr) return std::nullopt;
  return *v;
}

DrivingEnv::StepOutcome DrivingEnv::Step(const Maneuver& maneuver) {
  HEAD_SPAN("env.step");
  HEAD_PROF_SCOPE("env.step");  // profiler root for rollout attribution
  HEAD_CHECK(sim_.status() == sim::EpisodeStatus::kRunning);

  // Remember the rear conventional vehicle before acting (impact reward
  // compares its velocity across the transition, Eq. 30).
  const std::optional<sim::VehicleSnapshot> rear_before = RealNeighbor(false);

  const sim::EpisodeStatus status = [&] {
    HEAD_PROF_SCOPE("env.sim");
    return sim_.Step(maneuver);
  }();

  StepOutcome out;
  out.status = status;
  out.done = status != sim::EpisodeStatus::kRunning;

  RewardObservation obs;
  obs.collision = status == sim::EpisodeStatus::kCollision;
  obs.ego_next = sim_.ego_state();
  obs.accel_now_mps2 = maneuver.accel_mps2;
  obs.accel_prev_mps2 = prev_accel_;
  const std::optional<sim::VehicleSnapshot> front_after = RealNeighbor(true);
  if (front_after.has_value()) obs.front_next = front_after->state;
  if (rear_before.has_value()) {
    obs.rear_v_now_mps = rear_before->state.v_mps;
    // Track the same vehicle after the step (it may have changed lanes or
    // fallen out of being "the" follower — what matters is its slowdown).
    for (const sim::Vehicle& v : sim_.conventional_vehicles()) {
      if (v.id == rear_before->id) {
        obs.rear_v_next_mps = v.state.v_mps;
        break;
      }
    }
  }
  out.reward = reward_fn_.Compute(obs);

  // Flight recorder: the scratch now holds this step's full story
  // (perception from the pre-step Perceive, the agent's decision internals,
  // the applied maneuver + ego outcome from sim_.Step, the reward
  // decomposition above) — commit it before the trailing Perceive starts
  // filling the next step's scratch.
  if (obs::RecordingEnabled()) obs::CommitStepRecord();

  prev_accel_ = maneuver.accel_mps2;
  out.next_state = Perceive();
  return out;
}

}  // namespace head::rl
