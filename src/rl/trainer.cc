#include "rl/trainer.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace head::rl {

namespace {

/// Bipolar value-scale bounds for reward/loss-style histograms: rewards and
/// reward terms live roughly in [-3, 1]; bucket on [-4, 4] in 0.1 steps.
const std::vector<double>& RewardBounds() {
  return obs::CachedLinearBounds(-4.0, 4.0, 0.1);
}

}  // namespace

RlTrainResult TrainAgent(PamdpAgent& agent, DrivingEnv& env,
                         const RlTrainConfig& config) {
  HEAD_CHECK_GT(config.episodes, 0);
  Rng rng(config.seed);
  RlTrainResult result;
  const auto start = std::chrono::steady_clock::now();
  const double decay_episodes =
      std::max(1.0, config.epsilon_decay_fraction * config.episodes);

  size_t next_lr_decay = 0;
  for (int ep = 0; ep < config.episodes; ++ep) {
    if (next_lr_decay < config.lr_decay_at_fractions.size() &&
        ep >= config.lr_decay_at_fractions[next_lr_decay] *
                  config.episodes) {
      agent.ScaleLearningRate(config.lr_decay_factor);
      ++next_lr_decay;
    }
    const double frac = std::min(1.0, ep / decay_episodes);
    const double epsilon =
        config.epsilon_start +
        frac * (config.epsilon_end - config.epsilon_start);

    static obs::Counter& episodes_counter = obs::GetCounter("rl.episodes");
    static obs::Gauge& epsilon_gauge = obs::GetGauge("rl.epsilon");
    static obs::Histogram& reward_hist =
        obs::GetHistogram("rl.episode_reward", RewardBounds());
    static obs::Histogram& safety_hist =
        obs::GetHistogram("rl.reward.safety", RewardBounds());
    static obs::Histogram& efficiency_hist =
        obs::GetHistogram("rl.reward.efficiency", RewardBounds());
    static obs::Histogram& comfort_hist =
        obs::GetHistogram("rl.reward.comfort", RewardBounds());
    static obs::Histogram& impact_hist =
        obs::GetHistogram("rl.reward.impact", RewardBounds());
    HEAD_SPAN("rl.train.episode");
    episodes_counter.Add();
    epsilon_gauge.Set(epsilon);

    AugmentedState state = env.Reset(config.seed * 7919 + ep);
    double ep_reward = 0.0;
    RewardTerms ep_terms;  // per-episode sums of the Eq. 28 decomposition
    int steps = 0;
    while (steps < config.max_steps_per_episode) {
      const AgentAction action = agent.Act(state, epsilon, rng);
      const DrivingEnv::StepOutcome outcome = env.Step(action.maneuver);
      agent.Remember(state, action, outcome.reward.total, outcome.next_state,
                     outcome.done);
      agent.Update(rng);
      ep_reward += outcome.reward.total;
      ep_terms.safety += outcome.reward.safety;
      ep_terms.efficiency += outcome.reward.efficiency;
      ep_terms.comfort += outcome.reward.comfort;
      ep_terms.impact += outcome.reward.impact;
      ++steps;
      state = outcome.next_state;
      if (outcome.done) break;
    }
    const double inv_steps = 1.0 / std::max(steps, 1);
    reward_hist.Observe(ep_reward * inv_steps);
    safety_hist.Observe(ep_terms.safety * inv_steps);
    efficiency_hist.Observe(ep_terms.efficiency * inv_steps);
    comfort_hist.Observe(ep_terms.comfort * inv_steps);
    impact_hist.Observe(ep_terms.impact * inv_steps);
    result.episode_rewards.push_back(ep_reward / std::max(steps, 1));
    result.episode_elapsed_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    if (config.verbose && (ep + 1) % 10 == 0) {
      HEAD_LOG(Info) << agent.name() << " episode " << ep + 1 << "/"
                     << config.episodes
                     << " mean step reward=" << result.episode_rewards.back()
                     << " eps=" << epsilon;
    }
  }
  result.total_seconds = result.episode_elapsed_seconds.back();

  // Convergence time: first time the trailing-window mean reaches 95% of
  // the best trailing-window mean (rewards can be negative; normalize by
  // the observed range).
  const int window = std::min<int>(20, config.episodes);
  std::vector<double> trailing;
  for (size_t e = window - 1; e < result.episode_rewards.size(); ++e) {
    double s = 0.0;
    for (int k = 0; k < window; ++k) s += result.episode_rewards[e - k];
    trailing.push_back(s / window);
  }
  const double best = *std::max_element(trailing.begin(), trailing.end());
  const double worst = *std::min_element(trailing.begin(), trailing.end());
  const double threshold = best - 0.05 * std::max(best - worst, 1e-9);
  result.convergence_seconds = result.total_seconds;
  for (size_t i = 0; i < trailing.size(); ++i) {
    if (trailing[i] >= threshold) {
      result.convergence_seconds =
          result.episode_elapsed_seconds[i + window - 1];
      break;
    }
  }
  return result;
}

RewardStats EvaluateAgent(PamdpAgent& agent, DrivingEnv& env, int episodes,
                          uint64_t seed_base, int max_steps_per_episode) {
  HEAD_CHECK_GT(max_steps_per_episode, 0);
  // Evaluation is pure inference: no gradient graph should be recorded for
  // any forward pass below.
  const nn::NoGradGuard no_grad;
  Rng rng(seed_base);
  RewardStats stats;
  stats.min_reward = std::numeric_limits<double>::infinity();
  stats.max_reward = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (int ep = 0; ep < episodes; ++ep) {
    AugmentedState state = env.Reset(seed_base * 104729 + ep);
    for (int step = 0; step < max_steps_per_episode; ++step) {
      const AgentAction action = agent.Act(state, /*epsilon=*/0.0, rng);
      const DrivingEnv::StepOutcome outcome = env.Step(action.maneuver);
      const double r = outcome.reward.total;
      stats.min_reward = std::min(stats.min_reward, r);
      stats.max_reward = std::max(stats.max_reward, r);
      sum += r;
      ++stats.steps;
      state = outcome.next_state;
      if (outcome.done) {
        if (outcome.status == sim::EpisodeStatus::kCollision) {
          ++stats.collisions;
        }
        break;
      }
    }
  }
  stats.avg_reward = stats.steps > 0 ? sum / stats.steps : 0.0;
  return stats;
}

}  // namespace head::rl
