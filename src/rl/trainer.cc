#include "rl/trainer.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/check.h"
#include "common/logging.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/span.h"
#include "sim/simulation.h"

namespace head::rl {

namespace {

/// Bipolar value-scale bounds for reward/loss-style histograms: rewards and
/// reward terms live roughly in [-3, 1]; bucket on [-4, 4] in 0.1 steps.
const std::vector<double>& RewardBounds() {
  return obs::CachedLinearBounds(-4.0, 4.0, 0.1);
}

/// Training telemetry shared by the serial and parallel loops. Resolved once
/// per process (references into the global registry stay valid forever).
struct TrainTelemetry {
  obs::Counter& episodes = obs::GetCounter("rl.episodes");
  obs::Gauge& epsilon = obs::GetGauge("rl.epsilon");
  obs::Histogram& reward = obs::GetHistogram("rl.episode_reward",
                                             RewardBounds());
  obs::Histogram& safety = obs::GetHistogram("rl.reward.safety",
                                             RewardBounds());
  obs::Histogram& efficiency = obs::GetHistogram("rl.reward.efficiency",
                                                 RewardBounds());
  obs::Histogram& comfort = obs::GetHistogram("rl.reward.comfort",
                                              RewardBounds());
  obs::Histogram& impact = obs::GetHistogram("rl.reward.impact",
                                             RewardBounds());

  static TrainTelemetry& Get() {
    static TrainTelemetry t;
    return t;
  }
};

void ObserveEpisodeTelemetry(TrainTelemetry& t, double reward_sum,
                             const RewardTerms& terms_sum, int steps) {
  const double inv_steps = 1.0 / std::max(steps, 1);
  t.reward.Observe(reward_sum * inv_steps);
  t.safety.Observe(terms_sum.safety * inv_steps);
  t.efficiency.Observe(terms_sum.efficiency * inv_steps);
  t.comfort.Observe(terms_sum.comfort * inv_steps);
  t.impact.Observe(terms_sum.impact * inv_steps);
}

/// Mean of a histogram's observations since the previous Sample() — delta-
/// windowing over the cumulative (count, sum), so the registry histogram is
/// left untouched for other consumers (no SnapshotAndReset).
class HistogramDeltaMean {
 public:
  explicit HistogramDeltaMean(obs::Histogram& h) : h_(h) {
    const obs::HistogramSnapshot s = h.Snapshot();
    prev_count_ = s.count;
    prev_sum_ = s.sum;
  }

  /// False when no new observations landed in the window.
  bool Sample(double* mean) {
    const obs::HistogramSnapshot s = h_.Snapshot();
    const int64_t delta_count = s.count - prev_count_;
    const double delta_sum = s.sum - prev_sum_;
    prev_count_ = s.count;
    prev_sum_ = s.sum;
    if (delta_count <= 0) return false;
    *mean = delta_sum / delta_count;
    return true;
  }

 private:
  obs::Histogram& h_;
  int64_t prev_count_;
  double prev_sum_;
};

/// The critic-loss histogram the agents publish to (bounds must match the
/// agent-side registration — first creation wins, same bounds either way).
obs::Histogram& CriticLossHistogram() {
  return obs::GetHistogram("rl.critic_loss",
                           obs::CachedExponentialBounds(1e-4, 2.0, 28));
}

/// One training-curve row: episode index, mean step reward, epsilon, the
/// Eq. 28 reward-term means, and (when available) the critic-loss window.
void AppendCurveRow(obs::TimeSeries* ts, double t, int episode,
                    double mean_reward, double epsilon,
                    const RewardTerms& terms_sum, int steps,
                    const double* critic_loss) {
  if (ts == nullptr) return;
  const double inv_steps = 1.0 / std::max(steps, 1);
  std::vector<std::pair<std::string, double>> row = {
      {"episode", static_cast<double>(episode)},
      {"reward", mean_reward},
      {"epsilon", epsilon},
      {"reward.safety", terms_sum.safety * inv_steps},
      {"reward.efficiency", terms_sum.efficiency * inv_steps},
      {"reward.comfort", terms_sum.comfort * inv_steps},
      {"reward.impact", terms_sum.impact * inv_steps},
  };
  if (critic_loss != nullptr) row.emplace_back("critic_loss", *critic_loss);
  ts->Append(t, row);
}

/// Installs the flight-recorder episode context for the upcoming episode.
void RecorderBeginEpisode(const RlTrainConfig& config,
                          const std::string& policy, uint64_t seed, int ep) {
  if (!obs::RecordingEnabled()) return;
  obs::EpisodeContext ctx;
  ctx.scenario = config.scenario_name;
  ctx.policy = policy;
  ctx.seed = seed;
  ctx.episode_index = ep;
  obs::BeginEpisode(ctx);
}

/// ε for episode `ep` under the linear decay schedule.
double EpsilonAt(const RlTrainConfig& config, int ep) {
  const double decay_episodes =
      std::max(1.0, config.epsilon_decay_fraction * config.episodes);
  const double frac = std::min(1.0, ep / decay_episodes);
  return config.epsilon_start +
         frac * (config.epsilon_end - config.epsilon_start);
}

/// Convergence time: first time the trailing-window mean reaches 95% of
/// the best trailing-window mean (rewards can be negative; normalize by
/// the observed range).
void ComputeConvergence(RlTrainResult& result, int episodes) {
  const int window = std::min<int>(20, episodes);
  std::vector<double> trailing;
  for (size_t e = window - 1; e < result.episode_rewards.size(); ++e) {
    double s = 0.0;
    for (int k = 0; k < window; ++k) s += result.episode_rewards[e - k];
    trailing.push_back(s / window);
  }
  const double best = *std::max_element(trailing.begin(), trailing.end());
  const double worst = *std::min_element(trailing.begin(), trailing.end());
  const double threshold = best - 0.05 * std::max(best - worst, 1e-9);
  result.convergence_seconds = result.total_seconds;
  for (size_t i = 0; i < trailing.size(); ++i) {
    if (trailing[i] >= threshold) {
      result.convergence_seconds =
          result.episode_elapsed_seconds[i + window - 1];
      break;
    }
  }
}

}  // namespace

RlTrainResult TrainAgent(PamdpAgent& agent, DrivingEnv& env,
                         const RlTrainConfig& config) {
  HEAD_CHECK_GT(config.episodes, 0);
  Rng rng(config.seed);
  RlTrainResult result;
  const auto start = std::chrono::steady_clock::now();
  HistogramDeltaMean critic_loss_window(CriticLossHistogram());

  size_t next_lr_decay = 0;
  for (int ep = 0; ep < config.episodes; ++ep) {
    if (next_lr_decay < config.lr_decay_at_fractions.size() &&
        ep >= config.lr_decay_at_fractions[next_lr_decay] *
                  config.episodes) {
      agent.ScaleLearningRate(config.lr_decay_factor);
      ++next_lr_decay;
    }
    const double epsilon = EpsilonAt(config, ep);

    TrainTelemetry& telemetry = TrainTelemetry::Get();
    HEAD_SPAN("rl.train.episode");
    telemetry.episodes.Add();
    telemetry.epsilon.Set(epsilon);

    const uint64_t ep_seed = config.seed * 7919 + ep;
    RecorderBeginEpisode(config, agent.name(), ep_seed, ep);
    AugmentedState state = env.Reset(ep_seed);
    double ep_reward = 0.0;
    RewardTerms ep_terms;  // per-episode sums of the Eq. 28 decomposition
    int steps = 0;
    sim::EpisodeStatus status = sim::EpisodeStatus::kRunning;
    while (steps < config.max_steps_per_episode) {
      const AgentAction action = agent.Act(state, epsilon, rng);
      if (obs::RecordingEnabled()) {
        obs::ScratchRecord().rng_cursor = rng.draws();
      }
      const DrivingEnv::StepOutcome outcome = env.Step(action.maneuver);
      agent.Remember(state, action, outcome.reward.total, outcome.next_state,
                     outcome.done);
      agent.Update(rng);
      ep_reward += outcome.reward.total;
      ep_terms.safety += outcome.reward.safety;
      ep_terms.efficiency += outcome.reward.efficiency;
      ep_terms.comfort += outcome.reward.comfort;
      ep_terms.impact += outcome.reward.impact;
      ++steps;
      state = outcome.next_state;
      status = outcome.status;
      if (outcome.done) break;
    }
    if (obs::RecordingEnabled()) obs::EndEpisode(sim::ToEpisodeEnd(status));
    ObserveEpisodeTelemetry(telemetry, ep_reward, ep_terms, steps);
    result.episode_rewards.push_back(ep_reward / std::max(steps, 1));
    result.episode_elapsed_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    double critic_loss = 0.0;
    const bool have_loss = critic_loss_window.Sample(&critic_loss);
    AppendCurveRow(config.timeseries, result.episode_elapsed_seconds.back(),
                   ep, result.episode_rewards.back(), epsilon, ep_terms,
                   steps, have_loss ? &critic_loss : nullptr);
    if (config.verbose && (ep + 1) % 10 == 0) {
      HEAD_LOG(Info) << agent.name() << " episode " << ep + 1 << "/"
                     << config.episodes
                     << " mean step reward=" << result.episode_rewards.back()
                     << " eps=" << epsilon;
    }
  }
  result.total_seconds = result.episode_elapsed_seconds.back();
  ComputeConvergence(result, config.episodes);
  return result;
}

RlTrainResult TrainAgent(PamdpAgent& agent, parallel::EnvPool& envs,
                         const RlTrainConfig& config) {
  HEAD_CHECK_GT(config.episodes, 0);
  const int k = envs.size();
  // The learner consumes its own stream; rollout noise comes from the
  // per-episode SplitMix streams inside the EnvPool, so learner and actors
  // never contend for one generator.
  Rng learner_rng(config.seed);
  RlTrainResult result;
  result.episode_rewards.reserve(config.episodes);
  result.episode_elapsed_seconds.reserve(config.episodes);
  const auto start = std::chrono::steady_clock::now();
  parallel::StripedTransitionBuffer buffer(k);
  TrainTelemetry& telemetry = TrainTelemetry::Get();
  HistogramDeltaMean critic_loss_window(CriticLossHistogram());

  size_t next_lr_decay = 0;
  for (int round_start = 0; round_start < config.episodes;
       round_start += k) {
    const int round = std::min(k, config.episodes - round_start);
    // Schedules advance at round granularity: parameters are frozen within
    // a round, so the decay that the serial loop would have applied mid-
    // round lands at the round boundary instead. Deterministic for fixed K.
    if (next_lr_decay < config.lr_decay_at_fractions.size() &&
        round_start >= config.lr_decay_at_fractions[next_lr_decay] *
                           config.episodes) {
      agent.ScaleLearningRate(config.lr_decay_factor);
      ++next_lr_decay;
    }

    HEAD_SPAN("rl.train.round");
    parallel::EnvPool::RolloutOptions opts;
    opts.seed_base = config.seed;
    opts.max_steps_per_episode = config.max_steps_per_episode;
    opts.epsilons.resize(round);
    for (int j = 0; j < round; ++j) {
      opts.epsilons[j] = EpsilonAt(config, round_start + j);
    }
    opts.transitions = &buffer;
    const std::vector<parallel::EnvPool::EpisodeResult> episodes =
        envs.RunEpisodes(agent, round_start, round, opts);

    telemetry.episodes.Add(round);
    telemetry.epsilon.Set(opts.epsilons.back());
    for (const parallel::EnvPool::EpisodeResult& ep : episodes) {
      ObserveEpisodeTelemetry(telemetry, ep.reward_sum, ep.terms, ep.steps);
      result.episode_rewards.push_back(ep.reward_sum /
                                       std::max(ep.steps, 1));
    }

    // Learning phase: drain in episode order and replay — one Remember +
    // one Update per transition, exactly the serial loop's cadence.
    for (auto& [index, steps] : buffer.DrainOrdered()) {
      (void)index;
      for (Transition& t : steps) {
        AgentAction action;
        action.behavior = t.behavior;
        action.params = std::move(t.params);
        action.maneuver.lane_change = BehaviorToLaneChange(t.behavior);
        agent.Remember(t.state, action, t.reward, t.next_state, t.terminal);
        agent.Update(learner_rng);
      }
    }

    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    for (int j = 0; j < round; ++j) {
      result.episode_elapsed_seconds.push_back(elapsed);
    }
    // Parameters advance once per round, so the round's critic-loss window
    // is shared by every episode row of the round.
    double critic_loss = 0.0;
    const bool have_loss = critic_loss_window.Sample(&critic_loss);
    for (int j = 0; j < round; ++j) {
      const parallel::EnvPool::EpisodeResult& ep = episodes[j];
      AppendCurveRow(config.timeseries, elapsed, round_start + j,
                     ep.reward_sum / std::max(ep.steps, 1),
                     opts.epsilons[j], ep.terms, ep.steps,
                     have_loss ? &critic_loss : nullptr);
    }
    if (config.verbose) {
      HEAD_LOG(Info) << agent.name() << " episodes " << round_start + round
                     << "/" << config.episodes << " (rounds of " << k
                     << ") mean step reward="
                     << result.episode_rewards.back()
                     << " eps=" << opts.epsilons.back();
    }
  }
  result.total_seconds = result.episode_elapsed_seconds.back();
  ComputeConvergence(result, config.episodes);
  return result;
}

namespace {

/// Folds one episode's summary into the running stats. Per-step rewards are
/// summed within an episode first and episode sums are added in episode
/// order, so the serial and pooled evaluators accumulate in the same order
/// and produce bitwise-identical statistics.
void FoldEpisode(RewardStats& stats, double& sum,
                 const parallel::EnvPool::EpisodeResult& ep) {
  stats.min_reward = std::min(stats.min_reward, ep.min_step_reward);
  stats.max_reward = std::max(stats.max_reward, ep.max_step_reward);
  sum += ep.reward_sum;
  stats.steps += ep.steps;
  if (ep.collision) ++stats.collisions;
}

}  // namespace

RewardStats EvaluateAgent(PamdpAgent& agent, DrivingEnv& env, int episodes,
                          uint64_t seed_base, int max_steps_per_episode) {
  HEAD_CHECK_GT(max_steps_per_episode, 0);
  // Evaluation is pure inference: no gradient graph should be recorded for
  // any forward pass below.
  const nn::NoGradGuard no_grad;
  RewardStats stats;
  stats.min_reward = std::numeric_limits<double>::infinity();
  stats.max_reward = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (int ep = 0; ep < episodes; ++ep) {
    parallel::EnvPool::EpisodeResult result;
    result.index = ep;
    if (obs::RecordingEnabled()) {
      obs::EpisodeContext ctx;
      ctx.policy = agent.name();
      ctx.seed = SplitMix(seed_base, 2 * static_cast<uint64_t>(ep));
      ctx.episode_index = ep;
      obs::BeginEpisode(ctx);
    }
    sim::EpisodeStatus status = sim::EpisodeStatus::kRunning;
    Rng rng(SplitMix(seed_base, 2 * static_cast<uint64_t>(ep) + 1));
    AugmentedState state =
        env.Reset(SplitMix(seed_base, 2 * static_cast<uint64_t>(ep)));
    while (result.steps < max_steps_per_episode) {
      const AgentAction action = agent.Act(state, /*epsilon=*/0.0, rng);
      if (obs::RecordingEnabled()) {
        obs::ScratchRecord().rng_cursor = rng.draws();
      }
      const DrivingEnv::StepOutcome outcome = env.Step(action.maneuver);
      const double r = outcome.reward.total;
      result.reward_sum += r;
      result.min_step_reward = std::min(result.min_step_reward, r);
      result.max_step_reward = std::max(result.max_step_reward, r);
      ++result.steps;
      state = outcome.next_state;
      status = outcome.status;
      if (outcome.done) {
        result.collision = outcome.status == sim::EpisodeStatus::kCollision;
        break;
      }
    }
    if (obs::RecordingEnabled()) obs::EndEpisode(sim::ToEpisodeEnd(status));
    FoldEpisode(stats, sum, result);
  }
  stats.avg_reward = stats.steps > 0 ? sum / stats.steps : 0.0;
  return stats;
}

RewardStats EvaluateAgent(PamdpAgent& agent, parallel::EnvPool& envs,
                          int episodes, uint64_t seed_base,
                          int max_steps_per_episode) {
  HEAD_CHECK_GT(max_steps_per_episode, 0);
  parallel::EnvPool::RolloutOptions opts;
  opts.seed_base = seed_base;
  opts.max_steps_per_episode = max_steps_per_episode;
  const std::vector<parallel::EnvPool::EpisodeResult> results =
      envs.RunEpisodes(agent, /*first_index=*/0, episodes, opts);
  RewardStats stats;
  stats.min_reward = std::numeric_limits<double>::infinity();
  stats.max_reward = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (const parallel::EnvPool::EpisodeResult& ep : results) {
    FoldEpisode(stats, sum, ep);
  }
  stats.avg_reward = stats.steps > 0 ? sum / stats.steps : 0.0;
  return stats;
}

}  // namespace head::rl
