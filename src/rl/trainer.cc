#include "rl/trainer.h"

#include <algorithm>
#include <chrono>
#include <limits>

#include "common/check.h"
#include "common/logging.h"

namespace head::rl {

RlTrainResult TrainAgent(PamdpAgent& agent, DrivingEnv& env,
                         const RlTrainConfig& config) {
  HEAD_CHECK_GT(config.episodes, 0);
  Rng rng(config.seed);
  RlTrainResult result;
  const auto start = std::chrono::steady_clock::now();
  const double decay_episodes =
      std::max(1.0, config.epsilon_decay_fraction * config.episodes);

  size_t next_lr_decay = 0;
  for (int ep = 0; ep < config.episodes; ++ep) {
    if (next_lr_decay < config.lr_decay_at_fractions.size() &&
        ep >= config.lr_decay_at_fractions[next_lr_decay] *
                  config.episodes) {
      agent.ScaleLearningRate(config.lr_decay_factor);
      ++next_lr_decay;
    }
    const double frac = std::min(1.0, ep / decay_episodes);
    const double epsilon =
        config.epsilon_start +
        frac * (config.epsilon_end - config.epsilon_start);

    AugmentedState state = env.Reset(config.seed * 7919 + ep);
    double ep_reward = 0.0;
    int steps = 0;
    while (steps < config.max_steps_per_episode) {
      const AgentAction action = agent.Act(state, epsilon, rng);
      const DrivingEnv::StepOutcome outcome = env.Step(action.maneuver);
      agent.Remember(state, action, outcome.reward.total, outcome.next_state,
                     outcome.done);
      agent.Update(rng);
      ep_reward += outcome.reward.total;
      ++steps;
      state = outcome.next_state;
      if (outcome.done) break;
    }
    result.episode_rewards.push_back(ep_reward / std::max(steps, 1));
    result.episode_elapsed_seconds.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
    if (config.verbose && (ep + 1) % 10 == 0) {
      HEAD_LOG(Info) << agent.name() << " episode " << ep + 1 << "/"
                     << config.episodes
                     << " mean step reward=" << result.episode_rewards.back()
                     << " eps=" << epsilon;
    }
  }
  result.total_seconds = result.episode_elapsed_seconds.back();

  // Convergence time: first time the trailing-window mean reaches 95% of
  // the best trailing-window mean (rewards can be negative; normalize by
  // the observed range).
  const int window = std::min<int>(20, config.episodes);
  std::vector<double> trailing;
  for (size_t e = window - 1; e < result.episode_rewards.size(); ++e) {
    double s = 0.0;
    for (int k = 0; k < window; ++k) s += result.episode_rewards[e - k];
    trailing.push_back(s / window);
  }
  const double best = *std::max_element(trailing.begin(), trailing.end());
  const double worst = *std::min_element(trailing.begin(), trailing.end());
  const double threshold = best - 0.05 * std::max(best - worst, 1e-9);
  result.convergence_seconds = result.total_seconds;
  for (size_t i = 0; i < trailing.size(); ++i) {
    if (trailing[i] >= threshold) {
      result.convergence_seconds =
          result.episode_elapsed_seconds[i + window - 1];
      break;
    }
  }
  return result;
}

RewardStats EvaluateAgent(PamdpAgent& agent, DrivingEnv& env, int episodes,
                          uint64_t seed_base) {
  Rng rng(seed_base);
  RewardStats stats;
  stats.min_reward = std::numeric_limits<double>::infinity();
  stats.max_reward = -std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (int ep = 0; ep < episodes; ++ep) {
    AugmentedState state = env.Reset(seed_base * 104729 + ep);
    while (true) {
      const AgentAction action = agent.Act(state, /*epsilon=*/0.0, rng);
      const DrivingEnv::StepOutcome outcome = env.Step(action.maneuver);
      const double r = outcome.reward.total;
      stats.min_reward = std::min(stats.min_reward, r);
      stats.max_reward = std::max(stats.max_reward, r);
      sum += r;
      ++stats.steps;
      state = outcome.next_state;
      if (outcome.done) {
        if (outcome.status == sim::EpisodeStatus::kCollision) {
          ++stats.collisions;
        }
        break;
      }
    }
  }
  stats.avg_reward = stats.steps > 0 ? sum / stats.steps : 0.0;
  return stats;
}

}  // namespace head::rl
