#include "rl/nets.h"

#include "common/check.h"
#include "nn/plan.h"

namespace head::rl {

namespace {

/// Stacks the h (or f) blocks of B augmented states row-wise into one
/// ((B·rows)×4) tensor, so a branch encoder can reduce the whole minibatch
/// in a single pass.
nn::Tensor StackBlocks(const std::vector<const AugmentedState*>& batch,
                       bool h_block) {
  HEAD_CHECK(!batch.empty());
  const nn::Tensor& first = h_block ? batch[0]->h : batch[0]->f;
  const int rows = first.rows();
  const int cols = first.cols();
  nn::Tensor stacked(static_cast<int>(batch.size()) * rows, cols);
  double* dst = stacked.data().data();
  for (const AugmentedState* s : batch) {
    const nn::Tensor& block = h_block ? s->h : s->f;
    HEAD_CHECK_EQ(block.rows(), rows);
    HEAD_CHECK_EQ(block.cols(), cols);
    for (int i = 0; i < block.size(); ++i) *dst++ = block[i];
  }
  return stacked;
}

}  // namespace

nn::Var XNet::ForwardBatch(
    const std::vector<const AugmentedState*>& batch) const {
  HEAD_CHECK(!batch.empty());
  std::vector<nn::Var> rows;
  rows.reserve(batch.size());
  for (const AugmentedState* s : batch) rows.push_back(Forward(*s));
  return nn::ConcatRows(rows);
}

// Feeders are only reachable through PlanCapturable() == true overrides.
void XNet::AppendPlanInputs(const AugmentedState&,
                            std::vector<nn::Tensor>*) const {
  HEAD_CHECK(false);
}
void XNet::AppendPlanInputsBatch(const std::vector<const AugmentedState*>&,
                                 std::vector<nn::Tensor>*) const {
  HEAD_CHECK(false);
}
void QNet::AppendPlanInputs(const AugmentedState&,
                            std::vector<nn::Tensor>*) const {
  HEAD_CHECK(false);
}
void QNet::AppendPlanInputsBatch(const std::vector<const AugmentedState*>&,
                                 std::vector<nn::Tensor>*) const {
  HEAD_CHECK(false);
}

nn::Var QNet::ForwardBatch(const std::vector<const AugmentedState*>& batch,
                           const nn::Var& x) const {
  HEAD_CHECK(!batch.empty());
  HEAD_CHECK_EQ(x.value().rows(), static_cast<int>(batch.size()));
  std::vector<nn::Var> rows;
  rows.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const int r = static_cast<int>(i);
    rows.push_back(Forward(*batch[i], nn::SliceRows(x, r, r + 1)));
  }
  return nn::ConcatRows(rows);
}

BranchEncoder::BranchEncoder(int rows, int hidden, Rng& rng)
    : rows_(rows),
      l1_(perception::kFeatureDim, hidden, rng),
      l2_(hidden, 1, rng) {
  // The per-vehicle reduction ends in single-unit ReLUs (Eq. 24/26); start
  // their biases positive so the units begin alive — a dead unit here wipes
  // out the whole branch's state information and never recovers.
  for (nn::Var p : {l1_.Params()[1], l2_.Params()[1]}) {
    nn::Tensor& b = p.mutable_value();
    for (int i = 0; i < b.size(); ++i) b[i] = 0.1;
  }
}

nn::Var BranchEncoder::Forward(const nn::Tensor& block) const {
  return ForwardStacked(block, /*batch=*/1);
}

nn::Var BranchEncoder::ForwardStacked(const nn::Tensor& blocks,
                                      int batch) const {
  HEAD_CHECK_EQ(blocks.rows(), batch * rows_);
  // PlanInput ≡ Constant outside capture; under PdqnAgent's plan capture it
  // becomes the replay slot the stacked blocks are re-fed through.
  const nn::Var x = nn::PlanInput(blocks);
  // LeakyReLU in place of the paper's ReLU: the reduction to one scalar per
  // vehicle makes plain ReLU units die irrecoverably during RL training
  // (observed empirically), freezing the whole branch; the leaky slope
  // preserves the architecture while keeping gradients alive.
  // Fused affine+leaky-relu nodes (see nn::AffineAct).
  const nn::Var h = l1_.Forward(x, nn::FusedAct::kLeakyRelu);  // ((B·rows)×hidden)
  const nn::Var e = l2_.Forward(h, nn::FusedAct::kLeakyRelu);  // ((B·rows)×1)
  return nn::Reshape(e, batch, rows_);              // (B×rows)
}

std::vector<nn::Var> BranchEncoder::Params() const {
  std::vector<nn::Var> p = l1_.Params();
  for (const nn::Var& v : l2_.Params()) p.push_back(v);
  return p;
}

BpXNet::BpXNet(int hidden, double a_max, Rng& rng)
    : a_max_(a_max),
      h_branch_(kStateHRows, hidden, rng),
      f_branch_(kStateFRows, hidden, rng),
      out_(kStateHRows + kStateFRows, kNumBehaviors, rng) {
  // Small output init ⇒ initial accelerations near 0 (tanh unsaturated).
  nn::Tensor& w = out_.Params()[0].mutable_value();
  for (int i = 0; i < w.size(); ++i) w[i] *= 0.1;
}

nn::Var BpXNet::Forward(const AugmentedState& s) const {
  return ForwardBatch({&s});
}

nn::Var BpXNet::ForwardBatch(
    const std::vector<const AugmentedState*>& batch) const {
  const int b = static_cast<int>(batch.size());
  const nn::Var merged = nn::ConcatCols(
      {h_branch_.ForwardStacked(StackBlocks(batch, /*h_block=*/true), b),
       f_branch_.ForwardStacked(StackBlocks(batch, /*h_block=*/false),
                                b)});                      // (B×13)
  return nn::Scale(out_.Forward(merged, nn::FusedAct::kTanh), a_max_);  // Eq. (25)
}

void BpXNet::AppendPlanInputs(const AugmentedState& s,
                              std::vector<nn::Tensor>* inputs) const {
  const std::vector<const AugmentedState*> one{&s};
  AppendPlanInputsBatch(one, inputs);
}

void BpXNet::AppendPlanInputsBatch(
    const std::vector<const AugmentedState*>& batch,
    std::vector<nn::Tensor>* inputs) const {
  // Mirrors ForwardBatch's consumption order: h stack, then f stack.
  inputs->push_back(StackBlocks(batch, /*h_block=*/true));
  inputs->push_back(StackBlocks(batch, /*h_block=*/false));
}

std::vector<nn::Var> BpXNet::Params() const {
  std::vector<nn::Var> p = h_branch_.Params();
  for (const nn::Var& v : f_branch_.Params()) p.push_back(v);
  for (const nn::Var& v : out_.Params()) p.push_back(v);
  return p;
}

BpQNet::BpQNet(int hidden, Rng& rng)
    : h_branch_(kStateHRows, hidden, rng),
      f_branch_(kStateFRows, hidden, rng),
      x1_(kNumBehaviors, hidden, rng),
      x2_(hidden, kNumBehaviors, rng),
      fuse_(kStateHRows + kStateFRows + kNumBehaviors, hidden, rng),
      out_(hidden, kNumBehaviors, rng) {
  // Keep the 3-unit ReLU action branch alive at initialization too.
  for (nn::Var p : {x1_.Params()[1], x2_.Params()[1]}) {
    nn::Tensor& b = p.mutable_value();
    for (int i = 0; i < b.size(); ++i) b[i] = 0.1;
  }
}

nn::Var BpQNet::Forward(const AugmentedState& s, const nn::Var& x) const {
  return ForwardBatch({&s}, x);
}

nn::Var BpQNet::ForwardBatch(const std::vector<const AugmentedState*>& batch,
                             const nn::Var& x) const {
  const int b = static_cast<int>(batch.size());
  HEAD_CHECK_EQ(x.value().rows(), b);
  const nn::Var xb =
      x2_.Forward(x1_.Forward(x, nn::FusedAct::kLeakyRelu), nn::FusedAct::kLeakyRelu);
  const nn::Var merged = nn::ConcatCols(
      {h_branch_.ForwardStacked(StackBlocks(batch, /*h_block=*/true), b),
       f_branch_.ForwardStacked(StackBlocks(batch, /*h_block=*/false), b),
       xb});  // (B×16)
  return out_.Forward(fuse_.Forward(merged, nn::FusedAct::kLeakyRelu));
}

void BpQNet::AppendPlanInputs(const AugmentedState& s,
                              std::vector<nn::Tensor>* inputs) const {
  const std::vector<const AugmentedState*> one{&s};
  AppendPlanInputsBatch(one, inputs);
}

void BpQNet::AppendPlanInputsBatch(
    const std::vector<const AugmentedState*>& batch,
    std::vector<nn::Tensor>* inputs) const {
  // The x branch consumes the caller-fed x node first; the state stacks
  // follow in ForwardBatch's ConcatCols order: h, then f.
  inputs->push_back(StackBlocks(batch, /*h_block=*/true));
  inputs->push_back(StackBlocks(batch, /*h_block=*/false));
}

std::vector<nn::Var> BpQNet::Params() const {
  std::vector<nn::Var> p = h_branch_.Params();
  for (const nn::Var& v : f_branch_.Params()) p.push_back(v);
  for (const nn::Var& v : x1_.Params()) p.push_back(v);
  for (const nn::Var& v : x2_.Params()) p.push_back(v);
  for (const nn::Var& v : fuse_.Params()) p.push_back(v);
  for (const nn::Var& v : out_.Params()) p.push_back(v);
  return p;
}

FlatXNet::FlatXNet(int hidden, double a_max, Rng& rng)
    : a_max_(a_max),
      mlp_({kFlatStateDim, 2 * hidden, hidden, kNumBehaviors},
           nn::Mlp::Activation::kLeakyRelu, rng) {
  std::vector<nn::Var> params = mlp_.Params();
  nn::Tensor& w = params[params.size() - 2].mutable_value();
  for (int i = 0; i < w.size(); ++i) w[i] *= 0.1;
}

nn::Var FlatXNet::Forward(const AugmentedState& s) const {
  const nn::Var flat = nn::PlanInput(FlattenState(s));
  return nn::Scale(nn::Tanh(mlp_.Forward(flat)), a_max_);
}

nn::Var FlatXNet::ForwardBatch(
    const std::vector<const AugmentedState*>& batch) const {
  const nn::Var flat = nn::PlanInput(FlattenStates(batch));
  return nn::Scale(nn::Tanh(mlp_.Forward(flat)), a_max_);
}

void FlatXNet::AppendPlanInputs(const AugmentedState& s,
                                std::vector<nn::Tensor>* inputs) const {
  inputs->push_back(FlattenState(s));
}

void FlatXNet::AppendPlanInputsBatch(
    const std::vector<const AugmentedState*>& batch,
    std::vector<nn::Tensor>* inputs) const {
  inputs->push_back(FlattenStates(batch));
}

std::vector<nn::Var> FlatXNet::Params() const { return mlp_.Params(); }

FlatQNet::FlatQNet(int hidden, Rng& rng)
    : in_(kFlatStateDim + kNumBehaviors, 2 * hidden, rng),
      mid_(2 * hidden, hidden, rng),
      out_(hidden, kNumBehaviors, rng) {}

nn::Var FlatQNet::Forward(const AugmentedState& s, const nn::Var& x) const {
  // The wrong-weight-sharing structure the paper improves on: raw state
  // features and the action parameters enter one shared layer.
  const nn::Var joint = nn::ConcatCols({nn::PlanInput(FlattenState(s)), x});
  return out_.Forward(mid_.Forward(
      in_.Forward(joint, nn::FusedAct::kRelu), nn::FusedAct::kRelu));
}

nn::Var FlatQNet::ForwardBatch(const std::vector<const AugmentedState*>& batch,
                               const nn::Var& x) const {
  HEAD_CHECK_EQ(x.value().rows(), static_cast<int>(batch.size()));
  const nn::Var joint = nn::ConcatCols({nn::PlanInput(FlattenStates(batch)), x});
  return out_.Forward(mid_.Forward(
      in_.Forward(joint, nn::FusedAct::kRelu), nn::FusedAct::kRelu));
}

void FlatQNet::AppendPlanInputs(const AugmentedState& s,
                                std::vector<nn::Tensor>* inputs) const {
  inputs->push_back(FlattenState(s));
}

void FlatQNet::AppendPlanInputsBatch(
    const std::vector<const AugmentedState*>& batch,
    std::vector<nn::Tensor>* inputs) const {
  inputs->push_back(FlattenStates(batch));
}

std::vector<nn::Var> FlatQNet::Params() const {
  std::vector<nn::Var> p = in_.Params();
  for (const nn::Var& v : mid_.Params()) p.push_back(v);
  for (const nn::Var& v : out_.Params()) p.push_back(v);
  return p;
}

}  // namespace head::rl
