#include "rl/mp_dqn.h"

namespace head::rl {

MultiPassQNet::MultiPassQNet(int hidden, Rng& rng)
    : in_(kFlatStateDim + kNumBehaviors, 2 * hidden, rng),
      mid_(2 * hidden, hidden, rng),
      out_(hidden, kNumBehaviors, rng) {}

nn::Var MultiPassQNet::Forward(const AugmentedState& s,
                               const nn::Var& x) const {
  const nn::Var flat = nn::Var::Constant(FlattenState(s));
  std::vector<nn::Var> q_cols;
  q_cols.reserve(kNumBehaviors);
  for (int b = 0; b < kNumBehaviors; ++b) {
    // Mask x to the b-th parameter only: x ⊙ e_b (differentiable — the
    // gradient reaches exactly that parameter).
    nn::Tensor mask(1, kNumBehaviors);
    mask.At(0, b) = 1.0;
    const nn::Var masked = nn::Mul(x, nn::Var::Constant(mask));
    const nn::Var q_all = out_.Forward(nn::LeakyRelu(
        mid_.Forward(nn::LeakyRelu(
            in_.Forward(nn::ConcatCols({flat, masked}))))));
    q_cols.push_back(nn::SliceCols(q_all, b, b + 1));
  }
  return nn::ConcatCols(q_cols);
}

std::vector<nn::Var> MultiPassQNet::Params() const {
  std::vector<nn::Var> p = in_.Params();
  for (const nn::Var& v : mid_.Params()) p.push_back(v);
  for (const nn::Var& v : out_.Params()) p.push_back(v);
  return p;
}

std::unique_ptr<PdqnAgent> MakeMpDqnAgent(const PdqnConfig& config, Rng& rng) {
  return std::make_unique<PdqnAgent>(
      "MP-DQN", config,
      [config](Rng& r) {
        return std::make_unique<FlatXNet>(config.hidden, config.a_max, r);
      },
      [config](Rng& r) {
        return std::make_unique<MultiPassQNet>(config.hidden, r);
      },
      rng);
}

}  // namespace head::rl
