// RCU-style model publication for the decision service.
//
// A ModelSnapshot is one immutable published model version: deep-copied
// decision networks (and optionally a state predictor) whose Params never
// change after construction, plus this version's own static-plan caches.
// Plans bind replay graphs to the *live* Params they were captured against
// (nn/plan.h "external parents stay shared"), so plan caches can never be
// shared across versions — each snapshot compiles and owns its own.
//
// The ModelSnapshotRegistry is the publication point: a training thread
// calls Publish(online_x, online_q, predictor) and readers pick up the new
// version with a single shared_ptr copy under the registry mutex
// (Current()). The read serializes only with the publisher's pointer swap —
// the deep parameter copies happen before the critical section — and the
// batcher reads once per *batch*, so the lock amortizes over up to
// max_batch requests. (std::atomic<std::shared_ptr> would make the read
// lock-free, but libstdc++'s _Sp_atomic guards its pointer member with an
// embedded lock bit ThreadSanitizer cannot model, and a publication seam
// the race detector cannot verify is worth less than the ~40ns.) The
// registry keeps the last `keep` versions alive in a ring; pushing a version
// out of the ring *retires* it — Publish blocks until the retiree's
// in-flight batches drain (its WaitToken), which bounds publisher-observable
// staleness without ever pausing the serving path. Memory safety does not
// depend on the drain: every dispatched batch holds a shared_ptr to the
// snapshot it reads, so a retired version's storage survives until its last
// batch completes regardless.
//
// Batch shape discipline: DecideBatch/PredictBatch pad each batch up to the
// next power of two with snapshot-owned zero states, so at most
// log2(max_batch) plans exist per snapshot. Padding is sound because every
// kernel on these paths computes each output row with arithmetic that is
// independent of the other rows and of the total row count (the uniform-
// arithmetic GEMM contract, tested as packed-path row invariance), and both
// network families are row-independent per sample — a request's reply is
// bitwise identical whatever co-batched traffic it shared a forward with.
#ifndef HEAD_SERVE_SNAPSHOT_H_
#define HEAD_SERVE_SNAPSHOT_H_

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "nn/plan.h"
#include "parallel/thread_pool.h"
#include "perception/predictor.h"
#include "rl/nets.h"
#include "rl/pamdp.h"

namespace head::serve {

/// How the registry materializes a published version: fresh nets from the
/// same factories the agent used, then CopyParamsFrom the live source.
/// `make_predictor` may be empty when the deployment serves decisions only.
struct ModelFactories {
  std::function<std::unique_ptr<rl::XNet>(Rng&)> make_x;
  std::function<std::unique_ptr<rl::QNet>(Rng&)> make_q;
  std::function<std::unique_ptr<perception::StatePredictor>(Rng&)>
      make_predictor;
};

/// The greedy maneuver decision for one request: argmax behavior over the
/// critic's Q row plus the actor's acceleration for that behavior (and the
/// full Q/x rows for auditability).
struct DecisionOutput {
  int behavior = rl::kBehaviorKeep;
  double accel = 0.0;
  std::array<double, rl::kNumBehaviors> q{};
  std::array<double, rl::kNumBehaviors> params{};
};

class ModelSnapshot {
 public:
  /// Takes ownership of already-frozen nets. `predictor` may be null.
  /// Normally constructed by ModelSnapshotRegistry::Publish.
  ModelSnapshot(uint64_t version, std::unique_ptr<rl::XNet> x,
                std::unique_ptr<rl::QNet> q,
                std::unique_ptr<perception::StatePredictor> predictor);

  ModelSnapshot(const ModelSnapshot&) = delete;
  ModelSnapshot& operator=(const ModelSnapshot&) = delete;

  uint64_t version() const { return version_; }
  bool has_predictor() const { return predictor_ != nullptr; }

  /// One batched greedy forward (actor then critic) under NoGrad; writes
  /// states.size() outputs into `out`. Replays this snapshot's compiled
  /// plan for the padded bucket size (captured on first use); falls back to
  /// eager execution when plans are disabled or the nets aren't capturable.
  /// Safe to call concurrently from any number of threads.
  void DecideBatch(const std::vector<const rl::AugmentedState*>& states,
                   DecisionOutput* out) const;

  /// Batched one-step prediction; writes graphs.size() Predictions. Graphs
  /// of mixed history depth are grouped by z (a plan needs a fixed shape).
  /// Requires has_predictor().
  void PredictBatch(const std::vector<const perception::StGraph*>& graphs,
                    perception::Prediction* out) const;

  /// In-flight batch counter. The service dispatches every batch through
  /// ThreadPool::SubmitWithToken(&snapshot->inflight(), ...), so retirement
  /// waits on exactly this version's outstanding work.
  parallel::WaitToken& inflight() const { return inflight_; }

 private:
  bool DecisionPlansOn() const;

  const uint64_t version_;
  std::unique_ptr<rl::XNet> x_;
  std::unique_ptr<rl::QNet> q_;
  std::unique_ptr<perception::StatePredictor> predictor_;
  /// Padding row for decision batches: all-zero h/f blocks.
  rl::AugmentedState zero_state_;

  /// This version's plan caches (decide keyed by bucket, predict keyed by
  /// bucket<<32|z) plus the zero-graph padding rows per z. Guarded: batches
  /// race on first-use capture. Logically const — the snapshot's observable
  /// outputs never change.
  mutable std::mutex plan_mu_;
  mutable std::unordered_map<int, std::shared_ptr<const nn::ExecPlan>>
      decide_plans_;
  mutable std::unordered_map<int64_t, std::shared_ptr<const nn::ExecPlan>>
      predict_plans_;
  mutable std::unordered_map<int, std::unique_ptr<perception::StGraph>>
      zero_graphs_;

  mutable parallel::WaitToken inflight_;
};

class ModelSnapshotRegistry {
 public:
  /// `keep` >= 1 versions stay live after each Publish. `seed` feeds the
  /// factory Rng (the values are overwritten by CopyParamsFrom; the seed
  /// only decorrelates any internal factory draws).
  explicit ModelSnapshotRegistry(ModelFactories factories, size_t keep = 3,
                                 uint64_t seed = 0x5eedu);

  /// Deep-copies the live nets into a new immutable version, publishes it
  /// as Current(), and retires versions beyond `keep` — blocking until each
  /// retiree's in-flight batches drain. Returns the new snapshot (tests
  /// hold these to validate replies against historical versions). Safe to
  /// call concurrently with Current()/serving; Publish itself is expected
  /// from one training thread at a time.
  std::shared_ptr<const ModelSnapshot> Publish(
      const rl::XNet& x, const rl::QNet& q,
      const perception::StatePredictor* predictor = nullptr);

  /// Newest published version (null before the first Publish). One
  /// shared_ptr copy under the registry mutex; called once per batch. See
  /// the file header for why this is a mutex and not atomic<shared_ptr>.
  std::shared_ptr<const ModelSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  uint64_t current_version() const;
  std::vector<uint64_t> live_versions() const;

 private:
  ModelFactories factories_;
  const size_t keep_;

  mutable std::mutex mu_;  ///< guards ring_, next_version_, rng_, current_
  Rng rng_;
  std::deque<std::shared_ptr<const ModelSnapshot>> ring_;
  uint64_t next_version_ = 0;
  std::shared_ptr<const ModelSnapshot> current_;
};

}  // namespace head::serve

#endif  // HEAD_SERVE_SNAPSHOT_H_
