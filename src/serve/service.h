// Cross-client micro-batching decision service (the transport seam is the
// SubmitDecision/SubmitPrediction → std::future API; a network frontend
// would sit in front of it and translate).
//
// Admission: a bounded queue with backpressure — submits beyond
// `queue_capacity` are rejected immediately (kRejected) rather than queued
// into unbounded latency. A single batcher thread collects requests of one
// kind until `max_batch` are waiting or `batch_window_us` has elapsed since
// the oldest admitted request, then dispatches one batched no-grad forward
// onto the shared ThreadPool and scatters the replies into the per-request
// futures. Requests whose deadline expired while queued complete as
// kDeadlineExceeded at batch-formation time without consuming model compute.
//
// Model hot-swap: every batch pins the registry's Current() snapshot via
// shared_ptr and dispatches under that snapshot's WaitToken, so a publisher
// swapping weights mid-flight never tears a batch — each reply is computed
// entirely against exactly one published version (reported back as
// `model_version`).
//
// Observability (src/obs): serve.request_latency / serve.batch_exec µs-scale
// histograms (p50/p95/p99), serve.batch_size histogram, serve.queue_depth
// gauge, serve.requests / replies / batches / rejected / deadline_missed /
// alloc_events counters, and a HEAD_PROF_SCOPE("serve.batch") profiler root
// over the replay hot path.
#ifndef HEAD_SERVE_SERVICE_H_
#define HEAD_SERVE_SERVICE_H_

#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/snapshot.h"

namespace head::serve {

enum class ServeStatus {
  kOk = 0,
  kRejected,          ///< admission queue full at submit time
  kDeadlineExceeded,  ///< deadline expired while queued
  kShutdown,          ///< service stopped before the request was served
};

const char* ServeStatusName(ServeStatus status);

struct DecisionRequest {
  rl::AugmentedState state;
  /// Latency budget in µs from submit; 0 uses ServeConfig::default_deadline_us
  /// (0 there too ⇒ no deadline).
  int64_t deadline_us = 0;
};

struct DecisionReply {
  ServeStatus status = ServeStatus::kOk;
  DecisionOutput output;
  uint64_t model_version = 0;  ///< snapshot that computed the reply (kOk only)
  double latency_s = 0.0;      ///< submit → reply, steady clock
};

struct PredictionRequest {
  perception::StGraph graph;
  int64_t deadline_us = 0;
};

struct PredictionReply {
  ServeStatus status = ServeStatus::kOk;
  perception::Prediction prediction{};
  uint64_t model_version = 0;
  double latency_s = 0.0;
};

struct ServeConfig {
  int max_batch = 32;            ///< dispatch at this many queued requests
  int64_t batch_window_us = 200; ///< …or this long after the oldest one
  int queue_capacity = 1024;     ///< admission bound across both kinds
  int64_t default_deadline_us = 0;  ///< 0 = no deadline
};

/// Fixed-capacity FIFO preallocated at construction. The admission bound is
/// part of the service contract (ServeConfig::queue_capacity), so the queue
/// can own all of its storage up front and never touch the allocator on the
/// submit path — std::deque cycles one 512-byte block allocation per couple
/// of queued requests at steady state. Callers must check size() against
/// capacity before push_back (SubmitDecision/SubmitPrediction reject first).
template <typename T>
class BoundedRing {
 public:
  explicit BoundedRing(size_t capacity) : slots_(capacity) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  T& front() { return slots_[head_]; }

  void push_back(T&& value) {
    size_t idx = head_ + size_;
    if (idx >= slots_.size()) idx -= slots_.size();
    slots_[idx] = std::move(value);
    ++size_;
  }

  void pop_front() {
    ++head_;
    if (head_ == slots_.size()) head_ = 0;
    --size_;
  }

 private:
  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

class DecisionService {
 public:
  /// `registry` must outlive the service and have a published Current()
  /// before the first request completes. Batches run on
  /// parallel::ThreadPool::Global().
  DecisionService(ModelSnapshotRegistry* registry, const ServeConfig& config);
  ~DecisionService();  ///< implies Shutdown()

  DecisionService(const DecisionService&) = delete;
  DecisionService& operator=(const DecisionService&) = delete;

  /// Admission: the future completes with kOk + the model outputs, or with
  /// kRejected (immediately, queue full), kDeadlineExceeded, or kShutdown.
  std::future<DecisionReply> SubmitDecision(DecisionRequest request);
  std::future<PredictionReply> SubmitPrediction(PredictionRequest request);

  /// Stops admission, completes queued requests as kShutdown, and drains
  /// in-flight batches. Idempotent.
  void Shutdown();

  int64_t queue_depth() const;
  const ServeConfig& config() const { return config_; }

  /// Test seam: while paused the batcher dispatches nothing, so tests can
  /// deterministically fill the admission queue (rejection path) or let
  /// per-request deadlines lapse.
  void SetPausedForTest(bool paused);

 private:
  template <typename Request, typename Reply>
  struct Pending {
    Request request;
    std::promise<Reply> promise;
    double submit_s = 0.0;
    double deadline_s = 0.0;  ///< absolute, 0 = none
  };
  using PendingDecision = Pending<DecisionRequest, DecisionReply>;
  using PendingPrediction = Pending<PredictionRequest, PredictionReply>;

  void BatcherLoop();
  /// Collects one batch of the kind whose oldest request is oldest, honoring
  /// the window/max_batch cut; returns false when stopping with empty queues.
  bool FormAndDispatchLocked(std::unique_lock<std::mutex>& lock);

  void DispatchDecisions(std::shared_ptr<const ModelSnapshot> snap,
                         std::shared_ptr<std::vector<PendingDecision>> batch);
  void DispatchPredictions(
      std::shared_ptr<const ModelSnapshot> snap,
      std::shared_ptr<std::vector<PendingPrediction>> batch);
  void ExecuteDecisionBatch(const ModelSnapshot& snap,
                            std::vector<PendingDecision>& batch);
  void ExecutePredictionBatch(const ModelSnapshot& snap,
                              std::vector<PendingPrediction>& batch);

  ModelSnapshotRegistry* const registry_;
  const ServeConfig config_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  BoundedRing<PendingDecision> decision_queue_;
  BoundedRing<PendingPrediction> prediction_queue_;
  bool stop_ = false;
  bool paused_ = false;

  /// Drains *all* in-flight batches at Shutdown (per-snapshot tokens drain
  /// per-version; this one covers the service lifetime).
  parallel::WaitToken inflight_;

  std::thread batcher_;
};

}  // namespace head::serve

#endif  // HEAD_SERVE_SERVICE_H_
