#include "serve/snapshot.h"

#include <utility>

#include "common/check.h"
#include "nn/autograd.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace head::serve {

namespace {

/// Power-of-two bucket caps the number of plans a snapshot compiles at
/// log2(largest batch) while wasting at most 2× forward work on a ragged
/// tail batch.
int BucketFor(int n) {
  int b = 1;
  while (b < n) b <<= 1;
  return b;
}

/// Plans per cache map; buckets beyond the cap run eagerly. Power-of-two
/// keys make 8 enough for batches up to 128.
constexpr size_t kMaxPlansPerCache = 8;

int ArgMaxRow(const nn::Tensor& t, int row) {
  int best = 0;
  for (int c = 1; c < t.cols(); ++c) {
    if (t.At(row, c) > t.At(row, best)) best = c;
  }
  return best;
}

}  // namespace

ModelSnapshot::ModelSnapshot(uint64_t version, std::unique_ptr<rl::XNet> x,
                             std::unique_ptr<rl::QNet> q,
                             std::unique_ptr<perception::StatePredictor> predictor)
    : version_(version),
      x_(std::move(x)),
      q_(std::move(q)),
      predictor_(std::move(predictor)) {
  HEAD_CHECK(x_ != nullptr);
  HEAD_CHECK(q_ != nullptr);
  zero_state_.h = nn::Tensor::Zeros(rl::kStateHRows, rl::kStateCols);
  zero_state_.f = nn::Tensor::Zeros(rl::kStateFRows, rl::kStateCols);
}

bool ModelSnapshot::DecisionPlansOn() const {
  return nn::PlansEnabled() && x_->PlanCapturable() && q_->PlanCapturable();
}

void ModelSnapshot::DecideBatch(
    const std::vector<const rl::AugmentedState*>& states,
    DecisionOutput* out) const {
  const int n = static_cast<int>(states.size());
  HEAD_CHECK_GT(n, 0);
  HEAD_SPAN("serve.decide");
  nn::ResetTape();  // recycle the previous batch's nodes on this thread
  const nn::NoGradGuard no_grad;

  nn::Tensor xv;  // (B×3) accelerations
  nn::Tensor qv;  // (B×3) action values
  bool have = false;
  if (DecisionPlansOn()) {
    const int bucket = BucketFor(n);
    std::vector<const rl::AugmentedState*> padded = states;
    padded.resize(static_cast<size_t>(bucket), &zero_state_);
    std::shared_ptr<const nn::ExecPlan> plan;
    {
      std::lock_guard<std::mutex> lock(plan_mu_);
      const auto it = decide_plans_.find(bucket);
      if (it != decide_plans_.end()) {
        plan = it->second;
      } else if (decide_plans_.size() < kMaxPlansPerCache) {
        // Capture runs the step eagerly as it records — its outputs serve
        // this batch; replay starts at the next batch of this bucket.
        nn::PlanCapture capture;
        const nn::Var x = x_->ForwardBatch(padded);
        const nn::Var q = q_->ForwardBatch(padded, x);
        xv = x.value();
        qv = q.value();
        have = true;
        decide_plans_.emplace(bucket, capture.Finish({x, q}));
      }
    }
    if (plan != nullptr) {
      // Slot order follows capture-time PlanInput creation: the actor's
      // state tensors first, then the critic's (x flows as a graph edge).
      std::vector<nn::Tensor> in;
      x_->AppendPlanInputsBatch(padded, &in);
      q_->AppendPlanInputsBatch(padded, &in);
      const std::vector<const nn::Tensor*> outs = plan->Replay(std::move(in));
      xv = *outs[0];
      qv = *outs[1];
      have = true;
    }
  }
  if (!have) {
    const nn::Var x = x_->ForwardBatch(states);
    const nn::Var q = q_->ForwardBatch(states, x);
    xv = x.value();
    qv = q.value();
  }

  HEAD_CHECK_GE(xv.rows(), n);
  HEAD_CHECK_EQ(xv.cols(), rl::kNumBehaviors);
  HEAD_CHECK_EQ(qv.cols(), rl::kNumBehaviors);
  for (int i = 0; i < n; ++i) {
    DecisionOutput& d = out[i];
    d.behavior = ArgMaxRow(qv, i);
    d.accel = xv.At(i, d.behavior);
    for (int c = 0; c < rl::kNumBehaviors; ++c) {
      d.q[c] = qv.At(i, c);
      d.params[c] = xv.At(i, c);
    }
  }
}

void ModelSnapshot::PredictBatch(
    const std::vector<const perception::StGraph*>& graphs,
    perception::Prediction* out) const {
  const int n = static_cast<int>(graphs.size());
  HEAD_CHECK_GT(n, 0);
  HEAD_CHECK(predictor_ != nullptr);
  HEAD_SPAN("serve.predict");
  nn::ResetTape();
  const nn::NoGradGuard no_grad;
  const perception::FeatureScale& scale = predictor_->scale();

  // Group requests by history depth z — a plan's shape is fixed per z, and
  // the vectorized LST-GAT pass requires a uniform-z batch anyway. Serving
  // deployments see a single z, so this is one group in practice.
  std::vector<std::pair<int, std::vector<int>>> groups;
  for (int i = 0; i < n; ++i) {
    const int z = graphs[i]->z();
    auto it = groups.begin();
    for (; it != groups.end() && it->first != z; ++it) {
    }
    if (it == groups.end()) {
      groups.emplace_back(z, std::vector<int>{});
      it = groups.end() - 1;
    }
    it->second.push_back(i);
  }

  const bool use_plans = nn::PlansEnabled() && predictor_->PlanCapturable();
  for (const auto& [z, idxs] : groups) {
    const int m = static_cast<int>(idxs.size());
    std::vector<const perception::StGraph*> group;
    group.reserve(idxs.size());
    for (const int i : idxs) group.push_back(graphs[i]);

    nn::Tensor value;  // (bucket·6×3) scaled residuals, sample-major
    bool have = false;
    if (use_plans) {
      const int bucket = BucketFor(m);
      std::shared_ptr<const nn::ExecPlan> plan;
      const perception::StGraph* zero_graph = nullptr;
      {
        std::lock_guard<std::mutex> lock(plan_mu_);
        auto& zg = zero_graphs_[z];
        if (zg == nullptr) {
          zg = std::make_unique<perception::StGraph>();
          zg->steps.resize(static_cast<size_t>(z));
        }
        zero_graph = zg.get();
      }
      std::vector<const perception::StGraph*> padded = group;
      padded.resize(static_cast<size_t>(bucket), zero_graph);
      const int64_t key = (static_cast<int64_t>(bucket) << 32) | z;
      {
        std::lock_guard<std::mutex> lock(plan_mu_);
        const auto it = predict_plans_.find(key);
        if (it != predict_plans_.end()) {
          plan = it->second;
        } else if (predict_plans_.size() < kMaxPlansPerCache) {
          nn::PlanCapture capture;
          const nn::Var v = predictor_->ForwardScaledBatch(padded);
          value = v.value();
          have = true;
          predict_plans_.emplace(key, capture.Finish({v}));
        }
      }
      if (plan != nullptr) {
        const obs::ScopedSpan span(predictor_->ForwardSpanName());
        std::vector<nn::Tensor> in;
        predictor_->AppendPlanInputsBatch(padded, &in);
        value = *plan->Replay(std::move(in))[0];
        have = true;
      }
    }
    if (!have) value = predictor_->ForwardScaledBatch(group).value();

    HEAD_CHECK_GE(value.rows(), m * perception::kNumAreas);
    HEAD_CHECK_EQ(value.cols(), 3);
    for (int j = 0; j < m; ++j) {
      const perception::StGraph& g = *group[j];
      perception::Prediction& pred = out[idxs[j]];
      for (int i = 0; i < perception::kNumAreas; ++i) {
        const int row = j * perception::kNumAreas + i;
        pred[i].d_lat_m =
            g.target_rel_current[i][0] + value.At(row, 0) / scale.lat;
        pred[i].d_lon_m =
            g.target_rel_current[i][1] + value.At(row, 1) / scale.lon;
        pred[i].v_rel_mps =
            g.target_rel_current[i][2] + value.At(row, 2) / scale.v;
      }
    }
  }
}

ModelSnapshotRegistry::ModelSnapshotRegistry(ModelFactories factories,
                                             size_t keep, uint64_t seed)
    : factories_(std::move(factories)), keep_(keep), rng_(seed) {
  HEAD_CHECK_GE(keep_, 1u);
  HEAD_CHECK(factories_.make_x != nullptr);
  HEAD_CHECK(factories_.make_q != nullptr);
}

std::shared_ptr<const ModelSnapshot> ModelSnapshotRegistry::Publish(
    const rl::XNet& x, const rl::QNet& q,
    const perception::StatePredictor* predictor) {
  HEAD_PROF_SCOPE("serve.publish");
  // Deep copies run outside the ring lock — weight copies are the expensive
  // part of a publish and must not block Current() readers' lock-free path
  // (they don't) nor live_versions() introspection (they would).
  Rng fork(0);
  {
    std::lock_guard<std::mutex> lock(mu_);
    fork = rng_.Fork();
  }
  std::unique_ptr<rl::XNet> x_copy = factories_.make_x(fork);
  x_copy->CopyParamsFrom(x);
  std::unique_ptr<rl::QNet> q_copy = factories_.make_q(fork);
  q_copy->CopyParamsFrom(q);
  std::unique_ptr<perception::StatePredictor> pred_copy;
  if (predictor != nullptr) {
    HEAD_CHECK(factories_.make_predictor != nullptr);
    pred_copy = factories_.make_predictor(fork);
    pred_copy->CopyParamsFrom(*predictor);
  }

  std::shared_ptr<const ModelSnapshot> snap;
  std::vector<std::shared_ptr<const ModelSnapshot>> retired;
  size_t live = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap = std::make_shared<const ModelSnapshot>(
        ++next_version_, std::move(x_copy), std::move(q_copy),
        std::move(pred_copy));
    ring_.push_back(snap);
    current_ = snap;
    while (ring_.size() > keep_) {
      retired.push_back(std::move(ring_.front()));
      ring_.pop_front();
    }
    live = ring_.size();
  }

  static obs::Counter& published = obs::GetCounter("serve.snapshots_published");
  static obs::Counter& retired_count =
      obs::GetCounter("serve.snapshots_retired");
  static obs::Gauge& live_gauge = obs::GetGauge("serve.live_snapshots");
  published.Add();
  live_gauge.Set(static_cast<double>(live));
  for (const std::shared_ptr<const ModelSnapshot>& r : retired) {
    // Drain outside the lock: a retiree's in-flight batches keep their own
    // shared_ptr, so this wait is a staleness bound, not a safety need.
    r->inflight().Wait();
    retired_count.Add();
  }
  return snap;
}

uint64_t ModelSnapshotRegistry::current_version() const {
  const std::shared_ptr<const ModelSnapshot> snap = Current();
  return snap == nullptr ? 0 : snap->version();
}

std::vector<uint64_t> ModelSnapshotRegistry::live_versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> versions;
  versions.reserve(ring_.size());
  for (const std::shared_ptr<const ModelSnapshot>& s : ring_) {
    versions.push_back(s->version());
  }
  return versions;
}

}  // namespace head::serve
