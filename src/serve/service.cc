#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/check.h"
#include "nn/arena.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/span.h"

namespace head::serve {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Histogram& BatchSizeHistogram() {
  // Linear 1..128 buckets: batch sizes are small integers and the mean /
  // percentiles of this histogram are the batching-efficiency signal.
  return obs::GetHistogram("serve.batch_size",
                           obs::CachedLinearBounds(1.0, 128.0, 1.0));
}

/// A future that is already complete with `status` — the no-compute exits
/// (rejection, shutdown-at-submit).
template <typename Reply>
std::future<Reply> ReadyReply(ServeStatus status, double latency_s) {
  std::promise<Reply> promise;
  Reply reply;
  reply.status = status;
  reply.latency_s = latency_s;
  std::future<Reply> future = promise.get_future();
  promise.set_value(std::move(reply));
  return future;
}

/// Completes `pending` without model output (rejection / deadline /
/// shutdown paths).
template <typename Pending, typename Reply>
void CompleteWithStatus(Pending& pending, ServeStatus status, double now) {
  Reply reply;
  reply.status = status;
  reply.latency_s = now - pending.submit_s;
  pending.promise.set_value(std::move(reply));
}

}  // namespace

const char* ServeStatusName(ServeStatus status) {
  switch (status) {
    case ServeStatus::kOk:
      return "ok";
    case ServeStatus::kRejected:
      return "rejected";
    case ServeStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case ServeStatus::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

DecisionService::DecisionService(ModelSnapshotRegistry* registry,
                                 const ServeConfig& config)
    : registry_(registry),
      config_(config),
      // The admission bound spans both kinds, so either ring alone may hold
      // up to queue_capacity entries.
      decision_queue_(static_cast<size_t>(std::max(config.queue_capacity, 1))),
      prediction_queue_(
          static_cast<size_t>(std::max(config.queue_capacity, 1))) {
  HEAD_CHECK(registry_ != nullptr);
  HEAD_CHECK_GE(config_.max_batch, 1);
  HEAD_CHECK_GE(config_.batch_window_us, 0);
  HEAD_CHECK_GE(config_.queue_capacity, 1);
  batcher_ = std::thread([this] { BatcherLoop(); });
}

DecisionService::~DecisionService() { Shutdown(); }

std::future<DecisionReply> DecisionService::SubmitDecision(
    DecisionRequest request) {
  static obs::Counter& requests = obs::GetCounter("serve.requests");
  static obs::Counter& rejected = obs::GetCounter("serve.rejected");
  static obs::Gauge& depth = obs::GetGauge("serve.queue_depth");
  requests.Add();
  const double now = NowSeconds();
  PendingDecision pending;
  pending.request = std::move(request);
  pending.submit_s = now;
  const int64_t budget_us = pending.request.deadline_us > 0
                                ? pending.request.deadline_us
                                : config_.default_deadline_us;
  pending.deadline_s = budget_us > 0 ? now + budget_us * 1e-6 : 0.0;
  std::future<DecisionReply> future = pending.promise.get_future();
  size_t kind_size = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return ReadyReply<DecisionReply>(ServeStatus::kShutdown, 0.0);
    if (static_cast<int>(decision_queue_.size() + prediction_queue_.size()) >=
        config_.queue_capacity) {
      rejected.Add();
      return ReadyReply<DecisionReply>(ServeStatus::kRejected, 0.0);
    }
    decision_queue_.push_back(std::move(pending));
    kind_size = decision_queue_.size();
    depth.Set(static_cast<double>(kind_size + prediction_queue_.size()));
  }
  // Edge-triggered wakeup: the batcher only acts on this queue becoming
  // non-empty (it may be idle) or filling a whole batch (it may be holding
  // the window open). Notifying on every submit looks harmless but costs a
  // futex wake + spurious batcher wakeup per request at saturating load —
  // it was the single largest per-request overhead on the serving path.
  if (kind_size == 1 || kind_size == static_cast<size_t>(config_.max_batch)) {
    cv_.notify_one();
  }
  return future;
}

std::future<PredictionReply> DecisionService::SubmitPrediction(
    PredictionRequest request) {
  static obs::Counter& requests = obs::GetCounter("serve.requests");
  static obs::Counter& rejected = obs::GetCounter("serve.rejected");
  static obs::Gauge& depth = obs::GetGauge("serve.queue_depth");
  requests.Add();
  const double now = NowSeconds();
  PendingPrediction pending;
  pending.request = std::move(request);
  pending.submit_s = now;
  const int64_t budget_us = pending.request.deadline_us > 0
                                ? pending.request.deadline_us
                                : config_.default_deadline_us;
  pending.deadline_s = budget_us > 0 ? now + budget_us * 1e-6 : 0.0;
  std::future<PredictionReply> future = pending.promise.get_future();
  size_t kind_size = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return ReadyReply<PredictionReply>(ServeStatus::kShutdown, 0.0);
    if (static_cast<int>(decision_queue_.size() + prediction_queue_.size()) >=
        config_.queue_capacity) {
      rejected.Add();
      return ReadyReply<PredictionReply>(ServeStatus::kRejected, 0.0);
    }
    prediction_queue_.push_back(std::move(pending));
    kind_size = prediction_queue_.size();
    depth.Set(static_cast<double>(decision_queue_.size() + kind_size));
  }
  // Edge-triggered wakeup; see SubmitDecision.
  if (kind_size == 1 || kind_size == static_cast<size_t>(config_.max_batch)) {
    cv_.notify_one();
  }
  return future;
}

int64_t DecisionService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(decision_queue_.size() +
                              prediction_queue_.size());
}

void DecisionService::SetPausedForTest(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

void DecisionService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
  inflight_.Wait();
}

bool DecisionService::FormAndDispatchLocked(
    std::unique_lock<std::mutex>& lock) {
  static obs::Counter& deadline_missed =
      obs::GetCounter("serve.deadline_missed");
  static obs::Gauge& depth = obs::GetGauge("serve.queue_depth");

  // Serve the kind whose oldest request has waited longest.
  const bool have_d = !decision_queue_.empty();
  const bool have_p = !prediction_queue_.empty();
  if (!have_d && !have_p) return false;
  const bool decisions =
      have_d && (!have_p ||
                 decision_queue_.front().submit_s <=
                     prediction_queue_.front().submit_s);

  // Window: wait until max_batch of this kind are queued or batch_window_us
  // has elapsed since the oldest one was admitted.
  const double cut_s =
      (decisions ? decision_queue_.front().submit_s
                 : prediction_queue_.front().submit_s) +
      config_.batch_window_us * 1e-6;
  for (;;) {
    if (stop_ || paused_) return false;
    const size_t waiting =
        decisions ? decision_queue_.size() : prediction_queue_.size();
    if (static_cast<int>(waiting) >= config_.max_batch) break;
    const double remaining_s = cut_s - NowSeconds();
    if (remaining_s <= 0.0) break;
    cv_.wait_for(lock, std::chrono::duration<double>(remaining_s));
  }

  // Pop straight into the heap vector the executor will own: one move per
  // request, no re-wrap at dispatch time.
  const double now = NowSeconds();
  if (decisions) {
    auto batch = std::make_shared<std::vector<PendingDecision>>();
    batch->reserve(static_cast<size_t>(config_.max_batch));
    while (!decision_queue_.empty() &&
           static_cast<int>(batch->size()) < config_.max_batch) {
      PendingDecision& pending = decision_queue_.front();
      if (pending.deadline_s > 0.0 && now > pending.deadline_s) {
        deadline_missed.Add();
        CompleteWithStatus<PendingDecision, DecisionReply>(
            pending, ServeStatus::kDeadlineExceeded, now);
      } else {
        batch->push_back(std::move(pending));
      }
      decision_queue_.pop_front();
    }
    depth.Set(static_cast<double>(decision_queue_.size() +
                                  prediction_queue_.size()));
    if (batch->empty()) return true;  // every candidate had expired
    lock.unlock();
    DispatchDecisions(registry_->Current(), std::move(batch));
    lock.lock();
  } else {
    auto batch = std::make_shared<std::vector<PendingPrediction>>();
    batch->reserve(static_cast<size_t>(config_.max_batch));
    while (!prediction_queue_.empty() &&
           static_cast<int>(batch->size()) < config_.max_batch) {
      PendingPrediction& pending = prediction_queue_.front();
      if (pending.deadline_s > 0.0 && now > pending.deadline_s) {
        deadline_missed.Add();
        CompleteWithStatus<PendingPrediction, PredictionReply>(
            pending, ServeStatus::kDeadlineExceeded, now);
      } else {
        batch->push_back(std::move(pending));
      }
      prediction_queue_.pop_front();
    }
    depth.Set(static_cast<double>(decision_queue_.size() +
                                  prediction_queue_.size()));
    if (batch->empty()) return true;
    lock.unlock();
    DispatchPredictions(registry_->Current(), std::move(batch));
    lock.lock();
  }
  return true;
}

void DecisionService::BatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] {
      return stop_ || (!paused_ && (!decision_queue_.empty() ||
                                    !prediction_queue_.empty()));
    });
    if (stop_) break;
    FormAndDispatchLocked(lock);
  }
  // Stopped: complete everything still queued as kShutdown.
  const double now = NowSeconds();
  while (!decision_queue_.empty()) {
    CompleteWithStatus<PendingDecision, DecisionReply>(
        decision_queue_.front(), ServeStatus::kShutdown, now);
    decision_queue_.pop_front();
  }
  while (!prediction_queue_.empty()) {
    CompleteWithStatus<PendingPrediction, PredictionReply>(
        prediction_queue_.front(), ServeStatus::kShutdown, now);
    prediction_queue_.pop_front();
  }
}

void DecisionService::DispatchDecisions(
    std::shared_ptr<const ModelSnapshot> snap,
    std::shared_ptr<std::vector<PendingDecision>> batch) {
  HEAD_CHECK(snap != nullptr);  // publish a version before submitting load
  inflight_.Acquire();
  // The batch rides behind a shared_ptr: std::function requires copyable
  // closures and the Pendings hold move-only promises.
  parallel::ThreadPool::Global().SubmitWithToken(
      &snap->inflight(), [this, snap, batch] {
        struct Releaser {
          parallel::WaitToken* token;
          ~Releaser() { token->Release(); }
        } releaser{&inflight_};
        ExecuteDecisionBatch(*snap, *batch);
      });
}

void DecisionService::DispatchPredictions(
    std::shared_ptr<const ModelSnapshot> snap,
    std::shared_ptr<std::vector<PendingPrediction>> batch) {
  HEAD_CHECK(snap != nullptr);
  inflight_.Acquire();
  parallel::ThreadPool::Global().SubmitWithToken(
      &snap->inflight(), [this, snap, batch] {
        struct Releaser {
          parallel::WaitToken* token;
          ~Releaser() { token->Release(); }
        } releaser{&inflight_};
        ExecutePredictionBatch(*snap, *batch);
      });
}

void DecisionService::ExecuteDecisionBatch(
    const ModelSnapshot& snap, std::vector<PendingDecision>& batch) {
  HEAD_PROF_SCOPE("serve.batch");  // profiler root for the serve hot path
  HEAD_SPAN("serve.batch");
  static obs::Histogram& exec_latency =
      obs::MicroLatencyHistogram("serve.batch_exec");
  static obs::Histogram& request_latency =
      obs::MicroLatencyHistogram("serve.request_latency");
  static obs::Counter& batches = obs::GetCounter("serve.batches");
  static obs::Counter& replies = obs::GetCounter("serve.replies");
  static obs::Counter& alloc_events = obs::GetCounter("serve.alloc_events");
  static obs::Gauge& model_version = obs::GetGauge("serve.model_version");
  const obs::ScopedTimer timer(exec_latency);

  const size_t n = batch.size();
  std::vector<const rl::AugmentedState*> states;
  states.reserve(n);
  for (const PendingDecision& pending : batch) {
    states.push_back(&pending.request.state);
  }
  std::vector<DecisionOutput> outputs(n);
  const uint64_t allocs_before = nn::AllocEvents();
  snap.DecideBatch(states, outputs.data());
  alloc_events.Add(static_cast<int64_t>(nn::AllocEvents() - allocs_before));

  BatchSizeHistogram().Observe(static_cast<double>(n));
  batches.Add();
  model_version.Set(static_cast<double>(snap.version()));
  const double now = NowSeconds();
  for (size_t i = 0; i < n; ++i) {
    DecisionReply reply;
    reply.status = ServeStatus::kOk;
    reply.output = outputs[i];
    reply.model_version = snap.version();
    reply.latency_s = now - batch[i].submit_s;
    request_latency.Observe(reply.latency_s);
    batch[i].promise.set_value(std::move(reply));
  }
  replies.Add(static_cast<int64_t>(n));
}

void DecisionService::ExecutePredictionBatch(
    const ModelSnapshot& snap, std::vector<PendingPrediction>& batch) {
  HEAD_PROF_SCOPE("serve.batch");
  HEAD_SPAN("serve.batch");
  static obs::Histogram& exec_latency =
      obs::MicroLatencyHistogram("serve.batch_exec");
  static obs::Histogram& request_latency =
      obs::MicroLatencyHistogram("serve.request_latency");
  static obs::Counter& batches = obs::GetCounter("serve.batches");
  static obs::Counter& replies = obs::GetCounter("serve.replies");
  static obs::Counter& alloc_events = obs::GetCounter("serve.alloc_events");
  static obs::Gauge& model_version = obs::GetGauge("serve.model_version");
  const obs::ScopedTimer timer(exec_latency);

  const size_t n = batch.size();
  std::vector<const perception::StGraph*> graphs;
  graphs.reserve(n);
  for (const PendingPrediction& pending : batch) {
    graphs.push_back(&pending.request.graph);
  }
  std::vector<perception::Prediction> predictions(n);
  const uint64_t allocs_before = nn::AllocEvents();
  snap.PredictBatch(graphs, predictions.data());
  alloc_events.Add(static_cast<int64_t>(nn::AllocEvents() - allocs_before));

  BatchSizeHistogram().Observe(static_cast<double>(n));
  batches.Add();
  model_version.Set(static_cast<double>(snap.version()));
  const double now = NowSeconds();
  for (size_t i = 0; i < n; ++i) {
    PredictionReply reply;
    reply.status = ServeStatus::kOk;
    reply.prediction = predictions[i];
    reply.model_version = snap.version();
    reply.latency_s = now - batch[i].submit_s;
    request_latency.Observe(reply.latency_s);
    batch[i].promise.set_value(std::move(reply));
  }
  replies.Add(static_cast<int64_t>(n));
}

}  // namespace head::serve
