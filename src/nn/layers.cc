#include "nn/layers.h"

#include "common/check.h"
#include "obs/profiler.h"

namespace head::nn {

int Module::NumParams() const {
  int n = 0;
  for (const Var& p : Params()) n += p.value().size();
  return n;
}

void Module::ZeroGrad() {
  for (Var p : Params()) p.ZeroGrad();
}

void Module::CopyParamsFrom(const Module& other) {
  std::vector<Var> dst = Params();
  std::vector<Var> src = other.Params();
  HEAD_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    HEAD_CHECK_EQ(dst[i].value().rows(), src[i].value().rows());
    HEAD_CHECK_EQ(dst[i].value().cols(), src[i].value().cols());
    dst[i].mutable_value() = src[i].value();
  }
}

void Module::SoftUpdateFrom(const Module& source, double tau) {
  HEAD_PROF_SCOPE("nn.SoftUpdate");
  std::vector<Var> dst = Params();
  std::vector<Var> src = source.Params();
  HEAD_CHECK_EQ(dst.size(), src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    Tensor& d = dst[i].mutable_value();
    const Tensor& s = src[i].value();
    HEAD_CHECK_EQ(d.size(), s.size());
    for (int j = 0; j < d.size(); ++j) {
      d[j] = tau * s[j] + (1.0 - tau) * d[j];
    }
  }
}

Linear::Linear(int in_features, int out_features, Rng& rng)
    : w_(Var::Param(Tensor::XavierUniform(in_features, out_features, rng))),
      b_(Var::Param(Tensor::Zeros(1, out_features))) {
  HEAD_CHECK_GT(in_features, 0);
  HEAD_CHECK_GT(out_features, 0);
}

Var Linear::Forward(const Var& x) const {
  HEAD_CHECK_EQ(x.value().cols(), w_.value().rows());
  return Affine(x, w_, b_);
}

Var Linear::Forward(const Var& x, FusedAct act, double leaky_slope) const {
  HEAD_CHECK_EQ(x.value().cols(), w_.value().rows());
  return AffineAct(x, w_, b_, act, leaky_slope);
}

Mlp::Mlp(const std::vector<int>& dims, Activation act, Rng& rng) : act_(act) {
  HEAD_CHECK_GE(dims.size(), 2u);
  for (size_t i = 0; i + 1 < dims.size(); ++i) {
    layers_.emplace_back(dims[i], dims[i + 1], rng);
  }
}

Var Mlp::Forward(const Var& x) const {
  FusedAct fused = FusedAct::kNone;
  switch (act_) {
    case Activation::kRelu: fused = FusedAct::kRelu; break;
    case Activation::kTanh: fused = FusedAct::kTanh; break;
    case Activation::kLeakyRelu: fused = FusedAct::kLeakyRelu; break;
  }
  Var h = x;
  for (size_t i = 0; i < layers_.size(); ++i) {
    // Hidden layers fuse the activation into the affine node; the last
    // layer stays linear.
    h = layers_[i].Forward(h,
                           i + 1 < layers_.size() ? fused : FusedAct::kNone);
  }
  return h;
}

std::vector<Var> Mlp::Params() const {
  std::vector<Var> out;
  for (const Linear& l : layers_) {
    for (const Var& p : l.Params()) out.push_back(p);
  }
  return out;
}

}  // namespace head::nn
