#include "nn/lstm.h"

#include "common/check.h"

namespace head::nn {

LstmCell::LstmCell(int input_size, int hidden_size, Rng& rng)
    : hidden_size_(hidden_size),
      w_ih_(Var::Param(Tensor::XavierUniform(input_size, 4 * hidden_size, rng))),
      w_hh_(Var::Param(
          Tensor::XavierUniform(hidden_size, 4 * hidden_size, rng))),
      b_(Var::Param(Tensor::Zeros(1, 4 * hidden_size))) {
  HEAD_CHECK_GT(input_size, 0);
  HEAD_CHECK_GT(hidden_size, 0);
  // Forget-gate bias starts at 1 — the usual trick for gradient flow early
  // in training.
  Tensor& b = b_.mutable_value();
  for (int c = hidden_size; c < 2 * hidden_size; ++c) b.At(0, c) = 1.0;
}

LstmState LstmCell::InitialState(int batch) const {
  return LstmState{Var::Constant(Tensor::Zeros(batch, hidden_size_)),
                   Var::Constant(Tensor::Zeros(batch, hidden_size_))};
}

LstmState LstmCell::Forward(const Var& x, const LstmState& state) const {
  HEAD_CHECK_EQ(x.value().cols(), w_ih_.value().rows());
  HEAD_CHECK_EQ(x.value().rows(), state.h.value().rows());
  // One fused node for the gate pre-activation b + x·W_ih + h·W_hh: the
  // recurrent product accumulates into the input product's output, saving
  // an Add node and a (batch × 4h) temporary per step.
  const Var gates = DualAffine(x, w_ih_, state.h, w_hh_, b_);
  const int h = hidden_size_;
  const Var i = Sigmoid(SliceCols(gates, 0, h));
  const Var f = Sigmoid(SliceCols(gates, h, 2 * h));
  const Var g = Tanh(SliceCols(gates, 2 * h, 3 * h));
  const Var o = Sigmoid(SliceCols(gates, 3 * h, 4 * h));
  const Var c_new = Add(Mul(f, state.c), Mul(i, g));
  const Var h_new = Mul(o, Tanh(c_new));
  return LstmState{h_new, c_new};
}

}  // namespace head::nn
