// Binary (de)serialization of module parameters, used to checkpoint trained
// LST-GAT / BP-DQN weights between the training and evaluation phases.
#ifndef HEAD_NN_SERIALIZE_H_
#define HEAD_NN_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "nn/layers.h"

namespace head::nn {

/// Writes all parameters of `module` (shape + data) to `os`.
/// Format: magic, param count, then per-param rows/cols/doubles.
void SaveParams(const Module& module, std::ostream& os);

/// Restores parameters saved by SaveParams. Returns false on malformed input
/// or shape mismatch (module is left partially updated only on a late
/// mismatch; treat false as fatal).
[[nodiscard]] bool LoadParams(Module& module, std::istream& is);

/// File-based convenience wrappers. Save aborts on I/O failure; Load returns
/// false if the file is missing or malformed.
void SaveParamsToFile(const Module& module, const std::string& path);
[[nodiscard]] bool LoadParamsFromFile(Module& module, const std::string& path);

}  // namespace head::nn

#endif  // HEAD_NN_SERIALIZE_H_
