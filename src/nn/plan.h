// Static execution plans: trace the tape once, replay it forever.
//
// The BP-DQN and LST-GAT architectures are fixed — every Act / critic /
// actor / Predict / train step at a given batch shape builds the *same*
// graph into the arena and re-walks it node by node. A PlanCapture records
// one eager step (forward, and the Backward schedule when the step trains)
// into an immutable ExecPlan; subsequent steps feed fresh input tensors and
// Replay() re-runs the recorded schedule with zero graph construction,
// VarImpl allocation, or topological sorting.
//
//   nn::PlanCapture capture;
//   nn::Var out = net.Forward(input);          // ordinary eager code
//   nn::Backward(out);                         // optional: records backward
//   std::shared_ptr<const nn::ExecPlan> plan = capture.Finish({out});
//   ...
//   const nn::Tensor& y = *plan->Replay({next_input}).front();
//
// How capture works: while a PlanCapture is live on the thread, every op's
// MakeResult (and Var::Constant / nn::PlanInput) allocates its node from
// the plan's own stable-address storage instead of the thread arena, and
// records the op's replay-forward function (arena.h VarImpl::forward) — a
// verbatim re-run of the op's eager arithmetic: the same kernel-table entry
// points, the same accumulation order, the same HEAD_PROF_OP line. Parents
// are recorded even under NoGradGuard (replay needs the data edges), and
// nn::Backward freezes its reverse topological order into the plan instead
// of tearing the tape down. The captured step itself remains observably
// identical to an eager step, so capture-on-first-use is free.
//
// Replay and threads: the master nodes are immutable after Finish(). Each
// replaying thread lazily clones them into a thread-local ReplayContext
// (parent pointers rewired to the clones; external parents — persistent
// Params — stay shared so replay always reads live optimizer-updated
// weights). Forward-only plans are therefore safe to replay concurrently
// from any number of threads (EnvPool rollouts share one Act plan and one
// Predict plan); plans that carry a backward schedule accumulate into the
// shared Param grads and belong to the single learner thread, same as the
// eager path.
//
// Inputs: nn::PlanInput(t) marks a per-step input. Outside capture it is
// exactly Var::Constant(t); inside, it registers a replay slot. Slots are
// matched to Replay() arguments by creation order, so a call site's feeder
// must push tensors in the order the captured code consumed them.
// Var::Constant under capture freezes its value into the plan (initial LSTM
// state, uniform-attention fallbacks, the all-ones bias column).
//
// Fallback: call sites key plans by shape and fall back to the eager arena
// path for unseen shapes, non-capturable models, or when disabled
// (config `static_plans = false`, or HEAD_PLANS=0 in the environment).
#ifndef HEAD_NN_PLAN_H_
#define HEAD_NN_PLAN_H_

#include <cstdint>
#include <deque>
#include <initializer_list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "nn/arena.h"
#include "nn/autograd.h"
#include "nn/tensor.h"

namespace head::nn {

class ExecPlan;

/// A per-step data input. Outside capture: exactly Var::Constant(value).
/// Inside capture: a replay input slot, matched to Replay() arguments by
/// creation order.
Var PlanInput(Tensor value);

namespace plan_internal {
struct ReplayContext;
// Hooks for autograd.cc — not part of the public surface.
bool Active();
internal::VarImpl* NewNode();
void RecordBackward(internal::VarImpl* root,
                    const std::vector<internal::VarImpl*>& order);
void RegisterIndexSlot(internal::VarImpl* node);
}  // namespace plan_internal

/// An immutable compiled step: the captured nodes in creation order, the
/// input/index slots, the frozen backward schedule, and the output nodes.
/// Create via PlanCapture::Finish; replay from any thread (see file docs
/// for the backward-plan single-learner caveat).
class ExecPlan : public std::enable_shared_from_this<ExecPlan> {
 public:
  ExecPlan(const ExecPlan&) = delete;
  ExecPlan& operator=(const ExecPlan&) = delete;
  ~ExecPlan();

  /// Re-runs the recorded schedule against fresh inputs: `inputs` fill the
  /// PlanInput slots in registration order; `index_inputs` (optional)
  /// overwrite the index slots (SelectColumnPerRow) — omitted, the
  /// capture-step indices stay in effect. When the plan carries a backward
  /// schedule it runs too, accumulating into the shared Param grads.
  /// Returns one tensor pointer per Finish() output, owned by the calling
  /// thread's replay context: valid until this thread's next Replay of this
  /// plan. Steady-state replays perform zero arena node allocations; tensor
  /// buffers cycle through the TensorPool exactly like a warm eager step.
  std::vector<const Tensor*> Replay(
      std::vector<Tensor> inputs,
      std::initializer_list<const std::vector<int>*> index_inputs = {}) const;

  size_t num_inputs() const { return input_slots_.size(); }
  size_t num_index_slots() const { return index_slots_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  bool has_backward() const { return !backward_order_.empty(); }
  uint64_t serial() const { return serial_; }

 private:
  friend class PlanCapture;
  friend struct plan_internal::ReplayContext;
  friend internal::VarImpl* plan_internal::NewNode();
  friend void plan_internal::RecordBackward(
      internal::VarImpl* root, const std::vector<internal::VarImpl*>& order);
  friend void plan_internal::RegisterIndexSlot(internal::VarImpl* node);
  friend Var PlanInput(Tensor value);

  ExecPlan() = default;

  std::deque<internal::VarImpl> nodes_;  ///< creation order; stable addresses
  std::unordered_map<const internal::VarImpl*, int> index_of_;
  std::vector<int> input_slots_;    ///< node index per PlanInput, in order
  std::vector<int> index_slots_;    ///< node index per replayable index list
  std::vector<int> backward_order_; ///< frozen topo order (root last); empty
                                    ///< for forward-only plans
  std::vector<int> outputs_;
  uint64_t serial_ = 0;
};

/// RAII capture of one step's tape. Construction enters capture mode on the
/// calling thread (no nesting); Finish() seals and returns the plan.
/// Destruction without Finish abandons the capture (error paths) — the
/// half-built plan is discarded and eager execution resumes.
class PlanCapture {
 public:
  PlanCapture();
  ~PlanCapture();
  PlanCapture(const PlanCapture&) = delete;
  PlanCapture& operator=(const PlanCapture&) = delete;

  /// Seals the plan: resolves output nodes, validates that every external
  /// parent is a persistent leaf (epoch 0 — a Param whose storage outlives
  /// the plan), and leaves master grads empty so per-thread clones replay
  /// from fresh-tape state.
  std::shared_ptr<const ExecPlan> Finish(std::initializer_list<Var> outputs);

 private:
  std::shared_ptr<ExecPlan> plan_;
  bool finished_ = false;
};

/// Process-wide kill switch: false when HEAD_PLANS=0 is set in the
/// environment (the plans-off CI stage); call sites must then keep to the
/// eager path. Read once, so flipping the variable mid-process has no
/// effect.
bool PlansEnabled();

/// True while a PlanCapture is live on the calling thread.
bool PlanCaptureActive();

}  // namespace head::nn

#endif  // HEAD_NN_PLAN_H_
