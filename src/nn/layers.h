// Network building blocks: parameter containers, fully connected layers and
// a small MLP helper. All layers operate on (batch × features) Vars.
#ifndef HEAD_NN_LAYERS_H_
#define HEAD_NN_LAYERS_H_

#include <vector>

#include "common/rng.h"
#include "nn/autograd.h"

namespace head::nn {

/// Base for anything holding trainable parameters.
class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters, in a stable order (serialization relies on it).
  virtual std::vector<Var> Params() const = 0;

  /// Total scalar parameter count.
  int NumParams() const;

  /// Zeroes every parameter gradient.
  void ZeroGrad();

  /// Copies parameter values from `other` (shapes must match; same order).
  void CopyParamsFrom(const Module& other);

  /// Polyak/soft update: θ ← tau·θ_src + (1−tau)·θ  (used for targets).
  void SoftUpdateFrom(const Module& source, double tau);
};

/// y = x·W + b with W: (in × out), b: (1 × out).
class Linear : public Module {
 public:
  Linear(int in_features, int out_features, Rng& rng);

  Var Forward(const Var& x) const;
  /// Fused act(x·W + b) — one graph node instead of Affine + activation
  /// (see AffineAct). kNone is exactly Forward(x).
  Var Forward(const Var& x, FusedAct act, double leaky_slope = 0.01) const;
  std::vector<Var> Params() const override { return {w_, b_}; }

  int in_features() const { return w_.value().rows(); }
  int out_features() const { return w_.value().cols(); }

 private:
  Var w_;
  Var b_;
};

/// Multilayer perceptron: Linear → act → … → Linear (no activation after the
/// last layer). `dims` = {in, hidden..., out}.
class Mlp : public Module {
 public:
  enum class Activation { kRelu, kTanh, kLeakyRelu };

  Mlp(const std::vector<int>& dims, Activation act, Rng& rng);

  Var Forward(const Var& x) const;
  std::vector<Var> Params() const override;

 private:
  std::vector<Linear> layers_;
  Activation act_;
};

}  // namespace head::nn

#endif  // HEAD_NN_LAYERS_H_
