// Reverse-mode automatic differentiation over 2-D tensors.
//
// A Var is a cheap handle (shared_ptr) to a node in a dynamically built
// computation graph. Every op below allocates its result eagerly and, when
// any input requires gradients, records a backward closure. Backward(loss)
// runs the closures in reverse topological order, accumulating into each
// parameter's .grad(). Graphs are per-expression: once the last Var handle
// of an expression dies, its graph is freed, so inference loops do not leak.
#ifndef HEAD_NN_AUTOGRAD_H_
#define HEAD_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace head::nn {

namespace internal {
struct VarImpl;
}  // namespace internal

class Var {
 public:
  /// Undefined handle; must not be used in ops.
  Var() = default;

  /// Trainable leaf: gradients accumulate here on Backward().
  static Var Param(Tensor value);
  /// Non-trainable leaf (inputs, targets).
  static Var Constant(Tensor value);

  bool defined() const { return impl_ != nullptr; }
  const Tensor& value() const;
  /// In-place access for optimizers / target-network updates. Mutating a
  /// value invalidates any graph previously built from this Var.
  Tensor& mutable_value();
  /// Accumulated gradient; zero-sized until first Backward().
  const Tensor& grad() const;
  Tensor& mutable_grad();
  bool requires_grad() const;
  /// Clears the accumulated gradient (keeps allocation).
  void ZeroGrad();

  std::shared_ptr<internal::VarImpl> impl() const { return impl_; }
  explicit Var(std::shared_ptr<internal::VarImpl> impl)
      : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<internal::VarImpl> impl_;
};

/// Runs reverse-mode differentiation from `loss` (must be 1×1), accumulating
/// into the .grad() of every reachable Param.
void Backward(const Var& loss);

// ---- Gradient mode ----
//
// Ops consult a thread-local flag before recording backward closures. With
// gradients disabled every op still computes its value but produces a plain
// constant node — no parents, no closure, no shared_ptr graph — which makes
// inference and target-network evaluation allocation-lean and leak-proof by
// construction.

/// True (the default) when ops record backward closures on this thread.
bool GradEnabled();

/// RAII guard that disables closure recording for its scope (nestable).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

// ---- Differentiable ops ----

Var MatMul(const Var& a, const Var& b);
/// Fused a·b + row-broadcast bias — one graph node and one output traversal
/// instead of the MatMul + AddRowBroadcast pair (see nn::Affine on Tensor).
Var Affine(const Var& a, const Var& b, const Var& bias);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);  // elementwise
Var Scale(const Var& a, double s);
Var AddScalar(const Var& a, double s);
/// Adds a 1×cols row vector to every row of `a` (bias add).
Var AddRowBroadcast(const Var& a, const Var& row);

Var Relu(const Var& a);
Var LeakyRelu(const Var& a, double negative_slope = 0.01);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);

/// Row-wise softmax.
Var SoftmaxRows(const Var& a);

Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, int c0, int c1);  // [c0, c1)
Var SliceRows(const Var& a, int r0, int r1);  // [r0, r1)

/// Reinterprets `a` as rows×cols (same element count, row-major order kept).
Var Reshape(const Var& a, int rows, int cols);

// ---- Batched (minibatch) ops ----

/// out[i] = a[rows[i]]; rows may repeat. Backward scatter-adds.
Var GatherRows(const Var& a, std::vector<int> rows);

/// (rows×1) column with out[r] = a[r, cols[r]] — the per-row one-hot select
/// used to pick the chosen behavior's Q value out of a (B×|A|) matrix.
Var SelectColumnPerRow(const Var& a, std::vector<int> cols);

/// (rows×1) column of per-row maxima; the gradient routes to the (first)
/// argmax entry of each row.
Var RowwiseMax(const Var& a);

/// Sums all rows into a (1×cols) row vector (differentiable counterpart of
/// the raw tensor SumRows).
Var SumRows(const Var& a);

/// out[r,c] = a[r,c] · scale[r]; `scale` is (rows×1). Differentiable in both
/// inputs — the row-wise attention weighting of the batched GAT step.
Var ScaleRows(const Var& a, const Var& scale);

/// Sums each consecutive group of `group_size` rows: (G·group_size × cols)
/// → (G × cols). The block-diagonal aggregation of the batched GAT step.
Var SumRowGroups(const Var& a, int group_size);

Var Sum(const Var& a);   // 1×1
Var Mean(const Var& a);  // 1×1
Var Square(const Var& a);

/// Mean squared error over all elements; `target` is treated as constant.
Var MseLoss(const Var& pred, const Var& target);

}  // namespace head::nn

#endif  // HEAD_NN_AUTOGRAD_H_
