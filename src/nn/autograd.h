// Reverse-mode automatic differentiation over 2-D tensors.
//
// A Var is a cheap handle (shared_ptr) to a node in a dynamically built
// computation graph. Every op below allocates its result eagerly and, when
// any input requires gradients, records a backward closure. Backward(loss)
// runs the closures in reverse topological order, accumulating into each
// parameter's .grad(). Graphs are per-expression: once the last Var handle
// of an expression dies, its graph is freed, so inference loops do not leak.
#ifndef HEAD_NN_AUTOGRAD_H_
#define HEAD_NN_AUTOGRAD_H_

#include <functional>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace head::nn {

namespace internal {
struct VarImpl;
}  // namespace internal

class Var {
 public:
  /// Undefined handle; must not be used in ops.
  Var() = default;

  /// Trainable leaf: gradients accumulate here on Backward().
  static Var Param(Tensor value);
  /// Non-trainable leaf (inputs, targets).
  static Var Constant(Tensor value);

  bool defined() const { return impl_ != nullptr; }
  const Tensor& value() const;
  /// In-place access for optimizers / target-network updates. Mutating a
  /// value invalidates any graph previously built from this Var.
  Tensor& mutable_value();
  /// Accumulated gradient; zero-sized until first Backward().
  const Tensor& grad() const;
  Tensor& mutable_grad();
  bool requires_grad() const;
  /// Clears the accumulated gradient (keeps allocation).
  void ZeroGrad();

  std::shared_ptr<internal::VarImpl> impl() const { return impl_; }
  explicit Var(std::shared_ptr<internal::VarImpl> impl)
      : impl_(std::move(impl)) {}

 private:
  std::shared_ptr<internal::VarImpl> impl_;
};

/// Runs reverse-mode differentiation from `loss` (must be 1×1), accumulating
/// into the .grad() of every reachable Param.
void Backward(const Var& loss);

// ---- Differentiable ops ----

Var MatMul(const Var& a, const Var& b);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);  // elementwise
Var Scale(const Var& a, double s);
Var AddScalar(const Var& a, double s);
/// Adds a 1×cols row vector to every row of `a` (bias add).
Var AddRowBroadcast(const Var& a, const Var& row);

Var Relu(const Var& a);
Var LeakyRelu(const Var& a, double negative_slope = 0.01);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);

/// Row-wise softmax.
Var SoftmaxRows(const Var& a);

Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, int c0, int c1);  // [c0, c1)
Var SliceRows(const Var& a, int r0, int r1);  // [r0, r1)

/// Reinterprets `a` as rows×cols (same element count, row-major order kept).
Var Reshape(const Var& a, int rows, int cols);

Var Sum(const Var& a);   // 1×1
Var Mean(const Var& a);  // 1×1
Var Square(const Var& a);

/// Mean squared error over all elements; `target` is treated as constant.
Var MseLoss(const Var& pred, const Var& target);

}  // namespace head::nn

#endif  // HEAD_NN_AUTOGRAD_H_
