// Reverse-mode automatic differentiation over 2-D tensors.
//
// A Var is a cheap handle to a node in a dynamically built computation
// graph. Op nodes are recycled through the calling thread's GraphArena (see
// arena.h): every op bump-allocates its node from the arena, and the whole
// tape is reclaimed in O(1) by ResetTape() at the start of the next
// graph-building region instead of being torn down node by node. Handles
// carry the arena epoch at creation, so a Var used after its node was
// recycled trips HEAD_DCHECK in debug builds. Params (and other persistent
// leaves) are heap-allocated, owned by their handles, and survive resets.
//
// Every op allocates its result eagerly and, when any input requires
// gradients, records a backward function. Backward(loss) runs them in
// reverse topological order, accumulating into each parameter's .grad().
#ifndef HEAD_NN_AUTOGRAD_H_
#define HEAD_NN_AUTOGRAD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/tensor.h"

namespace head::nn {

namespace internal {
struct VarImpl;
}  // namespace internal

class Var {
 public:
  /// Undefined handle; must not be used in ops.
  Var() = default;

  /// Trainable leaf: gradients accumulate here on Backward(). Persistent —
  /// heap-allocated and owned by its handles, unaffected by ResetTape().
  static Var Param(Tensor value);
  /// Non-trainable leaf (inputs, targets). Arena-allocated: valid only
  /// until the calling thread's next ResetTape().
  static Var Constant(Tensor value);

  bool defined() const { return node_ != nullptr; }
  /// False once the node behind this handle has been recycled by a tape
  /// reset (always true for persistent leaves). Accessors HEAD_DCHECK this.
  bool alive() const;
  const Tensor& value() const;
  /// In-place access for optimizers / target-network updates. Mutating a
  /// value invalidates any graph previously built from this Var.
  Tensor& mutable_value();
  /// Accumulated gradient; zero-sized until first Backward().
  const Tensor& grad() const;
  Tensor& mutable_grad();
  bool requires_grad() const;
  /// Clears the accumulated gradient (keeps allocation).
  void ZeroGrad();

  // Internal constructors/accessors (used by the op implementations).
  Var(internal::VarImpl* node, uint64_t epoch) : node_(node), epoch_(epoch) {}
  explicit Var(std::shared_ptr<internal::VarImpl> owner);
  internal::VarImpl* node() const { return node_; }

 private:
  internal::VarImpl* node_ = nullptr;
  uint64_t epoch_ = 0;
  std::shared_ptr<internal::VarImpl> owner_;  // set only for persistent leaves
};

/// Runs reverse-mode differentiation from `loss` (must be 1×1), accumulating
/// into the .grad() of every reachable Param. The topological sort is an
/// explicit-stack DFS over persistent arena scratch (no recursion, no
/// per-call containers), so graph depth is bounded by memory, not the call
/// stack.
void Backward(const Var& loss);

/// Recycles the calling thread's tape in O(1) (declared in arena.h too).
/// Call at the start of each graph-building region.
void ResetTape();

// ---- Gradient mode ----
//
// Ops consult a thread-local flag before recording backward functions. With
// gradients disabled every op still computes its value but produces a plain
// constant node — no parents, no backward — which keeps inference and
// target-network evaluation off the backward path entirely.

/// True (the default) when ops record backward functions on this thread.
bool GradEnabled();

/// RAII guard that disables backward recording for its scope (nestable).
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool prev_;
};

// ---- Differentiable ops ----

Var MatMul(const Var& a, const Var& b);
/// Fused a·b + row-broadcast bias — one graph node and one output traversal
/// instead of the MatMul + AddRowBroadcast pair (see nn::Affine on Tensor).
Var Affine(const Var& a, const Var& b, const Var& bias);

/// Activation fused into AffineAct (kernels apply it in place on the GEMM
/// output; backward recovers act'(y) from the output alone).
enum class FusedAct : int { kNone = 0, kRelu, kLeakyRelu, kTanh, kSigmoid };

/// act(a·b + bias) as one graph node: no activation tensor, no extra tape
/// node, one output traversal. kNone degrades to Affine. `leaky_slope` is
/// read only for kLeakyRelu.
Var AffineAct(const Var& a, const Var& b, const Var& bias, FusedAct act,
              double leaky_slope = 0.01);

/// bias + a1·b1 + a2·b2 as one graph node — the LSTM gate pre-activation
/// shape. The second product accumulates directly into the first's output,
/// saving the Add node and a full gate-width temporary per step.
Var DualAffine(const Var& a1, const Var& b1, const Var& a2, const Var& b2,
               const Var& bias);
Var Add(const Var& a, const Var& b);
Var Sub(const Var& a, const Var& b);
Var Mul(const Var& a, const Var& b);  // elementwise
Var Scale(const Var& a, double s);
Var AddScalar(const Var& a, double s);
/// Adds a 1×cols row vector to every row of `a` (bias add).
Var AddRowBroadcast(const Var& a, const Var& row);

Var Relu(const Var& a);
Var LeakyRelu(const Var& a, double negative_slope = 0.01);
Var Tanh(const Var& a);
Var Sigmoid(const Var& a);

/// Row-wise softmax.
Var SoftmaxRows(const Var& a);

Var ConcatCols(const std::vector<Var>& parts);
Var ConcatRows(const std::vector<Var>& parts);
Var SliceCols(const Var& a, int c0, int c1);  // [c0, c1)
Var SliceRows(const Var& a, int r0, int r1);  // [r0, r1)

/// Reinterprets `a` as rows×cols (same element count, row-major order kept).
Var Reshape(const Var& a, int rows, int cols);

// ---- Batched (minibatch) ops ----

/// out[i] = a[rows[i]]; rows may repeat. Backward scatter-adds.
Var GatherRows(const Var& a, std::vector<int> rows);

/// (rows×1) column with out[r] = a[r, cols[r]] — the per-row one-hot select
/// used to pick the chosen behavior's Q value out of a (B×|A|) matrix.
Var SelectColumnPerRow(const Var& a, std::vector<int> cols);

/// (rows×1) column of per-row maxima; the gradient routes to the (first)
/// argmax entry of each row.
Var RowwiseMax(const Var& a);

/// Sums all rows into a (1×cols) row vector (differentiable counterpart of
/// the raw tensor SumRows).
Var SumRows(const Var& a);

/// out[r,c] = a[r,c] · scale[r]; `scale` is (rows×1). Differentiable in both
/// inputs — the row-wise attention weighting of the batched GAT step.
Var ScaleRows(const Var& a, const Var& scale);

/// Sums each consecutive group of `group_size` rows: (G·group_size × cols)
/// → (G × cols). The block-diagonal aggregation of the batched GAT step.
Var SumRowGroups(const Var& a, int group_size);

Var Sum(const Var& a);   // 1×1
Var Mean(const Var& a);  // 1×1
Var Square(const Var& a);

/// Mean squared error over all elements; `target` is treated as constant.
Var MseLoss(const Var& pred, const Var& target);

}  // namespace head::nn

#endif  // HEAD_NN_AUTOGRAD_H_
