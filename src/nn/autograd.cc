#include "nn/autograd.h"

#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace head::nn {

namespace internal {

struct VarImpl {
  Tensor value;
  Tensor grad;  // lazily allocated on first accumulation
  bool requires_grad = false;
  std::vector<std::shared_ptr<VarImpl>> parents;
  std::function<void(VarImpl&)> backward;  // reads this.grad, feeds parents

  void AccumGrad(const Tensor& g) {
    if (grad.empty()) grad = Tensor::Zeros(value.rows(), value.cols());
    grad.AddScaled(g, 1.0);
  }

  /// First accumulation adopts the temporary instead of allocating a zero
  /// tensor and adding into it — closures feed freshly built tensors here,
  /// so the common single-consumer case does no extra allocation or pass.
  void AccumGrad(Tensor&& g) {
    if (grad.empty()) {
      grad = std::move(g);
    } else {
      grad.AddScaled(g, 1.0);
    }
  }
};

}  // namespace internal

using internal::VarImpl;

Var Var::Param(Tensor value) {
  auto impl = std::make_shared<VarImpl>();
  impl->value = std::move(value);
  impl->requires_grad = true;
  return Var(std::move(impl));
}

Var Var::Constant(Tensor value) {
  auto impl = std::make_shared<VarImpl>();
  impl->value = std::move(value);
  impl->requires_grad = false;
  return Var(std::move(impl));
}

const Tensor& Var::value() const {
  HEAD_CHECK(defined());
  return impl_->value;
}

Tensor& Var::mutable_value() {
  HEAD_CHECK(defined());
  return impl_->value;
}

const Tensor& Var::grad() const {
  HEAD_CHECK(defined());
  if (impl_->grad.empty()) {
    impl_->grad = Tensor::Zeros(impl_->value.rows(), impl_->value.cols());
  }
  return impl_->grad;
}

Tensor& Var::mutable_grad() {
  HEAD_CHECK(defined());
  if (impl_->grad.empty()) {
    impl_->grad = Tensor::Zeros(impl_->value.rows(), impl_->value.cols());
  }
  return impl_->grad;
}

bool Var::requires_grad() const {
  HEAD_CHECK(defined());
  return impl_->requires_grad;
}

void Var::ZeroGrad() {
  HEAD_CHECK(defined());
  if (!impl_->grad.empty()) impl_->grad.SetZero();
}

namespace {

thread_local bool g_grad_enabled = true;

/// Creates a result node; records parents/backward only if needed.
Var MakeResult(Tensor value, std::vector<Var> inputs,
               std::function<void(VarImpl&)> backward) {
  auto impl = std::make_shared<VarImpl>();
  impl->value = std::move(value);
  bool needs = false;
  for (const Var& v : inputs) {
    HEAD_CHECK(v.defined());
    if (v.requires_grad()) needs = true;
  }
  if (!g_grad_enabled) needs = false;
  impl->requires_grad = needs;
  if (needs) {
    impl->parents.reserve(inputs.size());
    for (const Var& v : inputs) impl->parents.push_back(v.impl());
    impl->backward = std::move(backward);
  }
  return Var(std::move(impl));
}

void Topo(const std::shared_ptr<VarImpl>& node,
          std::unordered_set<VarImpl*>& seen,
          std::vector<std::shared_ptr<VarImpl>>& order) {
  if (!node || seen.count(node.get()) > 0) return;
  seen.insert(node.get());
  for (const auto& p : node->parents) Topo(p, seen, order);
  order.push_back(node);
}

}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

void Backward(const Var& loss) {
  HEAD_CHECK(loss.defined());
  HEAD_CHECK_EQ(loss.value().rows(), 1);
  HEAD_CHECK_EQ(loss.value().cols(), 1);
  std::unordered_set<VarImpl*> seen;
  std::vector<std::shared_ptr<VarImpl>> order;
  Topo(loss.impl(), seen, order);
  loss.impl()->AccumGrad(Tensor::Full(1, 1, 1.0));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarImpl& node = **it;
    if (node.backward && !node.grad.empty()) node.backward(node);
  }
  // Release intermediate gradients/graph edges so only leaf grads persist
  // and repeated Backward calls cannot double-apply closures.
  for (auto& node : order) {
    if (node->backward) {
      node->backward = nullptr;
      node->parents.clear();
      node->grad = Tensor();
    }
  }
}

Var MatMul(const Var& a, const Var& b) {
  Tensor out = MatMul(a.value(), b.value());
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(std::move(out), {a, b}, [ai, bi](VarImpl& self) {
    if (ai->requires_grad || !ai->parents.empty()) {
      ai->AccumGrad(MatMulTransposeB(self.grad, bi->value));
    }
    if (bi->requires_grad || !bi->parents.empty()) {
      bi->AccumGrad(MatMulTransposeA(ai->value, self.grad));
    }
  });
}

Var Affine(const Var& a, const Var& b, const Var& bias) {
  Tensor out = Affine(a.value(), b.value(), bias.value());
  auto ai = a.impl();
  auto bi = b.impl();
  auto ci = bias.impl();
  return MakeResult(std::move(out), {a, b, bias},
                    [ai, bi, ci](VarImpl& self) {
                      if (ai->requires_grad || !ai->parents.empty()) {
                        ai->AccumGrad(MatMulTransposeB(self.grad, bi->value));
                      }
                      if (bi->requires_grad || !bi->parents.empty()) {
                        bi->AccumGrad(MatMulTransposeA(ai->value, self.grad));
                      }
                      if (ci->requires_grad || !ci->parents.empty()) {
                        ci->AccumGrad(SumRows(self.grad));
                      }
                    });
}

Var Add(const Var& a, const Var& b) {
  Tensor out = Add(a.value(), b.value());
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(std::move(out), {a, b}, [ai, bi](VarImpl& self) {
    ai->AccumGrad(self.grad);
    bi->AccumGrad(self.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  Tensor out = Sub(a.value(), b.value());
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(std::move(out), {a, b}, [ai, bi](VarImpl& self) {
    ai->AccumGrad(self.grad);
    bi->AccumGrad(Scale(self.grad, -1.0));
  });
}

Var Mul(const Var& a, const Var& b) {
  Tensor out = Mul(a.value(), b.value());
  auto ai = a.impl();
  auto bi = b.impl();
  return MakeResult(std::move(out), {a, b}, [ai, bi](VarImpl& self) {
    ai->AccumGrad(Mul(self.grad, bi->value));
    bi->AccumGrad(Mul(self.grad, ai->value));
  });
}

Var Scale(const Var& a, double s) {
  Tensor out = Scale(a.value(), s);
  auto ai = a.impl();
  return MakeResult(std::move(out), {a}, [ai, s](VarImpl& self) {
    ai->AccumGrad(Scale(self.grad, s));
  });
}

Var AddScalar(const Var& a, double s) {
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] += s;
  auto ai = a.impl();
  return MakeResult(std::move(out), {a},
                    [ai](VarImpl& self) { ai->AccumGrad(self.grad); });
}

Var AddRowBroadcast(const Var& a, const Var& row) {
  Tensor out = AddRowBroadcast(a.value(), row.value());
  auto ai = a.impl();
  auto ri = row.impl();
  return MakeResult(std::move(out), {a, row}, [ai, ri](VarImpl& self) {
    ai->AccumGrad(self.grad);
    ri->AccumGrad(SumRows(self.grad));
  });
}

namespace {

template <typename FwdFn, typename GradFn>
Var UnaryElementwise(const Var& a, FwdFn fwd, GradFn grad_of_out) {
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] = fwd(out[i]);
  auto ai = a.impl();
  return MakeResult(std::move(out), {a},
                    [ai, grad_of_out](VarImpl& self) {
                      Tensor g(self.grad.rows(), self.grad.cols());
                      for (int i = 0; i < g.size(); ++i) {
                        g[i] = self.grad[i] *
                               grad_of_out(ai->value[i], self.value[i]);
                      }
                      ai->AccumGrad(std::move(g));
                    });
}

}  // namespace

Var Relu(const Var& a) {
  return UnaryElementwise(
      a, [](double x) { return x > 0.0 ? x : 0.0; },
      [](double x, double /*y*/) { return x > 0.0 ? 1.0 : 0.0; });
}

Var LeakyRelu(const Var& a, double negative_slope) {
  return UnaryElementwise(
      a,
      [negative_slope](double x) {
        return x > 0.0 ? x : negative_slope * x;
      },
      [negative_slope](double x, double /*y*/) {
        return x > 0.0 ? 1.0 : negative_slope;
      });
}

Var Tanh(const Var& a) {
  return UnaryElementwise(
      a, [](double x) { return std::tanh(x); },
      [](double /*x*/, double y) { return 1.0 - y * y; });
}

Var Sigmoid(const Var& a) {
  return UnaryElementwise(
      a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); },
      [](double /*x*/, double y) { return y * (1.0 - y); });
}

Var SoftmaxRows(const Var& a) {
  Tensor out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    double mx = out.At(r, 0);
    for (int c = 1; c < out.cols(); ++c) mx = std::max(mx, out.At(r, c));
    double sum = 0.0;
    for (int c = 0; c < out.cols(); ++c) {
      out.At(r, c) = std::exp(out.At(r, c) - mx);
      sum += out.At(r, c);
    }
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) /= sum;
  }
  auto ai = a.impl();
  return MakeResult(std::move(out), {a}, [ai](VarImpl& self) {
    // dx = y ⊙ (dy − rowsum(dy ⊙ y))
    Tensor g(self.grad.rows(), self.grad.cols());
    for (int r = 0; r < g.rows(); ++r) {
      double dot = 0.0;
      for (int c = 0; c < g.cols(); ++c) {
        dot += self.grad.At(r, c) * self.value.At(r, c);
      }
      for (int c = 0; c < g.cols(); ++c) {
        g.At(r, c) = self.value.At(r, c) * (self.grad.At(r, c) - dot);
      }
    }
    ai->AccumGrad(std::move(g));
  });
}

Var ConcatCols(const std::vector<Var>& parts) {
  HEAD_CHECK(!parts.empty());
  const int rows = parts[0].value().rows();
  int cols = 0;
  for (const Var& p : parts) {
    HEAD_CHECK_EQ(p.value().rows(), rows);
    cols += p.value().cols();
  }
  Tensor out(rows, cols);
  int off = 0;
  for (const Var& p : parts) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < p.value().cols(); ++c) {
        out.At(r, off + c) = p.value().At(r, c);
      }
    }
    off += p.value().cols();
  }
  std::vector<std::shared_ptr<VarImpl>> impls;
  for (const Var& p : parts) impls.push_back(p.impl());
  return MakeResult(std::move(out), parts, [impls](VarImpl& self) {
    int off = 0;
    for (const auto& pi : impls) {
      const int pc = pi->value.cols();
      Tensor g(pi->value.rows(), pc);
      for (int r = 0; r < g.rows(); ++r) {
        for (int c = 0; c < pc; ++c) g.At(r, c) = self.grad.At(r, off + c);
      }
      pi->AccumGrad(std::move(g));
      off += pc;
    }
  });
}

Var ConcatRows(const std::vector<Var>& parts) {
  HEAD_CHECK(!parts.empty());
  const int cols = parts[0].value().cols();
  int rows = 0;
  for (const Var& p : parts) {
    HEAD_CHECK_EQ(p.value().cols(), cols);
    rows += p.value().rows();
  }
  Tensor out(rows, cols);
  int off = 0;
  for (const Var& p : parts) {
    for (int r = 0; r < p.value().rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.At(off + r, c) = p.value().At(r, c);
    }
    off += p.value().rows();
  }
  std::vector<std::shared_ptr<VarImpl>> impls;
  for (const Var& p : parts) impls.push_back(p.impl());
  return MakeResult(std::move(out), parts, [impls](VarImpl& self) {
    int off = 0;
    for (const auto& pi : impls) {
      const int pr = pi->value.rows();
      Tensor g(pr, pi->value.cols());
      for (int r = 0; r < pr; ++r) {
        for (int c = 0; c < g.cols(); ++c) g.At(r, c) = self.grad.At(off + r, c);
      }
      pi->AccumGrad(std::move(g));
      off += pr;
    }
  });
}

Var SliceCols(const Var& a, int c0, int c1) {
  HEAD_CHECK(0 <= c0 && c0 < c1 && c1 <= a.value().cols());
  Tensor out(a.value().rows(), c1 - c0);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) = a.value().At(r, c0 + c);
  }
  auto ai = a.impl();
  return MakeResult(std::move(out), {a}, [ai, c0](VarImpl& self) {
    Tensor g = Tensor::Zeros(ai->value.rows(), ai->value.cols());
    for (int r = 0; r < self.grad.rows(); ++r) {
      for (int c = 0; c < self.grad.cols(); ++c) {
        g.At(r, c0 + c) = self.grad.At(r, c);
      }
    }
    ai->AccumGrad(std::move(g));
  });
}

Var SliceRows(const Var& a, int r0, int r1) {
  HEAD_CHECK(0 <= r0 && r0 < r1 && r1 <= a.value().rows());
  Tensor out(r1 - r0, a.value().cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) = a.value().At(r0 + r, c);
  }
  auto ai = a.impl();
  return MakeResult(std::move(out), {a}, [ai, r0](VarImpl& self) {
    Tensor g = Tensor::Zeros(ai->value.rows(), ai->value.cols());
    for (int r = 0; r < self.grad.rows(); ++r) {
      for (int c = 0; c < self.grad.cols(); ++c) {
        g.At(r0 + r, c) = self.grad.At(r, c);
      }
    }
    ai->AccumGrad(std::move(g));
  });
}

Var Reshape(const Var& a, int rows, int cols) {
  HEAD_CHECK_EQ(a.value().size(), rows * cols);
  Tensor out(rows, cols, a.value().data());
  auto ai = a.impl();
  return MakeResult(std::move(out), {a}, [ai](VarImpl& self) {
    ai->AccumGrad(Tensor(ai->value.rows(), ai->value.cols(),
                         self.grad.data()));
  });
}

Var Sum(const Var& a) {
  double s = 0.0;
  for (int i = 0; i < a.value().size(); ++i) s += a.value()[i];
  auto ai = a.impl();
  return MakeResult(Tensor::Full(1, 1, s), {a}, [ai](VarImpl& self) {
    ai->AccumGrad(
        Tensor::Full(ai->value.rows(), ai->value.cols(), self.grad[0]));
  });
}

Var Mean(const Var& a) {
  HEAD_CHECK_GT(a.value().size(), 0);
  return Scale(Sum(a), 1.0 / a.value().size());
}

Var Square(const Var& a) {
  return UnaryElementwise(
      a, [](double x) { return x * x; },
      [](double x, double /*y*/) { return 2.0 * x; });
}

Var MseLoss(const Var& pred, const Var& target) {
  HEAD_CHECK_EQ(pred.value().rows(), target.value().rows());
  HEAD_CHECK_EQ(pred.value().cols(), target.value().cols());
  return Mean(Square(Sub(pred, target)));
}

Var GatherRows(const Var& a, std::vector<int> rows) {
  const Tensor& av = a.value();
  const int cols = av.cols();
  Tensor out(static_cast<int>(rows.size()), cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    const int r = rows[i];
    HEAD_CHECK(r >= 0 && r < av.rows());
    const double* src = av.data().data() + static_cast<size_t>(r) * cols;
    double* dst = out.data().data() + i * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c];
  }
  auto ai = a.impl();
  return MakeResult(std::move(out), {a},
                    [ai, rows = std::move(rows)](VarImpl& self) {
                      Tensor g =
                          Tensor::Zeros(ai->value.rows(), ai->value.cols());
                      const int cols = g.cols();
                      for (size_t i = 0; i < rows.size(); ++i) {
                        const double* src =
                            self.grad.data().data() + i * cols;
                        double* dst = g.data().data() +
                                      static_cast<size_t>(rows[i]) * cols;
                        for (int c = 0; c < cols; ++c) dst[c] += src[c];
                      }
                      ai->AccumGrad(std::move(g));
                    });
}

Var SelectColumnPerRow(const Var& a, std::vector<int> cols) {
  const Tensor& av = a.value();
  HEAD_CHECK_EQ(static_cast<int>(cols.size()), av.rows());
  Tensor out(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    HEAD_CHECK(cols[r] >= 0 && cols[r] < av.cols());
    out[r] = av.At(r, cols[r]);
  }
  auto ai = a.impl();
  return MakeResult(std::move(out), {a},
                    [ai, cols = std::move(cols)](VarImpl& self) {
                      Tensor g =
                          Tensor::Zeros(ai->value.rows(), ai->value.cols());
                      for (int r = 0; r < g.rows(); ++r) {
                        g.At(r, cols[r]) = self.grad[r];
                      }
                      ai->AccumGrad(std::move(g));
                    });
}

Var RowwiseMax(const Var& a) {
  const Tensor& av = a.value();
  HEAD_CHECK_GT(av.cols(), 0);
  Tensor out(av.rows(), 1);
  std::vector<int> argmax(av.rows());
  for (int r = 0; r < av.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < av.cols(); ++c) {
      if (av.At(r, c) > av.At(r, best)) best = c;
    }
    argmax[r] = best;
    out[r] = av.At(r, best);
  }
  auto ai = a.impl();
  return MakeResult(std::move(out), {a},
                    [ai, argmax = std::move(argmax)](VarImpl& self) {
                      Tensor g =
                          Tensor::Zeros(ai->value.rows(), ai->value.cols());
                      for (int r = 0; r < g.rows(); ++r) {
                        g.At(r, argmax[r]) = self.grad[r];
                      }
                      ai->AccumGrad(std::move(g));
                    });
}

Var SumRows(const Var& a) {
  Tensor out = SumRows(a.value());
  auto ai = a.impl();
  return MakeResult(std::move(out), {a}, [ai](VarImpl& self) {
    Tensor g(ai->value.rows(), ai->value.cols());
    const int cols = g.cols();
    const double* src = self.grad.data().data();
    for (int r = 0; r < g.rows(); ++r) {
      double* dst = g.data().data() + static_cast<size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) dst[c] = src[c];
    }
    ai->AccumGrad(std::move(g));
  });
}

Var ScaleRows(const Var& a, const Var& scale) {
  const Tensor& av = a.value();
  const Tensor& sv = scale.value();
  HEAD_CHECK_EQ(sv.rows(), av.rows());
  HEAD_CHECK_EQ(sv.cols(), 1);
  Tensor out(av.rows(), av.cols());
  const int cols = av.cols();
  for (int r = 0; r < av.rows(); ++r) {
    const double s = sv[r];
    const double* src = av.data().data() + static_cast<size_t>(r) * cols;
    double* dst = out.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c] * s;
  }
  auto ai = a.impl();
  auto si = scale.impl();
  return MakeResult(std::move(out), {a, scale}, [ai, si](VarImpl& self) {
    const int rows = ai->value.rows();
    const int cols = ai->value.cols();
    Tensor ga(rows, cols);
    Tensor gs(rows, 1);
    for (int r = 0; r < rows; ++r) {
      const double s = si->value[r];
      const double* gout =
          self.grad.data().data() + static_cast<size_t>(r) * cols;
      const double* arow =
          ai->value.data().data() + static_cast<size_t>(r) * cols;
      double* garow = ga.data().data() + static_cast<size_t>(r) * cols;
      double dot = 0.0;
      for (int c = 0; c < cols; ++c) {
        garow[c] = gout[c] * s;
        dot += gout[c] * arow[c];
      }
      gs[r] = dot;
    }
    ai->AccumGrad(std::move(ga));
    si->AccumGrad(std::move(gs));
  });
}

Var SumRowGroups(const Var& a, int group_size) {
  const Tensor& av = a.value();
  HEAD_CHECK_GT(group_size, 0);
  HEAD_CHECK_EQ(av.rows() % group_size, 0);
  const int groups = av.rows() / group_size;
  const int cols = av.cols();
  Tensor out(groups, cols);
  for (int g = 0; g < groups; ++g) {
    double* dst = out.data().data() + static_cast<size_t>(g) * cols;
    for (int n = 0; n < group_size; ++n) {
      const double* src =
          av.data().data() +
          static_cast<size_t>(g * group_size + n) * cols;
      for (int c = 0; c < cols; ++c) dst[c] += src[c];
    }
  }
  auto ai = a.impl();
  return MakeResult(std::move(out), {a}, [ai, group_size](VarImpl& self) {
    const int cols = ai->value.cols();
    Tensor g(ai->value.rows(), cols);
    for (int r = 0; r < g.rows(); ++r) {
      const double* src =
          self.grad.data().data() + static_cast<size_t>(r / group_size) * cols;
      double* dst = g.data().data() + static_cast<size_t>(r) * cols;
      for (int c = 0; c < cols; ++c) dst[c] = src[c];
    }
    ai->AccumGrad(std::move(g));
  });
}

}  // namespace head::nn
