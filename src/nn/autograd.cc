#include "nn/autograd.h"

#include <atomic>
#include <cmath>
#include <initializer_list>
#include <utility>

#include "common/check.h"
#include "nn/arena.h"
#include "nn/kernels/simd.h"
#include "nn/plan.h"

namespace head::nn {

using internal::VarImpl;

Var::Var(std::shared_ptr<VarImpl> owner)
    : node_(owner.get()), owner_(std::move(owner)) {}

Var Var::Param(Tensor value) {
  auto owner = std::make_shared<VarImpl>();
  owner->value = std::move(value);
  owner->requires_grad = true;
  return Var(std::move(owner));
}

Var Var::Constant(Tensor value) {
  if (plan_internal::Active()) {
    // Captured constants freeze into the plan (initial LSTM state, ones
    // columns, …). Per-step data must come in through nn::PlanInput.
    VarImpl* node = plan_internal::NewNode();
    node->value = std::move(value);
    return Var(node, 0);
  }
  GraphArena& arena = GraphArena::ThreadLocal();
  VarImpl* node = arena.New();
  node->value = std::move(value);
  return Var(node, arena.epoch());
}

bool Var::alive() const {
  return node_ != nullptr && (owner_ != nullptr || node_->epoch == epoch_);
}

const Tensor& Var::value() const {
  HEAD_CHECK(defined());
  HEAD_DCHECK(alive());
  return node_->value;
}

Tensor& Var::mutable_value() {
  HEAD_CHECK(defined());
  HEAD_DCHECK(alive());
  return node_->value;
}

const Tensor& Var::grad() const {
  HEAD_CHECK(defined());
  HEAD_DCHECK(alive());
  if (node_->grad.empty()) {
    node_->grad = Tensor::Zeros(node_->value.rows(), node_->value.cols());
  }
  return node_->grad;
}

Tensor& Var::mutable_grad() {
  HEAD_CHECK(defined());
  HEAD_DCHECK(alive());
  if (node_->grad.empty()) {
    node_->grad = Tensor::Zeros(node_->value.rows(), node_->value.cols());
  }
  return node_->grad;
}

bool Var::requires_grad() const {
  HEAD_CHECK(defined());
  HEAD_DCHECK(alive());
  return node_->requires_grad;
}

void Var::ZeroGrad() {
  HEAD_CHECK(defined());
  HEAD_DCHECK(alive());
  if (!node_->grad.empty()) node_->grad.SetZero();
}

namespace {

thread_local bool g_grad_enabled = true;

/// Backward traversal stamps come from one process-wide counter so marks
/// never collide even if graphs sharing persistent leaves are differentiated
/// from different threads over the process lifetime.
std::atomic<uint64_t> g_traversal_counter{0};

uint64_t NextTraversalMark() {
  return g_traversal_counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Creates a result node from the thread's arena; records parents/backward
/// only if needed. `inputs` is a stack-backed pointer list — no per-op
/// container allocation. Under plan capture (plan.h) the node comes from
/// the plan's persistent storage instead, parents are always recorded
/// (replay needs the data edges even with gradients disabled), and
/// `forward` — the op's replay-recompute function — is frozen in.
Var MakeResult(const char* op, Tensor value,
               std::initializer_list<const Var*> inputs,
               void (*backward)(VarImpl&), void (*forward)(VarImpl&)) {
  bool needs = false;
  for (const Var* v : inputs) {
    HEAD_CHECK(v->defined());
    HEAD_DCHECK(v->alive());
    if (v->node()->requires_grad) needs = true;
  }
  if (!g_grad_enabled) needs = false;
  if (plan_internal::Active()) {
    VarImpl* node = plan_internal::NewNode();
    node->value = std::move(value);
    node->requires_grad = needs;
    node->op_name = op;
    node->forward = forward;
    for (const Var* v : inputs) node->parents.push_back(v->node());
    if (needs) node->backward = backward;
    return Var(node, 0);
  }
  GraphArena& arena = GraphArena::ThreadLocal();
  VarImpl* node = arena.New();
  node->value = std::move(value);
  node->requires_grad = needs;
  node->op_name = op;
  if (needs) {
    for (const Var* v : inputs) node->parents.push_back(v->node());
    node->backward = backward;
  }
  return Var(node, arena.epoch());
}

/// Variadic-input overload (Concat ops).
Var MakeResult(const char* op, Tensor value, const std::vector<Var>& inputs,
               void (*backward)(VarImpl&), void (*forward)(VarImpl&)) {
  bool needs = false;
  for (const Var& v : inputs) {
    HEAD_CHECK(v.defined());
    HEAD_DCHECK(v.alive());
    if (v.node()->requires_grad) needs = true;
  }
  if (!g_grad_enabled) needs = false;
  if (plan_internal::Active()) {
    VarImpl* node = plan_internal::NewNode();
    node->value = std::move(value);
    node->requires_grad = needs;
    node->op_name = op;
    node->forward = forward;
    node->parents.reserve(inputs.size());
    for (const Var& v : inputs) node->parents.push_back(v.node());
    if (needs) node->backward = backward;
    return Var(node, 0);
  }
  GraphArena& arena = GraphArena::ThreadLocal();
  VarImpl* node = arena.New();
  node->value = std::move(value);
  node->requires_grad = needs;
  node->op_name = op;
  if (needs) {
    node->parents.reserve(inputs.size());
    for (const Var& v : inputs) node->parents.push_back(v.node());
    node->backward = backward;
  }
  return Var(node, arena.epoch());
}

}  // namespace

bool GradEnabled() { return g_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(g_grad_enabled) { g_grad_enabled = false; }

NoGradGuard::~NoGradGuard() { g_grad_enabled = prev_; }

void Backward(const Var& loss) {
  HEAD_PROF_SCOPE("nn.backward");
  obs::ScopedProfPhase prof_phase(obs::ProfPhase::kBackward);
  HEAD_CHECK(loss.defined());
  HEAD_DCHECK(loss.alive());
  HEAD_CHECK_EQ(loss.value().rows(), 1);
  HEAD_CHECK_EQ(loss.value().cols(), 1);
  VarImpl* root = loss.node();
  GraphArena& arena = GraphArena::ThreadLocal();
  std::vector<VarImpl*>& order = arena.order_scratch();
  std::vector<std::pair<VarImpl*, size_t>>& stack = arena.stack_scratch();
  order.clear();  // capacity retained: reserved to the last call's node count
  stack.clear();

  // Explicit-stack DFS producing exactly the recursive post-order: a node is
  // marked when first reached (pushed), children are expanded left to right,
  // and the node is emitted once its last child subtree completes.
  const uint64_t mark = NextTraversalMark();
  root->visit_mark = mark;
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    std::pair<VarImpl*, size_t>& top = stack.back();
    VarImpl* node = top.first;
    if (top.second < node->parents.size()) {
      VarImpl* parent = node->parents[top.second++];
      if (parent->visit_mark != mark) {
        parent->visit_mark = mark;
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }

  root->AccumGrad(Tensor::Full(1, 1, 1.0));
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    VarImpl& node = **it;
    if (node.backward != nullptr && !node.grad.empty()) {
      // Per-node attribution: the node's own loops count as self time, the
      // GEMMs its closure calls show up as nested kernel.* rows.
      HEAD_PROF_OP(node.op_name != nullptr ? node.op_name : "nn.op",
                   node.value.rows(), node.value.cols(), 0, 0, 0);
      node.backward(node);
    }
  }
  if (plan_internal::Active()) {
    // Plan capture: freeze the reverse schedule instead of tearing the tape
    // down — replay re-runs these exact closures in this exact order.
    // Intermediate grads are still dropped, so the captured step leaves the
    // same observable state (param grads only) as an eager step.
    plan_internal::RecordBackward(root, order);
    for (VarImpl* node : order) {
      if (node->backward != nullptr) node->grad = Tensor();
    }
    return;
  }
  // Release intermediate gradients/graph edges so only leaf grads persist
  // and repeated Backward calls cannot double-apply backward functions.
  for (VarImpl* node : order) {
    if (node->backward != nullptr) {
      node->backward = nullptr;
      node->parents.clear();
      node->grad = Tensor();
    }
  }
}

namespace {

void MatMulBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  VarImpl* b = self.parents[1];
  if (a->requires_grad) a->AccumGrad(MatMulTransposeB(self.grad, b->value));
  if (b->requires_grad) b->AccumGrad(MatMulTransposeA(a->value, self.grad));
}

void AffineBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  VarImpl* b = self.parents[1];
  VarImpl* bias = self.parents[2];
  if (a->requires_grad) a->AccumGrad(MatMulTransposeB(self.grad, b->value));
  if (b->requires_grad) b->AccumGrad(MatMulTransposeA(a->value, self.grad));
  if (bias->requires_grad) bias->AccumGrad(SumRows(self.grad));
}

kernels::ActKind ToActKind(FusedAct act) {
  switch (act) {
    case FusedAct::kNone: return kernels::ActKind::kNone;
    case FusedAct::kRelu: return kernels::ActKind::kRelu;
    case FusedAct::kLeakyRelu: return kernels::ActKind::kLeakyRelu;
    case FusedAct::kTanh: return kernels::ActKind::kTanh;
    case FusedAct::kSigmoid: return kernels::ActKind::kSigmoid;
  }
  return kernels::ActKind::kNone;
}

void AffineActBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  VarImpl* b = self.parents[1];
  VarImpl* bias = self.parents[2];
  // Fold act'(y) into the upstream gradient once, then reuse the premul'd
  // gradient for all three affine grads. The derivative comes from the
  // node's *output* (y > 0 ⟺ pre > 0 for relu/leaky; tanh/sigmoid
  // derivatives are functions of y), so the pre-activation is never stored.
  const auto kind = static_cast<kernels::ActKind>(self.aux_i);
  Tensor dpre(self.grad.rows(), self.grad.cols());
  kernels::ActBackward(kind, self.aux_d, dpre.size(),
                       self.value.data().data(), self.grad.data().data(),
                       dpre.data().data());
  if (a->requires_grad) a->AccumGrad(MatMulTransposeB(dpre, b->value));
  if (b->requires_grad) b->AccumGrad(MatMulTransposeA(a->value, dpre));
  if (bias->requires_grad) bias->AccumGrad(SumRows(dpre));
}

void DualAffineBackward(VarImpl& self) {
  VarImpl* a1 = self.parents[0];
  VarImpl* b1 = self.parents[1];
  VarImpl* a2 = self.parents[2];
  VarImpl* b2 = self.parents[3];
  VarImpl* bias = self.parents[4];
  if (a1->requires_grad) a1->AccumGrad(MatMulTransposeB(self.grad, b1->value));
  if (b1->requires_grad) b1->AccumGrad(MatMulTransposeA(a1->value, self.grad));
  if (a2->requires_grad) a2->AccumGrad(MatMulTransposeB(self.grad, b2->value));
  if (b2->requires_grad) b2->AccumGrad(MatMulTransposeA(a2->value, self.grad));
  if (bias->requires_grad) bias->AccumGrad(SumRows(self.grad));
}

void AddBackward(VarImpl& self) {
  self.parents[0]->AccumGrad(self.grad);
  self.parents[1]->AccumGrad(self.grad);
}

void SubBackward(VarImpl& self) {
  self.parents[0]->AccumGrad(self.grad);
  self.parents[1]->AccumGrad(Scale(self.grad, -1.0));
}

void MulBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  VarImpl* b = self.parents[1];
  a->AccumGrad(Mul(self.grad, b->value));
  b->AccumGrad(Mul(self.grad, a->value));
}

void ScaleBackward(VarImpl& self) {
  self.parents[0]->AccumGrad(Scale(self.grad, self.aux_d));
}

void PassThroughBackward(VarImpl& self) {
  self.parents[0]->AccumGrad(self.grad);
}

void AddRowBroadcastBackward(VarImpl& self) {
  self.parents[0]->AccumGrad(self.grad);
  self.parents[1]->AccumGrad(SumRows(self.grad));
}

// ---- Plan-replay forward functions ----
//
// Each re-runs its op's eager arithmetic verbatim against the node's
// (re-fed) parents: the same kernel-table entry points, the same loop
// structure, the same HEAD_PROF_OP line — so a replayed step is bitwise
// identical to the eager step it was captured from, and the profiler
// attributes replayed ops under the same keys. Output geometry is static
// per plan and read back from the node's previous value where needed.

void MatMulForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  const Tensor& b = self.parents[1]->value;
  HEAD_PROF_OP("nn.MatMul", a.rows(), b.cols(), a.cols(), 0, 0);
  self.value = MatMul(a, b);
}

void AffineForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  const Tensor& b = self.parents[1]->value;
  HEAD_PROF_OP("nn.Affine", a.rows(), b.cols(), a.cols(), 0, 0);
  self.value = Affine(a, b, self.parents[2]->value);
}

void AffineActForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  const Tensor& b = self.parents[1]->value;
  HEAD_PROF_OP("nn.AffineAct", a.rows(), b.cols(), a.cols(), 0, 0);
  Tensor out = Affine(a, b, self.parents[2]->value);
  kernels::ActForward(static_cast<kernels::ActKind>(self.aux_i), self.aux_d,
                      out.size(), out.data().data());
  self.value = std::move(out);
}

void DualAffineForward(VarImpl& self) {
  const Tensor& a1 = self.parents[0]->value;
  const Tensor& b1 = self.parents[1]->value;
  const Tensor& a2 = self.parents[2]->value;
  const Tensor& b2 = self.parents[3]->value;
  const Tensor& bias = self.parents[4]->value;
  const int m = a1.rows(), n = b1.cols();
  HEAD_PROF_OP("nn.DualAffine", m, n, a1.cols(), 0, 0);
  Tensor out = Tensor::Uninitialized(m, n);
  kernels::GemmNN(m, n, a1.cols(), a1.data().data(), b1.data().data(),
                  bias.data().data(), kernels::GemmInit::kBias,
                  out.data().data());
  kernels::GemmNN(m, n, a2.cols(), a2.data().data(), b2.data().data(),
                  /*bias=*/nullptr, kernels::GemmInit::kAccumulate,
                  out.data().data());
  self.value = std::move(out);
}

void AddForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.Add", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{24} * a.size());
  self.value = Add(a, self.parents[1]->value);
}

void SubForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.Sub", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{24} * a.size());
  self.value = Sub(a, self.parents[1]->value);
}

void MulForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.Mul", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{24} * a.size());
  self.value = Mul(a, self.parents[1]->value);
}

void ScaleForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.Scale", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{16} * a.size());
  self.value = Scale(a, self.aux_d);
}

void AddScalarForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.AddScalar", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{16} * a.size());
  const double s = self.aux_d;
  Tensor out = a;
  for (int i = 0; i < out.size(); ++i) out[i] += s;
  self.value = std::move(out);
}

void AddRowBroadcastForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.AddRowBroadcast", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{24} * a.size());
  self.value = AddRowBroadcast(a, self.parents[1]->value);
}

}  // namespace

Var MatMul(const Var& a, const Var& b) {
  HEAD_PROF_OP("nn.MatMul", a.value().rows(), b.value().cols(),
               a.value().cols(), 0, 0);  // flops live on the nested kernel
  Tensor out = MatMul(a.value(), b.value());
  return MakeResult("nn.MatMul", std::move(out), {&a, &b}, MatMulBackward,
                    MatMulForward);
}

Var Affine(const Var& a, const Var& b, const Var& bias) {
  HEAD_PROF_OP("nn.Affine", a.value().rows(), b.value().cols(),
               a.value().cols(), 0, 0);
  Tensor out = Affine(a.value(), b.value(), bias.value());
  return MakeResult("nn.Affine", std::move(out), {&a, &b, &bias},
                    AffineBackward, AffineForward);
}

Var AffineAct(const Var& a, const Var& b, const Var& bias, FusedAct act,
              double leaky_slope) {
  if (act == FusedAct::kNone) return Affine(a, b, bias);
  HEAD_PROF_OP("nn.AffineAct", a.value().rows(), b.value().cols(),
               a.value().cols(), 0, 0);
  Tensor out = Affine(a.value(), b.value(), bias.value());
  const kernels::ActKind kind = ToActKind(act);
  kernels::ActForward(kind, leaky_slope, out.size(), out.data().data());
  Var result = MakeResult("nn.AffineAct", std::move(out), {&a, &b, &bias},
                          AffineActBackward, AffineActForward);
  result.node()->aux_i = static_cast<int>(kind);
  result.node()->aux_d = leaky_slope;
  return result;
}

Var DualAffine(const Var& a1, const Var& b1, const Var& a2, const Var& b2,
               const Var& bias) {
  HEAD_CHECK_EQ(a1.value().cols(), b1.value().rows());
  HEAD_CHECK_EQ(a2.value().cols(), b2.value().rows());
  HEAD_CHECK_EQ(a1.value().rows(), a2.value().rows());
  HEAD_CHECK_EQ(b1.value().cols(), b2.value().cols());
  HEAD_CHECK_EQ(bias.value().rows(), 1);
  HEAD_CHECK_EQ(bias.value().cols(), b1.value().cols());
  const int m = a1.value().rows(), n = b1.value().cols();
  HEAD_PROF_OP("nn.DualAffine", m, n, a1.value().cols(), 0, 0);
  Tensor out = Tensor::Uninitialized(m, n);
  kernels::GemmNN(m, n, a1.value().cols(), a1.value().data().data(),
                  b1.value().data().data(), bias.value().data().data(),
                  kernels::GemmInit::kBias, out.data().data());
  kernels::GemmNN(m, n, a2.value().cols(), a2.value().data().data(),
                  b2.value().data().data(), /*bias=*/nullptr,
                  kernels::GemmInit::kAccumulate, out.data().data());
  return MakeResult("nn.DualAffine", std::move(out),
                    {&a1, &b1, &a2, &b2, &bias}, DualAffineBackward,
                    DualAffineForward);
}

Var Add(const Var& a, const Var& b) {
  HEAD_PROF_OP("nn.Add", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{24} * a.value().size());
  Tensor out = Add(a.value(), b.value());
  return MakeResult("nn.Add", std::move(out), {&a, &b}, AddBackward,
                    AddForward);
}

Var Sub(const Var& a, const Var& b) {
  HEAD_PROF_OP("nn.Sub", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{24} * a.value().size());
  Tensor out = Sub(a.value(), b.value());
  return MakeResult("nn.Sub", std::move(out), {&a, &b}, SubBackward,
                    SubForward);
}

Var Mul(const Var& a, const Var& b) {
  HEAD_PROF_OP("nn.Mul", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{24} * a.value().size());
  Tensor out = Mul(a.value(), b.value());
  return MakeResult("nn.Mul", std::move(out), {&a, &b}, MulBackward,
                    MulForward);
}

Var Scale(const Var& a, double s) {
  HEAD_PROF_OP("nn.Scale", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{16} * a.value().size());
  Tensor out = Scale(a.value(), s);
  Var result = MakeResult("nn.Scale", std::move(out), {&a}, ScaleBackward,
                          ScaleForward);
  result.node()->aux_d = s;
  return result;
}

Var AddScalar(const Var& a, double s) {
  HEAD_PROF_OP("nn.AddScalar", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{16} * a.value().size());
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] += s;
  Var result = MakeResult("nn.AddScalar", std::move(out), {&a},
                          PassThroughBackward, AddScalarForward);
  result.node()->aux_d = s;
  return result;
}

Var AddRowBroadcast(const Var& a, const Var& row) {
  HEAD_PROF_OP("nn.AddRowBroadcast", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{24} * a.value().size());
  Tensor out = AddRowBroadcast(a.value(), row.value());
  return MakeResult("nn.AddRowBroadcast", std::move(out), {&a, &row},
                    AddRowBroadcastBackward, AddRowBroadcastForward);
}

namespace {

/// Element-wise backward: g = dL/dout ⊙ DFn(x, y) with x the input value
/// and y the op's output value. Instantiated per op with a plain function,
/// so the recorded backward stays a capture-free function pointer.
template <double (*DFn)(double x, double y)>
void UnaryBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  Tensor g(self.grad.rows(), self.grad.cols());
  for (int i = 0; i < g.size(); ++i) {
    g[i] = self.grad[i] * DFn(a->value[i], self.value[i]);
  }
  a->AccumGrad(std::move(g));
}

void LeakyReluBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  const double negative_slope = self.aux_d;
  Tensor g(self.grad.rows(), self.grad.cols());
  for (int i = 0; i < g.size(); ++i) {
    g[i] = self.grad[i] * (a->value[i] > 0.0 ? 1.0 : negative_slope);
  }
  a->AccumGrad(std::move(g));
}

// Scalar forward functions shared by the eager op and its plan-replay
// function — one definition, so the two paths cannot drift.
double ReluF(double x) { return x > 0.0 ? x : 0.0; }
double TanhF(double x) { return std::tanh(x); }
double SigmoidF(double x) { return 1.0 / (1.0 + std::exp(-x)); }
double SquareF(double x) { return x * x; }

template <double (*Fwd)(double)>
void UnaryForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP(self.op_name, a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{16} * a.size());
  Tensor out = a;
  for (int i = 0; i < out.size(); ++i) out[i] = Fwd(out[i]);
  self.value = std::move(out);
}

void LeakyReluForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.LeakyRelu", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{16} * a.size());
  const double negative_slope = self.aux_d;
  Tensor out = a;
  for (int i = 0; i < out.size(); ++i) {
    out[i] = out[i] > 0.0 ? out[i] : negative_slope * out[i];
  }
  self.value = std::move(out);
}

template <typename FwdFn>
Var UnaryElementwise(const char* op, const Var& a, FwdFn fwd,
                     void (*backward)(VarImpl&), void (*forward)(VarImpl&)) {
  HEAD_PROF_OP(op, a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{16} * a.value().size());
  Tensor out = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] = fwd(out[i]);
  return MakeResult(op, std::move(out), {&a}, backward, forward);
}

double ReluD(double x, double /*y*/) { return x > 0.0 ? 1.0 : 0.0; }
double TanhD(double /*x*/, double y) { return 1.0 - y * y; }
double SigmoidD(double /*x*/, double y) { return y * (1.0 - y); }
double SquareD(double x, double /*y*/) { return 2.0 * x; }

}  // namespace

Var Relu(const Var& a) {
  return UnaryElementwise("nn.Relu", a, ReluF, UnaryBackward<ReluD>,
                          UnaryForward<ReluF>);
}

Var LeakyRelu(const Var& a, double negative_slope) {
  Var result = UnaryElementwise(
      "nn.LeakyRelu", a,
      [negative_slope](double x) { return x > 0.0 ? x : negative_slope * x; },
      LeakyReluBackward, LeakyReluForward);
  result.node()->aux_d = negative_slope;
  return result;
}

Var Tanh(const Var& a) {
  return UnaryElementwise("nn.Tanh", a, TanhF, UnaryBackward<TanhD>,
                          UnaryForward<TanhF>);
}

Var Sigmoid(const Var& a) {
  return UnaryElementwise("nn.Sigmoid", a, SigmoidF, UnaryBackward<SigmoidD>,
                          UnaryForward<SigmoidF>);
}

namespace {

void SoftmaxRowsBackward(VarImpl& self) {
  // dx = y ⊙ (dy − rowsum(dy ⊙ y))
  Tensor g(self.grad.rows(), self.grad.cols());
  for (int r = 0; r < g.rows(); ++r) {
    double dot = 0.0;
    for (int c = 0; c < g.cols(); ++c) {
      dot += self.grad.At(r, c) * self.value.At(r, c);
    }
    for (int c = 0; c < g.cols(); ++c) {
      g.At(r, c) = self.value.At(r, c) * (self.grad.At(r, c) - dot);
    }
  }
  self.parents[0]->AccumGrad(std::move(g));
}

void SoftmaxRowsForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.SoftmaxRows", a.rows(), a.cols(), 0, int64_t{5} * a.size(),
               int64_t{16} * a.size());
  Tensor out = a;
  for (int r = 0; r < out.rows(); ++r) {
    double mx = out.At(r, 0);
    for (int c = 1; c < out.cols(); ++c) mx = std::max(mx, out.At(r, c));
    double sum = 0.0;
    for (int c = 0; c < out.cols(); ++c) {
      out.At(r, c) = std::exp(out.At(r, c) - mx);
      sum += out.At(r, c);
    }
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) /= sum;
  }
  self.value = std::move(out);
}

}  // namespace

Var SoftmaxRows(const Var& a) {
  HEAD_PROF_OP("nn.SoftmaxRows", a.value().rows(), a.value().cols(), 0,
               int64_t{5} * a.value().size(),
               int64_t{16} * a.value().size());
  Tensor out = a.value();
  for (int r = 0; r < out.rows(); ++r) {
    double mx = out.At(r, 0);
    for (int c = 1; c < out.cols(); ++c) mx = std::max(mx, out.At(r, c));
    double sum = 0.0;
    for (int c = 0; c < out.cols(); ++c) {
      out.At(r, c) = std::exp(out.At(r, c) - mx);
      sum += out.At(r, c);
    }
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) /= sum;
  }
  return MakeResult("nn.SoftmaxRows", std::move(out), {&a},
                    SoftmaxRowsBackward, SoftmaxRowsForward);
}

namespace {

void ConcatColsBackward(VarImpl& self) {
  int off = 0;
  for (VarImpl* pi : self.parents) {
    const int pc = pi->value.cols();
    Tensor g(pi->value.rows(), pc);
    for (int r = 0; r < g.rows(); ++r) {
      for (int c = 0; c < pc; ++c) g.At(r, c) = self.grad.At(r, off + c);
    }
    pi->AccumGrad(std::move(g));
    off += pc;
  }
}

void ConcatRowsBackward(VarImpl& self) {
  int off = 0;
  for (VarImpl* pi : self.parents) {
    const int pr = pi->value.rows();
    Tensor g(pr, pi->value.cols());
    for (int r = 0; r < pr; ++r) {
      for (int c = 0; c < g.cols(); ++c) g.At(r, c) = self.grad.At(off + r, c);
    }
    pi->AccumGrad(std::move(g));
    off += pr;
  }
}

void ConcatColsForward(VarImpl& self) {
  const int rows = self.value.rows();
  const int cols = self.value.cols();
  HEAD_PROF_OP("nn.ConcatCols", rows, cols, 0, 0, int64_t{16} * rows * cols);
  Tensor out = Tensor::Uninitialized(rows, cols);
  int off = 0;
  for (VarImpl* pi : self.parents) {
    const Tensor& pv = pi->value;
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < pv.cols(); ++c) out.At(r, off + c) = pv.At(r, c);
    }
    off += pv.cols();
  }
  self.value = std::move(out);
}

void ConcatRowsForward(VarImpl& self) {
  const int rows = self.value.rows();
  const int cols = self.value.cols();
  HEAD_PROF_OP("nn.ConcatRows", rows, cols, 0, 0, int64_t{16} * rows * cols);
  Tensor out = Tensor::Uninitialized(rows, cols);
  int off = 0;
  for (VarImpl* pi : self.parents) {
    const Tensor& pv = pi->value;
    for (int r = 0; r < pv.rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.At(off + r, c) = pv.At(r, c);
    }
    off += pv.rows();
  }
  self.value = std::move(out);
}

}  // namespace

Var ConcatCols(const std::vector<Var>& parts) {
  HEAD_CHECK(!parts.empty());
  const int rows = parts[0].value().rows();
  int cols = 0;
  for (const Var& p : parts) {
    HEAD_CHECK_EQ(p.value().rows(), rows);
    cols += p.value().cols();
  }
  HEAD_PROF_OP("nn.ConcatCols", rows, cols, 0, 0,
               int64_t{16} * rows * cols);
  Tensor out = Tensor::Uninitialized(rows, cols);
  int off = 0;
  for (const Var& p : parts) {
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < p.value().cols(); ++c) {
        out.At(r, off + c) = p.value().At(r, c);
      }
    }
    off += p.value().cols();
  }
  return MakeResult("nn.ConcatCols", std::move(out), parts,
                    ConcatColsBackward, ConcatColsForward);
}

Var ConcatRows(const std::vector<Var>& parts) {
  HEAD_CHECK(!parts.empty());
  const int cols = parts[0].value().cols();
  int rows = 0;
  for (const Var& p : parts) {
    HEAD_CHECK_EQ(p.value().cols(), cols);
    rows += p.value().rows();
  }
  HEAD_PROF_OP("nn.ConcatRows", rows, cols, 0, 0,
               int64_t{16} * rows * cols);
  Tensor out = Tensor::Uninitialized(rows, cols);
  int off = 0;
  for (const Var& p : parts) {
    for (int r = 0; r < p.value().rows(); ++r) {
      for (int c = 0; c < cols; ++c) out.At(off + r, c) = p.value().At(r, c);
    }
    off += p.value().rows();
  }
  return MakeResult("nn.ConcatRows", std::move(out), parts,
                    ConcatRowsBackward, ConcatRowsForward);
}

namespace {

void SliceColsBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  const int c0 = self.aux_i;
  Tensor g = Tensor::Zeros(a->value.rows(), a->value.cols());
  for (int r = 0; r < self.grad.rows(); ++r) {
    for (int c = 0; c < self.grad.cols(); ++c) {
      g.At(r, c0 + c) = self.grad.At(r, c);
    }
  }
  a->AccumGrad(std::move(g));
}

void SliceRowsBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  const int r0 = self.aux_i;
  Tensor g = Tensor::Zeros(a->value.rows(), a->value.cols());
  for (int r = 0; r < self.grad.rows(); ++r) {
    for (int c = 0; c < self.grad.cols(); ++c) {
      g.At(r0 + r, c) = self.grad.At(r, c);
    }
  }
  a->AccumGrad(std::move(g));
}

void ReshapeBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  Tensor g(a->value.rows(), a->value.cols());
  for (int i = 0; i < g.size(); ++i) g[i] = self.grad[i];
  a->AccumGrad(std::move(g));
}

void SumBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  a->AccumGrad(Tensor::Full(a->value.rows(), a->value.cols(), self.grad[0]));
}

void SliceColsForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  const int c0 = self.aux_i;
  Tensor out = Tensor::Uninitialized(self.value.rows(), self.value.cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) = av.At(r, c0 + c);
  }
  self.value = std::move(out);
}

void SliceRowsForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  const int r0 = self.aux_i;
  Tensor out = Tensor::Uninitialized(self.value.rows(), self.value.cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) = av.At(r0 + r, c);
  }
  self.value = std::move(out);
}

void ReshapeForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  Tensor out = Tensor::Uninitialized(self.value.rows(), self.value.cols());
  for (int i = 0; i < out.size(); ++i) out[i] = av[i];
  self.value = std::move(out);
}

void SumForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  HEAD_PROF_OP("nn.Sum", av.rows(), av.cols(), 0, int64_t{av.size()},
               int64_t{8} * av.size());
  double s = 0.0;
  for (int i = 0; i < av.size(); ++i) s += av[i];
  self.value = Tensor::Full(1, 1, s);
}

}  // namespace

Var SliceCols(const Var& a, int c0, int c1) {
  HEAD_CHECK(0 <= c0 && c0 < c1 && c1 <= a.value().cols());
  Tensor out = Tensor::Uninitialized(a.value().rows(), c1 - c0);
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) = a.value().At(r, c0 + c);
  }
  Var result = MakeResult("nn.SliceCols", std::move(out), {&a},
                          SliceColsBackward, SliceColsForward);
  result.node()->aux_i = c0;
  return result;
}

Var SliceRows(const Var& a, int r0, int r1) {
  HEAD_CHECK(0 <= r0 && r0 < r1 && r1 <= a.value().rows());
  Tensor out = Tensor::Uninitialized(r1 - r0, a.value().cols());
  for (int r = 0; r < out.rows(); ++r) {
    for (int c = 0; c < out.cols(); ++c) out.At(r, c) = a.value().At(r0 + r, c);
  }
  Var result = MakeResult("nn.SliceRows", std::move(out), {&a},
                          SliceRowsBackward, SliceRowsForward);
  result.node()->aux_i = r0;
  return result;
}

Var Reshape(const Var& a, int rows, int cols) {
  HEAD_CHECK_EQ(a.value().size(), rows * cols);
  // Element copy into a pooled buffer (constructing from a.value().data()
  // would copy the vector outside the pool).
  Tensor out = Tensor::Uninitialized(rows, cols);
  const Tensor& av = a.value();
  for (int i = 0; i < out.size(); ++i) out[i] = av[i];
  return MakeResult("nn.Reshape", std::move(out), {&a}, ReshapeBackward,
                    ReshapeForward);
}

Var Sum(const Var& a) {
  HEAD_PROF_OP("nn.Sum", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{8} * a.value().size());
  double s = 0.0;
  for (int i = 0; i < a.value().size(); ++i) s += a.value()[i];
  return MakeResult("nn.Sum", Tensor::Full(1, 1, s), {&a}, SumBackward,
                    SumForward);
}

Var Mean(const Var& a) {
  HEAD_CHECK_GT(a.value().size(), 0);
  return Scale(Sum(a), 1.0 / a.value().size());
}

Var Square(const Var& a) {
  return UnaryElementwise("nn.Square", a, SquareF, UnaryBackward<SquareD>,
                          UnaryForward<SquareF>);
}

Var MseLoss(const Var& pred, const Var& target) {
  HEAD_CHECK_EQ(pred.value().rows(), target.value().rows());
  HEAD_CHECK_EQ(pred.value().cols(), target.value().cols());
  return Mean(Square(Sub(pred, target)));
}

namespace {

void GatherRowsBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  Tensor g = Tensor::Zeros(a->value.rows(), a->value.cols());
  const int cols = g.cols();
  const std::vector<int>& rows = self.indices;
  for (size_t i = 0; i < rows.size(); ++i) {
    const double* src = self.grad.data().data() + i * cols;
    double* dst = g.data().data() + static_cast<size_t>(rows[i]) * cols;
    for (int c = 0; c < cols; ++c) dst[c] += src[c];
  }
  a->AccumGrad(std::move(g));
}

void SelectColumnPerRowBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  Tensor g = Tensor::Zeros(a->value.rows(), a->value.cols());
  const std::vector<int>& cols = self.indices;
  for (int r = 0; r < g.rows(); ++r) {
    g.At(r, cols[r]) = self.grad[r];
  }
  a->AccumGrad(std::move(g));
}

void RowwiseMaxBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  Tensor g = Tensor::Zeros(a->value.rows(), a->value.cols());
  const std::vector<int>& argmax = self.indices;
  for (int r = 0; r < g.rows(); ++r) {
    g.At(r, argmax[r]) = self.grad[r];
  }
  a->AccumGrad(std::move(g));
}

void SumRowsBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  Tensor g(a->value.rows(), a->value.cols());
  const int cols = g.cols();
  const double* src = self.grad.data().data();
  for (int r = 0; r < g.rows(); ++r) {
    double* dst = g.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c];
  }
  a->AccumGrad(std::move(g));
}

void ScaleRowsBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  VarImpl* s = self.parents[1];
  const int rows = a->value.rows();
  const int cols = a->value.cols();
  Tensor ga(rows, cols);
  Tensor gs(rows, 1);
  for (int r = 0; r < rows; ++r) {
    const double sv = s->value[r];
    const double* gout = self.grad.data().data() + static_cast<size_t>(r) * cols;
    const double* arow = a->value.data().data() + static_cast<size_t>(r) * cols;
    double* garow = ga.data().data() + static_cast<size_t>(r) * cols;
    double dot = 0.0;
    for (int c = 0; c < cols; ++c) {
      garow[c] = gout[c] * sv;
      dot += gout[c] * arow[c];
    }
    gs[r] = dot;
  }
  a->AccumGrad(std::move(ga));
  s->AccumGrad(std::move(gs));
}

void SumRowGroupsBackward(VarImpl& self) {
  VarImpl* a = self.parents[0];
  const int group_size = self.aux_i;
  const int cols = a->value.cols();
  Tensor g(a->value.rows(), cols);
  for (int r = 0; r < g.rows(); ++r) {
    const double* src =
        self.grad.data().data() + static_cast<size_t>(r / group_size) * cols;
    double* dst = g.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c];
  }
  a->AccumGrad(std::move(g));
}

void GatherRowsForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  const int cols = av.cols();
  const std::vector<int>& rows = self.indices;  // frozen at capture
  HEAD_PROF_OP("nn.GatherRows", static_cast<int>(rows.size()), cols, 0, 0,
               int64_t{16} * static_cast<int64_t>(rows.size()) * cols);
  Tensor out = Tensor::Uninitialized(static_cast<int>(rows.size()), cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    const double* src =
        av.data().data() + static_cast<size_t>(rows[i]) * cols;
    double* dst = out.data().data() + i * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c];
  }
  self.value = std::move(out);
}

void SelectColumnPerRowForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  const std::vector<int>& cols = self.indices;  // re-fed per replay
  HEAD_PROF_OP("nn.SelectColumnPerRow", av.rows(), av.cols(), 0, 0,
               int64_t{16} * av.rows());
  Tensor out = Tensor::Uninitialized(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    HEAD_CHECK(cols[r] >= 0 && cols[r] < av.cols());
    out[r] = av.At(r, cols[r]);
  }
  self.value = std::move(out);
}

void RowwiseMaxForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  HEAD_PROF_OP("nn.RowwiseMax", av.rows(), av.cols(), 0, 0,
               int64_t{8} * (av.size() + av.rows()));
  Tensor out = Tensor::Uninitialized(av.rows(), 1);
  self.indices.assign(av.rows(), 0);  // argmax recomputed for backward
  for (int r = 0; r < av.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < av.cols(); ++c) {
      if (av.At(r, c) > av.At(r, best)) best = c;
    }
    self.indices[r] = best;
    out[r] = av.At(r, best);
  }
  self.value = std::move(out);
}

void SumRowsForward(VarImpl& self) {
  const Tensor& a = self.parents[0]->value;
  HEAD_PROF_OP("nn.SumRows", a.rows(), a.cols(), 0, int64_t{a.size()},
               int64_t{8} * a.size());
  self.value = SumRows(a);
}

void ScaleRowsForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  const Tensor& sv = self.parents[1]->value;
  HEAD_PROF_OP("nn.ScaleRows", av.rows(), av.cols(), 0, int64_t{av.size()},
               int64_t{24} * av.size());
  const int cols = av.cols();
  Tensor out = Tensor::Uninitialized(av.rows(), cols);
  for (int r = 0; r < av.rows(); ++r) {
    const double s = sv[r];
    const double* src = av.data().data() + static_cast<size_t>(r) * cols;
    double* dst = out.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c] * s;
  }
  self.value = std::move(out);
}

void SumRowGroupsForward(VarImpl& self) {
  const Tensor& av = self.parents[0]->value;
  const int group_size = self.aux_i;
  const int groups = av.rows() / group_size;
  const int cols = av.cols();
  HEAD_PROF_OP("nn.SumRowGroups", av.rows(), cols, 0, int64_t{av.size()},
               int64_t{16} * av.size());
  Tensor out(groups, cols);  // zero-initialized, matching the eager op
  for (int g = 0; g < groups; ++g) {
    double* dst = out.data().data() + static_cast<size_t>(g) * cols;
    for (int n = 0; n < group_size; ++n) {
      const double* src =
          av.data().data() + static_cast<size_t>(g * group_size + n) * cols;
      for (int c = 0; c < cols; ++c) dst[c] += src[c];
    }
  }
  self.value = std::move(out);
}

}  // namespace

Var GatherRows(const Var& a, std::vector<int> rows) {
  const Tensor& av = a.value();
  const int cols = av.cols();
  HEAD_PROF_OP("nn.GatherRows", static_cast<int>(rows.size()), cols, 0, 0,
               int64_t{16} * static_cast<int64_t>(rows.size()) * cols);
  Tensor out = Tensor::Uninitialized(static_cast<int>(rows.size()), cols);
  for (size_t i = 0; i < rows.size(); ++i) {
    const int r = rows[i];
    HEAD_CHECK(r >= 0 && r < av.rows());
    const double* src = av.data().data() + static_cast<size_t>(r) * cols;
    double* dst = out.data().data() + i * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c];
  }
  Var result = MakeResult("nn.GatherRows", std::move(out), {&a},
                          GatherRowsBackward, GatherRowsForward);
  result.node()->indices = std::move(rows);
  return result;
}

Var SelectColumnPerRow(const Var& a, std::vector<int> cols) {
  const Tensor& av = a.value();
  HEAD_CHECK_EQ(static_cast<int>(cols.size()), av.rows());
  HEAD_PROF_OP("nn.SelectColumnPerRow", av.rows(), av.cols(), 0, 0,
               int64_t{16} * av.rows());
  Tensor out = Tensor::Uninitialized(av.rows(), 1);
  for (int r = 0; r < av.rows(); ++r) {
    HEAD_CHECK(cols[r] >= 0 && cols[r] < av.cols());
    out[r] = av.At(r, cols[r]);
  }
  Var result = MakeResult("nn.SelectColumnPerRow", std::move(out), {&a},
                          SelectColumnPerRowBackward,
                          SelectColumnPerRowForward);
  result.node()->indices = std::move(cols);
  // The selected columns change per step (sampled behaviors): replays feed
  // them through the plan's index slots.
  if (plan_internal::Active()) plan_internal::RegisterIndexSlot(result.node());
  return result;
}

Var RowwiseMax(const Var& a) {
  const Tensor& av = a.value();
  HEAD_CHECK_GT(av.cols(), 0);
  HEAD_PROF_OP("nn.RowwiseMax", av.rows(), av.cols(), 0, 0,
               int64_t{8} * (av.size() + av.rows()));
  Var result = MakeResult("nn.RowwiseMax", Tensor::Uninitialized(av.rows(), 1), {&a},
                          RowwiseMaxBackward, RowwiseMaxForward);
  VarImpl* node = result.node();
  // The argmax list reuses the node's index capacity across steps instead of
  // allocating a fresh vector per call.
  node->indices.assign(av.rows(), 0);
  Tensor& out = node->value;
  for (int r = 0; r < av.rows(); ++r) {
    int best = 0;
    for (int c = 1; c < av.cols(); ++c) {
      if (av.At(r, c) > av.At(r, best)) best = c;
    }
    node->indices[r] = best;
    out[r] = av.At(r, best);
  }
  return result;
}

Var SumRows(const Var& a) {
  HEAD_PROF_OP("nn.SumRows", a.value().rows(), a.value().cols(), 0,
               int64_t{a.value().size()}, int64_t{8} * a.value().size());
  Tensor out = SumRows(a.value());
  return MakeResult("nn.SumRows", std::move(out), {&a}, SumRowsBackward,
                    SumRowsForward);
}

Var ScaleRows(const Var& a, const Var& scale) {
  const Tensor& av = a.value();
  const Tensor& sv = scale.value();
  HEAD_CHECK_EQ(sv.rows(), av.rows());
  HEAD_CHECK_EQ(sv.cols(), 1);
  HEAD_PROF_OP("nn.ScaleRows", av.rows(), av.cols(), 0,
               int64_t{av.size()}, int64_t{24} * av.size());
  Tensor out = Tensor::Uninitialized(av.rows(), av.cols());
  const int cols = av.cols();
  for (int r = 0; r < av.rows(); ++r) {
    const double s = sv[r];
    const double* src = av.data().data() + static_cast<size_t>(r) * cols;
    double* dst = out.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) dst[c] = src[c] * s;
  }
  return MakeResult("nn.ScaleRows", std::move(out), {&a, &scale},
                    ScaleRowsBackward, ScaleRowsForward);
}

Var SumRowGroups(const Var& a, int group_size) {
  const Tensor& av = a.value();
  HEAD_CHECK_GT(group_size, 0);
  HEAD_CHECK_EQ(av.rows() % group_size, 0);
  const int groups = av.rows() / group_size;
  const int cols = av.cols();
  HEAD_PROF_OP("nn.SumRowGroups", av.rows(), cols, 0, int64_t{av.size()},
               int64_t{16} * av.size());
  Tensor out(groups, cols);
  for (int g = 0; g < groups; ++g) {
    double* dst = out.data().data() + static_cast<size_t>(g) * cols;
    for (int n = 0; n < group_size; ++n) {
      const double* src =
          av.data().data() + static_cast<size_t>(g * group_size + n) * cols;
      for (int c = 0; c < cols; ++c) dst[c] += src[c];
    }
  }
  Var result = MakeResult("nn.SumRowGroups", std::move(out), {&a},
                          SumRowGroupsBackward, SumRowGroupsForward);
  result.node()->aux_i = group_size;
  return result;
}

}  // namespace head::nn
