// LSTM cell (Hochreiter & Schmidhuber [45]) operating on batched rows.
// LST-GAT and the prediction baselines unroll it over the z historical steps.
#ifndef HEAD_NN_LSTM_H_
#define HEAD_NN_LSTM_H_

#include <utility>
#include <vector>

#include "nn/layers.h"

namespace head::nn {

/// Hidden and cell state for a batch: both (batch × hidden).
struct LstmState {
  Var h;
  Var c;
};

class LstmCell : public Module {
 public:
  LstmCell(int input_size, int hidden_size, Rng& rng);

  /// Fresh all-zero state for `batch` sequences.
  LstmState InitialState(int batch) const;

  /// One step: x is (batch × input). Gate order in the fused weights is
  /// [input, forget, cell(g), output].
  LstmState Forward(const Var& x, const LstmState& state) const;

  std::vector<Var> Params() const override { return {w_ih_, w_hh_, b_}; }

  int input_size() const { return w_ih_.value().rows(); }
  int hidden_size() const { return hidden_size_; }

 private:
  int hidden_size_;
  Var w_ih_;  // (input × 4·hidden)
  Var w_hh_;  // (hidden × 4·hidden)
  Var b_;     // (1 × 4·hidden)
};

}  // namespace head::nn

#endif  // HEAD_NN_LSTM_H_
