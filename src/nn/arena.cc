#include "nn/arena.h"

#include "nn/tensor_pool.h"
#include "obs/metrics.h"

namespace head::nn {

struct GraphArena::Chunk {
  internal::VarImpl nodes[kChunkNodes];
};

GraphArena::GraphArena() = default;
GraphArena::~GraphArena() = default;

GraphArena& GraphArena::ThreadLocal() {
  thread_local GraphArena arena;
  return arena;
}

internal::VarImpl* GraphArena::New() {
  const size_t chunk = cursor_ / kChunkNodes;
  const size_t idx = cursor_ % kChunkNodes;
  if (chunk == chunks_.size()) {
    chunks_.push_back(std::make_unique<Chunk>());
    stats_.nodes_created += kChunkNodes;
    stats_.capacity = chunks_.size() * kChunkNodes;
  }
  ++cursor_;
  if (cursor_ > stats_.peak_in_use) stats_.peak_in_use = cursor_;
  internal::VarImpl* n = &chunks_[chunk]->nodes[idx];
  n->backward = nullptr;
  n->forward = nullptr;
  n->parents.clear();  // keeps capacity from the node's previous life
  n->requires_grad = false;
  if (!n->grad.empty()) n->grad = Tensor();  // buffer back to the pool
  n->epoch = epoch_;
  return n;
}

void GraphArena::Reset() {
  ++epoch_;
  // Sweep the dead region's nodes: restamp their epoch so stale handles are
  // detectably dead immediately (not only once the node is reused), and
  // return their tensor buffers to the pool NOW. Leaving buffers captive
  // until node reuse would make the next region's first acquire of each size
  // class miss (the acquire runs just before the matching node is recycled),
  // so steady state would never reach zero alloc events.
  for (size_t i = 0; i < cursor_; ++i) {
    internal::VarImpl& n = chunks_[i / kChunkNodes]->nodes[i % kChunkNodes];
    n.epoch = epoch_;
    if (!n.value.empty()) n.value = Tensor();
    if (!n.grad.empty()) n.grad = Tensor();
    n.backward = nullptr;
    n.forward = nullptr;
    n.parents.clear();  // keeps capacity for the node's next life
  }
  cursor_ = 0;
  ++stats_.resets;
}

void ResetTape() { GraphArena::ThreadLocal().Reset(); }

void PublishAllocMetrics() {
  const GraphArenaStats& a = GraphArena::ThreadLocal().stats();
  obs::GetGauge("nn_alloc_arena_nodes_created")
      .Set(static_cast<double>(a.nodes_created));
  obs::GetGauge("nn_alloc_arena_capacity").Set(static_cast<double>(a.capacity));
  obs::GetGauge("nn_alloc_arena_peak_in_use")
      .Set(static_cast<double>(a.peak_in_use));
  obs::GetGauge("nn_alloc_arena_resets").Set(static_cast<double>(a.resets));
  obs::GetGauge("nn_alloc_arena_bytes")
      .Set(static_cast<double>(a.capacity * sizeof(internal::VarImpl)));
  if (const TensorPool* pool = TensorPool::Get()) {
    const TensorPoolStats& p = pool->stats();
    obs::GetGauge("nn_alloc_pool_hits").Set(static_cast<double>(p.hits));
    obs::GetGauge("nn_alloc_pool_misses").Set(static_cast<double>(p.misses));
    obs::GetGauge("nn_alloc_pool_discarded")
        .Set(static_cast<double>(p.discarded));
    obs::GetGauge("nn_alloc_pool_bytes").Set(static_cast<double>(p.bytes_pooled));
  }
}

uint64_t AllocEvents() {
  uint64_t events = GraphArena::ThreadLocal().stats().nodes_created;
  if (const TensorPool* pool = TensorPool::Get()) {
    events += pool->stats().misses;
  }
  return events;
}

}  // namespace head::nn
