#include "nn/tensor.h"

#include <cmath>
#include <ostream>
#include <utility>

#include "common/check.h"

namespace head::nn {

Tensor::Tensor(int rows, int cols, double fill)
    : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows) * cols, fill) {
  HEAD_CHECK_GE(rows, 0);
  HEAD_CHECK_GE(cols, 0);
}

Tensor::Tensor(int rows, int cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HEAD_CHECK_EQ(static_cast<size_t>(rows) * cols, data_.size());
}

Tensor Tensor::Uniform(int rows, int cols, double lo, double hi, Rng& rng) {
  Tensor t(rows, cols);
  for (double& v : t.data_) v = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::XavierUniform(int fan_in, int fan_out, Rng& rng) {
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  return Uniform(fan_in, fan_out, -bound, bound, rng);
}

double& Tensor::At(int r, int c) {
  HEAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

double Tensor::At(int r, int c) const {
  HEAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

void Tensor::SetZero() {
  for (double& v : data_) v = 0.0;
}

void Tensor::AddScaled(const Tensor& other, double alpha) {
  HEAD_CHECK_EQ(rows_, other.rows_);
  HEAD_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

double Tensor::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Tensor::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor(" << t.rows() << "x" << t.cols() << ")[";
  for (int r = 0; r < t.rows(); ++r) {
    os << (r == 0 ? "[" : ", [");
    for (int c = 0; c < t.cols(); ++c) {
      os << (c == 0 ? "" : ", ") << t.At(r, c);
    }
    os << "]";
  }
  return os << "]";
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.cols(), b.rows());
  Tensor out(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a.At(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        out.At(i, j) += aik * b.At(k, j);
      }
    }
  }
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.cols(), b.cols());
  Tensor out(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (int k = 0; k < a.cols(); ++k) s += a.At(i, k) * b.At(j, k);
      out.At(i, j) = s;
    }
  }
  return out;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.rows(), b.rows());
  Tensor out(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a.At(k, i);
      if (aki == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) {
        out.At(i, j) += aki * b.At(k, j);
      }
    }
  }
  return out;
}

Tensor Transpose(const Tensor& a) {
  Tensor out(a.cols(), a.rows());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.At(c, r) = a.At(r, c);
  }
  return out;
}

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.rows(), b.rows());
  HEAD_CHECK_EQ(a.cols(), b.cols());
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.AddScaled(b, 1.0);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.AddScaled(b, -1.0);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor Scale(const Tensor& a, double s) {
  Tensor out(a.rows(), a.cols());
  for (int i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  HEAD_CHECK_EQ(row.rows(), 1);
  HEAD_CHECK_EQ(row.cols(), a.cols());
  Tensor out = a;
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.At(r, c) += row.At(0, c);
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  Tensor out(1, a.cols());
  for (int r = 0; r < a.rows(); ++r) {
    for (int c = 0; c < a.cols(); ++c) out.At(0, c) += a.At(r, c);
  }
  return out;
}

}  // namespace head::nn
