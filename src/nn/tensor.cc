#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "nn/kernels/simd.h"
#include "nn/tensor_pool.h"

namespace head::nn {

namespace {

// ---- Pooled storage plumbing ----
//
// All tensor buffers route through the calling thread's TensorPool. When the
// pool is already gone (thread teardown) both helpers degrade to plain
// vector allocation/free, so destruction order between thread_locals that
// hold Tensors (e.g. the graph arena) and the pool never matters.

std::vector<double> PoolAcquire(size_t n) {
  if (TensorPool* pool = TensorPool::Get()) return pool->Acquire(n);
  return {};
}

void PoolRelease(std::vector<double>&& buf) {
  if (buf.capacity() == 0) return;
  if (TensorPool* pool = TensorPool::Get()) pool->Release(std::move(buf));
}

}  // namespace

Tensor::Tensor(int rows, int cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(PoolAcquire(static_cast<size_t>(rows) * cols)) {
  HEAD_CHECK_GE(rows, 0);
  HEAD_CHECK_GE(cols, 0);
  data_.assign(static_cast<size_t>(rows) * cols, fill);
}

Tensor::Tensor(int rows, int cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HEAD_CHECK_EQ(static_cast<size_t>(rows) * cols, data_.size());
}

Tensor::Tensor(const Tensor& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      data_(PoolAcquire(other.data_.size())) {
  data_.assign(other.data_.begin(), other.data_.end());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  if (data_.capacity() < other.data_.size()) {
    // Growing in place would heap-reallocate behind the pool's back; swap
    // the undersized buffer for a pooled one instead.
    PoolRelease(std::move(data_));
    data_ = PoolAcquire(other.data_.size());
  }
  data_.assign(other.data_.begin(), other.data_.end());
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  // vector move-assignment would free our buffer directly; pool it instead.
  PoolRelease(std::move(data_));
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Tensor::~Tensor() { PoolRelease(std::move(data_)); }

Tensor Tensor::Uninitialized(int rows, int cols) {
  HEAD_CHECK_GE(rows, 0);
  HEAD_CHECK_GE(cols, 0);
  Tensor t;
  t.rows_ = rows;
  t.cols_ = cols;
  const size_t n = static_cast<size_t>(rows) * cols;
  t.data_ = PoolAcquire(n);
  // A recycled buffer keeps the size it was released with, which in a
  // steady-state loop of fixed shapes is exactly n — the resize is then a
  // no-op. Only a size-mismatched (or freshly heap-backed) buffer pays a
  // value-init, and only for the gap.
  t.data_.resize(n);
  return t;
}

Tensor Tensor::Uniform(int rows, int cols, double lo, double hi, Rng& rng) {
  Tensor t(rows, cols);
  for (double& v : t.data_) v = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::XavierUniform(int fan_in, int fan_out, Rng& rng) {
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  return Uniform(fan_in, fan_out, -bound, bound, rng);
}

double& Tensor::At(int r, int c) {
  HEAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

double Tensor::At(int r, int c) const {
  HEAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

void Tensor::SetZero() {
  for (double& v : data_) v = 0.0;
}

void Tensor::AddScaled(const Tensor& other, double alpha) {
  HEAD_CHECK_EQ(rows_, other.rows_);
  HEAD_CHECK_EQ(cols_, other.cols_);
  kernels::Axpy(static_cast<int>(data_.size()), alpha, other.data_.data(),
                data_.data());
}

double Tensor::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Tensor::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor(" << t.rows() << "x" << t.cols() << ")[";
  for (int r = 0; r < t.rows(); ++r) {
    os << (r == 0 ? "[" : ", [");
    for (int c = 0; c < t.cols(); ++c) {
      os << (c == 0 ? "" : ", ") << t.At(r, c);
    }
    os << "]";
  }
  return os << "]";
}

// The matmul family routes through the kernel dispatch layer
// (nn/kernels/simd.h): runtime ISA selection between the portable scalar
// schedules (byte-identical to the loops that used to live here) and the
// AVX2 packed microkernel, with row-partitioning across the global thread
// pool handled inside the dispatcher. See DESIGN.md "SIMD kernel dispatch"
// for the determinism contract.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows(), kk = a.cols(), n = b.cols();
  Tensor out = Tensor::Uninitialized(m, n);
  kernels::GemmNN(m, n, kk, a.data().data(), b.data().data(),
                  /*bias=*/nullptr, kernels::GemmInit::kZero,
                  out.data().data());
  return out;
}

Tensor Affine(const Tensor& a, const Tensor& b, const Tensor& bias) {
  HEAD_CHECK_EQ(a.cols(), b.rows());
  HEAD_CHECK_EQ(bias.rows(), 1);
  HEAD_CHECK_EQ(bias.cols(), b.cols());
  const int m = a.rows(), kk = a.cols(), n = b.cols();
  Tensor out = Tensor::Uninitialized(m, n);
  kernels::GemmNN(m, n, kk, a.data().data(), b.data().data(),
                  bias.data().data(), kernels::GemmInit::kBias,
                  out.data().data());
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows(), kk = a.cols(), n = b.rows();
  Tensor out = Tensor::Uninitialized(m, n);
  kernels::GemmNT(m, n, kk, a.data().data(), b.data().data(),
                  out.data().data());
  return out;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.rows(), b.rows());
  const int kk = a.rows(), m = a.cols(), n = b.cols();
  Tensor out = Tensor::Uninitialized(m, n);
  kernels::GemmTN(m, n, kk, a.data().data(), b.data().data(),
                  kernels::GemmInit::kZero, out.data().data());
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int rows = a.rows(), cols = a.cols();
  Tensor out = Tensor::Uninitialized(cols, rows);
  const double* pa = a.data().data();
  double* po = out.data().data();
  // Cache-blocked: both the row-major read and the strided write stay within
  // a block that fits in L1, instead of striding the whole output per row.
  constexpr int kBlock = 32;
  for (int r0 = 0; r0 < rows; r0 += kBlock) {
    const int r1 = std::min(rows, r0 + kBlock);
    for (int c0 = 0; c0 < cols; c0 += kBlock) {
      const int c1 = std::min(cols, c0 + kBlock);
      for (int r = r0; r < r1; ++r) {
        const double* arow = pa + static_cast<size_t>(r) * cols;
        for (int c = c0; c < c1; ++c) {
          po[static_cast<size_t>(c) * rows + r] = arow[c];
        }
      }
    }
  }
  return out;
}

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.rows(), b.rows());
  HEAD_CHECK_EQ(a.cols(), b.cols());
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.AddScaled(b, 1.0);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.AddScaled(b, -1.0);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = Tensor::Uninitialized(a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out.data().data();
  const int n = a.size();
  for (int i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  return out;
}

Tensor Scale(const Tensor& a, double s) {
  Tensor out = Tensor::Uninitialized(a.rows(), a.cols());
  const double* pa = a.data().data();
  double* po = out.data().data();
  const int n = a.size();
  for (int i = 0; i < n; ++i) po[i] = pa[i] * s;
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  HEAD_CHECK_EQ(row.rows(), 1);
  HEAD_CHECK_EQ(row.cols(), a.cols());
  Tensor out = a;
  const int cols = a.cols();
  const double* pr = row.data().data();
  for (int r = 0; r < a.rows(); ++r) {
    double* orow = out.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) orow[c] += pr[c];
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  const int cols = a.cols();
  Tensor out(1, cols);
  double* po = out.data().data();
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) po[c] += arow[c];
  }
  return out;
}

Tensor RowwiseMax(const Tensor& a) {
  HEAD_CHECK_GE(a.cols(), 1);
  Tensor out = Tensor::Uninitialized(a.rows(), 1);
  kernels::RowwiseMax(a.rows(), a.cols(), a.data().data(), out.data().data(),
                      /*argmax=*/nullptr);
  return out;
}

}  // namespace head::nn
