#include "nn/tensor.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "nn/tensor_pool.h"
#include "parallel/thread_pool.h"

namespace head::nn {

namespace {

// ---- Pooled storage plumbing ----
//
// All tensor buffers route through the calling thread's TensorPool. When the
// pool is already gone (thread teardown) both helpers degrade to plain
// vector allocation/free, so destruction order between thread_locals that
// hold Tensors (e.g. the graph arena) and the pool never matters.

std::vector<double> PoolAcquire(size_t n) {
  if (TensorPool* pool = TensorPool::Get()) return pool->Acquire(n);
  return {};
}

void PoolRelease(std::vector<double>&& buf) {
  if (buf.capacity() == 0) return;
  if (TensorPool* pool = TensorPool::Get()) pool->Release(std::move(buf));
}

}  // namespace

namespace {

// ---- Multi-thread dispatch for the matmul family ----
//
// The three hot kernels (MatMul, Affine, MatMulTransposeA) partition their
// output rows across the global pool when the total multiply-add count
// clears kParallelFlops. Each thread owns a disjoint row range and keeps
// the serial kernel's inner-loop order within it, so results are bitwise
// identical to the single-thread path for every thread count.
//
// kParallelFlops = 2^18 ≈ 260k multiply-adds (~60–100 µs of serial work at
// a few GFLOP/s) against a ParallelFor dispatch cost of single-digit
// microseconds per helper (measured by bench/parallel_overhead) keeps
// dispatch below ~5% of kernel time at the break-even point. The paper-
// scale minibatch shapes (B=64, hidden=64) sit right at the threshold:
// batched training forwards parallelize, tiny inference matmuls (B=1)
// never do.
constexpr int64_t kParallelFlops = int64_t{1} << 18;

/// Row-partitions `kernel` over [0, rows) when the kernel's total work
/// (`flops` multiply-adds) is worth the dispatch; otherwise runs inline.
/// Grain keeps every chunk above ~half the threshold of work. Templated so
/// the below-threshold path calls the lambda directly — type-erasing into a
/// std::function would put an allocation on every small-matmul call.
template <typename Kernel>
void ForEachRowChunk(int64_t rows, int64_t flops, const Kernel& kernel) {
  parallel::ThreadPool& pool = parallel::ThreadPool::Global();
  if (flops < kParallelFlops || pool.thread_count() == 1 || rows < 2) {
    kernel(int64_t{0}, rows);
    return;
  }
  const int64_t flops_per_row = std::max<int64_t>(1, flops / rows);
  const int64_t grain =
      std::max<int64_t>(1, (kParallelFlops / 2) / flops_per_row);
  pool.ParallelFor(0, rows, grain, kernel);
}

}  // namespace

Tensor::Tensor(int rows, int cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(PoolAcquire(static_cast<size_t>(rows) * cols)) {
  HEAD_CHECK_GE(rows, 0);
  HEAD_CHECK_GE(cols, 0);
  data_.assign(static_cast<size_t>(rows) * cols, fill);
}

Tensor::Tensor(int rows, int cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  HEAD_CHECK_EQ(static_cast<size_t>(rows) * cols, data_.size());
}

Tensor::Tensor(const Tensor& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      data_(PoolAcquire(other.data_.size())) {
  data_.assign(other.data_.begin(), other.data_.end());
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  if (data_.capacity() < other.data_.size()) {
    // Growing in place would heap-reallocate behind the pool's back; swap
    // the undersized buffer for a pooled one instead.
    PoolRelease(std::move(data_));
    data_ = PoolAcquire(other.data_.size());
  }
  data_.assign(other.data_.begin(), other.data_.end());
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : rows_(other.rows_), cols_(other.cols_), data_(std::move(other.data_)) {
  other.rows_ = 0;
  other.cols_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  // vector move-assignment would free our buffer directly; pool it instead.
  PoolRelease(std::move(data_));
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = std::move(other.data_);
  other.rows_ = 0;
  other.cols_ = 0;
  return *this;
}

Tensor::~Tensor() { PoolRelease(std::move(data_)); }

Tensor Tensor::Uniform(int rows, int cols, double lo, double hi, Rng& rng) {
  Tensor t(rows, cols);
  for (double& v : t.data_) v = rng.Uniform(lo, hi);
  return t;
}

Tensor Tensor::XavierUniform(int fan_in, int fan_out, Rng& rng) {
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  return Uniform(fan_in, fan_out, -bound, bound, rng);
}

double& Tensor::At(int r, int c) {
  HEAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

double Tensor::At(int r, int c) const {
  HEAD_DCHECK(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<size_t>(r) * cols_ + c];
}

void Tensor::SetZero() {
  for (double& v : data_) v = 0.0;
}

void Tensor::AddScaled(const Tensor& other, double alpha) {
  HEAD_CHECK_EQ(rows_, other.rows_);
  HEAD_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
}

double Tensor::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Tensor::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Tensor& t) {
  os << "Tensor(" << t.rows() << "x" << t.cols() << ")[";
  for (int r = 0; r < t.rows(); ++r) {
    os << (r == 0 ? "[" : ", [");
    for (int c = 0; c < t.cols(); ++c) {
      os << (c == 0 ? "" : ", ") << t.At(r, c);
    }
    os << "]";
  }
  return os << "]";
}

// The matmul family runs in the training hot path (every Linear forward and
// both backward closures), so all three variants use raw-pointer inner loops
// over the row-major storage: the compiler can vectorize them, and nothing
// re-derives r*cols+c per element. Loop order is chosen per variant so the
// innermost loop is always a contiguous streaming access of both operands.
// Above kParallelFlops of work the output rows are partitioned across the
// global thread pool (see ForEachRowChunk); each thread runs the same
// serial schedule on its disjoint row range.

Tensor MatMul(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.cols(), b.rows());
  const int m = a.rows(), kk = a.cols(), n = b.cols();
  Tensor out(m, n);
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out.data().data();
  const int64_t flops = int64_t{m} * kk * n;
  if (n == 1) {
    // Column output: ikj would run a length-1 inner loop per k. A dot
    // product per row streams both operands instead (b is contiguous).
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const double* arow = pa + static_cast<size_t>(i) * kk;
        double s = 0.0;
        for (int k = 0; k < kk; ++k) s += arow[k] * pb[k];
        po[i] = s;
      }
    });
    return out;
  }
  // ikj: out row i accumulates a[i,k] · b row k — contiguous in b and out.
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const double* arow = pa + static_cast<size_t>(i) * kk;
      double* orow = po + static_cast<size_t>(i) * n;
      for (int k = 0; k < kk; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;  // one-hot / masked rows are common
        const double* brow = pb + static_cast<size_t>(k) * n;
        for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  });
  return out;
}

Tensor Affine(const Tensor& a, const Tensor& b, const Tensor& bias) {
  HEAD_CHECK_EQ(a.cols(), b.rows());
  HEAD_CHECK_EQ(bias.rows(), 1);
  HEAD_CHECK_EQ(bias.cols(), b.cols());
  const int m = a.rows(), kk = a.cols(), n = b.cols();
  Tensor out(m, n);
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  const double* pc = bias.data().data();
  double* po = out.data().data();
  const int64_t flops = int64_t{m} * kk * n;
  if (n == 1) {
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      for (int64_t i = i0; i < i1; ++i) {
        const double* arow = pa + static_cast<size_t>(i) * kk;
        double s = 0.0;
        for (int k = 0; k < kk; ++k) s += arow[k] * pb[k];
        po[i] = s + pc[0];
      }
    });
    return out;
  }
  // Same ikj schedule as MatMul, but output rows start as the bias row, so
  // no separate broadcast-add pass (or its temporary) is needed.
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    for (int64_t i = i0; i < i1; ++i) {
      const double* arow = pa + static_cast<size_t>(i) * kk;
      double* orow = po + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] = pc[j];
      for (int k = 0; k < kk; ++k) {
        const double aik = arow[k];
        if (aik == 0.0) continue;
        const double* brow = pb + static_cast<size_t>(k) * n;
        for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
      }
    }
  });
  return out;
}

Tensor MatMulTransposeB(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.cols(), b.cols());
  const int m = a.rows(), kk = a.cols(), n = b.rows();
  Tensor out(m, n);
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out.data().data();
  // Each output element is a dot product of two contiguous rows.
  for (int i = 0; i < m; ++i) {
    const double* arow = pa + static_cast<size_t>(i) * kk;
    double* orow = po + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* brow = pb + static_cast<size_t>(j) * kk;
      double s = 0.0;
      for (int k = 0; k < kk; ++k) s += arow[k] * brow[k];
      orow[j] = s;
    }
  }
  return out;
}

Tensor MatMulTransposeA(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.rows(), b.rows());
  const int kk = a.rows(), m = a.cols(), n = b.cols();
  Tensor out(m, n);
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out.data().data();
  const int64_t flops = int64_t{m} * kk * n;
  if (n == 1) {
    // Column b (a gradient through a width-1 layer): accumulate b[k]·a[k,:]
    // into the output column with a branch-free contiguous inner loop. The
    // chunked form keeps k outermost per chunk, so every output element
    // still accumulates over k in increasing order (bitwise parity).
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      for (int k = 0; k < kk; ++k) {
        const double bk = pb[k];
        const double* arow = pa + static_cast<size_t>(k) * m;
        for (int64_t i = i0; i < i1; ++i) po[i] += bk * arow[i];
      }
    });
    return out;
  }
  // kij: rank-1 update per shared row k — contiguous in b and out; a is read
  // with a column stride only at chunk boundaries. Output rows partition
  // across threads; k stays outermost within a chunk for bitwise parity
  // with the serial schedule.
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    for (int k = 0; k < kk; ++k) {
      const double* arow = pa + static_cast<size_t>(k) * m;
      const double* brow = pb + static_cast<size_t>(k) * n;
      for (int64_t i = i0; i < i1; ++i) {
        const double aki = arow[i];
        if (aki == 0.0) continue;
        double* orow = po + static_cast<size_t>(i) * n;
        for (int j = 0; j < n; ++j) orow[j] += aki * brow[j];
      }
    }
  });
  return out;
}

Tensor Transpose(const Tensor& a) {
  const int rows = a.rows(), cols = a.cols();
  Tensor out(cols, rows);
  const double* pa = a.data().data();
  double* po = out.data().data();
  // Cache-blocked: both the row-major read and the strided write stay within
  // a block that fits in L1, instead of striding the whole output per row.
  constexpr int kBlock = 32;
  for (int r0 = 0; r0 < rows; r0 += kBlock) {
    const int r1 = std::min(rows, r0 + kBlock);
    for (int c0 = 0; c0 < cols; c0 += kBlock) {
      const int c1 = std::min(cols, c0 + kBlock);
      for (int r = r0; r < r1; ++r) {
        const double* arow = pa + static_cast<size_t>(r) * cols;
        for (int c = c0; c < c1; ++c) {
          po[static_cast<size_t>(c) * rows + r] = arow[c];
        }
      }
    }
  }
  return out;
}

namespace {
void CheckSameShape(const Tensor& a, const Tensor& b) {
  HEAD_CHECK_EQ(a.rows(), b.rows());
  HEAD_CHECK_EQ(a.cols(), b.cols());
}
}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.AddScaled(b, 1.0);
  return out;
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out = a;
  out.AddScaled(b, -1.0);
  return out;
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  Tensor out(a.rows(), a.cols());
  const double* pa = a.data().data();
  const double* pb = b.data().data();
  double* po = out.data().data();
  const int n = a.size();
  for (int i = 0; i < n; ++i) po[i] = pa[i] * pb[i];
  return out;
}

Tensor Scale(const Tensor& a, double s) {
  Tensor out(a.rows(), a.cols());
  const double* pa = a.data().data();
  double* po = out.data().data();
  const int n = a.size();
  for (int i = 0; i < n; ++i) po[i] = pa[i] * s;
  return out;
}

Tensor AddRowBroadcast(const Tensor& a, const Tensor& row) {
  HEAD_CHECK_EQ(row.rows(), 1);
  HEAD_CHECK_EQ(row.cols(), a.cols());
  Tensor out = a;
  const int cols = a.cols();
  const double* pr = row.data().data();
  for (int r = 0; r < a.rows(); ++r) {
    double* orow = out.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) orow[c] += pr[c];
  }
  return out;
}

Tensor SumRows(const Tensor& a) {
  const int cols = a.cols();
  Tensor out(1, cols);
  double* po = out.data().data();
  for (int r = 0; r < a.rows(); ++r) {
    const double* arow = a.data().data() + static_cast<size_t>(r) * cols;
    for (int c = 0; c < cols; ++c) po[c] += arow[c];
  }
  return out;
}

}  // namespace head::nn
