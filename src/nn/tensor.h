// A dense 2-D row-major matrix of doubles plus the raw (non-differentiable)
// operations needed by the autograd layer and the optimizers. Kept
// deliberately small: the networks in the paper (Linear, LSTM, GAT heads)
// only ever need rank-2 math with row-broadcast bias addition.
#ifndef HEAD_NN_TENSOR_H_
#define HEAD_NN_TENSOR_H_

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "common/rng.h"

namespace head::nn {

// Storage comes from the thread-local TensorPool (see tensor_pool.h): the
// special members below acquire from / release to power-of-two free lists
// instead of the heap, so tensor churn in the training hot path stops
// allocating once the pool is warm. The API is unchanged — data() still
// exposes the underlying std::vector.
class Tensor {
 public:
  /// Empty 0×0 tensor.
  Tensor() = default;

  /// rows×cols tensor initialized to `fill`.
  Tensor(int rows, int cols, double fill = 0.0);

  /// rows×cols tensor taking ownership of `data` (size must be rows*cols).
  /// The adopted buffer joins the pool's recycling on destruction.
  Tensor(int rows, int cols, std::vector<double> data);

  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor();

  /// rows×cols tensor with unspecified contents — for outputs whose every
  /// element the caller writes before any read (GEMM results, transposes).
  /// Skips the zero-fill Tensor(rows, cols) would pay just to have the
  /// kernel overwrite it; in a warm steady-state loop the recycled pool
  /// buffer already has the right size, so construction touches no memory.
  static Tensor Uninitialized(int rows, int cols);

  static Tensor Zeros(int rows, int cols) { return Tensor(rows, cols, 0.0); }
  static Tensor Full(int rows, int cols, double v) {
    return Tensor(rows, cols, v);
  }
  /// Uniform in [lo, hi).
  static Tensor Uniform(int rows, int cols, double lo, double hi, Rng& rng);
  /// Xavier/Glorot uniform for a (fan_in → fan_out) weight.
  static Tensor XavierUniform(int fan_in, int fan_out, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  int size() const { return rows_ * cols_; }
  bool empty() const { return size() == 0; }

  double& At(int r, int c);
  double At(int r, int c) const;
  double& operator[](int i) { return data_[i]; }
  double operator[](int i) const { return data_[i]; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  /// Resets all entries to zero without reallocating.
  void SetZero();

  /// In-place axpy: *this += alpha * other. Shapes must match.
  void AddScaled(const Tensor& other, double alpha);

  /// Frobenius norm.
  double Norm() const;

  /// Largest absolute entry (0 for empty).
  double MaxAbs() const;

  friend bool operator==(const Tensor&, const Tensor&) = default;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Tensor& t);

// ---- Raw matrix ops (allocate their result; shape-checked). ----
//
// The matmul family routes through the SIMD kernel layer (nn/kernels/
// simd.h): runtime ISA dispatch (scalar vs AVX2 packed microkernel, gated
// by the fast_math flag) plus row-partitioning across
// parallel::ThreadPool::Global() once the multiply-add count clears a
// threshold (~2^18). Per-element accumulation order is invariant to thread
// count and blocking, so results are bitwise reproducible; with fast_math
// off (or the scalar backend) they are additionally bitwise identical to
// the original serial loops.

Tensor MatMul(const Tensor& a, const Tensor& b);
/// a·b + row-broadcast bias in one pass: output rows start as `bias`, so the
/// fused form skips the extra allocation and the two full traversals (copy +
/// add) that `AddRowBroadcast(MatMul(a, b), bias)` pays.
Tensor Affine(const Tensor& a, const Tensor& b, const Tensor& bias);
/// a·bᵀ without materializing the transpose.
Tensor MatMulTransposeB(const Tensor& a, const Tensor& b);
/// aᵀ·b without materializing the transpose.
Tensor MatMulTransposeA(const Tensor& a, const Tensor& b);
Tensor Transpose(const Tensor& a);
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);  // elementwise (Hadamard)
Tensor Scale(const Tensor& a, double s);
/// Adds a 1×cols row vector to every row of `a`.
Tensor AddRowBroadcast(const Tensor& a, const Tensor& row);
/// Sums all rows of `a` into a 1×cols row vector.
Tensor SumRows(const Tensor& a);
/// rows×1 column of per-row maxima (first-max tie-break); `a` must have at
/// least one column. Raw counterpart of the autograd RowwiseMax for
/// no-grad consumers like the batched TD-target path.
Tensor RowwiseMax(const Tensor& a);

}  // namespace head::nn

#endif  // HEAD_NN_TENSOR_H_
