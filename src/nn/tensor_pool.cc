#include "nn/tensor_pool.h"

#include <bit>
#include <utility>

namespace head::nn {

namespace {

// POD thread-locals stay readable for the whole thread lifetime, including
// during static/thread_local destruction, which is when the pool itself may
// already be gone.
thread_local TensorPool* tl_pool = nullptr;
thread_local bool tl_pool_destroyed = false;

/// Index of the smallest power of two ≥ n (n ≥ 1).
int CeilBucket(size_t n) { return std::bit_width(n - 1); }

/// Index of the largest power of two ≤ n (n ≥ 1).
int FloorBucket(size_t n) { return std::bit_width(n) - 1; }

}  // namespace

TensorPool* TensorPool::Get() {
  if (tl_pool != nullptr) return tl_pool;
  if (tl_pool_destroyed) return nullptr;
  thread_local TensorPool pool;
  tl_pool = &pool;
  return tl_pool;
}

TensorPool::~TensorPool() {
  tl_pool = nullptr;
  tl_pool_destroyed = true;
}

std::vector<double> TensorPool::Acquire(size_t n) {
  if (n == 0) return {};
  const int b = CeilBucket(n);
  if (b < kNumBuckets && !buckets_[b].empty()) {
    std::vector<double> buf = std::move(buckets_[b].back());
    buckets_[b].pop_back();
    ++stats_.hits;
    stats_.bytes_pooled -= buf.capacity() * sizeof(double);
    return buf;
  }
  ++stats_.misses;
  std::vector<double> buf;
  // Reserve the full bucket size so the buffer keeps landing in bucket `b`
  // through release/acquire cycles instead of fragmenting across classes.
  buf.reserve(b < kNumBuckets ? (size_t{1} << b) : n);
  return buf;
}

void TensorPool::Release(std::vector<double>&& buf) {
  const size_t cap = buf.capacity();
  if (cap == 0) return;
  const int b = FloorBucket(cap);
  if (b >= kNumBuckets || buckets_[b].size() >= kMaxPerBucket) {
    ++stats_.discarded;
    return;  // not consumed — the caller's vector frees it normally
  }
  ++stats_.released;
  stats_.bytes_pooled += cap * sizeof(double);
  buckets_[b].push_back(std::move(buf));
}

void TensorPool::Clear() {
  for (auto& bucket : buckets_) bucket.clear();
  stats_.bytes_pooled = 0;
}

}  // namespace head::nn
