#include "nn/serialize.h"

#include <cstdint>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace head::nn {
namespace {

constexpr uint32_t kMagic = 0x48454144;  // "HEAD"

template <typename T>
void WritePod(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::istream& is, T* v) {
  is.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(is);
}

}  // namespace

void SaveParams(const Module& module, std::ostream& os) {
  const std::vector<Var> params = module.Params();
  WritePod(os, kMagic);
  WritePod(os, static_cast<uint32_t>(params.size()));
  for (const Var& p : params) {
    const Tensor& t = p.value();
    WritePod(os, static_cast<int32_t>(t.rows()));
    WritePod(os, static_cast<int32_t>(t.cols()));
    os.write(reinterpret_cast<const char*>(t.data().data()),
             static_cast<std::streamsize>(t.data().size() * sizeof(double)));
  }
}

bool LoadParams(Module& module, std::istream& is) {
  uint32_t magic = 0;
  uint32_t count = 0;
  if (!ReadPod(is, &magic) || magic != kMagic) return false;
  if (!ReadPod(is, &count)) return false;
  std::vector<Var> params = module.Params();
  if (count != params.size()) return false;
  for (Var& p : params) {
    int32_t rows = 0;
    int32_t cols = 0;
    if (!ReadPod(is, &rows) || !ReadPod(is, &cols)) return false;
    Tensor& t = p.mutable_value();
    if (rows != t.rows() || cols != t.cols()) return false;
    is.read(reinterpret_cast<char*>(t.data().data()),
            static_cast<std::streamsize>(t.data().size() * sizeof(double)));
    if (!is) return false;
  }
  return true;
}

void SaveParamsToFile(const Module& module, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  HEAD_CHECK_MSG(os.good(), "cannot open for write: " << path);
  SaveParams(module, os);
  HEAD_CHECK_MSG(os.good(), "write failed: " << path);
}

bool LoadParamsFromFile(Module& module, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  return LoadParams(module, is);
}

}  // namespace head::nn
