#include "nn/plan.h"

#include <atomic>
#include <cstdlib>
#include <utility>

#include "common/check.h"
#include "obs/profiler.h"

namespace head::nn {

using internal::VarImpl;

namespace {

std::atomic<uint64_t> g_plan_serial{0};

/// The thread's live capture, if any. Ops in autograd.cc route node
/// allocation here via plan_internal::NewNode() while this is non-null.
thread_local ExecPlan* t_capture = nullptr;

}  // namespace

namespace plan_internal {

bool Active() { return t_capture != nullptr; }

VarImpl* NewNode() {
  ExecPlan* plan = t_capture;
  HEAD_CHECK(plan != nullptr);
  // deque: chunked storage, so already-captured node addresses never move
  // while later ops record them as parents.
  plan->nodes_.emplace_back();
  VarImpl* node = &plan->nodes_.back();
  plan->index_of_.emplace(node, static_cast<int>(plan->nodes_.size()) - 1);
  return node;  // default epoch 0: a persistent leaf to Var::alive()
}

void RecordBackward(VarImpl* root, const std::vector<VarImpl*>& order) {
  ExecPlan* plan = t_capture;
  HEAD_CHECK(plan != nullptr);
  // One Backward per captured step, and it must differentiate the captured
  // graph — a stray Backward over arena nodes mid-capture is a bug.
  HEAD_CHECK(plan->backward_order_.empty());
  const auto root_it = plan->index_of_.find(root);
  HEAD_CHECK(root_it != plan->index_of_.end());
  plan->backward_order_.reserve(order.size());
  for (VarImpl* node : order) {
    const auto it = plan->index_of_.find(node);
    // External leaves (Params) appear in the topo order but carry no
    // closure and no per-step state — nothing to replay for them.
    if (it == plan->index_of_.end()) continue;
    plan->backward_order_.push_back(it->second);
  }
  HEAD_CHECK(!plan->backward_order_.empty());
  HEAD_CHECK_EQ(plan->backward_order_.back(), root_it->second);
}

void RegisterIndexSlot(VarImpl* node) {
  ExecPlan* plan = t_capture;
  HEAD_CHECK(plan != nullptr);
  const auto it = plan->index_of_.find(node);
  HEAD_CHECK(it != plan->index_of_.end());
  plan->index_slots_.push_back(it->second);
}

/// One thread's private instantiation of a plan: the master nodes cloned,
/// internal parent edges rewired to the clones, external edges left on the
/// shared persistent Params (so replay reads live weights).
struct ReplayContext {
  std::shared_ptr<const ExecPlan> plan;  // keeps the plan alive
  std::vector<VarImpl> nodes;

  explicit ReplayContext(std::shared_ptr<const ExecPlan> p)
      : plan(std::move(p)) {
    const ExecPlan& src = *plan;
    nodes.reserve(src.nodes_.size());
    for (const VarImpl& master : src.nodes_) {
      if (master.forward == nullptr) {
        // Leaves the replay actually reads: captured constants and input
        // slots. These keep their master values (slots are overwritten by
        // Replay's feed, but their shapes seed the input checks).
        nodes.push_back(master);
        continue;
      }
      // Recomputed nodes: every replay overwrites `value` before any read,
      // so the clone carries geometry only — forward fns like Concat/Slice/
      // Reshape size their output from value.rows()/cols(). Skipping the
      // content copy keeps first-replay cost near one eager step even for
      // wide training graphs.
      VarImpl& node = nodes.emplace_back();
      node.value = Tensor::Uninitialized(master.value.rows(),
                                         master.value.cols());
      node.requires_grad = master.requires_grad;
      node.backward = master.backward;
      node.forward = master.forward;
      node.parents = master.parents;
      node.aux_d = master.aux_d;
      node.aux_i = master.aux_i;
      node.indices = master.indices;
      node.op_name = master.op_name;
      node.epoch = master.epoch;
    }
    for (VarImpl& node : nodes) {
      for (VarImpl*& parent : node.parents) {
        const auto it = src.index_of_.find(parent);
        if (it != src.index_of_.end()) parent = &nodes[it->second];
      }
    }
  }
};

}  // namespace plan_internal

namespace {

/// Replay contexts are cached per thread, keyed by plan serial. Call sites
/// cap how many plans they create, so the map stays tiny; the cap here is a
/// backstop against unbounded growth when a process churns through plans
/// (each entry pins its plan via shared_ptr).
constexpr size_t kMaxContextsPerThread = 64;

thread_local std::unordered_map<uint64_t,
                                std::unique_ptr<plan_internal::ReplayContext>>
    t_contexts;

plan_internal::ReplayContext& ContextFor(const ExecPlan& plan) {
  const auto it = t_contexts.find(plan.serial());
  if (it != t_contexts.end()) return *it->second;
  if (t_contexts.size() >= kMaxContextsPerThread) t_contexts.clear();
  auto ctx = std::make_unique<plan_internal::ReplayContext>(
      plan.shared_from_this());
  plan_internal::ReplayContext& ref = *ctx;
  t_contexts.emplace(plan.serial(), std::move(ctx));
  return ref;
}

}  // namespace

ExecPlan::~ExecPlan() = default;

std::vector<const Tensor*> ExecPlan::Replay(
    std::vector<Tensor> inputs,
    std::initializer_list<const std::vector<int>*> index_inputs) const {
  HEAD_CHECK_EQ(inputs.size(), input_slots_.size());
  HEAD_CHECK(index_inputs.size() == 0 ||
             index_inputs.size() == index_slots_.size());
  plan_internal::ReplayContext& ctx = ContextFor(*this);
  std::vector<VarImpl>& nodes = ctx.nodes;

  for (size_t i = 0; i < inputs.size(); ++i) {
    VarImpl& slot = nodes[input_slots_[i]];
    // Plans are shape-specialized; a mismatched feed means the call site
    // keyed its plan cache wrong.
    HEAD_CHECK_EQ(inputs[i].rows(), slot.value.rows());
    HEAD_CHECK_EQ(inputs[i].cols(), slot.value.cols());
    slot.value = std::move(inputs[i]);
  }
  {
    size_t j = 0;
    for (const std::vector<int>* idx : index_inputs) {
      VarImpl& slot = nodes[index_slots_[j++]];
      HEAD_CHECK_EQ(idx->size(), slot.indices.size());
      slot.indices.assign(idx->begin(), idx->end());
    }
  }

  // Forward: the creation-order walk IS the schedule — capture already
  // linearized the graph, so there is nothing to sort or allocate.
  for (VarImpl& node : nodes) {
    if (node.forward != nullptr) node.forward(node);
  }

  if (!backward_order_.empty()) {
    // Mirrors nn::Backward's replayed portion exactly: same seed, same
    // reverse order, same skip condition, same per-node attribution.
    HEAD_PROF_SCOPE("nn.backward");
    obs::ScopedProfPhase prof_phase(obs::ProfPhase::kBackward);
    nodes[backward_order_.back()].AccumGrad(Tensor::Full(1, 1, 1.0));
    for (auto it = backward_order_.rbegin(); it != backward_order_.rend();
         ++it) {
      VarImpl& node = nodes[*it];
      if (node.backward != nullptr && !node.grad.empty()) {
        HEAD_PROF_OP(node.op_name != nullptr ? node.op_name : "nn.op",
                     node.value.rows(), node.value.cols(), 0, 0, 0);
        node.backward(node);
      }
    }
    // Param grads persist for the optimizer; every plan-local grad is
    // dropped so the next replay accumulates from fresh-tape state (an
    // adopted first accumulation, never a stale AddScaled).
    for (VarImpl& node : nodes) {
      if (!node.grad.empty()) node.grad = Tensor();
    }
  }

  std::vector<const Tensor*> out;
  out.reserve(outputs_.size());
  for (const int idx : outputs_) out.push_back(&nodes[idx].value);
  return out;
}

PlanCapture::PlanCapture() {
  HEAD_CHECK(t_capture == nullptr);  // no nested captures
  plan_ = std::shared_ptr<ExecPlan>(new ExecPlan());
  t_capture = plan_.get();
}

PlanCapture::~PlanCapture() {
  if (t_capture == plan_.get()) t_capture = nullptr;
}

std::shared_ptr<const ExecPlan> PlanCapture::Finish(
    std::initializer_list<Var> outputs) {
  HEAD_CHECK(!finished_);
  HEAD_CHECK(t_capture == plan_.get());
  t_capture = nullptr;
  finished_ = true;
  ExecPlan& plan = *plan_;
  HEAD_CHECK(!plan.nodes_.empty());
  for (const Var& out : outputs) {
    HEAD_CHECK(out.defined());
    const auto it = plan.index_of_.find(out.node());
    HEAD_CHECK(it != plan.index_of_.end());  // outputs must be captured nodes
    plan.outputs_.push_back(it->second);
  }
  for (VarImpl& node : plan.nodes_) {
    for (VarImpl* parent : node.parents) {
      if (plan.index_of_.count(parent) != 0) continue;
      // An external parent must be a persistent leaf (epoch 0 — a Param):
      // its address and storage outlive the plan and replay reads its live
      // value. An arena node here would dangle after the next ResetTape.
      HEAD_CHECK_EQ(parent->epoch, 0u);
    }
    // Clones must start from fresh-tape state (capture's Backward already
    // cleared closure-owning nodes; this catches grad-receiving leaves).
    if (!node.grad.empty()) node.grad = Tensor();
  }
  plan.serial_ = g_plan_serial.fetch_add(1, std::memory_order_relaxed) + 1;
  return plan_;
}

Var PlanInput(Tensor value) {
  if (t_capture == nullptr) return Var::Constant(std::move(value));
  ExecPlan* plan = t_capture;
  VarImpl* node = plan_internal::NewNode();
  node->value = std::move(value);
  plan->input_slots_.push_back(plan->index_of_.at(node));
  return Var(node, 0);
}

bool PlansEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("HEAD_PLANS");
    return env == nullptr || env[0] == '\0' || env[0] != '0';
  }();
  return enabled;
}

bool PlanCaptureActive() { return t_capture != nullptr; }

}  // namespace head::nn
