// Per-thread arena for the autograd tape. Every op node (internal::VarImpl)
// is handed out by the calling thread's GraphArena and recycled — not freed —
// when the tape is reset at the start of the next graph-building region
// (optimizer step, Act, Predict). Nodes live in chunked storage so their
// addresses never move, and they keep their vector capacities (parents,
// index lists) across resets; combined with the TensorPool behind Tensor
// storage this makes steady-state training steps allocation-free.
//
// Handles (nn::Var) carry the arena epoch at creation time; a handle used
// after its node was recycled into a newer epoch trips HEAD_DCHECK in debug
// builds (see Var::alive()). Trainable parameters are not arena nodes — they
// are heap-allocated leaves owned by their Var handles and survive resets.
#ifndef HEAD_NN_ARENA_H_
#define HEAD_NN_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "nn/tensor.h"

namespace head::nn {

namespace internal {

/// One autograd tape node. Backward closures are plain function pointers;
/// per-op state lives in the node itself (aux_d / aux_i / indices) and the
/// inputs are read back from `parents` (same order the op listed them).
struct VarImpl {
  Tensor value;
  Tensor grad;  // lazily allocated on first accumulation
  bool requires_grad = false;
  void (*backward)(VarImpl&) = nullptr;  // reads this.grad, feeds parents
  /// Recomputes `value` from `parents` — the op's eager arithmetic re-run
  /// verbatim. Set on every MakeResult node; consumed by ExecPlan::Replay
  /// (plan.h), which walks nodes in creation order instead of rebuilding
  /// the graph. nullptr on leaves (Params, Constants, plan inputs).
  void (*forward)(VarImpl&) = nullptr;
  std::vector<VarImpl*> parents;
  double aux_d = 0.0;        // Scale factor, LeakyRelu slope
  int aux_i = 0;             // SliceCols c0 / SliceRows r0 / group size
  std::vector<int> indices;  // gather rows / selected cols / argmax
  /// Op literal for profiler backward attribution; set by MakeResult
  /// whenever `backward` is, so it is never read stale after recycling.
  const char* op_name = nullptr;
  uint64_t epoch = 0;        // arena epoch at creation; 0 = persistent leaf
  uint64_t visit_mark = 0;   // Backward traversal stamp

  void AccumGrad(const Tensor& g) {
    if (grad.empty()) {
      grad = g;  // first consumer: one pooled copy, no zero-fill pass
    } else {
      grad.AddScaled(g, 1.0);
    }
  }

  /// First accumulation adopts the temporary instead of copying — closures
  /// feed freshly built tensors here, so the common single-consumer case
  /// does no extra allocation or pass.
  void AccumGrad(Tensor&& g) {
    if (grad.empty()) {
      grad = std::move(g);
    } else {
      grad.AddScaled(g, 1.0);
    }
  }
};

}  // namespace internal

/// Cumulative statistics of one thread's arena (plain fields — thread-local).
struct GraphArenaStats {
  uint64_t nodes_created = 0;  ///< monotonic; grows only when chunks are added
  uint64_t resets = 0;
  size_t capacity = 0;     ///< nodes currently held (all chunks)
  size_t peak_in_use = 0;  ///< high-water mark of live nodes in one epoch
};

class GraphArena {
 public:
  static GraphArena& ThreadLocal();

  GraphArena();
  ~GraphArena();
  GraphArena(const GraphArena&) = delete;
  GraphArena& operator=(const GraphArena&) = delete;

  /// The next recycled node, reset to a clean state (no backward, no
  /// parents, no grad; parent/index capacities and the value tensor's
  /// pooled buffer are retained from the node's previous life).
  internal::VarImpl* New();

  /// Recycles every node handed out since the last Reset: the cursor
  /// rewinds and the epoch advances so stale Var handles become detectable.
  /// Nothing is freed — node storage and capacities are reused.
  void Reset();

  uint64_t epoch() const { return epoch_; }
  size_t nodes_in_use() const { return cursor_; }
  const GraphArenaStats& stats() const { return stats_; }

  /// Persistent Backward scratch: cleared per call, capacity retained, so
  /// the topo sort reserves itself to the previous step's node count.
  std::vector<internal::VarImpl*>& order_scratch() { return order_scratch_; }
  std::vector<std::pair<internal::VarImpl*, size_t>>& stack_scratch() {
    return stack_scratch_;
  }

  static constexpr size_t kChunkNodes = 256;

 private:
  struct Chunk;  // fixed VarImpl array — node addresses never move

  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t cursor_ = 0;
  uint64_t epoch_ = 1;  // starts above the persistent-leaf epoch 0
  GraphArenaStats stats_;
  std::vector<internal::VarImpl*> order_scratch_;
  std::vector<std::pair<internal::VarImpl*, size_t>> stack_scratch_;
};

/// Recycles the calling thread's tape (GraphArena::ThreadLocal().Reset()).
/// Call at the start of each graph-building region; any Var from an earlier
/// region (except Params and other persistent leaves) becomes invalid.
void ResetTape();

/// Publishes the calling thread's arena + tensor-pool statistics to the obs
/// metrics registry as nn_alloc_* gauges (see DESIGN.md "Memory management").
void PublishAllocMetrics();

/// Steady-state allocation probe: arena chunk growth plus tensor-pool misses
/// on the calling thread. The delta across a warmed-up training step is zero
/// when the step ran entirely out of recycled memory (the check.sh gate).
uint64_t AllocEvents();

}  // namespace head::nn

#endif  // HEAD_NN_ARENA_H_
