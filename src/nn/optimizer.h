// First-order optimizers over flat parameter lists. The paper trains with
// Adam [67]; SGD is provided for tests and ablations.
#ifndef HEAD_NN_OPTIMIZER_H_
#define HEAD_NN_OPTIMIZER_H_

#include <vector>

#include "nn/autograd.h"

namespace head::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<Var> params);
  virtual ~Optimizer() = default;

  /// Applies one update from the accumulated gradients.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  /// Rescales gradients so their global L2 norm is at most `max_norm`.
  /// Returns the pre-clip norm (telemetry: gradient-norm histograms).
  double ClipGradNorm(double max_norm);

  void set_learning_rate(double lr) { lr_ = lr; }
  double learning_rate() const { return lr_; }

 protected:
  std::vector<Var> params_;
  double lr_ = 1e-3;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Var> params, double lr);
  void Step() override;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<Var> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);
  void Step() override;

 private:
  double beta1_;
  double beta2_;
  double eps_;
  int t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace head::nn

#endif  // HEAD_NN_OPTIMIZER_H_
