// Internal contract between the dispatch layer (simd.cc) and the two
// instruction-set backends (gemm_scalar.cc, gemm_avx2.cc). Not part of the
// public kernel API — include kernels/simd.h instead.
//
// Each backend fills one KernelTable with serial row-range kernels. The
// dispatch layer owns thresholds, row-partitioning across the thread pool,
// and shared panel packing; a backend's gemm entries must therefore be pure
// functions of their arguments whose per-element results do not depend on
// the row range they were handed (chunk invariance).
#ifndef HEAD_NN_KERNELS_KERNEL_TABLE_H_
#define HEAD_NN_KERNELS_KERNEL_TABLE_H_

#include <cstddef>

#include "nn/kernels/simd.h"

namespace head::nn::kernels::internal {

/// Width (columns) of one packed B panel on the packed path. The panel
/// buffer is padded to a multiple of kPanelWidth columns with zeros, so the
/// microkernel always runs full-width; the store masks the column tail.
inline constexpr int kPanelWidth = 8;

struct KernelTable {
  const char* name;

  // ---- GEMM family (fast_math-gated on SIMD backends) ----
  //
  // Serial kernels over the full [0, m) row range they are given. The
  // dispatch layer calls them on row sub-ranges with adjusted pointers;
  // gemm_tn additionally takes lda (= full output row count m) because its
  // A operand is column-sliced rather than row-sliced when chunked.

  /// C(m×n) ⟵ init ⊕ A(m×k)·B(k×n); bias used only for kBias.
  void (*gemm_nn)(int m, int n, int k, const double* a, const double* b,
                  const double* bias, GemmInit init, double* c);
  /// C(m×n) ⟵ init ⊕ Aᵀ·B, A stored (k×lda) row-major, output rows are
  /// A columns [0, m) of that slice.
  void (*gemm_tn)(int m, int n, int k, const double* a, int lda,
                  const double* b, GemmInit init, double* c);
  /// C(m×n) = A(m×k)·Bᵀ, B stored (n×k) row-major.
  void (*gemm_nt)(int m, int n, int k, const double* a, const double* b,
                  double* c);

  // ---- Packed-panel path (null on backends without one) ----
  //
  // pack_b lays B out k-major in kPanelWidth-column panels, zero-padding
  // the column tail: bp[(panel·k + kk)·kPanelWidth + j]. `transposed`
  // selects the (n×k) row-major source layout (the Bᵀ of gemm_nt).
  // pack_bias pads a 1×n row into the same panel grid (so the microkernel
  // may load full panels of bias at the tail). gemm_packed computes a row
  // range of C against the shared packed panels; `a` walks rows with
  // a_row_stride and k with a_k_stride, covering A, the column-slice of
  // gemm_tn, and anything in between.
  void (*pack_b)(int n, int k, const double* b, bool transposed, double* bp);
  void (*pack_bias)(int n, const double* bias, double* bias_p);
  void (*gemm_packed)(int m, int n, int k, const double* a, int a_row_stride,
                      int a_k_stride, const double* bp, const double* bias_p,
                      GemmInit init, double* c);

  // ---- Elementwise (always routed; bitwise-equal across backends) ----
  void (*axpy)(int n, double alpha, const double* x, double* y);
  void (*act_forward)(ActKind kind, double leaky_slope, int n, double* x);
  void (*act_backward)(ActKind kind, double leaky_slope, int n,
                       const double* y, const double* gout, double* gin);
  void (*rowwise_max)(int rows, int cols, const double* a, double* out,
                      int* argmax);
  void (*adam_step)(int n, double lr, double beta1, double beta2, double eps,
                    double bc1, double bc2, const double* g, double* m,
                    double* v, double* value);
};

/// Portable backend; always available.
extern const KernelTable kScalarTable;

#if defined(HEAD_HAVE_AVX2_TU)
/// AVX2+FMA backend; linked only when the AVX2 TU is compiled in.
extern const KernelTable kAvx2Table;
#endif

/// Doubles needed for a packed B (or Bᵀ) panel buffer of an n×k problem.
inline size_t PackedBSize(int n, int k) {
  const int panels = (n + kPanelWidth - 1) / kPanelWidth;
  return static_cast<size_t>(panels) * kPanelWidth * k;
}

/// Doubles needed for a packed bias row.
inline size_t PackedBiasSize(int n) {
  const int panels = (n + kPanelWidth - 1) / kPanelWidth;
  return static_cast<size_t>(panels) * kPanelWidth;
}

}  // namespace head::nn::kernels::internal

#endif  // HEAD_NN_KERNELS_KERNEL_TABLE_H_
