// SIMD microkernel layer behind the dense tensor ops.
//
// Two instruction-set backends implement the same kernel contract:
//   * scalar  — portable C++, compiled unconditionally. Its GEMM loops are
//     the exact ikj / kij / row-dot schedules the tensor layer has always
//     used, so with the scalar backend active results are bitwise identical
//     to the pre-SIMD code.
//   * avx2    — 4×8 register-blocked FMA microkernel over packed B panels
//     (gemm_avx2.cc, the only TU compiled with -mavx2 -mfma). Every output
//     element is a single register lane folding fma(a, b, acc) over k in
//     increasing order, independent of blocking, packing, row-chunking, or
//     the m-size path taken — so AVX2 results are deterministic run-to-run,
//     thread-count-invariant, and identical between the batched and
//     per-sample training paths. They differ from scalar only by FMA's
//     single rounding per multiply-add (≤ ~1e-13 relative at these shapes;
//     tolerance-tested at 1e-6).
//
// Dispatch: a function-pointer table selected once at startup from cpuid
// (__builtin_cpu_supports) with an HEAD_SIMD=avx2|scalar env override, and
// swappable at runtime (SetActiveIsa) for tests and the --kernel bench axis.
//
// Determinism contract (see DESIGN.md "SIMD kernel dispatch"):
//   * Elementwise kernels (axpy, activations, Adam, rowwise-max) use only
//     correctly-rounded lane ops (no FMA, no reassociation): bitwise equal
//     to scalar on every backend, so they are always routed.
//   * GEMM-family kernels reassociate (FMA contraction, multi-accumulator
//     dots): routed to the SIMD backend only while fast_math is enabled.
//     With fast_math off (SetFastMath(false) or HEAD_FAST_MATH=0) every
//     GEMM runs the scalar schedule regardless of the active ISA, which is
//     what the bitwise replay/parity suites pin.
#ifndef HEAD_NN_KERNELS_SIMD_H_
#define HEAD_NN_KERNELS_SIMD_H_

#include <cstdint>

#include "obs/profiler.h"

namespace head::nn::kernels {

enum class Isa : int { kScalar = 0, kAvx2 = 1 };

/// GEMM transposition variants, for flop/byte accounting call sites.
enum class GemmKind : int { kNN = 0, kTN, kNT };

/// Multiply-add flop count (2·m·n·k) of one C(m×n) = A·B GEMM. The single
/// formula shared by the op profiler and bench/training_throughput — every
/// transposition variant runs the same arithmetic.
int64_t FlopsFor(GemmKind kind, int m, int n, int k);

/// Minimum double-precision bytes moved by one GEMM (read A and B once,
/// write C once) — the compulsory-traffic floor arithmetic intensity is
/// computed against, not a cache-model estimate.
int64_t BytesFor(GemmKind kind, int m, int n, int k);

/// How a GEMM kernel seeds its output accumulators.
enum class GemmInit : int {
  kZero = 0,    ///< C = A·B
  kBias,        ///< C = rowbcast(bias) + A·B
  kAccumulate,  ///< C += A·B (C already holds a partial result)
};

/// Fusable elementwise activations (forward applied in place on the GEMM
/// output; backward maps (y, dL/dy) → dL/dpre from the output alone).
enum class ActKind : int { kNone = 0, kRelu, kLeakyRelu, kTanh, kSigmoid };

// ---- Capability / dispatch ----

/// True when this binary contains the AVX2 TU *and* the CPU reports
/// AVX2+FMA at runtime.
bool CpuSupportsAvx2Fma();

/// True when the binary was built with the AVX2 TU (HEAD_SIMD_DISABLE=OFF).
bool BuiltWithAvx2();

/// The backend selected at startup: HEAD_SIMD env override if set and
/// satisfiable, else the best the CPU supports.
Isa DetectIsa();

/// Currently active backend (atomic; DetectIsa() until overridden).
Isa ActiveIsa();

/// Runtime override for tests and the bench --kernel axis. Requesting
/// kAvx2 on a machine without AVX2+FMA keeps the scalar backend and
/// returns false.
bool SetActiveIsa(Isa isa);

const char* IsaName(Isa isa);

/// Short capability stamp for committed baselines, e.g. "avx2+fma" or
/// "sse2" — what the *hardware* reports, independent of the active backend.
const char* CpuCapabilityString();

// ---- fast_math gate (GEMM-family reassociation) ----

/// Process-wide; default ON (HEAD_FAST_MATH=0|off disables at startup).
/// Deterministic either way — OFF additionally pins bitwise equality with
/// the scalar schedules for replay/parity suites.
bool FastMathEnabled();
void SetFastMath(bool enabled);

// ---- Kernel entry points (shape checks are the caller's job) ----
//
// All matrices are dense row-major. The Gemm* calls route by active ISA and
// fast_math, row-partition across parallel::ThreadPool::Global() above a
// flop threshold (chunk-invariant by construction on both backends), and
// share one packed B panel across all row chunks on the AVX2 path. Thread-
// local panel scratch grows once and is reused — no steady-state heap.

/// C(m×n) ⟵ init ⊕ A(m×k)·B(k×n). `bias` (1×n) used only for kBias.
void GemmNN(int m, int n, int k, const double* a, const double* b,
            const double* bias, GemmInit init, double* c);

/// C(m×n) ⟵ init ⊕ Aᵀ·B with A stored (k×m) row-major.
void GemmTN(int m, int n, int k, const double* a, const double* b,
            GemmInit init, double* c);

/// C(m×n) = A(m×k)·Bᵀ with B stored (n×k) row-major.
void GemmNT(int m, int n, int k, const double* a, const double* b, double* c);

/// y[i] += alpha·x[i]. Bitwise-equal across backends (no FMA).
void Axpy(int n, double alpha, const double* x, double* y);

/// In-place activation on x[0..n). Bitwise-equal across backends.
void ActForward(ActKind kind, double leaky_slope, int n, double* x);

/// gin[i] = gout[i]·act'(y[i]) from the *output* y. Bitwise-equal across
/// backends. gin may alias gout.
void ActBackward(ActKind kind, double leaky_slope, int n, const double* y,
                 const double* gout, double* gin);

/// out[r] = max_c a[r,c]; argmax[r] = first maximizing column (may be null).
void RowwiseMax(int rows, int cols, const double* a, double* out, int* argmax);

/// Fused Adam update on n elements (bc1/bc2 = bias corrections). Bitwise-
/// equal across backends (mul/add/div/sqrt are correctly rounded per lane).
void AdamStep(int n, double lr, double beta1, double beta2, double eps,
              double bc1, double bc2, const double* g, double* m, double* v,
              double* value);

// ---- Profiler roofline calibration ----

/// Peak achieved GFLOP/s of the *active* backend on a cache-resident
/// 64×64×64 GemmNN (best of several short trials) — the compute roof the
/// profiler's %roof column is drawn against. ~5 ms.
double MeasurePeakGemmGflops();

/// Measures both roofline peaks (GEMM compute roof above + the portable
/// stream-bandwidth sweep) and injects them via obs::SetRooflinePeaks so
/// profile reports rate ops against this machine/backend. Call before
/// StartProfiling so the calibration GEMMs don't pollute the stats.
obs::RooflinePeaks CalibrateProfilerRoofline();

}  // namespace head::nn::kernels

#endif  // HEAD_NN_KERNELS_SIMD_H_
