// Dispatch layer: ISA selection, the fast_math gate, row-partitioning
// across the thread pool, and shared panel packing for the AVX2 path.
//
// Threading model for the packed path: the *calling* thread packs B (and
// bias) into its thread_local scratch once, then row-chunks the output
// across the pool. Workers only read the packed panels; the pool's task
// dispatch gives pack → chunk execution a happens-before edge, so the
// sharing is race-free (exercised under TSan by nn_simd_test). Scratch
// grows monotonically per thread — zero steady-state allocation.
#include "nn/kernels/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "nn/kernels/kernel_table.h"
#include "parallel/thread_pool.h"

namespace head::nn::kernels {

namespace {

using internal::KernelTable;
using internal::kPanelWidth;
using internal::PackedBiasSize;
using internal::PackedBSize;

// Same break-even as the tensor layer used before the kernel split: chunk
// only above ~260k multiply-adds (see bench/parallel_overhead), keep every
// chunk at least half a threshold of work.
constexpr int64_t kParallelFlops = int64_t{1} << 18;

/// Minimum output rows before the packed path beats the unpacked row-vector
/// kernel (below this, packing B costs more traffic than it saves). Both
/// paths run the identical per-element fma fold, so the cutover is purely a
/// performance choice — never a numerics one.
constexpr int kPackMinRows = 8;

template <typename Kernel>
void ForEachRowChunk(int64_t rows, int64_t flops, const Kernel& kernel) {
  parallel::ThreadPool& pool = parallel::ThreadPool::Global();
  if (flops < kParallelFlops || pool.thread_count() == 1 || rows < 2) {
    kernel(int64_t{0}, rows);
    return;
  }
  const int64_t flops_per_row = std::max<int64_t>(1, flops / rows);
  const int64_t grain =
      std::max<int64_t>(1, (kParallelFlops / 2) / flops_per_row);
  pool.ParallelFor(0, rows, grain, kernel);
}

const KernelTable* TableFor(Isa isa) {
#if defined(HEAD_HAVE_AVX2_TU)
  if (isa == Isa::kAvx2) return &internal::kAvx2Table;
#else
  (void)isa;
#endif
  return &internal::kScalarTable;
}

bool EnvFlagOff(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0;
}

std::atomic<Isa>& ActiveIsaRef() {
  static std::atomic<Isa> isa{DetectIsa()};
  return isa;
}

bool InitFastMath() { return !EnvFlagOff("HEAD_FAST_MATH"); }

std::atomic<bool>& FastMathRef() {
  static std::atomic<bool> on{InitFastMath()};
  return on;
}

/// Backend for GEMM-family ops: scalar whenever fast_math is off (bitwise
/// contract), otherwise whatever ISA is active.
const KernelTable* GemmTable() {
  if (!FastMathRef().load(std::memory_order_relaxed)) {
    return &internal::kScalarTable;
  }
  return TableFor(ActiveIsaRef().load(std::memory_order_relaxed));
}

/// Backend for elementwise ops: always the active ISA — every backend's
/// elementwise kernels are bitwise-equal, so no fast_math gate applies.
const KernelTable* ElementwiseTable() {
  return TableFor(ActiveIsaRef().load(std::memory_order_relaxed));
}

double* ScratchB(size_t need) {
  thread_local std::vector<double> buf;
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

double* ScratchBias(size_t need) {
  thread_local std::vector<double> buf;
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

}  // namespace

bool BuiltWithAvx2() {
#if defined(HEAD_HAVE_AVX2_TU)
  return true;
#else
  return false;
#endif
}

bool CpuSupportsAvx2Fma() {
#if defined(HEAD_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

Isa DetectIsa() {
  static const Isa detected = [] {
    const char* env = std::getenv("HEAD_SIMD");
    if (env != nullptr && *env != '\0') {
      if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
      // "avx2" (or anything else) falls through to capability detection:
      // an unsatisfiable request degrades to the best available backend.
    }
    return CpuSupportsAvx2Fma() ? Isa::kAvx2 : Isa::kScalar;
  }();
  return detected;
}

Isa ActiveIsa() { return ActiveIsaRef().load(std::memory_order_relaxed); }

bool SetActiveIsa(Isa isa) {
  if (isa == Isa::kAvx2 && !CpuSupportsAvx2Fma()) return false;
  ActiveIsaRef().store(isa, std::memory_order_relaxed);
  return true;
}

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

const char* CpuCapabilityString() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return "avx2+fma";
  }
  if (__builtin_cpu_supports("avx2")) return "avx2";
  if (__builtin_cpu_supports("avx")) return "avx";
  return "sse2";
#else
  return "non-x86";
#endif
}

bool FastMathEnabled() {
  return FastMathRef().load(std::memory_order_relaxed);
}

void SetFastMath(bool enabled) {
  FastMathRef().store(enabled, std::memory_order_relaxed);
}

void GemmNN(int m, int n, int k, const double* a, const double* b,
            const double* bias, GemmInit init, double* c) {
  const KernelTable* t = GemmTable();
  const int64_t flops = int64_t{m} * n * k;
  if (t->gemm_packed != nullptr && n > 1 && m >= kPackMinRows) {
    double* bp = ScratchB(PackedBSize(n, k));
    t->pack_b(n, k, b, /*transposed=*/false, bp);
    const double* bias_p = nullptr;
    if (init == GemmInit::kBias) {
      double* bb = ScratchBias(PackedBiasSize(n));
      t->pack_bias(n, bias, bb);
      bias_p = bb;
    }
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      t->gemm_packed(static_cast<int>(i1 - i0), n, k,
                     a + static_cast<size_t>(i0) * k, /*a_row_stride=*/k,
                     /*a_k_stride=*/1, bp, bias_p, init,
                     c + static_cast<size_t>(i0) * n);
    });
    return;
  }
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    t->gemm_nn(static_cast<int>(i1 - i0), n, k,
               a + static_cast<size_t>(i0) * k, b, bias, init,
               c + static_cast<size_t>(i0) * n);
  });
}

void GemmTN(int m, int n, int k, const double* a, const double* b,
            GemmInit init, double* c) {
  const KernelTable* t = GemmTable();
  const int64_t flops = int64_t{m} * n * k;
  if (t->gemm_packed != nullptr && n > 1) {
    double* bp = ScratchB(PackedBSize(n, k));
    t->pack_b(n, k, b, /*transposed=*/false, bp);
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      // Output rows are A columns: walk rows with stride 1, k with stride m.
      t->gemm_packed(static_cast<int>(i1 - i0), n, k, a + i0,
                     /*a_row_stride=*/1, /*a_k_stride=*/m, bp,
                     /*bias_p=*/nullptr, init,
                     c + static_cast<size_t>(i0) * n);
    });
    return;
  }
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    t->gemm_tn(static_cast<int>(i1 - i0), n, k, a + i0, /*lda=*/m, b, init,
               c + static_cast<size_t>(i0) * n);
  });
}

void GemmNT(int m, int n, int k, const double* a, const double* b,
            double* c) {
  const KernelTable* t = GemmTable();
  const int64_t flops = int64_t{m} * n * k;
  if (n == 1) {
    // B is one contiguous row: identical to the NN column-output dot.
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      t->gemm_nn(static_cast<int>(i1 - i0), 1, k,
                 a + static_cast<size_t>(i0) * k, b, /*bias=*/nullptr,
                 GemmInit::kZero, c + i0);
    });
    return;
  }
  if (t->gemm_packed != nullptr) {
    double* bp = ScratchB(PackedBSize(n, k));
    t->pack_b(n, k, b, /*transposed=*/true, bp);
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      t->gemm_packed(static_cast<int>(i1 - i0), n, k,
                     a + static_cast<size_t>(i0) * k, /*a_row_stride=*/k,
                     /*a_k_stride=*/1, bp, /*bias_p=*/nullptr,
                     GemmInit::kZero, c + static_cast<size_t>(i0) * n);
    });
    return;
  }
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    t->gemm_nt(static_cast<int>(i1 - i0), n, k,
               a + static_cast<size_t>(i0) * k, b,
               c + static_cast<size_t>(i0) * n);
  });
}

void Axpy(int n, double alpha, const double* x, double* y) {
  ElementwiseTable()->axpy(n, alpha, x, y);
}

void ActForward(ActKind kind, double leaky_slope, int n, double* x) {
  ElementwiseTable()->act_forward(kind, leaky_slope, n, x);
}

void ActBackward(ActKind kind, double leaky_slope, int n, const double* y,
                 const double* gout, double* gin) {
  ElementwiseTable()->act_backward(kind, leaky_slope, n, y, gout, gin);
}

void RowwiseMax(int rows, int cols, const double* a, double* out,
                int* argmax) {
  ElementwiseTable()->rowwise_max(rows, cols, a, out, argmax);
}

void AdamStep(int n, double lr, double beta1, double beta2, double eps,
              double bc1, double bc2, const double* g, double* m, double* v,
              double* value) {
  ElementwiseTable()->adam_step(n, lr, beta1, beta2, eps, bc1, bc2, g, m, v,
                                value);
}

}  // namespace head::nn::kernels
