// Dispatch layer: ISA selection, the fast_math gate, row-partitioning
// across the thread pool, and shared panel packing for the AVX2 path.
//
// Threading model for the packed path: the *calling* thread packs B (and
// bias) into its thread_local scratch once, then row-chunks the output
// across the pool. Workers only read the packed panels; the pool's task
// dispatch gives pack → chunk execution a happens-before edge, so the
// sharing is race-free (exercised under TSan by nn_simd_test). Scratch
// grows monotonically per thread — zero steady-state allocation.
#include "nn/kernels/simd.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <vector>

#include <chrono>

#include "nn/kernels/kernel_table.h"
#include "obs/profiler.h"
#include "parallel/thread_pool.h"

namespace head::nn::kernels {

namespace {

using internal::KernelTable;
using internal::kPanelWidth;
using internal::PackedBiasSize;
using internal::PackedBSize;

// Same break-even as the tensor layer used before the kernel split: chunk
// only above ~260k multiply-adds (see bench/parallel_overhead), keep every
// chunk at least half a threshold of work.
constexpr int64_t kParallelFlops = int64_t{1} << 18;

/// Minimum output rows before the packed path beats the unpacked row-vector
/// kernel (below this, packing B costs more traffic than it saves). Both
/// paths run the identical per-element fma fold, so the cutover is purely a
/// performance choice — never a numerics one.
constexpr int kPackMinRows = 8;

template <typename Kernel>
void ForEachRowChunk(int64_t rows, int64_t flops, const Kernel& kernel) {
  parallel::ThreadPool& pool = parallel::ThreadPool::Global();
  if (flops < kParallelFlops || pool.thread_count() == 1 || rows < 2) {
    kernel(int64_t{0}, rows);
    return;
  }
  const int64_t flops_per_row = std::max<int64_t>(1, flops / rows);
  const int64_t grain =
      std::max<int64_t>(1, (kParallelFlops / 2) / flops_per_row);
  pool.ParallelFor(0, rows, grain, kernel);
}

const KernelTable* TableFor(Isa isa) {
#if defined(HEAD_HAVE_AVX2_TU)
  if (isa == Isa::kAvx2) return &internal::kAvx2Table;
#else
  (void)isa;
#endif
  return &internal::kScalarTable;
}

bool EnvFlagOff(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0;
}

std::atomic<Isa>& ActiveIsaRef() {
  static std::atomic<Isa> isa{DetectIsa()};
  return isa;
}

bool InitFastMath() { return !EnvFlagOff("HEAD_FAST_MATH"); }

std::atomic<bool>& FastMathRef() {
  static std::atomic<bool> on{InitFastMath()};
  return on;
}

/// Backend for GEMM-family ops: scalar whenever fast_math is off (bitwise
/// contract), otherwise whatever ISA is active.
const KernelTable* GemmTable() {
  if (!FastMathRef().load(std::memory_order_relaxed)) {
    return &internal::kScalarTable;
  }
  return TableFor(ActiveIsaRef().load(std::memory_order_relaxed));
}

/// Backend for elementwise ops: always the active ISA — every backend's
/// elementwise kernels are bitwise-equal, so no fast_math gate applies.
const KernelTable* ElementwiseTable() {
  return TableFor(ActiveIsaRef().load(std::memory_order_relaxed));
}

double* ScratchB(size_t need) {
  thread_local std::vector<double> buf;
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

double* ScratchBias(size_t need) {
  thread_local std::vector<double> buf;
  if (buf.size() < need) buf.resize(need);
  return buf.data();
}

}  // namespace

bool BuiltWithAvx2() {
#if defined(HEAD_HAVE_AVX2_TU)
  return true;
#else
  return false;
#endif
}

bool CpuSupportsAvx2Fma() {
#if defined(HEAD_HAVE_AVX2_TU) && (defined(__x86_64__) || defined(__i386__))
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

Isa DetectIsa() {
  static const Isa detected = [] {
    const char* env = std::getenv("HEAD_SIMD");
    if (env != nullptr && *env != '\0') {
      if (std::strcmp(env, "scalar") == 0) return Isa::kScalar;
      // "avx2" (or anything else) falls through to capability detection:
      // an unsatisfiable request degrades to the best available backend.
    }
    return CpuSupportsAvx2Fma() ? Isa::kAvx2 : Isa::kScalar;
  }();
  return detected;
}

Isa ActiveIsa() { return ActiveIsaRef().load(std::memory_order_relaxed); }

bool SetActiveIsa(Isa isa) {
  if (isa == Isa::kAvx2 && !CpuSupportsAvx2Fma()) return false;
  ActiveIsaRef().store(isa, std::memory_order_relaxed);
  return true;
}

const char* IsaName(Isa isa) {
  return isa == Isa::kAvx2 ? "avx2" : "scalar";
}

const char* CpuCapabilityString() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return "avx2+fma";
  }
  if (__builtin_cpu_supports("avx2")) return "avx2";
  if (__builtin_cpu_supports("avx")) return "avx";
  return "sse2";
#else
  return "non-x86";
#endif
}

bool FastMathEnabled() {
  return FastMathRef().load(std::memory_order_relaxed);
}

void SetFastMath(bool enabled) {
  FastMathRef().store(enabled, std::memory_order_relaxed);
}

int64_t FlopsFor(GemmKind kind, int m, int n, int k) {
  (void)kind;  // every transposition variant runs the same multiply-adds
  return int64_t{2} * m * n * k;
}

int64_t BytesFor(GemmKind kind, int m, int n, int k) {
  (void)kind;
  return int64_t{8} *
         (int64_t{m} * k + int64_t{k} * n + int64_t{m} * n);
}

void GemmNN(int m, int n, int k, const double* a, const double* b,
            const double* bias, GemmInit init, double* c) {
  HEAD_PROF_OP("kernel.gemm_nn", m, n, k, FlopsFor(GemmKind::kNN, m, n, k),
               BytesFor(GemmKind::kNN, m, n, k));
  const KernelTable* t = GemmTable();
  const int64_t flops = int64_t{m} * n * k;
  if (t->gemm_packed != nullptr && n > 1 && m >= kPackMinRows) {
    double* bp = ScratchB(PackedBSize(n, k));
    t->pack_b(n, k, b, /*transposed=*/false, bp);
    const double* bias_p = nullptr;
    if (init == GemmInit::kBias) {
      double* bb = ScratchBias(PackedBiasSize(n));
      t->pack_bias(n, bias, bb);
      bias_p = bb;
    }
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      t->gemm_packed(static_cast<int>(i1 - i0), n, k,
                     a + static_cast<size_t>(i0) * k, /*a_row_stride=*/k,
                     /*a_k_stride=*/1, bp, bias_p, init,
                     c + static_cast<size_t>(i0) * n);
    });
    return;
  }
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    t->gemm_nn(static_cast<int>(i1 - i0), n, k,
               a + static_cast<size_t>(i0) * k, b, bias, init,
               c + static_cast<size_t>(i0) * n);
  });
}

void GemmTN(int m, int n, int k, const double* a, const double* b,
            GemmInit init, double* c) {
  HEAD_PROF_OP("kernel.gemm_tn", m, n, k, FlopsFor(GemmKind::kTN, m, n, k),
               BytesFor(GemmKind::kTN, m, n, k));
  const KernelTable* t = GemmTable();
  const int64_t flops = int64_t{m} * n * k;
  if (t->gemm_packed != nullptr && n > 1) {
    double* bp = ScratchB(PackedBSize(n, k));
    t->pack_b(n, k, b, /*transposed=*/false, bp);
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      // Output rows are A columns: walk rows with stride 1, k with stride m.
      t->gemm_packed(static_cast<int>(i1 - i0), n, k, a + i0,
                     /*a_row_stride=*/1, /*a_k_stride=*/m, bp,
                     /*bias_p=*/nullptr, init,
                     c + static_cast<size_t>(i0) * n);
    });
    return;
  }
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    t->gemm_tn(static_cast<int>(i1 - i0), n, k, a + i0, /*lda=*/m, b, init,
               c + static_cast<size_t>(i0) * n);
  });
}

void GemmNT(int m, int n, int k, const double* a, const double* b,
            double* c) {
  HEAD_PROF_OP("kernel.gemm_nt", m, n, k, FlopsFor(GemmKind::kNT, m, n, k),
               BytesFor(GemmKind::kNT, m, n, k));
  const KernelTable* t = GemmTable();
  const int64_t flops = int64_t{m} * n * k;
  if (n == 1) {
    // B is one contiguous row: identical to the NN column-output dot.
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      t->gemm_nn(static_cast<int>(i1 - i0), 1, k,
                 a + static_cast<size_t>(i0) * k, b, /*bias=*/nullptr,
                 GemmInit::kZero, c + i0);
    });
    return;
  }
  if (t->gemm_packed != nullptr) {
    double* bp = ScratchB(PackedBSize(n, k));
    t->pack_b(n, k, b, /*transposed=*/true, bp);
    ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
      t->gemm_packed(static_cast<int>(i1 - i0), n, k,
                     a + static_cast<size_t>(i0) * k, /*a_row_stride=*/k,
                     /*a_k_stride=*/1, bp, /*bias_p=*/nullptr,
                     GemmInit::kZero, c + static_cast<size_t>(i0) * n);
    });
    return;
  }
  ForEachRowChunk(m, flops, [=](int64_t i0, int64_t i1) {
    t->gemm_nt(static_cast<int>(i1 - i0), n, k,
               a + static_cast<size_t>(i0) * k, b,
               c + static_cast<size_t>(i0) * n);
  });
}

void Axpy(int n, double alpha, const double* x, double* y) {
  HEAD_PROF_OP("kernel.axpy", n, 0, 0, int64_t{2} * n, int64_t{24} * n);
  ElementwiseTable()->axpy(n, alpha, x, y);
}

void ActForward(ActKind kind, double leaky_slope, int n, double* x) {
  HEAD_PROF_OP("kernel.act_fwd", n, 0, 0, int64_t{n}, int64_t{16} * n);
  ElementwiseTable()->act_forward(kind, leaky_slope, n, x);
}

void ActBackward(ActKind kind, double leaky_slope, int n, const double* y,
                 const double* gout, double* gin) {
  HEAD_PROF_OP("kernel.act_bwd", n, 0, 0, int64_t{2} * n, int64_t{24} * n);
  ElementwiseTable()->act_backward(kind, leaky_slope, n, y, gout, gin);
}

void RowwiseMax(int rows, int cols, const double* a, double* out,
                int* argmax) {
  HEAD_PROF_OP("kernel.rowwise_max", rows, cols, 0, 0,
               int64_t{8} * (int64_t{rows} * cols + rows));
  ElementwiseTable()->rowwise_max(rows, cols, a, out, argmax);
}

void AdamStep(int n, double lr, double beta1, double beta2, double eps,
              double bc1, double bc2, const double* g, double* m, double* v,
              double* value) {
  HEAD_PROF_OP("kernel.adam", n, 0, 0, int64_t{10} * n, int64_t{56} * n);
  ElementwiseTable()->adam_step(n, lr, beta1, beta2, eps, bc1, bc2, g, m, v,
                                value);
}

namespace {

uint64_t CalNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double MeasurePeakGemmGflops() {
  constexpr int kDim = 64;  // 3 × 32 KB: resident in L2, streams through L1
  std::vector<double> a(kDim * kDim), b(kDim * kDim), c(kDim * kDim, 0.0);
  for (int i = 0; i < kDim * kDim; ++i) {
    a[i] = 0.25 + 1e-4 * (i % 61);
    b[i] = 0.50 - 1e-4 * (i % 53);
  }
  const int64_t flops = FlopsFor(GemmKind::kNN, kDim, kDim, kDim);
  GemmNN(kDim, kDim, kDim, a.data(), b.data(), nullptr, GemmInit::kZero,
         c.data());  // warm scratch + branch predictors
  double best = 0.0;
  constexpr int kTrials = 8, kReps = 16;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t t0 = CalNowNs();
    for (int rep = 0; rep < kReps; ++rep) {
      GemmNN(kDim, kDim, kDim, a.data(), b.data(), nullptr, GemmInit::kZero,
             c.data());
    }
    const uint64_t t1 = CalNowNs();
    if (t1 > t0) {
      best = std::max(
          best, static_cast<double>(flops) * kReps / static_cast<double>(t1 - t0));
    }
  }
  return best;
}

obs::RooflinePeaks CalibrateProfilerRoofline() {
  obs::RooflinePeaks peaks;
  peaks.gflops = MeasurePeakGemmGflops();
  peaks.gbps = obs::MeasurePeakBandwidthGbps();
  peaks.source = std::string("gemm-") + IsaName(ActiveIsa());
  obs::SetRooflinePeaks(peaks);
  return peaks;
}

}  // namespace head::nn::kernels
