// Portable scalar backend. The GEMM schedules are byte-for-byte the loops
// the tensor layer ran before the kernel split (ikj with zero-skip, per-row
// dot for column outputs, kij rank-1 for AᵀB, row-dot for ABᵀ), so the
// scalar backend — and any backend with fast_math off — reproduces the
// pre-SIMD numerics bitwise. Compiled with -ffp-contract=off so no future
// toolchain/arch flag can fuse these multiplies and adds behind our back.
#include <cmath>
#include <cstring>

#include "nn/kernels/kernel_table.h"

namespace head::nn::kernels::internal {

namespace {

void ScalarGemmNN(int m, int n, int k, const double* a, const double* b,
                  const double* bias, GemmInit init, double* c) {
  if (n == 1) {
    // Column output: a dot product per row streams both operands.
    for (int i = 0; i < m; ++i) {
      const double* arow = a + static_cast<size_t>(i) * k;
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) s += arow[kk] * b[kk];
      switch (init) {
        case GemmInit::kZero: c[i] = s; break;
        case GemmInit::kBias: c[i] = s + bias[0]; break;
        case GemmInit::kAccumulate: c[i] += s; break;
      }
    }
    return;
  }
  // ikj: out row i accumulates a[i,k] · b row k — contiguous in b and out.
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<size_t>(i) * k;
    double* orow = c + static_cast<size_t>(i) * n;
    if (init == GemmInit::kZero) {
      for (int j = 0; j < n; ++j) orow[j] = 0.0;
    } else if (init == GemmInit::kBias) {
      for (int j = 0; j < n; ++j) orow[j] = bias[j];
    }
    for (int kk = 0; kk < k; ++kk) {
      const double aik = arow[kk];
      if (aik == 0.0) continue;  // one-hot / masked rows are common
      const double* brow = b + static_cast<size_t>(kk) * n;
      for (int j = 0; j < n; ++j) orow[j] += aik * brow[j];
    }
  }
}

void ScalarGemmTN(int m, int n, int k, const double* a, int lda,
                  const double* b, GemmInit init, double* c) {
  if (init != GemmInit::kAccumulate) {
    std::memset(c, 0, static_cast<size_t>(m) * n * sizeof(double));
  }
  if (n == 1) {
    // Column b: accumulate b[k]·a[k,:] into the output column with a
    // branch-free contiguous inner loop; k outermost keeps every output
    // element's accumulation order fixed for any row chunking.
    for (int kk = 0; kk < k; ++kk) {
      const double bk = b[kk];
      const double* arow = a + static_cast<size_t>(kk) * lda;
      for (int i = 0; i < m; ++i) c[i] += bk * arow[i];
    }
    return;
  }
  // kij: rank-1 update per shared row k — contiguous in b and out.
  for (int kk = 0; kk < k; ++kk) {
    const double* arow = a + static_cast<size_t>(kk) * lda;
    const double* brow = b + static_cast<size_t>(kk) * n;
    for (int i = 0; i < m; ++i) {
      const double aki = arow[i];
      if (aki == 0.0) continue;
      double* orow = c + static_cast<size_t>(i) * n;
      for (int j = 0; j < n; ++j) orow[j] += aki * brow[j];
    }
  }
}

void ScalarGemmNT(int m, int n, int k, const double* a, const double* b,
                  double* c) {
  // Each output element is a dot product of two contiguous rows.
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<size_t>(i) * k;
    double* orow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      const double* brow = b + static_cast<size_t>(j) * k;
      double s = 0.0;
      for (int kk = 0; kk < k; ++kk) s += arow[kk] * brow[kk];
      orow[j] = s;
    }
  }
}

void ScalarAxpy(int n, double alpha, const double* x, double* y) {
  for (int i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void ScalarActForward(ActKind kind, double leaky_slope, int n, double* x) {
  switch (kind) {
    case ActKind::kNone:
      return;
    case ActKind::kRelu:
      for (int i = 0; i < n; ++i) x[i] = x[i] > 0.0 ? x[i] : 0.0;
      return;
    case ActKind::kLeakyRelu:
      for (int i = 0; i < n; ++i) x[i] = x[i] > 0.0 ? x[i] : leaky_slope * x[i];
      return;
    case ActKind::kTanh:
      for (int i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
      return;
    case ActKind::kSigmoid:
      for (int i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
      return;
  }
}

// All derivatives are functions of the *output* y (for relu/leaky, sign(y)
// matches sign(pre) exactly, with y == 0 mapping to the 0-slope branch the
// unfused backward uses for pre <= 0).
void ScalarActBackward(ActKind kind, double leaky_slope, int n,
                       const double* y, const double* gout, double* gin) {
  switch (kind) {
    case ActKind::kNone:
      if (gin != gout) std::memcpy(gin, gout, n * sizeof(double));
      return;
    case ActKind::kRelu:
      for (int i = 0; i < n; ++i) gin[i] = y[i] > 0.0 ? gout[i] : 0.0;
      return;
    case ActKind::kLeakyRelu:
      for (int i = 0; i < n; ++i) {
        gin[i] = y[i] > 0.0 ? gout[i] : leaky_slope * gout[i];
      }
      return;
    case ActKind::kTanh:
      for (int i = 0; i < n; ++i) gin[i] = gout[i] * (1.0 - y[i] * y[i]);
      return;
    case ActKind::kSigmoid:
      for (int i = 0; i < n; ++i) gin[i] = gout[i] * (y[i] * (1.0 - y[i]));
      return;
  }
}

void ScalarRowwiseMax(int rows, int cols, const double* a, double* out,
                      int* argmax) {
  for (int r = 0; r < rows; ++r) {
    const double* arow = a + static_cast<size_t>(r) * cols;
    int best = 0;
    for (int cc = 1; cc < cols; ++cc) {
      if (arow[cc] > arow[best]) best = cc;
    }
    out[r] = arow[best];
    if (argmax != nullptr) argmax[r] = best;
  }
}

void ScalarAdamStep(int n, double lr, double beta1, double beta2, double eps,
                    double bc1, double bc2, const double* g, double* m,
                    double* v, double* value) {
  for (int j = 0; j < n; ++j) {
    m[j] = beta1 * m[j] + (1.0 - beta1) * g[j];
    v[j] = beta2 * v[j] + (1.0 - beta2) * g[j] * g[j];
    const double m_hat = m[j] / bc1;
    const double v_hat = v[j] / bc2;
    value[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

const KernelTable kScalarTable = {
    /*name=*/"scalar",
    /*gemm_nn=*/ScalarGemmNN,
    /*gemm_tn=*/ScalarGemmTN,
    /*gemm_nt=*/ScalarGemmNT,
    /*pack_b=*/nullptr,
    /*pack_bias=*/nullptr,
    /*gemm_packed=*/nullptr,
    /*axpy=*/ScalarAxpy,
    /*act_forward=*/ScalarActForward,
    /*act_backward=*/ScalarActBackward,
    /*rowwise_max=*/ScalarRowwiseMax,
    /*adam_step=*/ScalarAdamStep,
};

}  // namespace head::nn::kernels::internal
