// AVX2+FMA backend — the only TU compiled with -mavx2 -mfma (and
// -ffp-contract=off, so the *only* fused operations are the explicit
// _mm256_fmadd_pd intrinsics below; scalar tail code stays mul+add unless it
// calls std::fma on purpose).
//
// Determinism invariant shared by every GEMM entry here: an output element
// c[i,j] is produced by one accumulator lane folding
//     acc = fma(a[i,k], b[k,j], acc)   for k = 0, 1, …, K-1
// seeded by the init mode. The fold never depends on the row range, the
// 4-row blocking, the 8-column panel, or whether the packed or unpacked
// variant ran — so results are bitwise identical across thread counts,
// m-size paths, and batched-vs-per-sample call shapes. The single exception
// is the n==1 column-output path, which uses a fixed 4-accumulator dot
// (function of K alone — still deterministic and shape-consistent, it just
// folds in a different fixed order than the n>1 kernels).
//
// Elementwise kernels use no FMA and only correctly-rounded lane ops, so
// they are bitwise-equal to the scalar backend (tested exactly).
#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "nn/kernels/kernel_table.h"

namespace head::nn::kernels::internal {

namespace {

constexpr int kMr = 4;  // microkernel rows (broadcast lanes)
static_assert(kPanelWidth == 8, "microkernel assumes 8-column panels");

/// Lane mask for the first `count` (0..4) lanes of a 4-double vector.
inline __m256i TailMask(int count) {
  alignas(32) static const long long kMasks[5][4] = {
      {0, 0, 0, 0},
      {-1, 0, 0, 0},
      {-1, -1, 0, 0},
      {-1, -1, -1, 0},
      {-1, -1, -1, -1},
  };
  return _mm256_load_si256(reinterpret_cast<const __m256i*>(kMasks[count]));
}

/// Fixed-structure dot product: 4 independent 4-lane accumulators over
/// 16-element strides, combined pairwise, then a scalar fma tail. The fold
/// shape depends only on k, so every caller gets the same bits for the
/// same operands.
inline double Dot4(int k, const double* a, const double* b) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 16 <= k; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 8),
                           _mm256_loadu_pd(b + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 12),
                           _mm256_loadu_pd(b + i + 12), acc3);
  }
  for (; i + 4 <= k; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
  }
  const __m256d sum =
      _mm256_add_pd(_mm256_add_pd(acc0, acc1), _mm256_add_pd(acc2, acc3));
  const __m128d lo = _mm256_castpd256_pd128(sum);
  const __m128d hi = _mm256_extractf128_pd(sum, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  double s = _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
  for (; i < k; ++i) s = std::fma(a[i], b[i], s);
  return s;
}

// ---- Unpacked row-range kernels (small-m path; same per-element fold as
// the packed microkernel) ----

void Avx2GemmNN(int m, int n, int k, const double* a, const double* b,
                const double* bias, GemmInit init, double* c) {
  if (n == 1) {
    for (int i = 0; i < m; ++i) {
      const double s = Dot4(k, a + static_cast<size_t>(i) * k, b);
      switch (init) {
        case GemmInit::kZero: c[i] = s; break;
        case GemmInit::kBias: c[i] = s + bias[0]; break;
        case GemmInit::kAccumulate: c[i] += s; break;
      }
    }
    return;
  }
  const int n4 = n & ~3;
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<size_t>(i) * k;
    double* orow = c + static_cast<size_t>(i) * n;
    if (init == GemmInit::kZero) {
      std::memset(orow, 0, static_cast<size_t>(n) * sizeof(double));
    } else if (init == GemmInit::kBias) {
      std::memcpy(orow, bias, static_cast<size_t>(n) * sizeof(double));
    }
    for (int kk = 0; kk < k; ++kk) {
      const __m256d va = _mm256_set1_pd(arow[kk]);
      const double aik = arow[kk];
      const double* brow = b + static_cast<size_t>(kk) * n;
      int j = 0;
      for (; j < n4; j += 4) {
        const __m256d vo = _mm256_loadu_pd(orow + j);
        _mm256_storeu_pd(orow + j,
                         _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + j), vo));
      }
      for (; j < n; ++j) orow[j] = std::fma(aik, brow[j], orow[j]);
    }
  }
}

void Avx2GemmTN(int m, int n, int k, const double* a, int lda, const double* b,
                GemmInit init, double* c) {
  if (n == 1) {
    if (init != GemmInit::kAccumulate) {
      std::memset(c, 0, static_cast<size_t>(m) * sizeof(double));
    }
    const int m4 = m & ~3;
    for (int kk = 0; kk < k; ++kk) {
      const double bk = b[kk];
      const __m256d vb = _mm256_set1_pd(bk);
      const double* arow = a + static_cast<size_t>(kk) * lda;
      int i = 0;
      for (; i < m4; i += 4) {
        const __m256d vo = _mm256_loadu_pd(c + i);
        _mm256_storeu_pd(c + i,
                         _mm256_fmadd_pd(vb, _mm256_loadu_pd(arow + i), vo));
      }
      for (; i < m; ++i) c[i] = std::fma(bk, arow[i], c[i]);
    }
    return;
  }
  // Strided-broadcast ikj (A columns walked with stride lda). The dispatch
  // layer prefers the packed path for this variant; kept for completeness
  // with the same per-element fold.
  const int n4 = n & ~3;
  for (int i = 0; i < m; ++i) {
    double* orow = c + static_cast<size_t>(i) * n;
    if (init != GemmInit::kAccumulate) {
      std::memset(orow, 0, static_cast<size_t>(n) * sizeof(double));
    }
    for (int kk = 0; kk < k; ++kk) {
      const double aki = a[static_cast<size_t>(kk) * lda + i];
      const __m256d va = _mm256_set1_pd(aki);
      const double* brow = b + static_cast<size_t>(kk) * n;
      int j = 0;
      for (; j < n4; j += 4) {
        const __m256d vo = _mm256_loadu_pd(orow + j);
        _mm256_storeu_pd(orow + j,
                         _mm256_fmadd_pd(va, _mm256_loadu_pd(brow + j), vo));
      }
      for (; j < n; ++j) orow[j] = std::fma(aki, brow[j], orow[j]);
    }
  }
}

void Avx2GemmNT(int m, int n, int k, const double* a, const double* b,
                double* c) {
  // Row-dot form; the dispatch layer routes n>1 through the packed path
  // (transpose-packed B), so this runs only for direct table calls.
  for (int i = 0; i < m; ++i) {
    const double* arow = a + static_cast<size_t>(i) * k;
    double* orow = c + static_cast<size_t>(i) * n;
    for (int j = 0; j < n; ++j) {
      orow[j] = Dot4(k, arow, b + static_cast<size_t>(j) * k);
    }
  }
}

// ---- Packed-panel path ----

void Avx2PackB(int n, int k, const double* b, bool transposed, double* bp) {
  const int panels = (n + kPanelWidth - 1) / kPanelWidth;
  for (int p = 0; p < panels; ++p) {
    const int j0 = p * kPanelWidth;
    const int jw = n - j0 < kPanelWidth ? n - j0 : kPanelWidth;
    double* panel = bp + static_cast<size_t>(p) * k * kPanelWidth;
    if (!transposed) {
      for (int kk = 0; kk < k; ++kk) {
        const double* src = b + static_cast<size_t>(kk) * n + j0;
        double* dst = panel + static_cast<size_t>(kk) * kPanelWidth;
        int j = 0;
        for (; j < jw; ++j) dst[j] = src[j];
        for (; j < kPanelWidth; ++j) dst[j] = 0.0;
      }
    } else {
      // Source is (n×k) row-major; panel column j is source row j0+j.
      for (int kk = 0; kk < k; ++kk) {
        double* dst = panel + static_cast<size_t>(kk) * kPanelWidth;
        int j = 0;
        for (; j < jw; ++j) dst[j] = b[static_cast<size_t>(j0 + j) * k + kk];
        for (; j < kPanelWidth; ++j) dst[j] = 0.0;
      }
    }
  }
}

void Avx2PackBias(int n, const double* bias, double* bias_p) {
  const int panels = (n + kPanelWidth - 1) / kPanelWidth;
  const int padded = panels * kPanelWidth;
  std::memcpy(bias_p, bias, static_cast<size_t>(n) * sizeof(double));
  for (int j = n; j < padded; ++j) bias_p[j] = 0.0;
}

/// 4×8 register-blocked microkernel over one packed panel: 8 accumulator
/// ymm (4 rows × 2 halves), one broadcast per (row, k), two panel loads per
/// k. `rows` ≤ 4 live rows are loaded/stored; the A panel is zero-padded to
/// 4 rows so the fma stream is branch-free.
inline void MicroKernel4x8(int rows, int k, const double* ap,
                           const double* panel, const double* bias_panel,
                           GemmInit init, double* c, int ldc, int cols,
                           __m256i colmask_lo, __m256i colmask_hi) {
  __m256d acc[kMr][2];
  if (init == GemmInit::kBias) {
    const __m256d b0 = _mm256_loadu_pd(bias_panel);
    const __m256d b1 = _mm256_loadu_pd(bias_panel + 4);
    for (int r = 0; r < kMr; ++r) {
      acc[r][0] = b0;
      acc[r][1] = b1;
    }
  } else if (init == GemmInit::kAccumulate) {
    for (int r = 0; r < kMr; ++r) {
      if (r < rows) {
        double* crow = c + static_cast<size_t>(r) * ldc;
        if (cols == kPanelWidth) {
          acc[r][0] = _mm256_loadu_pd(crow);
          acc[r][1] = _mm256_loadu_pd(crow + 4);
        } else {
          acc[r][0] = _mm256_maskload_pd(crow, colmask_lo);
          acc[r][1] = _mm256_maskload_pd(crow + 4, colmask_hi);
        }
      } else {
        acc[r][0] = _mm256_setzero_pd();
        acc[r][1] = _mm256_setzero_pd();
      }
    }
  } else {
    for (int r = 0; r < kMr; ++r) {
      acc[r][0] = _mm256_setzero_pd();
      acc[r][1] = _mm256_setzero_pd();
    }
  }
  for (int kk = 0; kk < k; ++kk) {
    const __m256d b0 = _mm256_loadu_pd(panel + static_cast<size_t>(kk) * 8);
    const __m256d b1 =
        _mm256_loadu_pd(panel + static_cast<size_t>(kk) * 8 + 4);
    const double* arow = ap + static_cast<size_t>(kk) * kMr;
    for (int r = 0; r < kMr; ++r) {
      const __m256d va = _mm256_set1_pd(arow[r]);
      acc[r][0] = _mm256_fmadd_pd(va, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_pd(va, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < rows; ++r) {
    double* crow = c + static_cast<size_t>(r) * ldc;
    if (cols == kPanelWidth) {
      _mm256_storeu_pd(crow, acc[r][0]);
      _mm256_storeu_pd(crow + 4, acc[r][1]);
    } else {
      _mm256_maskstore_pd(crow, colmask_lo, acc[r][0]);
      _mm256_maskstore_pd(crow + 4, colmask_hi, acc[r][1]);
    }
  }
}

/// Small-k variant of the packed path. At k ≤ 8 a 4×8 block is only 32
/// fmas, so the generic path's per-quad A-packing, runtime k-loop control,
/// and tail-mask setup rival the arithmetic itself. This kernel requires
/// contiguous row-major A (a_row_stride == K, a_k_stride == 1) so rows are
/// read in place, fully unrolls the k loop at compile time, and handles
/// only whole panels (n % 8 == 0) so every store is a plain storeu. The
/// accumulation is the same per-element k-ordered fold over the same
/// packed panels as MicroKernel4x8 — bitwise-identical output; taking this
/// path is purely a performance choice (see file header).
template <int K>
void Avx2GemmPackedSmallK(int m, int n, const double* a, const double* bp,
                          const double* bias_p, GemmInit init, double* c) {
  const int panels = n / kPanelWidth;
  int i0 = 0;
  for (; i0 + kMr <= m; i0 += kMr) {
    const double* arow = a + static_cast<size_t>(i0) * K;
    double* cblock = c + static_cast<size_t>(i0) * n;
    for (int p = 0; p < panels; ++p) {
      const double* panel = bp + static_cast<size_t>(p) * K * kPanelWidth;
      double* c0 = cblock + static_cast<size_t>(p) * kPanelWidth;
      __m256d acc[kMr][2];
      if (init == GemmInit::kBias) {
        const __m256d b0 =
            _mm256_loadu_pd(bias_p + static_cast<size_t>(p) * kPanelWidth);
        const __m256d b1 =
            _mm256_loadu_pd(bias_p + static_cast<size_t>(p) * kPanelWidth + 4);
        for (int r = 0; r < kMr; ++r) {
          acc[r][0] = b0;
          acc[r][1] = b1;
        }
      } else if (init == GemmInit::kAccumulate) {
        for (int r = 0; r < kMr; ++r) {
          acc[r][0] = _mm256_loadu_pd(c0 + static_cast<size_t>(r) * n);
          acc[r][1] = _mm256_loadu_pd(c0 + static_cast<size_t>(r) * n + 4);
        }
      } else {
        for (int r = 0; r < kMr; ++r) {
          acc[r][0] = _mm256_setzero_pd();
          acc[r][1] = _mm256_setzero_pd();
        }
      }
#pragma GCC unroll 8
      for (int kk = 0; kk < K; ++kk) {
        const __m256d b0 =
            _mm256_loadu_pd(panel + static_cast<size_t>(kk) * kPanelWidth);
        const __m256d b1 =
            _mm256_loadu_pd(panel + static_cast<size_t>(kk) * kPanelWidth + 4);
        for (int r = 0; r < kMr; ++r) {
          const __m256d va = _mm256_set1_pd(arow[static_cast<size_t>(r) * K + kk]);
          acc[r][0] = _mm256_fmadd_pd(va, b0, acc[r][0]);
          acc[r][1] = _mm256_fmadd_pd(va, b1, acc[r][1]);
        }
      }
      for (int r = 0; r < kMr; ++r) {
        _mm256_storeu_pd(c0 + static_cast<size_t>(r) * n, acc[r][0]);
        _mm256_storeu_pd(c0 + static_cast<size_t>(r) * n + 4, acc[r][1]);
      }
    }
  }
  // Row tail (< 4 rows): scalar std::fma runs the identical per-element
  // fold (a fused multiply-add is one correctly-rounded operation in both
  // lane and scalar form), so the tail is bitwise-consistent with the
  // vector block above and with MicroKernel4x8's zero-padded rows.
  for (; i0 < m; ++i0) {
    const double* arow = a + static_cast<size_t>(i0) * K;
    double* crow = c + static_cast<size_t>(i0) * n;
    for (int j = 0; j < n; ++j) {
      const double* panel = bp + static_cast<size_t>(j / kPanelWidth) * K * kPanelWidth;
      const int lane = j % kPanelWidth;
      double acc = init == GemmInit::kBias         ? bias_p[j]
                   : init == GemmInit::kAccumulate ? crow[j]
                                                   : 0.0;
      for (int kk = 0; kk < K; ++kk) {
        acc = std::fma(arow[kk], panel[static_cast<size_t>(kk) * kPanelWidth + lane],
                       acc);
      }
      crow[j] = acc;
    }
  }
}

void Avx2GemmPacked(int m, int n, int k, const double* a, int a_row_stride,
                    int a_k_stride, const double* bp, const double* bias_p,
                    GemmInit init, double* c) {
  if (a_k_stride == 1 && a_row_stride == k && n % kPanelWidth == 0) {
    switch (k) {
      case 1: return Avx2GemmPackedSmallK<1>(m, n, a, bp, bias_p, init, c);
      case 2: return Avx2GemmPackedSmallK<2>(m, n, a, bp, bias_p, init, c);
      case 3: return Avx2GemmPackedSmallK<3>(m, n, a, bp, bias_p, init, c);
      case 4: return Avx2GemmPackedSmallK<4>(m, n, a, bp, bias_p, init, c);
      case 5: return Avx2GemmPackedSmallK<5>(m, n, a, bp, bias_p, init, c);
      case 6: return Avx2GemmPackedSmallK<6>(m, n, a, bp, bias_p, init, c);
      case 7: return Avx2GemmPackedSmallK<7>(m, n, a, bp, bias_p, init, c);
      case 8: return Avx2GemmPackedSmallK<8>(m, n, a, bp, bias_p, init, c);
      default: break;  // large k: the packed microkernel amortizes fine
    }
  }
  // Per-thread A-panel scratch: one 4×k block, k-major, zero-padded rows.
  // Grows once per thread to the largest k seen; no steady-state heap.
  thread_local std::vector<double> a_panel;
  if (a_panel.size() < static_cast<size_t>(k) * kMr) {
    a_panel.resize(static_cast<size_t>(k) * kMr);
  }
  double* ap = a_panel.data();

  const int panels = (n + kPanelWidth - 1) / kPanelWidth;
  for (int i0 = 0; i0 < m; i0 += kMr) {
    const int rows = m - i0 < kMr ? m - i0 : kMr;
    for (int kk = 0; kk < k; ++kk) {
      double* dst = ap + static_cast<size_t>(kk) * kMr;
      const double* src =
          a + static_cast<size_t>(i0) * a_row_stride +
          static_cast<size_t>(kk) * a_k_stride;
      int r = 0;
      for (; r < rows; ++r) dst[r] = src[static_cast<size_t>(r) * a_row_stride];
      for (; r < kMr; ++r) dst[r] = 0.0;
    }
    for (int p = 0; p < panels; ++p) {
      const int j0 = p * kPanelWidth;
      const int cols = n - j0 < kPanelWidth ? n - j0 : kPanelWidth;
      const int lo = cols < 4 ? cols : 4;
      const int hi = cols - lo;
      const __m256i mask_lo = cols == kPanelWidth ? __m256i{} : TailMask(lo);
      const __m256i mask_hi = cols == kPanelWidth ? __m256i{} : TailMask(hi);
      MicroKernel4x8(rows, k, ap,
                     bp + static_cast<size_t>(p) * k * kPanelWidth,
                     bias_p == nullptr
                         ? nullptr
                         : bias_p + static_cast<size_t>(p) * kPanelWidth,
                     init, c + static_cast<size_t>(i0) * n + j0, n, cols,
                     mask_lo, mask_hi);
    }
  }
}

// ---- Elementwise (bitwise-equal to scalar: no FMA, correctly-rounded
// lane ops, scalar tails running the same expressions) ----

void Avx2Axpy(int n, double alpha, const double* x, double* y) {
  const __m256d va = _mm256_set1_pd(alpha);
  const int n4 = n & ~3;
  int i = 0;
  for (; i < n4; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void Avx2ActForward(ActKind kind, double leaky_slope, int n, double* x) {
  const int n4 = n & ~3;
  switch (kind) {
    case ActKind::kNone:
      return;
    case ActKind::kRelu: {
      // max(x, +0) matches the scalar branch bitwise: x == -0.0 and x == NaN
      // both map to +0.0 (vmaxpd returns the second operand on equal/NaN).
      const __m256d zero = _mm256_setzero_pd();
      int i = 0;
      for (; i < n4; i += 4) {
        _mm256_storeu_pd(x + i, _mm256_max_pd(_mm256_loadu_pd(x + i), zero));
      }
      for (; i < n; ++i) x[i] = x[i] > 0.0 ? x[i] : 0.0;
      return;
    }
    case ActKind::kLeakyRelu: {
      const __m256d zero = _mm256_setzero_pd();
      const __m256d slope = _mm256_set1_pd(leaky_slope);
      int i = 0;
      for (; i < n4; i += 4) {
        const __m256d v = _mm256_loadu_pd(x + i);
        const __m256d pos = _mm256_cmp_pd(v, zero, _CMP_GT_OQ);
        _mm256_storeu_pd(
            x + i, _mm256_blendv_pd(_mm256_mul_pd(slope, v), v, pos));
      }
      for (; i < n; ++i) x[i] = x[i] > 0.0 ? x[i] : leaky_slope * x[i];
      return;
    }
    case ActKind::kTanh:
      // libm transcendentals stay scalar so every backend produces the same
      // bits; the fusion win is the saved graph node + output traversal.
      for (int i = 0; i < n; ++i) x[i] = std::tanh(x[i]);
      return;
    case ActKind::kSigmoid:
      for (int i = 0; i < n; ++i) x[i] = 1.0 / (1.0 + std::exp(-x[i]));
      return;
  }
}

void Avx2ActBackward(ActKind kind, double leaky_slope, int n, const double* y,
                     const double* gout, double* gin) {
  const int n4 = n & ~3;
  switch (kind) {
    case ActKind::kNone:
      if (gin != gout) std::memcpy(gin, gout, n * sizeof(double));
      return;
    case ActKind::kRelu: {
      const __m256d zero = _mm256_setzero_pd();
      int i = 0;
      for (; i < n4; i += 4) {
        const __m256d pos =
            _mm256_cmp_pd(_mm256_loadu_pd(y + i), zero, _CMP_GT_OQ);
        _mm256_storeu_pd(gin + i,
                         _mm256_and_pd(_mm256_loadu_pd(gout + i), pos));
      }
      for (; i < n; ++i) gin[i] = y[i] > 0.0 ? gout[i] : 0.0;
      return;
    }
    case ActKind::kLeakyRelu: {
      const __m256d zero = _mm256_setzero_pd();
      const __m256d slope = _mm256_set1_pd(leaky_slope);
      int i = 0;
      for (; i < n4; i += 4) {
        const __m256d g = _mm256_loadu_pd(gout + i);
        const __m256d pos =
            _mm256_cmp_pd(_mm256_loadu_pd(y + i), zero, _CMP_GT_OQ);
        _mm256_storeu_pd(gin + i,
                         _mm256_blendv_pd(_mm256_mul_pd(slope, g), g, pos));
      }
      for (; i < n; ++i) {
        gin[i] = y[i] > 0.0 ? gout[i] : leaky_slope * gout[i];
      }
      return;
    }
    case ActKind::kTanh: {
      const __m256d one = _mm256_set1_pd(1.0);
      int i = 0;
      for (; i < n4; i += 4) {
        const __m256d vy = _mm256_loadu_pd(y + i);
        const __m256d d = _mm256_sub_pd(one, _mm256_mul_pd(vy, vy));
        _mm256_storeu_pd(gin + i, _mm256_mul_pd(_mm256_loadu_pd(gout + i), d));
      }
      for (; i < n; ++i) gin[i] = gout[i] * (1.0 - y[i] * y[i]);
      return;
    }
    case ActKind::kSigmoid: {
      const __m256d one = _mm256_set1_pd(1.0);
      int i = 0;
      for (; i < n4; i += 4) {
        const __m256d vy = _mm256_loadu_pd(y + i);
        const __m256d d = _mm256_mul_pd(vy, _mm256_sub_pd(one, vy));
        _mm256_storeu_pd(gin + i, _mm256_mul_pd(_mm256_loadu_pd(gout + i), d));
      }
      for (; i < n; ++i) gin[i] = gout[i] * (y[i] * (1.0 - y[i]));
      return;
    }
  }
}

void Avx2RowwiseMax(int rows, int cols, const double* a, double* out,
                    int* argmax) {
  // The TD-target matrices are (B×|A|=3): scalar comparison is the whole
  // job; the first-argmax tie-break rules out a lane-parallel sweep anyway.
  for (int r = 0; r < rows; ++r) {
    const double* arow = a + static_cast<size_t>(r) * cols;
    int best = 0;
    for (int cc = 1; cc < cols; ++cc) {
      if (arow[cc] > arow[best]) best = cc;
    }
    out[r] = arow[best];
    if (argmax != nullptr) argmax[r] = best;
  }
}

void Avx2AdamStep(int n, double lr, double beta1, double beta2, double eps,
                  double bc1, double bc2, const double* g, double* m,
                  double* v, double* value) {
  const __m256d vb1 = _mm256_set1_pd(beta1);
  const __m256d vb1c = _mm256_set1_pd(1.0 - beta1);
  const __m256d vb2 = _mm256_set1_pd(beta2);
  const __m256d vb2c = _mm256_set1_pd(1.0 - beta2);
  const __m256d vbc1 = _mm256_set1_pd(bc1);
  const __m256d vbc2 = _mm256_set1_pd(bc2);
  const __m256d vlr = _mm256_set1_pd(lr);
  const __m256d veps = _mm256_set1_pd(eps);
  const int n4 = n & ~3;
  int j = 0;
  for (; j < n4; j += 4) {
    const __m256d vg = _mm256_loadu_pd(g + j);
    const __m256d vm = _mm256_add_pd(_mm256_mul_pd(vb1, _mm256_loadu_pd(m + j)),
                                     _mm256_mul_pd(vb1c, vg));
    // ((1-beta2)·g)·g — same association as the scalar backend, so the
    // second moment stays bitwise identical across ISAs.
    const __m256d vgg = _mm256_mul_pd(_mm256_mul_pd(vb2c, vg), vg);
    const __m256d vv =
        _mm256_add_pd(_mm256_mul_pd(vb2, _mm256_loadu_pd(v + j)), vgg);
    _mm256_storeu_pd(m + j, vm);
    _mm256_storeu_pd(v + j, vv);
    const __m256d m_hat = _mm256_div_pd(vm, vbc1);
    const __m256d v_hat = _mm256_div_pd(vv, vbc2);
    const __m256d denom = _mm256_add_pd(_mm256_sqrt_pd(v_hat), veps);
    const __m256d step = _mm256_div_pd(_mm256_mul_pd(vlr, m_hat), denom);
    _mm256_storeu_pd(value + j,
                     _mm256_sub_pd(_mm256_loadu_pd(value + j), step));
  }
  for (; j < n; ++j) {
    m[j] = beta1 * m[j] + (1.0 - beta1) * g[j];
    v[j] = beta2 * v[j] + (1.0 - beta2) * g[j] * g[j];
    const double m_hat = m[j] / bc1;
    const double v_hat = v[j] / bc2;
    value[j] -= lr * m_hat / (std::sqrt(v_hat) + eps);
  }
}

}  // namespace

const KernelTable kAvx2Table = {
    /*name=*/"avx2",
    /*gemm_nn=*/Avx2GemmNN,
    /*gemm_tn=*/Avx2GemmTN,
    /*gemm_nt=*/Avx2GemmNT,
    /*pack_b=*/Avx2PackB,
    /*pack_bias=*/Avx2PackBias,
    /*gemm_packed=*/Avx2GemmPacked,
    /*axpy=*/Avx2Axpy,
    /*act_forward=*/Avx2ActForward,
    /*act_backward=*/Avx2ActBackward,
    /*rowwise_max=*/Avx2RowwiseMax,
    /*adam_step=*/Avx2AdamStep,
};

}  // namespace head::nn::kernels::internal

#endif  // __AVX2__ && __FMA__
