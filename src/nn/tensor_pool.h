// Thread-local size-class pool backing Tensor storage. Buffers are recycled
// through power-of-two buckets instead of going back to the heap, so once a
// training loop has warmed up, every Tensor construction (values, gradients,
// backward temporaries) is served from a free list and steady-state steps
// perform no heap allocations for tensor data.
//
// Each thread owns an independent pool (no locks, no sharing); a buffer that
// migrates across threads — rare, e.g. a Tensor moved through a queue — is
// simply returned to the *destroying* thread's pool. During thread teardown,
// after the pool itself has been destroyed, Release becomes a no-op and the
// buffer is freed normally.
#ifndef HEAD_NN_TENSOR_POOL_H_
#define HEAD_NN_TENSOR_POOL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace head::nn {

/// Cumulative statistics of one thread's pool (plain fields — the pool is
/// thread-local, so no atomics are needed; publish via PublishAllocMetrics).
struct TensorPoolStats {
  uint64_t hits = 0;          ///< Acquire served from a free list
  uint64_t misses = 0;        ///< Acquire had to allocate from the heap
  uint64_t released = 0;      ///< buffers parked back into a free list
  uint64_t discarded = 0;     ///< buffers dropped because a bucket was full
  uint64_t bytes_pooled = 0;  ///< bytes currently parked in free lists
};

class TensorPool {
 public:
  /// The calling thread's pool; nullptr only while the thread is tearing
  /// down (after the pool's destructor ran). Callers must handle nullptr by
  /// falling back to plain heap allocation/free.
  static TensorPool* Get();

  TensorPool() = default;
  ~TensorPool();
  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

  /// A buffer with capacity ≥ n (size unspecified — callers assign). Served
  /// from the bucket for the smallest power of two ≥ n when available.
  std::vector<double> Acquire(size_t n);

  /// Parks `buf` in the bucket for the largest power of two ≤ its capacity
  /// (so any buffer Acquire hands out from that bucket is big enough), or
  /// frees it when the bucket is full.
  void Release(std::vector<double>&& buf);

  const TensorPoolStats& stats() const { return stats_; }

  /// Drops every free list (tests / memory pressure). Stats keep counting.
  void Clear();

 private:
  static constexpr int kNumBuckets = 40;  // up to 2^39 doubles
  // A full tape's worth of buffers floods back at every GraphArena::Reset,
  // so the cap must exceed the peak number of same-class tensors alive in
  // one region (hundreds for a deep graph) — a tight cap silently converts
  // recycling into discard-then-miss churn. Inventory is still bounded by
  // the workload's own peak concurrency; the cap only guards pathologies.
  static constexpr size_t kMaxPerBucket = 1024;

  std::vector<std::vector<double>> buckets_[kNumBuckets];
  TensorPoolStats stats_;
};

}  // namespace head::nn

#endif  // HEAD_NN_TENSOR_POOL_H_
