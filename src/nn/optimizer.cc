#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"
#include "nn/kernels/simd.h"

namespace head::nn {

Optimizer::Optimizer(std::vector<Var> params) : params_(std::move(params)) {
  for (const Var& p : params_) {
    HEAD_CHECK(p.defined());
    HEAD_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Var& p : params_) p.ZeroGrad();
}

double Optimizer::ClipGradNorm(double max_norm) {
  HEAD_PROF_SCOPE("nn.ClipGradNorm");
  HEAD_CHECK_GT(max_norm, 0.0);
  double sq = 0.0;
  for (Var& p : params_) {
    const Tensor& g = p.grad();
    for (int i = 0; i < g.size(); ++i) sq += g[i] * g[i];
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return norm;
  const double scale = max_norm / norm;
  for (Var& p : params_) {
    Tensor& g = p.mutable_grad();
    for (int i = 0; i < g.size(); ++i) g[i] *= scale;
  }
  return norm;
}

Sgd::Sgd(std::vector<Var> params, double lr) : Optimizer(std::move(params)) {
  lr_ = lr;
}

void Sgd::Step() {
  HEAD_PROF_SCOPE("nn.Sgd.Step");
  for (Var& p : params_) {
    p.mutable_value().AddScaled(p.grad(), -lr_);
  }
}

Adam::Adam(std::vector<Var> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const Var& p : params_) {
    m_.emplace_back(p.value().rows(), p.value().cols());
    v_.emplace_back(p.value().rows(), p.value().cols());
  }
}

void Adam::Step() {
  HEAD_PROF_SCOPE("nn.Adam.Step");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, t_);
  const double bc2 = 1.0 - std::pow(beta2_, t_);
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor& value = params_[i].mutable_value();
    const Tensor& g = params_[i].grad();
    // Vectorized fused moment + parameter update; bitwise-equal to the
    // scalar loop on every backend (no FMA, correctly rounded lane ops).
    kernels::AdamStep(value.size(), lr_, beta1_, beta2_, eps_, bc1, bc2,
                      g.data().data(), m_[i].data().data(),
                      v_[i].data().data(), value.data().data());
  }
}

}  // namespace head::nn
