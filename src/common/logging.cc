#include "common/logging.h"

#include <atomic>
#include <cstdio>

namespace head {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace head
