#include "common/logging.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace head {
namespace {

/// Parses $HEAD_LOG_LEVEL; falls back to kInfo when unset or malformed.
int InitialLogLevel() {
  const char* env = std::getenv("HEAD_LOG_LEVEL");
  if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
  std::string s(env);
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  if (s == "debug" || s == "0") return static_cast<int>(LogLevel::kDebug);
  if (s == "info" || s == "1") return static_cast<int>(LogLevel::kInfo);
  if (s == "warning" || s == "warn" || s == "2") {
    return static_cast<int>(LogLevel::kWarning);
  }
  if (s == "error" || s == "3") return static_cast<int>(LogLevel::kError);
  std::fprintf(stderr, "[WARN logging] unrecognized HEAD_LOG_LEVEL=\"%s\"\n",
               env);
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_log_level{InitialLogLevel()};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg) {
  if (static_cast<int>(level) <
      g_log_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line,
               msg.c_str());
}

}  // namespace internal
}  // namespace head
