#include "common/types.h"

#include <algorithm>
#include <ostream>

#include "common/check.h"

namespace head {

const char* ToString(LaneChange b) {
  switch (b) {
    case LaneChange::kLeft:
      return "ll";
    case LaneChange::kKeep:
      return "lk";
    case LaneChange::kRight:
      return "lr";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Maneuver& m) {
  return os << "(" << ToString(m.lane_change) << ", " << m.accel_mps2 << ")";
}

std::ostream& operator<<(std::ostream& os, const VehicleState& s) {
  return os << "{lane=" << s.lane << ", lon=" << s.lon_m << ", v=" << s.v_mps
            << "}";
}

VehicleState StepKinematics(const VehicleState& s, const Maneuver& m,
                            const RoadConfig& road) {
  HEAD_DCHECK(road.dt_s > 0.0);
  const double a = std::clamp(m.accel_mps2, -road.a_max_mps2, road.a_max_mps2);
  const double v_raw = s.v_mps + a * road.dt_s;
  // The v_min restriction is a traffic rule, not physics: it enters through
  // the efficiency reward. Physically a vehicle can always brake to a stop
  // (otherwise stalled traffic would make collisions unavoidable).
  const double v_new = std::clamp(v_raw, 0.0, road.v_max_mps);
  // Trapezoidal advance — equals Eq. (18) when the velocity clamp is
  // inactive, and stays consistent with the clamped velocity otherwise.
  const double lon_new = s.lon_m + 0.5 * (s.v_mps + v_new) * road.dt_s;
  return VehicleState{s.lane + LaneDelta(m.lane_change), lon_new, v_new};
}

}  // namespace head
