// Deterministic random-number source. Every stochastic component in the
// library draws through an explicitly passed Rng so that episodes, dataset
// generation, and training are reproducible from a single seed.
#ifndef HEAD_COMMON_RNG_H_
#define HEAD_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace head {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  /// Standard normal scaled by `stddev` and shifted by `mean`.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Derives an independent child generator (stable split for sub-systems).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace head

#endif  // HEAD_COMMON_RNG_H_
