// Deterministic random-number source. Every stochastic component in the
// library draws through an explicitly passed Rng so that episodes, dataset
// generation, and training are reproducible from a single seed.
#ifndef HEAD_COMMON_RNG_H_
#define HEAD_COMMON_RNG_H_

#include <cstdint>
#include <random>

namespace head {

/// SplitMix64 finalizer: bijectively scrambles `x` so that nearby inputs
/// yield decorrelated outputs (Steele et al., "Fast splittable pseudorandom
/// number generators").
uint64_t SplitMix64(uint64_t x);

/// Derives the seed of stream `stream` from `seed_base` — the canonical way
/// to give each episode / worker its own independent generator. Streams are
/// decorrelated even for consecutive indices, and the derivation depends
/// only on (seed_base, stream), never on which thread or worker consumes
/// the stream — the keystone of the parallel layer's reproducibility
/// contract (see DESIGN.md "Parallel execution").
uint64_t SplitMix(uint64_t seed_base, uint64_t stream);

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;
  Rng(Rng&&) = default;
  Rng& operator=(Rng&&) = default;

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  int UniformInt(int lo, int hi);

  /// Standard normal scaled by `stddev` and shifted by `mean`.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Derives an independent child generator (stable split for sub-systems).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

  /// API-level draws made so far (Uniform/UniformInt/Normal/Bernoulli/Fork
  /// each count as one, regardless of how many engine words they consume).
  /// Recorded per step by the flight recorder as the `rng_cursor` — equal
  /// cursors at equal steps certify that a replay consumed randomness in
  /// lockstep with the original run.
  uint64_t draws() const { return draws_; }

 private:
  std::mt19937_64 engine_;
  uint64_t draws_ = 0;
};

}  // namespace head

#endif  // HEAD_COMMON_RNG_H_
