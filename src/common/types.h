// Domain vocabulary shared by every module: lane-aware vehicle states,
// maneuvers (paper Sec. II), the road configuration and its traffic
// restrictions, and the relative-state helpers of Eqs. (1)-(3).
#ifndef HEAD_COMMON_TYPES_H_
#define HEAD_COMMON_TYPES_H_

#include <cstdint>
#include <iosfwd>
#include <string>

namespace head {

using VehicleId = int32_t;
inline constexpr VehicleId kInvalidVehicleId = -1;
/// Id reserved for the autonomous (ego) vehicle in every simulation.
inline constexpr VehicleId kEgoVehicleId = 0;

/// Lateral lane-change behavior b ∈ {ll, lr, lk} (paper Sec. II, "Maneuver").
enum class LaneChange : int8_t {
  kLeft = -1,  // ll: lane index decreases (lanes numbered left→right from 1)
  kKeep = 0,   // lk
  kRight = 1,  // lr: lane index increases
};

/// Signed lane delta \overline{A.b} of Eq. (18).
inline int LaneDelta(LaneChange b) { return static_cast<int>(b); }

const char* ToString(LaneChange b);

/// A maneuver (A.b, A.a): discrete lane-change behavior plus continuous
/// longitudinal acceleration — the parameterized action of the PAMDP.
struct Maneuver {
  LaneChange lane_change = LaneChange::kKeep;
  double accel_mps2 = 0.0;

  friend bool operator==(const Maneuver&, const Maneuver&) = default;
};

std::ostream& operator<<(std::ostream& os, const Maneuver& m);

/// Lane-aware kinematic state of one vehicle at one time step.
/// `lane` is the lateral lane number (1 = leftmost, κ = rightmost);
/// `lon_m` the longitudinal position from the road origin; `v_mps` the
/// longitudinal velocity. Lateral motion within a lane is abstracted away
/// (paper Sec. II, "Location").
struct VehicleState {
  int lane = 1;
  double lon_m = 0.0;
  double v_mps = 0.0;

  friend bool operator==(const VehicleState&, const VehicleState&) = default;
};

std::ostream& operator<<(std::ostream& os, const VehicleState& s);

/// Road geometry plus the paper's traffic restrictions (Sec. II and V-A).
struct RoadConfig {
  double length_m = 3000.0;    ///< road length (paper: 3 km)
  int num_lanes = 6;           ///< κ
  double lane_width_m = 3.2;   ///< wid_l
  double v_min_mps = 1.39;     ///< speed floor (5 km/h)
  double v_max_mps = 25.0;     ///< speed cap (90 km/h)
  double a_max_mps2 = 3.0;     ///< a': |acceleration| bound
  double dt_s = 0.5;           ///< Δt between maneuvers

  /// True iff `lane` ∈ [1, num_lanes].
  bool IsValidLane(int lane) const { return lane >= 1 && lane <= num_lanes; }
};

/// Physical vehicle length used for gaps, collisions and occlusion geometry.
inline constexpr double kVehicleLengthM = 5.0;
/// Physical vehicle width (for occlusion shadows), < lane width.
inline constexpr double kVehicleWidthM = 1.8;

/// Relative longitudinal distance d_lon(C, A) = C.lon − A.lon  (Eq. 1).
inline double DLon(const VehicleState& c, const VehicleState& a) {
  return c.lon_m - a.lon_m;
}

/// Relative lateral distance d_lat(C, A) = (C.lat − A.lat)·wid_l  (Eq. 2).
inline double DLat(const VehicleState& c, const VehicleState& a,
                   double lane_width_m) {
  return static_cast<double>(c.lane - a.lane) * lane_width_m;
}

/// Relative longitudinal velocity v(C, A) = C.v − A.v  (Eq. 3).
inline double RelV(const VehicleState& c, const VehicleState& a) {
  return c.v_mps - a.v_mps;
}

/// Advances a state by one maneuver under the kinematics of Eq. (18).
/// Velocity is clamped to [v_min, v_max]; the caller is responsible for lane
/// validity (driving off-road is a collision handled by the simulator).
VehicleState StepKinematics(const VehicleState& s, const Maneuver& m,
                            const RoadConfig& road);

}  // namespace head

#endif  // HEAD_COMMON_TYPES_H_
