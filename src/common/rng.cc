#include "common/rng.h"

#include "common/check.h"

namespace head {

uint64_t SplitMix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t SplitMix(uint64_t seed_base, uint64_t stream) {
  // Golden-ratio stream spacing (the SplitMix64 increment) before the
  // finalizer, so stream 0, 1, 2, … land far apart in the scrambled space.
  return SplitMix64(seed_base + stream * 0x9e3779b97f4a7c15ULL);
}

double Rng::Uniform(double lo, double hi) {
  HEAD_DCHECK(lo <= hi);
  ++draws_;
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::UniformInt(int lo, int hi) {
  HEAD_DCHECK(lo <= hi);
  ++draws_;
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  ++draws_;
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  ++draws_;
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::Fork() {
  // splitmix decorrelation of a fresh seed drawn from this engine.
  ++draws_;
  return Rng(SplitMix64(engine_()));
}

}  // namespace head
