#include "common/rng.h"

#include "common/check.h"

namespace head {

double Rng::Uniform(double lo, double hi) {
  HEAD_DCHECK(lo <= hi);
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

int Rng::UniformInt(int lo, int hi) {
  HEAD_DCHECK(lo <= hi);
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

double Rng::Normal(double mean, double stddev) {
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

bool Rng::Bernoulli(double p) {
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

Rng Rng::Fork() {
  // splitmix-style decorrelation of a fresh seed drawn from this engine.
  uint64_t s = engine_();
  s ^= s >> 30;
  s *= 0xbf58476d1ce4e5b9ULL;
  s ^= s >> 27;
  s *= 0x94d049bb133111ebULL;
  s ^= s >> 31;
  return Rng(s);
}

}  // namespace head
