// Contract-checking macros. Following the project style (no exceptions on the
// hot path), violated contracts log a message with source location and abort.
#ifndef HEAD_COMMON_CHECK_H_
#define HEAD_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace head::internal {

/// Prints the failure message to stderr and aborts. Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const std::string& msg);

}  // namespace head::internal

/// Aborts with a diagnostic when `cond` is false. Always evaluated.
#define HEAD_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::head::internal::CheckFailed(__FILE__, __LINE__,                    \
                                    "HEAD_CHECK failed: " #cond);          \
    }                                                                      \
  } while (false)

/// HEAD_CHECK with an extra streamed message: HEAD_CHECK_MSG(x > 0, "x=" << x)
#define HEAD_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream head_check_oss_;                                  \
      head_check_oss_ << "HEAD_CHECK failed: " #cond " — " << msg;         \
      ::head::internal::CheckFailed(__FILE__, __LINE__,                    \
                                    head_check_oss_.str());                \
    }                                                                      \
  } while (false)

#define HEAD_CHECK_BINOP(a, b, op)                                         \
  do {                                                                     \
    const auto& head_check_a_ = (a);                                       \
    const auto& head_check_b_ = (b);                                       \
    if (!(head_check_a_ op head_check_b_)) {                               \
      std::ostringstream head_check_oss_;                                  \
      head_check_oss_ << "HEAD_CHECK failed: " #a " " #op " " #b " ("      \
                      << head_check_a_ << " vs " << head_check_b_ << ")";  \
      ::head::internal::CheckFailed(__FILE__, __LINE__,                    \
                                    head_check_oss_.str());                \
    }                                                                      \
  } while (false)

#define HEAD_CHECK_EQ(a, b) HEAD_CHECK_BINOP(a, b, ==)
#define HEAD_CHECK_NE(a, b) HEAD_CHECK_BINOP(a, b, !=)
#define HEAD_CHECK_LT(a, b) HEAD_CHECK_BINOP(a, b, <)
#define HEAD_CHECK_LE(a, b) HEAD_CHECK_BINOP(a, b, <=)
#define HEAD_CHECK_GT(a, b) HEAD_CHECK_BINOP(a, b, >)
#define HEAD_CHECK_GE(a, b) HEAD_CHECK_BINOP(a, b, >=)

#ifdef NDEBUG
#define HEAD_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define HEAD_DCHECK(cond) HEAD_CHECK(cond)
#endif

#endif  // HEAD_COMMON_CHECK_H_
