// Minimal leveled logging to stderr. Intended for library diagnostics; the
// evaluation harness prints its tables directly to stdout.
//
// The initial threshold is read from the HEAD_LOG_LEVEL environment variable
// ("debug" | "info" | "warning" | "error", case-insensitive, or 0–3) at
// first use; SetLogLevel overrides it at runtime.
#ifndef HEAD_COMMON_LOGGING_H_
#define HEAD_COMMON_LOGGING_H_

#include <atomic>
#include <sstream>
#include <string>

namespace head {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Global threshold; messages below it are dropped. Default: kInfo, or
/// $HEAD_LOG_LEVEL when set.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr (if `level` passes the threshold).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, oss_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream oss_;
};

/// True on the 1st, (n+1)th, (2n+1)th … call with the same `counter` —
/// the rate limiter behind HEAD_LOG_EVERY_N.
inline bool LogEveryN(std::atomic<long>& counter, long n) {
  return counter.fetch_add(1, std::memory_order_relaxed) % n == 0;
}

}  // namespace internal
}  // namespace head

#define HEAD_LOG(level)                                      \
  ::head::internal::LogCapture(::head::LogLevel::k##level,   \
                               __FILE__, __LINE__)

#define HEAD_LOG_CONCAT_INNER(a, b) a##b
#define HEAD_LOG_CONCAT(a, b) HEAD_LOG_CONCAT_INNER(a, b)

/// HEAD_LOG that emits only every `n`th time this call site is reached
/// (starting with the first) — for per-step warnings in the sim loop that
/// would otherwise flood stderr. Thread-safe; usable only at function scope.
#define HEAD_LOG_EVERY_N(level, n)                                        \
  static ::std::atomic<long> HEAD_LOG_CONCAT(head_log_every_n_,           \
                                             __LINE__){0};                \
  if (::head::internal::LogEveryN(                                        \
          HEAD_LOG_CONCAT(head_log_every_n_, __LINE__), (n)))             \
  HEAD_LOG(level)

#endif  // HEAD_COMMON_LOGGING_H_
