// Minimal leveled logging to stderr. Intended for library diagnostics; the
// evaluation harness prints its tables directly to stdout.
#ifndef HEAD_COMMON_LOGGING_H_
#define HEAD_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace head {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Global threshold; messages below it are dropped. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Emits one formatted log line to stderr (if `level` passes the threshold).
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& msg);

class LogCapture {
 public:
  LogCapture(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogCapture() { LogMessage(level_, file_, line_, oss_.str()); }

  template <typename T>
  LogCapture& operator<<(const T& value) {
    oss_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream oss_;
};

}  // namespace internal
}  // namespace head

#define HEAD_LOG(level)                                      \
  ::head::internal::LogCapture(::head::LogLevel::k##level,   \
                               __FILE__, __LINE__)

#endif  // HEAD_COMMON_LOGGING_H_
