// Thin wrapper over Linux perf_event_open for the op profiler's hardware
// view: one per-thread group of four PERF_TYPE_HARDWARE counters (cycles,
// instructions, cache-misses, branch-misses) that can be enabled, reset,
// and read around a profiled region.
//
// Hardware counters are a *capability*, not a requirement: containers with
// a restrictive perf_event_paranoid, seccomp filters that reject the
// syscall (EPERM/EACCES), kernels built without perf (ENOSYS), and non-x86
// or non-Linux hosts must all degrade to the wall-clock-only profile. Open()
// therefore never aborts — it records a short status tag ("eacces",
// "enosys", …) and the profiler reports "hw: unavailable (<tag>)" instead
// of cycle counts. PerfCountersStatus() probes the capability once per
// process so callers can branch without paying an open/close per query.
#ifndef HEAD_OBS_PERF_COUNTERS_H_
#define HEAD_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace head::obs {

/// One read of the counter group. Values are multiplex-scaled: when the PMU
/// ran the group only part of the time (running < enabled), each count is
/// extrapolated by enabled/running, the standard perf correction.
struct PerfCounterValues {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  uint64_t enabled_ns = 0;  ///< leader's TOTAL_TIME_ENABLED
  uint64_t running_ns = 0;  ///< leader's TOTAL_TIME_RUNNING

  double Ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) / cycles : 0.0;
  }
};

/// A group of hardware counters bound to the thread that calls Open().
/// Reading / ioctl from another thread is fine (fd operations); only Open()
/// is thread-affine. Counters start disabled.
class PerfCounterGroup {
 public:
  PerfCounterGroup() = default;
  ~PerfCounterGroup();
  PerfCounterGroup(const PerfCounterGroup&) = delete;
  PerfCounterGroup& operator=(const PerfCounterGroup&) = delete;

  /// Opens the group for the calling thread. Returns false (with status()
  /// explaining why) on any failure of the leader event; member events that
  /// fail individually are skipped (their values read 0) without failing
  /// the group.
  bool Open();

  bool open() const { return leader_fd_ >= 0; }
  /// "ok" once open; otherwise "unopened", "disabled" (env kill switch),
  /// "unsupported" (non-Linux build), or the errno tag of the failed open
  /// ("eacces", "eperm", "enosys", "enoent", "errno:<n>").
  const char* status() const { return status_; }

  void Enable();
  void Disable();
  void Reset();
  /// False when the group is not open (out is zeroed).
  bool Read(PerfCounterValues* out) const;

  static constexpr int kNumEvents = 4;

 private:
  int fds_[kNumEvents] = {-1, -1, -1, -1};  // [0] is the group leader
  int leader_fd_ = -1;
  const char* status_ = "unopened";
};

/// One-shot capability probe (opens and closes a scratch group on first
/// call): "ok" when perf counters work here, else the failure tag. Honors
/// HEAD_PERF_COUNTERS=0|off ("disabled") so CI can pin the fallback path.
const char* PerfCountersStatus();
inline bool PerfCountersAvailable() {
  extern bool PerfCountersAvailableImpl();
  return PerfCountersAvailableImpl();
}

namespace internal {
/// Test seam: force every subsequent Open() to fail as if perf_event_open
/// had returned `err` (e.g. EACCES, ENOSYS). 0 restores real behavior. Also
/// resets the PerfCountersStatus() probe cache.
void SetPerfOpenFailureForTest(int err);
}  // namespace internal

}  // namespace head::obs

#endif  // HEAD_OBS_PERF_COUNTERS_H_
