// Op-level performance profiler: per-(op, shape, phase) attribution of the
// training/inference hot path, with achieved GFLOP/s, arithmetic intensity,
// a software roofline, and (where the kernel allows) hardware counters.
//
//   obs::StartProfiling();
//   ...run training steps...             // kernels + autograd report in
//   obs::StopProfiling();
//   obs::ProfileReport r = obs::CollectProfile();
//   std::cout << obs::ProfileToText(r, /*top_n=*/10);
//   obs::WriteProfileJsonFile("prof.json");   // tools/profile_diff.py input
//
// Instrumentation is the HEAD_SPAN idiom: an RAII OpScope whose constructor
// is one relaxed atomic load when profiling is disabled (≲1 ns — cheap
// enough for permanent residence inside every kernel entry point and
// autograd node). Enabled, a scope costs two clock reads plus ~a dozen
// relaxed atomic adds into a per-thread open-addressed stats table, so the
// aggregation itself never locks, allocates, or contends across threads.
//
// Attribution model — scopes nest on their thread:
//   * total time: wall ns between a scope's open and close;
//   * self time:  total minus the total of directly nested scopes — the
//     sorted report ranks by self so nothing is double-counted;
//   * roots:      scopes with no profiled parent (rl.update, the perception
//     train step, env.step). coverage = 1 − root_self / root_total is the
//     fraction of step wall time attributed to finer-grained ops — the
//     ≥95% target of ISSUE 8.
//   * phase:      forward by default; nn::Backward flips a thread-local so
//     the same GEMM shape reports separately for fwd and bwd.
//
// Flops/bytes are attributed exactly once per call tree: kernel-table entry
// points (gemm_nn/tn/nt, axpy, activations, adam, rowwise-max) report
// their own flops via kernels::FlopsFor; autograd nodes whose math runs
// through those kernels report zero at node level (their cost shows as the
// kernel rows nested beneath), while pure-loop nodes (Add, Tanh, Softmax,
// gathers, …) carry their own counts.
//
// Hardware counters: per-thread perf_event groups (see perf_counters.h)
// accumulate cycles/instructions/cache-misses/branch-misses for the session;
// when perf_event_open is unavailable (EACCES/ENOSYS/seccomp/non-Linux) the
// report simply carries hw.status — every wall-clock/flops column is
// unaffected.
#ifndef HEAD_OBS_PROFILER_H_
#define HEAD_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.h"  // NowNs + HEAD_OBS_CONCAT

namespace head::obs {

enum class ProfPhase : uint8_t { kForward = 0, kBackward = 1 };

namespace prof_internal {
extern std::atomic<bool> g_profiling_enabled;
extern thread_local ProfPhase t_phase;
extern thread_local uint64_t* t_child_acc;

void RecordOp(const char* op, ProfPhase phase, int m, int n, int k,
              uint64_t total_ns, uint64_t self_ns, int64_t flops,
              int64_t bytes, bool is_root);
}  // namespace prof_internal

inline bool ProfilingEnabled() {
  return prof_internal::g_profiling_enabled.load(std::memory_order_relaxed);
}

struct ProfilerOptions {
  /// Try to open per-thread perf_event hardware counters. Falls back to
  /// wall-clock-only silently when the kernel refuses; HEAD_PERF_COUNTERS=0
  /// pins the fallback regardless.
  bool hw_counters = true;
};

/// Zeroes all accumulated stats, then enables collection. Hardware counter
/// groups are (re)armed per thread on first profiled op.
void StartProfiling(const ProfilerOptions& options = {});
/// Disables collection (stats are retained for CollectProfile).
void StopProfiling();
/// Zeroes all accumulated stats without toggling the gate.
void ResetProfile();

/// RAII attribution scope. With profiling disabled the constructor is a
/// single relaxed load; enabled it participates in the self-time/root
/// accounting described above.
class OpScope {
 public:
  OpScope(const char* op, int m, int n, int k, int64_t flops, int64_t bytes) {
    if (!ProfilingEnabled()) return;
    Begin(op, m, n, k, flops, bytes);
  }
  /// Shapeless region scope (rl.update, env.step, …).
  explicit OpScope(const char* op) : OpScope(op, 0, 0, 0, 0, 0) {}
  ~OpScope() {
    if (op_ != nullptr) End();
  }

  OpScope(const OpScope&) = delete;
  OpScope& operator=(const OpScope&) = delete;

 private:
  void Begin(const char* op, int m, int n, int k, int64_t flops,
             int64_t bytes);
  void End();

  // Only op_ is initialized on the disabled path (the destructor's gate);
  // Begin fills everything else, keeping the disabled constructor at one
  // relaxed load + one store.
  const char* op_ = nullptr;
  int m_, n_, k_;
  int64_t flops_, bytes_;
  ProfPhase phase_;
  uint64_t start_ns_;
  uint64_t child_ns_;      // filled by directly nested scopes
  uint64_t* parent_child_;  // nullptr ⇒ this scope is a root
};

/// Marks the current thread as running the given phase for its scope
/// (nn::Backward wraps itself in kBackward).
class ScopedProfPhase {
 public:
  explicit ScopedProfPhase(ProfPhase phase)
      : prev_(prof_internal::t_phase) {
    prof_internal::t_phase = phase;
  }
  ~ScopedProfPhase() { prof_internal::t_phase = prev_; }
  ScopedProfPhase(const ScopedProfPhase&) = delete;
  ScopedProfPhase& operator=(const ScopedProfPhase&) = delete;

 private:
  ProfPhase prev_;
};

// ---- Report ----

struct OpStats {
  std::string op;
  ProfPhase phase = ProfPhase::kForward;
  int m = 0, n = 0, k = 0;  ///< shape key; (count,1,1)-style for elementwise
  int64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  uint64_t p50_ns = 0;
  uint64_t p95_ns = 0;
  int64_t flops = 0;
  int64_t bytes = 0;

  double AvgNs() const {
    return count > 0 ? static_cast<double>(total_ns) / count : 0.0;
  }
  /// Achieved GFLOP/s over the op's own (total) wall time.
  double Gflops() const {
    return total_ns > 0 ? static_cast<double>(flops) / total_ns : 0.0;
  }
  /// Arithmetic intensity in flops/byte (0 when bytes were not attributed).
  double Intensity() const {
    return bytes > 0 ? static_cast<double>(flops) / bytes : 0.0;
  }
};

struct HwCounterReport {
  bool available = false;
  std::string status = "unopened";  ///< "ok" or the fallback reason tag
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t cache_misses = 0;
  uint64_t branch_misses = 0;
  double ipc = 0.0;
};

/// Measured machine peaks the roofline is drawn against. Benches calibrate
/// via kernels::CalibrateProfilerRoofline() (a cache-resident GEMM through
/// the active backend); the built-in fallback is a portable FMA-loop +
/// stream sweep that underestimates SIMD peaks but keeps ratios meaningful.
struct RooflinePeaks {
  double gflops = 0.0;
  double gbps = 0.0;
  std::string source = "uncalibrated";
};

void SetRooflinePeaks(const RooflinePeaks& peaks);
/// Current peaks; runs the portable fallback calibration on first use if
/// nothing was injected.
RooflinePeaks GetRooflinePeaks();

/// The roofline bound for an op of the given intensity (flops/byte):
/// min(peak_gflops, intensity · peak_gbps). 0 when uncalibrated.
double RooflineBoundGflops(double intensity, const RooflinePeaks& peaks);

/// Portable stream-bandwidth sweep (read+write over a buffer past L2) —
/// the memory roof shared by the fallback calibration here and the
/// kernel-layer calibration. ~10 ms.
double MeasurePeakBandwidthGbps();

struct ProfileReport {
  uint64_t session_wall_ns = 0;  ///< Start→Stop (or →Collect while running)
  uint64_t root_total_ns = 0;
  uint64_t root_self_ns = 0;
  /// 1 − root_self/root_total: fraction of root-scope wall time attributed
  /// to nested per-op rows. 0 when nothing was profiled.
  double coverage = 0.0;
  int threads = 0;          ///< shards (≈ threads) that recorded ops
  int64_t dropped_ops = 0;  ///< records lost to per-thread table overflow
  HwCounterReport hw;
  RooflinePeaks roofline;
  std::vector<OpStats> ops;  ///< sorted by self_ns descending
};

/// Merges every thread's stats into one report (sorted by self time).
/// Intended at quiescence or under only-relaxed-counter racing — concurrent
/// profiled ops may be partially reflected but never corrupt the report.
ProfileReport CollectProfile();

/// Human-readable table; top_n = 0 prints every row.
std::string ProfileToText(const ProfileReport& report, size_t top_n = 0);
/// Schema "head-profile-v1" — the tools/profile_diff.py input format.
std::string ProfileToJson(const ProfileReport& report);
/// CollectProfile() → ProfileToJson → `path`; false on I/O error.
bool WriteProfileJsonFile(const std::string& path);

/// Like WriteChromeTraceFile, but merges the drained spans with the
/// profiler's GFLOP/s / GB/s counter tracks ("ph":"C") sampled during the
/// session, so Perfetto shows achieved throughput under the span rows.
bool WriteChromeTraceWithCountersFile(const std::string& path);

}  // namespace head::obs

/// Shaped profiled op (kernels, autograd nodes).
#define HEAD_PROF_OP(op, m, n, k, flops, bytes)      \
  ::head::obs::OpScope HEAD_OBS_CONCAT(head_prof_, __LINE__)( \
      op, m, n, k, flops, bytes)

/// Shapeless profiled region (step roots, phases).
#define HEAD_PROF_SCOPE(op) \
  ::head::obs::OpScope HEAD_OBS_CONCAT(head_prof_, __LINE__)(op)

#endif  // HEAD_OBS_PROFILER_H_
