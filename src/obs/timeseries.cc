#include "obs/timeseries.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace head::obs {

namespace {

constexpr double kAbsent = std::numeric_limits<double>::quiet_NaN();

/// Shortest representation that still round-trips typical telemetry values.
std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

TimeSeries::TimeSeries(int capacity) : capacity_(capacity) {
  HEAD_CHECK_GT(capacity, 0);
}

void TimeSeries::Append(
    double t, const std::vector<std::pair<std::string, double>>& values) {
  std::lock_guard<std::mutex> lock(mu_);
  Row row;
  row.t = t;
  row.values.assign(columns_.size(), kAbsent);
  for (const auto& [name, v] : values) {
    auto it = column_idx_.find(name);
    size_t idx;
    if (it == column_idx_.end()) {
      idx = columns_.size();
      columns_.push_back(name);
      column_idx_.emplace(name, idx);
      row.values.push_back(kAbsent);
    } else {
      idx = it->second;
    }
    row.values[idx] = v;
  }
  if (static_cast<int>(ring_.size()) < capacity_) {
    ring_.push_back(std::move(row));
  } else {
    ring_[head_] = std::move(row);
    head_ = (head_ + 1) % ring_.size();
    ++overwritten_;
    static Counter& dropped = GetCounter("obs.timeseries.overwritten");
    dropped.Add();
  }
  ++appended_;
}

void TimeSeries::SampleRegistry(double t, const std::string& prefix) {
  const MetricsSnapshot snap = Registry::Global().Snapshot();
  std::vector<std::pair<std::string, double>> values;
  auto matches = [&prefix](const std::string& name) {
    return prefix.empty() || name.rfind(prefix, 0) == 0;
  };
  for (const auto& [name, v] : snap.counters) {
    if (matches(name)) values.emplace_back(name, static_cast<double>(v));
  }
  for (const auto& [name, v] : snap.gauges) {
    if (matches(name)) values.emplace_back(name, v);
  }
  for (const auto& [name, h] : snap.histograms) {
    if (!matches(name)) continue;
    values.emplace_back(name + ".count", static_cast<double>(h.count));
    values.emplace_back(name + ".mean", h.Mean());
  }
  Append(t, values);
}

std::vector<std::string> TimeSeries::columns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return columns_;
}

int64_t TimeSeries::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(ring_.size());
}

int64_t TimeSeries::appended() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

int64_t TimeSeries::overwritten() const {
  std::lock_guard<std::mutex> lock(mu_);
  return overwritten_;
}

std::string TimeSeries::ToCsv() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "t";
  for (const std::string& c : columns_) oss << "," << c;
  oss << "\n";
  // head_ is the oldest row only once the ring has wrapped.
  const size_t n = ring_.size();
  const size_t start = n == static_cast<size_t>(capacity_) ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    const Row& row = ring_[(start + i) % n];
    oss << FormatValue(row.t);
    for (size_t c = 0; c < columns_.size(); ++c) {
      oss << ",";
      const double v = c < row.values.size() ? row.values[c] : kAbsent;
      if (!std::isnan(v)) oss << FormatValue(v);
    }
    oss << "\n";
  }
  return oss.str();
}

std::string TimeSeries::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream oss;
  oss << "{\"columns\":[\"t\"";
  for (const std::string& c : columns_) {
    oss << ",\"" << JsonEscape(c) << "\"";
  }
  oss << "],\"rows\":[";
  const size_t n = ring_.size();
  const size_t start = n == static_cast<size_t>(capacity_) ? head_ : 0;
  for (size_t i = 0; i < n; ++i) {
    const Row& row = ring_[(start + i) % n];
    oss << (i == 0 ? "" : ",") << "[" << FormatValue(row.t);
    for (size_t c = 0; c < columns_.size(); ++c) {
      const double v = c < row.values.size() ? row.values[c] : kAbsent;
      if (std::isnan(v)) {
        oss << ",null";
      } else {
        oss << "," << FormatValue(v);
      }
    }
    oss << "]";
  }
  oss << "]}";
  return oss.str();
}

bool TimeSeries::WriteCsvFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os.good()) return false;
  os << ToCsv();
  return os.good();
}

bool TimeSeries::WriteJsonFile(const std::string& path) const {
  std::ofstream os(path);
  if (!os.good()) return false;
  os << ToJson() << "\n";
  return os.good();
}

void TimeSeries::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  head_ = 0;
}

RegistrySampler::RegistrySampler(TimeSeries* series, double interval_s,
                                 std::string prefix)
    : series_(series), interval_s_(interval_s), prefix_(std::move(prefix)) {
  HEAD_CHECK(series != nullptr);
}

bool RegistrySampler::Tick(double t) {
  if (has_sampled_ && interval_s_ > 0.0 && t < last_t_ + interval_s_) {
    return false;
  }
  series_->SampleRegistry(t, prefix_);
  last_t_ = t;
  has_sampled_ = true;
  ++samples_;
  return true;
}

}  // namespace head::obs
