#include "obs/span.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <ostream>

#include "obs/metrics.h"

namespace head::obs {

namespace {

// Completed spans from every thread, appended under a mutex. Span end is not
// a hot enough event to justify per-thread buffers yet: a traced sim step
// produces ~10 spans, each append is ~20 ns.
std::mutex g_events_mu;
std::vector<TraceEvent> g_events;
std::atomic<int64_t> g_dropped{0};

// Unbounded traces of long RL trainings would eat the heap; cap and count.
constexpr size_t kMaxEvents = 1 << 21;  // ~2M spans ≈ 80 MB

std::atomic<uint32_t> g_next_tid{0};

uint32_t ThisThreadId() {
  thread_local const uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

thread_local int t_depth = 0;

}  // namespace

namespace internal {

std::atomic<bool> g_tracing_enabled{false};

uint64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int SpanBegin() { return t_depth++; }

void SpanEnd(const char* name, uint64_t start_ns, int depth) {
  const uint64_t end_ns = NowNs();
  --t_depth;
  std::lock_guard<std::mutex> lock(g_events_mu);
  if (g_events.size() >= kMaxEvents) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  g_events.push_back(
      {name, ThisThreadId(), depth, start_ns, end_ns - start_ns});
}

}  // namespace internal

void SetTracingEnabled(bool enabled) {
  internal::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

std::vector<TraceEvent> DrainTraceEvents() {
  std::lock_guard<std::mutex> lock(g_events_mu);
  std::vector<TraceEvent> out;
  out.swap(g_events);
  return out;
}

int64_t DroppedTraceEvents() {
  return g_dropped.load(std::memory_order_relaxed);
}

namespace {

/// Nanoseconds as decimal microseconds ("12.345") — Chrome's time unit,
/// without losing the nanosecond precision.
std::string NsAsUs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceEvent>& events,
                      std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"head\",\"ph\":\"X\""
       << ",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":" << NsAsUs(e.start_ns)
       << ",\"dur\":" << NsAsUs(e.dur_ns)
       << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  os << "]}\n";
}

bool WriteChromeTraceFile(const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  WriteChromeTrace(DrainTraceEvents(), os);
  return os.good();
}

ScopedTimer::~ScopedTimer() {
  hist_.Observe((internal::NowNs() - start_ns_) * 1e-9);
}

}  // namespace head::obs
