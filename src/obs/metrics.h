// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// histograms, all safe for concurrent use from the hot path. Benches and the
// CLI take snapshots (optionally resetting the values) and export them as a
// human-readable table or JSON, so internal latencies and training telemetry
// (loss, epsilon, reward terms) can ride alongside the paper-table outputs.
//
// Call-site idiom — resolve the metric once, then touch only atomics:
//
//   static obs::Counter& steps = obs::GetCounter("sim.steps");
//   steps.Add();
//
// Registered metrics are never removed (Reset only zeroes values), so the
// references cached in function-local statics stay valid for the lifetime of
// the process.
#ifndef HEAD_OBS_METRICS_H_
#define HEAD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace head::obs {

/// Monotonically increasing integer (events, steps, updates).
class Counter {
 public:
  void Add(int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Last-write-wins double (epsilon, replay fill, learning rate).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time copy of a histogram, with the quantile math.
struct HistogramSnapshot {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;  ///< meaningful only when count > 0
  double max = 0.0;
  /// Upper bounds of the first bounds.size() buckets; an implicit overflow
  /// bucket catches everything above bounds.back().
  std::vector<double> bounds;
  std::vector<int64_t> buckets;  ///< size bounds.size() + 1

  double Mean() const { return count > 0 ? sum / count : 0.0; }
  /// Linear interpolation inside the bucket holding rank q·count, clamped to
  /// the observed [min, max]. q in [0, 1]; returns 0 when empty.
  double Quantile(double q) const;
};

/// Fixed-bucket histogram. Observe() is lock-free; cross-field consistency
/// (count vs sum vs buckets) is only guaranteed at quiescence, which is all
/// the snapshot/report use cases need.
class Histogram {
 public:
  /// `bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);
  HistogramSnapshot Snapshot() const;
  void Reset();

  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<int64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<int64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// `count` upper bounds starting at `start`, each `factor` times the last —
/// the default shape for latency-in-seconds histograms.
std::vector<double> ExponentialBounds(double start, double factor, int count);

/// Memoized ExponentialBounds: the first call for a given (start, factor,
/// count) builds the vector, later calls return the same immutable instance.
/// Hot-path histogram registration (per-update telemetry) would otherwise
/// rebuild these bucket vectors on every call.
const std::vector<double>& CachedExponentialBounds(double start, double factor,
                                                   int count);

/// Memoized linear bounds [lo, lo+step, …, hi] (hi included up to fp slack).
/// Requires lo < hi and step > 0.
const std::vector<double>& CachedLinearBounds(double lo, double hi,
                                              double step);

/// Memoized µs-scale latency bounds: 1 µs … ~24 s at factor 1.5. The default
/// latency preset (factor 2.5) is tuned for ms-scale training loops; serve
/// request latencies live in the tens-to-hundreds of µs, where a 2.5× bucket
/// ratio makes p99 interpolation meaningless. Factor 1.5 keeps adjacent
/// buckets within ±22% of the true quantile across the whole range.
const std::vector<double>& CachedMicroLatencyBounds();

/// Escapes a string for embedding inside a JSON string literal: quotes,
/// backslashes, and control characters (the latter as \u00XX).
std::string JsonEscape(const std::string& s);

/// Inverse of JsonEscape (also accepts the standard short escapes \n \t \r
/// \b \f \/ and \u00XX). Unrecognized escapes are passed through verbatim.
std::string JsonUnescape(const std::string& s);

struct MetricsSnapshot {
  /// Wall-clock time the snapshot was captured, seconds since the Unix epoch
  /// (fractional). Exported as "captured_unix_s" in ToJson.
  double captured_unix_s = 0.0;
  std::map<std::string, int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Human-readable table, one metric per line.
  std::string ToText() const;
  /// {"captured_unix_s":...,"counters":{...},"gauges":{...},
  ///  "histograms":{name:{count,sum,min,max,mean,p50,p95,p99}}}
  /// Metric names are JsonEscape()d, so arbitrary names stay valid JSON.
  std::string ToJson() const;
};

class Registry {
 public:
  /// The process-wide registry used by all instrumentation.
  static Registry& Global();

  /// Finds or creates. The returned reference is valid forever.
  Counter& GetCounter(const std::string& name);
  Gauge& GetGauge(const std::string& name);
  /// `bounds` is used only on first creation; empty selects the default
  /// latency bounds (1 µs … ~130 s, factor 2.5).
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  MetricsSnapshot Snapshot() const;
  /// Snapshot, then zero every value (metrics stay registered) — lets a
  /// bench scope its measurement to one run.
  MetricsSnapshot SnapshotAndReset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  // unique_ptr-free node stability: std::map never moves its mapped values.
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Shorthands over Registry::Global().
Counter& GetCounter(const std::string& name);
Gauge& GetGauge(const std::string& name);
Histogram& GetHistogram(const std::string& name,
                        std::vector<double> bounds = {});
/// Histogram named `<name>.seconds` with the default latency bounds.
Histogram& LatencyHistogram(const std::string& name);
/// Histogram named `<name>.seconds` with CachedMicroLatencyBounds() — for
/// µs-scale latencies (serve request/batch timings) that need finer low-end
/// resolution than the default preset.
Histogram& MicroLatencyHistogram(const std::string& name);

/// Writes Registry::Global().Snapshot() as JSON to `path` (false on I/O
/// error). When `reset` is true the values are zeroed after the snapshot.
bool WriteMetricsJsonFile(const std::string& path, bool reset = false);

}  // namespace head::obs

#endif  // HEAD_OBS_METRICS_H_
