// Flight recorder: an aircraft-style black box for maneuver decisions.
//
// Every step of an episode, the instrumented pipeline fills one structured
// StepRecord — perceived/phantom neighbors, prediction summary, Q-values and
// action parameters, reward decomposition, chosen maneuver, RNG cursor — in
// a thread-local scratch slot, and commits it into a per-thread fixed-
// capacity ring buffer. Safety triggers (collision, TTC below a threshold,
// hard braking, episode failure, or a manual request) freeze the ring and
// dump the last N steps of pre/post-trigger context as JSONL alongside a
// replay manifest (scenario + policy + seed + episode index), so every
// failure becomes an inspectable, deterministically replayable artifact
// (`head_cli replay <manifest>` — see eval/replay.h).
//
// Cost model mirrors HEAD_SPAN: with recording disabled (the default) every
// instrumentation site is one relaxed atomic load and a branch. Enabled,
// fills are plain stores into the preallocated thread-local scratch and a
// commit copies it into a preallocated ring slot — no heap allocation on
// the hot path; files are only touched when a trigger fires.
//
// Doubles are serialized with %.17g and parsed with strtod, so a dumped
// trajectory round-trips bitwise — the foundation of the replay-parity
// contract.
#ifndef HEAD_OBS_RECORDER_H_
#define HEAD_OBS_RECORDER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace head::obs {

/// Mirrors perception::kNumAreas / rl::kNumBehaviors without depending on
/// those higher layers (obs sits at the bottom of the link order).
inline constexpr int kRecordNeighbors = 6;
inline constexpr int kRecordBehaviors = 3;

/// How the recorded episode ended (layer-neutral copy of sim::EpisodeStatus).
enum class EpisodeEnd : int8_t {
  kRunning = 0,
  kArrived = 1,
  kCollision = 2,
  kTimeout = 3,
};

const char* ToString(EpisodeEnd e);

/// One perceived (or phantom-completed) neighbor at the decision step,
/// ego-relative — the raw inputs of paper Eqs. (1)-(3).
struct NeighborRecord {
  int32_t id = -1;          ///< kInvalidVehicleId for phantoms
  uint8_t is_phantom = 0;
  double d_lat_m = 0.0;
  double d_lon_m = 0.0;
  double v_rel_mps = 0.0;
};

/// Predicted t+1 relative state of one target (LST-GAT output, Eq. 13).
struct PredictionRecord {
  double d_lat_m = 0.0;
  double d_lon_m = 0.0;
  double v_rel_mps = 0.0;
};

/// One decision step, as the black box stores it. Fixed-size (no heap) so a
/// commit is a struct copy into a preallocated ring slot.
struct StepRecord {
  int32_t step = -1;   ///< simulator step index after the maneuver applied
  double time_s = 0.0;

  // Ego state after the maneuver was applied.
  int32_t ego_lane = 0;
  double ego_lon_m = 0.0;
  double ego_v_mps = 0.0;

  // Perception: the six target slots of the completed scene.
  std::array<NeighborRecord, kRecordNeighbors> neighbors{};
  uint8_t has_neighbors = 0;
  std::array<PredictionRecord, kRecordNeighbors> prediction{};
  uint8_t has_prediction = 0;

  // Decision internals (RL agents only; rule-based policies leave has_* 0).
  std::array<double, kRecordBehaviors> q{};       ///< Q(s,x) per behavior
  uint8_t has_q = 0;
  std::array<double, kRecordBehaviors> params{};  ///< x(s) action parameters
  uint8_t has_params = 0;
  double epsilon = 0.0;

  // The maneuver actually applied.
  int32_t behavior = -1;   ///< discrete index (−1 = not an RL decision)
  int8_t lane_change = 0;  ///< −1 left / 0 keep / +1 right
  double accel_mps2 = 0.0;

  // Outcome of the transition.
  double r_safety = 0.0;
  double r_efficiency = 0.0;
  double r_comfort = 0.0;
  double r_impact = 0.0;
  double r_total = 0.0;
  uint8_t has_reward = 0;
  double ttc_s = -1.0;  ///< TTC to the front vehicle; −1 = not closing/none

  uint64_t rng_cursor = 0;  ///< action-RNG draw count after this decision
  EpisodeEnd end = EpisodeEnd::kRunning;
};

/// Why a dump was produced.
enum class DumpTrigger : int8_t {
  kManual = 0,
  kCollision = 1,
  kImpactRisk = 2,   ///< TTC fell below RecorderConfig::ttc_trigger_s
  kHardBrake = 3,    ///< accel ≤ −RecorderConfig::hard_brake_mps2
  kEpisodeFailure = 4,
};

const char* ToString(DumpTrigger t);

/// Identifies the episode a ring's records belong to — everything replay
/// needs to re-run it deterministically.
struct EpisodeContext {
  std::string scenario;  ///< sim::ScenarioByName key ("" = unnamed env)
  std::string policy;    ///< eval::MakeNamedPolicy key or agent name
  uint64_t seed = 0;     ///< simulation reset seed of the episode
  int episode_index = 0;
};

struct RecorderConfig {
  /// Ring slots per thread. At Δt = 0.5 s the default holds ~8.5 minutes of
  /// pre-trigger context (~0.6 MB per recording thread).
  int capacity = 1024;
  /// Directory for JSONL dumps + manifests; empty disables file output
  /// (records stay inspectable in memory via SnapshotRecords()).
  std::string dump_dir;
  /// Extra steps recorded after a trigger before the dump is written (post-
  /// trigger context). The dump is flushed early if the episode ends first.
  int post_trigger_steps = 0;
  bool dump_on_collision = true;
  /// Also dump when an episode ends in a timeout (divergence guard hit).
  bool dump_on_timeout = false;
  /// TTC threshold in seconds; > 0 arms the impact-risk trigger.
  double ttc_trigger_s = 0.0;
  /// Deceleration threshold in m/s²; > 0 arms the hard-brake trigger.
  double hard_brake_mps2 = 0.0;
};

namespace internal {
extern std::atomic<bool> g_recording_enabled;
}

/// Runtime switch (same idiom as SetTracingEnabled). While disabled, every
/// recorder call site costs one relaxed atomic load.
void SetRecordingEnabled(bool enabled);
inline bool RecordingEnabled() {
  return internal::g_recording_enabled.load(std::memory_order_relaxed);
}

/// Installs the configuration used by rings created/reset after this call
/// (capacity changes take effect at the next BeginEpisode on each thread).
void ConfigureRecorder(const RecorderConfig& config);
RecorderConfig GetRecorderConfig();

/// The calling thread's under-construction record. Instrumentation sites
/// fill their slice; the step loop commits. Only meaningful while
/// RecordingEnabled() — callers must gate:
///
///   if (obs::RecordingEnabled()) obs::ScratchRecord().ttc_s = ttc;
StepRecord& ScratchRecord();

/// Pushes the scratch record into the ring (overwriting the oldest record
/// when full), clears the scratch, and evaluates the dump triggers against
/// the just-committed record. No-op while disabled.
void CommitStepRecord();

/// Clears the calling thread's ring + scratch and installs the episode
/// context for subsequent commits/dumps. No-op while disabled.
void BeginEpisode(const EpisodeContext& ctx);

/// Marks episode end: flushes a pending (post-context) dump and fires the
/// episode-failure trigger when `end` is a failure the config dumps on.
/// No-op while disabled.
void EndEpisode(EpisodeEnd end);

/// Manually freeze + dump the calling thread's ring. Returns false when
/// recording is disabled, the ring is empty, or no dump_dir is configured.
/// On success `*manifest_path` (if non-null) receives the manifest path.
bool DumpNow(std::string* manifest_path = nullptr);

/// Records currently in the calling thread's ring, oldest first.
std::vector<StepRecord> SnapshotRecords();

/// Ring records overwritten before they could be dumped (all threads, since
/// process start). Also exported as the `obs.recorder.overwritten` counter.
int64_t OverwrittenRecords();

/// Records committed (all threads) — `obs.recorder.committed` counter.
int64_t CommittedRecords();

/// Dumps written to disk so far (all threads).
int64_t DumpsWritten();

// ---- Serialization (exposed for replay + tests) ----

/// One JSONL line per record, oldest first.
void WriteRecordsJsonl(const std::vector<StepRecord>& records,
                       std::ostream& os);

/// Parses one JSONL line produced by WriteRecordsJsonl. Doubles round-trip
/// bitwise. Returns false on malformed input.
bool ParseRecordLine(const std::string& line, StepRecord* out);

/// A loaded dump: manifest context + records.
struct FlightDump {
  EpisodeContext ctx;
  DumpTrigger trigger = DumpTrigger::kManual;
  EpisodeEnd end = EpisodeEnd::kRunning;
  std::vector<StepRecord> records;
};

std::string ManifestJson(const FlightDump& dump,
                         const std::string& jsonl_filename);

/// Loads a dump from its manifest path (the records JSONL is resolved
/// relative to the manifest's directory). Returns false on I/O or parse
/// error; `*error` (if non-null) receives a description.
bool LoadFlightDump(const std::string& manifest_path, FlightDump* out,
                    std::string* error = nullptr);

}  // namespace head::obs

#endif  // HEAD_OBS_RECORDER_H_
