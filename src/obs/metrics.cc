#include "obs/metrics.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace head::obs {

namespace {

/// fetch_add for atomic<double> via CAS (fetch_add on floating atomics is
/// C++20 but not universally lock-free; the CAS loop is portable).
void AtomicAdd(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Compact number formatting for text/JSON output (no trailing zeros).
std::string FormatNumber(double v) {
  std::ostringstream oss;
  oss.precision(9);
  oss << v;
  return oss.str();
}

double NowUnixSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonUnescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    const char esc = s[++i];
    switch (esc) {
      case '"':
        out += '"';
        break;
      case '\\':
        out += '\\';
        break;
      case '/':
        out += '/';
        break;
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'r':
        out += '\r';
        break;
      case 'b':
        out += '\b';
        break;
      case 'f':
        out += '\f';
        break;
      case 'u':
        if (i + 4 < s.size()) {
          const unsigned code =
              static_cast<unsigned>(std::stoul(s.substr(i + 1, 4), nullptr, 16));
          i += 4;
          // Only Latin-1 range is produced by JsonEscape; higher code points
          // are emitted as a literal '?' rather than UTF-8 encoded.
          out += code <= 0xff ? static_cast<char>(code) : '?';
        }
        break;
      default:
        out += '\\';
        out += esc;
    }
  }
  return out;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count <= 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * count;
  int64_t cumulative = 0;
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double lower = i == 0 ? min : std::max(min, bounds[i - 1]);
    const double upper = i == bounds.size() ? max : std::min(max, bounds[i]);
    if (cumulative + buckets[i] >= rank) {
      const double within =
          buckets[i] > 0 ? (rank - cumulative) / buckets[i] : 0.0;
      return std::clamp(lower + within * (upper - lower), min, max);
    }
    cumulative += buckets[i];
  }
  return max;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  HEAD_CHECK(!bounds_.empty());
  HEAD_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()));
}

void Histogram::Observe(double v) {
  // Bucket i holds (bounds[i-1], bounds[i]] — prometheus "le" convention.
  const size_t i =
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin();
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, v);
  AtomicMin(min_, v);
  AtomicMax(max_, v);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.buckets.reserve(buckets_.size());
  for (const std::atomic<int64_t>& b : buckets_) {
    s.buckets.push_back(b.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const double lo = min_.load(std::memory_order_relaxed);
  const double hi = max_.load(std::memory_order_relaxed);
  s.min = std::isfinite(lo) ? lo : 0.0;
  s.max = std::isfinite(hi) ? hi : 0.0;
  return s;
}

void Histogram::Reset() {
  for (std::atomic<int64_t>& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

std::vector<double> ExponentialBounds(double start, double factor, int count) {
  HEAD_CHECK_GT(start, 0.0);
  HEAD_CHECK_GT(factor, 1.0);
  HEAD_CHECK_GT(count, 0);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (int i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

namespace {

/// Shared memoization for the Cached*Bounds helpers: one immutable vector per
/// parameter tuple, alive for the process lifetime so returned references
/// never dangle. std::map nodes are stable across inserts.
const std::vector<double>& MemoizeBounds(
    const std::array<double, 3>& key,
    const std::function<std::vector<double>()>& build) {
  static std::mutex mu;
  static std::map<std::array<double, 3>, std::vector<double>>* cache =
      new std::map<std::array<double, 3>, std::vector<double>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(key);
  if (it != cache->end()) return it->second;
  return cache->emplace(key, build()).first->second;
}

std::vector<double> DefaultLatencyBounds() {
  // 1 µs · 2.5^k, k = 0..19 — tops out around 3.6e3 s; plenty for any span.
  return ExponentialBounds(1e-6, 2.5, 20);
}

}  // namespace

const std::vector<double>& CachedExponentialBounds(double start, double factor,
                                                   int count) {
  return MemoizeBounds({start, factor, static_cast<double>(count)}, [&] {
    return ExponentialBounds(start, factor, count);
  });
}

const std::vector<double>& CachedMicroLatencyBounds() {
  // 1 µs × 1.5^41 ≈ 24 s: covers sub-ms serve latencies with ±22% bucket
  // resolution while still catching pathological multi-second stalls in the
  // overflow-adjacent buckets.
  return CachedExponentialBounds(1e-6, 1.5, 42);
}

const std::vector<double>& CachedLinearBounds(double lo, double hi,
                                              double step) {
  HEAD_CHECK_LT(lo, hi);
  HEAD_CHECK_GT(step, 0.0);
  return MemoizeBounds({lo, hi, step}, [&] {
    std::vector<double> b;
    b.reserve(static_cast<size_t>((hi - lo) / step) + 2);
    for (double v = lo; v <= hi + 1e-9 * std::max(1.0, std::abs(hi));
         v += step) {
      b.push_back(v);
    }
    return b;
  });
}

std::string MetricsSnapshot::ToText() const {
  std::ostringstream oss;
  for (const auto& [name, v] : counters) {
    oss << "counter   " << name << " = " << v << "\n";
  }
  for (const auto& [name, v] : gauges) {
    oss << "gauge     " << name << " = " << FormatNumber(v) << "\n";
  }
  for (const auto& [name, h] : histograms) {
    oss << "histogram " << name << " count=" << h.count
        << " mean=" << FormatNumber(h.Mean())
        << " min=" << FormatNumber(h.min) << " max=" << FormatNumber(h.max)
        << " p50=" << FormatNumber(h.Quantile(0.50))
        << " p95=" << FormatNumber(h.Quantile(0.95))
        << " p99=" << FormatNumber(h.Quantile(0.99)) << "\n";
  }
  return oss.str();
}

std::string MetricsSnapshot::ToJson() const {
  std::ostringstream oss;
  oss << "{\"captured_unix_s\":" << FormatNumber(captured_unix_s)
      << ",\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    oss << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":" << v;
    first = false;
  }
  oss << "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : gauges) {
    oss << (first ? "" : ",") << "\"" << JsonEscape(name)
        << "\":" << FormatNumber(v);
    first = false;
  }
  oss << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    oss << (first ? "" : ",") << "\"" << JsonEscape(name) << "\":{"
        << "\"count\":" << h.count << ",\"sum\":" << FormatNumber(h.sum)
        << ",\"min\":" << FormatNumber(h.min)
        << ",\"max\":" << FormatNumber(h.max)
        << ",\"mean\":" << FormatNumber(h.Mean())
        << ",\"p50\":" << FormatNumber(h.Quantile(0.50))
        << ",\"p95\":" << FormatNumber(h.Quantile(0.95))
        << ",\"p99\":" << FormatNumber(h.Quantile(0.99)) << "}";
    first = false;
  }
  oss << "}}";
  return oss.str();
}

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

Counter& Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& Registry::GetHistogram(const std::string& name,
                                  std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  if (bounds.empty()) bounds = DefaultLatencyBounds();
  return histograms_.try_emplace(name, std::move(bounds)).first->second;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.captured_unix_s = NowUnixSeconds();
  for (const auto& [name, c] : counters_) s.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g.value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h.Snapshot();
  return s;
}

MetricsSnapshot Registry::SnapshotAndReset() {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  s.captured_unix_s = NowUnixSeconds();
  for (auto& [name, c] : counters_) {
    s.counters[name] = c.value();
    c.Reset();
  }
  for (auto& [name, g] : gauges_) {
    s.gauges[name] = g.value();
    g.Reset();
  }
  for (auto& [name, h] : histograms_) {
    s.histograms[name] = h.Snapshot();
    h.Reset();
  }
  return s;
}

Counter& GetCounter(const std::string& name) {
  return Registry::Global().GetCounter(name);
}

Gauge& GetGauge(const std::string& name) {
  return Registry::Global().GetGauge(name);
}

Histogram& GetHistogram(const std::string& name, std::vector<double> bounds) {
  return Registry::Global().GetHistogram(name, std::move(bounds));
}

Histogram& LatencyHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name + ".seconds");
}

Histogram& MicroLatencyHistogram(const std::string& name) {
  return Registry::Global().GetHistogram(name + ".seconds",
                                         CachedMicroLatencyBounds());
}

bool WriteMetricsJsonFile(const std::string& path, bool reset) {
  const MetricsSnapshot snapshot = reset
                                       ? Registry::Global().SnapshotAndReset()
                                       : Registry::Global().Snapshot();
  std::ofstream os(path);
  if (!os.good()) return false;
  os << snapshot.ToJson() << "\n";
  return os.good();
}

}  // namespace head::obs
