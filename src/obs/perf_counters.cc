#include "obs/perf_counters.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace head::obs {

namespace {

std::atomic<int> g_forced_open_errno{0};

bool EnvDisabled() {
  const char* v = std::getenv("HEAD_PERF_COUNTERS");
  if (v == nullptr || *v == '\0') return false;
  return std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0 ||
         std::strcmp(v, "false") == 0;
}

const char* ErrnoTag(int err) {
  switch (err) {
    case EACCES: return "eacces";
    case EPERM: return "eperm";
    case ENOSYS: return "enosys";
    case ENOENT: return "enoent";
    case ENODEV: return "enodev";
    case EOPNOTSUPP: return "eopnotsupp";
    default: return "errno";
  }
}

#if defined(__linux__)

const uint64_t kEventConfigs[PerfCounterGroup::kNumEvents] = {
    PERF_COUNT_HW_CPU_CYCLES,
    PERF_COUNT_HW_INSTRUCTIONS,
    PERF_COUNT_HW_CACHE_MISSES,
    PERF_COUNT_HW_BRANCH_MISSES,
};

int PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                  unsigned long flags) {
  const int forced = g_forced_open_errno.load(std::memory_order_relaxed);
  if (forced != 0) {
    errno = forced;
    return -1;
  }
  return static_cast<int>(
      syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags));
}

/// u64 triple {value, time_enabled, time_running} per fd — the read format
/// every event below is opened with.
struct ReadTriple {
  uint64_t value;
  uint64_t enabled;
  uint64_t running;
};

uint64_t ScaledValue(const ReadTriple& t) {
  if (t.running == 0) return 0;
  if (t.running >= t.enabled) return t.value;
  const double scale =
      static_cast<double>(t.enabled) / static_cast<double>(t.running);
  return static_cast<uint64_t>(static_cast<double>(t.value) * scale);
}

#endif  // __linux__

}  // namespace

PerfCounterGroup::~PerfCounterGroup() {
#if defined(__linux__)
  for (int& fd : fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  leader_fd_ = -1;
#endif
}

bool PerfCounterGroup::Open() {
#if defined(__linux__)
  if (open()) return true;
  if (EnvDisabled()) {
    status_ = "disabled";
    return false;
  }
  for (int i = 0; i < kNumEvents; ++i) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.type = PERF_TYPE_HARDWARE;
    attr.size = sizeof(attr);
    attr.config = kEventConfigs[i];
    attr.disabled = (i == 0) ? 1 : 0;  // group enables through the leader
    attr.exclude_kernel = 1;           // works at perf_event_paranoid <= 2
    attr.exclude_hv = 1;
    attr.read_format =
        PERF_FORMAT_TOTAL_TIME_ENABLED | PERF_FORMAT_TOTAL_TIME_RUNNING;
    const int group_fd = (i == 0) ? -1 : fds_[0];
    const int fd = PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, 0);
    if (fd < 0) {
      if (i == 0) {
        status_ = ErrnoTag(errno);
        return false;  // no leader, no group
      }
      continue;  // optional member (e.g. cache-misses in a VM): skip
    }
    fds_[i] = fd;
  }
  leader_fd_ = fds_[0];
  status_ = "ok";
  return true;
#else
  status_ = "unsupported";
  return false;
#endif
}

void PerfCounterGroup::Enable() {
#if defined(__linux__)
  if (leader_fd_ >= 0) {
    ioctl(leader_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  }
#endif
}

void PerfCounterGroup::Disable() {
#if defined(__linux__)
  if (leader_fd_ >= 0) {
    ioctl(leader_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  }
#endif
}

void PerfCounterGroup::Reset() {
#if defined(__linux__)
  if (leader_fd_ >= 0) {
    ioctl(leader_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  }
#endif
}

bool PerfCounterGroup::Read(PerfCounterValues* out) const {
  *out = PerfCounterValues{};
#if defined(__linux__)
  if (!open()) return false;
  uint64_t values[kNumEvents] = {0, 0, 0, 0};
  for (int i = 0; i < kNumEvents; ++i) {
    if (fds_[i] < 0) continue;
    ReadTriple triple{};
    if (read(fds_[i], &triple, sizeof(triple)) !=
        static_cast<ssize_t>(sizeof(triple))) {
      continue;
    }
    values[i] = ScaledValue(triple);
    if (i == 0) {
      out->enabled_ns = triple.enabled;
      out->running_ns = triple.running;
    }
  }
  out->cycles = values[0];
  out->instructions = values[1];
  out->cache_misses = values[2];
  out->branch_misses = values[3];
  return true;
#else
  return false;
#endif
}

namespace {

const char* ProbeOnce() {
  PerfCounterGroup probe;
  probe.Open();
  return probe.status();
}

std::atomic<const char*> g_probe_status{nullptr};

}  // namespace

const char* PerfCountersStatus() {
  const char* cached = g_probe_status.load(std::memory_order_acquire);
  if (cached != nullptr) return cached;
  const char* status = ProbeOnce();
  g_probe_status.store(status, std::memory_order_release);
  return status;
}

bool PerfCountersAvailableImpl() {
  return std::strcmp(PerfCountersStatus(), "ok") == 0;
}

namespace internal {

void SetPerfOpenFailureForTest(int err) {
  g_forced_open_errno.store(err, std::memory_order_relaxed);
  g_probe_status.store(nullptr, std::memory_order_release);  // re-probe
}

}  // namespace internal

}  // namespace head::obs
