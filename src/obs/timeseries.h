// Metrics time series: turns point-in-time registry snapshots (and ad-hoc
// scalar rows from trainers) into first-class (t, values) curves with CSV /
// JSON export — training loss, epsilon, reward-term decompositions, and
// allocator gauges become plottable artifacts instead of ad-hoc prints.
//
// A TimeSeries is a fixed-capacity ring of rows over a dynamically growing
// column set; when full, the oldest rows are overwritten (dropped rows are
// counted and exported as `obs.timeseries.overwritten`). All methods are
// mutex-protected — sampling happens at episode/epoch cadence, never on the
// per-step hot path.
//
// RegistrySampler is the periodic bridge from the metrics registry: each
// Tick(t) past the sampling interval snapshots counters, gauges, and
// histogram summaries (count/mean) into one row.
#ifndef HEAD_OBS_TIMESERIES_H_
#define HEAD_OBS_TIMESERIES_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace head::obs {

class TimeSeries {
 public:
  /// `capacity` rows are preallocated lazily as appended; once full, the
  /// oldest row is overwritten per append.
  explicit TimeSeries(int capacity = 4096);

  /// Appends one row at time `t`. New column names extend the schema;
  /// columns absent from a row hold NaN (empty cell in CSV, null in JSON).
  void Append(double t,
              const std::vector<std::pair<std::string, double>>& values);

  /// Appends a row built from the global metrics registry: every counter
  /// and gauge becomes a column (counters cast to double), every histogram
  /// contributes `<name>.count` and `<name>.mean`. When `prefix` is
  /// non-empty only metric names starting with it are included.
  void SampleRegistry(double t, const std::string& prefix = "");

  std::vector<std::string> columns() const;
  int64_t rows() const;         ///< rows currently held (≤ capacity)
  int64_t appended() const;     ///< rows ever appended
  int64_t overwritten() const;  ///< rows lost to ring wrap

  /// Header `t,<col>,...`; one line per row, oldest first; NaN cells empty.
  std::string ToCsv() const;
  /// {"columns":["t",...],"rows":[[t,v,...],...]} — NaN cells are null.
  std::string ToJson() const;

  bool WriteCsvFile(const std::string& path) const;
  bool WriteJsonFile(const std::string& path) const;

  /// Drops all rows (columns are kept).
  void Clear();

 private:
  struct Row {
    double t = 0.0;
    std::vector<double> values;  // index-aligned with columns_; NaN = absent
  };

  mutable std::mutex mu_;
  int capacity_;
  std::vector<std::string> columns_;          // insertion order
  std::map<std::string, size_t> column_idx_;  // name -> index in columns_
  std::vector<Row> ring_;
  size_t head_ = 0;  // next write slot once ring_ is at capacity
  int64_t appended_ = 0;
  int64_t overwritten_ = 0;
};

/// Samples the registry into a TimeSeries at a fixed period: call Tick(t)
/// as often as convenient (per episode, per epoch); a row is captured when
/// `t` has advanced at least `interval_s` past the previous sample.
class RegistrySampler {
 public:
  /// `series` must outlive the sampler. `interval_s` ≤ 0 samples every Tick.
  RegistrySampler(TimeSeries* series, double interval_s,
                  std::string prefix = "");

  /// Returns true when a sample was captured.
  bool Tick(double t);

  int64_t samples() const { return samples_; }

 private:
  TimeSeries* series_;
  double interval_s_;
  std::string prefix_;
  double last_t_ = 0.0;
  bool has_sampled_ = false;
  int64_t samples_ = 0;
};

}  // namespace head::obs

#endif  // HEAD_OBS_TIMESERIES_H_
