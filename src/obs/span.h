// RAII scoped trace spans with Chrome trace-event export.
//
//   obs::SetTracingEnabled(true);
//   { HEAD_SPAN("sim.step"); ...work... }   // nested spans nest in the trace
//   obs::WriteChromeTraceFile("trace.json");
//
// The resulting JSON loads directly in chrome://tracing or Perfetto. Spans
// record begin timestamp, duration, thread, and nesting depth. With tracing
// disabled (the default) HEAD_SPAN costs one relaxed atomic load — a few
// nanoseconds — so instrumentation can stay in the hot paths permanently.
#ifndef HEAD_OBS_SPAN_H_
#define HEAD_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace head::obs {

namespace internal {
extern std::atomic<bool> g_tracing_enabled;

uint64_t NowNs();
int SpanBegin();                                 ///< returns depth; bumps it
void SpanEnd(const char* name, uint64_t start_ns, int depth);
}  // namespace internal

/// Runtime switch; spans started while disabled record nothing.
void SetTracingEnabled(bool enabled);
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// One completed span. Depth is the nesting level on its thread (0 = root).
struct TraceEvent {
  const char* name;  ///< must be a string literal (stored unowned)
  uint32_t tid;      ///< small sequential per-thread id
  int depth;
  uint64_t start_ns;  ///< steady-clock, process-relative
  uint64_t dur_ns;
};

/// Moves out every completed span recorded so far (all threads).
std::vector<TraceEvent> DrainTraceEvents();

/// Completed spans dropped because the in-memory buffer hit its cap.
int64_t DroppedTraceEvents();

/// Chrome trace-event JSON ({"traceEvents":[...]}, "ph":"X" complete events,
/// microsecond timestamps).
void WriteChromeTrace(const std::vector<TraceEvent>& events, std::ostream& os);

/// Drains all recorded spans and writes them to `path`; false on I/O error.
bool WriteChromeTraceFile(const std::string& path);

class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!TracingEnabled()) return;
    name_ = name;
    depth_ = internal::SpanBegin();
    start_ns_ = internal::NowNs();
  }
  ~ScopedSpan() {
    if (name_ != nullptr) internal::SpanEnd(name_, start_ns_, depth_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  int depth_ = 0;
};

/// Times a scope into a latency histogram (always on, independent of the
/// tracing switch) — for the handful of coarse stages whose latencies feed
/// the efficiency tables.
class ScopedTimer {
 public:
  explicit ScopedTimer(class Histogram& hist)
      : hist_(hist), start_ns_(internal::NowNs()) {}
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  uint64_t start_ns_;
};

}  // namespace head::obs

#define HEAD_OBS_CONCAT_INNER(a, b) a##b
#define HEAD_OBS_CONCAT(a, b) HEAD_OBS_CONCAT_INNER(a, b)

/// Opens a trace span covering the rest of the enclosing scope.
#define HEAD_SPAN(name) \
  ::head::obs::ScopedSpan HEAD_OBS_CONCAT(head_span_, __LINE__)(name)

#endif  // HEAD_OBS_SPAN_H_
