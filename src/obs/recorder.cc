#include "obs/recorder.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace head::obs {

namespace {

std::mutex g_config_mu;
RecorderConfig g_config;  // guarded by g_config_mu

std::atomic<int64_t> g_overwritten{0};
std::atomic<int64_t> g_committed{0};
std::atomic<int64_t> g_dumps{0};
std::atomic<uint64_t> g_dump_seq{0};

/// Everything one recording thread owns. No cross-thread access: fills,
/// commits, and dumps all happen on the owning thread, so the ring needs no
/// locking (the exported totals above are the only shared state).
struct ThreadRing {
  RecorderConfig cfg;            // stable for the episode (cached at Begin)
  std::vector<StepRecord> slots; // capacity cfg.capacity, preallocated
  size_t head = 0;               // next write index
  size_t count = 0;              // live records, ≤ slots.size()
  StepRecord scratch;
  EpisodeContext ctx;
  EpisodeEnd last_end = EpisodeEnd::kRunning;
  bool dumped_this_episode = false;
  int pending_post = -1;         // −1 = no trigger armed
  DumpTrigger pending_trigger = DumpTrigger::kManual;

  ThreadRing() : cfg(GetRecorderConfig()) {
    slots.resize(static_cast<size_t>(std::max(1, cfg.capacity)));
  }
};

std::mutex g_rings_mu;
std::vector<ThreadRing*>& RingRegistry() {
  static std::vector<ThreadRing*>* rings = new std::vector<ThreadRing*>();
  return *rings;
}

ThreadRing& Ring() {
  // Heap-allocated and intentionally never freed: worker threads may outlive
  // static destruction order, and a ring is ~0.6 MB at the default capacity.
  // The registry retains every ring so leak checkers see them as reachable;
  // entries are never removed (dead threads' rings just sit idle).
  thread_local ThreadRing* ring = [] {
    auto* r = new ThreadRing();
    std::lock_guard<std::mutex> lock(g_rings_mu);
    RingRegistry().push_back(r);
    return r;
  }();
  return *ring;
}

Counter& OverwrittenCounter() {
  static Counter& c = GetCounter("obs.recorder.overwritten");
  return c;
}

/// Oldest-first copy of the ring contents.
std::vector<StepRecord> RingSnapshot(const ThreadRing& r) {
  std::vector<StepRecord> out;
  out.reserve(r.count);
  const size_t cap = r.slots.size();
  const size_t start = (r.head + cap - r.count) % cap;
  for (size_t i = 0; i < r.count; ++i) {
    out.push_back(r.slots[(start + i) % cap]);
  }
  return out;
}

/// Writes the frozen ring as JSONL + manifest into cfg.dump_dir. Never
/// throws; returns false (and leaves a stderr note) on I/O failure.
bool WriteDump(ThreadRing& r, DumpTrigger trigger,
               std::string* manifest_path_out) {
  if (r.cfg.dump_dir.empty()) return false;
  FlightDump dump;
  dump.ctx = r.ctx;
  dump.trigger = trigger;
  dump.end = r.last_end;
  dump.records = RingSnapshot(r);
  if (dump.records.empty()) return false;

  std::error_code ec;
  std::filesystem::create_directories(r.cfg.dump_dir, ec);
  const uint64_t seq = g_dump_seq.fetch_add(1, std::memory_order_relaxed);
  char stem[128];
  std::snprintf(stem, sizeof(stem), "flight_%06llu_ep%d_%s",
                static_cast<unsigned long long>(seq), r.ctx.episode_index,
                ToString(trigger));
  const std::string jsonl_name = std::string(stem) + ".jsonl";
  const std::string jsonl_path = r.cfg.dump_dir + "/" + jsonl_name;
  const std::string manifest_path =
      r.cfg.dump_dir + "/" + stem + ".manifest.json";
  {
    std::ofstream os(jsonl_path);
    if (!os.good()) return false;
    WriteRecordsJsonl(dump.records, os);
    if (!os.good()) return false;
  }
  {
    std::ofstream os(manifest_path);
    if (!os.good()) return false;
    os << ManifestJson(dump, jsonl_name) << "\n";
    if (!os.good()) return false;
  }
  g_dumps.fetch_add(1, std::memory_order_relaxed);
  static Counter& dumps_counter = GetCounter("obs.recorder.dumps");
  dumps_counter.Add();
  if (manifest_path_out != nullptr) *manifest_path_out = manifest_path;
  return true;
}

void FlushPendingDump(ThreadRing& r) {
  if (r.pending_post < 0 || r.dumped_this_episode) {
    r.pending_post = -1;
    return;
  }
  WriteDump(r, r.pending_trigger, nullptr);
  r.dumped_this_episode = true;
  r.pending_post = -1;
}

void EvaluateTriggers(ThreadRing& r, const StepRecord& rec) {
  if (r.dumped_this_episode) return;
  const RecorderConfig& cfg = r.cfg;
  auto arm = [&](DumpTrigger t) {
    if (r.pending_post < 0) {
      r.pending_post = cfg.post_trigger_steps;
      r.pending_trigger = t;
    }
  };
  if (cfg.ttc_trigger_s > 0.0 && rec.ttc_s >= 0.0 &&
      rec.ttc_s <= cfg.ttc_trigger_s) {
    arm(DumpTrigger::kImpactRisk);
  }
  if (cfg.hard_brake_mps2 > 0.0 && rec.accel_mps2 <= -cfg.hard_brake_mps2) {
    arm(DumpTrigger::kHardBrake);
  }
  if (cfg.dump_on_collision && rec.end == EpisodeEnd::kCollision) {
    arm(DumpTrigger::kCollision);
    r.pending_post = 0;  // episode is over; no post-context will arrive
  }
  if (r.pending_post == 0) {
    FlushPendingDump(r);
  } else if (r.pending_post > 0) {
    --r.pending_post;
  }
}

// ---- Minimal scanners for the JSON we ourselves produce. ----

/// Finds `"key":` and returns the index just past the colon, or npos.
size_t AfterKey(const std::string& s, const char* key, size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t pos = s.find(needle, from);
  return pos == std::string::npos ? std::string::npos : pos + needle.size();
}

bool ScanDouble(const std::string& s, const char* key, double* out) {
  const size_t pos = AfterKey(s, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str() + pos, &end);
  if (end == s.c_str() + pos) return false;
  *out = v;
  return true;
}

bool ScanLong(const std::string& s, const char* key, long long* out) {
  const size_t pos = AfterKey(s, key);
  if (pos == std::string::npos) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str() + pos, &end, 10);
  if (end == s.c_str() + pos) return false;
  *out = v;
  return true;
}

/// Extracts every number inside the (possibly nested) array following
/// `"key":[`, in order of appearance.
bool ScanNumberArray(const std::string& s, const char* key,
                     std::vector<double>* out) {
  size_t pos = AfterKey(s, key);
  if (pos == std::string::npos || pos >= s.size() || s[pos] != '[') {
    return false;
  }
  int depth = 0;
  out->clear();
  while (pos < s.size()) {
    const char c = s[pos];
    if (c == '[') {
      ++depth;
      ++pos;
    } else if (c == ']') {
      if (--depth == 0) return true;
      ++pos;
    } else if (c == ',' || c == ' ') {
      ++pos;
    } else {
      char* end = nullptr;
      const double v = std::strtod(s.c_str() + pos, &end);
      if (end == s.c_str() + pos) return false;
      out->push_back(v);
      pos = end - s.c_str();
    }
  }
  return false;
}

/// Extracts the JSON string value following `"key":"` (un-escaping).
bool ScanString(const std::string& s, const char* key, std::string* out) {
  size_t pos = AfterKey(s, key);
  if (pos == std::string::npos || pos >= s.size() || s[pos] != '"') {
    return false;
  }
  ++pos;
  std::string raw;
  while (pos < s.size() && s[pos] != '"') {
    if (s[pos] == '\\' && pos + 1 < s.size()) {
      raw += s[pos];
      raw += s[pos + 1];
      pos += 2;
    } else {
      raw += s[pos++];
    }
  }
  if (pos >= s.size()) return false;
  *out = JsonUnescape(raw);
  return true;
}

/// %.17g round-trips IEEE doubles exactly — required for bitwise replay.
void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

namespace internal {
std::atomic<bool> g_recording_enabled{false};
}

const char* ToString(EpisodeEnd e) {
  switch (e) {
    case EpisodeEnd::kRunning:
      return "running";
    case EpisodeEnd::kArrived:
      return "arrived";
    case EpisodeEnd::kCollision:
      return "collision";
    case EpisodeEnd::kTimeout:
      return "timeout";
  }
  return "?";
}

const char* ToString(DumpTrigger t) {
  switch (t) {
    case DumpTrigger::kManual:
      return "manual";
    case DumpTrigger::kCollision:
      return "collision";
    case DumpTrigger::kImpactRisk:
      return "impact_risk";
    case DumpTrigger::kHardBrake:
      return "hard_brake";
    case DumpTrigger::kEpisodeFailure:
      return "episode_failure";
  }
  return "?";
}

namespace {

EpisodeEnd EndFromString(const std::string& s) {
  for (const EpisodeEnd e :
       {EpisodeEnd::kRunning, EpisodeEnd::kArrived, EpisodeEnd::kCollision,
        EpisodeEnd::kTimeout}) {
    if (s == ToString(e)) return e;
  }
  return EpisodeEnd::kRunning;
}

DumpTrigger TriggerFromString(const std::string& s) {
  for (const DumpTrigger t :
       {DumpTrigger::kManual, DumpTrigger::kCollision,
        DumpTrigger::kImpactRisk, DumpTrigger::kHardBrake,
        DumpTrigger::kEpisodeFailure}) {
    if (s == ToString(t)) return t;
  }
  return DumpTrigger::kManual;
}

}  // namespace

void SetRecordingEnabled(bool enabled) {
  internal::g_recording_enabled.store(enabled, std::memory_order_relaxed);
}

void ConfigureRecorder(const RecorderConfig& config) {
  HEAD_CHECK_GT(config.capacity, 0);
  HEAD_CHECK_GE(config.post_trigger_steps, 0);
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_config = config;
}

RecorderConfig GetRecorderConfig() {
  std::lock_guard<std::mutex> lock(g_config_mu);
  return g_config;
}

StepRecord& ScratchRecord() { return Ring().scratch; }

void CommitStepRecord() {
  if (!RecordingEnabled()) return;
  ThreadRing& r = Ring();
  if (r.count == r.slots.size()) {
    g_overwritten.fetch_add(1, std::memory_order_relaxed);
    OverwrittenCounter().Add();
  } else {
    ++r.count;
  }
  r.slots[r.head] = r.scratch;
  r.head = (r.head + 1) % r.slots.size();
  g_committed.fetch_add(1, std::memory_order_relaxed);
  static Counter& committed_counter = GetCounter("obs.recorder.committed");
  committed_counter.Add();
  r.last_end = r.scratch.end;
  const StepRecord& committed = r.slots[(r.head + r.slots.size() - 1) %
                                        r.slots.size()];
  r.scratch = StepRecord{};
  EvaluateTriggers(r, committed);
}

void BeginEpisode(const EpisodeContext& ctx) {
  if (!RecordingEnabled()) return;
  ThreadRing& r = Ring();
  r.cfg = GetRecorderConfig();
  const size_t cap = static_cast<size_t>(std::max(1, r.cfg.capacity));
  if (r.slots.size() != cap) {
    r.slots.assign(cap, StepRecord{});
  }
  r.head = 0;
  r.count = 0;
  r.scratch = StepRecord{};
  r.ctx = ctx;
  r.last_end = EpisodeEnd::kRunning;
  r.dumped_this_episode = false;
  r.pending_post = -1;
}

void EndEpisode(EpisodeEnd end) {
  if (!RecordingEnabled()) return;
  ThreadRing& r = Ring();
  r.last_end = end;
  if (r.pending_post >= 0) {
    FlushPendingDump(r);
    return;
  }
  if (r.dumped_this_episode) return;
  if (end == EpisodeEnd::kCollision && r.cfg.dump_on_collision) {
    WriteDump(r, DumpTrigger::kCollision, nullptr);
    r.dumped_this_episode = true;
  } else if (end == EpisodeEnd::kTimeout && r.cfg.dump_on_timeout) {
    WriteDump(r, DumpTrigger::kEpisodeFailure, nullptr);
    r.dumped_this_episode = true;
  }
}

bool DumpNow(std::string* manifest_path) {
  if (!RecordingEnabled()) return false;
  ThreadRing& r = Ring();
  return WriteDump(r, DumpTrigger::kManual, manifest_path);
}

std::vector<StepRecord> SnapshotRecords() { return RingSnapshot(Ring()); }

int64_t OverwrittenRecords() {
  return g_overwritten.load(std::memory_order_relaxed);
}

int64_t CommittedRecords() {
  return g_committed.load(std::memory_order_relaxed);
}

int64_t DumpsWritten() { return g_dumps.load(std::memory_order_relaxed); }

void WriteRecordsJsonl(const std::vector<StepRecord>& records,
                       std::ostream& os) {
  std::string line;
  for (const StepRecord& rec : records) {
    line.clear();
    line += "{\"step\":";
    line += std::to_string(rec.step);
    line += ",\"t\":";
    AppendDouble(line, rec.time_s);
    line += ",\"ego_lane\":";
    line += std::to_string(rec.ego_lane);
    line += ",\"ego_lon\":";
    AppendDouble(line, rec.ego_lon_m);
    line += ",\"ego_v\":";
    AppendDouble(line, rec.ego_v_mps);
    line += ",\"b\":";
    line += std::to_string(rec.behavior);
    line += ",\"lc\":";
    line += std::to_string(rec.lane_change);
    line += ",\"a\":";
    AppendDouble(line, rec.accel_mps2);
    line += ",\"eps\":";
    AppendDouble(line, rec.epsilon);
    line += ",\"ttc\":";
    AppendDouble(line, rec.ttc_s);
    line += ",\"rng\":";
    line += std::to_string(rec.rng_cursor);
    line += ",\"end\":";
    line += std::to_string(static_cast<int>(rec.end));
    if (rec.has_reward) {
      line += ",\"r\":[";
      AppendDouble(line, rec.r_safety);
      line += ",";
      AppendDouble(line, rec.r_efficiency);
      line += ",";
      AppendDouble(line, rec.r_comfort);
      line += ",";
      AppendDouble(line, rec.r_impact);
      line += ",";
      AppendDouble(line, rec.r_total);
      line += "]";
    }
    if (rec.has_neighbors) {
      line += ",\"n\":[";
      for (int i = 0; i < kRecordNeighbors; ++i) {
        const NeighborRecord& n = rec.neighbors[i];
        if (i > 0) line += ",";
        line += "[";
        line += std::to_string(n.id);
        line += ",";
        line += std::to_string(static_cast<int>(n.is_phantom));
        line += ",";
        AppendDouble(line, n.d_lat_m);
        line += ",";
        AppendDouble(line, n.d_lon_m);
        line += ",";
        AppendDouble(line, n.v_rel_mps);
        line += "]";
      }
      line += "]";
    }
    if (rec.has_prediction) {
      line += ",\"pred\":[";
      for (int i = 0; i < kRecordNeighbors; ++i) {
        const PredictionRecord& p = rec.prediction[i];
        if (i > 0) line += ",";
        line += "[";
        AppendDouble(line, p.d_lat_m);
        line += ",";
        AppendDouble(line, p.d_lon_m);
        line += ",";
        AppendDouble(line, p.v_rel_mps);
        line += "]";
      }
      line += "]";
    }
    if (rec.has_q) {
      line += ",\"q\":[";
      for (int i = 0; i < kRecordBehaviors; ++i) {
        if (i > 0) line += ",";
        AppendDouble(line, rec.q[i]);
      }
      line += "]";
    }
    if (rec.has_params) {
      line += ",\"xp\":[";
      for (int i = 0; i < kRecordBehaviors; ++i) {
        if (i > 0) line += ",";
        AppendDouble(line, rec.params[i]);
      }
      line += "]";
    }
    line += "}\n";
    os << line;
  }
}

bool ParseRecordLine(const std::string& line, StepRecord* out) {
  StepRecord rec;
  long long ll = 0;
  double d = 0.0;
  if (!ScanLong(line, "step", &ll)) return false;
  rec.step = static_cast<int32_t>(ll);
  if (!ScanDouble(line, "t", &d)) return false;
  rec.time_s = d;
  if (!ScanLong(line, "ego_lane", &ll)) return false;
  rec.ego_lane = static_cast<int32_t>(ll);
  if (!ScanDouble(line, "ego_lon", &d)) return false;
  rec.ego_lon_m = d;
  if (!ScanDouble(line, "ego_v", &d)) return false;
  rec.ego_v_mps = d;
  if (!ScanLong(line, "b", &ll)) return false;
  rec.behavior = static_cast<int32_t>(ll);
  if (!ScanLong(line, "lc", &ll)) return false;
  rec.lane_change = static_cast<int8_t>(ll);
  if (!ScanDouble(line, "a", &d)) return false;
  rec.accel_mps2 = d;
  if (!ScanDouble(line, "eps", &d)) return false;
  rec.epsilon = d;
  if (!ScanDouble(line, "ttc", &d)) return false;
  rec.ttc_s = d;
  if (!ScanLong(line, "rng", &ll)) return false;
  rec.rng_cursor = static_cast<uint64_t>(ll);
  if (!ScanLong(line, "end", &ll)) return false;
  rec.end = static_cast<EpisodeEnd>(ll);

  std::vector<double> nums;
  if (ScanNumberArray(line, "r", &nums)) {
    if (nums.size() != 5) return false;
    rec.r_safety = nums[0];
    rec.r_efficiency = nums[1];
    rec.r_comfort = nums[2];
    rec.r_impact = nums[3];
    rec.r_total = nums[4];
    rec.has_reward = 1;
  }
  if (ScanNumberArray(line, "n", &nums)) {
    if (nums.size() != static_cast<size_t>(5 * kRecordNeighbors)) {
      return false;
    }
    for (int i = 0; i < kRecordNeighbors; ++i) {
      NeighborRecord& n = rec.neighbors[i];
      n.id = static_cast<int32_t>(nums[5 * i]);
      n.is_phantom = static_cast<uint8_t>(nums[5 * i + 1]);
      n.d_lat_m = nums[5 * i + 2];
      n.d_lon_m = nums[5 * i + 3];
      n.v_rel_mps = nums[5 * i + 4];
    }
    rec.has_neighbors = 1;
  }
  if (ScanNumberArray(line, "pred", &nums)) {
    if (nums.size() != static_cast<size_t>(3 * kRecordNeighbors)) {
      return false;
    }
    for (int i = 0; i < kRecordNeighbors; ++i) {
      rec.prediction[i].d_lat_m = nums[3 * i];
      rec.prediction[i].d_lon_m = nums[3 * i + 1];
      rec.prediction[i].v_rel_mps = nums[3 * i + 2];
    }
    rec.has_prediction = 1;
  }
  if (ScanNumberArray(line, "q", &nums)) {
    if (nums.size() != static_cast<size_t>(kRecordBehaviors)) return false;
    for (int i = 0; i < kRecordBehaviors; ++i) rec.q[i] = nums[i];
    rec.has_q = 1;
  }
  if (ScanNumberArray(line, "xp", &nums)) {
    if (nums.size() != static_cast<size_t>(kRecordBehaviors)) return false;
    for (int i = 0; i < kRecordBehaviors; ++i) rec.params[i] = nums[i];
    rec.has_params = 1;
  }
  *out = rec;
  return true;
}

std::string ManifestJson(const FlightDump& dump,
                         const std::string& jsonl_filename) {
  std::ostringstream oss;
  oss << "{\"scenario\":\"" << JsonEscape(dump.ctx.scenario) << "\""
      << ",\"policy\":\"" << JsonEscape(dump.ctx.policy) << "\""
      << ",\"seed\":" << dump.ctx.seed
      << ",\"episode\":" << dump.ctx.episode_index << ",\"trigger\":\""
      << ToString(dump.trigger) << "\",\"end\":\"" << ToString(dump.end)
      << "\",\"records\":" << dump.records.size() << ",\"jsonl\":\""
      << JsonEscape(jsonl_filename) << "\"}";
  return oss.str();
}

bool LoadFlightDump(const std::string& manifest_path, FlightDump* out,
                    std::string* error) {
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) *error = msg;
    return false;
  };
  std::ifstream mf(manifest_path);
  if (!mf.good()) return fail("cannot open manifest: " + manifest_path);
  std::stringstream buf;
  buf << mf.rdbuf();
  const std::string manifest = buf.str();

  FlightDump dump;
  std::string str;
  long long ll = 0;
  if (!ScanString(manifest, "scenario", &dump.ctx.scenario)) {
    return fail("manifest missing \"scenario\"");
  }
  if (!ScanString(manifest, "policy", &dump.ctx.policy)) {
    return fail("manifest missing \"policy\"");
  }
  if (!ScanLong(manifest, "seed", &ll)) {
    return fail("manifest missing \"seed\"");
  }
  dump.ctx.seed = static_cast<uint64_t>(ll);
  if (!ScanLong(manifest, "episode", &ll)) {
    return fail("manifest missing \"episode\"");
  }
  dump.ctx.episode_index = static_cast<int>(ll);
  if (ScanString(manifest, "trigger", &str)) {
    dump.trigger = TriggerFromString(str);
  }
  if (ScanString(manifest, "end", &str)) dump.end = EndFromString(str);
  std::string jsonl_name;
  if (!ScanString(manifest, "jsonl", &jsonl_name)) {
    return fail("manifest missing \"jsonl\"");
  }

  const std::filesystem::path jsonl_path =
      std::filesystem::path(manifest_path).parent_path() / jsonl_name;
  std::ifstream rf(jsonl_path);
  if (!rf.good()) {
    return fail("cannot open records: " + jsonl_path.string());
  }
  std::string line;
  while (std::getline(rf, line)) {
    if (line.empty()) continue;
    StepRecord rec;
    if (!ParseRecordLine(line, &rec)) {
      return fail("malformed record line: " + line);
    }
    dump.records.push_back(rec);
  }
  *out = dump;
  return true;
}

}  // namespace head::obs
