#include "obs/profiler.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "obs/metrics.h"
#include "obs/perf_counters.h"

namespace head::obs {

namespace {

// ---- Per-thread aggregation shard ----
//
// Each recording thread owns one Shard: a fixed open-addressed table of
// (op, m, n, k, phase) slots. Only the owner writes; collectors read
// concurrently. Every field that both sides touch is an atomic accessed
// with relaxed ordering (the slot key is release-published / acquire-read
// so a collector that sees `op` non-null also sees the m/n/k/phase it was
// claimed with) — the whole structure is TSan-clean without a single lock
// on the record path.

constexpr size_t kSlots = 512;  // power of two; (op,shape,phase) keys
constexpr int kMaxProbe = 64;   // give up (count as dropped) after this

// Latency histogram: exact buckets for 0..3 ns, then 4 sub-buckets per
// power of two up to 2^36 ns (~69 s). Lower-edge representative values keep
// p50/p95 within 25% of truth with zero sample storage.
constexpr int kLog2Buckets = 34;
constexpr int kHistBuckets = 4 + kLog2Buckets * 4;

int HistIndex(uint64_t ns) {
  if (ns < 4) return static_cast<int>(ns);
  const int b = 63 - std::countl_zero(ns);  // floor log2, >= 2
  const int sub = static_cast<int>((ns >> (b - 2)) & 3);
  const int idx = 4 + (b - 2) * 4 + sub;
  return idx < kHistBuckets ? idx : kHistBuckets - 1;
}

uint64_t HistLowerEdge(int idx) {
  if (idx < 4) return static_cast<uint64_t>(idx);
  const int b = 2 + (idx - 4) / 4;
  const int sub = (idx - 4) % 4;
  return (uint64_t{1} << b) + static_cast<uint64_t>(sub) * (uint64_t{1} << (b - 2));
}

struct Slot {
  std::atomic<const char*> op{nullptr};  // release-published claim
  std::atomic<int> m{0}, n{0}, k{0};
  std::atomic<uint8_t> phase{0};
  std::atomic<int64_t> count{0};
  std::atomic<int64_t> flops{0};
  std::atomic<int64_t> bytes{0};
  std::atomic<uint64_t> total_ns{0};
  std::atomic<uint64_t> self_ns{0};
  std::atomic<uint64_t> min_ns{UINT64_MAX};
  std::atomic<uint64_t> max_ns{0};
  std::atomic<uint64_t> hist[kHistBuckets];
};

struct Shard {
  Slot slots[kSlots];
  std::atomic<uint64_t> root_total_ns{0};
  std::atomic<uint64_t> root_self_ns{0};
  std::atomic<int64_t> records{0};
  std::atomic<int64_t> dropped{0};
  PerfCounterGroup hw;       // owner-thread-opened; fd ops work cross-thread
  uint64_t hw_session = 0;   // owner-only: last session the group was armed
};

std::mutex g_shards_mu;
std::vector<std::unique_ptr<Shard>>& Shards() {
  static auto* shards = new std::vector<std::unique_ptr<Shard>>();
  return *shards;
}

thread_local Shard* t_shard = nullptr;

std::atomic<bool> g_hw_wanted{false};
std::atomic<uint64_t> g_session_id{0};  // bumped by StartProfiling
std::atomic<uint64_t> g_session_start_ns{0};
std::atomic<uint64_t> g_session_end_ns{0};

// Cumulative flop/byte counters feeding the Chrome counter tracks.
std::atomic<int64_t> g_cum_flops{0};
std::atomic<int64_t> g_cum_bytes{0};
std::atomic<uint64_t> g_last_sample_ns{0};
constexpr uint64_t kSampleIntervalNs = 500'000;  // 2 kHz cap
constexpr size_t kMaxSamples = 1 << 16;

struct CounterSample {
  uint64_t ts_ns;
  int64_t cum_flops;
  int64_t cum_bytes;
};
std::mutex g_samples_mu;
std::vector<CounterSample> g_samples;

std::mutex g_peaks_mu;
RooflinePeaks g_peaks;  // source stays "uncalibrated" until set/measured

Shard* GetShard() {
  Shard* shard = t_shard;
  if (shard == nullptr) {
    auto owned = std::make_unique<Shard>();
    shard = owned.get();
    std::lock_guard<std::mutex> lock(g_shards_mu);
    Shards().push_back(std::move(owned));
    t_shard = shard;
  }
  // Arm this thread's hardware counter group once per profiling session —
  // perf_event_open with pid=0 binds to the calling thread, so only the
  // shard owner can do this.
  const uint64_t session = g_session_id.load(std::memory_order_relaxed);
  if (shard->hw_session != session) {
    shard->hw_session = session;
    if (g_hw_wanted.load(std::memory_order_relaxed)) {
      if (shard->hw.open() || shard->hw.Open()) {
        shard->hw.Reset();
        shard->hw.Enable();
      }
    }
  }
  return shard;
}

uint64_t HashKey(const char* op, int m, int n, int k, uint8_t phase) {
  uint64_t h = reinterpret_cast<uintptr_t>(op);
  h ^= (static_cast<uint64_t>(static_cast<uint32_t>(m)) << 1) ^
       (static_cast<uint64_t>(static_cast<uint32_t>(n)) << 17) ^
       (static_cast<uint64_t>(static_cast<uint32_t>(k)) << 33) ^
       (static_cast<uint64_t>(phase) << 49);
  h *= 0x9e3779b97f4a7c15ULL;  // splitmix64 finisher
  h ^= h >> 31;
  return h;
}

Slot* FindSlot(Shard& shard, const char* op, int m, int n, int k,
               uint8_t phase) {
  const uint64_t h = HashKey(op, m, n, k, phase);
  for (int probe = 0; probe < kMaxProbe; ++probe) {
    Slot& slot = shard.slots[(h + static_cast<uint64_t>(probe)) & (kSlots - 1)];
    const char* cur = slot.op.load(std::memory_order_acquire);
    if (cur == op && slot.m.load(std::memory_order_relaxed) == m &&
        slot.n.load(std::memory_order_relaxed) == n &&
        slot.k.load(std::memory_order_relaxed) == k &&
        slot.phase.load(std::memory_order_relaxed) == phase) {
      return &slot;
    }
    if (cur == nullptr) {
      // Only the owning thread claims slots, so plain write-then-publish.
      slot.m.store(m, std::memory_order_relaxed);
      slot.n.store(n, std::memory_order_relaxed);
      slot.k.store(k, std::memory_order_relaxed);
      slot.phase.store(phase, std::memory_order_relaxed);
      slot.op.store(op, std::memory_order_release);
      return &slot;
    }
  }
  return nullptr;
}

void AtomicMin(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>& a, uint64_t v) {
  uint64_t cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void ZeroSlotStats(Slot& slot) {
  slot.count.store(0, std::memory_order_relaxed);
  slot.flops.store(0, std::memory_order_relaxed);
  slot.bytes.store(0, std::memory_order_relaxed);
  slot.total_ns.store(0, std::memory_order_relaxed);
  slot.self_ns.store(0, std::memory_order_relaxed);
  slot.min_ns.store(UINT64_MAX, std::memory_order_relaxed);
  slot.max_ns.store(0, std::memory_order_relaxed);
  for (auto& bucket : slot.hist) bucket.store(0, std::memory_order_relaxed);
}

void ResetAllStats() {
  std::lock_guard<std::mutex> lock(g_shards_mu);
  for (auto& shard : Shards()) {
    for (Slot& slot : shard->slots) ZeroSlotStats(slot);
    shard->root_total_ns.store(0, std::memory_order_relaxed);
    shard->root_self_ns.store(0, std::memory_order_relaxed);
    shard->records.store(0, std::memory_order_relaxed);
    shard->dropped.store(0, std::memory_order_relaxed);
  }
  g_cum_flops.store(0, std::memory_order_relaxed);
  g_cum_bytes.store(0, std::memory_order_relaxed);
  g_last_sample_ns.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> slock(g_samples_mu);
  g_samples.clear();
}

void MaybeSampleCounters(int64_t flops, int64_t bytes) {
  if (flops == 0 && bytes == 0) return;
  const int64_t cf = g_cum_flops.fetch_add(flops, std::memory_order_relaxed) + flops;
  const int64_t cb = g_cum_bytes.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  const uint64_t now = internal::NowNs();
  uint64_t last = g_last_sample_ns.load(std::memory_order_relaxed);
  if (now - last < kSampleIntervalNs) return;
  if (!g_last_sample_ns.compare_exchange_strong(last, now,
                                                std::memory_order_relaxed)) {
    return;  // another thread took this sampling slot
  }
  std::lock_guard<std::mutex> lock(g_samples_mu);
  if (g_samples.size() < kMaxSamples) g_samples.push_back({now, cf, cb});
}

const char* PhaseTag(ProfPhase phase) {
  return phase == ProfPhase::kBackward ? "bwd" : "fwd";
}

}  // namespace

namespace prof_internal {

std::atomic<bool> g_profiling_enabled{false};
thread_local ProfPhase t_phase = ProfPhase::kForward;
thread_local uint64_t* t_child_acc = nullptr;

void RecordOp(const char* op, ProfPhase phase, int m, int n, int k,
              uint64_t total_ns, uint64_t self_ns, int64_t flops,
              int64_t bytes, bool is_root) {
  Shard* shard = GetShard();
  shard->records.fetch_add(1, std::memory_order_relaxed);
  if (is_root) {
    shard->root_total_ns.fetch_add(total_ns, std::memory_order_relaxed);
    shard->root_self_ns.fetch_add(self_ns, std::memory_order_relaxed);
  }
  Slot* slot = FindSlot(*shard, op, m, n, k, static_cast<uint8_t>(phase));
  if (slot == nullptr) {
    shard->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  slot->count.fetch_add(1, std::memory_order_relaxed);
  slot->flops.fetch_add(flops, std::memory_order_relaxed);
  slot->bytes.fetch_add(bytes, std::memory_order_relaxed);
  slot->total_ns.fetch_add(total_ns, std::memory_order_relaxed);
  slot->self_ns.fetch_add(self_ns, std::memory_order_relaxed);
  AtomicMin(slot->min_ns, total_ns);
  AtomicMax(slot->max_ns, total_ns);
  slot->hist[HistIndex(total_ns)].fetch_add(1, std::memory_order_relaxed);
  MaybeSampleCounters(flops, bytes);
}

}  // namespace prof_internal

void OpScope::Begin(const char* op, int m, int n, int k, int64_t flops,
                    int64_t bytes) {
  op_ = op;
  m_ = m;
  n_ = n;
  k_ = k;
  flops_ = flops;
  bytes_ = bytes;
  phase_ = prof_internal::t_phase;
  child_ns_ = 0;
  parent_child_ = prof_internal::t_child_acc;
  prof_internal::t_child_acc = &child_ns_;
  start_ns_ = internal::NowNs();
}

void OpScope::End() {
  const uint64_t total = internal::NowNs() - start_ns_;
  prof_internal::t_child_acc = parent_child_;
  if (parent_child_ != nullptr) *parent_child_ += total;
  const uint64_t self = total > child_ns_ ? total - child_ns_ : 0;
  prof_internal::RecordOp(op_, phase_, m_, n_, k_, total, self, flops_,
                          bytes_, /*is_root=*/parent_child_ == nullptr);
}

void StartProfiling(const ProfilerOptions& options) {
  ResetAllStats();
  g_hw_wanted.store(options.hw_counters, std::memory_order_relaxed);
  g_session_id.fetch_add(1, std::memory_order_relaxed);
  // Pre-register the calling thread's shard (and arm its counters) now so
  // its allocation never lands inside the first profiled root's self time.
  // Worker threads still pay their one-time shard setup on first op.
  GetShard();
  g_session_start_ns.store(internal::NowNs(), std::memory_order_relaxed);
  g_session_end_ns.store(0, std::memory_order_relaxed);
  prof_internal::g_profiling_enabled.store(true, std::memory_order_relaxed);
}

void StopProfiling() {
  prof_internal::g_profiling_enabled.store(false, std::memory_order_relaxed);
  g_session_end_ns.store(internal::NowNs(), std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_shards_mu);
  for (auto& shard : Shards()) shard->hw.Disable();
}

void ResetProfile() { ResetAllStats(); }

void SetRooflinePeaks(const RooflinePeaks& peaks) {
  std::lock_guard<std::mutex> lock(g_peaks_mu);
  g_peaks = peaks;
}

namespace {

/// Portable fallback calibration: an unrolled multiply-add dependency-free
/// loop for a scalar flops floor, and a read+write sweep over an
/// out-of-cache buffer for stream bandwidth. Deliberately modest — the SIMD
/// kernel layer injects a much tighter peak via CalibrateProfilerRoofline().
RooflinePeaks MeasurePortablePeaks() {
  RooflinePeaks peaks;
  peaks.source = "portable-fallback";
  {
    constexpr int kIters = 1 << 21;
    double acc[8] = {1.0, 1.1, 1.2, 1.3, 1.4, 1.5, 1.6, 1.7};
    const double x = 1.0000001, y = 1e-12;
    const uint64_t t0 = internal::NowNs();
    for (int i = 0; i < kIters; ++i) {
      for (double& a : acc) a = a * x + y;
    }
    const uint64_t t1 = internal::NowNs();
    double sink = 0.0;
    for (double a : acc) sink += a;
    // flops = 2 per fma-shaped update; GFLOP/s = flops / ns.
    const double flops = 2.0 * 8.0 * kIters + (sink > 1e300 ? 1 : 0);
    peaks.gflops = t1 > t0 ? flops / static_cast<double>(t1 - t0) : 0.0;
  }
  peaks.gbps = MeasurePeakBandwidthGbps();
  return peaks;
}

}  // namespace

double MeasurePeakBandwidthGbps() {
  constexpr size_t kLen = 1 << 20;  // 8 MB of doubles, past L2
  std::vector<double> src(kLen, 1.5), dst(kLen, 0.0);
  constexpr int kPasses = 4;
  const uint64_t t0 = internal::NowNs();
  for (int p = 0; p < kPasses; ++p) {
    const double s = 1.0 + 1e-9 * p;
    for (size_t i = 0; i < kLen; ++i) dst[i] = src[i] * s;
  }
  const uint64_t t1 = internal::NowNs();
  const double bytes = 2.0 * sizeof(double) * kLen * kPasses + dst[0];
  return t1 > t0 ? bytes / static_cast<double>(t1 - t0) : 0.0;
}

RooflinePeaks GetRooflinePeaks() {
  {
    std::lock_guard<std::mutex> lock(g_peaks_mu);
    if (g_peaks.gflops > 0.0) return g_peaks;
  }
  RooflinePeaks measured = MeasurePortablePeaks();
  std::lock_guard<std::mutex> lock(g_peaks_mu);
  if (g_peaks.gflops <= 0.0) g_peaks = measured;
  return g_peaks;
}

double RooflineBoundGflops(double intensity, const RooflinePeaks& peaks) {
  if (peaks.gflops <= 0.0) return 0.0;
  if (intensity <= 0.0 || peaks.gbps <= 0.0) return peaks.gflops;
  return std::min(peaks.gflops, intensity * peaks.gbps);
}

namespace {

struct MergeAcc {
  OpStats stats;
  uint64_t hist[kHistBuckets] = {0};
};

uint64_t HistQuantile(const uint64_t* hist, double q) {
  uint64_t total = 0;
  for (int i = 0; i < kHistBuckets; ++i) total += hist[i];
  if (total == 0) return 0;
  const uint64_t target = static_cast<uint64_t>(q * static_cast<double>(total - 1)) + 1;
  uint64_t cum = 0;
  for (int i = 0; i < kHistBuckets; ++i) {
    cum += hist[i];
    if (cum >= target) return HistLowerEdge(i);
  }
  return HistLowerEdge(kHistBuckets - 1);
}

}  // namespace

ProfileReport CollectProfile() {
  ProfileReport report;
  report.roofline = GetRooflinePeaks();

  const uint64_t start = g_session_start_ns.load(std::memory_order_relaxed);
  uint64_t end = g_session_end_ns.load(std::memory_order_relaxed);
  if (end == 0) end = internal::NowNs();
  report.session_wall_ns = (start != 0 && end > start) ? end - start : 0;

  using Key = std::tuple<std::string, uint8_t, int, int, int>;
  std::map<Key, MergeAcc> merged;

  PerfCounterValues hw_sum;
  bool hw_any = false;

  std::lock_guard<std::mutex> lock(g_shards_mu);
  for (auto& shard : Shards()) {
    if (shard->records.load(std::memory_order_relaxed) > 0) ++report.threads;
    report.root_total_ns += shard->root_total_ns.load(std::memory_order_relaxed);
    report.root_self_ns += shard->root_self_ns.load(std::memory_order_relaxed);
    report.dropped_ops += shard->dropped.load(std::memory_order_relaxed);
    if (shard->hw.open()) {
      PerfCounterValues v;
      if (shard->hw.Read(&v)) {
        hw_any = true;
        hw_sum.cycles += v.cycles;
        hw_sum.instructions += v.instructions;
        hw_sum.cache_misses += v.cache_misses;
        hw_sum.branch_misses += v.branch_misses;
        hw_sum.enabled_ns += v.enabled_ns;
        hw_sum.running_ns += v.running_ns;
      }
    }
    for (Slot& slot : shard->slots) {
      const char* op = slot.op.load(std::memory_order_acquire);
      if (op == nullptr) continue;
      const int64_t count = slot.count.load(std::memory_order_relaxed);
      if (count == 0) continue;
      const Key key{op, slot.phase.load(std::memory_order_relaxed),
                    slot.m.load(std::memory_order_relaxed),
                    slot.n.load(std::memory_order_relaxed),
                    slot.k.load(std::memory_order_relaxed)};
      MergeAcc& acc = merged[key];
      OpStats& s = acc.stats;
      if (s.count == 0) {
        s.op = std::get<0>(key);
        s.phase = static_cast<ProfPhase>(std::get<1>(key));
        s.m = std::get<2>(key);
        s.n = std::get<3>(key);
        s.k = std::get<4>(key);
        s.min_ns = UINT64_MAX;
      }
      s.count += count;
      s.total_ns += slot.total_ns.load(std::memory_order_relaxed);
      s.self_ns += slot.self_ns.load(std::memory_order_relaxed);
      s.flops += slot.flops.load(std::memory_order_relaxed);
      s.bytes += slot.bytes.load(std::memory_order_relaxed);
      s.min_ns = std::min(s.min_ns, slot.min_ns.load(std::memory_order_relaxed));
      s.max_ns = std::max(s.max_ns, slot.max_ns.load(std::memory_order_relaxed));
      for (int i = 0; i < kHistBuckets; ++i) {
        acc.hist[i] += slot.hist[i].load(std::memory_order_relaxed);
      }
    }
  }

  report.coverage =
      report.root_total_ns > 0
          ? 1.0 - static_cast<double>(report.root_self_ns) /
                      static_cast<double>(report.root_total_ns)
          : 0.0;

  report.hw.available = hw_any;
  if (hw_any) {
    report.hw.status = "ok";
    report.hw.cycles = hw_sum.cycles;
    report.hw.instructions = hw_sum.instructions;
    report.hw.cache_misses = hw_sum.cache_misses;
    report.hw.branch_misses = hw_sum.branch_misses;
    report.hw.ipc = hw_sum.Ipc();
  } else if (!g_hw_wanted.load(std::memory_order_relaxed)) {
    report.hw.status = "disabled";
  } else {
    report.hw.status = PerfCountersStatus();
  }

  report.ops.reserve(merged.size());
  for (auto& [key, acc] : merged) {
    acc.stats.p50_ns = HistQuantile(acc.hist, 0.50);
    acc.stats.p95_ns = HistQuantile(acc.hist, 0.95);
    if (acc.stats.min_ns == UINT64_MAX) acc.stats.min_ns = 0;
    report.ops.push_back(std::move(acc.stats));
  }
  std::sort(report.ops.begin(), report.ops.end(),
            [](const OpStats& a, const OpStats& b) {
              if (a.self_ns != b.self_ns) return a.self_ns > b.self_ns;
              return a.op < b.op;
            });
  return report;
}

std::string ProfileToText(const ProfileReport& report, size_t top_n) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "== op profile: %d thread%s, wall %.3f ms, coverage %.1f%%, "
                "%" PRId64 " dropped ==\n",
                report.threads, report.threads == 1 ? "" : "s",
                report.session_wall_ns * 1e-6, report.coverage * 100.0,
                report.dropped_ops);
  out += line;
  std::snprintf(line, sizeof(line),
                "roofline: peak %.2f GFLOP/s, %.2f GB/s (%s)\n",
                report.roofline.gflops, report.roofline.gbps,
                report.roofline.source.c_str());
  out += line;
  if (report.hw.available) {
    std::snprintf(line, sizeof(line),
                  "hw: cycles=%" PRIu64 " instr=%" PRIu64 " ipc=%.2f "
                  "cache-miss=%" PRIu64 " branch-miss=%" PRIu64 "\n",
                  report.hw.cycles, report.hw.instructions, report.hw.ipc,
                  report.hw.cache_misses, report.hw.branch_misses);
  } else {
    std::snprintf(line, sizeof(line), "hw: unavailable (%s) — wall-clock only\n",
                  report.hw.status.c_str());
  }
  out += line;
  std::snprintf(line, sizeof(line),
                "%-26s %-3s %-18s %9s %10s %9s %9s %9s %10s %8s %6s %6s\n",
                "op", "ph", "shape", "count", "total_ms", "avg_us", "p50_us",
                "p95_us", "self_ms", "GFLOP/s", "AI", "%roof");
  out += line;
  size_t rows = 0;
  for (const OpStats& s : report.ops) {
    if (top_n != 0 && rows++ >= top_n) break;
    char shape[32];
    if (s.k > 0) {
      std::snprintf(shape, sizeof(shape), "%dx%dx%d", s.m, s.n, s.k);
    } else if (s.n > 0) {
      std::snprintf(shape, sizeof(shape), "%dx%d", s.m, s.n);
    } else if (s.m > 0) {
      std::snprintf(shape, sizeof(shape), "%d", s.m);
    } else {
      std::snprintf(shape, sizeof(shape), "-");
    }
    const double gflops = s.Gflops();
    const double ai = s.Intensity();
    const double bound = RooflineBoundGflops(ai, report.roofline);
    char roof[16];
    if (s.flops > 0 && bound > 0.0) {
      std::snprintf(roof, sizeof(roof), "%.1f", 100.0 * gflops / bound);
    } else {
      std::snprintf(roof, sizeof(roof), "-");
    }
    char ai_s[16];
    if (ai > 0.0) {
      std::snprintf(ai_s, sizeof(ai_s), "%.2f", ai);
    } else {
      std::snprintf(ai_s, sizeof(ai_s), "-");
    }
    std::snprintf(line, sizeof(line),
                  "%-26s %-3s %-18s %9" PRId64 " %10.3f %9.2f %9.2f %9.2f "
                  "%10.3f %8.2f %6s %6s\n",
                  s.op.c_str(), PhaseTag(s.phase), shape, s.count,
                  s.total_ns * 1e-6, s.AvgNs() * 1e-3, s.p50_ns * 1e-3,
                  s.p95_ns * 1e-3, s.self_ns * 1e-6, gflops, ai_s, roof);
    out += line;
  }
  if (top_n != 0 && report.ops.size() > top_n) {
    std::snprintf(line, sizeof(line), "... (%zu more ops)\n",
                  report.ops.size() - top_n);
    out += line;
  }
  return out;
}

std::string ProfileToJson(const ProfileReport& report) {
  std::string out;
  char buf[512];
  out += "{\"schema\":\"head-profile-v1\"";
  std::snprintf(buf, sizeof(buf),
                ",\"session_wall_ns\":%" PRIu64 ",\"root_total_ns\":%" PRIu64
                ",\"root_self_ns\":%" PRIu64
                ",\"coverage\":%.6f,\"threads\":%d,\"dropped_ops\":%" PRId64,
                report.session_wall_ns, report.root_total_ns,
                report.root_self_ns, report.coverage, report.threads,
                report.dropped_ops);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"hw\":{\"available\":%s,\"status\":\"%s\",\"cycles\":%" PRIu64
                ",\"instructions\":%" PRIu64 ",\"cache_misses\":%" PRIu64
                ",\"branch_misses\":%" PRIu64 ",\"ipc\":%.4f}",
                report.hw.available ? "true" : "false",
                JsonEscape(report.hw.status).c_str(), report.hw.cycles,
                report.hw.instructions, report.hw.cache_misses,
                report.hw.branch_misses, report.hw.ipc);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                ",\"roofline\":{\"gflops\":%.4f,\"gbps\":%.4f,\"source\":\"%s\"}",
                report.roofline.gflops, report.roofline.gbps,
                JsonEscape(report.roofline.source).c_str());
  out += buf;
  out += ",\"ops\":[";
  bool first = true;
  for (const OpStats& s : report.ops) {
    if (!first) out += ",";
    first = false;
    out += "{\"op\":\"" + JsonEscape(s.op) + "\"";
    std::snprintf(
        buf, sizeof(buf),
        ",\"phase\":\"%s\",\"m\":%d,\"n\":%d,\"k\":%d,\"count\":%" PRId64
        ",\"total_ns\":%" PRIu64 ",\"self_ns\":%" PRIu64
        ",\"avg_ns\":%.1f,\"p50_ns\":%" PRIu64 ",\"p95_ns\":%" PRIu64
        ",\"min_ns\":%" PRIu64 ",\"max_ns\":%" PRIu64 ",\"flops\":%" PRId64
        ",\"bytes\":%" PRId64 ",\"gflops\":%.4f,\"intensity\":%.4f}",
        PhaseTag(s.phase), s.m, s.n, s.k, s.count, s.total_ns, s.self_ns,
        s.AvgNs(), s.p50_ns, s.p95_ns, s.min_ns, s.max_ns, s.flops, s.bytes,
        s.Gflops(), s.Intensity());
    out += buf;
  }
  out += "]}\n";
  return out;
}

bool WriteProfileJsonFile(const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  os << ProfileToJson(CollectProfile());
  return os.good();
}

namespace {

std::string NsAsUs(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

bool WriteChromeTraceWithCountersFile(const std::string& path) {
  std::ofstream os(path);
  if (!os.good()) return false;
  const std::vector<TraceEvent> events = DrainTraceEvents();
  std::vector<CounterSample> samples;
  {
    std::lock_guard<std::mutex> lock(g_samples_mu);
    samples = g_samples;
  }
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << e.name << "\",\"cat\":\"head\",\"ph\":\"X\""
       << ",\"pid\":0,\"tid\":" << e.tid << ",\"ts\":" << NsAsUs(e.start_ns)
       << ",\"dur\":" << NsAsUs(e.dur_ns)
       << ",\"args\":{\"depth\":" << e.depth << "}}";
  }
  // Rate tracks: each sample pair yields an interval-average GFLOP/s and
  // GB/s counter value stamped at the interval end.
  char buf[256];
  for (size_t i = 1; i < samples.size(); ++i) {
    const CounterSample& a = samples[i - 1];
    const CounterSample& b = samples[i];
    if (b.ts_ns <= a.ts_ns) continue;
    const double dt = static_cast<double>(b.ts_ns - a.ts_ns);
    const double gflops = static_cast<double>(b.cum_flops - a.cum_flops) / dt;
    const double gbps = static_cast<double>(b.cum_bytes - a.cum_bytes) / dt;
    if (!first) os << ",";
    first = false;
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"achieved GFLOP/s\",\"cat\":\"head\",\"ph\":\"C\""
                  ",\"pid\":0,\"tid\":0,\"ts\":%s,\"args\":{\"gflops\":%.3f}}",
                  NsAsUs(b.ts_ns).c_str(), gflops);
    os << buf << ",";
    std::snprintf(buf, sizeof(buf),
                  "{\"name\":\"moved GB/s\",\"cat\":\"head\",\"ph\":\"C\""
                  ",\"pid\":0,\"tid\":0,\"ts\":%s,\"args\":{\"gbps\":%.3f}}",
                  NsAsUs(b.ts_ns).c_str(), gbps);
    os << buf;
  }
  os << "]}\n";
  return os.good();
}

}  // namespace head::obs
