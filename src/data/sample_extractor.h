// Turns a stream of (sensor frame, ground-truth snapshot) pairs into
// supervised one-step prediction samples: the completed spatial-temporal
// graph at t plus the true relative states of the targets at t+1.
#ifndef HEAD_DATA_SAMPLE_EXTRACTOR_H_
#define HEAD_DATA_SAMPLE_EXTRACTOR_H_

#include <optional>
#include <vector>

#include "perception/predictor.h"
#include "sensor/sensor_model.h"

namespace head::data {

class SampleExtractor {
 public:
  SampleExtractor(const RoadConfig& road, const sensor::SensorConfig& sensor,
                  int history_z, perception::FeatureScale scale = {},
                  bool use_phantoms = true);

  /// Feeds the frame at time t. Returns the completed sample for time t−1
  /// (whose ground truth is this frame) once enough history exists.
  std::optional<perception::PredictionSample> Push(
      const VehicleState& ego,
      const std::vector<sim::VehicleSnapshot>& observed,
      const std::vector<sim::VehicleSnapshot>& ground_truth);

  void Reset();

 private:
  RoadConfig road_;
  sensor::SensorConfig sensor_;
  perception::FeatureScale scale_;
  bool use_phantoms_;
  perception::HistoryBuffer history_;
  int frames_seen_ = 0;
  /// Graph built at the previous step, waiting for its ground truth.
  std::optional<perception::StGraph> pending_graph_;
  VehicleState pending_ego_;
};

}  // namespace head::data

#endif  // HEAD_DATA_SAMPLE_EXTRACTOR_H_
