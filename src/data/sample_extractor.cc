#include "data/sample_extractor.h"

namespace head::data {

SampleExtractor::SampleExtractor(const RoadConfig& road,
                                 const sensor::SensorConfig& sensor,
                                 int history_z,
                                 perception::FeatureScale scale,
                                 bool use_phantoms)
    : road_(road),
      sensor_(sensor),
      scale_(scale),
      use_phantoms_(use_phantoms),
      history_(history_z) {}

void SampleExtractor::Reset() {
  history_.Clear();
  frames_seen_ = 0;
  pending_graph_.reset();
}

std::optional<perception::PredictionSample> SampleExtractor::Push(
    const VehicleState& ego,
    const std::vector<sim::VehicleSnapshot>& observed,
    const std::vector<sim::VehicleSnapshot>& ground_truth) {
  std::optional<perception::PredictionSample> out;

  // Complete the pending sample with this frame's ground truth.
  if (pending_graph_.has_value()) {
    perception::PredictionSample sample;
    sample.graph = std::move(*pending_graph_);
    pending_graph_.reset();
    for (int i = 0; i < perception::kNumAreas; ++i) {
      sample.truth.valid[i] = false;
      if (sample.graph.target_is_phantom[i]) continue;  // masked (Eq. 14)
      const VehicleId id = sample.graph.target_ids[i];
      for (const sim::VehicleSnapshot& v : ground_truth) {
        if (v.id != id) continue;
        sample.truth.valid[i] = true;
        // Relative to the ego at time t (the step the graph was built at).
        sample.truth.value[i] = {
            DLat(v.state, pending_ego_, road_.lane_width_m),
            DLon(v.state, pending_ego_), RelV(v.state, pending_ego_)};
        break;
      }
    }
    bool any_valid = false;
    for (bool v : sample.truth.valid) any_valid |= v;
    if (any_valid) out = std::move(sample);
  }

  // Ingest the new frame and stage the next sample.
  perception::ObservationFrame frame;
  frame.ego = ego;
  frame.observed = observed;
  history_.Push(std::move(frame));
  ++frames_seen_;
  if (frames_seen_ >= history_.capacity()) {
    const perception::CompletedScene scene = perception::ConstructPhantoms(
        history_, road_, sensor_.range_m, use_phantoms_);
    pending_graph_ = perception::BuildStGraph(scene, road_, scale_);
    pending_ego_ = ego;
  }
  return out;
}

}  // namespace head::data
