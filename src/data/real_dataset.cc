#include "data/real_dataset.h"

#include <algorithm>

#include "common/check.h"
#include "data/sample_extractor.h"
#include "decision/idm_lc.h"

namespace head::data {

RealDatasetConfig RealDatasetConfig::Default() {
  RealDatasetConfig c;
  c.sim.road.length_m = 1140.0;  // the REAL segment is 1.14 km, six lanes
  c.sim.road.num_lanes = 6;
  c.sim.spawn.density_veh_per_km = 180.0;
  c.sensor.range_m = 100.0;
  return c;
}

RealDataset GenerateRealDataset(const RealDatasetConfig& config) {
  HEAD_CHECK_GT(config.episodes, 0);
  Rng noise_rng(config.seed ^ 0x5eed);
  std::vector<perception::PredictionSample> samples;

  sim::Simulation sim(config.sim, config.seed);
  decision::IdmLcPolicy observer(
      decision::RuleBasedConfig::ForRoad(config.sim.road));
  SampleExtractor extractor(config.sim.road, config.sensor, config.history_z);

  for (int ep = 0; ep < config.episodes; ++ep) {
    sim.Reset(config.seed + 31 * ep);
    observer.OnEpisodeStart();
    extractor.Reset();
    double prev_accel = 0.0;
    for (int step = 0; step < config.max_steps_per_episode; ++step) {
      const std::vector<sim::VehicleSnapshot> global = sim.GlobalSnapshot();
      std::vector<sim::VehicleSnapshot> observed = sensor::Observe(
          global, sim.ego_state(), config.sensor, config.sim.road);
      if (config.obs_noise_pos_m > 0.0 || config.obs_noise_v_mps > 0.0) {
        for (sim::VehicleSnapshot& v : observed) {
          v.state.lon_m += noise_rng.Normal(0.0, config.obs_noise_pos_m);
          v.state.v_mps += noise_rng.Normal(0.0, config.obs_noise_v_mps);
        }
      }
      std::optional<perception::PredictionSample> sample =
          extractor.Push(sim.ego_state(), observed, global);
      if (sample.has_value()) samples.push_back(std::move(*sample));

      decision::EgoView view{sim.ego_state(), observed, prev_accel};
      const Maneuver m = observer.Decide(view);
      prev_accel = m.accel_mps2;
      if (sim.Step(m) != sim::EpisodeStatus::kRunning) break;
    }
  }

  // Deterministic shuffle then split (the paper splits REAL 4:1).
  Rng shuffle_rng(config.seed ^ 0xD47A);
  std::shuffle(samples.begin(), samples.end(), shuffle_rng.engine());
  const size_t train_count = static_cast<size_t>(
      config.train_fraction * static_cast<double>(samples.size()));
  RealDataset out;
  out.train.assign(samples.begin(), samples.begin() + train_count);
  out.test.assign(samples.begin() + train_count, samples.end());
  return out;
}

std::vector<perception::MultiStepSample> GenerateMultiStepSamples(
    const RealDatasetConfig& config, int horizon) {
  HEAD_CHECK_GT(horizon, 0);
  std::vector<perception::MultiStepSample> samples;

  sim::Simulation sim(config.sim, config.seed);
  decision::IdmLcPolicy observer(
      decision::RuleBasedConfig::ForRoad(config.sim.road));

  for (int ep = 0; ep < config.episodes; ++ep) {
    sim.Reset(config.seed + 31 * ep);
    observer.OnEpisodeStart();

    // Record the whole episode first: ego states + sensor frames + truth.
    std::vector<VehicleState> ego_states;
    std::vector<std::vector<sim::VehicleSnapshot>> observed_frames;
    std::vector<std::vector<sim::VehicleSnapshot>> truth_frames;
    double prev_accel = 0.0;
    for (int step = 0; step < config.max_steps_per_episode; ++step) {
      const std::vector<sim::VehicleSnapshot> global = sim.GlobalSnapshot();
      std::vector<sim::VehicleSnapshot> observed = sensor::Observe(
          global, sim.ego_state(), config.sensor, config.sim.road);
      ego_states.push_back(sim.ego_state());
      observed_frames.push_back(observed);
      truth_frames.push_back(global);
      decision::EgoView view{sim.ego_state(), std::move(observed),
                             prev_accel};
      const Maneuver m = observer.Decide(view);
      prev_accel = m.accel_mps2;
      if (sim.Step(m) != sim::EpisodeStatus::kRunning) break;
    }

    // Build one sample per eligible base step t.
    const int n = static_cast<int>(ego_states.size());
    perception::HistoryBuffer buffer(config.history_z);
    for (int t = 0; t < n; ++t) {
      buffer.Push(
          perception::ObservationFrame{ego_states[t], observed_frames[t]});
      if (t + 1 < config.history_z || t + horizon >= n) continue;
      const perception::CompletedScene scene = perception::ConstructPhantoms(
          buffer, config.sim.road, config.sensor.range_m);
      perception::MultiStepSample sample;
      sample.graph = perception::BuildStGraph(scene, config.sim.road);
      sample.truth.resize(horizon);
      sample.valid.resize(horizon);
      bool any_valid = false;
      for (int h = 0; h < horizon; ++h) {
        for (int i = 0; i < perception::kNumAreas; ++i) {
          sample.valid[h][i] = false;
          if (sample.graph.target_is_phantom[i]) continue;
          const VehicleId id = sample.graph.target_ids[i];
          for (const sim::VehicleSnapshot& v : truth_frames[t + h + 1]) {
            if (v.id != id) continue;
            sample.valid[h][i] = true;
            any_valid = true;
            sample.truth[h][i] = {
                DLat(v.state, ego_states[t], config.sim.road.lane_width_m),
                DLon(v.state, ego_states[t]), RelV(v.state, ego_states[t])};
            break;
          }
        }
      }
      if (any_valid) samples.push_back(std::move(sample));
    }
  }
  return samples;
}

}  // namespace head::data
