// The REAL-surrogate trajectory corpus. The paper evaluates its predictors
// on NGSIM US-101 + I-80 ("REAL": a 1.14 km six-lane highway segment).
// NGSIM recordings cannot be shipped, so we synthesize an equivalent corpus:
// heterogeneous IDM/MOBIL traffic on the same geometry, observed from a
// rule-driven ego through the same limited/occluded sensor — yielding the
// same kind of ego-relative interaction histories the paper's models train
// on (DESIGN.md §3 documents the substitution).
#ifndef HEAD_DATA_REAL_DATASET_H_
#define HEAD_DATA_REAL_DATASET_H_

#include <vector>

#include "perception/multi_step.h"
#include "perception/predictor.h"
#include "sensor/sensor_model.h"
#include "sim/simulation.h"

namespace head::data {

struct RealDatasetConfig {
  sim::SimConfig sim;              ///< defaults to the REAL geometry below
  sensor::SensorConfig sensor;     ///< R = 100 m
  int episodes = 6;
  int max_steps_per_episode = 400;
  int history_z = 5;
  double train_fraction = 0.8;     ///< paper splits REAL 4:1
  /// Gaussian position/velocity observation noise applied to sensor output
  /// (NGSIM-like measurement noise); 0 disables.
  double obs_noise_pos_m = 0.0;
  double obs_noise_v_mps = 0.0;
  uint64_t seed = 20230101;

  static RealDatasetConfig Default();
};

struct RealDataset {
  std::vector<perception::PredictionSample> train;
  std::vector<perception::PredictionSample> test;
};

/// Generates the corpus: runs episodes with an IDM/MOBIL-driven observer
/// vehicle and extracts one-step prediction samples.
RealDataset GenerateRealDataset(const RealDatasetConfig& config);

/// Multi-horizon variant: each sample carries the true relative target
/// states for horizons 1..`horizon` (used by the prediction-horizon
/// ablation that regenerates the accuracy-decay argument of Sec. III-A).
std::vector<perception::MultiStepSample> GenerateMultiStepSamples(
    const RealDatasetConfig& config, int horizon);

}  // namespace head::data

#endif  // HEAD_DATA_REAL_DATASET_H_
