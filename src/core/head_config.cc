#include "core/head_config.h"

namespace head::core {

const char* HeadVariant::Name() const {
  if (use_pvc && use_lst_gat && use_bp_dqn && use_impact_reward) {
    return "HEAD";
  }
  if (!use_pvc) return "HEAD-w/o-PVC";
  if (!use_lst_gat) return "HEAD-w/o-LST-GAT";
  if (!use_bp_dqn) return "HEAD-w/o-BP-DQN";
  return "HEAD-w/o-IMP";
}

rl::EnvConfig HeadConfig::MakeEnvConfig(const sim::SimConfig& sim) const {
  rl::EnvConfig env;
  env.sim = sim;
  env.sim.road = road;
  env.sensor = sensor;
  env.scale = scale;
  env.reward = reward;
  env.reward.use_impact = variant.use_impact_reward;
  env.history_z = history_z;
  env.use_pvc = variant.use_pvc;
  env.use_prediction = variant.use_lst_gat;
  return env;
}

}  // namespace head::core
