// HeadAgent — the public inference-time API of the framework. Owns the
// enhanced-perception pipeline (history buffer → phantom construction →
// spatial-temporal graph → LST-GAT prediction) and a trained maneuver-
// decision agent, and exposes them as a decision::Policy: sensor view in,
// maneuver out, once per Δt (Fig. 1).
//
// The same wrapper also hosts any rl::PamdpAgent (P-DQN, P-DDPG, DRL-SC, …)
// so every learned method runs through an identical evaluation path.
#ifndef HEAD_CORE_HEAD_AGENT_H_
#define HEAD_CORE_HEAD_AGENT_H_

#include <memory>
#include <string>

#include "core/head_config.h"
#include "decision/policy.h"

namespace head::core {

class HeadAgent : public decision::Policy {
 public:
  /// `predictor` may be shared with other agents (it is only read); it may
  /// be null when the variant disables LST-GAT. `agent` must be trained (or
  /// trainable through the rl::DrivingEnv path) and is owned.
  HeadAgent(const HeadConfig& config,
            std::shared_ptr<const perception::StatePredictor> predictor,
            std::shared_ptr<rl::PamdpAgent> agent);

  std::string name() const override;
  void OnEpisodeStart() override;
  Maneuver Decide(const decision::EgoView& view) override;

  /// The augmented state the agent saw at the last Decide() call.
  const rl::AugmentedState& last_state() const { return last_state_; }
  const perception::StGraph& last_graph() const { return graph_; }
  rl::PamdpAgent& agent() { return *agent_; }
  const HeadConfig& config() const { return config_; }

  /// Builds s⁺ from a sensor view without acting (used by tools/tests).
  rl::AugmentedState Perceive(const decision::EgoView& view);

 private:
  HeadConfig config_;
  std::shared_ptr<const perception::StatePredictor> predictor_;
  std::shared_ptr<rl::PamdpAgent> agent_;
  perception::HistoryBuffer history_;
  perception::StGraph graph_;
  rl::AugmentedState last_state_;
  Rng act_rng_;
};

}  // namespace head::core

#endif  // HEAD_CORE_HEAD_AGENT_H_
