#include "core/head_agent.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/span.h"

namespace head::core {

HeadAgent::HeadAgent(const HeadConfig& config,
                     std::shared_ptr<const perception::StatePredictor> predictor,
                     std::shared_ptr<rl::PamdpAgent> agent)
    : config_(config),
      predictor_(std::move(predictor)),
      agent_(std::move(agent)),
      history_(config.history_z),
      act_rng_(0xC0FFEE) {
  HEAD_CHECK(agent_ != nullptr);
  if (config_.variant.use_lst_gat) {
    HEAD_CHECK_MSG(predictor_ != nullptr,
                   "LST-GAT variant requires a predictor");
  }
}

std::string HeadAgent::name() const { return config_.variant.Name(); }

void HeadAgent::OnEpisodeStart() { history_.Clear(); }

rl::AugmentedState HeadAgent::Perceive(const decision::EgoView& view) {
  perception::ObservationFrame frame;
  frame.ego = view.ego;
  frame.observed = view.observed;
  history_.Push(std::move(frame));
  perception::CompletedScene scene;
  {
    HEAD_SPAN("perception.phantom");
    scene = perception::ConstructPhantoms(history_, config_.road,
                                          config_.sensor.range_m,
                                          config_.variant.use_pvc);
  }
  {
    HEAD_SPAN("perception.graph");
    graph_ = perception::BuildStGraph(scene, config_.road, config_.scale);
  }
  perception::Prediction prediction{};
  if (config_.variant.use_lst_gat) {
    prediction = predictor_->Predict(graph_);  // spans itself
  }
  HEAD_SPAN("perception.augment");
  return rl::BuildAugmentedState(graph_, prediction, config_.road,
                                 config_.scale,
                                 config_.variant.use_lst_gat);
}

Maneuver HeadAgent::Decide(const decision::EgoView& view) {
  HEAD_SPAN("agent.act");
  static obs::Histogram& latency = obs::LatencyHistogram("agent.act");
  static obs::Counter& decisions = obs::GetCounter("agent.decisions");
  obs::ScopedTimer timer(latency);
  decisions.Add();
  last_state_ = Perceive(view);
  rl::AgentAction action;
  {
    HEAD_SPAN("rl.act");
    action = agent_->Act(last_state_, /*epsilon=*/0.0, act_rng_);
  }
  if (obs::RecordingEnabled()) {
    obs::ScratchRecord().rng_cursor = act_rng_.draws();
  }
  return action.maneuver;
}

}  // namespace head::core
