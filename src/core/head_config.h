// Top-level configuration of the HEAD framework: environment, perception,
// decision and reward settings plus the ablation switches of Table II.
#ifndef HEAD_CORE_HEAD_CONFIG_H_
#define HEAD_CORE_HEAD_CONFIG_H_

#include "perception/lst_gat.h"
#include "rl/env.h"
#include "rl/pdqn_agent.h"

namespace head::core {

/// Which components are active — the HEAD variants of Table II.
struct HeadVariant {
  bool use_pvc = true;         ///< phantom vehicle construction
  bool use_lst_gat = true;     ///< predicted future states in s⁺
  bool use_bp_dqn = true;      ///< branched nets (false ⇒ vanilla P-DQN)
  bool use_impact_reward = true;

  static HeadVariant Full() { return {}; }
  static HeadVariant WithoutPvc() { return {false, true, true, true}; }
  static HeadVariant WithoutLstGat() { return {true, false, true, true}; }
  static HeadVariant WithoutBpDqn() { return {true, true, false, true}; }
  static HeadVariant WithoutImpact() { return {true, true, true, false}; }

  const char* Name() const;
};

struct HeadConfig {
  RoadConfig road;
  sensor::SensorConfig sensor;          ///< R = 100 m by default
  perception::FeatureScale scale;
  perception::LstGatConfig lst_gat;
  rl::PdqnConfig pdqn;
  rl::RewardConfig reward;
  int history_z = 5;
  HeadVariant variant;

  /// Environment config consistent with this HEAD configuration.
  rl::EnvConfig MakeEnvConfig(const sim::SimConfig& sim) const;
};

}  // namespace head::core

#endif  // HEAD_CORE_HEAD_CONFIG_H_
