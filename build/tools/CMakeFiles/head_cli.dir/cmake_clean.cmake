file(REMOVE_RECURSE
  "CMakeFiles/head_cli.dir/head_cli.cc.o"
  "CMakeFiles/head_cli.dir/head_cli.cc.o.d"
  "head_cli"
  "head_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
