# Empty compiler generated dependencies file for head_cli.
# This may be replaced when dependencies are built.
