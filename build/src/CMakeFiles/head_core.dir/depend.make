# Empty dependencies file for head_core.
# This may be replaced when dependencies are built.
