file(REMOVE_RECURSE
  "libhead_core.a"
)
