file(REMOVE_RECURSE
  "CMakeFiles/head_core.dir/core/head_agent.cc.o"
  "CMakeFiles/head_core.dir/core/head_agent.cc.o.d"
  "CMakeFiles/head_core.dir/core/head_config.cc.o"
  "CMakeFiles/head_core.dir/core/head_config.cc.o.d"
  "libhead_core.a"
  "libhead_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
