# Empty compiler generated dependencies file for head_data.
# This may be replaced when dependencies are built.
