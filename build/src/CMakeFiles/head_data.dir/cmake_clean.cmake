file(REMOVE_RECURSE
  "CMakeFiles/head_data.dir/data/real_dataset.cc.o"
  "CMakeFiles/head_data.dir/data/real_dataset.cc.o.d"
  "CMakeFiles/head_data.dir/data/sample_extractor.cc.o"
  "CMakeFiles/head_data.dir/data/sample_extractor.cc.o.d"
  "libhead_data.a"
  "libhead_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
