file(REMOVE_RECURSE
  "libhead_data.a"
)
