file(REMOVE_RECURSE
  "libhead_sim.a"
)
