file(REMOVE_RECURSE
  "CMakeFiles/head_sim.dir/sim/acc.cc.o"
  "CMakeFiles/head_sim.dir/sim/acc.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/idm.cc.o"
  "CMakeFiles/head_sim.dir/sim/idm.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/krauss.cc.o"
  "CMakeFiles/head_sim.dir/sim/krauss.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/lane_change.cc.o"
  "CMakeFiles/head_sim.dir/sim/lane_change.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/road.cc.o"
  "CMakeFiles/head_sim.dir/sim/road.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/scenario.cc.o"
  "CMakeFiles/head_sim.dir/sim/scenario.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/head_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/spawner.cc.o"
  "CMakeFiles/head_sim.dir/sim/spawner.cc.o.d"
  "CMakeFiles/head_sim.dir/sim/vehicle.cc.o"
  "CMakeFiles/head_sim.dir/sim/vehicle.cc.o.d"
  "libhead_sim.a"
  "libhead_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
