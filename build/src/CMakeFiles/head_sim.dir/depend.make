# Empty dependencies file for head_sim.
# This may be replaced when dependencies are built.
