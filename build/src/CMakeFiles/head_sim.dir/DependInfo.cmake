
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/acc.cc" "src/CMakeFiles/head_sim.dir/sim/acc.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/acc.cc.o.d"
  "/root/repo/src/sim/idm.cc" "src/CMakeFiles/head_sim.dir/sim/idm.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/idm.cc.o.d"
  "/root/repo/src/sim/krauss.cc" "src/CMakeFiles/head_sim.dir/sim/krauss.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/krauss.cc.o.d"
  "/root/repo/src/sim/lane_change.cc" "src/CMakeFiles/head_sim.dir/sim/lane_change.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/lane_change.cc.o.d"
  "/root/repo/src/sim/road.cc" "src/CMakeFiles/head_sim.dir/sim/road.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/road.cc.o.d"
  "/root/repo/src/sim/scenario.cc" "src/CMakeFiles/head_sim.dir/sim/scenario.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/scenario.cc.o.d"
  "/root/repo/src/sim/simulation.cc" "src/CMakeFiles/head_sim.dir/sim/simulation.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/simulation.cc.o.d"
  "/root/repo/src/sim/spawner.cc" "src/CMakeFiles/head_sim.dir/sim/spawner.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/spawner.cc.o.d"
  "/root/repo/src/sim/vehicle.cc" "src/CMakeFiles/head_sim.dir/sim/vehicle.cc.o" "gcc" "src/CMakeFiles/head_sim.dir/sim/vehicle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/head_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
