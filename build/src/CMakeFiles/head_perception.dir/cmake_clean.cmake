file(REMOVE_RECURSE
  "CMakeFiles/head_perception.dir/perception/baselines/ed_lstm.cc.o"
  "CMakeFiles/head_perception.dir/perception/baselines/ed_lstm.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/baselines/gas_led.cc.o"
  "CMakeFiles/head_perception.dir/perception/baselines/gas_led.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/baselines/lstm_mlp.cc.o"
  "CMakeFiles/head_perception.dir/perception/baselines/lstm_mlp.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/lst_gat.cc.o"
  "CMakeFiles/head_perception.dir/perception/lst_gat.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/multi_step.cc.o"
  "CMakeFiles/head_perception.dir/perception/multi_step.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/neighbor.cc.o"
  "CMakeFiles/head_perception.dir/perception/neighbor.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/phantom.cc.o"
  "CMakeFiles/head_perception.dir/perception/phantom.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/predictor.cc.o"
  "CMakeFiles/head_perception.dir/perception/predictor.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/st_graph.cc.o"
  "CMakeFiles/head_perception.dir/perception/st_graph.cc.o.d"
  "CMakeFiles/head_perception.dir/perception/trainer.cc.o"
  "CMakeFiles/head_perception.dir/perception/trainer.cc.o.d"
  "libhead_perception.a"
  "libhead_perception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_perception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
