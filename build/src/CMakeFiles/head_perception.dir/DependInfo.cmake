
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/perception/baselines/ed_lstm.cc" "src/CMakeFiles/head_perception.dir/perception/baselines/ed_lstm.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/baselines/ed_lstm.cc.o.d"
  "/root/repo/src/perception/baselines/gas_led.cc" "src/CMakeFiles/head_perception.dir/perception/baselines/gas_led.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/baselines/gas_led.cc.o.d"
  "/root/repo/src/perception/baselines/lstm_mlp.cc" "src/CMakeFiles/head_perception.dir/perception/baselines/lstm_mlp.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/baselines/lstm_mlp.cc.o.d"
  "/root/repo/src/perception/lst_gat.cc" "src/CMakeFiles/head_perception.dir/perception/lst_gat.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/lst_gat.cc.o.d"
  "/root/repo/src/perception/multi_step.cc" "src/CMakeFiles/head_perception.dir/perception/multi_step.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/multi_step.cc.o.d"
  "/root/repo/src/perception/neighbor.cc" "src/CMakeFiles/head_perception.dir/perception/neighbor.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/neighbor.cc.o.d"
  "/root/repo/src/perception/phantom.cc" "src/CMakeFiles/head_perception.dir/perception/phantom.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/phantom.cc.o.d"
  "/root/repo/src/perception/predictor.cc" "src/CMakeFiles/head_perception.dir/perception/predictor.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/predictor.cc.o.d"
  "/root/repo/src/perception/st_graph.cc" "src/CMakeFiles/head_perception.dir/perception/st_graph.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/st_graph.cc.o.d"
  "/root/repo/src/perception/trainer.cc" "src/CMakeFiles/head_perception.dir/perception/trainer.cc.o" "gcc" "src/CMakeFiles/head_perception.dir/perception/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/head_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
