file(REMOVE_RECURSE
  "libhead_perception.a"
)
