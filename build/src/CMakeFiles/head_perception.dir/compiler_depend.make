# Empty compiler generated dependencies file for head_perception.
# This may be replaced when dependencies are built.
