file(REMOVE_RECURSE
  "libhead_common.a"
)
