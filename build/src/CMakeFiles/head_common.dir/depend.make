# Empty dependencies file for head_common.
# This may be replaced when dependencies are built.
