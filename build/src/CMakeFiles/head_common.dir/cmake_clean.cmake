file(REMOVE_RECURSE
  "CMakeFiles/head_common.dir/common/check.cc.o"
  "CMakeFiles/head_common.dir/common/check.cc.o.d"
  "CMakeFiles/head_common.dir/common/logging.cc.o"
  "CMakeFiles/head_common.dir/common/logging.cc.o.d"
  "CMakeFiles/head_common.dir/common/rng.cc.o"
  "CMakeFiles/head_common.dir/common/rng.cc.o.d"
  "CMakeFiles/head_common.dir/common/types.cc.o"
  "CMakeFiles/head_common.dir/common/types.cc.o.d"
  "libhead_common.a"
  "libhead_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
