
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/autograd.cc" "src/CMakeFiles/head_nn.dir/nn/autograd.cc.o" "gcc" "src/CMakeFiles/head_nn.dir/nn/autograd.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/head_nn.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/head_nn.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/lstm.cc" "src/CMakeFiles/head_nn.dir/nn/lstm.cc.o" "gcc" "src/CMakeFiles/head_nn.dir/nn/lstm.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/head_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/head_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/serialize.cc" "src/CMakeFiles/head_nn.dir/nn/serialize.cc.o" "gcc" "src/CMakeFiles/head_nn.dir/nn/serialize.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/head_nn.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/head_nn.dir/nn/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/head_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
