file(REMOVE_RECURSE
  "libhead_nn.a"
)
