# Empty dependencies file for head_nn.
# This may be replaced when dependencies are built.
