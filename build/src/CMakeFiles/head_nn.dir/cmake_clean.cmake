file(REMOVE_RECURSE
  "CMakeFiles/head_nn.dir/nn/autograd.cc.o"
  "CMakeFiles/head_nn.dir/nn/autograd.cc.o.d"
  "CMakeFiles/head_nn.dir/nn/layers.cc.o"
  "CMakeFiles/head_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/head_nn.dir/nn/lstm.cc.o"
  "CMakeFiles/head_nn.dir/nn/lstm.cc.o.d"
  "CMakeFiles/head_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/head_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/head_nn.dir/nn/serialize.cc.o"
  "CMakeFiles/head_nn.dir/nn/serialize.cc.o.d"
  "CMakeFiles/head_nn.dir/nn/tensor.cc.o"
  "CMakeFiles/head_nn.dir/nn/tensor.cc.o.d"
  "libhead_nn.a"
  "libhead_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
