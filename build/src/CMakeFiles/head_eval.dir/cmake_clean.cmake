file(REMOVE_RECURSE
  "CMakeFiles/head_eval.dir/eval/episode_runner.cc.o"
  "CMakeFiles/head_eval.dir/eval/episode_runner.cc.o.d"
  "CMakeFiles/head_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/head_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/head_eval.dir/eval/table.cc.o"
  "CMakeFiles/head_eval.dir/eval/table.cc.o.d"
  "CMakeFiles/head_eval.dir/eval/timer.cc.o"
  "CMakeFiles/head_eval.dir/eval/timer.cc.o.d"
  "CMakeFiles/head_eval.dir/eval/trace.cc.o"
  "CMakeFiles/head_eval.dir/eval/trace.cc.o.d"
  "CMakeFiles/head_eval.dir/eval/workbench.cc.o"
  "CMakeFiles/head_eval.dir/eval/workbench.cc.o.d"
  "libhead_eval.a"
  "libhead_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
