# Empty dependencies file for head_eval.
# This may be replaced when dependencies are built.
