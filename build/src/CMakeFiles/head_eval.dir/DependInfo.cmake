
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/episode_runner.cc" "src/CMakeFiles/head_eval.dir/eval/episode_runner.cc.o" "gcc" "src/CMakeFiles/head_eval.dir/eval/episode_runner.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/head_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/head_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/CMakeFiles/head_eval.dir/eval/table.cc.o" "gcc" "src/CMakeFiles/head_eval.dir/eval/table.cc.o.d"
  "/root/repo/src/eval/timer.cc" "src/CMakeFiles/head_eval.dir/eval/timer.cc.o" "gcc" "src/CMakeFiles/head_eval.dir/eval/timer.cc.o.d"
  "/root/repo/src/eval/trace.cc" "src/CMakeFiles/head_eval.dir/eval/trace.cc.o" "gcc" "src/CMakeFiles/head_eval.dir/eval/trace.cc.o.d"
  "/root/repo/src/eval/workbench.cc" "src/CMakeFiles/head_eval.dir/eval/workbench.cc.o" "gcc" "src/CMakeFiles/head_eval.dir/eval/workbench.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/head_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_decision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
