file(REMOVE_RECURSE
  "libhead_eval.a"
)
