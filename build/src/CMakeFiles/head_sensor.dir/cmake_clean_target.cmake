file(REMOVE_RECURSE
  "libhead_sensor.a"
)
