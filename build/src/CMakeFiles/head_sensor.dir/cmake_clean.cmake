file(REMOVE_RECURSE
  "CMakeFiles/head_sensor.dir/sensor/occlusion.cc.o"
  "CMakeFiles/head_sensor.dir/sensor/occlusion.cc.o.d"
  "CMakeFiles/head_sensor.dir/sensor/sensor_model.cc.o"
  "CMakeFiles/head_sensor.dir/sensor/sensor_model.cc.o.d"
  "libhead_sensor.a"
  "libhead_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
