
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensor/occlusion.cc" "src/CMakeFiles/head_sensor.dir/sensor/occlusion.cc.o" "gcc" "src/CMakeFiles/head_sensor.dir/sensor/occlusion.cc.o.d"
  "/root/repo/src/sensor/sensor_model.cc" "src/CMakeFiles/head_sensor.dir/sensor/sensor_model.cc.o" "gcc" "src/CMakeFiles/head_sensor.dir/sensor/sensor_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/head_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
