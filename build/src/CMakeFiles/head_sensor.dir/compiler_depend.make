# Empty compiler generated dependencies file for head_sensor.
# This may be replaced when dependencies are built.
