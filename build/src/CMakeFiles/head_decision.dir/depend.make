# Empty dependencies file for head_decision.
# This may be replaced when dependencies are built.
