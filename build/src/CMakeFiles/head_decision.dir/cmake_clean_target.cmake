file(REMOVE_RECURSE
  "libhead_decision.a"
)
