file(REMOVE_RECURSE
  "CMakeFiles/head_decision.dir/decision/acc_lc.cc.o"
  "CMakeFiles/head_decision.dir/decision/acc_lc.cc.o.d"
  "CMakeFiles/head_decision.dir/decision/idm_lc.cc.o"
  "CMakeFiles/head_decision.dir/decision/idm_lc.cc.o.d"
  "CMakeFiles/head_decision.dir/decision/tp_bts.cc.o"
  "CMakeFiles/head_decision.dir/decision/tp_bts.cc.o.d"
  "libhead_decision.a"
  "libhead_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
