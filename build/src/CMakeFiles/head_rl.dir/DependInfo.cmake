
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/drl_sc.cc" "src/CMakeFiles/head_rl.dir/rl/drl_sc.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/drl_sc.cc.o.d"
  "/root/repo/src/rl/env.cc" "src/CMakeFiles/head_rl.dir/rl/env.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/env.cc.o.d"
  "/root/repo/src/rl/mp_dqn.cc" "src/CMakeFiles/head_rl.dir/rl/mp_dqn.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/mp_dqn.cc.o.d"
  "/root/repo/src/rl/nets.cc" "src/CMakeFiles/head_rl.dir/rl/nets.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/nets.cc.o.d"
  "/root/repo/src/rl/p_ddpg.cc" "src/CMakeFiles/head_rl.dir/rl/p_ddpg.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/p_ddpg.cc.o.d"
  "/root/repo/src/rl/pamdp.cc" "src/CMakeFiles/head_rl.dir/rl/pamdp.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/pamdp.cc.o.d"
  "/root/repo/src/rl/pdqn_agent.cc" "src/CMakeFiles/head_rl.dir/rl/pdqn_agent.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/pdqn_agent.cc.o.d"
  "/root/repo/src/rl/replay_buffer.cc" "src/CMakeFiles/head_rl.dir/rl/replay_buffer.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/replay_buffer.cc.o.d"
  "/root/repo/src/rl/reward.cc" "src/CMakeFiles/head_rl.dir/rl/reward.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/reward.cc.o.d"
  "/root/repo/src/rl/trainer.cc" "src/CMakeFiles/head_rl.dir/rl/trainer.cc.o" "gcc" "src/CMakeFiles/head_rl.dir/rl/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/head_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
