file(REMOVE_RECURSE
  "libhead_rl.a"
)
