# Empty compiler generated dependencies file for head_rl.
# This may be replaced when dependencies are built.
