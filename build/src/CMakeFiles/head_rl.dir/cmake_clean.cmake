file(REMOVE_RECURSE
  "CMakeFiles/head_rl.dir/rl/drl_sc.cc.o"
  "CMakeFiles/head_rl.dir/rl/drl_sc.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/env.cc.o"
  "CMakeFiles/head_rl.dir/rl/env.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/mp_dqn.cc.o"
  "CMakeFiles/head_rl.dir/rl/mp_dqn.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/nets.cc.o"
  "CMakeFiles/head_rl.dir/rl/nets.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/p_ddpg.cc.o"
  "CMakeFiles/head_rl.dir/rl/p_ddpg.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/pamdp.cc.o"
  "CMakeFiles/head_rl.dir/rl/pamdp.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/pdqn_agent.cc.o"
  "CMakeFiles/head_rl.dir/rl/pdqn_agent.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/replay_buffer.cc.o"
  "CMakeFiles/head_rl.dir/rl/replay_buffer.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/reward.cc.o"
  "CMakeFiles/head_rl.dir/rl/reward.cc.o.d"
  "CMakeFiles/head_rl.dir/rl/trainer.cc.o"
  "CMakeFiles/head_rl.dir/rl/trainer.cc.o.d"
  "libhead_rl.a"
  "libhead_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/head_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
