file(REMOVE_RECURSE
  "CMakeFiles/table5_rl_effectiveness.dir/table5_rl_effectiveness.cc.o"
  "CMakeFiles/table5_rl_effectiveness.dir/table5_rl_effectiveness.cc.o.d"
  "table5_rl_effectiveness"
  "table5_rl_effectiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_rl_effectiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
