# Empty compiler generated dependencies file for table5_rl_effectiveness.
# This may be replaced when dependencies are built.
