file(REMOVE_RECURSE
  "CMakeFiles/table6_rl_efficiency.dir/table6_rl_efficiency.cc.o"
  "CMakeFiles/table6_rl_efficiency.dir/table6_rl_efficiency.cc.o.d"
  "table6_rl_efficiency"
  "table6_rl_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_rl_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
