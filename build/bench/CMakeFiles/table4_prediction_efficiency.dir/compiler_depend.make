# Empty compiler generated dependencies file for table4_prediction_efficiency.
# This may be replaced when dependencies are built.
