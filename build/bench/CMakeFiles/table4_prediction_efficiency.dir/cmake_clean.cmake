file(REMOVE_RECURSE
  "CMakeFiles/table4_prediction_efficiency.dir/table4_prediction_efficiency.cc.o"
  "CMakeFiles/table4_prediction_efficiency.dir/table4_prediction_efficiency.cc.o.d"
  "table4_prediction_efficiency"
  "table4_prediction_efficiency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_prediction_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
