file(REMOVE_RECURSE
  "CMakeFiles/ablation_prediction_horizon.dir/ablation_prediction_horizon.cc.o"
  "CMakeFiles/ablation_prediction_horizon.dir/ablation_prediction_horizon.cc.o.d"
  "ablation_prediction_horizon"
  "ablation_prediction_horizon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_prediction_horizon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
