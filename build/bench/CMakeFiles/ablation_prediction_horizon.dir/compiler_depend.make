# Empty compiler generated dependencies file for ablation_prediction_horizon.
# This may be replaced when dependencies are built.
