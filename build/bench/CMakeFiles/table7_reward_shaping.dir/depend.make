# Empty dependencies file for table7_reward_shaping.
# This may be replaced when dependencies are built.
