file(REMOVE_RECURSE
  "CMakeFiles/table7_reward_shaping.dir/table7_reward_shaping.cc.o"
  "CMakeFiles/table7_reward_shaping.dir/table7_reward_shaping.cc.o.d"
  "table7_reward_shaping"
  "table7_reward_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_reward_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
