file(REMOVE_RECURSE
  "CMakeFiles/table1_end_to_end.dir/table1_end_to_end.cc.o"
  "CMakeFiles/table1_end_to_end.dir/table1_end_to_end.cc.o.d"
  "table1_end_to_end"
  "table1_end_to_end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_end_to_end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
