# Empty dependencies file for pretrain_all.
# This may be replaced when dependencies are built.
