file(REMOVE_RECURSE
  "CMakeFiles/pretrain_all.dir/pretrain_all.cpp.o"
  "CMakeFiles/pretrain_all.dir/pretrain_all.cpp.o.d"
  "pretrain_all"
  "pretrain_all.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pretrain_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
