file(REMOVE_RECURSE
  "CMakeFiles/occlusion_scenario.dir/occlusion_scenario.cpp.o"
  "CMakeFiles/occlusion_scenario.dir/occlusion_scenario.cpp.o.d"
  "occlusion_scenario"
  "occlusion_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occlusion_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
