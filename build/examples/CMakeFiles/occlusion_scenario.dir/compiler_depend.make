# Empty compiler generated dependencies file for occlusion_scenario.
# This may be replaced when dependencies are built.
