# Empty dependencies file for train_decision.
# This may be replaced when dependencies are built.
