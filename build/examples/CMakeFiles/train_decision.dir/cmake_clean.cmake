file(REMOVE_RECURSE
  "CMakeFiles/train_decision.dir/train_decision.cpp.o"
  "CMakeFiles/train_decision.dir/train_decision.cpp.o.d"
  "train_decision"
  "train_decision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_decision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
