# Empty compiler generated dependencies file for dense_traffic_impact.
# This may be replaced when dependencies are built.
