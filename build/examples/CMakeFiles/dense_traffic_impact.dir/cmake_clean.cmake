file(REMOVE_RECURSE
  "CMakeFiles/dense_traffic_impact.dir/dense_traffic_impact.cpp.o"
  "CMakeFiles/dense_traffic_impact.dir/dense_traffic_impact.cpp.o.d"
  "dense_traffic_impact"
  "dense_traffic_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_traffic_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
