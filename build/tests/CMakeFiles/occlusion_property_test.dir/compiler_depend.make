# Empty compiler generated dependencies file for occlusion_property_test.
# This may be replaced when dependencies are built.
