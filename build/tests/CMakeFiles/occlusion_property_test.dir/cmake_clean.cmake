file(REMOVE_RECURSE
  "CMakeFiles/occlusion_property_test.dir/occlusion_property_test.cc.o"
  "CMakeFiles/occlusion_property_test.dir/occlusion_property_test.cc.o.d"
  "occlusion_property_test"
  "occlusion_property_test.pdb"
  "occlusion_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occlusion_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
