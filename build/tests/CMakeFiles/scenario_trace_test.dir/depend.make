# Empty dependencies file for scenario_trace_test.
# This may be replaced when dependencies are built.
