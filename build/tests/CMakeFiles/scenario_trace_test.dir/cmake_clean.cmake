file(REMOVE_RECURSE
  "CMakeFiles/scenario_trace_test.dir/scenario_trace_test.cc.o"
  "CMakeFiles/scenario_trace_test.dir/scenario_trace_test.cc.o.d"
  "scenario_trace_test"
  "scenario_trace_test.pdb"
  "scenario_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
