# Empty compiler generated dependencies file for sim_road_test.
# This may be replaced when dependencies are built.
