file(REMOVE_RECURSE
  "CMakeFiles/sim_road_test.dir/sim_road_test.cc.o"
  "CMakeFiles/sim_road_test.dir/sim_road_test.cc.o.d"
  "sim_road_test"
  "sim_road_test.pdb"
  "sim_road_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_road_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
