file(REMOVE_RECURSE
  "CMakeFiles/perception_phantom_test.dir/perception_phantom_test.cc.o"
  "CMakeFiles/perception_phantom_test.dir/perception_phantom_test.cc.o.d"
  "perception_phantom_test"
  "perception_phantom_test.pdb"
  "perception_phantom_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perception_phantom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
