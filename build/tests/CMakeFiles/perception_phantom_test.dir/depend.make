# Empty dependencies file for perception_phantom_test.
# This may be replaced when dependencies are built.
