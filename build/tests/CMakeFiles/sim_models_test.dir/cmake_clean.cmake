file(REMOVE_RECURSE
  "CMakeFiles/sim_models_test.dir/sim_models_test.cc.o"
  "CMakeFiles/sim_models_test.dir/sim_models_test.cc.o.d"
  "sim_models_test"
  "sim_models_test.pdb"
  "sim_models_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_models_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
