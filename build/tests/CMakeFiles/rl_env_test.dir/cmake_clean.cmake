file(REMOVE_RECURSE
  "CMakeFiles/rl_env_test.dir/rl_env_test.cc.o"
  "CMakeFiles/rl_env_test.dir/rl_env_test.cc.o.d"
  "rl_env_test"
  "rl_env_test.pdb"
  "rl_env_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
