
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn_lstm_test.cc" "tests/CMakeFiles/nn_lstm_test.dir/nn_lstm_test.cc.o" "gcc" "tests/CMakeFiles/nn_lstm_test.dir/nn_lstm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/head_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_perception.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_decision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sensor.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/head_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
