# Empty dependencies file for multi_step_test.
# This may be replaced when dependencies are built.
