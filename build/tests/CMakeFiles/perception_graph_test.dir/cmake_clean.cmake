file(REMOVE_RECURSE
  "CMakeFiles/perception_graph_test.dir/perception_graph_test.cc.o"
  "CMakeFiles/perception_graph_test.dir/perception_graph_test.cc.o.d"
  "perception_graph_test"
  "perception_graph_test.pdb"
  "perception_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perception_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
