# Empty compiler generated dependencies file for perception_graph_test.
# This may be replaced when dependencies are built.
