file(REMOVE_RECURSE
  "CMakeFiles/rl_reward_test.dir/rl_reward_test.cc.o"
  "CMakeFiles/rl_reward_test.dir/rl_reward_test.cc.o.d"
  "rl_reward_test"
  "rl_reward_test.pdb"
  "rl_reward_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_reward_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
