file(REMOVE_RECURSE
  "CMakeFiles/sensor_test.dir/sensor_test.cc.o"
  "CMakeFiles/sensor_test.dir/sensor_test.cc.o.d"
  "sensor_test"
  "sensor_test.pdb"
  "sensor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
