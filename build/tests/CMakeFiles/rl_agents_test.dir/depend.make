# Empty dependencies file for rl_agents_test.
# This may be replaced when dependencies are built.
