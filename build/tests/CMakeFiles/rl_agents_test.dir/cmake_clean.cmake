file(REMOVE_RECURSE
  "CMakeFiles/rl_agents_test.dir/rl_agents_test.cc.o"
  "CMakeFiles/rl_agents_test.dir/rl_agents_test.cc.o.d"
  "rl_agents_test"
  "rl_agents_test.pdb"
  "rl_agents_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_agents_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
