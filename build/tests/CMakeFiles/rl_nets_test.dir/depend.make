# Empty dependencies file for rl_nets_test.
# This may be replaced when dependencies are built.
