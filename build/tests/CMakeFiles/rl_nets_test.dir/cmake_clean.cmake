file(REMOVE_RECURSE
  "CMakeFiles/rl_nets_test.dir/rl_nets_test.cc.o"
  "CMakeFiles/rl_nets_test.dir/rl_nets_test.cc.o.d"
  "rl_nets_test"
  "rl_nets_test.pdb"
  "rl_nets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_nets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
