# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/sim_road_test[1]_include.cmake")
include("/root/repo/build/tests/sim_models_test[1]_include.cmake")
include("/root/repo/build/tests/sim_simulation_test[1]_include.cmake")
include("/root/repo/build/tests/sensor_test[1]_include.cmake")
include("/root/repo/build/tests/perception_phantom_test[1]_include.cmake")
include("/root/repo/build/tests/perception_graph_test[1]_include.cmake")
include("/root/repo/build/tests/rl_reward_test[1]_include.cmake")
include("/root/repo/build/tests/rl_agents_test[1]_include.cmake")
include("/root/repo/build/tests/rl_env_test[1]_include.cmake")
include("/root/repo/build/tests/decision_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/nn_lstm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/occlusion_property_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_trace_test[1]_include.cmake")
include("/root/repo/build/tests/multi_step_test[1]_include.cmake")
include("/root/repo/build/tests/rl_nets_test[1]_include.cmake")
include("/root/repo/build/tests/workbench_test[1]_include.cmake")
