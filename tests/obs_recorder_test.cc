// Flight recorder: ring accounting (overwrite/commit counters), bitwise
// JSONL round-trips, dump trigger logic (TTC / hard-brake / collision /
// post-trigger context), and manifest round-trips with escaping.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/recorder.h"

namespace head::obs {
namespace {

uint64_t Bits(double v) {
  uint64_t u = 0;
  std::memcpy(&u, &v, sizeof(u));
  return u;
}

/// Saves and restores the global recorder switch + config around each test,
/// and gives each test a unique scratch directory for dump files.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_enabled_ = RecordingEnabled();
    saved_config_ = GetRecorderConfig();
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("recorder_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    ConfigureRecorder(saved_config_);
    SetRecordingEnabled(saved_enabled_);
    std::filesystem::remove_all(dir_);
  }

  /// Enables recording with `config` and starts a fresh episode (which also
  /// resets this thread's ring from any previous test).
  void Begin(RecorderConfig config, EpisodeContext ctx = {}) {
    ConfigureRecorder(config);
    SetRecordingEnabled(true);
    BeginEpisode(ctx);
  }

  std::vector<std::string> DumpManifests() const {
    std::vector<std::string> out;
    if (!std::filesystem::exists(dir_)) return out;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      const std::string p = e.path().string();
      if (p.size() >= 14 &&
          p.compare(p.size() - 14, 14, ".manifest.json") == 0) {
        out.push_back(p);
      }
    }
    return out;
  }

  std::string dir_;
  bool saved_enabled_ = false;
  RecorderConfig saved_config_;
};

void CommitStep(int step, double ttc = -1.0, double accel = 0.0,
                EpisodeEnd end = EpisodeEnd::kRunning) {
  StepRecord& rec = ScratchRecord();
  rec.step = step;
  rec.time_s = step * 0.5;
  rec.ego_lon_m = 7.0 * step;
  rec.ttc_s = ttc;
  rec.accel_mps2 = accel;
  rec.end = end;
  CommitStepRecord();
}

TEST_F(RecorderTest, RingKeepsNewestAndCountsOverwrites) {
  RecorderConfig cfg;
  cfg.capacity = 4;
  Begin(cfg);

  const int64_t overwritten_before = OverwrittenRecords();
  const int64_t committed_before = CommittedRecords();
  const int64_t counter_before =
      GetCounter("obs.recorder.overwritten").value();

  for (int s = 0; s < 10; ++s) CommitStep(s);

  EXPECT_EQ(CommittedRecords() - committed_before, 10);
  // 10 commits into 4 slots: the first 6 were overwritten, and the loss is
  // visible both through the API and the exported drop counter.
  EXPECT_EQ(OverwrittenRecords() - overwritten_before, 6);
  EXPECT_EQ(GetCounter("obs.recorder.overwritten").value() - counter_before,
            6);

  const std::vector<StepRecord> records = SnapshotRecords();
  ASSERT_EQ(records.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(records[i].step, 6 + i) << "oldest-first order";
  }
}

TEST_F(RecorderTest, BeginEpisodeClearsRingAndAppliesCapacity) {
  RecorderConfig cfg;
  cfg.capacity = 4;
  Begin(cfg);
  for (int s = 0; s < 3; ++s) CommitStep(s);
  ASSERT_EQ(SnapshotRecords().size(), 3u);

  cfg.capacity = 8;
  ConfigureRecorder(cfg);
  BeginEpisode({});
  EXPECT_TRUE(SnapshotRecords().empty());
  for (int s = 0; s < 8; ++s) CommitStep(s);
  EXPECT_EQ(SnapshotRecords().size(), 8u);  // new capacity took effect
}

TEST_F(RecorderTest, JsonlRoundTripIsBitwise) {
  StepRecord rec;
  rec.step = 41;
  rec.time_s = 20.5;
  rec.ego_lane = 3;
  rec.ego_lon_m = 1234.567890123456789;  // not representable exactly
  rec.ego_v_mps = 1.0 / 3.0;
  rec.behavior = 2;
  rec.lane_change = -1;
  rec.accel_mps2 = -2.9999999999999996;
  rec.epsilon = 0.1;
  rec.ttc_s = 1e-300;  // subnormal-adjacent magnitude survives %.17g
  rec.rng_cursor = 123456789;
  rec.end = EpisodeEnd::kCollision;
  rec.has_reward = 1;
  rec.r_safety = -25.0;
  rec.r_efficiency = 0.7071067811865476;
  rec.r_comfort = -0.1;
  rec.r_impact = -0.25;
  rec.r_total = rec.r_safety + rec.r_efficiency + rec.r_comfort + rec.r_impact;
  rec.has_neighbors = 1;
  for (int i = 0; i < kRecordNeighbors; ++i) {
    rec.neighbors[i] = {i % 2 == 0 ? -1 : 100 + i,
                        static_cast<uint8_t>(i % 2 == 0), -3.2 * i,
                        50.0 / (i + 1), -1.5 + 0.1 * i};
  }
  rec.has_prediction = 1;
  for (int i = 0; i < kRecordNeighbors; ++i) {
    rec.prediction[i] = {0.1 * i, 40.0 / (i + 1), 2.0 * i / 7.0};
  }
  rec.has_q = 1;
  rec.has_params = 1;
  for (int i = 0; i < kRecordBehaviors; ++i) {
    rec.q[i] = -1.0 / (i + 3);
    rec.params[i] = (i - 1) * 0.9999999999999999;
  }

  std::ostringstream os;
  WriteRecordsJsonl({rec}, os);
  std::string line = os.str();
  ASSERT_FALSE(line.empty());
  line.pop_back();  // trailing newline

  StepRecord back;
  ASSERT_TRUE(ParseRecordLine(line, &back));
  EXPECT_EQ(back.step, rec.step);
  EXPECT_EQ(Bits(back.time_s), Bits(rec.time_s));
  EXPECT_EQ(back.ego_lane, rec.ego_lane);
  EXPECT_EQ(Bits(back.ego_lon_m), Bits(rec.ego_lon_m));
  EXPECT_EQ(Bits(back.ego_v_mps), Bits(rec.ego_v_mps));
  EXPECT_EQ(back.behavior, rec.behavior);
  EXPECT_EQ(back.lane_change, rec.lane_change);
  EXPECT_EQ(Bits(back.accel_mps2), Bits(rec.accel_mps2));
  EXPECT_EQ(Bits(back.epsilon), Bits(rec.epsilon));
  EXPECT_EQ(Bits(back.ttc_s), Bits(rec.ttc_s));
  EXPECT_EQ(back.rng_cursor, rec.rng_cursor);
  EXPECT_EQ(back.end, rec.end);
  ASSERT_EQ(back.has_reward, 1);
  EXPECT_EQ(Bits(back.r_total), Bits(rec.r_total));
  EXPECT_EQ(Bits(back.r_safety), Bits(rec.r_safety));
  ASSERT_EQ(back.has_neighbors, 1);
  for (int i = 0; i < kRecordNeighbors; ++i) {
    EXPECT_EQ(back.neighbors[i].id, rec.neighbors[i].id);
    EXPECT_EQ(back.neighbors[i].is_phantom, rec.neighbors[i].is_phantom);
    EXPECT_EQ(Bits(back.neighbors[i].d_lat_m), Bits(rec.neighbors[i].d_lat_m));
    EXPECT_EQ(Bits(back.neighbors[i].d_lon_m), Bits(rec.neighbors[i].d_lon_m));
    EXPECT_EQ(Bits(back.neighbors[i].v_rel_mps),
              Bits(rec.neighbors[i].v_rel_mps));
  }
  ASSERT_EQ(back.has_prediction, 1);
  for (int i = 0; i < kRecordNeighbors; ++i) {
    EXPECT_EQ(Bits(back.prediction[i].v_rel_mps),
              Bits(rec.prediction[i].v_rel_mps));
  }
  ASSERT_EQ(back.has_q, 1);
  ASSERT_EQ(back.has_params, 1);
  for (int i = 0; i < kRecordBehaviors; ++i) {
    EXPECT_EQ(Bits(back.q[i]), Bits(rec.q[i]));
    EXPECT_EQ(Bits(back.params[i]), Bits(rec.params[i]));
  }
}

TEST_F(RecorderTest, ParseRejectsMalformedLines) {
  StepRecord rec;
  EXPECT_FALSE(ParseRecordLine("", &rec));
  EXPECT_FALSE(ParseRecordLine("{}", &rec));
  EXPECT_FALSE(ParseRecordLine("{\"step\":1}", &rec));          // missing keys
  EXPECT_FALSE(ParseRecordLine("{\"step\":oops,\"t\":1}", &rec));
}

TEST_F(RecorderTest, OptionalSectionsDefaultToAbsent) {
  std::ostringstream os;
  WriteRecordsJsonl({StepRecord{}}, os);
  std::string line = os.str();
  line.pop_back();
  // A default record serializes without the optional reward/perception/Q
  // sections, and parses back with all has_* flags clear.
  EXPECT_EQ(line.find("\"r\":"), std::string::npos);
  EXPECT_EQ(line.find("\"n\":"), std::string::npos);
  StepRecord back;
  ASSERT_TRUE(ParseRecordLine(line, &back));
  EXPECT_EQ(back.has_reward, 0);
  EXPECT_EQ(back.has_neighbors, 0);
  EXPECT_EQ(back.has_prediction, 0);
  EXPECT_EQ(back.has_q, 0);
  EXPECT_EQ(back.has_params, 0);
}

TEST_F(RecorderTest, TtcTriggerDumpsAfterPostContext) {
  RecorderConfig cfg;
  cfg.capacity = 64;
  cfg.dump_dir = dir_;
  cfg.ttc_trigger_s = 2.0;
  cfg.post_trigger_steps = 3;
  cfg.dump_on_collision = false;
  Begin(cfg);

  CommitStep(0, /*ttc=*/10.0);
  CommitStep(1, /*ttc=*/1.5);  // arms the impact-risk trigger
  EXPECT_TRUE(DumpManifests().empty()) << "post-context not yet collected";
  CommitStep(2, /*ttc=*/5.0);
  CommitStep(3, /*ttc=*/5.0);
  CommitStep(4, /*ttc=*/5.0);  // 3rd post-trigger step → dump

  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(LoadFlightDump(manifests[0], &dump, &error)) << error;
  EXPECT_EQ(dump.trigger, DumpTrigger::kImpactRisk);
  ASSERT_EQ(dump.records.size(), 5u);
  EXPECT_EQ(dump.records.back().step, 4) << "includes post-trigger context";

  // Further triggers in the same episode do not produce a second dump.
  CommitStep(5, /*ttc=*/0.5);
  for (int s = 6; s < 12; ++s) CommitStep(s, 5.0);
  EXPECT_EQ(DumpManifests().size(), 1u);
}

TEST_F(RecorderTest, HardBrakeTriggerFires) {
  RecorderConfig cfg;
  cfg.capacity = 64;
  cfg.dump_dir = dir_;
  cfg.hard_brake_mps2 = 4.0;
  cfg.dump_on_collision = false;
  Begin(cfg);

  CommitStep(0, -1.0, /*accel=*/-3.9);
  EXPECT_TRUE(DumpManifests().empty());
  CommitStep(1, -1.0, /*accel=*/-4.5);  // at/over the threshold
  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);
  FlightDump dump;
  ASSERT_TRUE(LoadFlightDump(manifests[0], &dump));
  EXPECT_EQ(dump.trigger, DumpTrigger::kHardBrake);
}

TEST_F(RecorderTest, CollisionAtEndEpisodeDumpsPendingContextEarly) {
  RecorderConfig cfg;
  cfg.capacity = 64;
  cfg.dump_dir = dir_;
  cfg.ttc_trigger_s = 2.0;
  cfg.post_trigger_steps = 100;  // episode will end long before this
  Begin(cfg);

  CommitStep(0, /*ttc=*/1.0);  // arms with 100 post steps
  CommitStep(1, /*ttc=*/0.5, 0.0, EpisodeEnd::kCollision);
  // The commit marked end=collision, which forces the pending dump out
  // immediately (no post-context will ever arrive).
  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);
  EndEpisode(EpisodeEnd::kCollision);
  EXPECT_EQ(DumpManifests().size(), 1u) << "no duplicate dump at episode end";
}

TEST_F(RecorderTest, TimeoutDumpsOnlyWhenConfigured) {
  RecorderConfig cfg;
  cfg.capacity = 16;
  cfg.dump_dir = dir_;
  Begin(cfg);
  CommitStep(0);
  EndEpisode(EpisodeEnd::kTimeout);
  EXPECT_TRUE(DumpManifests().empty()) << "dump_on_timeout defaults off";

  cfg.dump_on_timeout = true;
  Begin(cfg);
  CommitStep(0);
  EndEpisode(EpisodeEnd::kTimeout);
  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);
  FlightDump dump;
  ASSERT_TRUE(LoadFlightDump(manifests[0], &dump));
  EXPECT_EQ(dump.trigger, DumpTrigger::kEpisodeFailure);
  EXPECT_EQ(dump.end, EpisodeEnd::kTimeout);
}

TEST_F(RecorderTest, DumpNowWritesManifestWithContext) {
  RecorderConfig cfg;
  cfg.capacity = 16;
  cfg.dump_dir = dir_;
  EpisodeContext ctx;
  ctx.scenario = "dense";
  ctx.policy = "idm";
  ctx.seed = 424242;
  ctx.episode_index = 7;
  Begin(cfg, ctx);
  EXPECT_FALSE(DumpNow()) << "empty ring has nothing to dump";
  CommitStep(0);
  CommitStep(1);

  std::string manifest_path;
  ASSERT_TRUE(DumpNow(&manifest_path));
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(LoadFlightDump(manifest_path, &dump, &error)) << error;
  EXPECT_EQ(dump.ctx.scenario, "dense");
  EXPECT_EQ(dump.ctx.policy, "idm");
  EXPECT_EQ(dump.ctx.seed, 424242u);
  EXPECT_EQ(dump.ctx.episode_index, 7);
  EXPECT_EQ(dump.trigger, DumpTrigger::kManual);
  EXPECT_EQ(dump.records.size(), 2u);
}

TEST_F(RecorderTest, ManifestRoundTripsEscapedStrings) {
  RecorderConfig cfg;
  cfg.capacity = 16;
  cfg.dump_dir = dir_;
  EpisodeContext ctx;
  ctx.scenario = "dense";  // must stay a valid name for replay
  ctx.policy = "weird \"policy\"\\with\nescapes";
  Begin(cfg, ctx);
  CommitStep(0);
  std::string manifest_path;
  ASSERT_TRUE(DumpNow(&manifest_path));
  FlightDump dump;
  std::string error;
  ASSERT_TRUE(LoadFlightDump(manifest_path, &dump, &error)) << error;
  EXPECT_EQ(dump.ctx.policy, ctx.policy);
}

TEST_F(RecorderTest, DisabledRecorderCommitsNothing) {
  RecorderConfig cfg;
  cfg.capacity = 16;
  Begin(cfg);
  CommitStep(0);
  ASSERT_EQ(SnapshotRecords().size(), 1u);

  SetRecordingEnabled(false);
  const int64_t committed_before = CommittedRecords();
  CommitStepRecord();
  EndEpisode(EpisodeEnd::kCollision);
  EXPECT_EQ(CommittedRecords(), committed_before);
  EXPECT_FALSE(DumpNow());
}

}  // namespace
}  // namespace head::obs
