// Parameterized property tests tying the occlusion geometry to the phantom
// construction of Eq. (6): for every diagonal area, a target placed in that
// area casts a shadow exactly where the construction puts its phantom.
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "perception/phantom.h"
#include "sensor/occlusion.h"
#include "sensor/sensor_model.h"

namespace head {
namespace {

using perception::Area;
using perception::AreaIsFront;
using perception::AreaLaneOffset;

class OcclusionAreaTest : public ::testing::TestWithParam<int> {};

// For each area i: put the ego at lane 3 and a target in area i; the
// phantom constructed for the missing slot (i, i) must itself be occluded
// by the target from the ego's viewpoint — Fig. 4's geometric consistency.
TEST_P(OcclusionAreaTest, ConstructedPhantomLiesInTheShadow) {
  const int area = GetParam();
  const RoadConfig road;
  const VehicleState ego{3, 500.0, 20.0};
  VehicleState target;
  target.lane = ego.lane + AreaLaneOffset(area);
  target.lon_m = ego.lon_m + (AreaIsFront(area) ? 25.0 : -25.0);
  target.v_mps = 18.0;

  perception::HistoryBuffer buffer(5);
  for (int k = 0; k < 5; ++k) {
    perception::ObservationFrame frame;
    frame.ego = ego;
    frame.observed = {{7, target}};
    buffer.Push(std::move(frame));
  }
  const perception::CompletedScene scene =
      perception::ConstructPhantoms(buffer, road, 100.0);
  ASSERT_EQ(scene.targets[area].id, 7);

  const perception::VehicleHistory& phantom =
      scene.surroundings[area][area];
  ASSERT_EQ(phantom.kind, perception::MissingKind::kOcclusion)
      << "area " << area;
  // Eq. (6): the phantom sits one more area-step beyond the target.
  const VehicleState& p = phantom.states.back();
  EXPECT_EQ(p.lane, target.lane + AreaLaneOffset(area));
  EXPECT_DOUBLE_EQ(p.lon_m, target.lon_m + DLon(target, ego));
  EXPECT_DOUBLE_EQ(p.v_mps, target.v_mps);
  // And geometrically it is indeed hidden behind the target.
  EXPECT_TRUE(sensor::Occludes(ego, p, target, road.lane_width_m));
}

INSTANTIATE_TEST_SUITE_P(AllAreas, OcclusionAreaTest,
                         ::testing::Values(perception::kFrontLeft,
                                           perception::kFront,
                                           perception::kFrontRight,
                                           perception::kRearLeft,
                                           perception::kRear,
                                           perception::kRearRight));

// Sweeping blocker positions along the sight line: everything strictly
// between observer and target (same lane) occludes; things beyond don't.
class ShadowSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(ShadowSweepTest, SameLaneBetweenness) {
  const RoadConfig road;
  const double blocker_lon = GetParam();
  const VehicleState observer{2, 0.0, 20.0};
  const VehicleState target{2, 60.0, 20.0};
  const VehicleState blocker{2, blocker_lon, 20.0};
  const bool between = blocker_lon > 3.0 && blocker_lon < 57.0;
  EXPECT_EQ(sensor::Occludes(observer, target, blocker, road.lane_width_m),
            between)
      << "blocker at " << blocker_lon;
}

INSTANTIATE_TEST_SUITE_P(Positions, ShadowSweepTest,
                         ::testing::Values(10.0, 20.0, 30.0, 40.0, 50.0,
                                           70.0, 90.0, -10.0));

// Sensor + phantom consistency: everything the sensor reports visible must
// appear somewhere in the completed scene's real entries OR be farther than
// every selected slot of its area; nothing invisible may appear as real.
TEST(SensorSceneConsistencyTest, RealEntriesAreAlwaysVisibleVehicles) {
  const RoadConfig road;
  sensor::SensorConfig sensor_config;
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    const VehicleState ego{rng.UniformInt(1, road.num_lanes),
                           rng.Uniform(200.0, 400.0), 20.0};
    std::vector<sim::VehicleSnapshot> global = {{kEgoVehicleId, ego}};
    const int n = rng.UniformInt(3, 12);
    for (int i = 1; i <= n; ++i) {
      VehicleState v{rng.UniformInt(1, road.num_lanes),
                     ego.lon_m + rng.Uniform(-150.0, 150.0),
                     rng.Uniform(10.0, 24.0)};
      // Avoid exact overlap with the ego slot.
      if (v.lane == ego.lane && std::fabs(v.lon_m - ego.lon_m) < 6.0) {
        v.lon_m += 12.0;
      }
      global.push_back({i, v});
    }
    const auto observed = sensor::Observe(global, ego, sensor_config, road);
    perception::HistoryBuffer buffer(3);
    for (int k = 0; k < 3; ++k) {
      buffer.Push(perception::ObservationFrame{ego, observed});
    }
    const perception::CompletedScene scene =
        perception::ConstructPhantoms(buffer, road, sensor_config.range_m);
    std::set<VehicleId> visible;
    for (const auto& v : observed) visible.insert(v.id);
    for (int i = 0; i < perception::kNumAreas; ++i) {
      if (scene.targets[i].kind == perception::MissingKind::kNone) {
        EXPECT_TRUE(visible.count(scene.targets[i].id) > 0);
      }
      for (int j = 0; j < perception::kNumAreas; ++j) {
        const auto& s = scene.surroundings[i][j];
        if (s.kind == perception::MissingKind::kNone) {
          EXPECT_TRUE(visible.count(s.id) > 0);
        }
      }
    }
  }
}

}  // namespace
}  // namespace head
