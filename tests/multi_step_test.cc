// Multi-step roll-out extension: graph advancement and horizon evaluation.
#include "perception/multi_step.h"

#include <gtest/gtest.h>

#include "data/real_dataset.h"
#include "perception/lst_gat.h"

namespace head::perception {
namespace {

RoadConfig DefaultRoad() { return RoadConfig{}; }

StGraph SimpleGraph() {
  const RoadConfig road = DefaultRoad();
  HistoryBuffer buffer(5);
  for (int k = 0; k < 5; ++k) {
    ObservationFrame frame;
    frame.ego = {3, 500.0 + 10.0 * k, 20.0};
    frame.observed = {{7, {3, 540.0 + 9.0 * k, 18.0}}};
    buffer.Push(frame);
  }
  return BuildStGraph(ConstructPhantoms(buffer, road, 100.0), road);
}

TEST(MultiStepTest, AdvanceGraphShiftsWindowAndEgo) {
  Rng rng(1);
  const LstGat model(LstGatConfig{}, rng);
  const MultiStepPredictor rollout(model, DefaultRoad());
  const StGraph graph = SimpleGraph();
  Prediction step{};
  for (int i = 0; i < kNumAreas; ++i) {
    step[i].d_lat_m = graph.target_rel_current[i][0];
    step[i].d_lon_m = graph.target_rel_current[i][1] +
                      graph.target_rel_current[i][2] * 0.5;
    step[i].v_rel_mps = graph.target_rel_current[i][2];
  }
  const StGraph next = rollout.AdvanceGraph(graph, step);
  EXPECT_EQ(next.z(), graph.z());
  EXPECT_DOUBLE_EQ(next.ego_current.lon_m,
                   graph.ego_current.lon_m + 20.0 * 0.5);
  // The old step 1 became step 0.
  EXPECT_EQ(next.steps[0].feat, graph.steps[1].feat);
  // Target relative state advanced by its relative velocity minus the ego's.
  EXPECT_NEAR(next.target_rel_current[kFront][1],
              graph.target_rel_current[kFront][1] +
                  graph.target_rel_current[kFront][2] * 0.5 - 10.0,
              1e-9);
}

TEST(MultiStepTest, RolloutLengthAndBaseRelativity) {
  Rng rng(1);
  const LstGat model(LstGatConfig{}, rng);
  const MultiStepPredictor rollout(model, DefaultRoad());
  const StGraph graph = SimpleGraph();
  const Trajectory traj = rollout.Rollout(graph, 4);
  ASSERT_EQ(traj.size(), 4u);
  // First step must equal the base one-step prediction exactly.
  const Prediction one = model.Predict(graph);
  for (int i = 0; i < kNumAreas; ++i) {
    EXPECT_DOUBLE_EQ(traj[0][i].d_lon_m, one[i].d_lon_m);
  }
}

TEST(MultiStepTest, HorizonErrorsGrowForConstantVelocityTruth) {
  // With an untrained network the per-step error compounds; horizons
  // further out must not be more accurate than the first step.
  data::RealDatasetConfig config = data::RealDatasetConfig::Default();
  config.episodes = 1;
  config.max_steps_per_episode = 60;
  const auto samples = data::GenerateMultiStepSamples(config, 4);
  ASSERT_FALSE(samples.empty());
  Rng rng(3);
  const LstGat model(LstGatConfig{}, rng);
  const MultiStepPredictor rollout(model, config.sim.road);
  const HorizonMetrics m = EvaluateHorizons(rollout, samples, 4);
  ASSERT_EQ(m.mae.size(), 4u);
  EXPECT_GT(m.mae[3], 0.0);
  EXPECT_GE(m.mae[3], m.mae[0] * 0.5);  // no magical improvement with depth
}

TEST(MultiStepTest, SamplesCarryConsistentHorizons) {
  data::RealDatasetConfig config = data::RealDatasetConfig::Default();
  config.episodes = 1;
  config.max_steps_per_episode = 40;
  const auto samples = data::GenerateMultiStepSamples(config, 3);
  for (const MultiStepSample& s : samples) {
    EXPECT_EQ(s.truth.size(), 3u);
    EXPECT_EQ(s.valid.size(), 3u);
    EXPECT_EQ(s.graph.z(), config.history_z);
  }
}

}  // namespace
}  // namespace head::perception
