#include "nn/tensor.h"

#include <gtest/gtest.h>

namespace head::nn {
namespace {

TEST(TensorTest, ConstructionAndAccess) {
  Tensor t(2, 3, 1.5);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.size(), 6);
  EXPECT_DOUBLE_EQ(t.At(1, 2), 1.5);
  t.At(1, 2) = -4.0;
  EXPECT_DOUBLE_EQ(t.At(1, 2), -4.0);
  EXPECT_DOUBLE_EQ(t[5], -4.0);  // row-major
}

TEST(TensorTest, EmptyTensor) {
  Tensor t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0);
  EXPECT_DOUBLE_EQ(t.MaxAbs(), 0.0);
}

TEST(TensorTest, MatMulKnownValues) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor b(2, 2, {5, 6, 7, 8});
  const Tensor c = MatMul(a, b);
  EXPECT_DOUBLE_EQ(c.At(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.At(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.At(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.At(1, 1), 50);
}

TEST(TensorTest, MatMulTransposedVariantsAgree) {
  Rng rng(3);
  const Tensor a = Tensor::Uniform(3, 4, -1, 1, rng);
  const Tensor b = Tensor::Uniform(5, 4, -1, 1, rng);
  const Tensor direct = MatMul(a, Transpose(b));
  const Tensor fused = MatMulTransposeB(a, b);
  EXPECT_EQ(direct, fused);

  const Tensor c = Tensor::Uniform(3, 5, -1, 1, rng);
  const Tensor direct2 = MatMul(Transpose(a), c);
  const Tensor fused2 = MatMulTransposeA(a, c);
  EXPECT_EQ(direct2, fused2);
}

TEST(TensorTest, ElementwiseOps) {
  Tensor a(1, 3, {1, -2, 3});
  Tensor b(1, 3, {4, 5, -6});
  EXPECT_EQ(Add(a, b), Tensor(1, 3, {5, 3, -3}));
  EXPECT_EQ(Sub(a, b), Tensor(1, 3, {-3, -7, 9}));
  EXPECT_EQ(Mul(a, b), Tensor(1, 3, {4, -10, -18}));
  EXPECT_EQ(Scale(a, 2.0), Tensor(1, 3, {2, -4, 6}));
}

TEST(TensorTest, RowBroadcastAndSumRows) {
  Tensor a(2, 2, {1, 2, 3, 4});
  Tensor row(1, 2, {10, 20});
  EXPECT_EQ(AddRowBroadcast(a, row), Tensor(2, 2, {11, 22, 13, 24}));
  EXPECT_EQ(SumRows(a), Tensor(1, 2, {4, 6}));
}

TEST(TensorTest, NormAndMaxAbs) {
  Tensor a(1, 2, {3, -4});
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.MaxAbs(), 4.0);
}

TEST(TensorTest, XavierBounds) {
  Rng rng(1);
  const Tensor w = Tensor::XavierUniform(30, 50, rng);
  const double bound = std::sqrt(6.0 / 80.0);
  for (int i = 0; i < w.size(); ++i) {
    EXPECT_LT(std::fabs(w[i]), bound + 1e-12);
  }
}

TEST(TensorTest, AddScaledInPlace) {
  Tensor a(1, 2, {1, 2});
  Tensor b(1, 2, {10, 20});
  a.AddScaled(b, 0.5);
  EXPECT_EQ(a, Tensor(1, 2, {6, 12}));
}

}  // namespace
}  // namespace head::nn
