// Serving-layer tests: RCU snapshot publication/retirement, batched
// decision/prediction parity with the underlying nets, the admission-control
// statuses (rejection, deadline, shutdown), and the hot-swap hammer — four
// client threads submitting while a publisher swaps versions, with every
// reply required to be bitwise consistent with exactly one published
// version. The hammer is the core TSan/ASan target of tools/check.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "obs/metrics.h"
#include "perception/lst_gat.h"
#include "rl/nets.h"
#include "serve/service.h"
#include "serve/snapshot.h"

namespace head {
namespace {

constexpr int kHidden = 24;
constexpr double kAMax = 3.0;
constexpr int kHistoryDepth = 3;

perception::LstGatConfig SmallGatConfig() {
  perception::LstGatConfig config;
  config.d_phi1 = 8;
  config.d_phi3 = 8;
  config.d_lstm = 8;
  return config;
}

serve::ModelFactories BpFactories() {
  serve::ModelFactories factories;
  factories.make_x = [](Rng& rng) {
    return std::make_unique<rl::BpXNet>(kHidden, kAMax, rng);
  };
  factories.make_q = [](Rng& rng) {
    return std::make_unique<rl::BpQNet>(kHidden, rng);
  };
  factories.make_predictor = [](Rng& rng) {
    return std::make_unique<perception::LstGat>(SmallGatConfig(), rng);
  };
  return factories;
}

rl::AugmentedState RandomState(Rng& rng) {
  rl::AugmentedState s;
  s.h = nn::Tensor::Uniform(rl::kStateHRows, rl::kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(rl::kStateFRows, rl::kStateCols, -1.0, 1.0, rng);
  return s;
}

perception::StGraph RandomGraph(Rng& rng) {
  perception::StGraph graph;
  graph.steps.resize(kHistoryDepth);
  for (perception::StepNodes& step : graph.steps) {
    for (auto& target : step.feat) {
      for (auto& node : target) {
        for (double& v : node) v = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  for (auto& rel : graph.target_rel_current) {
    for (double& v : rel) v = rng.Uniform(-5.0, 5.0);
  }
  return graph;
}

TEST(SnapshotRegistryTest, PublishRetiresBeyondKeep) {
  Rng rng(7);
  serve::ModelSnapshotRegistry registry(BpFactories(), /*keep=*/2);
  EXPECT_EQ(registry.Current(), nullptr);
  EXPECT_EQ(registry.current_version(), 0u);

  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  for (int i = 0; i < 4; ++i) registry.Publish(x, q);

  EXPECT_EQ(registry.current_version(), 4u);
  const std::vector<uint64_t> live = registry.live_versions();
  ASSERT_EQ(live.size(), 2u);
  EXPECT_EQ(live[0], 3u);
  EXPECT_EQ(live[1], 4u);
}

TEST(SnapshotTest, DecideBatchMatchesBatchOfOne) {
  Rng rng(11);
  serve::ModelSnapshotRegistry registry(BpFactories());
  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  const std::shared_ptr<const serve::ModelSnapshot> snap =
      registry.Publish(x, q);

  std::vector<rl::AugmentedState> states;
  for (int i = 0; i < 5; ++i) states.push_back(RandomState(rng));
  std::vector<const rl::AugmentedState*> ptrs;
  for (const rl::AugmentedState& s : states) ptrs.push_back(&s);

  std::vector<serve::DecisionOutput> batched(states.size());
  snap->DecideBatch(ptrs, batched.data());
  for (size_t i = 0; i < states.size(); ++i) {
    serve::DecisionOutput single;
    snap->DecideBatch({&states[i]}, &single);
    EXPECT_EQ(batched[i].behavior, single.behavior) << "state " << i;
    EXPECT_DOUBLE_EQ(batched[i].accel, single.accel) << "state " << i;
    for (int c = 0; c < rl::kNumBehaviors; ++c) {
      EXPECT_DOUBLE_EQ(batched[i].q[c], single.q[c]);
      EXPECT_DOUBLE_EQ(batched[i].params[c], single.params[c]);
    }
  }
}

TEST(SnapshotTest, DecideBatchMatchesSourceNets) {
  Rng rng(13);
  serve::ModelSnapshotRegistry registry(BpFactories());
  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  const std::shared_ptr<const serve::ModelSnapshot> snap =
      registry.Publish(x, q);

  const rl::AugmentedState state = RandomState(rng);
  serve::DecisionOutput out;
  snap->DecideBatch({&state}, &out);

  nn::ResetTape();
  const nn::NoGradGuard no_grad;
  const nn::Var xv = x.ForwardBatch({&state});
  const nn::Var qv = q.ForwardBatch({&state}, xv);
  for (int c = 0; c < rl::kNumBehaviors; ++c) {
    EXPECT_DOUBLE_EQ(out.params[c], xv.value().At(0, c));
    EXPECT_DOUBLE_EQ(out.q[c], qv.value().At(0, c));
  }
  EXPECT_DOUBLE_EQ(out.accel, xv.value().At(0, out.behavior));
}

TEST(SnapshotTest, PredictBatchMatchesPredictorPredict) {
  Rng rng(17);
  serve::ModelSnapshotRegistry registry(BpFactories());
  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  Rng model_rng(18);
  const perception::LstGat predictor(SmallGatConfig(), model_rng);
  const std::shared_ptr<const serve::ModelSnapshot> snap =
      registry.Publish(x, q, &predictor);
  ASSERT_TRUE(snap->has_predictor());

  std::vector<perception::StGraph> graphs;
  for (int i = 0; i < 3; ++i) graphs.push_back(RandomGraph(rng));
  std::vector<const perception::StGraph*> ptrs;
  for (const perception::StGraph& g : graphs) ptrs.push_back(&g);

  std::vector<perception::Prediction> batched(graphs.size());
  snap->PredictBatch(ptrs, batched.data());
  for (size_t i = 0; i < graphs.size(); ++i) {
    const perception::Prediction expected = predictor.Predict(graphs[i]);
    for (int a = 0; a < perception::kNumAreas; ++a) {
      EXPECT_DOUBLE_EQ(batched[i][a].d_lat_m, expected[a].d_lat_m);
      EXPECT_DOUBLE_EQ(batched[i][a].d_lon_m, expected[a].d_lon_m);
      EXPECT_DOUBLE_EQ(batched[i][a].v_rel_mps, expected[a].v_rel_mps);
    }
  }
}

TEST(DecisionServiceTest, ServesDecisionAndPredictionRequests) {
  Rng rng(19);
  serve::ModelSnapshotRegistry registry(BpFactories());
  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  Rng model_rng(20);
  const perception::LstGat predictor(SmallGatConfig(), model_rng);
  const std::shared_ptr<const serve::ModelSnapshot> snap =
      registry.Publish(x, q, &predictor);

  serve::ServeConfig config;
  config.max_batch = 4;
  config.batch_window_us = 100;
  serve::DecisionService service(&registry, config);

  const rl::AugmentedState state = RandomState(rng);
  const perception::StGraph graph = RandomGraph(rng);
  std::future<serve::DecisionReply> dfut =
      service.SubmitDecision({state, /*deadline_us=*/0});
  std::future<serve::PredictionReply> pfut =
      service.SubmitPrediction({graph, /*deadline_us=*/0});

  const serve::DecisionReply dreply = dfut.get();
  ASSERT_EQ(dreply.status, serve::ServeStatus::kOk);
  EXPECT_EQ(dreply.model_version, snap->version());
  EXPECT_GE(dreply.latency_s, 0.0);
  serve::DecisionOutput expected;
  snap->DecideBatch({&state}, &expected);
  EXPECT_EQ(dreply.output.behavior, expected.behavior);
  EXPECT_DOUBLE_EQ(dreply.output.accel, expected.accel);

  const serve::PredictionReply preply = pfut.get();
  ASSERT_EQ(preply.status, serve::ServeStatus::kOk);
  EXPECT_EQ(preply.model_version, snap->version());
  perception::Prediction expected_pred;
  snap->PredictBatch({&graph}, &expected_pred);
  for (int a = 0; a < perception::kNumAreas; ++a) {
    EXPECT_DOUBLE_EQ(preply.prediction[a].d_lat_m, expected_pred[a].d_lat_m);
  }
}

TEST(DecisionServiceTest, DeadlineExpiredWhileQueuedReturnsDistinctStatus) {
  Rng rng(23);
  serve::ModelSnapshotRegistry registry(BpFactories());
  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  registry.Publish(x, q);

  serve::ServeConfig config;
  config.max_batch = 4;                // never filled by one request…
  config.batch_window_us = 20000;      // …so the 20 ms window must lapse,
  serve::DecisionService service(&registry, config);

  const int64_t missed_before =
      obs::GetCounter("serve.deadline_missed").value();
  const rl::AugmentedState state = RandomState(rng);
  std::future<serve::DecisionReply> fut =
      service.SubmitDecision({state, /*deadline_us=*/1});  // …expiring this
  const serve::DecisionReply reply = fut.get();
  EXPECT_EQ(reply.status, serve::ServeStatus::kDeadlineExceeded);
  EXPECT_EQ(reply.model_version, 0u);
  EXPECT_EQ(obs::GetCounter("serve.deadline_missed").value(),
            missed_before + 1);
}

TEST(DecisionServiceTest, QueueFullRejectsWithBackpressureStatus) {
  Rng rng(29);
  serve::ModelSnapshotRegistry registry(BpFactories());
  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  registry.Publish(x, q);

  serve::ServeConfig config;
  config.max_batch = 8;
  config.batch_window_us = 100;
  config.queue_capacity = 2;
  serve::DecisionService service(&registry, config);
  service.SetPausedForTest(true);  // nothing drains while we fill the queue

  const int64_t rejected_before = obs::GetCounter("serve.rejected").value();
  const rl::AugmentedState state = RandomState(rng);
  std::future<serve::DecisionReply> f1 = service.SubmitDecision({state, 0});
  std::future<serve::DecisionReply> f2 = service.SubmitDecision({state, 0});
  EXPECT_EQ(service.queue_depth(), 2);
  std::future<serve::DecisionReply> f3 = service.SubmitDecision({state, 0});
  const serve::DecisionReply rejected = f3.get();  // ready immediately
  EXPECT_EQ(rejected.status, serve::ServeStatus::kRejected);
  EXPECT_EQ(obs::GetCounter("serve.rejected").value(), rejected_before + 1);

  service.SetPausedForTest(false);
  EXPECT_EQ(f1.get().status, serve::ServeStatus::kOk);
  EXPECT_EQ(f2.get().status, serve::ServeStatus::kOk);
}

TEST(DecisionServiceTest, ShutdownCompletesQueuedRequests) {
  Rng rng(31);
  serve::ModelSnapshotRegistry registry(BpFactories());
  const rl::BpXNet x(kHidden, kAMax, rng);
  const rl::BpQNet q(kHidden, rng);
  registry.Publish(x, q);

  serve::ServeConfig config;
  serve::DecisionService service(&registry, config);
  service.SetPausedForTest(true);
  const rl::AugmentedState state = RandomState(rng);
  std::future<serve::DecisionReply> queued =
      service.SubmitDecision({state, 0});
  service.Shutdown();
  EXPECT_EQ(queued.get().status, serve::ServeStatus::kShutdown);
  // Post-shutdown submits complete immediately with the same status.
  EXPECT_EQ(service.SubmitDecision({state, 0}).get().status,
            serve::ServeStatus::kShutdown);
}

// The hot-swap hammer: four client threads submit decision requests over a
// fixed state set while a publisher thread keeps swapping fresh weights in
// (retiring old versions, keep=2). Every kOk reply must be *bitwise*
// reproducible from the snapshot whose version it reports — no torn reads,
// no mixed-version batches, no use-after-retire. Runs under TSan and ASan
// in tools/check.sh.
TEST(ServeHotSwapTest, RepliesBitwiseConsistentWithOnePublishedVersion) {
  Rng rng(37);
  serve::ModelSnapshotRegistry registry(BpFactories(), /*keep=*/2);
  {
    const rl::BpXNet x0(kHidden, kAMax, rng);
    const rl::BpQNet q0(kHidden, rng);
    registry.Publish(x0, q0);
  }

  constexpr int kStates = 8;
  std::vector<rl::AugmentedState> states;
  for (int i = 0; i < kStates; ++i) states.push_back(RandomState(rng));

  serve::ServeConfig config;
  config.max_batch = 8;
  config.batch_window_us = 100;
  serve::DecisionService service(&registry, config);

  // Clients record (state index, reply); the publisher holds every snapshot
  // it published so the main thread can recompute references afterwards —
  // including against versions the registry has since retired.
  struct Observed {
    int state_idx;
    serve::DecisionReply reply;
  };
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 60;
  std::vector<std::vector<Observed>> observed(kClients);
  std::vector<std::shared_ptr<const serve::ModelSnapshot>> snapshots;

  std::atomic<bool> clients_done{false};
  std::thread publisher([&] {
    Rng pub_rng(41);
    while (!clients_done.load(std::memory_order_acquire)) {
      const rl::BpXNet x(kHidden, kAMax, pub_rng);
      const rl::BpQNet q(kHidden, pub_rng);
      snapshots.push_back(registry.Publish(x, q));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < kClients; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int idx = (t * 31 + i * 7) % kStates;
        std::future<serve::DecisionReply> fut =
            service.SubmitDecision({states[idx], 0});
        const serve::DecisionReply reply = fut.get();
        ASSERT_EQ(reply.status, serve::ServeStatus::kOk);
        observed[t].push_back({idx, reply});
      }
    });
  }
  for (std::thread& c : clients) c.join();
  clients_done.store(true, std::memory_order_release);
  publisher.join();
  service.Shutdown();

  // Resolve each reply's claimed version from the publisher's log. The
  // pre-hammer version 1 isn't in the log — replies against it are skipped
  // (the EXPECT_GT(checked, 0) below still demands swapped-version replies).
  auto resolve = [&](uint64_t version)
      -> std::shared_ptr<const serve::ModelSnapshot> {
    for (const auto& snap : snapshots) {
      if (snap->version() == version) return snap;
    }
    return nullptr;
  };

  int checked = 0;
  for (const std::vector<Observed>& per_client : observed) {
    ASSERT_EQ(per_client.size(), static_cast<size_t>(kRequestsPerClient));
    for (const Observed& obs : per_client) {
      const std::shared_ptr<const serve::ModelSnapshot> snap =
          resolve(obs.reply.model_version);
      if (snap == nullptr) continue;  // the pre-hammer version 1
      serve::DecisionOutput expected;
      snap->DecideBatch({&states[obs.state_idx]}, &expected);
      ASSERT_EQ(obs.reply.output.behavior, expected.behavior);
      ASSERT_EQ(obs.reply.output.accel, expected.accel);
      for (int c = 0; c < rl::kNumBehaviors; ++c) {
        ASSERT_EQ(obs.reply.output.q[c], expected.q[c]);
        ASSERT_EQ(obs.reply.output.params[c], expected.params[c]);
      }
      ++checked;
    }
  }
  // The hammer must actually have exercised swapped versions.
  EXPECT_GT(checked, 0);
  EXPECT_GT(snapshots.size(), 1u);
}

TEST(ObsMicroLatencyTest, CachedMicroBoundsAreFineGrainedAndMemoized) {
  const std::vector<double>& bounds = obs::CachedMicroLatencyBounds();
  ASSERT_EQ(bounds.size(), 42u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1e-6);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_DOUBLE_EQ(bounds[i], bounds[i - 1] * 1.5);
  }
  EXPECT_EQ(&bounds, &obs::CachedMicroLatencyBounds());  // memoized instance
  obs::Histogram& hist = obs::MicroLatencyHistogram("serve_test.micro");
  EXPECT_EQ(hist.bounds(), bounds);
}

}  // namespace
}  // namespace head
