// HeadAgent public API and variant semantics.
#include "core/head_agent.h"

#include <gtest/gtest.h>

namespace head::core {
namespace {

HeadConfig SmallConfig(HeadVariant variant = HeadVariant::Full()) {
  HeadConfig config;
  config.pdqn.hidden = 8;
  config.variant = variant;
  return config;
}

std::shared_ptr<perception::LstGat> SmallPredictor(uint64_t seed) {
  Rng rng(seed);
  return std::make_shared<perception::LstGat>(
      perception::LstGatConfig{.d_phi1 = 8, .d_phi3 = 8, .d_lstm = 8}, rng);
}

decision::EgoView SimpleView() {
  decision::EgoView view;
  view.ego = {3, 500.0, 20.0};
  view.observed = {
      {7, {3, 540.0, 18.0}},
      {8, {2, 520.0, 21.0}},
  };
  return view;
}

TEST(HeadAgentTest, NameFollowsVariant) {
  Rng rng(1);
  std::shared_ptr<rl::PamdpAgent> agent = rl::MakeBpDqnAgent(SmallConfig().pdqn, rng);
  HeadAgent head(SmallConfig(), SmallPredictor(2), agent);
  EXPECT_EQ(head.name(), "HEAD");

  Rng rng2(1);
  std::shared_ptr<rl::PamdpAgent> agent2 = rl::MakeBpDqnAgent(SmallConfig().pdqn, rng2);
  HeadAgent ablated(SmallConfig(HeadVariant::WithoutImpact()),
                    SmallPredictor(2), agent2);
  EXPECT_EQ(ablated.name(), "HEAD-w/o-IMP");
}

TEST(HeadAgentTest, DecideReturnsBoundedManeuver) {
  Rng rng(1);
  HeadConfig config = SmallConfig();
  std::shared_ptr<rl::PamdpAgent> agent = rl::MakeBpDqnAgent(config.pdqn, rng);
  HeadAgent head(config, SmallPredictor(2), agent);
  head.OnEpisodeStart();
  for (int i = 0; i < 8; ++i) {
    const Maneuver m = head.Decide(SimpleView());
    EXPECT_GE(m.accel_mps2, -config.road.a_max_mps2);
    EXPECT_LE(m.accel_mps2, config.road.a_max_mps2);
  }
}

TEST(HeadAgentTest, PerceiveExposesAugmentedState) {
  Rng rng(1);
  HeadConfig config = SmallConfig();
  std::shared_ptr<rl::PamdpAgent> agent = rl::MakeBpDqnAgent(config.pdqn, rng);
  HeadAgent head(config, SmallPredictor(2), agent);
  head.OnEpisodeStart();
  const rl::AugmentedState s = head.Perceive(SimpleView());
  EXPECT_EQ(s.h.rows(), rl::kStateHRows);
  EXPECT_EQ(s.f.rows(), rl::kStateFRows);
  // Front target (id 7) must be flagged real in the state.
  EXPECT_DOUBLE_EQ(s.h.At(1 + perception::kFront, 3), 0.0);
  EXPECT_EQ(head.last_graph().target_ids[perception::kFront], 7);
}

TEST(HeadAgentTest, WithoutPvcZeroPadsMissingTargets) {
  Rng rng(1);
  HeadConfig config = SmallConfig(HeadVariant::WithoutPvc());
  std::shared_ptr<rl::PamdpAgent> agent = rl::MakeBpDqnAgent(config.pdqn, rng);
  HeadAgent head(config, SmallPredictor(2), agent);
  head.OnEpisodeStart();
  const rl::AugmentedState s = head.Perceive(SimpleView());
  // The rear area has no observed vehicle: with PVC off its current state
  // anchors at the ego (relative 0) and the phantom flag is set.
  EXPECT_DOUBLE_EQ(s.h.At(1 + perception::kRear, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.h.At(1 + perception::kRear, 3), 1.0);
}

TEST(HeadAgentTest, WithPvcConstructsRangePhantomBehind) {
  Rng rng(1);
  HeadConfig config = SmallConfig();
  std::shared_ptr<rl::PamdpAgent> agent = rl::MakeBpDqnAgent(config.pdqn, rng);
  HeadAgent head(config, SmallPredictor(2), agent);
  head.OnEpisodeStart();
  const rl::AugmentedState s = head.Perceive(SimpleView());
  // With PVC on the missing rear slot carries a range phantom at −R.
  EXPECT_NEAR(s.h.At(1 + perception::kRear, 1) /
                  perception::FeatureScale().lon,
              -config.sensor.range_m, 1e-6);
}

TEST(HeadAgentTest, WithoutLstGatRequiresNoPredictor) {
  Rng rng(1);
  HeadConfig config = SmallConfig(HeadVariant::WithoutLstGat());
  std::shared_ptr<rl::PamdpAgent> agent = rl::MakeBpDqnAgent(config.pdqn, rng);
  HeadAgent head(config, nullptr, agent);  // must not abort
  head.OnEpisodeStart();
  const rl::AugmentedState s = head.Perceive(SimpleView());
  for (int i = 0; i < rl::kStateFRows; ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(s.f.At(i, c), s.h.At(1 + i, c), 1e-12);
    }
  }
}

TEST(HeadAgentTest, EpisodeStartClearsHistory) {
  Rng rng(1);
  HeadConfig config = SmallConfig();
  std::shared_ptr<rl::PamdpAgent> agent = rl::MakeBpDqnAgent(config.pdqn, rng);
  HeadAgent head(config, SmallPredictor(2), agent);
  head.OnEpisodeStart();
  decision::EgoView early = SimpleView();
  early.ego.lon_m = 100.0;
  head.Decide(early);
  head.Decide(SimpleView());
  head.OnEpisodeStart();  // new episode: the old frames must be gone
  const rl::AugmentedState s = head.Perceive(SimpleView());
  // After a reset the warm-up repeats the newest frame, so the "oldest"
  // graph step equals the current one (no leftover lon=100 frame).
  EXPECT_DOUBLE_EQ(head.last_graph().ego_current.lon_m, 500.0);
}

}  // namespace
}  // namespace head::core
