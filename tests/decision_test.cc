// Decision baselines: IDM-LC, ACC-LC, TP-BTS behaviors.
#include <gtest/gtest.h>

#include "decision/acc_lc.h"
#include "decision/idm_lc.h"
#include "decision/tp_bts.h"

namespace head::decision {
namespace {

RoadConfig DefaultRoad() { return RoadConfig{}; }

EgoView FreeRoadView(double v = 10.0) {
  EgoView view;
  view.ego = {3, 100.0, v};
  return view;
}

EgoView BlockedView() {
  EgoView view;
  view.ego = {3, 100.0, 20.0};
  view.observed = {
      {1, {3, 118.0, 8.0}},  // slow vehicle close ahead
  };
  return view;
}

TEST(IdmLcTest, AcceleratesOnFreeRoad) {
  IdmLcPolicy policy(RuleBasedConfig::ForRoad(DefaultRoad()));
  const Maneuver m = policy.Decide(FreeRoadView());
  EXPECT_GT(m.accel_mps2, 0.5);
  EXPECT_EQ(m.lane_change, LaneChange::kKeep);
}

TEST(IdmLcTest, BrakesBehindSlowLeader) {
  RuleBasedConfig config = RuleBasedConfig::ForRoad(DefaultRoad());
  IdmLcPolicy policy(config);
  policy.OnEpisodeStart();
  // Block every lane so no overtaking escape exists.
  EgoView view = BlockedView();
  view.observed.push_back({2, {2, 118.0, 8.0}});
  view.observed.push_back({3, {4, 118.0, 8.0}});
  const Maneuver m = policy.Decide(view);
  EXPECT_EQ(m.lane_change, LaneChange::kKeep);
  EXPECT_LT(m.accel_mps2, -0.5);
}

TEST(IdmLcTest, OvertakesWhenNeighborLaneFree) {
  IdmLcPolicy policy(RuleBasedConfig::ForRoad(DefaultRoad()));
  policy.OnEpisodeStart();
  const Maneuver m = policy.Decide(BlockedView());
  EXPECT_NE(m.lane_change, LaneChange::kKeep);
}

TEST(IdmLcTest, CooldownPreventsImmediateSecondChange) {
  IdmLcPolicy policy(RuleBasedConfig::ForRoad(DefaultRoad()));
  policy.OnEpisodeStart();
  EgoView view = BlockedView();
  const Maneuver first = policy.Decide(view);
  ASSERT_NE(first.lane_change, LaneChange::kKeep);
  view.ego.lane += LaneDelta(first.lane_change);
  const Maneuver second = policy.Decide(view);
  EXPECT_EQ(second.lane_change, LaneChange::kKeep);
}

TEST(AccLcTest, RegulatesSpeedAndRespectsBounds) {
  AccLcPolicy policy(RuleBasedConfig::ForRoad(DefaultRoad()));
  const Maneuver free = policy.Decide(FreeRoadView(10.0));
  EXPECT_GT(free.accel_mps2, 0.0);
  EXPECT_LE(free.accel_mps2, 3.0);
  policy.OnEpisodeStart();
  EgoView view = BlockedView();
  view.observed.push_back({2, {2, 118.0, 8.0}});
  view.observed.push_back({3, {4, 118.0, 8.0}});
  const Maneuver blocked = policy.Decide(view);
  EXPECT_LT(blocked.accel_mps2, 0.0);
  EXPECT_GE(blocked.accel_mps2, -3.0);
}

TEST(TpBtsTest, AcceleratesOnFreeRoad) {
  TpBtsConfig config;
  config.road = DefaultRoad();
  TpBtsPolicy policy(config);
  policy.OnEpisodeStart();
  const Maneuver m = policy.Decide(FreeRoadView());
  EXPECT_GT(m.accel_mps2, 0.0);
}

TEST(TpBtsTest, NeverPicksOffRoadLaneChange) {
  TpBtsConfig config;
  config.road = DefaultRoad();
  TpBtsPolicy policy(config);
  policy.OnEpisodeStart();
  EgoView view;
  view.ego = {1, 100.0, 20.0};  // leftmost lane
  const Maneuver m = policy.Decide(view);
  EXPECT_NE(m.lane_change, LaneChange::kLeft);
}

TEST(TpBtsTest, BrakesWhenNoEscapeExists) {
  TpBtsConfig config;
  config.road = DefaultRoad();
  TpBtsPolicy policy(config);
  policy.OnEpisodeStart();
  EgoView view;
  view.ego = {1, 100.0, 25.0};  // leftmost lane: only right escape exists
  view.observed = {
      {1, {1, 120.0, 1.4}},  // crawling leader ahead
      {2, {2, 121.0, 1.4}},  // right lane blocked ahead…
      {3, {2, 101.0, 24.0}}, // …and a fast vehicle right beside the ego
  };
  const Maneuver m = policy.Decide(view);
  EXPECT_EQ(m.lane_change, LaneChange::kKeep);
  EXPECT_LT(m.accel_mps2, -2.0);  // must brake hard
}

TEST(TpBtsTest, EscapesViaFreeLaneInsteadOfEmergencyBraking) {
  TpBtsConfig config;
  config.road = DefaultRoad();
  TpBtsPolicy policy(config);
  policy.OnEpisodeStart();
  EgoView view;
  view.ego = {3, 100.0, 25.0};
  view.observed = {{1, {3, 130.0, 1.4}}};  // slow leader, lanes 2/4 free
  const Maneuver m = policy.Decide(view);
  EXPECT_NE(m.lane_change, LaneChange::kKeep);
}

TEST(TpBtsTest, UsesVelocityHistoryForPrediction) {
  TpBtsConfig config;
  config.road = DefaultRoad();
  TpBtsPolicy policy(config);
  policy.OnEpisodeStart();
  // First call primes the velocity memory; the leader is decelerating, so
  // the second decision must be more cautious than for a steady leader.
  EgoView view;
  view.ego = {3, 100.0, 20.0};
  view.observed = {{1, {3, 140.0, 20.0}}};
  policy.Decide(view);
  view.observed[0].state.v_mps = 14.0;  // hard braking observed
  view.observed[0].state.lon_m = 147.0;
  const Maneuver cautious = policy.Decide(view);

  TpBtsPolicy fresh(config);
  fresh.OnEpisodeStart();
  const Maneuver steady = fresh.Decide(view);  // no history → assumes const v
  EXPECT_LE(cautious.accel_mps2, steady.accel_mps2);
}

}  // namespace
}  // namespace head::decision
