// Op-level profiler: aggregation correctness, self-time/root/coverage
// accounting, fwd/bwd phase split, perf-counter fallback (EACCES/ENOSYS
// must leave every wall-clock and GFLOP/s column populated), export
// formats, and — the TSan target in tools/check.sh — profiled multi-env
// rollouts through a 4-thread EnvPool.
#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "obs/perf_counters.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "parallel/env_pool.h"
#include "parallel/thread_pool.h"
#include "rl/env.h"
#include "rl/pdqn_agent.h"

namespace head {
namespace {

/// Busy-waits so a scope has measurable, strictly positive duration even
/// on coarse clocks (no sleeps: keeps the TSan run fast).
void SpinNs(uint64_t ns) {
  const uint64_t until = obs::internal::NowNs() + ns;
  while (obs::internal::NowNs() < until) {
  }
}

const obs::OpStats* FindOp(const obs::ProfileReport& report,
                           const std::string& name,
                           obs::ProfPhase phase = obs::ProfPhase::kForward) {
  for (const obs::OpStats& op : report.ops) {
    if (op.op == name && op.phase == phase) return &op;
  }
  return nullptr;
}

/// Starts a wall-clock-only session (hardware counters off: these tests
/// pin the aggregation math, not the kernel's perf_event support).
void StartWallClockProfiling() {
  obs::ProfilerOptions options;
  options.hw_counters = false;
  obs::StartProfiling(options);
}

TEST(ProfilerTest, DisabledRecordsNothing) {
  obs::StopProfiling();
  obs::ResetProfile();
  EXPECT_FALSE(obs::ProfilingEnabled());
  for (int i = 0; i < 100; ++i) {
    HEAD_PROF_OP("test.ignored", 8, 8, 8, 1024, 1536);
  }
  const obs::ProfileReport report = obs::CollectProfile();
  EXPECT_EQ(report.ops.size(), 0u);
  EXPECT_EQ(report.coverage, 0.0);
}

TEST(ProfilerTest, AggregatesCountShapeAndFlops) {
  StartWallClockProfiling();
  constexpr int kCalls = 32;
  for (int i = 0; i < kCalls; ++i) {
    HEAD_PROF_OP("test.gemm", 16, 24, 8, /*flops=*/2 * 16 * 24 * 8,
                 /*bytes=*/8 * (16 * 8 + 8 * 24 + 16 * 24));
    SpinNs(2000);
  }
  obs::StopProfiling();
  const obs::ProfileReport report = obs::CollectProfile();

  const obs::OpStats* op = FindOp(report, "test.gemm");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->count, kCalls);
  EXPECT_EQ(op->m, 16);
  EXPECT_EQ(op->n, 24);
  EXPECT_EQ(op->k, 8);
  EXPECT_EQ(op->flops, static_cast<int64_t>(kCalls) * 2 * 16 * 24 * 8);
  EXPECT_GE(op->total_ns, kCalls * 2000u);
  EXPECT_GT(op->Gflops(), 0.0);
  EXPECT_GT(op->Intensity(), 0.0);
  // Order statistics are internally consistent (histogram approximation
  // stays within its bucket, so p50/p95 sit inside [min, max]·(1±25%)).
  EXPECT_LE(op->min_ns, op->max_ns);
  EXPECT_LE(op->p50_ns, op->p95_ns);
  EXPECT_GE(static_cast<double>(op->p95_ns), 0.75 * op->min_ns);
  EXPECT_LE(static_cast<double>(op->p50_ns), 1.25 * op->max_ns);
  EXPECT_DOUBLE_EQ(op->AvgNs(),
                   static_cast<double>(op->total_ns) / kCalls);
}

TEST(ProfilerTest, SelfTimeAndCoverageFromNesting) {
  StartWallClockProfiling();
  { HEAD_PROF_SCOPE("test.warmup"); }  // one-time slot-claim cost off-path
  for (int i = 0; i < 8; ++i) {
    HEAD_PROF_SCOPE("test.root");
    SpinNs(1000);  // root self work
    {
      HEAD_PROF_OP("test.child", 4, 4, 0, 0, 0);
      SpinNs(8000);  // dominates: coverage should be high
    }
  }
  obs::StopProfiling();
  const obs::ProfileReport report = obs::CollectProfile();

  const obs::OpStats* root = FindOp(report, "test.root");
  const obs::OpStats* child = FindOp(report, "test.child");
  ASSERT_NE(root, nullptr);
  ASSERT_NE(child, nullptr);
  // The child's total is subtracted from the root's self.
  EXPECT_LE(root->self_ns, root->total_ns - child->total_ns);
  EXPECT_EQ(child->self_ns, child->total_ns);
  // test.root dominates the roots (the warmup scope adds a few ns), and
  // the child work dominates the coverage split (8:1 spin ratio ⇒ well
  // above 60% even with scope overhead on a noisy box).
  EXPECT_GE(report.root_total_ns, root->total_ns);
  EXPECT_LT(report.root_total_ns, root->total_ns + 100 * 1000u);
  EXPECT_GT(report.coverage, 0.6);
  EXPECT_LE(report.coverage, 1.0);
}

TEST(ProfilerTest, PhaseSplitsSameShape) {
  StartWallClockProfiling();
  {
    HEAD_PROF_OP("test.op", 8, 8, 8, 100, 100);
    SpinNs(500);
  }
  {
    obs::ScopedProfPhase bwd(obs::ProfPhase::kBackward);
    for (int i = 0; i < 2; ++i) {
      HEAD_PROF_OP("test.op", 8, 8, 8, 100, 100);
      SpinNs(500);
    }
  }
  obs::StopProfiling();
  const obs::ProfileReport report = obs::CollectProfile();
  const obs::OpStats* fwd = FindOp(report, "test.op", obs::ProfPhase::kForward);
  const obs::OpStats* bwd =
      FindOp(report, "test.op", obs::ProfPhase::kBackward);
  ASSERT_NE(fwd, nullptr);
  ASSERT_NE(bwd, nullptr);
  EXPECT_EQ(fwd->count, 1);
  EXPECT_EQ(bwd->count, 2);
}

TEST(ProfilerTest, RooflineInjectionAndBound) {
  obs::RooflinePeaks peaks;
  peaks.gflops = 40.0;
  peaks.gbps = 20.0;
  peaks.source = "test-injected";
  obs::SetRooflinePeaks(peaks);
  EXPECT_EQ(obs::GetRooflinePeaks().source, "test-injected");
  // Memory-bound below the ridge (40/20 = 2 flops/byte), compute-bound above.
  EXPECT_DOUBLE_EQ(obs::RooflineBoundGflops(1.0, peaks), 20.0);
  EXPECT_DOUBLE_EQ(obs::RooflineBoundGflops(16.0, peaks), 40.0);
}

// The ISSUE 8 fallback contract: when perf_event_open fails (permissions,
// seccomp, no kernel support), profiling must neither crash nor lose any
// wall-clock-derived column — only hw.available flips off with the errno
// tag as the status.
class PerfFallbackTest : public ::testing::TestWithParam<int> {
  void TearDown() override {
    obs::internal::SetPerfOpenFailureForTest(0);  // restore real probing
  }
};

TEST_P(PerfFallbackTest, WallClockColumnsSurviveOpenFailure) {
  obs::internal::SetPerfOpenFailureForTest(GetParam());

  obs::PerfCounterGroup group;
  EXPECT_FALSE(group.Open());
  EXPECT_FALSE(group.open());
  EXPECT_FALSE(obs::PerfCountersAvailable());

  obs::ProfilerOptions options;
  options.hw_counters = true;  // ask for counters; the open must fail cleanly
  obs::StartProfiling(options);
  for (int i = 0; i < 16; ++i) {
    HEAD_PROF_OP("test.fallback", 32, 32, 32, 2 * 32 * 32 * 32, 3 * 8192);
    SpinNs(1000);
  }
  obs::StopProfiling();
  const obs::ProfileReport report = obs::CollectProfile();

  EXPECT_FALSE(report.hw.available);
  EXPECT_EQ(report.hw.status, GetParam() == EACCES ? "eacces" : "enosys");
  const obs::OpStats* op = FindOp(report, "test.fallback");
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->count, 16);
  EXPECT_GT(op->total_ns, 0u);
  EXPECT_GT(op->Gflops(), 0.0);  // GFLOP/s must not zero out without hw
  EXPECT_GT(op->p95_ns, 0u);
}

INSTANTIATE_TEST_SUITE_P(Errnos, PerfFallbackTest,
                         ::testing::Values(EACCES, ENOSYS));

TEST(ProfilerTest, TextAndJsonExports) {
  StartWallClockProfiling();
  {
    HEAD_PROF_OP("test.export", 10, 20, 30, 12000, 4000);
    SpinNs(500);
  }
  obs::StopProfiling();
  const obs::ProfileReport report = obs::CollectProfile();

  const std::string text = obs::ProfileToText(report, 0);
  EXPECT_NE(text.find("test.export"), std::string::npos);
  EXPECT_NE(text.find("10x20x30"), std::string::npos);
  EXPECT_NE(text.find("coverage"), std::string::npos);

  const std::string json = obs::ProfileToJson(report);
  EXPECT_NE(json.find("\"schema\":\"head-profile-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"op\":\"test.export\""), std::string::npos);

  const std::string path =
      ::testing::TempDir() + "/obs_profiler_test_profile.json";
  ASSERT_TRUE(obs::WriteProfileJsonFile(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("head-profile-v1"), std::string::npos);
  std::remove(path.c_str());
}

TEST(ProfilerTest, ChromeTraceCarriesCounterTracks) {
  StartWallClockProfiling();
  // Flops-carrying ops spread past the 500 µs sampling throttle so the
  // session records at least two cumulative-throughput samples.
  for (int i = 0; i < 8; ++i) {
    HEAD_PROF_OP("test.counters", 32, 32, 32, 1 << 20, 1 << 18);
    SpinNs(200 * 1000);
  }
  obs::StopProfiling();

  const std::string path =
      ::testing::TempDir() + "/obs_profiler_test_trace.json";
  ASSERT_TRUE(obs::WriteChromeTraceWithCountersFile(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string trace = buf.str();
  EXPECT_NE(trace.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("GFLOP/s"), std::string::npos);
  EXPECT_NE(trace.find("GB/s"), std::string::npos);
  std::remove(path.c_str());
}

// TSan target: four worker threads each stepping its own env, every step
// recording dozens of ops into per-thread shards concurrently with the
// main thread's own profiled scopes.
TEST(ProfilerTest, MultiThreadedEnvPoolRollout) {
  rl::EnvConfig env_config;
  env_config.sim.road.length_m = 400.0;
  env_config.sim.spawn.back_margin_m = 120.0;
  env_config.sim.spawn.front_margin_m = 120.0;
  env_config.use_prediction = false;
  rl::PdqnConfig agent_config;
  Rng rng(21);
  auto agent = rl::MakePDqnAgent(agent_config, rng);

  parallel::ThreadPool pool(4);
  parallel::EnvPool envs(
      4,
      [&](int) {
        return std::make_unique<rl::DrivingEnv>(env_config, nullptr, 1);
      },
      &pool);
  parallel::EnvPool::RolloutOptions opts;
  opts.seed_base = 31;
  opts.max_steps_per_episode = 60;

  StartWallClockProfiling();
  {
    HEAD_PROF_SCOPE("test.rollout");
    const auto results = envs.RunEpisodes(*agent, 0, 8, opts);
    EXPECT_EQ(results.size(), 8u);
  }
  obs::StopProfiling();
  const obs::ProfileReport report = obs::CollectProfile();

  EXPECT_GE(report.threads, 1);
  EXPECT_EQ(report.dropped_ops, 0);
  const obs::OpStats* step = FindOp(report, "env.step");
  ASSERT_NE(step, nullptr);
  EXPECT_GT(step->count, 0);
  EXPECT_NE(FindOp(report, "env.perceive"), nullptr);
  EXPECT_NE(FindOp(report, "rl.act"), nullptr);
  EXPECT_GT(report.coverage, 0.0);
}

}  // namespace
}  // namespace head
