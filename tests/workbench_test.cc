// Bench workbench: profile selection and HEAD-config derivation (no
// training — the heavy paths are exercised by the bench binaries).
#include "eval/workbench.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace head::eval {
namespace {

TEST(BenchProfileTest, FastAndPaperDiffer) {
  const BenchProfile fast = BenchProfile::Fast();
  const BenchProfile paper = BenchProfile::Paper();
  EXPECT_EQ(fast.name, "fast");
  EXPECT_EQ(paper.name, "paper");
  EXPECT_LT(fast.rl_train.episodes, paper.rl_train.episodes);
  EXPECT_LT(fast.rl_sim.road.length_m, paper.rl_sim.road.length_m);
  EXPECT_EQ(paper.rl_train.episodes, 4000);   // Sec. V-A
  EXPECT_EQ(paper.pdqn.batch_size, 64);       // Sec. V-A
  EXPECT_EQ(paper.test_episodes, 500);        // Sec. V-B
  EXPECT_DOUBLE_EQ(paper.rl_sim.road.length_m, 3000.0);
}

TEST(BenchProfileTest, FromEnvSelectsProfile) {
  ::setenv("HEAD_BENCH_PROFILE", "paper", 1);
  EXPECT_EQ(BenchProfile::FromEnv().name, "paper");
  ::setenv("HEAD_BENCH_PROFILE", "fast", 1);
  EXPECT_EQ(BenchProfile::FromEnv().name, "fast");
  ::unsetenv("HEAD_BENCH_PROFILE");
  EXPECT_EQ(BenchProfile::FromEnv().name, "fast");
}

TEST(BenchProfileTest, PaperHyperparametersMatchSectionVA) {
  const BenchProfile p = BenchProfile::Paper();
  const core::HeadConfig head = MakeHeadConfig(p, core::HeadVariant::Full());
  EXPECT_DOUBLE_EQ(head.pdqn.gamma, 0.9);
  EXPECT_DOUBLE_EQ(head.pdqn.learning_rate, 0.001);
  EXPECT_EQ(head.pdqn.buffer_capacity, 20000u);
  EXPECT_DOUBLE_EQ(head.pdqn.tau, 0.01);
  EXPECT_DOUBLE_EQ(head.pdqn.a_max, 3.0);
  EXPECT_EQ(head.history_z, 5);
  EXPECT_DOUBLE_EQ(head.sensor.range_m, 100.0);
  EXPECT_DOUBLE_EQ(head.reward.weights.safety, 0.9);
  EXPECT_DOUBLE_EQ(head.reward.weights.efficiency, 0.8);
  EXPECT_DOUBLE_EQ(head.reward.weights.comfort, 0.6);
  EXPECT_DOUBLE_EQ(head.reward.weights.impact, 0.2);
  EXPECT_DOUBLE_EQ(head.reward.ttc_scale_s, 4.0);
  EXPECT_DOUBLE_EQ(head.reward.impact_v_thr_mps, 0.5);
}

TEST(BenchProfileTest, VariantDrivesAgentChoice) {
  const BenchProfile p = BenchProfile::Fast();
  const core::HeadConfig full =
      MakeHeadConfig(p, core::HeadVariant::Full());
  EXPECT_TRUE(full.variant.use_bp_dqn);
  const core::HeadConfig ablated =
      MakeHeadConfig(p, core::HeadVariant::WithoutBpDqn());
  EXPECT_FALSE(ablated.variant.use_bp_dqn);
}

TEST(RealDefaultsTest, MatchesPaperGeometry) {
  const data::RealDatasetConfig real = data::RealDatasetConfig::Default();
  EXPECT_DOUBLE_EQ(real.sim.road.length_m, 1140.0);  // 1.14 km
  EXPECT_EQ(real.sim.road.num_lanes, 6);
  EXPECT_DOUBLE_EQ(real.train_fraction, 0.8);        // 4:1 split
  EXPECT_EQ(real.history_z, 5);                      // z = 5
}

}  // namespace
}  // namespace head::eval
