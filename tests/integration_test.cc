// End-to-end integration: the full perceive→predict→decide→simulate loop,
// the HeadAgent public API, variant configurations, and checkpointing.
#include <gtest/gtest.h>

#include "core/head_agent.h"
#include "data/real_dataset.h"
#include "eval/episode_runner.h"
#include "nn/serialize.h"
#include "perception/trainer.h"
#include "rl/trainer.h"

namespace head {
namespace {

core::HeadConfig SmallHeadConfig() {
  core::HeadConfig config;
  config.road.length_m = 300.0;
  config.pdqn.hidden = 16;
  config.pdqn.warmup_transitions = 50;
  config.pdqn.batch_size = 8;
  return config;
}

sim::SimConfig SmallSim(const RoadConfig& road) {
  sim::SimConfig sim;
  sim.road = road;
  sim.spawn.back_margin_m = 100.0;
  sim.spawn.front_margin_m = 100.0;
  return sim;
}

TEST(IntegrationTest, VariantNames) {
  EXPECT_STREQ(core::HeadVariant::Full().Name(), "HEAD");
  EXPECT_STREQ(core::HeadVariant::WithoutPvc().Name(), "HEAD-w/o-PVC");
  EXPECT_STREQ(core::HeadVariant::WithoutLstGat().Name(), "HEAD-w/o-LST-GAT");
  EXPECT_STREQ(core::HeadVariant::WithoutBpDqn().Name(), "HEAD-w/o-BP-DQN");
  EXPECT_STREQ(core::HeadVariant::WithoutImpact().Name(), "HEAD-w/o-IMP");
}

TEST(IntegrationTest, EnvConfigReflectsVariant) {
  core::HeadConfig config = SmallHeadConfig();
  config.variant = core::HeadVariant::WithoutImpact();
  const rl::EnvConfig env = config.MakeEnvConfig(SmallSim(config.road));
  EXPECT_FALSE(env.reward.use_impact);
  EXPECT_TRUE(env.use_pvc);
  config.variant = core::HeadVariant::WithoutPvc();
  EXPECT_FALSE(config.MakeEnvConfig(SmallSim(config.road)).use_pvc);
}

TEST(IntegrationTest, HeadAgentDrivesAnEpisode) {
  core::HeadConfig config = SmallHeadConfig();
  Rng rng(3);
  auto predictor = std::make_shared<perception::LstGat>(
      perception::LstGatConfig{.d_phi1 = 16, .d_phi3 = 16, .d_lstm = 16},
      rng);
  std::shared_ptr<rl::PamdpAgent> agent =
      rl::MakeBpDqnAgent(config.pdqn, rng);
  core::HeadAgent head(config, predictor, agent);

  eval::RunnerConfig runner;
  runner.sim = SmallSim(config.road);
  runner.episodes = 1;
  const eval::EpisodeRecord rec = eval::RunEpisode(head, runner, 123);
  EXPECT_GT(rec.driving_time_s, 0.0);
}

TEST(IntegrationTest, ShortTrainingImprovesReward) {
  core::HeadConfig config = SmallHeadConfig();
  Rng rng(5);
  std::shared_ptr<rl::PamdpAgent> agent =
      rl::MakeBpDqnAgent(config.pdqn, rng);
  rl::EnvConfig env_config = config.MakeEnvConfig(SmallSim(config.road));
  env_config.use_prediction = false;
  env_config.use_pvc = true;
  rl::DrivingEnv env(env_config, nullptr, 1);
  rl::RlTrainConfig train;
  train.episodes = 25;
  const rl::RlTrainResult result = rl::TrainAgent(*agent, env, train);
  ASSERT_EQ(result.episode_rewards.size(), 25u);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_LE(result.convergence_seconds, result.total_seconds);
}

TEST(IntegrationTest, PerceptionPipelineTrainsOnGeneratedData) {
  data::RealDatasetConfig data_config = data::RealDatasetConfig::Default();
  data_config.episodes = 1;
  data_config.max_steps_per_episode = 60;
  const data::RealDataset dataset = data::GenerateRealDataset(data_config);
  ASSERT_GT(dataset.train.size(), 10u);

  Rng rng(7);
  perception::LstGat model(
      perception::LstGatConfig{.d_phi1 = 16, .d_phi3 = 16, .d_lstm = 16},
      rng);
  const double before =
      perception::EvaluatePredictor(model, dataset.test).mse;
  perception::PredictionTrainConfig train;
  train.epochs = 3;
  perception::TrainPredictor(model, dataset.train, train);
  const double after =
      perception::EvaluatePredictor(model, dataset.test).mse;
  EXPECT_LT(after, before);
}

TEST(IntegrationTest, AgentCheckpointRoundTripsThroughHeadAgent) {
  core::HeadConfig config = SmallHeadConfig();
  Rng rng(9);
  std::shared_ptr<rl::PdqnAgent> a = rl::MakeBpDqnAgent(config.pdqn, rng);
  std::shared_ptr<rl::PdqnAgent> b = rl::MakeBpDqnAgent(config.pdqn, rng);

  const std::string path = ::testing::TempDir() + "/bpdqn.bin";
  nn::SaveParamsToFile(a->x_net(), path);
  ASSERT_TRUE(nn::LoadParamsFromFile(b->x_net(), path));

  rl::AugmentedState s;
  Rng srng(11);
  s.h = nn::Tensor::Uniform(rl::kStateHRows, rl::kStateCols, -1, 1, srng);
  s.f = nn::Tensor::Uniform(rl::kStateFRows, rl::kStateCols, -1, 1, srng);
  EXPECT_EQ(a->ActionParams(s), b->ActionParams(s));
}

TEST(IntegrationTest, DeterministicEpisodeThroughWholeStack) {
  core::HeadConfig config = SmallHeadConfig();
  Rng rng1(13);
  Rng rng2(13);
  auto predictor1 = std::make_shared<perception::LstGat>(
      perception::LstGatConfig{.d_phi1 = 16, .d_phi3 = 16, .d_lstm = 16},
      rng1);
  auto predictor2 = std::make_shared<perception::LstGat>(
      perception::LstGatConfig{.d_phi1 = 16, .d_phi3 = 16, .d_lstm = 16},
      rng2);
  std::shared_ptr<rl::PamdpAgent> agent1 =
      rl::MakeBpDqnAgent(config.pdqn, rng1);
  std::shared_ptr<rl::PamdpAgent> agent2 =
      rl::MakeBpDqnAgent(config.pdqn, rng2);
  core::HeadAgent head1(config, predictor1, agent1);
  core::HeadAgent head2(config, predictor2, agent2);
  eval::RunnerConfig runner;
  runner.sim = SmallSim(config.road);
  const eval::EpisodeRecord r1 = eval::RunEpisode(head1, runner, 77);
  const eval::EpisodeRecord r2 = eval::RunEpisode(head2, runner, 77);
  EXPECT_DOUBLE_EQ(r1.driving_time_s, r2.driving_time_s);
  EXPECT_DOUBLE_EQ(r1.mean_v_mps, r2.mean_v_mps);
}

}  // namespace
}  // namespace head
