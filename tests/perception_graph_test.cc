// Spatial-temporal graph construction and the prediction models: feature
// encoding, network shapes, attention normalization, parallel output, and
// learnability (overfit a tiny dataset).
#include <gtest/gtest.h>

#include "perception/baselines/ed_lstm.h"
#include "perception/baselines/gas_led.h"
#include "perception/baselines/lstm_mlp.h"
#include "perception/lst_gat.h"
#include "perception/st_graph.h"
#include "perception/trainer.h"

namespace head::perception {
namespace {

RoadConfig DefaultRoad() { return RoadConfig{}; }

HistoryBuffer MovingScene(int z) {
  HistoryBuffer buffer(z);
  for (int k = 0; k < z; ++k) {
    ObservationFrame frame;
    frame.ego = {3, 500.0 + 10.0 * k, 20.0};
    frame.observed = {
        {7, {3, 540.0 + 9.0 * k, 18.0}},   // front, slowly approached
        {8, {2, 520.0 + 11.0 * k, 22.0}},  // front-left, pulling away
        {9, {4, 470.0 + 10.0 * k, 20.0}},  // rear-right, matched speed
    };
    buffer.Push(frame);
  }
  return buffer;
}

StGraph MovingGraph() {
  const RoadConfig road = DefaultRoad();
  const HistoryBuffer buffer = MovingScene(5);
  return BuildStGraph(ConstructPhantoms(buffer, road, 100.0), road);
}

TEST(StGraphTest, ShapesAndBookkeeping) {
  const StGraph graph = MovingGraph();
  EXPECT_EQ(graph.z(), 5);
  EXPECT_EQ(graph.steps.size(), 5u);
  EXPECT_FALSE(graph.target_is_phantom[kFront]);
  EXPECT_EQ(graph.target_ids[kFront], 7);
  EXPECT_TRUE(graph.target_is_phantom[kRear]);  // nobody directly behind
  EXPECT_DOUBLE_EQ(graph.ego_current.lon_m, 540.0);
}

TEST(StGraphTest, RelativeFeaturesMatchEquations) {
  const RoadConfig road = DefaultRoad();
  const StGraph graph = MovingGraph();
  const FeatureScale scale;
  // Front target (id 7) at newest step: d_lon = (540+36) − (500+40) = 36.
  const auto& feat = graph.steps.back().feat[kFront][0];
  EXPECT_NEAR(feat[0], 0.0, 1e-12);                         // same lane
  EXPECT_NEAR(feat[1], 36.0 * scale.lon, 1e-12);            // d_lon scaled
  EXPECT_NEAR(feat[2], -2.0 * scale.v, 1e-12);              // 18 − 20
  EXPECT_NEAR(feat[3], 0.0, 1e-12);                         // real vehicle
  EXPECT_NEAR(graph.target_rel_current[kFront][1], 36.0, 1e-12);
  (void)road;
}

TEST(StGraphTest, PhantomFlagSetOnConstructedTargets) {
  const StGraph graph = MovingGraph();
  const auto& feat = graph.steps.back().feat[kRear][0];
  EXPECT_DOUBLE_EQ(feat[3], 1.0);
}

TEST(StGraphTest, EgoNodeUsesRawScaledState) {
  const RoadConfig road = DefaultRoad();
  const StGraph graph = MovingGraph();
  // The mirror slot of the front target holds the ego (Eq. 8 row 1).
  const auto& ego_feat =
      graph.steps.back().feat[kFront][1 + MirrorArea(kFront)];
  EXPECT_NEAR(ego_feat[0], 3.0 / road.num_lanes, 1e-12);
  EXPECT_NEAR(ego_feat[1], 540.0 / road.length_m, 1e-12);
  EXPECT_NEAR(ego_feat[2], 20.0 / road.v_max_mps, 1e-12);
}

TEST(LstGatTest, OutputShapeAndDeterminism) {
  Rng rng(3);
  const LstGat model(LstGatConfig{}, rng);
  const StGraph graph = MovingGraph();
  const nn::Var out1 = model.ForwardScaled(graph);
  const nn::Var out2 = model.ForwardScaled(graph);
  EXPECT_EQ(out1.value().rows(), kNumAreas);
  EXPECT_EQ(out1.value().cols(), 3);
  EXPECT_EQ(out1.value(), out2.value());
}

TEST(LstGatTest, AttentionWeightsFormDistribution) {
  Rng rng(3);
  const LstGat model(LstGatConfig{}, rng);
  const StGraph graph = MovingGraph();
  for (int i = 0; i < kNumAreas; ++i) {
    const std::vector<double> alpha = model.AttentionWeights(graph, i);
    ASSERT_EQ(alpha.size(), static_cast<size_t>(kNodesPerTarget));
    double sum = 0.0;
    for (double a : alpha) {
      EXPECT_GT(a, 0.0);
      sum += a;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(LstGatTest, PredictDecodesResidualAroundCurrentState) {
  Rng rng(3);
  const LstGat model(LstGatConfig{}, rng);
  const StGraph graph = MovingGraph();
  const Prediction pred = model.Predict(graph);
  // Untrained network outputs are small; predictions should sit near the
  // current relative states (residual decoding).
  for (int i = 0; i < kNumAreas; ++i) {
    EXPECT_NEAR(pred[i].d_lon_m, graph.target_rel_current[i][1], 150.0);
    EXPECT_NEAR(pred[i].d_lat_m, graph.target_rel_current[i][0], 15.0);
  }
}

PredictionSample MakeSample() {
  PredictionSample s;
  s.graph = MovingGraph();
  for (int i = 0; i < kNumAreas; ++i) {
    s.truth.valid[i] = !s.graph.target_is_phantom[i];
    // Plausible next step: everything advances by one Δt.
    s.truth.value[i] = {s.graph.target_rel_current[i][0],
                        s.graph.target_rel_current[i][1] +
                            s.graph.target_rel_current[i][2] * 0.5,
                        s.graph.target_rel_current[i][2]};
  }
  return s;
}

template <typename Model>
void ExpectLearns(Model&& model, double min_improvement) {
  std::vector<PredictionSample> data = {MakeSample()};
  const double before = PredictionLoss(model, data);
  PredictionTrainConfig config;
  config.epochs = 60;
  config.learning_rate = 0.01;
  TrainPredictor(model, data, config);
  const double after = PredictionLoss(model, data);
  EXPECT_LT(after, before * min_improvement)
      << "before=" << before << " after=" << after;
}

TEST(PredictorLearningTest, LstGatOverfitsOneSample) {
  Rng rng(5);
  LstGat model(LstGatConfig{}, rng);
  ExpectLearns(model, 0.2);
}

TEST(PredictorLearningTest, LstmMlpOverfitsOneSample) {
  Rng rng(5);
  LstmMlp model(64, rng);
  ExpectLearns(model, 0.2);
}

TEST(PredictorLearningTest, EdLstmOverfitsOneSample) {
  Rng rng(5);
  EdLstm model(64, rng);
  ExpectLearns(model, 0.2);
}

TEST(PredictorLearningTest, GasLedOverfitsOneSample) {
  Rng rng(5);
  GasLed model(64, rng);
  ExpectLearns(model, 0.2);
}

TEST(PredictorTest, MaskedTruthProducesZeroLossContribution) {
  Rng rng(5);
  const LstGat model(LstGatConfig{}, rng);
  PredictionSample s = MakeSample();
  for (int i = 0; i < kNumAreas; ++i) s.truth.valid[i] = false;
  const double loss = PredictionLoss(model, {s});
  EXPECT_DOUBLE_EQ(loss, 0.0);
}

TEST(PredictorTest, PerComponentMetricsAverageToAggregate) {
  Rng rng(5);
  const LstGat model(LstGatConfig{}, rng);
  const std::vector<PredictionSample> data = {MakeSample()};
  const PredictionMetrics agg = EvaluatePredictor(model, data);
  const PerComponentMetrics per =
      EvaluatePredictorPerComponent(model, data);
  EXPECT_NEAR(agg.mae,
              (per.d_lat.mae + per.d_lon.mae + per.v_rel.mae) / 3.0, 1e-12);
  EXPECT_NEAR(agg.mse,
              (per.d_lat.mse + per.d_lon.mse + per.v_rel.mse) / 3.0, 1e-12);
}

TEST(PredictorTest, EvaluateReportsConsistentMetrics) {
  Rng rng(5);
  const LstGat model(LstGatConfig{}, rng);
  const std::vector<PredictionSample> data = {MakeSample()};
  const PredictionMetrics m = EvaluatePredictor(model, data);
  EXPECT_GE(m.mae, 0.0);
  EXPECT_GE(m.mse, 0.0);
  EXPECT_NEAR(m.rmse, std::sqrt(m.mse), 1e-12);
  EXPECT_GE(m.rmse, m.mae - 1e-12);  // RMSE ≥ MAE always
}

}  // namespace
}  // namespace head::perception
