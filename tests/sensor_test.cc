// Sensor model: detection radius and line-of-sight occlusion geometry.
#include "sensor/sensor_model.h"

#include <gtest/gtest.h>

#include "sensor/occlusion.h"

namespace head::sensor {
namespace {

RoadConfig DefaultRoad() { return RoadConfig{}; }

TEST(OcclusionGeometryTest, SegmentRectIntersection) {
  // Horizontal segment crossing a unit box at the origin.
  EXPECT_TRUE(SegmentIntersectsRect(-2, 0, 2, 0, 0, 0, 1, 1));
  // Segment passing above the box.
  EXPECT_FALSE(SegmentIntersectsRect(-2, 2, 2, 2, 0, 0, 1, 1));
  // Segment ending before the box.
  EXPECT_FALSE(SegmentIntersectsRect(-3, 0, -2, 0, 0, 0, 1, 1));
  // Diagonal through a corner region.
  EXPECT_TRUE(SegmentIntersectsRect(-2, -2, 2, 2, 0, 0, 1, 1));
  // Degenerate segment inside the box.
  EXPECT_TRUE(SegmentIntersectsRect(0.1, 0.1, 0.1, 0.1, 0, 0, 1, 1));
}

TEST(OcclusionTest, SameLaneBlockerHidesVehicleBehindIt) {
  const RoadConfig road = DefaultRoad();
  const VehicleState observer{3, 0.0, 20.0};
  const VehicleState blocker{3, 30.0, 20.0};
  const VehicleState target{3, 60.0, 20.0};
  EXPECT_TRUE(Occludes(observer, target, blocker, road.lane_width_m));
}

TEST(OcclusionTest, AdjacentLaneVehicleDoesNotHideSameLaneTarget) {
  const RoadConfig road = DefaultRoad();
  const VehicleState observer{3, 0.0, 20.0};
  const VehicleState blocker{2, 30.0, 20.0};  // one lane over
  const VehicleState target{3, 60.0, 20.0};
  EXPECT_FALSE(Occludes(observer, target, blocker, road.lane_width_m));
}

TEST(OcclusionTest, DiagonalShadowMatchesFig4Geometry) {
  const RoadConfig road = DefaultRoad();
  // Fig. 4, case (1,1): C1 front-left of A; C11 beyond it on the same ray
  // (one more lane left, double the longitudinal distance).
  const VehicleState a{3, 0.0, 20.0};
  const VehicleState c1{2, 20.0, 20.0};
  const VehicleState c11{1, 40.0, 20.0};
  EXPECT_TRUE(Occludes(a, c11, c1, road.lane_width_m));
}

TEST(OcclusionTest, BlockerBehindTargetDoesNotOcclude) {
  const RoadConfig road = DefaultRoad();
  const VehicleState observer{3, 0.0, 20.0};
  const VehicleState target{3, 30.0, 20.0};
  const VehicleState blocker{3, 60.0, 20.0};  // beyond the target
  EXPECT_FALSE(Occludes(observer, target, blocker, road.lane_width_m));
}

TEST(SensorTest, RangeCutoff) {
  const RoadConfig road = DefaultRoad();
  SensorConfig sensor;
  sensor.range_m = 100.0;
  sensor.model_occlusion = false;
  const VehicleState ego{3, 0.0, 20.0};
  std::vector<sim::VehicleSnapshot> global = {
      {0, ego},
      {1, {3, 99.0, 20.0}},
      {2, {3, 101.0, 20.0}},
      {3, {3, -99.0, 20.0}},
  };
  const auto observed = Observe(global, ego, sensor, road);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0].id, 1);
  EXPECT_EQ(observed[1].id, 3);
}

TEST(SensorTest, RangeIsEuclideanAcrossLanes) {
  const RoadConfig road = DefaultRoad();
  SensorConfig sensor;
  sensor.range_m = 10.0;
  sensor.model_occlusion = false;
  const VehicleState ego{1, 0.0, 20.0};
  // 9.9 m ahead but 3 lanes over (9.6 m lateral): distance ≈ 13.8 > 10.
  std::vector<sim::VehicleSnapshot> global = {{1, {4, 9.9, 20.0}}};
  EXPECT_TRUE(Observe(global, ego, sensor, road).empty());
}

TEST(SensorTest, OcclusionRemovesHiddenVehicle) {
  const RoadConfig road = DefaultRoad();
  SensorConfig sensor;
  const VehicleState ego{3, 0.0, 20.0};
  std::vector<sim::VehicleSnapshot> global = {
      {1, {3, 30.0, 20.0}},
      {2, {3, 60.0, 20.0}},  // hidden behind 1
      {3, {2, 40.0, 20.0}},  // visible, other lane
  };
  const auto observed = Observe(global, ego, sensor, road);
  ASSERT_EQ(observed.size(), 2u);
  EXPECT_EQ(observed[0].id, 1);
  EXPECT_EQ(observed[1].id, 3);
}

TEST(SensorTest, EgoNeverObservesItself) {
  const RoadConfig road = DefaultRoad();
  SensorConfig sensor;
  const VehicleState ego{3, 0.0, 20.0};
  std::vector<sim::VehicleSnapshot> global = {{kEgoVehicleId, ego}};
  EXPECT_TRUE(Observe(global, ego, sensor, road).empty());
}

TEST(SensorTest, DisablingOcclusionRestoresHiddenVehicle) {
  const RoadConfig road = DefaultRoad();
  SensorConfig sensor;
  sensor.model_occlusion = false;
  const VehicleState ego{3, 0.0, 20.0};
  std::vector<sim::VehicleSnapshot> global = {
      {1, {3, 30.0, 20.0}},
      {2, {3, 60.0, 20.0}},
  };
  EXPECT_EQ(Observe(global, ego, sensor, road).size(), 2u);
}

}  // namespace
}  // namespace head::sensor
