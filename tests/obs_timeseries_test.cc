// Metrics time series: schema growth, ring wrap accounting, CSV/JSON
// export, the registry sampling bridge, and the rl::Trainer integration
// (per-episode training curves).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "parallel/env_pool.h"
#include "parallel/thread_pool.h"
#include "rl/env.h"
#include "rl/pdqn_agent.h"
#include "rl/trainer.h"

namespace head::obs {
namespace {

TEST(TimeSeriesTest, AppendGrowsSchemaAndBackfillsWithNaN) {
  TimeSeries ts(16);
  ts.Append(0.0, {{"loss", 1.0}});
  ts.Append(1.0, {{"loss", 0.5}, {"epsilon", 0.9}});
  EXPECT_EQ(ts.rows(), 2);
  EXPECT_EQ(ts.appended(), 2);
  EXPECT_EQ(ts.columns(), (std::vector<std::string>{"loss", "epsilon"}));

  const std::string csv = ts.ToCsv();
  // Row 0 has no epsilon: its cell is empty.
  EXPECT_NE(csv.find("t,loss,epsilon\n"), std::string::npos);
  EXPECT_NE(csv.find("0,1,\n"), std::string::npos);
  EXPECT_NE(csv.find("1,0.5,0.9\n"), std::string::npos);

  const std::string json = ts.ToJson();
  EXPECT_NE(json.find("\"columns\":[\"t\",\"loss\",\"epsilon\"]"),
            std::string::npos);
  EXPECT_NE(json.find("[0,1,null]"), std::string::npos);
}

TEST(TimeSeriesTest, RingWrapDropsOldestAndCountsOverwrites) {
  TimeSeries ts(4);
  const int64_t counter_before =
      GetCounter("obs.timeseries.overwritten").value();
  for (int i = 0; i < 10; ++i) {
    ts.Append(i, {{"v", static_cast<double>(i)}});
  }
  EXPECT_EQ(ts.rows(), 4);
  EXPECT_EQ(ts.appended(), 10);
  EXPECT_EQ(ts.overwritten(), 6);
  EXPECT_EQ(GetCounter("obs.timeseries.overwritten").value() - counter_before,
            6);
  const std::string csv = ts.ToCsv();
  EXPECT_EQ(csv.find("\n5,"), std::string::npos) << "row 5 was overwritten";
  // Oldest surviving row first.
  EXPECT_NE(csv.find("t,v\n6,6\n7,7\n8,8\n9,9\n"), std::string::npos) << csv;
}

TEST(TimeSeriesTest, ClearDropsRowsButKeepsColumns) {
  TimeSeries ts(4);
  ts.Append(0.0, {{"v", 1.0}});
  ts.Clear();
  EXPECT_EQ(ts.rows(), 0);
  EXPECT_EQ(ts.columns(), (std::vector<std::string>{"v"}));
  ts.Append(1.0, {{"v", 2.0}});
  EXPECT_EQ(ts.rows(), 1);
}

TEST(TimeSeriesTest, SampleRegistryCapturesCountersGaugesHistograms) {
  GetCounter("ts_test.counter").Reset();
  GetCounter("ts_test.counter").Add(5);
  GetGauge("ts_test.gauge").Set(2.5);
  Histogram& h = GetHistogram("ts_test.hist", {1.0, 10.0});
  h.Reset();
  h.Observe(2.0);
  h.Observe(4.0);

  TimeSeries ts(8);
  ts.SampleRegistry(1.0, "ts_test.");
  EXPECT_EQ(ts.rows(), 1);
  const std::string csv = ts.ToCsv();
  EXPECT_NE(csv.find("ts_test.counter"), std::string::npos);
  EXPECT_NE(csv.find("ts_test.gauge"), std::string::npos);
  EXPECT_NE(csv.find("ts_test.hist.count"), std::string::npos);
  EXPECT_NE(csv.find("ts_test.hist.mean"), std::string::npos);
  // The prefix filter keeps unrelated registry metrics out of the schema.
  for (const std::string& col : ts.columns()) {
    EXPECT_EQ(col.rfind("ts_test.", 0), 0u) << col;
  }
  EXPECT_NE(csv.find(",5,"), std::string::npos) << "counter value " << csv;
  EXPECT_NE(csv.find(",3\n"), std::string::npos) << "hist mean " << csv;
}

TEST(TimeSeriesTest, RegistrySamplerHonorsInterval) {
  GetCounter("ts_sampler.counter").Add(1);
  TimeSeries ts(32);
  RegistrySampler sampler(&ts, /*interval_s=*/10.0, "ts_sampler.");
  EXPECT_TRUE(sampler.Tick(0.0)) << "first tick always samples";
  EXPECT_FALSE(sampler.Tick(5.0));
  EXPECT_FALSE(sampler.Tick(9.9));
  EXPECT_TRUE(sampler.Tick(10.0));
  EXPECT_FALSE(sampler.Tick(15.0));
  EXPECT_TRUE(sampler.Tick(21.0));
  EXPECT_EQ(sampler.samples(), 3);
  EXPECT_EQ(ts.rows(), 3);
}

TEST(TimeSeriesTest, WriteFilesRoundTrip) {
  TimeSeries ts(4);
  ts.Append(0.5, {{"v", 1.25}});
  const std::string csv_path = ::testing::TempDir() + "/ts_test.csv";
  const std::string json_path = ::testing::TempDir() + "/ts_test.json";
  ASSERT_TRUE(ts.WriteCsvFile(csv_path));
  ASSERT_TRUE(ts.WriteJsonFile(json_path));
  EXPECT_FALSE(ts.WriteCsvFile("/nonexistent_dir_xyz/ts.csv"));
}

/// rl::Trainer integration: training with a timeseries sink emits one row
/// per episode with the documented curve columns.
TEST(TimeSeriesTest, TrainerEmitsPerEpisodeCurves) {
  rl::EnvConfig env_config;
  env_config.sim.road.length_m = 400.0;
  env_config.sim.spawn.back_margin_m = 120.0;
  env_config.sim.spawn.front_margin_m = 120.0;
  env_config.use_prediction = false;
  rl::DrivingEnv env(env_config, nullptr, 1);

  rl::PdqnConfig agent_config;
  agent_config.batch_size = 8;
  agent_config.warmup_transitions = 20;
  agent_config.update_every = 1;
  Rng rng(7);
  auto agent = rl::MakePDqnAgent(agent_config, rng);

  TimeSeries curves;
  rl::RlTrainConfig train;
  train.episodes = 4;
  train.max_steps_per_episode = 30;
  train.seed = 5;
  train.timeseries = &curves;
  rl::TrainAgent(*agent, env, train);

  EXPECT_EQ(curves.rows(), 4);
  const std::vector<std::string> cols = curves.columns();
  for (const char* expected :
       {"episode", "reward", "epsilon", "reward.safety", "reward.efficiency",
        "reward.comfort", "reward.impact", "critic_loss"}) {
    bool found = false;
    for (const std::string& c : cols) found = found || c == expected;
    EXPECT_TRUE(found) << "missing column " << expected;
  }
  // Epsilon decays monotonically across the emitted rows; spot-check via
  // JSON export (epsilon starts at 1.0 in episode 0).
  const std::string json = curves.ToJson();
  EXPECT_NE(json.find("\"columns\""), std::string::npos);
  EXPECT_NE(json.find("\"rows\""), std::string::npos);
}

/// The EnvPool training overload feeds the same sink: one row per episode
/// regardless of collection-round batching.
TEST(TimeSeriesTest, ParallelTrainerEmitsPerEpisodeCurves) {
  rl::EnvConfig env_config;
  env_config.sim.road.length_m = 400.0;
  env_config.sim.spawn.back_margin_m = 120.0;
  env_config.sim.spawn.front_margin_m = 120.0;
  env_config.use_prediction = false;

  rl::PdqnConfig agent_config;
  agent_config.batch_size = 8;
  agent_config.warmup_transitions = 20;
  agent_config.update_every = 1;
  Rng rng(7);
  auto agent = rl::MakePDqnAgent(agent_config, rng);

  parallel::ThreadPool pool(2);
  parallel::EnvPool envs(
      2,
      [&](int) {
        return std::make_unique<rl::DrivingEnv>(env_config, nullptr, 1);
      },
      &pool);

  TimeSeries curves;
  rl::RlTrainConfig train;
  train.episodes = 4;
  train.max_steps_per_episode = 30;
  train.seed = 5;
  train.timeseries = &curves;
  rl::TrainAgent(*agent, envs, train);

  EXPECT_EQ(curves.rows(), 4);
  bool has_reward_col = false;
  for (const std::string& c : curves.columns()) {
    has_reward_col = has_reward_col || c == "reward";
  }
  EXPECT_TRUE(has_reward_col);
}

}  // namespace
}  // namespace head::obs
