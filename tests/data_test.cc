// Dataset substrate: sample extraction and REAL-surrogate generation.
#include <gtest/gtest.h>

#include "data/real_dataset.h"
#include "data/sample_extractor.h"

namespace head::data {
namespace {

TEST(SampleExtractorTest, EmitsNothingUntilHistoryFull) {
  const RoadConfig road;
  sensor::SensorConfig sensor;
  SampleExtractor extractor(road, sensor, /*history_z=*/3);
  const VehicleState ego{3, 0.0, 20.0};
  std::vector<sim::VehicleSnapshot> obs = {{7, {3, 40.0, 18.0}}};
  // Frames 1..3 build history; the sample staged at frame 3 completes at 4.
  EXPECT_FALSE(extractor.Push(ego, obs, obs).has_value());
  EXPECT_FALSE(extractor.Push(ego, obs, obs).has_value());
  EXPECT_FALSE(extractor.Push(ego, obs, obs).has_value());
  EXPECT_TRUE(extractor.Push(ego, obs, obs).has_value());
}

TEST(SampleExtractorTest, TruthIsRelativeToPreviousEgo) {
  const RoadConfig road;
  sensor::SensorConfig sensor;
  SampleExtractor extractor(road, sensor, 2);
  std::vector<sim::VehicleSnapshot> obs0 = {{7, {3, 140.0, 18.0}}};
  extractor.Push({3, 100.0, 20.0}, obs0, obs0);
  extractor.Push({3, 110.0, 20.0}, obs0, obs0);
  // Ground truth at the completing frame: vehicle 7 moved to 149.
  std::vector<sim::VehicleSnapshot> truth = {{7, {3, 149.0, 18.0}}};
  const auto sample = extractor.Push({3, 120.0, 20.0}, truth, truth);
  ASSERT_TRUE(sample.has_value());
  ASSERT_TRUE(sample->truth.valid[perception::kFront]);
  // Relative to the ego at the *previous* step (lon 110).
  EXPECT_DOUBLE_EQ(sample->truth.value[perception::kFront][1], 39.0);
  EXPECT_DOUBLE_EQ(sample->truth.value[perception::kFront][2], -2.0);
}

TEST(SampleExtractorTest, PhantomTargetsAreMasked) {
  const RoadConfig road;
  sensor::SensorConfig sensor;
  SampleExtractor extractor(road, sensor, 2);
  const VehicleState ego{3, 100.0, 20.0};
  std::vector<sim::VehicleSnapshot> obs = {{7, {3, 140.0, 18.0}}};
  extractor.Push(ego, obs, obs);
  extractor.Push(ego, obs, obs);
  const auto sample = extractor.Push(ego, obs, obs);
  ASSERT_TRUE(sample.has_value());
  EXPECT_TRUE(sample->truth.valid[perception::kFront]);
  for (int i = 0; i < perception::kNumAreas; ++i) {
    if (i == perception::kFront) continue;
    EXPECT_FALSE(sample->truth.valid[i]) << "area " << i;
  }
}

TEST(SampleExtractorTest, VanishedVehicleIsMasked) {
  const RoadConfig road;
  sensor::SensorConfig sensor;
  SampleExtractor extractor(road, sensor, 2);
  const VehicleState ego{3, 100.0, 20.0};
  std::vector<sim::VehicleSnapshot> obs = {{7, {3, 140.0, 18.0}}};
  extractor.Push(ego, obs, obs);
  extractor.Push(ego, obs, obs);
  // Vehicle 7 disappears from the ground truth at the completing frame.
  const auto sample = extractor.Push(ego, obs, {});
  EXPECT_FALSE(sample.has_value());  // no valid targets at all
}

TEST(RealDatasetTest, GeneratesSplitCorpus) {
  RealDatasetConfig config = RealDatasetConfig::Default();
  config.episodes = 1;
  config.max_steps_per_episode = 60;
  const RealDataset dataset = GenerateRealDataset(config);
  EXPECT_GT(dataset.train.size(), 20u);
  EXPECT_GT(dataset.test.size(), 5u);
  const double ratio =
      static_cast<double>(dataset.train.size()) /
      (dataset.train.size() + dataset.test.size());
  EXPECT_NEAR(ratio, config.train_fraction, 0.05);
}

TEST(RealDatasetTest, DeterministicForSameSeed) {
  RealDatasetConfig config = RealDatasetConfig::Default();
  config.episodes = 1;
  config.max_steps_per_episode = 30;
  const RealDataset a = GenerateRealDataset(config);
  const RealDataset b = GenerateRealDataset(config);
  ASSERT_EQ(a.train.size(), b.train.size());
  for (size_t i = 0; i < a.train.size(); ++i) {
    EXPECT_EQ(a.train[i].truth.value, b.train[i].truth.value);
  }
}

TEST(RealDatasetTest, SamplesHaveValidTargetsAndFullGraphs) {
  RealDatasetConfig config = RealDatasetConfig::Default();
  config.episodes = 1;
  config.max_steps_per_episode = 50;
  const RealDataset dataset = GenerateRealDataset(config);
  for (const perception::PredictionSample& s : dataset.train) {
    EXPECT_EQ(s.graph.z(), config.history_z);
    bool any = false;
    for (int i = 0; i < perception::kNumAreas; ++i) {
      if (s.truth.valid[i]) {
        any = true;
        EXPECT_FALSE(s.graph.target_is_phantom[i]);
      }
    }
    EXPECT_TRUE(any);
  }
}

TEST(RealDatasetTest, ObservationNoiseChangesSamples) {
  RealDatasetConfig base = RealDatasetConfig::Default();
  base.episodes = 1;
  base.max_steps_per_episode = 30;
  RealDatasetConfig noisy = base;
  noisy.obs_noise_pos_m = 0.5;
  const RealDataset a = GenerateRealDataset(base);
  const RealDataset b = GenerateRealDataset(noisy);
  ASSERT_FALSE(a.train.empty());
  ASSERT_FALSE(b.train.empty());
  // Graph features must differ somewhere once noise is on.
  bool differs = false;
  for (size_t i = 0; i < std::min(a.train.size(), b.train.size()); ++i) {
    if (!(a.train[i].graph.steps.back().feat ==
          b.train[i].graph.steps.back().feat)) {
      differs = true;
      break;
    }
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace head::data
