// Metrics registry (bucket/quantile math, snapshot-and-reset, concurrency)
// and trace spans (nesting, Chrome trace export, disabled path).
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace head::obs {
namespace {

TEST(HistogramTest, BucketMathFollowsLeConvention) {
  Histogram h({1.0, 2.0, 4.0});
  h.Observe(0.5);  // ≤ 1        → bucket 0
  h.Observe(1.0);  // ≤ 1        → bucket 0 (inclusive upper edge)
  h.Observe(1.5);  // (1, 2]     → bucket 1
  h.Observe(4.0);  // (2, 4]     → bucket 2
  h.Observe(9.0);  // > 4        → overflow bucket
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 1);
  EXPECT_EQ(s.buckets[3], 1);
  EXPECT_EQ(s.count, 5);
  EXPECT_DOUBLE_EQ(s.sum, 16.0);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 3.2);
}

TEST(HistogramTest, QuantilesInterpolateWithinBuckets) {
  Histogram h({10.0, 20.0, 30.0});
  for (int v = 1; v <= 10; ++v) h.Observe(v);   // bucket 0
  for (int v = 11; v <= 20; ++v) h.Observe(v);  // bucket 1
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 20);
  // rank 10 exhausts bucket 0 exactly: its upper edge.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 10.0);
  // rank 19 → 90% through bucket 1 (10..20).
  EXPECT_DOUBLE_EQ(s.Quantile(0.95), 19.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 20.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.0);  // clamped to observed min
}

TEST(HistogramTest, QuantileOfEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(1.0), 0.0);
}

TEST(HistogramTest, QuantileOfSingleSampleIsThatSample) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  const HistogramSnapshot s = h.Snapshot();
  // Every quantile of a one-sample distribution collapses to the sample
  // (min == max clamps the within-bucket interpolation).
  EXPECT_DOUBLE_EQ(s.Quantile(0.0), 1.5);
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 1.5);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 1.5);
}

TEST(HistogramTest, AllSamplesInOverflowBucket) {
  Histogram h({1.0, 2.0});
  for (int i = 0; i < 10; ++i) h.Observe(1000.0);
  const HistogramSnapshot s = h.Snapshot();
  ASSERT_EQ(s.buckets.back(), 10);
  // Identical samples: observed min == max, so every quantile is exact even
  // though the overflow bucket has no finite upper bound.
  EXPECT_DOUBLE_EQ(s.Quantile(0.5), 1000.0);
  EXPECT_DOUBLE_EQ(s.Quantile(0.99), 1000.0);
  EXPECT_DOUBLE_EQ(s.Quantile(1.0), 1000.0);
}

TEST(HistogramTest, OverflowBucketInterpolatesBetweenObservedMinAndMax) {
  Histogram h({1.0});
  h.Observe(100.0);
  h.Observe(200.0);
  // Both land in the overflow bucket, whose edges fall back to the observed
  // range [100, 200]; p99 of rank 1.98/2 interpolates to 199.
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.99), 199.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(1.0), 200.0);
}

TEST(HistogramTest, ResetZeroesButKeepsBounds) {
  Histogram h({1.0, 2.0});
  h.Observe(1.5);
  h.Reset();
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_EQ(s.bounds, (std::vector<double>{1.0, 2.0}));
  for (int64_t b : s.buckets) EXPECT_EQ(b, 0);
}

TEST(ExponentialBoundsTest, GeometricProgression) {
  const std::vector<double> b = ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
}

TEST(RegistryTest, ReferencesAreStableAndNamed) {
  Counter& a = GetCounter("obs_test.stable");
  Counter& b = GetCounter("obs_test.stable");
  EXPECT_EQ(&a, &b);
  a.Add(3);
  EXPECT_EQ(b.value(), 3);
}

TEST(RegistryTest, SnapshotAndResetScopesMeasurements) {
  GetCounter("obs_test.reset_counter").Add(7);
  GetGauge("obs_test.reset_gauge").Set(2.5);
  GetHistogram("obs_test.reset_hist", {1.0}).Observe(0.5);

  MetricsSnapshot s = Registry::Global().SnapshotAndReset();
  EXPECT_EQ(s.counters.at("obs_test.reset_counter"), 7);
  EXPECT_DOUBLE_EQ(s.gauges.at("obs_test.reset_gauge"), 2.5);
  EXPECT_EQ(s.histograms.at("obs_test.reset_hist").count, 1);

  // Metrics stay registered with zeroed values.
  s = Registry::Global().Snapshot();
  EXPECT_EQ(s.counters.at("obs_test.reset_counter"), 0);
  EXPECT_DOUBLE_EQ(s.gauges.at("obs_test.reset_gauge"), 0.0);
  EXPECT_EQ(s.histograms.at("obs_test.reset_hist").count, 0);
}

TEST(RegistryTest, ConcurrentCounterIncrementsFromEightThreads) {
  Counter& counter = GetCounter("obs_test.concurrent_counter");
  Histogram& hist = GetHistogram("obs_test.concurrent_hist", {0.5, 1.5});
  counter.Reset();
  hist.Reset();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Add();
        hist.Observe(t % 2 == 0 ? 0.25 : 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
  const HistogramSnapshot s = hist.Snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  EXPECT_EQ(s.buckets[0], kThreads / 2 * kPerThread);
  EXPECT_EQ(s.buckets[1], kThreads / 2 * kPerThread);
}

TEST(RegistryTest, JsonExportContainsAllKinds) {
  GetCounter("obs_test.json_counter").Add(2);
  GetGauge("obs_test.json_gauge").Set(1.25);
  GetHistogram("obs_test.json_hist", {1.0}).Observe(0.75);
  const std::string json = Registry::Global().Snapshot().ToJson();
  EXPECT_NE(json.find("\"obs_test.json_counter\":2"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\":1.25"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(RegistryTest, JsonEscapeRoundTripsAwkwardStrings) {
  const std::string awkward =
      "quote\" back\\slash\nnew\ttab\rret\x01"
      "ctl";
  const std::string escaped = JsonEscape(awkward);
  // The escaped form is clean JSON string content: no raw quotes/controls.
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_NE(escaped.find("\\\""), std::string::npos);
  EXPECT_NE(escaped.find("\\\\"), std::string::npos);
  EXPECT_NE(escaped.find("\\u0001"), std::string::npos);
  EXPECT_EQ(JsonUnescape(escaped), awkward);
}

TEST(RegistryTest, JsonExportEscapesMetricNames) {
  GetCounter("obs_test.escaped\"name\\with\njunk").Add(1);
  const std::string json = Registry::Global().Snapshot().ToJson();
  // The raw name must not appear; its escaped form must.
  EXPECT_EQ(json.find("escaped\"name"), std::string::npos);
  EXPECT_NE(json.find("escaped\\\"name\\\\with\\njunk"), std::string::npos);
}

TEST(RegistryTest, SnapshotCarriesWallClockTimestamp) {
  const MetricsSnapshot s = Registry::Global().Snapshot();
  // Wall clock is seconds since the Unix epoch: sanity-bound it between
  // 2020 and 2100 rather than pinning a flaky exact value.
  EXPECT_GT(s.captured_unix_s, 1.577e9);
  EXPECT_LT(s.captured_unix_s, 4.1e9);
  const std::string json = s.ToJson();
  EXPECT_EQ(json.rfind("{\"captured_unix_s\":", 0), 0u) << json;
}

TEST(SpanTest, DisabledSpansRecordNothing) {
  SetTracingEnabled(false);
  DrainTraceEvents();
  { HEAD_SPAN("obs_test.disabled"); }
  EXPECT_TRUE(DrainTraceEvents().empty());
}

TEST(SpanTest, NestedSpansRecordDepthAndContainment) {
  SetTracingEnabled(false);
  DrainTraceEvents();
  SetTracingEnabled(true);
  {
    HEAD_SPAN("outer");
    {
      HEAD_SPAN("inner");
    }
  }
  SetTracingEnabled(false);
  const std::vector<TraceEvent> events = DrainTraceEvents();
  ASSERT_EQ(events.size(), 2u);
  // Spans complete innermost-first.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  // Containment: inner within outer.
  EXPECT_GE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[0].start_ns + events[0].dur_ns,
            events[1].start_ns + events[1].dur_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(SpanTest, ChromeTraceJsonShape) {
  SetTracingEnabled(false);
  DrainTraceEvents();
  SetTracingEnabled(true);
  { HEAD_SPAN("shape"); }
  SetTracingEnabled(false);
  std::ostringstream os;
  WriteChromeTrace(DrainTraceEvents(), os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shape\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
}

TEST(SpanTest, DroppedEventsCountedAtBufferCap) {
  SetTracingEnabled(false);
  DrainTraceEvents();
  SetTracingEnabled(true);
  const int64_t dropped_before = DroppedTraceEvents();
  // Fill the buffer past its cap (2^21 events); the overflow must be
  // counted, not silently discarded, and the buffer must stop growing.
  constexpr size_t kCap = size_t{1} << 21;
  constexpr size_t kExtra = 10;
  for (size_t i = 0; i < kCap + kExtra; ++i) {
    HEAD_SPAN("drop");
  }
  SetTracingEnabled(false);
  EXPECT_EQ(DroppedTraceEvents() - dropped_before,
            static_cast<int64_t>(kExtra));
  EXPECT_EQ(DrainTraceEvents().size(), kCap);
}

TEST(LoggingTest, LogEveryNFiresOnFirstAndEveryNth) {
  std::atomic<long> counter{0};
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (::head::internal::LogEveryN(counter, 4)) ++fired;
  }
  EXPECT_EQ(fired, 3);  // calls 1, 5, 9
}

TEST(LoggingTest, EveryNMacroCompilesInStatementPosition) {
  // Behavioral coverage is in LogEveryNFiresOnFirstAndEveryNth; this guards
  // the macro's expansion (static declaration + if) in a plain scope.
  for (int i = 0; i < 3; ++i) {
    HEAD_LOG_EVERY_N(Debug, 2) << "tick " << i;
  }
}

}  // namespace
}  // namespace head::obs
