// Simulation-engine invariants: spawning, stepping, collisions, termination.
#include "sim/simulation.h"

#include <set>

#include <gtest/gtest.h>

#include "sim/spawner.h"

namespace head::sim {
namespace {

SimConfig SmallConfig() {
  SimConfig c;
  c.road.length_m = 500.0;
  c.spawn.back_margin_m = 150.0;
  c.spawn.front_margin_m = 150.0;
  return c;
}

TEST(SpawnerTest, RespectsDensityRoughly) {
  RoadConfig road;
  road.length_m = 2000.0;
  SpawnConfig spawn;
  spawn.density_veh_per_km = 180.0;
  spawn.back_margin_m = 0.0;
  spawn.front_margin_m = 0.0;
  Rng rng(3);
  const auto fleet = SpawnInitialTraffic(road, spawn, 1, 0.0, rng);
  const double expected = 180.0 * 2.0;  // 2 km
  EXPECT_GT(fleet.size(), expected * 0.7);
  EXPECT_LT(fleet.size(), expected * 1.3);
}

TEST(SpawnerTest, NoInitialOverlapsWithinLane) {
  RoadConfig road;
  SpawnConfig spawn;
  Rng rng(11);
  const auto fleet = SpawnInitialTraffic(road, spawn, 3, 0.0, rng);
  for (size_t i = 0; i < fleet.size(); ++i) {
    for (size_t j = i + 1; j < fleet.size(); ++j) {
      if (fleet[i].state.lane != fleet[j].state.lane) continue;
      EXPECT_GT(std::fabs(fleet[i].state.lon_m - fleet[j].state.lon_m),
                kVehicleLengthM)
          << "vehicles " << fleet[i].id << " and " << fleet[j].id;
    }
  }
}

TEST(SpawnerTest, EgoClearZoneIsEmpty) {
  RoadConfig road;
  SpawnConfig spawn;
  Rng rng(17);
  const auto fleet = SpawnInitialTraffic(road, spawn, 2, 0.0, rng);
  for (const Vehicle& v : fleet) {
    if (v.state.lane != 2) continue;
    EXPECT_GE(std::fabs(v.state.lon_m), spawn.ego_clear_zone_m);
  }
}

TEST(SpawnerTest, UniqueIdsAndValidLanesAndSpeeds) {
  RoadConfig road;
  SpawnConfig spawn;
  Rng rng(23);
  const auto fleet = SpawnInitialTraffic(road, spawn, 1, 0.0, rng);
  std::set<VehicleId> ids;
  for (const Vehicle& v : fleet) {
    EXPECT_TRUE(ids.insert(v.id).second);
    EXPECT_NE(v.id, kEgoVehicleId);
    EXPECT_TRUE(road.IsValidLane(v.state.lane));
    EXPECT_GE(v.state.v_mps, road.v_min_mps);
    EXPECT_LE(v.state.v_mps, road.v_max_mps);
  }
}

TEST(SimulationTest, ResetPlacesEgoAtOrigin) {
  Simulation sim(SmallConfig(), 1);
  EXPECT_EQ(sim.ego_state().lon_m, 0.0);
  EXPECT_EQ(sim.status(), EpisodeStatus::kRunning);
  EXPECT_EQ(sim.step_count(), 0);
}

TEST(SimulationTest, DeterministicUnderSameSeed) {
  Simulation a(SmallConfig(), 99);
  Simulation b(SmallConfig(), 99);
  for (int i = 0; i < 30; ++i) {
    a.Step(Maneuver{LaneChange::kKeep, 1.0});
    b.Step(Maneuver{LaneChange::kKeep, 1.0});
  }
  EXPECT_EQ(a.ego_state(), b.ego_state());
  ASSERT_EQ(a.conventional_vehicles().size(), b.conventional_vehicles().size());
  for (size_t i = 0; i < a.conventional_vehicles().size(); ++i) {
    EXPECT_EQ(a.conventional_vehicles()[i].state,
              b.conventional_vehicles()[i].state);
  }
}

TEST(SimulationTest, BoundaryHitIsCollision) {
  Simulation sim(SmallConfig(), 5);
  // Drive off the left edge: repeatedly change left.
  EpisodeStatus status = EpisodeStatus::kRunning;
  for (int i = 0; i < 10 && status == EpisodeStatus::kRunning; ++i) {
    status = sim.Step(Maneuver{LaneChange::kLeft, 0.0});
  }
  EXPECT_EQ(status, EpisodeStatus::kCollision);
}

TEST(SimulationTest, ReachesDestinationOnFreeRoad) {
  SimConfig config = SmallConfig();
  config.spawn.density_veh_per_km = 1e-6;  // effectively empty road
  Simulation sim(config, 1);
  EpisodeStatus status = EpisodeStatus::kRunning;
  int steps = 0;
  while (status == EpisodeStatus::kRunning && steps < 1000) {
    status = sim.Step(Maneuver{LaneChange::kKeep, 3.0});
    ++steps;
  }
  EXPECT_EQ(status, EpisodeStatus::kReachedDestination);
  EXPECT_GE(sim.ego_state().lon_m, config.road.length_m);
}

TEST(SimulationTest, RearEndCollisionDetected) {
  SimConfig config = SmallConfig();
  Simulation sim(config, 7);
  // Full throttle, no lane change: with traffic ahead capped at ~24 m/s and
  // the ego at 25 m/s max, the ego eventually rear-ends someone.
  EpisodeStatus status = EpisodeStatus::kRunning;
  int steps = 0;
  while (status == EpisodeStatus::kRunning && steps < 2000) {
    status = sim.Step(Maneuver{LaneChange::kKeep, 3.0});
    ++steps;
  }
  // Either crashed into the leader or (rarely) threaded through to the end.
  EXPECT_NE(status, EpisodeStatus::kRunning);
}

TEST(SimulationTest, ConventionalVehiclesStayWithinSpeedLimits) {
  Simulation sim(SmallConfig(), 13);
  for (int i = 0; i < 50; ++i) {
    sim.Step(Maneuver{LaneChange::kKeep, 0.0});
    for (const Vehicle& v : sim.conventional_vehicles()) {
      EXPECT_GE(v.state.v_mps, -1e-9);
      EXPECT_LE(v.state.v_mps, sim.config().road.v_max_mps + 1e-9);
      EXPECT_TRUE(sim.config().road.IsValidLane(v.state.lane));
    }
    if (sim.status() != EpisodeStatus::kRunning) break;
  }
}

TEST(SimulationTest, ConventionalVehiclesDoNotCollide) {
  Simulation sim(SmallConfig(), 21);
  for (int i = 0; i < 120 && sim.status() == EpisodeStatus::kRunning; ++i) {
    sim.Step(Maneuver{LaneChange::kKeep, -1.0});
    const auto& fleet = sim.conventional_vehicles();
    const RoadView view = sim.View();
    const auto& sorted = view.vehicles();
    for (size_t k = 1; k < sorted.size(); ++k) {
      if (sorted[k].state.lane != sorted[k - 1].state.lane) continue;
      if (sorted[k].id == kEgoVehicleId || sorted[k - 1].id == kEgoVehicleId) {
        continue;
      }
      EXPECT_GT(sorted[k].state.lon_m - sorted[k - 1].state.lon_m,
                kVehicleLengthM * 0.8)
          << "step " << i;
    }
    (void)fleet;
  }
}

TEST(SimulationTest, StepAfterTerminalIsNoOp) {
  SimConfig config = SmallConfig();
  Simulation sim(config, 5);
  while (sim.Step(Maneuver{LaneChange::kLeft, 0.0}) ==
         EpisodeStatus::kRunning) {
  }
  const VehicleState frozen = sim.ego_state();
  const int steps = sim.step_count();
  sim.Step(Maneuver{LaneChange::kKeep, 3.0});
  EXPECT_EQ(sim.ego_state(), frozen);
  EXPECT_EQ(sim.step_count(), steps);
}

TEST(SimulationTest, TimeoutTerminates) {
  SimConfig config = SmallConfig();
  config.max_steps = 5;
  config.spawn.density_veh_per_km = 1e-6;
  Simulation sim(config, 2);
  EpisodeStatus status = EpisodeStatus::kRunning;
  for (int i = 0; i < 10 && status == EpisodeStatus::kRunning; ++i) {
    status = sim.Step(Maneuver{LaneChange::kKeep, -3.0});
  }
  EXPECT_EQ(status, EpisodeStatus::kTimeout);
}

}  // namespace
}  // namespace head::sim
