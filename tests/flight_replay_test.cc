// The replay-parity contract (the ctest acceptance target for the flight
// recorder): a forced-collision episode dumps a JSONL black box whose
// deterministic replay reproduces the recorded ego trajectory, maneuvers,
// rewards, and RNG cursors bitwise.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "eval/episode_runner.h"
#include "eval/replay.h"
#include "nn/kernels/simd.h"
#include "obs/recorder.h"
#include "parallel/env_pool.h"
#include "parallel/thread_pool.h"
#include "rl/env.h"
#include "rl/pdqn_agent.h"
#include "sim/scenario.h"

namespace head {
namespace {

/// Saves/restores the global recorder state and provides a per-test dump
/// directory.
class FlightReplayTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The bitwise replay contract is defined over the scalar kernel
    // schedules: a black box may be replayed by a different build (e.g. a
    // scalar-only debug binary), so the parity suite pins fast_math off.
    // See DESIGN.md "SIMD kernel dispatch" determinism matrix.
    saved_fast_math_ = nn::kernels::FastMathEnabled();
    nn::kernels::SetFastMath(false);
    saved_enabled_ = obs::RecordingEnabled();
    saved_config_ = obs::GetRecorderConfig();
    dir_ = (std::filesystem::path(::testing::TempDir()) /
            ("flight_" +
             std::string(
                 ::testing::UnitTest::GetInstance()->current_test_info()
                     ->name())))
               .string();
    std::filesystem::remove_all(dir_);
  }

  void TearDown() override {
    nn::kernels::SetFastMath(saved_fast_math_);
    obs::ConfigureRecorder(saved_config_);
    obs::SetRecordingEnabled(saved_enabled_);
    std::filesystem::remove_all(dir_);
  }

  std::vector<std::string> DumpManifests() const {
    std::vector<std::string> out;
    if (!std::filesystem::exists(dir_)) return out;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      const std::string p = e.path().string();
      if (p.size() >= 14 &&
          p.compare(p.size() - 14, 14, ".manifest.json") == 0) {
        out.push_back(p);
      }
    }
    return out;
  }

  /// Records one episode of `policy_name` on `scenario` into dir_ and
  /// returns its episode record.
  eval::EpisodeRecord RecordEpisode(const std::string& scenario,
                                    const std::string& policy_name,
                                    uint64_t seed) {
    obs::RecorderConfig cfg;
    cfg.dump_dir = dir_;
    obs::ConfigureRecorder(cfg);
    obs::SetRecordingEnabled(true);

    eval::RunnerConfig runner;
    runner.sim = sim::ScenarioByName(scenario);
    runner.scenario_name = scenario;
    auto policy = eval::MakeNamedPolicy(policy_name, runner.sim.road);
    EXPECT_NE(policy, nullptr);
    const eval::EpisodeRecord rec =
        eval::RunEpisode(*policy, runner, seed, /*episode_index=*/0);
    obs::SetRecordingEnabled(false);
    return rec;
  }

  std::string dir_;
  bool saved_enabled_ = false;
  bool saved_fast_math_ = true;
  obs::RecorderConfig saved_config_;
};

TEST_F(FlightReplayTest, ForcedCollisionDumpReplaysBitwise) {
  // The crash policy floors the throttle and never changes lane: it rams
  // the car ahead, so the collision trigger must produce exactly one dump.
  const eval::EpisodeRecord rec = RecordEpisode("dense", "crash", 1234);
  ASSERT_TRUE(rec.collided);
  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);

  obs::FlightDump dump;
  std::string error;
  ASSERT_TRUE(obs::LoadFlightDump(manifests[0], &dump, &error)) << error;
  EXPECT_EQ(dump.ctx.scenario, "dense");
  EXPECT_EQ(dump.ctx.policy, "crash");
  EXPECT_EQ(dump.ctx.seed, 1234u);
  EXPECT_EQ(dump.trigger, obs::DumpTrigger::kCollision);
  EXPECT_EQ(dump.end, obs::EpisodeEnd::kCollision);
  ASSERT_FALSE(dump.records.empty());
  EXPECT_EQ(dump.records.back().end, obs::EpisodeEnd::kCollision);
  // The eval runner fills the reward decomposition; perception sections
  // stay absent for rule-based policies (only HEAD runs the pipeline).
  EXPECT_EQ(dump.records.back().has_reward, 1);
  EXPECT_EQ(dump.records.back().has_neighbors, 0);

  const eval::ReplayResult r = eval::ReplayAndVerify(dump);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records_compared, static_cast<int>(dump.records.size()));
  EXPECT_EQ(r.replay_end, obs::EpisodeEnd::kCollision);
  EXPECT_EQ(r.first_mismatch_step, -1);
}

TEST_F(FlightReplayTest, ReplayFileMatchesInMemoryReplay) {
  RecordEpisode("dense", "crash", 77);
  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);
  const eval::ReplayResult r = eval::ReplayFile(manifests[0]);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.records_compared, 0);
}

TEST_F(FlightReplayTest, RuleBasedPolicyReplaysBitwise) {
  // A longer, maneuver-rich episode: IDM-LC on the paper scenario, dumped
  // manually (IDM usually completes without a collision).
  obs::RecorderConfig cfg;
  cfg.dump_dir = dir_;
  cfg.capacity = 4096;
  obs::ConfigureRecorder(cfg);
  obs::SetRecordingEnabled(true);

  eval::RunnerConfig runner;
  runner.sim = sim::ScenarioByName("paper");
  runner.scenario_name = "paper";
  auto policy = eval::MakeNamedPolicy("idm", runner.sim.road);
  ASSERT_NE(policy, nullptr);
  eval::RunEpisode(*policy, runner, /*seed=*/5, /*episode_index=*/3);

  std::string manifest_path;
  ASSERT_TRUE(obs::DumpNow(&manifest_path));
  obs::SetRecordingEnabled(false);

  const eval::ReplayResult r = eval::ReplayFile(manifest_path);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_GT(r.records_compared, 20);
}

TEST_F(FlightReplayTest, TailOnlyDumpStillAlignsByStepIndex) {
  // With a tiny ring the dump holds only the last few steps of the episode;
  // replay re-runs from step 0 and must align on step indices.
  obs::RecorderConfig cfg;
  cfg.dump_dir = dir_;
  cfg.capacity = 4;
  obs::ConfigureRecorder(cfg);
  obs::SetRecordingEnabled(true);

  eval::RunnerConfig runner;
  runner.sim = sim::ScenarioByName("dense");
  runner.scenario_name = "dense";
  auto policy = eval::MakeNamedPolicy("crash", runner.sim.road);
  ASSERT_NE(policy, nullptr);
  eval::RunEpisode(*policy, runner, /*seed=*/1234, /*episode_index=*/0);
  obs::SetRecordingEnabled(false);

  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);
  obs::FlightDump dump;
  ASSERT_TRUE(obs::LoadFlightDump(manifests[0], &dump));
  ASSERT_EQ(dump.records.size(), 4u);
  EXPECT_GT(dump.records.front().step, 1) << "ring must have wrapped";

  const eval::ReplayResult r = eval::ReplayAndVerify(dump);
  EXPECT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.records_compared, 4);
  EXPECT_GT(r.steps_replayed, 4);
}

TEST_F(FlightReplayTest, TamperedDumpIsDetected) {
  RecordEpisode("dense", "crash", 1234);
  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);
  obs::FlightDump dump;
  ASSERT_TRUE(obs::LoadFlightDump(manifests[0], &dump));

  // Nudge one recorded velocity by 1 ulp-ish amount: bitwise comparison
  // must flag the exact step.
  obs::StepRecord& victim = dump.records[dump.records.size() / 2];
  victim.ego_v_mps += 1e-13;
  const eval::ReplayResult r = eval::ReplayAndVerify(dump);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.first_mismatch_step, victim.step);
  EXPECT_NE(r.error.find("ego_v_mps"), std::string::npos) << r.error;
}

TEST_F(FlightReplayTest, UnknownScenarioAndPolicyAreRejected) {
  obs::FlightDump dump;
  dump.ctx.scenario = "no_such_scenario";
  dump.ctx.policy = "idm";
  dump.records.resize(1);
  dump.records[0].step = 1;
  eval::ReplayResult r = eval::ReplayAndVerify(dump);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown scenario"), std::string::npos);

  dump.ctx.scenario = "dense";
  dump.ctx.policy = "no_such_policy";
  r = eval::ReplayAndVerify(dump);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("unknown policy"), std::string::npos);

  r = eval::ReplayAndVerify(obs::FlightDump{});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("no records"), std::string::npos);
}

TEST_F(FlightReplayTest, MultiThreadedEnvPoolRecordsWithoutRacing) {
  // The TSan target of tools/check.sh: concurrent EnvPool rollouts with
  // recording enabled. Rings are thread-local and dumps serialize through
  // atomics only, so parallel episodes must neither race nor corrupt the
  // shared commit/overwrite/dump accounting.
  obs::RecorderConfig cfg;
  cfg.dump_dir = dir_;
  cfg.capacity = 64;
  obs::ConfigureRecorder(cfg);
  obs::SetRecordingEnabled(true);
  const int64_t committed_before = obs::CommittedRecords();

  rl::EnvConfig env_config;
  env_config.sim.road.length_m = 400.0;
  env_config.sim.spawn.back_margin_m = 120.0;
  env_config.sim.spawn.front_margin_m = 120.0;
  env_config.use_prediction = false;
  rl::PdqnConfig agent_config;
  agent_config.batch_size = 8;
  agent_config.warmup_transitions = 20;
  Rng rng(77);
  auto agent = rl::MakePDqnAgent(agent_config, rng);

  parallel::ThreadPool pool(4);
  parallel::EnvPool envs(
      3,
      [&](int) {
        return std::make_unique<rl::DrivingEnv>(env_config, nullptr, 1);
      },
      &pool);
  parallel::EnvPool::RolloutOptions opts;
  opts.seed_base = 55;
  opts.max_steps_per_episode = 40;
  opts.scenario_name = "";  // custom config: recorded but not replayable
  const auto results = envs.RunEpisodes(*agent, 0, 8, opts);
  obs::SetRecordingEnabled(false);

  long total_steps = 0;
  for (const auto& r : results) total_steps += r.steps;
  EXPECT_EQ(obs::CommittedRecords() - committed_before, total_steps);
  // Any collision dumps written concurrently must still be well-formed.
  for (const std::string& manifest : DumpManifests()) {
    obs::FlightDump dump;
    std::string error;
    EXPECT_TRUE(obs::LoadFlightDump(manifest, &dump, &error)) << error;
    EXPECT_FALSE(dump.records.empty());
  }
}

TEST_F(FlightReplayTest, ReplayRestoresRecorderState) {
  RecordEpisode("dense", "crash", 1234);
  const std::vector<std::string> manifests = DumpManifests();
  ASSERT_EQ(manifests.size(), 1u);

  obs::RecorderConfig marker;
  marker.capacity = 123;
  marker.dump_dir = dir_;
  marker.ttc_trigger_s = 3.25;
  obs::ConfigureRecorder(marker);
  obs::SetRecordingEnabled(false);

  ASSERT_TRUE(eval::ReplayFile(manifests[0]).ok);
  EXPECT_FALSE(obs::RecordingEnabled()) << "replay must restore the switch";
  const obs::RecorderConfig after = obs::GetRecorderConfig();
  EXPECT_EQ(after.capacity, 123);
  EXPECT_EQ(after.dump_dir, dir_);
  EXPECT_DOUBLE_EQ(after.ttc_trigger_s, 3.25);
  // The replay itself must not have produced new dump files.
  EXPECT_EQ(DumpManifests().size(), 1u);
}

}  // namespace
}  // namespace head
