// End-to-end determinism of the parallel execution layer (the PR's core
// contract): for a fixed env-pool size K, training and evaluation results
// are bitwise identical whether the pool runs on 1 thread or 4, identical
// across repeated runs, and pooled evaluation matches the serial evaluator
// exactly for any K.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "parallel/env_pool.h"
#include "parallel/thread_pool.h"
#include "rl/env.h"
#include "rl/pdqn_agent.h"
#include "rl/trainer.h"

namespace head {
namespace {

rl::EnvConfig SmallEnv() {
  rl::EnvConfig c;
  c.sim.road.length_m = 400.0;
  c.sim.spawn.back_margin_m = 120.0;
  c.sim.spawn.front_margin_m = 120.0;
  c.use_prediction = false;  // no predictor needed: fast and deterministic
  return c;
}

std::shared_ptr<rl::PdqnAgent> SmallAgent(uint64_t seed) {
  rl::PdqnConfig config;
  config.batch_size = 8;
  config.warmup_transitions = 20;
  config.update_every = 1;
  Rng rng(seed);
  return rl::MakePDqnAgent(config, rng);
}

rl::RlTrainConfig SmallTrain() {
  rl::RlTrainConfig config;
  config.episodes = 6;
  config.max_steps_per_episode = 40;
  config.seed = 5;
  return config;
}

parallel::EnvPool MakePool(int k, parallel::ThreadPool* pool) {
  return parallel::EnvPool(
      k, [](int) { return std::make_unique<rl::DrivingEnv>(SmallEnv(),
                                                           nullptr, 1); },
      pool);
}

/// Trains a fresh agent over a K-env pool on `threads` threads and returns
/// the per-episode reward vector.
std::vector<double> TrainRewards(int k, int threads) {
  parallel::ThreadPool pool(threads);
  parallel::EnvPool envs = MakePool(k, &pool);
  auto agent = SmallAgent(77);
  return rl::TrainAgent(*agent, envs, SmallTrain()).episode_rewards;
}

TEST(ParallelDeterminismTest, TrainingIdenticalAcrossThreadCounts) {
  // Fixed K = 3; 1 thread vs 4 threads must agree bitwise per episode.
  const std::vector<double> serial = TrainRewards(3, 1);
  const std::vector<double> threaded = TrainRewards(3, 4);
  ASSERT_EQ(serial.size(), threaded.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], threaded[i]) << "episode " << i;
  }
}

TEST(ParallelDeterminismTest, TrainingBitwiseStableAcrossRepeats) {
  const std::vector<double> first = TrainRewards(3, 4);
  const std::vector<double> second = TrainRewards(3, 4);
  EXPECT_EQ(first, second);
}

TEST(ParallelDeterminismTest, PooledEvaluationMatchesSerialForAnyK) {
  auto agent = SmallAgent(77);
  rl::DrivingEnv env(SmallEnv(), nullptr, 1);
  const rl::RewardStats serial =
      rl::EvaluateAgent(*agent, env, /*episodes=*/5, /*seed_base=*/99,
                        /*max_steps_per_episode=*/40);
  for (int k : {1, 2, 4}) {
    parallel::ThreadPool pool(4);
    parallel::EnvPool envs = MakePool(k, &pool);
    const rl::RewardStats pooled =
        rl::EvaluateAgent(*agent, envs, 5, 99, 40);
    EXPECT_EQ(pooled.avg_reward, serial.avg_reward) << "K=" << k;
    EXPECT_EQ(pooled.min_reward, serial.min_reward) << "K=" << k;
    EXPECT_EQ(pooled.max_reward, serial.max_reward) << "K=" << k;
    EXPECT_EQ(pooled.steps, serial.steps) << "K=" << k;
    EXPECT_EQ(pooled.collisions, serial.collisions) << "K=" << k;
  }
}

TEST(ParallelDeterminismTest, EpisodeResultsIndependentOfWorkerAssignment) {
  // The same 6 episodes collected through K=2 and K=3 pools must produce
  // the same per-episode summaries: outcomes depend only on the episode
  // index and seed_base, never on which env instance ran them.
  auto agent = SmallAgent(77);
  parallel::EnvPool::RolloutOptions opts;
  opts.seed_base = 55;
  opts.max_steps_per_episode = 40;
  parallel::ThreadPool pool(4);
  parallel::EnvPool two = MakePool(2, &pool);
  parallel::EnvPool three = MakePool(3, &pool);
  const auto a = two.RunEpisodes(*agent, 0, 6, opts);
  const auto b = three.RunEpisodes(*agent, 0, 6, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].index, b[i].index);
    EXPECT_EQ(a[i].steps, b[i].steps) << "episode " << i;
    EXPECT_EQ(a[i].reward_sum, b[i].reward_sum) << "episode " << i;
    EXPECT_EQ(a[i].collision, b[i].collision) << "episode " << i;
  }
}

TEST(ParallelDeterminismTest, TrainingDependsOnKButStaysFinite) {
  // Different K means different round boundaries, so results may differ —
  // but each run must still produce one reward per episode.
  const std::vector<double> k1 = TrainRewards(1, 2);
  const std::vector<double> k3 = TrainRewards(3, 2);
  EXPECT_EQ(k1.size(), 6u);
  EXPECT_EQ(k3.size(), 6u);
}

}  // namespace
}  // namespace head
