#include "nn/optimizer.h"

#include <cstdio>
#include <sstream>

#include <gtest/gtest.h>

#include "nn/layers.h"
#include "nn/serialize.h"

namespace head::nn {
namespace {

TEST(OptimizerTest, SgdMinimizesQuadratic) {
  Var x = Var::Param(Tensor::Full(1, 1, 5.0));
  Sgd opt({x}, 0.1);
  for (int i = 0; i < 200; ++i) {
    opt.ZeroGrad();
    Var loss = Sum(Square(x));
    Backward(loss);
    opt.Step();
  }
  EXPECT_NEAR(x.value()[0], 0.0, 1e-6);
}

TEST(OptimizerTest, AdamMinimizesShiftedQuadratic) {
  Var x = Var::Param(Tensor::Full(1, 3, -2.0));
  Var target = Var::Constant(Tensor(1, 3, {1.0, -0.5, 2.0}));
  Adam opt({x}, 0.05);
  for (int i = 0; i < 500; ++i) {
    opt.ZeroGrad();
    Backward(MseLoss(x, target));
    opt.Step();
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(x.value()[i], target.value()[i], 1e-3);
  }
}

TEST(OptimizerTest, AdamFitsLinearRegression) {
  Rng rng(5);
  // Ground truth: y = x·W* + b*.
  const Tensor w_star(2, 1, {1.5, -2.0});
  const Tensor b_star(1, 1, {0.7});
  const Tensor x_data = Tensor::Uniform(64, 2, -1, 1, rng);
  Tensor y_data = AddRowBroadcast(MatMul(x_data, w_star), b_star);

  Linear model(2, 1, rng);
  Adam opt(model.Params(), 0.05);
  Var x = Var::Constant(x_data);
  Var y = Var::Constant(y_data);
  double final_loss = 1e9;
  for (int i = 0; i < 400; ++i) {
    opt.ZeroGrad();
    Var loss = MseLoss(model.Forward(x), y);
    final_loss = loss.value()[0];
    Backward(loss);
    opt.Step();
  }
  EXPECT_LT(final_loss, 1e-5);
}

TEST(OptimizerTest, ClipGradNormScalesLargeGradients) {
  Var x = Var::Param(Tensor::Full(1, 1, 100.0));
  Sgd opt({x}, 1.0);
  opt.ZeroGrad();
  Backward(Sum(Square(x)));  // grad = 200
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(x.grad()[0], 1.0, 1e-12);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradients) {
  Var x = Var::Param(Tensor::Full(1, 1, 0.001));
  Sgd opt({x}, 1.0);
  opt.ZeroGrad();
  Backward(Sum(Square(x)));  // grad = 0.002
  opt.ClipGradNorm(1.0);
  EXPECT_NEAR(x.grad()[0], 0.002, 1e-12);
}

TEST(ModuleTest, SoftUpdateBlends) {
  Rng rng(3);
  Linear a(2, 2, rng);
  Linear b(2, 2, rng);
  Linear target(2, 2, rng);
  target.CopyParamsFrom(a);
  target.SoftUpdateFrom(b, 0.25);
  const auto ap = a.Params();
  const auto bp = b.Params();
  const auto tp = target.Params();
  for (size_t i = 0; i < tp.size(); ++i) {
    for (int j = 0; j < tp[i].value().size(); ++j) {
      EXPECT_NEAR(tp[i].value()[j],
                  0.25 * bp[i].value()[j] + 0.75 * ap[i].value()[j], 1e-12);
    }
  }
}

TEST(SerializeTest, RoundTripsThroughStream) {
  Rng rng(9);
  Mlp a({3, 4, 2}, Mlp::Activation::kRelu, rng);
  Mlp b({3, 4, 2}, Mlp::Activation::kRelu, rng);
  std::stringstream ss;
  SaveParams(a, ss);
  ASSERT_TRUE(LoadParams(b, ss));
  const auto ap = a.Params();
  const auto bp = b.Params();
  for (size_t i = 0; i < ap.size(); ++i) {
    EXPECT_EQ(ap[i].value(), bp[i].value());
  }
}

TEST(SerializeTest, RejectsWrongArchitecture) {
  Rng rng(9);
  Mlp a({3, 4, 2}, Mlp::Activation::kRelu, rng);
  Mlp wrong({3, 5, 2}, Mlp::Activation::kRelu, rng);
  std::stringstream ss;
  SaveParams(a, ss);
  EXPECT_FALSE(LoadParams(wrong, ss));
}

TEST(SerializeTest, RejectsGarbage) {
  Rng rng(9);
  Mlp a({3, 4, 2}, Mlp::Activation::kRelu, rng);
  std::stringstream ss("not a checkpoint");
  EXPECT_FALSE(LoadParams(a, ss));
}

TEST(SerializeTest, FileRoundTrip) {
  Rng rng(13);
  Linear a(4, 3, rng);
  Linear b(4, 3, rng);
  const std::string path = ::testing::TempDir() + "/head_params.bin";
  SaveParamsToFile(a, path);
  ASSERT_TRUE(LoadParamsFromFile(b, path));
  EXPECT_EQ(a.Params()[0].value(), b.Params()[0].value());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadParamsFromFile(b, path));
}

}  // namespace
}  // namespace head::nn
