// RL machinery: replay buffer, augmented-state building, and behavioral
// smoke/learning tests for every agent (BP-DQN, P-DQN, P-QP, P-DDPG, DRL-SC).
#include <set>
#include <utility>

#include <gtest/gtest.h>

#include "rl/drl_sc.h"
#include "rl/mp_dqn.h"
#include "rl/p_ddpg.h"
#include "rl/pdqn_agent.h"
#include "rl/replay_buffer.h"

namespace head::rl {
namespace {

AugmentedState RandomState(Rng& rng) {
  AugmentedState s;
  s.h = nn::Tensor::Uniform(kStateHRows, kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(kStateFRows, kStateCols, -1.0, 1.0, rng);
  return s;
}

TEST(ReplayBufferTest, RingEviction) {
  ReplayBuffer buffer(3);
  for (int i = 0; i < 5; ++i) {
    Transition t;
    t.reward = i;
    buffer.Push(std::move(t));
  }
  EXPECT_EQ(buffer.size(), 3u);
  Rng rng(1);
  // Only rewards {2, 3, 4} should remain.
  for (const Transition* t : buffer.Sample(50, rng)) {
    EXPECT_GE(t->reward, 2.0);
    EXPECT_LE(t->reward, 4.0);
  }
}

TEST(ReplayBufferTest, SampleCoversStorage) {
  ReplayBuffer buffer(10);
  for (int i = 0; i < 10; ++i) {
    Transition t;
    t.reward = i;
    buffer.Push(std::move(t));
  }
  Rng rng(2);
  std::set<double> seen;
  for (const Transition* t : buffer.Sample(500, rng)) seen.insert(t->reward);
  EXPECT_GE(seen.size(), 8u);  // uniform sampling should hit nearly all
}

TEST(PamdpTest, BehaviorMapping) {
  EXPECT_EQ(BehaviorToLaneChange(kBehaviorLeft), LaneChange::kLeft);
  EXPECT_EQ(BehaviorToLaneChange(kBehaviorRight), LaneChange::kRight);
  EXPECT_EQ(BehaviorToLaneChange(kBehaviorKeep), LaneChange::kKeep);
  for (int b = 0; b < kNumBehaviors; ++b) {
    EXPECT_EQ(LaneChangeToBehavior(BehaviorToLaneChange(b)), b);
  }
}

TEST(PamdpTest, FlattenOrdersHThenF) {
  AugmentedState s;
  s.h = nn::Tensor(kStateHRows, kStateCols, 1.0);
  s.f = nn::Tensor(kStateFRows, kStateCols, 2.0);
  const nn::Tensor flat = FlattenState(s);
  ASSERT_EQ(flat.size(), kFlatStateDim);
  EXPECT_DOUBLE_EQ(flat[0], 1.0);
  EXPECT_DOUBLE_EQ(flat[kStateHRows * kStateCols], 2.0);
}

PdqnConfig SmallConfig() {
  PdqnConfig c;
  c.hidden = 16;
  c.batch_size = 8;
  c.warmup_transitions = 8;
  c.buffer_capacity = 256;
  return c;
}

TEST(PdqnAgentTest, ActRespectsBoundsAndGreedyIsDeterministic) {
  Rng init(3);
  auto agent = MakeBpDqnAgent(SmallConfig(), init);
  Rng rng(4);
  const AugmentedState s = RandomState(rng);
  for (int i = 0; i < 50; ++i) {
    const AgentAction a = agent->Act(s, 1.0, rng);
    EXPECT_GE(a.maneuver.accel_mps2, -3.0);
    EXPECT_LE(a.maneuver.accel_mps2, 3.0);
    EXPECT_GE(a.behavior, 0);
    EXPECT_LT(a.behavior, kNumBehaviors);
  }
  const AgentAction g1 = agent->Act(s, 0.0, rng);
  const AgentAction g2 = agent->Act(s, 0.0, rng);
  EXPECT_EQ(g1.behavior, g2.behavior);
  EXPECT_DOUBLE_EQ(g1.maneuver.accel_mps2, g2.maneuver.accel_mps2);
}

TEST(PdqnAgentTest, ActionParamsDependOnState) {
  Rng init(3);
  auto agent = MakeBpDqnAgent(SmallConfig(), init);
  Rng rng(4);
  const nn::Tensor x1 = agent->ActionParams(RandomState(rng));
  const nn::Tensor x2 = agent->ActionParams(RandomState(rng));
  EXPECT_NE(x1, x2) << "actor output must be state-dependent";
}

// The agent should raise Q(s, b_taken) toward a constant positive reward.
template <typename MakeAgent>
void ExpectCriticLearns(MakeAgent&& make) {
  Rng init(7);
  auto agent = make(init);
  Rng rng(8);
  const AugmentedState s = RandomState(rng);
  const AugmentedState s2 = RandomState(rng);
  const AgentAction probe = agent->Act(s, 0.0, rng);
  for (int i = 0; i < 30; ++i) {
    AgentAction a = agent->Act(s, 0.5, rng);
    agent->Remember(s, a, 1.0, s2, /*terminal=*/true);
    agent->Update(rng);
  }
  // After training on terminal reward 1, Q of the taken action ≈ 1-ish.
  const nn::Tensor q = agent->QValues(s, probe.params);
  double best = q.At(0, 0);
  for (int c = 1; c < q.cols(); ++c) best = std::max(best, q.At(0, c));
  EXPECT_GT(best, 0.3);
}

TEST(PdqnAgentTest, BpDqnCriticLearnsConstantReward) {
  ExpectCriticLearns([](Rng& r) { return MakeBpDqnAgent(SmallConfig(), r); });
}

TEST(PdqnAgentTest, PDqnCriticLearnsConstantReward) {
  ExpectCriticLearns([](Rng& r) { return MakePDqnAgent(SmallConfig(), r); });
}

TEST(MpDqnTest, MaskedCriticIgnoresOtherParameters) {
  // Changing the parameter of an action must not change the other actions'
  // Q values — the property MP-DQN exists to guarantee.
  Rng init(9);
  MultiPassQNet critic(16, init);
  Rng rng(10);
  AugmentedState s = RandomState(rng);
  nn::Tensor x1(1, kNumBehaviors, {1.0, -2.0, 0.5});
  nn::Tensor x2 = x1;
  x2.At(0, 0) = -3.0;  // perturb only the `ll` parameter
  const nn::Tensor q1 =
      critic.Forward(s, nn::Var::Constant(x1)).value();
  const nn::Tensor q2 =
      critic.Forward(s, nn::Var::Constant(x2)).value();
  EXPECT_NE(q1.At(0, 0), q2.At(0, 0));
  EXPECT_DOUBLE_EQ(q1.At(0, 1), q2.At(0, 1));
  EXPECT_DOUBLE_EQ(q1.At(0, 2), q2.At(0, 2));
}

TEST(MpDqnTest, AgentLearnsConstantReward) {
  ExpectCriticLearns([](Rng& r) { return MakeMpDqnAgent(SmallConfig(), r); });
}

TEST(PdqnAgentTest, PQpAlternatesPhases) {
  Rng init(3);
  PdqnConfig config = SmallConfig();
  config.alternate_period = 5;
  auto agent = MakePQpAgent(config, init);
  EXPECT_EQ(agent->name(), "P-QP");
  EXPECT_EQ(agent->config().alternate_period, 5);
  // Smoke: updates run without issue through several phases.
  Rng rng(4);
  const AugmentedState s = RandomState(rng);
  for (int i = 0; i < 25; ++i) {
    AgentAction a = agent->Act(s, 0.5, rng);
    agent->Remember(s, a, 0.5, s, false);
    agent->Update(rng);
  }
}

TEST(PddpgAgentTest, ActAndUpdateSmoke) {
  PddpgConfig config;
  config.hidden = 16;
  config.batch_size = 8;
  config.warmup_transitions = 8;
  config.buffer_capacity = 128;
  Rng init(5);
  PddpgAgent agent(config, init);
  Rng rng(6);
  const AugmentedState s = RandomState(rng);
  for (int i = 0; i < 20; ++i) {
    const AgentAction a = agent.Act(s, 0.5, rng);
    EXPECT_GE(a.maneuver.accel_mps2, -3.0);
    EXPECT_LE(a.maneuver.accel_mps2, 3.0);
    agent.Remember(s, a, 0.1, s, false);
    agent.Update(rng);
  }
}

DrlScConfig SmallDrlScConfig() {
  DrlScConfig c;
  c.hidden = 16;
  c.batch_size = 8;
  c.warmup_transitions = 8;
  c.buffer_capacity = 128;
  return c;
}

TEST(DrlScTest, ActionDecodingCoversGrid) {
  Rng init(5);
  DrlScAgent agent(SmallDrlScConfig(), init);
  std::set<std::pair<int, int>> seen;
  for (int i = 0; i < DrlScAgent::kNumActions; ++i) {
    const Maneuver m = agent.DecodeAction(i);
    EXPECT_GE(m.accel_mps2, -3.0);
    EXPECT_LE(m.accel_mps2, 3.0);
    seen.insert({static_cast<int>(m.lane_change),
                 static_cast<int>(m.accel_mps2 * 10)});
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(DrlScAgent::kNumActions));
}

AugmentedState StateWithFront(double d_lon, double v_rel, double ego_v,
                              int ego_lane, const perception::FeatureScale& fs,
                              const RoadConfig& road) {
  AugmentedState s;
  s.h = nn::Tensor(kStateHRows, kStateCols);
  s.f = nn::Tensor(kStateFRows, kStateCols);
  s.h.At(0, 0) = static_cast<double>(ego_lane) / road.num_lanes;
  s.h.At(0, 2) = ego_v / road.v_max_mps;
  // Mark every target phantom except the front one.
  for (int i = 0; i < kStateFRows; ++i) s.h.At(1 + i, 3) = 1.0;
  s.h.At(1 + perception::kFront, 0) = 0.0;
  s.h.At(1 + perception::kFront, 1) = d_lon * fs.lon;
  s.h.At(1 + perception::kFront, 2) = v_rel * fs.v;
  s.h.At(1 + perception::kFront, 3) = 0.0;
  return s;
}

TEST(DrlScTest, SafetyCheckVetoesTailgatingAcceleration) {
  DrlScConfig config = SmallDrlScConfig();
  Rng init(5);
  DrlScAgent agent(config, init);
  // Front vehicle 10 m ahead, 10 m/s slower: accelerating is unsafe.
  const AugmentedState s = StateWithFront(10.0, -10.0, 20.0, 3,
                                          config.scale, config.road);
  EXPECT_FALSE(agent.IsSafe(s, Maneuver{LaneChange::kKeep, 3.0}));
  // Free road in the left lane: the lane change is fine.
  EXPECT_TRUE(agent.IsSafe(s, Maneuver{LaneChange::kLeft, 0.0}));
}

TEST(DrlScTest, SafetyCheckVetoesOffRoadLaneChange) {
  DrlScConfig config = SmallDrlScConfig();
  Rng init(5);
  DrlScAgent agent(config, init);
  const AugmentedState s =
      StateWithFront(80.0, 0.0, 20.0, /*ego_lane=*/1, config.scale,
                     config.road);
  EXPECT_FALSE(agent.IsSafe(s, Maneuver{LaneChange::kLeft, 0.0}));
  EXPECT_TRUE(agent.IsSafe(s, Maneuver{LaneChange::kRight, 0.0}));
}

TEST(DrlScTest, ActNeverPicksUnsafeAction) {
  DrlScConfig config = SmallDrlScConfig();
  Rng init(5);
  DrlScAgent agent(config, init);
  Rng rng(6);
  const AugmentedState s = StateWithFront(8.0, -12.0, 20.0, 3,
                                          config.scale, config.road);
  for (int i = 0; i < 30; ++i) {
    const AgentAction a = agent.Act(s, 1.0, rng);
    // Whatever it picks must pass its own safety check or be the fallback
    // emergency brake.
    const bool is_brake = a.maneuver.lane_change == LaneChange::kKeep &&
                          a.maneuver.accel_mps2 == -config.road.a_max_mps2;
    EXPECT_TRUE(agent.IsSafe(s, a.maneuver) || is_brake);
  }
}

}  // namespace
}  // namespace head::rl
