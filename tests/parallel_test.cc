// Unit tests for the parallel layer: ThreadPool (Submit, ParallelFor, the
// inline 1-thread mode, nested dispatch), StripedTransitionBuffer ordering,
// and bitwise parity of the threaded matmul kernels against the serial path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "nn/tensor.h"
#include "parallel/env_pool.h"
#include "parallel/thread_pool.h"

namespace head {
namespace {

TEST(ThreadPoolTest, SubmitRunsTask) {
  parallel::ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.Submit([&] { ran.fetch_add(1); }).wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPoolTest, SubmitWithTokenDrainsOnlyOwnGroup) {
  parallel::ThreadPool pool(4);
  parallel::WaitToken group_a;
  parallel::WaitToken group_b;

  // Group B holds a task hostage; draining group A must not wait for it.
  std::mutex gate;
  gate.lock();
  pool.SubmitWithToken(&group_b, [&] {
    std::lock_guard<std::mutex> held(gate);
  });

  std::atomic<int> ran{0};
  constexpr int kTasks = 16;
  for (int i = 0; i < kTasks; ++i) {
    pool.SubmitWithToken(&group_a, [&] { ran.fetch_add(1); });
  }
  group_a.Wait();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(group_a.pending(), 0);
  EXPECT_GE(group_b.pending(), 0);

  gate.unlock();
  group_b.Wait();
  EXPECT_EQ(group_b.pending(), 0);
}

TEST(ThreadPoolTest, WaitTokenReleasesOnThrowingTask) {
  parallel::ThreadPool pool(2);
  parallel::WaitToken token;
  auto future = pool.SubmitWithToken(
      &token, [] { throw std::runtime_error("task failed"); });
  token.Wait();  // must not hang: the Releaser fires even on throw
  EXPECT_EQ(token.pending(), 0);
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, WaitTokenOnIdleTokenReturnsImmediately) {
  parallel::WaitToken token;
  token.Wait();
  EXPECT_EQ(token.pending(), 0);
}

TEST(ThreadPoolTest, SubmitWithTokenInlinePool) {
  parallel::ThreadPool pool(1);
  parallel::WaitToken token;
  int ran = 0;
  pool.SubmitWithToken(&token, [&] { ++ran; });
  // Inline pool: the task (and its release) completed inside Submit.
  EXPECT_EQ(token.pending(), 0);
  token.Wait();
  EXPECT_EQ(ran, 1);
}

TEST(ThreadPoolTest, OneThreadPoolRunsInline) {
  parallel::ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1);
  const auto caller = std::this_thread::get_id();
  std::thread::id task_thread;
  pool.Submit([&] { task_thread = std::this_thread::get_id(); }).wait();
  EXPECT_EQ(task_thread, caller);  // no workers: executes on the caller
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  for (int threads : {1, 2, 4}) {
    parallel::ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(0, 257, 10, [&](int64_t b, int64_t e) {
      for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  parallel::ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(5, 5, 1, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  parallel::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(0, 4, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      // A nested dispatch from a worker must not block on the same queue.
      pool.ParallelFor(0, 8, 1, [&](int64_t ib, int64_t ie) {
        inner_total.fetch_add(static_cast<int>(ie - ib));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, GlobalOverrideSwapsAndRestores) {
  parallel::ThreadPool& global = parallel::ThreadPool::Global();
  parallel::ThreadPool local(3);
  {
    parallel::GlobalPoolOverride overridden(&local);
    EXPECT_EQ(&parallel::ThreadPool::Global(), &local);
  }
  EXPECT_EQ(&parallel::ThreadPool::Global(), &global);
}

TEST(SplitMixTest, StreamsAreStableAndDistinct) {
  // Fixed values: the per-episode seed contract must never drift, or every
  // recorded episode result changes meaning.
  EXPECT_EQ(SplitMix(1, 0), SplitMix(1, 0));
  EXPECT_NE(SplitMix(1, 0), SplitMix(1, 1));
  EXPECT_NE(SplitMix(1, 0), SplitMix(2, 0));
  std::vector<uint64_t> seen;
  for (uint64_t s = 0; s < 64; ++s) seen.push_back(SplitMix(7, s));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(StripedTransitionBufferTest, DrainsInEpisodeOrder) {
  parallel::StripedTransitionBuffer buffer(3);
  // Push episodes out of order, steps in order within each episode.
  for (int ep : {4, 1, 7, 0}) {
    for (int s = 0; s < 3; ++s) {
      rl::Transition t;
      t.reward = ep * 10.0 + s;
      buffer.Push(ep, std::move(t));
    }
  }
  EXPECT_EQ(buffer.size(), 12u);
  const auto drained = buffer.DrainOrdered();
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(buffer.size(), 0u);
  const int expected_eps[] = {0, 1, 4, 7};
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].first, expected_eps[i]);
    ASSERT_EQ(drained[i].second.size(), 3u);
    for (int s = 0; s < 3; ++s) {
      EXPECT_DOUBLE_EQ(drained[i].second[s].reward,
                       drained[i].first * 10.0 + s);
    }
  }
}

TEST(StripedTransitionBufferTest, ConcurrentPushesAllArrive) {
  parallel::StripedTransitionBuffer buffer(4);
  parallel::ThreadPool pool(4);
  pool.ParallelFor(0, 16, 1, [&](int64_t b, int64_t e) {
    for (int64_t ep = b; ep < e; ++ep) {
      for (int s = 0; s < 50; ++s) {
        rl::Transition t;
        t.reward = static_cast<double>(ep);
        buffer.Push(static_cast<int>(ep), std::move(t));
      }
    }
  });
  EXPECT_EQ(buffer.size(), 16u * 50u);
  const auto drained = buffer.DrainOrdered();
  ASSERT_EQ(drained.size(), 16u);
  for (int ep = 0; ep < 16; ++ep) {
    EXPECT_EQ(drained[ep].first, ep);
    EXPECT_EQ(drained[ep].second.size(), 50u);
  }
}

/// Threaded kernels must be bitwise identical to the 1-thread path — the
/// chunking preserves each output element's accumulation order.
TEST(ThreadedKernelTest, MatMulFamilyBitwiseMatchesSerial) {
  Rng rng(123);
  // Big enough to clear kParallelFlops (2^18): 128·128·128 = 2^21.
  const nn::Tensor a = nn::Tensor::Uniform(128, 128, -1.0, 1.0, rng);
  const nn::Tensor b = nn::Tensor::Uniform(128, 128, -1.0, 1.0, rng);
  const nn::Tensor bias = nn::Tensor::Uniform(1, 128, -1.0, 1.0, rng);
  const nn::Tensor col = nn::Tensor::Uniform(128, 1, -1.0, 1.0, rng);

  parallel::ThreadPool serial(1);
  nn::Tensor mm, aff, mta, mm_col, mta_col;
  {
    parallel::GlobalPoolOverride overridden(&serial);
    mm = nn::MatMul(a, b);
    aff = nn::Affine(a, b, bias);
    mta = nn::MatMulTransposeA(a, b);
    mm_col = nn::MatMul(a, col);
    mta_col = nn::MatMulTransposeA(a, col);
  }
  parallel::ThreadPool threaded(4);
  {
    parallel::GlobalPoolOverride overridden(&threaded);
    EXPECT_EQ(nn::MatMul(a, b), mm);
    EXPECT_EQ(nn::Affine(a, b, bias), aff);
    EXPECT_EQ(nn::MatMulTransposeA(a, b), mta);
    EXPECT_EQ(nn::MatMul(a, col), mm_col);
    EXPECT_EQ(nn::MatMulTransposeA(a, col), mta_col);
  }
}

TEST(ThreadedKernelTest, RepeatedThreadedRunsAreBitwiseStable) {
  Rng rng(321);
  const nn::Tensor a = nn::Tensor::Uniform(96, 160, -1.0, 1.0, rng);
  const nn::Tensor b = nn::Tensor::Uniform(160, 96, -1.0, 1.0, rng);
  parallel::ThreadPool threaded(4);
  parallel::GlobalPoolOverride overridden(&threaded);
  const nn::Tensor first = nn::MatMul(a, b);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(nn::MatMul(a, b), first) << "run " << i;
  }
}

}  // namespace
}  // namespace head
