// Forward and finite-difference backward checks for the batched autograd
// ops behind the vectorized training paths (GatherRows, SelectColumnPerRow,
// RowwiseMax, SumRows, ScaleRows, SumRowGroups), plus the grad-mode switch
// (NoGradGuard) that turns forward passes into pure inference.
#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nn/autograd.h"

namespace head::nn {
namespace {

// Numerically verifies d(loss)/d(param) for a scalar-valued builder that
// reconstructs the graph from the current parameter values on every call.
void CheckGradient(Var param, const std::function<Var()>& build_loss,
                   double eps = 1e-6, double tol = 1e-5) {
  param.ZeroGrad();
  Var loss = build_loss();
  Backward(loss);
  const Tensor analytic = param.grad();
  Tensor& value = param.mutable_value();
  for (int i = 0; i < value.size(); ++i) {
    const double saved = value[i];
    value[i] = saved + eps;
    const double up = build_loss().value()[0];
    value[i] = saved - eps;
    const double down = build_loss().value()[0];
    value[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "param element " << i;
  }
}

Tensor Arange(int rows, int cols, double scale = 0.1, double shift = -0.35) {
  Tensor t(rows, cols);
  for (int i = 0; i < t.size(); ++i) t[i] = scale * i + shift;
  return t;
}

// Weighs each output element differently so gradient bugs that only show up
// off the all-ones cotangent are caught.
Var WeightedSum(const Var& v) {
  return Sum(Mul(v, Var::Constant(
                        Arange(v.value().rows(), v.value().cols(), 0.37, 0.2))));
}

TEST(BatchedOpsTest, GatherRowsForward) {
  const Var a = Var::Constant(Arange(4, 3));
  const Var g = GatherRows(a, {2, 0, 2, 3});
  ASSERT_EQ(g.value().rows(), 4);
  ASSERT_EQ(g.value().cols(), 3);
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(g.value().At(0, c), a.value().At(2, c));
    EXPECT_DOUBLE_EQ(g.value().At(1, c), a.value().At(0, c));
    EXPECT_DOUBLE_EQ(g.value().At(2, c), a.value().At(2, c));
    EXPECT_DOUBLE_EQ(g.value().At(3, c), a.value().At(3, c));
  }
}

TEST(BatchedOpsTest, GatherRowsGradientWithRepeats) {
  Var a = Var::Param(Arange(4, 3));
  // Row 2 is gathered twice — its gradient must scatter-add both copies.
  CheckGradient(a, [&] { return WeightedSum(GatherRows(a, {2, 0, 2, 1})); });
}

TEST(BatchedOpsTest, SelectColumnPerRowForward) {
  const Var a = Var::Constant(Arange(3, 4));
  const Var s = SelectColumnPerRow(a, {1, 3, 0});
  ASSERT_EQ(s.value().rows(), 3);
  ASSERT_EQ(s.value().cols(), 1);
  EXPECT_DOUBLE_EQ(s.value().At(0, 0), a.value().At(0, 1));
  EXPECT_DOUBLE_EQ(s.value().At(1, 0), a.value().At(1, 3));
  EXPECT_DOUBLE_EQ(s.value().At(2, 0), a.value().At(2, 0));
}

TEST(BatchedOpsTest, SelectColumnPerRowGradient) {
  Var a = Var::Param(Arange(3, 4));
  CheckGradient(a,
                [&] { return WeightedSum(SelectColumnPerRow(a, {1, 3, 0})); });
}

TEST(BatchedOpsTest, RowwiseMaxForward) {
  Tensor t(2, 3);
  t.At(0, 0) = -1.0, t.At(0, 1) = 5.0, t.At(0, 2) = 2.0;
  t.At(1, 0) = 7.0, t.At(1, 1) = -3.0, t.At(1, 2) = 4.0;
  const Var m = RowwiseMax(Var::Constant(t));
  ASSERT_EQ(m.value().rows(), 2);
  ASSERT_EQ(m.value().cols(), 1);
  EXPECT_DOUBLE_EQ(m.value().At(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(m.value().At(1, 0), 7.0);
}

TEST(BatchedOpsTest, RowwiseMaxGradient) {
  // Distinct entries (no ties) so the subgradient is unique and the finite
  // difference stays on one side of the max.
  Var a = Var::Param(Arange(3, 4, 0.31, -0.7));
  CheckGradient(a, [&] { return WeightedSum(RowwiseMax(a)); });
}

TEST(BatchedOpsTest, SumRowsForwardAndGradient) {
  Var a = Var::Param(Arange(3, 2));
  const Var s = SumRows(a);
  ASSERT_EQ(s.value().rows(), 1);
  ASSERT_EQ(s.value().cols(), 2);
  EXPECT_NEAR(s.value().At(0, 0),
              a.value().At(0, 0) + a.value().At(1, 0) + a.value().At(2, 0),
              1e-12);
  CheckGradient(a, [&] { return WeightedSum(SumRows(a)); });
}

TEST(BatchedOpsTest, ScaleRowsForward) {
  const Var a = Var::Constant(Arange(2, 3));
  Tensor s(2, 1);
  s.At(0, 0) = 2.0;
  s.At(1, 0) = -0.5;
  const Var r = ScaleRows(a, Var::Constant(s));
  for (int c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(r.value().At(0, c), 2.0 * a.value().At(0, c));
    EXPECT_DOUBLE_EQ(r.value().At(1, c), -0.5 * a.value().At(1, c));
  }
}

TEST(BatchedOpsTest, ScaleRowsGradientBothInputs) {
  Var a = Var::Param(Arange(3, 2));
  Var s = Var::Param(Arange(3, 1, 0.4, 0.3));
  auto loss = [&] { return WeightedSum(ScaleRows(a, s)); };
  CheckGradient(a, loss);
  a.ZeroGrad();
  CheckGradient(s, loss);
}

TEST(BatchedOpsTest, SumRowGroupsForwardAndGradient) {
  Var a = Var::Param(Arange(6, 2));
  const Var g = SumRowGroups(a, 3);
  ASSERT_EQ(g.value().rows(), 2);
  ASSERT_EQ(g.value().cols(), 2);
  EXPECT_NEAR(g.value().At(0, 0),
              a.value().At(0, 0) + a.value().At(1, 0) + a.value().At(2, 0),
              1e-12);
  EXPECT_NEAR(g.value().At(1, 1),
              a.value().At(3, 1) + a.value().At(4, 1) + a.value().At(5, 1),
              1e-12);
  CheckGradient(a, [&] { return WeightedSum(SumRowGroups(a, 3)); });
}

TEST(BatchedOpsTest, AffineMatchesMatMulPlusBias) {
  const Var x = Var::Constant(Arange(4, 3));
  const Var w = Var::Constant(Arange(3, 5, 0.23, -0.4));
  const Var b = Var::Constant(Arange(1, 5, 0.11, 0.05));
  const Var fused = Affine(x, w, b);
  const Var composed = AddRowBroadcast(MatMul(x, w), b);
  ASSERT_EQ(fused.value().rows(), 4);
  ASSERT_EQ(fused.value().cols(), 5);
  for (int i = 0; i < fused.value().size(); ++i) {
    EXPECT_NEAR(fused.value()[i], composed.value()[i], 1e-12);
  }
}

TEST(BatchedOpsTest, AffineGradientAllInputs) {
  Var x = Var::Param(Arange(4, 3));
  Var w = Var::Param(Arange(3, 5, 0.23, -0.4));
  Var b = Var::Param(Arange(1, 5, 0.11, 0.05));
  auto loss = [&] { return WeightedSum(Affine(x, w, b)); };
  CheckGradient(x, loss);
  x.ZeroGrad();
  CheckGradient(w, loss);
  w.ZeroGrad();
  CheckGradient(b, loss);
}

TEST(BatchedOpsTest, AffineColumnOutputGradient) {
  // n == 1 takes the dot-product fast path; check it separately.
  Var x = Var::Param(Arange(5, 3));
  Var w = Var::Param(Arange(3, 1, 0.4, -0.2));
  Var b = Var::Param(Arange(1, 1, 0.0, 0.7));
  auto loss = [&] { return WeightedSum(Affine(x, w, b)); };
  CheckGradient(x, loss);
  x.ZeroGrad();
  CheckGradient(w, loss);
  w.ZeroGrad();
  CheckGradient(b, loss);
}

TEST(GradModeTest, NoGradGuardDisablesRecording) {
  EXPECT_TRUE(GradEnabled());
  Var a = Var::Param(Arange(2, 3));
  Var b = Var::Param(Arange(3, 2));
  {
    const NoGradGuard guard;
    EXPECT_FALSE(GradEnabled());
    const Var out = Sum(MatMul(a, b));
    // Values are still computed…
    EXPECT_EQ(out.value().rows(), 1);
    // …but the result is detached: no backward graph, no grad requirement.
    EXPECT_FALSE(out.requires_grad());
  }
  EXPECT_TRUE(GradEnabled());
  // Nothing was recorded, so the params never received gradients.
  for (int i = 0; i < a.grad().size(); ++i) EXPECT_EQ(a.grad()[i], 0.0);
  for (int i = 0; i < b.grad().size(); ++i) EXPECT_EQ(b.grad()[i], 0.0);
}

TEST(GradModeTest, GuardNestsAndRestores) {
  const NoGradGuard outer;
  EXPECT_FALSE(GradEnabled());
  {
    const NoGradGuard inner;
    EXPECT_FALSE(GradEnabled());
  }
  // Inner guard must restore the *outer* disabled state, not re-enable.
  EXPECT_FALSE(GradEnabled());
}

TEST(GradModeTest, GradModeIsThreadLocal) {
  const NoGradGuard guard;  // disable on this thread only
  ASSERT_FALSE(GradEnabled());
  bool other_thread_enabled = false;
  bool other_thread_built_graph = false;
  std::thread worker([&] {
    other_thread_enabled = GradEnabled();
    Var a = Var::Param(Arange(2, 2));
    Var loss = Sum(Mul(a, a));
    Backward(loss);
    // d(Σa²)/da = 2a, nonzero for the Arange values used here.
    other_thread_built_graph = a.grad().size() == a.value().size() &&
                               a.grad()[0] == 2.0 * a.value()[0];
  });
  worker.join();
  EXPECT_TRUE(other_thread_enabled);
  EXPECT_TRUE(other_thread_built_graph);
  EXPECT_FALSE(GradEnabled());
}

TEST(GradModeTest, NoGradValuesMatchRecordedValues) {
  Var a = Var::Param(Arange(3, 3));
  Var b = Var::Param(Arange(3, 3, 0.2, -0.5));
  const Var recorded = MatMul(Sigmoid(a), Tanh(b));
  Tensor detached;
  {
    const NoGradGuard guard;
    detached = MatMul(Sigmoid(a), Tanh(b)).value();
  }
  for (int i = 0; i < detached.size(); ++i) {
    EXPECT_DOUBLE_EQ(detached[i], recorded.value()[i]);
  }
}

}  // namespace
}  // namespace head::nn
