// DrivingEnv: the PAMDP loop around the simulator, sensor and perception.
#include "rl/env.h"

#include <gtest/gtest.h>

#include "perception/lst_gat.h"

namespace head::rl {
namespace {

EnvConfig SmallEnv() {
  EnvConfig c;
  c.sim.road.length_m = 400.0;
  c.sim.spawn.back_margin_m = 120.0;
  c.sim.spawn.front_margin_m = 120.0;
  return c;
}

TEST(DrivingEnvTest, ResetProducesWellFormedState) {
  Rng rng(1);
  perception::LstGat predictor(perception::LstGatConfig{}, rng);
  DrivingEnv env(SmallEnv(), &predictor, 1);
  const AugmentedState s = env.Reset(5);
  EXPECT_EQ(s.h.rows(), kStateHRows);
  EXPECT_EQ(s.h.cols(), kStateCols);
  EXPECT_EQ(s.f.rows(), kStateFRows);
  EXPECT_EQ(s.f.cols(), kStateCols);
  EXPECT_EQ(env.simulation().step_count(), 0);
}

TEST(DrivingEnvTest, StepAdvancesAndRewardsAreBounded) {
  Rng rng(1);
  perception::LstGat predictor(perception::LstGatConfig{}, rng);
  DrivingEnv env(SmallEnv(), &predictor, 1);
  env.Reset(7);
  for (int i = 0; i < 30; ++i) {
    const auto out = env.Step(Maneuver{LaneChange::kKeep, 0.5});
    // r = 0.9·r1 + 0.8·r2 + 0.6·r3 + 0.2·r4 ∈ [−4.5, 0.8].
    EXPECT_LE(out.reward.total, 0.8 + 1e-9);
    EXPECT_GE(out.reward.total, -4.5);
    if (out.done) break;
  }
  EXPECT_GT(env.simulation().step_count(), 0);
}

TEST(DrivingEnvTest, CollisionTerminatesWithSafetyPenalty) {
  EnvConfig config = SmallEnv();
  Rng rng(1);
  perception::LstGat predictor(perception::LstGatConfig{}, rng);
  DrivingEnv env(config, &predictor, 1);
  env.Reset(11);
  DrivingEnv::StepOutcome out;
  for (int i = 0; i < 10; ++i) {
    out = env.Step(Maneuver{LaneChange::kLeft, 0.0});  // drive off-road
    if (out.done) break;
  }
  ASSERT_TRUE(out.done);
  EXPECT_EQ(out.status, sim::EpisodeStatus::kCollision);
  EXPECT_DOUBLE_EQ(out.reward.safety, -3.0);
}

TEST(DrivingEnvTest, WithoutPredictionFutureBlockEqualsCurrent) {
  EnvConfig config = SmallEnv();
  config.use_prediction = false;
  DrivingEnv env(config, nullptr, 1);
  const AugmentedState s = env.Reset(13);
  // f rows must replicate the current relative states in h rows 1..6.
  for (int i = 0; i < kStateFRows; ++i) {
    for (int c = 0; c < 3; ++c) {
      EXPECT_NEAR(s.f.At(i, c), s.h.At(1 + i, c), 1e-9) << i << "," << c;
    }
  }
}

TEST(DrivingEnvTest, UsePredictionRequiresPredictor) {
  EnvConfig config = SmallEnv();
  config.use_prediction = true;
  EXPECT_DEATH(DrivingEnv(config, nullptr, 1), "predictor");
}

TEST(DrivingEnvTest, EfficiencyRewardTracksVelocity) {
  EnvConfig config = SmallEnv();
  config.use_prediction = false;
  config.sim.spawn.density_veh_per_km = 1e-6;  // free road
  DrivingEnv env(config, nullptr, 1);
  env.Reset(17);
  double last_eff = 0.0;
  for (int i = 0; i < 12; ++i) {
    const auto out = env.Step(Maneuver{LaneChange::kKeep, 3.0});
    EXPECT_GE(out.reward.efficiency, last_eff - 1e-9);  // speeding up
    last_eff = out.reward.efficiency;
    if (out.done) break;
  }
  EXPECT_GT(last_eff, 0.5);
}

}  // namespace
}  // namespace head::rl
