// Parity and dispatch tests for the SIMD kernel layer (src/nn/kernels).
//
// Contract under test (simd.h, DESIGN.md "SIMD kernel dispatch"):
//   * Every GEMM-family op agrees between the scalar and AVX2 backends to
//     ≤ 1e-6 relative (FMA contraction is the only divergence source).
//   * Elementwise kernels (axpy, activations, Adam, rowwise-max) are
//     bitwise identical across backends.
//   * fast_math OFF pins GEMM to the scalar schedule regardless of the
//     active ISA — bitwise equality with the scalar backend.
//   * AVX2 GEMM results are invariant to row-blocking, packing, thread
//     count, and the m-size dispatch path (uniform-arithmetic design).
//   * End to end: a full BP-DQN update loop and an LST-GAT training run
//     land on the same parameters under fast-math AVX2 and scalar.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "nn/autograd.h"
#include "nn/kernels/kernel_table.h"
#include "nn/kernels/simd.h"
#include "nn/layers.h"
#include "nn/optimizer.h"
#include "nn/tensor.h"
#include "parallel/thread_pool.h"
#include "perception/lst_gat.h"
#include "perception/trainer.h"
#include "rl/nets.h"
#include "rl/pdqn_agent.h"

namespace head {
namespace {

namespace kernels = nn::kernels;

// Relative tolerance for scalar-vs-AVX2 GEMM parity. FMA keeps the AVX2
// path within ~1e-13 of scalar at these shapes; 1e-6 is the contract.
constexpr double kRelTol = 1e-6;

double RelDiff(double a, double b) {
  const double scale = std::max({std::abs(a), std::abs(b), 1.0});
  return std::abs(a - b) / scale;
}

void ExpectTensorRelNear(const nn::Tensor& a, const nn::Tensor& b,
                         double tol = kRelTol) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_LE(RelDiff(a[i], b[i]), tol) << "element " << i;
  }
}

void ExpectTensorBitwise(const nn::Tensor& a, const nn::Tensor& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  for (int i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// Saves and restores the process-global ISA + fast_math state around each
// test so order does not matter.
class SimdTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_isa_ = kernels::ActiveIsa();
    saved_fast_math_ = kernels::FastMathEnabled();
  }
  void TearDown() override {
    kernels::SetActiveIsa(saved_isa_);
    kernels::SetFastMath(saved_fast_math_);
  }

  // True (and the backend switched) when AVX2 is usable; otherwise the
  // caller should skip the AVX2 leg.
  static bool UseAvx2() { return kernels::SetActiveIsa(kernels::Isa::kAvx2); }
  static void UseScalar() {
    ASSERT_TRUE(kernels::SetActiveIsa(kernels::Isa::kScalar));
  }

  kernels::Isa saved_isa_ = kernels::Isa::kScalar;
  bool saved_fast_math_ = true;
};

struct GemmShape {
  int m, n, k;
};

// Remainder coverage: every combination of full/partial 4-row blocks and
// 8-column panels, degenerate m=1 / n=1 / k=1 vectors, and sizes straddling
// the packed-path threshold (m >= 8).
const GemmShape kShapes[] = {
    {1, 1, 1},  {1, 8, 4},   {1, 5, 7},    {3, 5, 7},    {4, 8, 16},
    {5, 9, 17}, {7, 1, 13},  {8, 8, 8},    {9, 16, 4},   {13, 29, 31},
    {16, 3, 2}, {64, 64, 64}, {33, 7, 1},  {2, 24, 40},  {12, 12, 12},
};

TEST_F(SimdTest, GemmShapeGridScalarVsAvx2) {
  if (!UseAvx2()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  kernels::SetFastMath(true);
  Rng rng(101);
  for (const GemmShape& s : kShapes) {
    const nn::Tensor a = nn::Tensor::Uniform(s.m, s.k, -1.0, 1.0, rng);
    const nn::Tensor b = nn::Tensor::Uniform(s.k, s.n, -1.0, 1.0, rng);
    const nn::Tensor bias = nn::Tensor::Uniform(1, s.n, -1.0, 1.0, rng);
    const nn::Tensor at = nn::Tensor::Uniform(s.k, s.m, -1.0, 1.0, rng);
    const nn::Tensor bt = nn::Tensor::Uniform(s.n, s.k, -1.0, 1.0, rng);

    ASSERT_TRUE(UseAvx2());
    const nn::Tensor mm_v = nn::MatMul(a, b);
    const nn::Tensor af_v = nn::Affine(a, b, bias);
    const nn::Tensor ta_v = nn::MatMulTransposeA(at, b);
    const nn::Tensor tb_v = nn::MatMulTransposeB(a, bt);

    UseScalar();
    ExpectTensorRelNear(mm_v, nn::MatMul(a, b));
    ExpectTensorRelNear(af_v, nn::Affine(a, b, bias));
    ExpectTensorRelNear(ta_v, nn::MatMulTransposeA(at, b));
    ExpectTensorRelNear(tb_v, nn::MatMulTransposeB(a, bt));
  }
}

TEST_F(SimdTest, GemmZeroSizedDimensions) {
  // m/n/k = 0 must be a no-op (beyond init) on every backend: the kernels
  // are called on raw buffers so zero trip counts exercise the loop guards.
  const double a[4] = {1, 2, 3, 4};
  const double b[4] = {5, 6, 7, 8};
  const double bias[2] = {-1.0, 2.5};
  for (const bool use_avx2 : {false, true}) {
    if (use_avx2 && !UseAvx2()) continue;
    if (!use_avx2) UseScalar();
    double c[4] = {9, 9, 9, 9};
    kernels::GemmNN(0, 2, 2, a, b, nullptr, kernels::GemmInit::kZero, c);
    EXPECT_EQ(c[0], 9.0);  // m == 0: untouched
    kernels::GemmNN(2, 2, 0, a, b, nullptr, kernels::GemmInit::kZero, c);
    for (double v : c) EXPECT_EQ(v, 0.0);  // k == 0: init only
    kernels::GemmNN(1, 2, 0, a, b, bias, kernels::GemmInit::kBias, c);
    EXPECT_EQ(c[0], bias[0]);
    EXPECT_EQ(c[1], bias[1]);
    kernels::GemmTN(2, 2, 0, a, b, kernels::GemmInit::kZero, c);
    for (double v : c) EXPECT_EQ(v, 0.0);
    kernels::GemmNT(2, 2, 0, a, b, c);
    for (double v : c) EXPECT_EQ(v, 0.0);
  }
}

TEST_F(SimdTest, FastMathOffPinsScalarScheduleBitwise) {
  if (!UseAvx2()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  Rng rng(7);
  const nn::Tensor a = nn::Tensor::Uniform(13, 31, -1.0, 1.0, rng);
  const nn::Tensor b = nn::Tensor::Uniform(31, 17, -1.0, 1.0, rng);
  const nn::Tensor bias = nn::Tensor::Uniform(1, 17, -1.0, 1.0, rng);

  UseScalar();
  kernels::SetFastMath(true);
  const nn::Tensor mm_s = nn::MatMul(a, b);
  const nn::Tensor af_s = nn::Affine(a, b, bias);

  ASSERT_TRUE(UseAvx2());
  kernels::SetFastMath(false);
  EXPECT_FALSE(kernels::FastMathEnabled());
  // AVX2 backend active but fast_math off: GEMMs run the scalar schedule.
  ExpectTensorBitwise(mm_s, nn::MatMul(a, b));
  ExpectTensorBitwise(af_s, nn::Affine(a, b, bias));

  kernels::SetFastMath(true);
  EXPECT_TRUE(kernels::FastMathEnabled());
}

TEST_F(SimdTest, ElementwiseKernelsBitwiseAcrossIsas) {
  if (!kernels::CpuSupportsAvx2Fma()) {
    GTEST_SKIP() << "no AVX2+FMA on this machine";
  }
  Rng rng(19);
  const int n = 1027;  // odd length: exercises the vector tail
  std::vector<double> x(n), y0(n), g(n);
  for (int i = 0; i < n; ++i) {
    x[i] = rng.Uniform(-2.0, 2.0);
    y0[i] = rng.Uniform(-2.0, 2.0);
    g[i] = rng.Uniform(-1.0, 1.0);
  }

  const kernels::ActKind kActs[] = {
      kernels::ActKind::kRelu, kernels::ActKind::kLeakyRelu,
      kernels::ActKind::kTanh, kernels::ActKind::kSigmoid};

  // Axpy.
  std::vector<double> ys = y0, yv = y0;
  UseScalar();
  kernels::Axpy(n, 0.37, x.data(), ys.data());
  ASSERT_TRUE(UseAvx2());
  kernels::Axpy(n, 0.37, x.data(), yv.data());
  for (int i = 0; i < n; ++i) ASSERT_EQ(ys[i], yv[i]) << i;

  for (kernels::ActKind act : kActs) {
    // Forward (in place).
    std::vector<double> fs = x, fv = x;
    UseScalar();
    kernels::ActForward(act, 0.2, n, fs.data());
    ASSERT_TRUE(UseAvx2());
    kernels::ActForward(act, 0.2, n, fv.data());
    for (int i = 0; i < n; ++i) ASSERT_EQ(fs[i], fv[i]) << i;
    // Backward from the (identical) outputs.
    std::vector<double> gs(n), gv(n);
    UseScalar();
    kernels::ActBackward(act, 0.2, n, fs.data(), g.data(), gs.data());
    ASSERT_TRUE(UseAvx2());
    kernels::ActBackward(act, 0.2, n, fv.data(), g.data(), gv.data());
    for (int i = 0; i < n; ++i) ASSERT_EQ(gs[i], gv[i]) << i;
  }

  // Rowwise max (values and argmax), including ties and negatives.
  const int rows = 9, cols = 13;
  std::vector<double> mat(rows * cols);
  for (double& v : mat) v = rng.Uniform(-1.0, 1.0);
  mat[2 * cols + 3] = mat[2 * cols + 7] = 5.0;  // tie: first index wins
  std::vector<double> out_s(rows), out_v(rows);
  std::vector<int> arg_s(rows), arg_v(rows);
  UseScalar();
  kernels::RowwiseMax(rows, cols, mat.data(), out_s.data(), arg_s.data());
  ASSERT_TRUE(UseAvx2());
  kernels::RowwiseMax(rows, cols, mat.data(), out_v.data(), arg_v.data());
  for (int r = 0; r < rows; ++r) {
    ASSERT_EQ(out_s[r], out_v[r]) << r;
    ASSERT_EQ(arg_s[r], arg_v[r]) << r;
  }
  EXPECT_EQ(arg_s[2], 3);

  // Fused Adam step.
  std::vector<double> ms(n, 0.0), vs2(n, 0.0), ps(n), mv(n, 0.0),
      vv(n, 0.0), pv(n);
  for (int i = 0; i < n; ++i) ps[i] = pv[i] = x[i];
  for (int step = 1; step <= 3; ++step) {
    const double bc1 = 1.0 - std::pow(0.9, step);
    const double bc2 = 1.0 - std::pow(0.999, step);
    UseScalar();
    kernels::AdamStep(n, 1e-3, 0.9, 0.999, 1e-8, bc1, bc2, g.data(),
                      ms.data(), vs2.data(), ps.data());
    ASSERT_TRUE(UseAvx2());
    kernels::AdamStep(n, 1e-3, 0.9, 0.999, 1e-8, bc1, bc2, g.data(),
                      mv.data(), vv.data(), pv.data());
  }
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(ps[i], pv[i]) << i;
    ASSERT_EQ(ms[i], mv[i]) << i;
    ASSERT_EQ(vs2[i], vv[i]) << i;
  }
}

TEST_F(SimdTest, AffineActMatchesUnfusedComposition) {
  Rng rng(23);
  for (const bool use_avx2 : {false, true}) {
    if (use_avx2 && !UseAvx2()) continue;
    if (!use_avx2) UseScalar();
    kernels::SetFastMath(true);
    nn::ResetTape();
    const nn::Var x =
        nn::Var::Constant(nn::Tensor::Uniform(6, 10, -1.0, 1.0, rng));
    const nn::Var w =
        nn::Var::Param(nn::Tensor::Uniform(10, 7, -1.0, 1.0, rng));
    const nn::Var b =
        nn::Var::Param(nn::Tensor::Uniform(1, 7, -0.5, 0.5, rng));
    const nn::Var w2 = nn::Var::Param(w.value());
    const nn::Var b2 = nn::Var::Param(b.value());

    struct Case {
      nn::FusedAct act;
      nn::Var (*unfused)(const nn::Var&);
    };
    const nn::Var fused_relu =
        nn::AffineAct(x, w, b, nn::FusedAct::kRelu);
    const nn::Var fused_leaky =
        nn::AffineAct(x, w, b, nn::FusedAct::kLeakyRelu, 0.2);
    const nn::Var fused_tanh = nn::AffineAct(x, w, b, nn::FusedAct::kTanh);
    const nn::Var ref_relu = nn::Relu(nn::Affine(x, w2, b2));
    const nn::Var ref_leaky = nn::LeakyRelu(nn::Affine(x, w2, b2), 0.2);
    const nn::Var ref_tanh = nn::Tanh(nn::Affine(x, w2, b2));

    // Forward: the fused node applies the activation in place on the same
    // affine output — values must match bitwise within a backend.
    ExpectTensorBitwise(fused_relu.value(), ref_relu.value());
    ExpectTensorBitwise(fused_leaky.value(), ref_leaky.value());
    ExpectTensorBitwise(fused_tanh.value(), ref_tanh.value());

    // Gradients: the fused backward recovers act' from the output; allow
    // rounding-level slack vs the unfused node pair.
    const nn::Var loss = nn::Add(
        nn::Sum(fused_relu), nn::Add(nn::Sum(fused_leaky),
                                     nn::Sum(fused_tanh)));
    const nn::Var ref_loss = nn::Add(
        nn::Sum(ref_relu), nn::Add(nn::Sum(ref_leaky), nn::Sum(ref_tanh)));
    nn::Backward(loss);
    nn::Backward(ref_loss);
    ExpectTensorRelNear(w.grad(), w2.grad(), 1e-9);
    ExpectTensorRelNear(b.grad(), b2.grad(), 1e-9);
  }
}

TEST_F(SimdTest, DualAffineMatchesUnfusedComposition) {
  Rng rng(29);
  for (const bool use_avx2 : {false, true}) {
    if (use_avx2 && !UseAvx2()) continue;
    if (!use_avx2) UseScalar();
    kernels::SetFastMath(true);
    nn::ResetTape();
    const nn::Var x =
        nn::Var::Constant(nn::Tensor::Uniform(5, 6, -1.0, 1.0, rng));
    const nn::Var h =
        nn::Var::Constant(nn::Tensor::Uniform(5, 4, -1.0, 1.0, rng));
    const nn::Var w1 =
        nn::Var::Param(nn::Tensor::Uniform(6, 8, -1.0, 1.0, rng));
    const nn::Var w2 =
        nn::Var::Param(nn::Tensor::Uniform(4, 8, -1.0, 1.0, rng));
    const nn::Var b =
        nn::Var::Param(nn::Tensor::Uniform(1, 8, -0.5, 0.5, rng));
    const nn::Var w1r = nn::Var::Param(w1.value());
    const nn::Var w2r = nn::Var::Param(w2.value());
    const nn::Var br = nn::Var::Param(b.value());

    const nn::Var fused = nn::DualAffine(x, w1, h, w2, b);
    const nn::Var ref = nn::Add(nn::Affine(x, w1r, br), nn::MatMul(h, w2r));
    ExpectTensorRelNear(fused.value(), ref.value(), 1e-12);

    nn::Backward(nn::Sum(fused));
    nn::Backward(nn::Sum(ref));
    ExpectTensorRelNear(w1.grad(), w1r.grad(), 1e-9);
    ExpectTensorRelNear(w2.grad(), w2r.grad(), 1e-9);
    ExpectTensorRelNear(b.grad(), br.grad(), 1e-9);
  }
}

TEST_F(SimdTest, PackedPathIsRowPrefixInvariant) {
  // The packed microkernel path (m >= 8) must produce, row for row, exactly
  // what the small-m path produces: every output element is the same
  // fold of fma over k regardless of blocking. This is the property that
  // makes batched-vs-per-sample training bitwise reproducible under AVX2.
  if (!UseAvx2()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  kernels::SetFastMath(true);
  Rng rng(31);
  const int k = 37, n = 21, big_m = 40, small_m = 3;
  const nn::Tensor a = nn::Tensor::Uniform(big_m, k, -1.0, 1.0, rng);
  const nn::Tensor b = nn::Tensor::Uniform(k, n, -1.0, 1.0, rng);
  nn::Tensor a_small(small_m, k);
  for (int r = 0; r < small_m; ++r) {
    for (int c = 0; c < k; ++c) a_small.At(r, c) = a.At(r, c);
  }
  const nn::Tensor big = nn::MatMul(a, b);        // packed microkernel
  const nn::Tensor small = nn::MatMul(a_small, b);  // unpacked row-vector path
  for (int r = 0; r < small_m; ++r) {
    for (int c = 0; c < n; ++c) {
      ASSERT_EQ(big.At(r, c), small.At(r, c)) << r << "," << c;
    }
  }
}

#if defined(HEAD_HAVE_AVX2_TU)
TEST_F(SimdTest, SmallKPackedPathBitwiseMatchesGenericMicrokernel) {
  // The compile-time small-k kernel (k <= 8, contiguous A, whole panels)
  // must be a pure performance choice: same per-element k-ordered fold,
  // same bits, as the generic packed microkernel. The generic path is
  // forced by widening A with one padding column (a_row_stride = k + 1),
  // which feeds it the identical row data through the strided reader.
  if (!UseAvx2()) GTEST_SKIP() << "no AVX2+FMA on this machine";
  namespace internal = kernels::internal;
  const internal::KernelTable& t = internal::kAvx2Table;
  Rng rng(53);
  using kernels::GemmInit;
  for (const int k : {1, 2, 3, 4, 5, 7, 8}) {
    for (const int m : {8, 9, 11}) {
      for (const int n : {8, 16, 64}) {
        const nn::Tensor a = nn::Tensor::Uniform(m, k, -1.0, 1.0, rng);
        const nn::Tensor b = nn::Tensor::Uniform(k, n, -1.0, 1.0, rng);
        const nn::Tensor bias = nn::Tensor::Uniform(1, n, -1.0, 1.0, rng);
        nn::Tensor a_padded(m, k + 1);
        for (int r = 0; r < m; ++r) {
          for (int c = 0; c < k; ++c) a_padded.At(r, c) = a.At(r, c);
        }
        std::vector<double> bp(internal::PackedBSize(n, k));
        std::vector<double> bias_p(internal::PackedBiasSize(n));
        t.pack_b(n, k, b.data().data(), /*transposed=*/false, bp.data());
        t.pack_bias(n, bias.data().data(), bias_p.data());
        for (const GemmInit init :
             {GemmInit::kZero, GemmInit::kBias, GemmInit::kAccumulate}) {
          const nn::Tensor seed = nn::Tensor::Uniform(m, n, -1.0, 1.0, rng);
          nn::Tensor c_small = seed, c_generic = seed;
          t.gemm_packed(m, n, k, a.data().data(), /*a_row_stride=*/k,
                        /*a_k_stride=*/1, bp.data(), bias_p.data(), init,
                        c_small.data().data());
          t.gemm_packed(m, n, k, a_padded.data().data(),
                        /*a_row_stride=*/k + 1, /*a_k_stride=*/1, bp.data(),
                        bias_p.data(), init, c_generic.data().data());
          for (int i = 0; i < m * n; ++i) {
            ASSERT_EQ(c_small[i], c_generic[i])
                << "m=" << m << " n=" << n << " k=" << k
                << " init=" << static_cast<int>(init) << " i=" << i;
          }
        }
      }
    }
  }
}
#endif  // HEAD_HAVE_AVX2_TU

TEST_F(SimdTest, GemmThreadCountInvariant) {
  // Large enough to cross the parallel flop threshold (2·256³ ≈ 3.4e7).
  Rng rng(41);
  const nn::Tensor a = nn::Tensor::Uniform(256, 256, -1.0, 1.0, rng);
  const nn::Tensor b = nn::Tensor::Uniform(256, 256, -1.0, 1.0, rng);
  for (const bool use_avx2 : {false, true}) {
    if (use_avx2 && !UseAvx2()) continue;
    if (!use_avx2) UseScalar();
    kernels::SetFastMath(true);
    nn::Tensor serial, threaded;
    {
      parallel::ThreadPool one(1);
      parallel::GlobalPoolOverride ov(&one);
      serial = nn::MatMul(a, b);
    }
    {
      parallel::ThreadPool four(4);
      parallel::GlobalPoolOverride ov(&four);
      threaded = nn::MatMul(a, b);
    }
    ExpectTensorBitwise(serial, threaded);
  }
}

TEST_F(SimdTest, RowwiseMaxTensorMatchesReference) {
  Rng rng(47);
  const nn::Tensor a = nn::Tensor::Uniform(11, 3, -5.0, 5.0, rng);
  for (const bool use_avx2 : {false, true}) {
    if (use_avx2 && !UseAvx2()) continue;
    if (!use_avx2) UseScalar();
    const nn::Tensor m = nn::RowwiseMax(a);
    ASSERT_EQ(m.rows(), 11);
    ASSERT_EQ(m.cols(), 1);
    for (int r = 0; r < a.rows(); ++r) {
      double want = a.At(r, 0);
      for (int c = 1; c < a.cols(); ++c) want = std::max(want, a.At(r, c));
      EXPECT_EQ(m.At(r, 0), want) << r;
    }
  }
}

TEST_F(SimdTest, DispatchControls) {
  EXPECT_TRUE(kernels::SetActiveIsa(kernels::Isa::kScalar));
  EXPECT_EQ(kernels::ActiveIsa(), kernels::Isa::kScalar);
  // kAvx2 is accepted exactly when the binary + CPU support it; a rejected
  // request must leave the scalar backend active.
  const bool want = kernels::CpuSupportsAvx2Fma();
  EXPECT_EQ(kernels::SetActiveIsa(kernels::Isa::kAvx2), want);
  EXPECT_EQ(kernels::ActiveIsa() == kernels::Isa::kAvx2, want);
  if (want) {
    EXPECT_TRUE(kernels::BuiltWithAvx2());
  }

  EXPECT_STREQ(kernels::IsaName(kernels::Isa::kScalar), "scalar");
  EXPECT_STREQ(kernels::IsaName(kernels::Isa::kAvx2), "avx2");
  EXPECT_NE(kernels::CpuCapabilityString(), nullptr);
  const kernels::Isa detected = kernels::DetectIsa();
  EXPECT_TRUE(detected == kernels::Isa::kScalar ||
              detected == kernels::Isa::kAvx2);
}

// ---- End-to-end parity: full training loops, fast-math AVX2 vs scalar ----

rl::AugmentedState RandomState(Rng& rng) {
  rl::AugmentedState s;
  s.h = nn::Tensor::Uniform(rl::kStateHRows, rl::kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(rl::kStateFRows, rl::kStateCols, -1.0, 1.0, rng);
  return s;
}

TEST_F(SimdTest, BpDqnUpdateScalarVsFastMathAvx2) {
  if (!kernels::CpuSupportsAvx2Fma()) {
    GTEST_SKIP() << "no AVX2+FMA on this machine";
  }
  rl::PdqnConfig config;
  config.hidden = 16;
  config.batch_size = 8;
  config.warmup_transitions = 8;
  config.buffer_capacity = 128;

  Rng init_a(11), init_b(11);
  UseScalar();  // identical init on both (init is GEMM-free anyway)
  auto agent_a = rl::MakeBpDqnAgent(config, init_a);
  auto agent_b = rl::MakeBpDqnAgent(config, init_b);

  Rng data(21), rng_a(31), rng_b(31);
  for (int i = 0; i < 25; ++i) {
    const rl::AugmentedState s = RandomState(data);
    const rl::AugmentedState s2 = RandomState(data);
    rl::AgentAction action;
    action.behavior = static_cast<int>(data.UniformInt(0, 2));
    action.params = nn::Tensor::Uniform(1, rl::kNumBehaviors, -3.0, 3.0, data);
    action.maneuver.lane_change = rl::BehaviorToLaneChange(action.behavior);
    action.maneuver.accel_mps2 = action.params[action.behavior];
    const double reward = data.Uniform(-1.0, 1.0);
    const bool terminal = i % 7 == 0;
    agent_a->Remember(s, action, reward, s2, terminal);
    agent_b->Remember(s, action, reward, s2, terminal);
    ASSERT_TRUE(UseAvx2());
    kernels::SetFastMath(true);
    agent_a->Update(rng_a);
    UseScalar();
    agent_b->Update(rng_b);
  }

  auto expect_params = [](const std::vector<nn::Var>& a,
                          const std::vector<nn::Var>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t p = 0; p < a.size(); ++p) {
      const nn::Tensor& ta = a[p].value();
      const nn::Tensor& tb = b[p].value();
      ASSERT_EQ(ta.size(), tb.size());
      for (int i = 0; i < ta.size(); ++i) {
        ASSERT_LE(RelDiff(ta[i], tb[i]), kRelTol)
            << "param " << p << " element " << i;
      }
    }
  };
  expect_params(agent_a->x_net().Params(), agent_b->x_net().Params());
  expect_params(agent_a->q_net().Params(), agent_b->q_net().Params());
}

perception::PredictionSample RandomSample(Rng& rng, int z) {
  perception::PredictionSample s;
  s.graph.steps.resize(z);
  for (auto& step : s.graph.steps) {
    for (auto& target : step.feat) {
      for (auto& node : target) {
        for (double& f : node) f = rng.Uniform(-1.0, 1.0);
      }
    }
  }
  for (int i = 0; i < perception::kNumAreas; ++i) {
    for (int c = 0; c < 3; ++c) {
      s.graph.target_rel_current[i][c] = rng.Uniform(-1.0, 1.0);
      s.truth.value[i][c] = rng.Uniform(-1.0, 1.0);
    }
    s.truth.valid[i] = rng.Uniform(0.0, 1.0) < 0.7;
  }
  return s;
}

TEST_F(SimdTest, LstGatTrainingScalarVsFastMathAvx2) {
  if (!kernels::CpuSupportsAvx2Fma()) {
    GTEST_SKIP() << "no AVX2+FMA on this machine";
  }
  perception::LstGatConfig net_config;
  net_config.d_phi1 = 8;
  net_config.d_phi3 = 8;
  net_config.d_lstm = 8;
  Rng init_a(17), init_b(17);
  perception::LstGat model_a(net_config, init_a);
  perception::LstGat model_b(net_config, init_b);

  Rng data(18);
  std::vector<perception::PredictionSample> train;
  for (int i = 0; i < 9; ++i) train.push_back(RandomSample(data, 3));

  perception::PredictionTrainConfig config;
  config.epochs = 3;
  config.batch_size = 4;

  ASSERT_TRUE(UseAvx2());
  kernels::SetFastMath(true);
  const auto result_a = perception::TrainPredictor(model_a, train, config);
  UseScalar();
  const auto result_b = perception::TrainPredictor(model_b, train, config);

  ASSERT_EQ(result_a.epoch_losses.size(), result_b.epoch_losses.size());
  for (size_t e = 0; e < result_a.epoch_losses.size(); ++e) {
    EXPECT_LE(RelDiff(result_a.epoch_losses[e], result_b.epoch_losses[e]),
              kRelTol)
        << "epoch " << e;
  }
  const std::vector<nn::Var> pa = model_a.Params();
  const std::vector<nn::Var> pb = model_b.Params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t p = 0; p < pa.size(); ++p) {
    for (int i = 0; i < pa[p].value().size(); ++i) {
      ASSERT_LE(RelDiff(pa[p].value()[i], pb[p].value()[i]), kRelTol)
          << "param " << p << " element " << i;
    }
  }
}

}  // namespace
}  // namespace head
