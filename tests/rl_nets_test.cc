// Network-structure properties of the P-DQN family critics and actors.
#include "rl/nets.h"

#include <gtest/gtest.h>

#include "rl/mp_dqn.h"

namespace head::rl {
namespace {

AugmentedState RandomState(Rng& rng) {
  AugmentedState s;
  s.h = nn::Tensor::Uniform(kStateHRows, kStateCols, -1.0, 1.0, rng);
  s.f = nn::Tensor::Uniform(kStateFRows, kStateCols, -1.0, 1.0, rng);
  return s;
}

TEST(BpXNetTest, OutputsBoundedByAMax) {
  Rng rng(1);
  BpXNet x(32, 3.0, rng);
  Rng srng(2);
  for (int i = 0; i < 20; ++i) {
    const nn::Tensor out = x.Forward(RandomState(srng)).value();
    ASSERT_EQ(out.cols(), kNumBehaviors);
    for (int c = 0; c < out.cols(); ++c) {
      EXPECT_GT(out.At(0, c), -3.0);
      EXPECT_LT(out.At(0, c), 3.0);
    }
  }
}

TEST(BpXNetTest, StartsNearZeroAcceleration) {
  // Small output init: the fresh actor must not begin saturated.
  Rng rng(3);
  BpXNet x(64, 3.0, rng);
  Rng srng(4);
  for (int i = 0; i < 10; ++i) {
    const nn::Tensor out = x.Forward(RandomState(srng)).value();
    for (int c = 0; c < out.cols(); ++c) {
      EXPECT_LT(std::fabs(out.At(0, c)), 1.5);
    }
  }
}

// Regression test for the Eq. (27) degeneracy: with a single linear merge
// the critic satisfies Q(s, x) − Q(s, x') = Q(t, x) − Q(t, x') for ALL
// states s, t — i.e., the optimal acceleration is state-independent. The
// fusion layer must break that additive separability.
TEST(BpQNetTest, QIsNotAdditivelySeparableInStateAndAction) {
  Rng rng(5);
  BpQNet q(32, rng);
  Rng srng(6);
  const AugmentedState s1 = RandomState(srng);
  const AugmentedState s2 = RandomState(srng);
  nn::Tensor xa(1, kNumBehaviors, {-3.0, 0.0, 3.0});
  nn::Tensor xb(1, kNumBehaviors, {3.0, 0.0, -3.0});
  auto delta = [&](const AugmentedState& s) {
    const nn::Tensor qa = q.Forward(s, nn::Var::Constant(xa)).value();
    const nn::Tensor qb = q.Forward(s, nn::Var::Constant(xb)).value();
    return qa.At(0, 0) - qb.At(0, 0);
  };
  EXPECT_NE(delta(s1), delta(s2))
      << "critic is additively separable — acceleration preferences cannot "
         "depend on the state";
}

TEST(BpQNetTest, BranchEncoderOutputsDependOnEveryVehicleRow) {
  Rng rng(7);
  BranchEncoder enc(kStateHRows, 32, rng);
  Rng srng(8);
  nn::Tensor block =
      nn::Tensor::Uniform(kStateHRows, kStateCols, -1.0, 1.0, srng);
  const nn::Tensor base = enc.Forward(block).value();
  for (int r = 0; r < kStateHRows; ++r) {
    nn::Tensor perturbed = block;
    perturbed.At(r, 1) += 0.5;
    const nn::Tensor out = enc.Forward(perturbed).value();
    // Only the per-vehicle scalar of the perturbed row may change.
    for (int c = 0; c < kStateHRows; ++c) {
      if (c == r) {
        EXPECT_NE(out.At(0, c), base.At(0, c)) << "dead unit in row " << r;
      } else {
        EXPECT_DOUBLE_EQ(out.At(0, c), base.At(0, c));
      }
    }
  }
}

TEST(FlatNetsTest, ShapesMatchContract) {
  Rng rng(9);
  FlatXNet x(32, 3.0, rng);
  FlatQNet q(32, rng);
  Rng srng(10);
  const AugmentedState s = RandomState(srng);
  const nn::Var xv = x.Forward(s);
  EXPECT_EQ(xv.value().rows(), 1);
  EXPECT_EQ(xv.value().cols(), kNumBehaviors);
  const nn::Var qv = q.Forward(s, xv);
  EXPECT_EQ(qv.value().rows(), 1);
  EXPECT_EQ(qv.value().cols(), kNumBehaviors);
}

TEST(MultiPassTest, GradientOnlyFlowsThroughOwnParameter) {
  Rng rng(11);
  MultiPassQNet q(16, rng);
  Rng srng(12);
  const AugmentedState s = RandomState(srng);
  nn::Var x = nn::Var::Param(nn::Tensor(1, kNumBehaviors, {1.0, -1.0, 0.5}));
  const nn::Var q_all = q.Forward(s, x);
  // Backprop only through Q of behavior 1: x gradients for behaviors 0 and
  // 2 must be exactly zero (the multi-pass property).
  nn::Backward(nn::Sum(nn::SliceCols(q_all, 1, 2)));
  EXPECT_DOUBLE_EQ(x.grad().At(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(x.grad().At(0, 2), 0.0);
}

}  // namespace
}  // namespace head::rl
