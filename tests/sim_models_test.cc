// Property tests for the car-following and lane-change models.
#include <gtest/gtest.h>

#include "sim/acc.h"
#include "sim/idm.h"
#include "sim/krauss.h"
#include "sim/lane_change.h"

namespace head::sim {
namespace {

DriverParams DefaultParams() { return DriverParams{}; }

TEST(IdmTest, FreeRoadAcceleratesTowardDesiredSpeed) {
  const DriverParams p = DefaultParams();
  EXPECT_GT(IdmAccel(p, 10.0, 1e9, 0.0), 0.0);
  EXPECT_NEAR(IdmAccel(p, p.desired_speed_mps, 1e9, 0.0), 0.0, 1e-6);
  EXPECT_LT(IdmAccel(p, p.desired_speed_mps + 5.0, 1e9, 0.0), 0.0);
}

TEST(IdmTest, BrakesWhenGapSmall) {
  const DriverParams p = DefaultParams();
  EXPECT_LT(IdmAccel(p, 20.0, 5.0, 0.0), -1.0);
}

TEST(IdmTest, BrakesHarderWhenClosing) {
  const DriverParams p = DefaultParams();
  const double same_speed = IdmAccel(p, 20.0, 30.0, 0.0);
  const double closing = IdmAccel(p, 20.0, 30.0, 5.0);
  EXPECT_LT(closing, same_speed);
}

TEST(IdmTest, MonotoneInGap) {
  const DriverParams p = DefaultParams();
  double prev = IdmAccel(p, 20.0, 5.0, 0.0);
  for (double gap = 10.0; gap <= 200.0; gap += 5.0) {
    const double a = IdmAccel(p, 20.0, gap, 0.0);
    EXPECT_GE(a, prev - 1e-12) << "gap " << gap;
    prev = a;
  }
}

TEST(IdmTest, DesiredGapGrowsWithSpeed) {
  const DriverParams p = DefaultParams();
  EXPECT_LT(IdmDesiredGap(p, 5.0, 0.0), IdmDesiredGap(p, 20.0, 0.0));
  EXPECT_GE(IdmDesiredGap(p, 0.0, 0.0), p.min_gap_m);
}

// Parameterized equilibrium sweep: for several speeds, a follower at the
// IDM equilibrium gap holds roughly zero acceleration.
class IdmEquilibriumTest : public ::testing::TestWithParam<double> {};

TEST_P(IdmEquilibriumTest, EquilibriumGapIsStationary) {
  DriverParams p = DefaultParams();
  const double v = GetParam();
  p.desired_speed_mps = 30.0;  // far above v: free term negligible but kept
  const double s_star = IdmDesiredGap(p, v, 0.0);
  // At gap = s*/sqrt(1 − (v/v0)^4) the IDM acceleration is exactly zero.
  const double denom = std::sqrt(1.0 - std::pow(v / 30.0, 4.0));
  const double eq_gap = s_star / denom;
  EXPECT_NEAR(IdmAccel(p, v, eq_gap, 0.0), 0.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Speeds, IdmEquilibriumTest,
                         ::testing::Values(5.0, 10.0, 15.0, 20.0, 25.0));

TEST(AccTest, RegulatesTowardDesiredSpeedWhenFree) {
  const DriverParams p = DefaultParams();
  const AccGains g;
  EXPECT_GT(AccAccel(p, g, 10.0, 1e9, 0.0), 0.0);
  EXPECT_LT(AccAccel(p, g, p.desired_speed_mps + 5.0, 1e9, 0.0), 0.0);
}

TEST(AccTest, BrakesWhenGapBelowDesired) {
  const DriverParams p = DefaultParams();
  const AccGains g;
  // desired gap at v=20: 2 + 1.5*20 = 32 m; 28 m keeps the controller off
  // its saturation clamp so the closing-rate term is visible.
  EXPECT_LT(AccAccel(p, g, 20.0, 28.0, 0.0), 0.0);
  EXPECT_LT(AccAccel(p, g, 20.0, 28.0, 5.0),
            AccAccel(p, g, 20.0, 28.0, 0.0));
}

TEST(KraussTest, SafeSpeedNonNegativeAndBoundedByGap) {
  const DriverParams p = DefaultParams();
  EXPECT_GE(KraussSafeSpeed(p, 20.0, 0.0, 0.0, 0.5), 0.0);
  // Generous gap: safe speed well above the leader's.
  EXPECT_GT(KraussSafeSpeed(p, 20.0, 15.0, 100.0, 0.5), 15.0);
  // Zero gap behind a stopped leader: must stop.
  EXPECT_NEAR(KraussSafeSpeed(p, 10.0, 0.0, 0.0, 0.5), 0.0, 1e-9);
}

TEST(KraussTest, NeverExceedsDesiredSpeedAndBounds) {
  DriverParams p = DefaultParams();
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double v = rng.Uniform(0.0, 25.0);
    const double a = KraussAccel(p, v, 20.0, 50.0, 0.5, rng);
    const double v_new = v + a * 0.5;
    EXPECT_LE(v_new, p.desired_speed_mps + 1e-9);
    EXPECT_GE(v_new, -1e-9);
  }
}

TEST(MobilTest, ChangesTowardFreeLaneWhenBlocked) {
  // Ego blocked by a slow leader in lane 2; lane 1 is free.
  RoadConfig road;
  std::vector<VehicleSnapshot> fleet = {
      {1, {2, 120.0, 10.0}},  // slow leader ahead of ego
  };
  RoadView view(fleet);
  Vehicle ego;
  ego.id = 7;
  ego.state = {2, 100.0, 20.0};
  ego.params = DriverParams{};
  const std::optional<LaneChange> change = MobilDecide(view, ego, road);
  ASSERT_TRUE(change.has_value());
}

TEST(MobilTest, StaysWhenNoAdvantage) {
  RoadConfig road;
  RoadView view(std::vector<VehicleSnapshot>{});  // empty road
  Vehicle ego;
  ego.id = 7;
  ego.state = {3, 100.0, 20.0};
  ego.params = DriverParams{};
  EXPECT_FALSE(MobilDecide(view, ego, road).has_value());
}

TEST(MobilTest, RespectsSafetyOfNewFollower) {
  RoadConfig road;
  // Fast follower right next to the candidate slot in lane 1.
  std::vector<VehicleSnapshot> fleet = {
      {1, {2, 130.0, 5.0}},    // very slow leader → strong incentive
      {2, {1, 97.0, 25.0}},    // follower in target lane, 3 m behind
  };
  RoadView view(fleet);
  Vehicle ego;
  ego.id = 7;
  ego.state = {2, 100.0, 20.0};
  ego.params = DriverParams{};
  const std::optional<LaneChange> change = MobilDecide(view, ego, road);
  // Left is unsafe; right is free so MOBIL may pick it — but never left.
  if (change.has_value()) {
    EXPECT_EQ(*change, LaneChange::kRight);
  }
}

TEST(MobilTest, CooldownBlocksChanges) {
  RoadConfig road;
  std::vector<VehicleSnapshot> fleet = {{1, {2, 110.0, 5.0}}};
  RoadView view(fleet);
  Vehicle ego;
  ego.id = 7;
  ego.state = {2, 100.0, 20.0};
  ego.params = DriverParams{};
  ego.lane_change_cooldown = 3;
  EXPECT_FALSE(MobilDecide(view, ego, road).has_value());
}

TEST(MobilTest, LaneChangeSafeRejectsOverlap) {
  std::vector<VehicleSnapshot> fleet = {{1, {1, 100.0, 20.0}}};
  RoadView view(fleet);
  Vehicle ego;
  ego.id = 7;
  ego.state = {2, 100.0, 20.0};
  EXPECT_FALSE(LaneChangeSafe(view, ego, 1));
}

}  // namespace
}  // namespace head::sim
