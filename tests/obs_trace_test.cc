// End-to-end observability: runs a HEAD-agent episode with tracing on (the
// same code path `head_cli --trace-out=` exercises), writes the Chrome
// trace-event JSON, re-parses it, and asserts the span tree is well formed —
// sensor / prediction / decision spans nested inside each episode step.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/head_agent.h"
#include "eval/trace.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace head {
namespace {

/// One event re-parsed from the emitted Chrome trace JSON.
struct ParsedEvent {
  std::string name;
  int tid = -1;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

/// Minimal parser for the exact JSON we emit ({"traceEvents":[{...},...]}).
std::vector<ParsedEvent> ParseChromeTrace(const std::string& json) {
  std::vector<ParsedEvent> events;
  EXPECT_NE(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            std::string::npos);
  auto field = [&json](size_t obj, const std::string& key) {
    const size_t k = json.find("\"" + key + "\":", obj);
    EXPECT_NE(k, std::string::npos) << "missing " << key;
    return k + key.size() + 3;
  };
  size_t pos = json.find("[");
  while ((pos = json.find("{\"name\":\"", pos)) != std::string::npos) {
    ParsedEvent e;
    const size_t name_begin = pos + 9;
    const size_t name_end = json.find('"', name_begin);
    e.name = json.substr(name_begin, name_end - name_begin);
    e.tid = std::stoi(json.substr(field(pos, "tid")));
    e.ts_us = std::stod(json.substr(field(pos, "ts")));
    e.dur_us = std::stod(json.substr(field(pos, "dur")));
    EXPECT_NE(json.find("\"ph\":\"X\"", pos), std::string::npos);
    events.push_back(std::move(e));
    pos = name_end;
  }
  return events;
}

/// True when `inner` lies within `outer` (with a small slack for the
/// microsecond rounding of the export).
bool Contains(const ParsedEvent& outer, const ParsedEvent& inner) {
  constexpr double kSlackUs = 0.002;
  return inner.ts_us >= outer.ts_us - kSlackUs &&
         inner.ts_us + inner.dur_us <=
             outer.ts_us + outer.dur_us + kSlackUs;
}

class ObsTraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::SetTracingEnabled(false);
    obs::DrainTraceEvents();  // drop spans left over from other tests
  }
  void TearDown() override { obs::SetTracingEnabled(false); }
};

TEST_F(ObsTraceTest, HeadEpisodeEmitsWellFormedNestedTrace) {
  core::HeadConfig config;
  config.pdqn.hidden = 8;
  Rng net_rng(1);
  std::shared_ptr<rl::PamdpAgent> agent =
      rl::MakeBpDqnAgent(config.pdqn, net_rng);
  Rng pred_rng(2);
  auto predictor = std::make_shared<perception::LstGat>(
      perception::LstGatConfig{.d_phi1 = 8, .d_phi3 = 8, .d_lstm = 8},
      pred_rng);
  core::HeadAgent head(config, predictor, agent);

  eval::TraceConfig trace_config;
  trace_config.sim.road = config.road;
  trace_config.sim.road.length_m = 150.0;
  trace_config.sim.max_steps = 30;

  obs::SetTracingEnabled(true);
  const eval::EpisodeTrace episode =
      eval::RecordEpisode(head, trace_config, /*seed=*/7);
  obs::SetTracingEnabled(false);
  ASSERT_GT(episode.steps.size(), 0u);

  const std::string path =
      ::testing::TempDir() + "/obs_trace_test_trace.json";
  ASSERT_TRUE(obs::WriteChromeTraceFile(path));
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::vector<ParsedEvent> events = ParseChromeTrace(buffer.str());
  std::remove(path.c_str());

  // Every pipeline stage shows up.
  std::map<std::string, int> counts;
  for (const ParsedEvent& e : events) ++counts[e.name];
  const long steps = static_cast<long>(episode.steps.size());
  EXPECT_EQ(counts["episode.step"], steps);
  EXPECT_EQ(counts["sensor.observe"], steps);
  EXPECT_EQ(counts["agent.act"], steps);
  EXPECT_EQ(counts["sim.step"], steps);
  EXPECT_EQ(counts["perception.phantom"], steps);
  EXPECT_EQ(counts["perception.graph"], steps);
  EXPECT_EQ(counts["perception.predict"], steps);
  EXPECT_EQ(counts["perception.lstgat.forward"], steps);
  EXPECT_EQ(counts["rl.act"], steps);

  // Nesting is well formed per thread: sorting by start, every event either
  // contains the next or is disjoint from it (no partial overlap), checked
  // with an interval stack.
  std::map<int, std::vector<ParsedEvent>> by_tid;
  for (const ParsedEvent& e : events) by_tid[e.tid].push_back(e);
  for (auto& [tid, list] : by_tid) {
    std::sort(list.begin(), list.end(),
              [](const ParsedEvent& a, const ParsedEvent& b) {
                if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                return a.dur_us > b.dur_us;  // parents before children
              });
    std::vector<ParsedEvent> stack;
    for (const ParsedEvent& e : list) {
      while (!stack.empty() && !Contains(stack.back(), e)) {
        EXPECT_LE(stack.back().ts_us + stack.back().dur_us,
                  e.ts_us + 0.002)
            << "partial overlap: " << stack.back().name << " vs " << e.name;
        stack.pop_back();
      }
      stack.push_back(e);
    }
  }

  // The per-stage spans nest inside an episode step / the decision span.
  std::vector<ParsedEvent> step_spans;
  for (const ParsedEvent& e : events) {
    if (e.name == "episode.step") step_spans.push_back(e);
  }
  auto inside_a = [&step_spans](const ParsedEvent& e) {
    for (const ParsedEvent& s : step_spans) {
      if (Contains(s, e)) return true;
    }
    return false;
  };
  std::vector<ParsedEvent> act_spans;
  for (const ParsedEvent& e : events) {
    if (e.name == "sensor.observe" || e.name == "agent.act" ||
        e.name == "sim.step") {
      EXPECT_TRUE(inside_a(e)) << e.name << " not inside an episode.step";
    }
    if (e.name == "agent.act") act_spans.push_back(e);
  }
  for (const ParsedEvent& e : events) {
    if (e.name != "perception.predict" && e.name != "rl.act" &&
        e.name != "perception.phantom" && e.name != "perception.graph") {
      continue;
    }
    bool inside_act = false;
    for (const ParsedEvent& a : act_spans) {
      if (Contains(a, e)) inside_act = true;
    }
    EXPECT_TRUE(inside_act) << e.name << " not inside an agent.act span";
  }
}

TEST_F(ObsTraceTest, EpisodeUpdatesMetricsRegistry) {
  const int64_t steps_before =
      obs::GetCounter("sim.steps").value();
  core::HeadConfig config;
  config.pdqn.hidden = 8;
  Rng net_rng(3);
  std::shared_ptr<rl::PamdpAgent> agent =
      rl::MakeBpDqnAgent(config.pdqn, net_rng);
  Rng pred_rng(4);
  auto predictor = std::make_shared<perception::LstGat>(
      perception::LstGatConfig{.d_phi1 = 8, .d_phi3 = 8, .d_lstm = 8},
      pred_rng);
  core::HeadAgent head(config, predictor, agent);

  eval::TraceConfig trace_config;
  trace_config.sim.road = config.road;
  trace_config.sim.road.length_m = 150.0;
  trace_config.sim.max_steps = 20;
  const eval::EpisodeTrace episode =
      eval::RecordEpisode(head, trace_config, /*seed=*/11);

  EXPECT_EQ(obs::GetCounter("sim.steps").value() - steps_before,
            static_cast<int64_t>(episode.steps.size()));
  const obs::HistogramSnapshot lat =
      obs::LatencyHistogram("agent.act").Snapshot();
  EXPECT_GE(lat.count, static_cast<int64_t>(episode.steps.size()));
  EXPECT_GT(lat.Quantile(0.5), 0.0);
}

}  // namespace
}  // namespace head
