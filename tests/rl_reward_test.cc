// Hybrid reward function (Eqs. 28–30): term ranges, masking, weighting.
#include "rl/reward.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace head::rl {
namespace {

RoadConfig DefaultRoad() { return RoadConfig{}; }

RewardFunction DefaultReward() {
  return RewardFunction(RewardConfig{}, DefaultRoad());
}

TEST(TtcTest, BasicCases) {
  const VehicleState ego{3, 100.0, 20.0};
  const VehicleState front{3, 140.0, 15.0};  // 40 m ahead, closing at 5
  const auto ttc = TimeToCollision(front, ego);
  ASSERT_TRUE(ttc.has_value());
  EXPECT_DOUBLE_EQ(*ttc, 8.0);

  const VehicleState faster_front{3, 140.0, 25.0};
  EXPECT_FALSE(TimeToCollision(faster_front, ego).has_value());
}

TEST(RewardTest, CollisionGivesMinimumSafety) {
  const RewardFunction fn = DefaultReward();
  RewardObservation obs;
  obs.collision = true;
  obs.ego_next = {3, 100.0, 20.0};
  const RewardTerms r = fn.Compute(obs);
  EXPECT_DOUBLE_EQ(r.safety, -3.0);
}

TEST(RewardTest, SafetyLogShapeWithinThreshold) {
  const RewardFunction fn = DefaultReward();
  RewardObservation obs;
  obs.ego_next = {3, 100.0, 20.0};
  obs.front_next = VehicleState{3, 110.0, 15.0};  // TTC = 10/5 = 2 < G=4
  const RewardTerms r = fn.Compute(obs);
  EXPECT_NEAR(r.safety, std::log(2.0 / 4.0), 1e-12);
  EXPECT_LE(r.safety, 0.0);
  EXPECT_GE(r.safety, -3.0);
}

TEST(RewardTest, SafetyZeroWhenTtcAboveThresholdOrNotClosing) {
  const RewardFunction fn = DefaultReward();
  RewardObservation obs;
  obs.ego_next = {3, 100.0, 20.0};
  obs.front_next = VehicleState{3, 200.0, 19.0};  // TTC = 100 > 4
  EXPECT_DOUBLE_EQ(fn.Compute(obs).safety, 0.0);
  obs.front_next = VehicleState{3, 110.0, 25.0};  // not closing
  EXPECT_DOUBLE_EQ(fn.Compute(obs).safety, 0.0);
  obs.front_next.reset();  // phantom front is masked
  EXPECT_DOUBLE_EQ(fn.Compute(obs).safety, 0.0);
}

TEST(RewardTest, EfficiencyNormalization) {
  const RewardFunction fn = DefaultReward();
  const RoadConfig road = DefaultRoad();
  RewardObservation obs;
  obs.ego_next = {3, 100.0, road.v_min_mps};
  EXPECT_DOUBLE_EQ(fn.Compute(obs).efficiency, 0.0);
  obs.ego_next.v_mps = road.v_max_mps;
  EXPECT_DOUBLE_EQ(fn.Compute(obs).efficiency, 1.0);
  obs.ego_next.v_mps = 0.5 * (road.v_min_mps + road.v_max_mps);
  EXPECT_NEAR(fn.Compute(obs).efficiency, 0.5, 1e-12);
}

TEST(RewardTest, ComfortPenalizesJerk) {
  const RewardFunction fn = DefaultReward();
  RewardObservation obs;
  obs.ego_next = {3, 100.0, 20.0};
  obs.accel_prev_mps2 = 3.0;
  obs.accel_now_mps2 = -3.0;
  EXPECT_DOUBLE_EQ(fn.Compute(obs).comfort, -1.0);  // max jerk
  obs.accel_now_mps2 = 3.0;
  EXPECT_DOUBLE_EQ(fn.Compute(obs).comfort, 0.0);
}

TEST(RewardTest, ImpactOnlyBeyondThreshold) {
  const RewardFunction fn = DefaultReward();
  RewardObservation obs;
  obs.ego_next = {3, 100.0, 20.0};
  obs.rear_v_now_mps = 20.0;
  obs.rear_v_next_mps = 19.7;  // drop 0.3 < v_thr 0.5
  EXPECT_DOUBLE_EQ(fn.Compute(obs).impact, 0.0);
  obs.rear_v_next_mps = 19.0;  // drop 1.0 > 0.5
  EXPECT_NEAR(fn.Compute(obs).impact, -1.0 / 3.0, 1e-12);  // −1/(2·3·0.5)
  obs.rear_v_next_mps = 10.0;  // drop 10 → clamp at −1
  EXPECT_DOUBLE_EQ(fn.Compute(obs).impact, -1.0);
}

TEST(RewardTest, ImpactMaskedWithoutRealRearVehicle) {
  const RewardFunction fn = DefaultReward();
  RewardObservation obs;
  obs.ego_next = {3, 100.0, 20.0};
  EXPECT_DOUBLE_EQ(fn.Compute(obs).impact, 0.0);
}

TEST(RewardTest, TotalIsWeightedSum) {
  RewardConfig config;
  const RewardFunction fn(config, DefaultRoad());
  RewardObservation obs;
  obs.ego_next = {3, 100.0, 20.0};
  obs.front_next = VehicleState{3, 110.0, 15.0};
  obs.accel_prev_mps2 = 1.0;
  obs.accel_now_mps2 = -1.0;
  obs.rear_v_now_mps = 20.0;
  obs.rear_v_next_mps = 19.0;
  const RewardTerms r = fn.Compute(obs);
  EXPECT_NEAR(r.total,
              0.9 * r.safety + 0.8 * r.efficiency + 0.6 * r.comfort +
                  0.2 * r.impact,
              1e-12);
}

TEST(RewardTest, WithoutImpactAblationDropsTheTerm) {
  RewardConfig config;
  config.use_impact = false;
  const RewardFunction fn(config, DefaultRoad());
  RewardObservation obs;
  obs.ego_next = {3, 100.0, 20.0};
  obs.rear_v_now_mps = 20.0;
  obs.rear_v_next_mps = 10.0;
  const RewardTerms r = fn.Compute(obs);
  EXPECT_DOUBLE_EQ(r.impact, 0.0);
  EXPECT_NEAR(r.total, 0.8 * r.efficiency, 1e-12);
}

TEST(RewardTest, TermRangesHoldUnderRandomInputs) {
  const RewardFunction fn = DefaultReward();
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    RewardObservation obs;
    obs.collision = rng.Bernoulli(0.1);
    obs.ego_next = VehicleState{rng.UniformInt(1, 6), rng.Uniform(0, 3000),
                                rng.Uniform(0, 30)};
    if (rng.Bernoulli(0.7)) {
      obs.front_next = VehicleState{obs.ego_next.lane,
                                    obs.ego_next.lon_m + rng.Uniform(0, 120),
                                    rng.Uniform(0, 30)};
    }
    if (rng.Bernoulli(0.7)) {
      obs.rear_v_now_mps = rng.Uniform(0, 30);
      obs.rear_v_next_mps = rng.Uniform(0, 30);
    }
    obs.accel_prev_mps2 = rng.Uniform(-3, 3);
    obs.accel_now_mps2 = rng.Uniform(-3, 3);
    const RewardTerms r = fn.Compute(obs);
    EXPECT_GE(r.safety, -3.0);
    EXPECT_LE(r.safety, 0.0);
    EXPECT_GE(r.efficiency, 0.0);
    EXPECT_LE(r.efficiency, 1.0);
    EXPECT_GE(r.comfort, -1.0);
    EXPECT_LE(r.comfort, 0.0);
    EXPECT_GE(r.impact, -1.0);
    EXPECT_LE(r.impact, 0.0);
  }
}

}  // namespace
}  // namespace head::rl
