#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/types.h"

namespace head {
namespace {

TEST(TypesTest, LaneDeltaMatchesPaperEq18) {
  EXPECT_EQ(LaneDelta(LaneChange::kLeft), -1);
  EXPECT_EQ(LaneDelta(LaneChange::kKeep), 0);
  EXPECT_EQ(LaneDelta(LaneChange::kRight), 1);
}

TEST(TypesTest, RelativeHelpers) {
  const VehicleState c{4, 120.0, 22.0};
  const VehicleState a{2, 100.0, 20.0};
  EXPECT_DOUBLE_EQ(DLon(c, a), 20.0);            // Eq. (1)
  EXPECT_DOUBLE_EQ(DLat(c, a, 3.2), 2 * 3.2);    // Eq. (2)
  EXPECT_DOUBLE_EQ(RelV(c, a), 2.0);             // Eq. (3)
}

TEST(TypesTest, StepKinematicsMatchesEq18WhenUnclamped) {
  RoadConfig road;
  const VehicleState s{3, 100.0, 20.0};
  const VehicleState next =
      StepKinematics(s, Maneuver{LaneChange::kLeft, 2.0}, road);
  EXPECT_EQ(next.lane, 2);
  EXPECT_DOUBLE_EQ(next.v_mps, 20.0 + 2.0 * 0.5);
  EXPECT_DOUBLE_EQ(next.lon_m, 100.0 + 20.0 * 0.5 + 0.5 * 2.0 * 0.25);
}

TEST(TypesTest, StepKinematicsClampsVelocity) {
  RoadConfig road;
  const VehicleState fast{1, 0.0, road.v_max_mps};
  const VehicleState next =
      StepKinematics(fast, Maneuver{LaneChange::kKeep, 3.0}, road);
  EXPECT_DOUBLE_EQ(next.v_mps, road.v_max_mps);
  // Position advance consistent with the clamped (constant) velocity.
  EXPECT_DOUBLE_EQ(next.lon_m, road.v_max_mps * road.dt_s);

  // Braking below v_min is physically allowed (the restriction is enforced
  // through the efficiency reward, not the dynamics) — but never below 0.
  const VehicleState slow{1, 0.0, 1.0};
  const VehicleState next2 =
      StepKinematics(slow, Maneuver{LaneChange::kKeep, -3.0}, road);
  EXPECT_DOUBLE_EQ(next2.v_mps, 0.0);
}

TEST(TypesTest, StepKinematicsClampsAcceleration) {
  RoadConfig road;
  const VehicleState s{1, 0.0, 10.0};
  const VehicleState next =
      StepKinematics(s, Maneuver{LaneChange::kKeep, 100.0}, road);
  EXPECT_DOUBLE_EQ(next.v_mps, 10.0 + road.a_max_mps2 * road.dt_s);
}

TEST(TypesTest, LaneValidity) {
  RoadConfig road;
  EXPECT_FALSE(road.IsValidLane(0));
  EXPECT_TRUE(road.IsValidLane(1));
  EXPECT_TRUE(road.IsValidLane(road.num_lanes));
  EXPECT_FALSE(road.IsValidLane(road.num_lanes + 1));
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(0, 1), b.Uniform(0, 1));
  }
}

TEST(RngTest, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
    const int k = rng.UniformInt(1, 6);
    EXPECT_GE(k, 1);
    EXPECT_LE(k, 6);
  }
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(1);
  Rng child = parent.Fork();
  // The child stream must differ from the parent's continued stream.
  bool any_different = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.Uniform(0, 1) != child.Uniform(0, 1)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng(123);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(5.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

}  // namespace
}  // namespace head
